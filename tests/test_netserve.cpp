// Tests for fsr::netserve — the socket front-end of the JSON-lines wire
// protocol: line framing under adversarial chunking, consistent-hash
// shard routing, the fd-free per-connection protocol machine (pipelining,
// client ids, barriers, backpressure), and socket round trips over TCP
// and Unix-domain listeners including graceful drain.
//
// Runs under the `service` ctest label (it spins up real worker pools).
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <variant>
#include <vector>

#include "api/request.h"
#include "api/service.h"
#include "api/wire.h"
#include "netserve/connection.h"
#include "netserve/framing.h"
#include "netserve/server.h"
#include "netserve/shard_router.h"
#include "obs/metrics.h"

namespace fsr::netserve {
namespace {

// ---------------------------------------------------------- line framing --

std::vector<std::string> lines_of(std::vector<Frame> frames) {
  std::vector<std::string> lines;
  for (Frame& frame : frames) lines.push_back(std::move(frame.line));
  return lines;
}

TEST(LineFramer, ReassemblesLinesSplitAcrossArbitraryChunks) {
  LineFramer framer;
  EXPECT_TRUE(framer.feed("{\"a").empty());
  EXPECT_TRUE(framer.midline());
  const auto first = framer.feed("bc\"}\nxy");
  ASSERT_EQ(lines_of(first), std::vector<std::string>{"{\"abc\"}"});
  const auto second = framer.feed("z\n");
  ASSERT_EQ(lines_of(second), std::vector<std::string>{"xyz"});
  EXPECT_FALSE(framer.midline());
}

TEST(LineFramer, ManyLinesInOneChunkComeOutInOrder) {
  LineFramer framer;
  const auto frames = framer.feed("one\ntwo\n\nthree\n");
  EXPECT_EQ(lines_of(frames),
            (std::vector<std::string>{"one", "two", "", "three"}));
}

TEST(LineFramer, FinishDeliversTheUnterminatedFinalLine) {
  // std::getline also yields a final line with no '\n'; EOF on a socket
  // must behave the same for stdin-mode byte parity.
  LineFramer framer;
  EXPECT_TRUE(framer.feed("tail-without-newline").empty());
  const auto frames = framer.finish();
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].line, "tail-without-newline");
  EXPECT_FALSE(frames[0].oversized);
  EXPECT_TRUE(framer.finish().empty());  // idempotent
}

TEST(LineFramer, CarriageReturnsAreKeptForGetlineParity) {
  LineFramer framer;
  const auto frames = framer.feed("abc\r\n");
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].line, "abc\r");
}

TEST(LineFramer, OversizedLineIsDroppedUnbufferedAndFlaggedOnce) {
  LineFramer framer(/*max_line_bytes=*/8);
  // The over-limit line arrives in many chunks; the framer must not
  // accumulate it (discard mode), and must still frame the next line.
  EXPECT_TRUE(framer.feed("0123456789").empty());
  EXPECT_TRUE(framer.midline());
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(framer.feed("xxxxxxxxxx").empty());
  const auto frames = framer.feed("tail\nok\n");
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_TRUE(frames[0].oversized);
  EXPECT_TRUE(frames[0].line.empty());
  EXPECT_FALSE(frames[1].oversized);
  EXPECT_EQ(frames[1].line, "ok");
}

TEST(LineFramer, OversizedFinalLineSurfacesThroughFinish) {
  LineFramer framer(/*max_line_bytes=*/4);
  EXPECT_TRUE(framer.feed("0123456789").empty());
  const auto frames = framer.finish();
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_TRUE(frames[0].oversized);
}

// --------------------------------------------------------- shard routing --

TEST(ShardRouter, MappingIsAPureFunctionOfTheConfiguration) {
  const ShardRouter a(8), b(8);
  for (int i = 0; i < 512; ++i) {
    const std::string key = "fingerprint-" + std::to_string(i);
    EXPECT_EQ(a.shard_of(key), b.shard_of(key));
  }
  EXPECT_LT(a.shard_of(""), 8u);  // total: the empty fingerprint maps too
}

TEST(ShardRouter, EveryShardReceivesSomeKeys) {
  const ShardRouter router(8);
  std::set<std::size_t> seen;
  for (int i = 0; i < 4096; ++i) {
    seen.insert(router.shard_of("key-" + std::to_string(i)));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(ShardRouter, GrowingTheRingRemapsOnlyAFewKeys) {
  // The consistent-hash property the warm-cache story leans on: going
  // from 8 to 9 shards should move about 1/9 of the keys, not all of
  // them (hash-mod would remap ~8/9).
  const ShardRouter before(8), after(9);
  int moved = 0;
  const int total = 4096;
  for (int i = 0; i < total; ++i) {
    const std::string key = "fingerprint-" + std::to_string(i);
    if (before.shard_of(key) != after.shard_of(key)) ++moved;
  }
  EXPECT_LT(moved, total / 3);  // ~11% expected; fail well before "most"
  EXPECT_GT(moved, 0);          // the new shard must take SOMETHING
}

// ------------------------------------------- the fd-free protocol machine --

/// Harness around a Connection: captures submissions, fabricates
/// completions, and exposes the rendered output stream.
struct ConnHarness {
  explicit ConnHarness(ConnectionLimits limits = {})
      : conn(1, {}, limits, [this](std::uint64_t slot, api::Request request) {
          submitted.push_back({slot, std::move(request)});
        }) {}

  /// Completes a submitted slot with a response that renders to
  /// recognizable bytes (the error field doubles as a payload marker).
  void complete(std::uint64_t slot, const std::string& marker) {
    api::Response response;
    response.error = marker;
    conn.on_response(slot, std::move(response));
  }

  /// Drains and returns the output buffer as whole lines.
  std::vector<std::string> take_lines() {
    std::vector<std::string> lines;
    std::string buffered = conn.output();
    conn.consume_output(buffered.size());
    std::size_t start = 0;
    for (std::size_t i = 0; i < buffered.size(); ++i) {
      if (buffered[i] == '\n') {
        lines.push_back(buffered.substr(start, i - start));
        start = i + 1;
      }
    }
    EXPECT_EQ(start, buffered.size());  // output is always whole lines
    return lines;
  }

  std::vector<std::pair<std::uint64_t, api::Request>> submitted;
  Connection conn;
};

TEST(Connection, BlankLinesAreSkippedButStillCountForLineNumbers) {
  ConnHarness h;
  h.conn.feed("\n \t\r\n{not json\n");
  EXPECT_TRUE(h.submitted.empty());  // the bad line is answered in-band
  const auto lines = h.take_lines();
  ASSERT_EQ(lines.size(), 1u);
  // Two blank lines precede it, so the stdin-style prefix says line 3.
  EXPECT_NE(lines[0].find("line 3: "), std::string::npos);
  EXPECT_NE(lines[0].find("\"id\": 0"), std::string::npos);
}

TEST(Connection, IdlessResponsesKeepRequestOrderUnderReversedCompletion) {
  ConnHarness h;
  h.conn.feed("{\"kind\": \"analyze-safety\", \"gadget\": \"good\"}\n");
  h.conn.feed("{\"kind\": \"analyze-safety\", \"gadget\": \"bad\"}\n");
  ASSERT_EQ(h.submitted.size(), 2u);

  h.complete(1, "second");  // finishes first...
  EXPECT_TRUE(h.conn.output().empty());  // ...but must wait for slot 0
  h.complete(0, "first");
  const auto lines = h.take_lines();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("first"), std::string::npos);
  EXPECT_NE(lines[0].find("\"id\": 0"), std::string::npos);
  EXPECT_NE(lines[1].find("second"), std::string::npos);
  EXPECT_NE(lines[1].find("\"id\": 1"), std::string::npos);
}

TEST(Connection, ClientIdsOptIntoOutOfOrderEmissionAndAreEchoed) {
  ConnHarness h;
  h.conn.feed(
      "{\"kind\": \"analyze-safety\", \"gadget\": \"good\", \"id\": 7}\n"
      "{\"kind\": \"analyze-safety\", \"gadget\": \"bad\", \"id\": 3}\n");
  ASSERT_EQ(h.submitted.size(), 2u);

  h.complete(1, "second");  // id-carrying: emitted immediately
  auto lines = h.take_lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"id\": 3"), std::string::npos);

  h.complete(0, "first");
  lines = h.take_lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"id\": 7"), std::string::npos);
}

TEST(Connection, IdCarryingSlotsNeverBlockIdlessOrdering) {
  ConnHarness h;
  h.conn.feed(
      "{\"kind\": \"analyze-safety\", \"gadget\": \"good\", \"id\": 9}\n"
      "{\"kind\": \"analyze-safety\", \"gadget\": \"bad\"}\n");
  ASSERT_EQ(h.submitted.size(), 2u);

  // The id-less slot 1 completes while the id-carrying slot 0 is still in
  // flight: slot 0 is transparent to id-less ordering, so slot 1 emits.
  h.complete(1, "idless");
  const auto lines = h.take_lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("idless"), std::string::npos);
  EXPECT_NE(lines[0].find("\"id\": 1"), std::string::npos);
}

TEST(Connection, MalformedClientIdIsAnsweredInBandNotDropped) {
  ConnHarness h;
  h.conn.feed("{\"kind\": \"stats\", \"id\": -4}\n");
  h.conn.feed("{\"kind\": \"stats\", \"id\": 1.5}\n");
  EXPECT_TRUE(h.submitted.empty());  // neither line reached the service
  const auto lines = h.take_lines();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("line 1: "), std::string::npos);
  EXPECT_NE(lines[1].find("line 2: "), std::string::npos);
}

TEST(Connection, OversizedLineGetsAnErrorAndTheConnectionKeepsWorking) {
  ConnectionLimits limits;
  limits.max_line_bytes = 32;
  ConnHarness h(limits);
  h.conn.feed(std::string(100, 'x') + "\n{\"kind\": \"stats\"}\n");
  ASSERT_EQ(h.submitted.size(), 1u);  // the stats line went through
  auto lines = h.take_lines();        // the oversized answer needs no slot
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("exceeds 32-byte limit"), std::string::npos);
  EXPECT_NE(lines[0].find("line 1: "), std::string::npos);

  h.complete(1, "stats-answer");
  lines = h.take_lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"id\": 1"), std::string::npos);
}

TEST(Connection, StatsIsABarrierThatWaitsForEarlierInflightLines) {
  ConnHarness h;
  h.conn.feed(
      "{\"kind\": \"analyze-safety\", \"gadget\": \"good\"}\n"
      "{\"kind\": \"stats\"}\n");
  ASSERT_EQ(h.submitted.size(), 1u);  // the barrier is held back

  h.complete(0, "work");
  ASSERT_EQ(h.submitted.size(), 2u);  // now the stats line is submitted
  EXPECT_TRUE(std::holds_alternative<api::StatsRequest>(
      h.submitted[1].second));
}

TEST(Connection, InflightCapPausesReadsAndCountsAStall) {
  ConnectionLimits limits;
  limits.max_inflight = 2;
  obs::Counter& stalls = obs::registry().counter("net.backpressure_stalls");
  const std::uint64_t before = stalls.value();

  ConnHarness h(limits);
  EXPECT_TRUE(h.conn.wants_read());
  h.conn.feed(
      "{\"kind\": \"analyze-safety\", \"gadget\": \"good\"}\n"
      "{\"kind\": \"analyze-safety\", \"gadget\": \"bad\"}\n");
  EXPECT_FALSE(h.conn.wants_read());  // 2 open slots == the cap
  EXPECT_EQ(stalls.value(), before + 1);

  h.complete(0, "a");
  h.complete(1, "b");
  h.take_lines();
  EXPECT_TRUE(h.conn.wants_read());
}

TEST(Connection, UndrainedOutputPausesReadsAndHoldsSubmissions) {
  ConnectionLimits limits;
  limits.max_output_bytes = 16;  // any one response line overflows this
  ConnHarness h(limits);
  h.conn.feed(
      "{\"kind\": \"analyze-safety\", \"gadget\": \"good\"}\n"
      "{\"kind\": \"analyze-safety\", \"gadget\": \"bad\"}\n");
  ASSERT_EQ(h.submitted.size(), 2u);  // both fit before output existed

  h.complete(0, "first");
  EXPECT_GT(h.conn.output().size(), limits.max_output_bytes);
  EXPECT_FALSE(h.conn.wants_read());  // the client is not draining

  // A third line arrives while output is clogged: parsed, NOT submitted.
  h.conn.feed("{\"kind\": \"analyze-safety\", \"gadget\": \"good\"}\n");
  EXPECT_EQ(h.submitted.size(), 2u);

  // Draining the output unblocks both reading and the held submission.
  h.conn.consume_output(h.conn.output().size());
  EXPECT_EQ(h.submitted.size(), 3u);
  EXPECT_TRUE(h.conn.wants_read());
}

TEST(Connection, HalfCloseFlushesTheUnterminatedFinalLine) {
  ConnHarness h;
  h.conn.feed("{\"kind\": \"stats\"}");  // no newline
  EXPECT_TRUE(h.submitted.empty());
  h.conn.input_closed();
  ASSERT_EQ(h.submitted.size(), 1u);
  EXPECT_FALSE(h.conn.finished());  // still owes the answer

  h.complete(0, "done");
  EXPECT_FALSE(h.conn.finished());  // output not drained yet
  h.conn.consume_output(h.conn.output().size());
  EXPECT_TRUE(h.conn.finished());
}

// ------------------------------------------------------- socket round trips --

/// Runs a Server on a background thread and tears it down via
/// request_drain() — the same path SIGTERM takes in fsr_serve.
struct ServerFixture {
  explicit ServerFixture(ServerOptions options)
      : server(std::move(options)), thread([this] { exit_code = server.run(); }) {}
  ~ServerFixture() {
    if (thread.joinable()) {
      server.request_drain();
      thread.join();
    }
  }
  Server server;
  int exit_code = -1;
  std::thread thread;
};

int connect_tcp(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
      << std::strerror(errno);
  timeval timeout{30, 0};  // a hung test should fail, not wedge ctest
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  return fd;
}

int connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
      << std::strerror(errno);
  timeval timeout{30, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  return fd;
}

void send_all(int fd, std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent, 0);
    ASSERT_GT(n, 0) << std::strerror(errno);
    sent += static_cast<std::size_t>(n);
  }
}

std::string recv_until_eof(int fd) {
  std::string data;
  char buffer[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    data.append(buffer, static_cast<std::size_t>(n));
  }
  return data;
}

/// One full client exchange: send the stream, half-close, read to EOF.
std::string exchange(int fd, std::string_view request_stream) {
  send_all(fd, request_stream);
  ::shutdown(fd, SHUT_WR);
  const std::string replies = recv_until_eof(fd);
  ::close(fd);
  return replies;
}

constexpr const char* kMixedStream =
    "{\"kind\": \"analyze-safety\", \"gadget\": \"good\"}\n"
    "\n"
    "{\"kind\": \"simulate\", \"gadget\": \"good\", \"seed\": 7}\n"
    "{\"kind\": \"analyze-safety\", \"gadget\": \"bad\"}\n";

ServerOptions tcp_options(int shards) {
  ServerOptions options;
  options.tcp_host = "127.0.0.1";
  options.tcp_port = 0;  // ephemeral
  options.service.threads = shards;
  return options;
}

TEST(ServerSocket, TcpResponsesAreByteIdenticalAcrossShardCounts) {
  std::string replies_by_shards[2];
  const int shard_counts[2] = {1, 8};
  for (int i = 0; i < 2; ++i) {
    ServerFixture fixture(tcp_options(shard_counts[i]));
    replies_by_shards[i] =
        exchange(connect_tcp(fixture.server.tcp_port()), kMixedStream);
  }
  EXPECT_FALSE(replies_by_shards[0].empty());
  EXPECT_EQ(replies_by_shards[0], replies_by_shards[1]);

  // Sanity on the content: three answers, dense ids, blank line skipped.
  EXPECT_NE(replies_by_shards[0].find("\"id\": 0"), std::string::npos);
  EXPECT_NE(replies_by_shards[0].find("\"id\": 2"), std::string::npos);
  EXPECT_EQ(replies_by_shards[0].find("\"id\": 3"), std::string::npos);
}

TEST(ServerSocket, UnixListenerSpeaksTheSameProtocol) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("fsr-netserve-test-" + std::to_string(::getpid()) + ".sock"))
          .string();
  std::string tcp_replies, unix_replies;
  {
    ServerOptions options = tcp_options(4);
    options.unix_path = path;
    ServerFixture fixture(std::move(options));
    unix_replies = exchange(connect_unix(path), kMixedStream);
    tcp_replies =
        exchange(connect_tcp(fixture.server.tcp_port()), kMixedStream);
  }
  EXPECT_FALSE(unix_replies.empty());
  EXPECT_EQ(unix_replies, tcp_replies);
  EXPECT_FALSE(std::filesystem::exists(path));  // drain unlinks the socket
}

TEST(ServerSocket, RequestBytesMayArriveInArbitrarilySmallPieces) {
  ServerFixture fixture(tcp_options(2));
  const int fd = connect_tcp(fixture.server.tcp_port());
  const std::string_view stream = kMixedStream;
  for (std::size_t i = 0; i < stream.size(); i += 3) {
    send_all(fd, stream.substr(i, 3));
  }
  ::shutdown(fd, SHUT_WR);
  const std::string dribbled = recv_until_eof(fd);
  ::close(fd);

  const std::string whole =
      exchange(connect_tcp(fixture.server.tcp_port()), kMixedStream);
  EXPECT_EQ(dribbled, whole);
}

TEST(ServerSocket, ConcurrentClientsEachGetTheStdinContract) {
  ServerFixture fixture(tcp_options(4));
  const std::uint16_t port = fixture.server.tcp_port();
  std::vector<std::string> replies(6);
  std::vector<std::thread> clients;
  for (std::size_t i = 0; i < replies.size(); ++i) {
    clients.emplace_back([port, i, &replies] {
      replies[i] = exchange(connect_tcp(port), kMixedStream);
    });
  }
  for (std::thread& t : clients) t.join();
  for (std::size_t i = 1; i < replies.size(); ++i) {
    EXPECT_EQ(replies[i], replies[0]) << "client " << i;
  }
  EXPECT_FALSE(replies[0].empty());
}

TEST(ServerSocket, DrainClosesAnIdleClientCleanlyAndExitsZero) {
  ServerFixture fixture(tcp_options(2));
  const int fd = connect_tcp(fixture.server.tcp_port());
  // The client never half-closes. First prove the line was received and
  // answered (read the full response line), THEN request the drain: the
  // server must close the connection from its side and run() return 0
  // without waiting on a client that would otherwise idle forever.
  send_all(fd, "{\"kind\": \"analyze-safety\", \"gadget\": \"good\"}\n");
  std::string first_line;
  char c = 0;
  while (::recv(fd, &c, 1, 0) == 1 && c != '\n') first_line.push_back(c);
  EXPECT_NE(first_line.find("\"id\": 0"), std::string::npos);
  EXPECT_NE(first_line.find("analyze-safety"), std::string::npos);

  fixture.server.request_drain();
  EXPECT_EQ(recv_until_eof(fd), "");  // clean EOF, no stray bytes
  ::close(fd);
  fixture.thread.join();
  EXPECT_EQ(fixture.exit_code, 0);
}

}  // namespace
}  // namespace fsr::netserve
