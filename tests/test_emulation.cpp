// End-to-end emulation tests (Sections V and VI-C): the generated GPV
// implementation running over the simulated network must reproduce the
// gadgets' dynamics (GOOD converges to its unique stable state, BAD
// oscillates indefinitely, DISAGREE converges, the Figure-3 iBGP gadget
// oscillates until fixed), Gao-Rexford (x) hop-count must converge on AS
// hierarchies, and Theorem 5.1 must hold: every NDlog-computed signature
// equals sigma(p) from the independent reference engine.
#include <gtest/gtest.h>

#include "algebra/standard_policies.h"
#include "fsr/emulation.h"
#include "fsr/value_bridge.h"
#include "proto/reference_pv.h"
#include "spp/gadgets.h"
#include "spp/translate.h"
#include "topology/as_hierarchy.h"

namespace fsr {
namespace {

EmulationOptions fast_options() {
  EmulationOptions options;
  options.batch_interval = 100 * net::k_millisecond;
  options.max_time = 60 * net::k_second;
  return options;
}

TEST(Emulation, GoodGadgetConvergesToUniqueStableState) {
  const auto result = emulate_spp(spp::good_gadget(), fast_options());
  ASSERT_TRUE(result.quiesced);
  // The unique stable assignment (verified exhaustively in test_spp).
  ASSERT_TRUE(result.best_routes.contains("1"));
  EXPECT_EQ(result.best_routes.at("1").second,
            (std::vector<std::string>{"1", "3", "0"}));
  EXPECT_EQ(result.best_routes.at("2").second,
            (std::vector<std::string>{"2", "0"}));
  EXPECT_EQ(result.best_routes.at("3").second,
            (std::vector<std::string>{"3", "0"}));
}

TEST(Emulation, BadGadgetOscillatesIndefinitely) {
  EmulationOptions options = fast_options();
  options.max_time = 20 * net::k_second;
  const auto result = emulate_spp(spp::bad_gadget(), options);
  EXPECT_FALSE(result.quiesced);  // cut off, still churning
  // Sustained oscillation: steady stream of route changes and messages.
  EXPECT_GT(result.route_changes, 50u);
  EXPECT_GT(result.messages, 100u);
}

TEST(Emulation, DisagreeConverges) {
  const auto result = emulate_spp(spp::disagree_gadget(), fast_options());
  ASSERT_TRUE(result.quiesced);
  // One of the two stable assignments.
  const auto& p1 = result.best_routes.at("1").second;
  const auto& p2 = result.best_routes.at("2").second;
  const bool state_a = p1 == std::vector<std::string>{"1", "2", "0"} &&
                       p2 == std::vector<std::string>{"2", "0"};
  const bool state_b = p1 == std::vector<std::string>{"1", "0"} &&
                       p2 == std::vector<std::string>{"2", "1", "0"};
  EXPECT_TRUE(state_a || state_b);
}

TEST(Emulation, Figure3GadgetOscillatesAndFixedConverges) {
  EmulationOptions options = fast_options();
  options.max_time = 20 * net::k_second;
  const auto broken = emulate_spp(spp::ibgp_figure3_gadget(), options);
  EXPECT_FALSE(broken.quiesced);

  const auto fixed = emulate_spp(spp::ibgp_figure3_fixed(), fast_options());
  ASSERT_TRUE(fixed.quiesced);
  EXPECT_EQ(fixed.best_routes.at("a").second,
            (std::vector<std::string>{"a", "d", "0"}));
  // The fix is dramatically cheaper — the Section VI-B observation.
  EXPECT_LT(fixed.messages, broken.messages / 2);
}

TEST(Emulation, GadgetChainCostGrowsWithGadgetCount) {
  // Section VI-C: more GOOD gadgets -> more recomputation and messages,
  // but still convergent.
  EmulationOptions options = fast_options();
  std::uint64_t last_messages = 0;
  for (const int count : {1, 3, 6}) {
    const auto result =
        emulate_spp(spp::good_gadget_chain(count), options);
    ASSERT_TRUE(result.quiesced) << count;
    EXPECT_GT(result.messages, last_messages);
    last_messages = result.messages;
  }
}

TEST(Emulation, GaoRexfordHopCountConvergesOnHierarchy) {
  const auto algebra = algebra::gao_rexford_with_hop_count();
  topology::AsHierarchyParams params;
  params.depth = 4;
  params.seed = 7;
  const auto topo = topology::generate_as_hierarchy(
      params, topology::LabelScheme::business_hop_count);
  const auto result = emulate_gpv(*algebra, topo, fast_options());
  ASSERT_TRUE(result.quiesced);
  // Every AS reaches the destination (the graph is connected upward).
  EXPECT_EQ(result.best_routes.size(), topo.nodes.size() - 1);
}

TEST(Emulation, Theorem51SignaturesMatchReference) {
  // Correctness of the generated implementation: for every converged
  // node, the stored signature equals sigma(path) computed by the
  // independent reference engine.
  const auto algebra = algebra::gao_rexford_with_hop_count();
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    topology::AsHierarchyParams params;
    params.depth = 5;
    params.seed = seed;
    const auto topo = topology::generate_as_hierarchy(
        params, topology::LabelScheme::business_hop_count);
    const auto result = emulate_gpv(*algebra, topo, fast_options());
    ASSERT_TRUE(result.quiesced);
    for (const auto& [node, route] : result.best_routes) {
      const auto sigma = proto::path_signature(*algebra, topo, route.second);
      ASSERT_TRUE(sigma.has_value()) << node;
      EXPECT_EQ(to_ndlog(*sigma).to_string(), route.first) << node;
    }
  }
}

TEST(Emulation, MatchesReferenceFixpointOnSafePolicy) {
  // For a provably safe policy the asynchronous emulation and the
  // synchronous reference fixpoint agree on the selected signatures.
  const auto algebra = algebra::gao_rexford_with_hop_count();
  topology::AsHierarchyParams params;
  params.depth = 4;
  params.seed = 11;
  const auto topo = topology::generate_as_hierarchy(
      params, topology::LabelScheme::business_hop_count);
  const auto emulated = emulate_gpv(*algebra, topo, fast_options());
  ASSERT_TRUE(emulated.quiesced);
  const auto reference = proto::compute_reference_routes(*algebra, topo);
  ASSERT_TRUE(reference.converged);
  ASSERT_EQ(emulated.best_routes.size(), reference.best.size());
  for (const auto& [node, route] : reference.best) {
    ASSERT_TRUE(emulated.best_routes.contains(node)) << node;
    // Signatures agree; paths may differ among equally-ranked options.
    EXPECT_EQ(emulated.best_routes.at(node).first,
              to_ndlog(route.signature).to_string())
        << node;
  }
}

TEST(Emulation, BatchingReducesMessageCount) {
  // Ablation hook: a 1 s batch coalesces transient flaps that immediate
  // mode ships one by one.
  EmulationOptions batched = fast_options();
  batched.batch_interval = net::k_second;
  EmulationOptions immediate = fast_options();
  immediate.batch_interval = 0;
  const auto with_batch = emulate_spp(spp::ibgp_figure3_fixed(), batched);
  const auto without = emulate_spp(spp::ibgp_figure3_fixed(), immediate);
  ASSERT_TRUE(with_batch.quiesced);
  ASSERT_TRUE(without.quiesced);
  EXPECT_LE(with_batch.messages, without.messages);
}

TEST(Emulation, TestbedProfileMirrorsSimulation) {
  // Section VI-A: deployment-mode results closely mirror simulation. The
  // testbed profile adds host overhead and jitter but must preserve the
  // outcome and the convergence ballpark.
  const auto algebra = algebra::gao_rexford_with_hop_count();
  topology::AsHierarchyParams params;
  params.depth = 4;
  params.seed = 3;
  const auto topo = topology::generate_as_hierarchy(
      params, topology::LabelScheme::business_hop_count);

  EmulationOptions sim = fast_options();
  EmulationOptions testbed = fast_options();
  testbed.host_profile = net::HostProfile::testbed();

  const auto sim_result = emulate_gpv(*algebra, topo, sim);
  const auto tb_result = emulate_gpv(*algebra, topo, testbed);
  ASSERT_TRUE(sim_result.quiesced);
  ASSERT_TRUE(tb_result.quiesced);
  for (const auto& [node, route] : sim_result.best_routes) {
    EXPECT_EQ(tb_result.best_routes.at(node).first, route.first);
  }
  // Same batching dominates: convergence within 2x of each other.
  EXPECT_LT(tb_result.convergence_time,
            2 * sim_result.convergence_time + net::k_second);
}

TEST(Emulation, BandwidthSeriesAccountsAllTraffic) {
  const auto result = emulate_spp(spp::ibgp_figure3_fixed(), fast_options());
  ASSERT_TRUE(result.quiesced);
  ASSERT_FALSE(result.bandwidth_series_mbps.empty());
  double series_bytes = 0.0;
  const double bucket_seconds =
      static_cast<double>(result.stats_bucket) / net::k_second;
  for (const double mbps : result.bandwidth_series_mbps) {
    series_bytes +=
        mbps * 1e6 * bucket_seconds * static_cast<double>(result.node_count);
  }
  EXPECT_NEAR(series_bytes, static_cast<double>(result.bytes),
              static_cast<double>(result.bytes) * 0.01 + 1.0);
}

}  // namespace
}  // namespace fsr
