// Tests for the scenario-campaign engine: deterministic seed derivation,
// source generation, content canonicalization, in-run deduplication,
// cross-run caching, parallel-vs-serial report identity (the subsystem's
// core contract), and the JSON/table renderers.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>

#include "campaign/cache.h"
#include "campaign/report.h"
#include "campaign/runner.h"
#include "campaign/scenario.h"
#include "algebra/standard_policies.h"
#include "campaign/scenario_source.h"
#include "spp/gadgets.h"
#include "topology/as_hierarchy.h"
#include "util/error.h"

namespace fsr::campaign {
namespace {

std::vector<std::unique_ptr<ScenarioSource>> quick_sources() {
  std::vector<std::unique_ptr<ScenarioSource>> sources;
  sources.push_back(gadget_source());
  sources.push_back(standard_policy_source());
  RandomSppSweep random_sweep;
  random_sweep.count = 4;
  sources.push_back(random_spp_source(random_sweep));
  return sources;
}

// ------------------------------------------------------------------ seeds --

TEST(ScenarioSeed, DependsOnCampaignSeedIdAndOrdinal) {
  const std::uint64_t base = derive_scenario_seed(1, "gadgets/good", 0);
  EXPECT_EQ(base, derive_scenario_seed(1, "gadgets/good", 0));  // stable
  EXPECT_NE(base, derive_scenario_seed(2, "gadgets/good", 0));
  EXPECT_NE(base, derive_scenario_seed(1, "gadgets/bad", 0));
  EXPECT_NE(base, derive_scenario_seed(1, "gadgets/good", 1));
}

TEST(ScenarioSource, GeneratesUniqueIdsWithDerivedSeeds) {
  CampaignRunner runner;
  const std::vector<Scenario> scenarios = runner.generate(quick_sources());
  ASSERT_FALSE(scenarios.empty());
  std::set<std::string> ids;
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    EXPECT_TRUE(ids.insert(scenarios[i].id).second)
        << "duplicate id " << scenarios[i].id;
    EXPECT_EQ(scenarios[i].seed,
              derive_scenario_seed(runner.options().seed, scenarios[i].id, i));
  }
}

// -------------------------------------------------------- canonical forms --

TEST(Cache, CanonicalSppIgnoresNameButNotContent) {
  spp::SppInstance renamed = spp::good_gadget();
  EXPECT_EQ(canonical_spp(spp::good_gadget()), canonical_spp(renamed));
  EXPECT_NE(canonical_spp(spp::good_gadget()),
            canonical_spp(spp::bad_gadget()));
}

TEST(Cache, ScenarioKeySeparatesKindsAndEmulationSeeds) {
  Scenario safety;
  safety.id = "x";
  safety.kind = ScenarioKind::safety;
  safety.seed = 7;
  safety.spp = std::make_shared<const spp::SppInstance>(spp::good_gadget());

  Scenario emulation = safety;
  emulation.kind = ScenarioKind::emulation;

  // Safety verdicts are seed-independent; emulations are not.
  Scenario safety_reseeded = safety;
  safety_reseeded.seed = 8;
  Scenario emulation_reseeded = emulation;
  emulation_reseeded.seed = 8;

  EXPECT_NE(scenario_cache_key(safety), scenario_cache_key(emulation));
  EXPECT_EQ(scenario_cache_key(safety), scenario_cache_key(safety_reseeded));
  EXPECT_NE(scenario_cache_key(emulation),
            scenario_cache_key(emulation_reseeded));
}

TEST(Cache, PayloadlessScenarioRejected) {
  Scenario empty;
  empty.id = "empty";
  EXPECT_THROW(scenario_cache_key(empty), InvalidArgument);
}

// -------------------------------------------------------------- random spp --

TEST(RandomSpp, DeterministicValidInstances) {
  const RandomSppSweep sweep;
  const spp::SppInstance one = random_spp_instance("r", 123, sweep);
  const spp::SppInstance two = random_spp_instance("r", 123, sweep);
  EXPECT_EQ(canonical_spp(one), canonical_spp(two));
  EXPECT_NE(canonical_spp(one),
            canonical_spp(random_spp_instance("r", 124, sweep)));
  EXPECT_GT(one.permitted_path_count(), 0u);
  // Every generated path passed SppInstance validation (edges declared,
  // simple, destination-terminated) or add_permitted_path would have
  // thrown during construction.
  for (const std::string& node : one.nodes()) {
    EXPECT_LE(one.permitted(node).size(),
              static_cast<std::size_t>(sweep.paths_per_node));
  }
}

// ----------------------------------------------------------- determinism --

TEST(CampaignRunner, ReportBytesIdenticalForAnyThreadCount) {
  // The acceptance property: same campaign seed => byte-identical default
  // JSON, whether solved serially or by a contended worker pool. Includes
  // emulation scenarios so their seed-dependence is covered too.
  const auto run_with_threads = [](int threads) {
    GadgetSweep sweep;
    sweep.include_emulations = true;
    std::vector<std::unique_ptr<ScenarioSource>> sources;
    sources.push_back(gadget_source(std::move(sweep)));
    RandomSppSweep random_sweep;
    random_sweep.count = 4;
    sources.push_back(random_spp_source(random_sweep));
    CampaignOptions options;
    options.seed = 7;
    options.threads = threads;
    CampaignRunner runner(options);
    return to_json(runner.run(sources));
  };
  const std::string serial = run_with_threads(1);
  EXPECT_EQ(serial, run_with_threads(2));
  EXPECT_EQ(serial, run_with_threads(5));
}

TEST(CampaignRunner, DifferentCampaignSeedsChangeRandomScenarios) {
  const auto run_with_seed = [](std::uint64_t seed) {
    std::vector<std::unique_ptr<ScenarioSource>> sources;
    RandomSppSweep sweep;
    sweep.count = 4;
    sources.push_back(random_spp_source(sweep));
    CampaignOptions options;
    options.seed = seed;
    CampaignRunner runner(options);
    return to_json(runner.run(sources));
  };
  EXPECT_NE(run_with_seed(1), run_with_seed(2));
}

// ------------------------------------------------------ dedup and caching --

TEST(CampaignRunner, DeduplicatesIdenticalContentWithinARun) {
  // The same gadget reached twice under different ids must be solved once,
  // with both results sharing the representative's outcome object.
  std::vector<Scenario> scenarios;
  for (int i = 0; i < 3; ++i) {
    Scenario scenario;
    scenario.id = "dup/" + std::to_string(i);
    scenario.source = "dup";
    scenario.kind = ScenarioKind::safety;
    scenario.seed = derive_scenario_seed(1, scenario.id, i);
    scenario.spp =
        std::make_shared<const spp::SppInstance>(spp::bad_gadget());
    scenarios.push_back(std::move(scenario));
  }
  CampaignRunner runner;
  const CampaignReport report = runner.run_scenarios(std::move(scenarios));
  EXPECT_EQ(report.solved_count, 1u);
  EXPECT_EQ(report.deduplicated_count, 2u);
  EXPECT_EQ(report.cache_hit_count, 0u);
  ASSERT_EQ(report.results.size(), 3u);
  EXPECT_FALSE(report.results[0].deduplicated);
  EXPECT_TRUE(report.results[1].deduplicated);
  EXPECT_TRUE(report.results[2].deduplicated);
  EXPECT_EQ(report.results[0].outcome.get(), report.results[1].outcome.get());
  EXPECT_EQ(report.results[0].outcome.get(), report.results[2].outcome.get());
  EXPECT_EQ(report.results[0].content_id, report.results[2].content_id);
  ASSERT_TRUE(report.results[2].outcome->safety.has_value());
  EXPECT_EQ(report.results[2].outcome->safety->verdict,
            SafetyVerdict::not_provably_safe);
}

TEST(CampaignRunner, SecondRunServedEntirelyFromCache) {
  CampaignRunner runner;
  const CampaignReport first = runner.run(quick_sources());
  EXPECT_GT(first.solved_count, 0u);
  EXPECT_EQ(first.cache_hit_count, 0u);

  const CampaignReport second = runner.run(quick_sources());
  EXPECT_EQ(second.solved_count, 0u);
  EXPECT_EQ(second.cache_hit_count,
            second.results.size() - second.deduplicated_count);
  // Cache provenance is timings-gated metadata, so a warm run renders the
  // exact same deterministic JSON as the cold run that filled the cache...
  EXPECT_EQ(to_json(first), to_json(second));
  JsonOptions timed;
  timed.include_timings = true;
  EXPECT_NE(to_json(second, timed).find("\"cache_hit\": true"),
            std::string::npos);
  ASSERT_EQ(first.results.size(), second.results.size());
  for (std::size_t i = 0; i < first.results.size(); ++i) {
    EXPECT_EQ(first.results[i].content_id, second.results[i].content_id);
    if (!first.results[i].deduplicated) {
      // ...and the outcome objects themselves are shared, not re-solved.
      EXPECT_EQ(first.results[i].outcome.get(),
                second.results[i].outcome.get());
    }
  }
}

TEST(Cache, OutcomesRoundTripThroughSerialization) {
  // Every outcome shape the campaign produces (safety with cores and
  // models, emulations with series/routes, repair summaries, errors) must
  // survive the disk format byte-for-byte at the JSON level.
  GadgetSweep sweep;
  sweep.include_emulations = true;
  std::vector<std::unique_ptr<ScenarioSource>> sources;
  sources.push_back(gadget_source(std::move(sweep)));
  sources.push_back(standard_policy_source());
  CampaignOptions options;
  options.attempt_repair = true;
  CampaignRunner runner(options);
  CampaignReport report = runner.run(sources);
  JsonOptions timed;
  timed.include_timings = true;
  const std::string plain_before = to_json(report);
  const std::string timed_before = to_json(report, timed);

  std::size_t round_tripped = 0;
  for (ScenarioResult& result : report.results) {
    if (result.outcome == nullptr) continue;
    const auto restored =
        deserialize_outcome(serialize_outcome(*result.outcome));
    ASSERT_NE(restored, nullptr) << result.id;
    result.outcome = restored;
    ++round_tripped;
  }
  EXPECT_GT(round_tripped, 0u);

  // Deterministic AND timing renderings agree: the format loses nothing
  // (wall-clock fields included, so warm table renderings stay faithful).
  EXPECT_EQ(plain_before, to_json(report));
  EXPECT_EQ(timed_before, to_json(report, timed));
}

TEST(Cache, MalformedRecordsAreRejectedNotFatal) {
  EXPECT_EQ(deserialize_outcome(""), nullptr);
  EXPECT_EQ(deserialize_outcome("not a record"), nullptr);
  EXPECT_EQ(deserialize_outcome("fsr-outcome v99\nkind safety\n"), nullptr);
  // A truncated but well-headed record is rejected as a whole.
  const ScenarioOutcome outcome;
  const std::string full = serialize_outcome(outcome);
  EXPECT_NE(deserialize_outcome(full), nullptr);
  EXPECT_EQ(deserialize_outcome(full.substr(0, full.size() / 2)), nullptr);
}

TEST(Cache, DiskBackedCachePersistsAcrossRunners) {
  const std::string dir =
      testing::TempDir() + "fsr_cache_persist_" +
      std::to_string(::getpid());
  std::filesystem::remove_all(dir);

  CampaignOptions options;
  options.cache_dir = dir;
  std::string cold_json;
  {
    CampaignRunner cold(options);
    const CampaignReport report = cold.run(quick_sources());
    EXPECT_GT(report.solved_count, 0u);
    cold_json = to_json(report);
  }
  EXPECT_FALSE(std::filesystem::is_empty(dir));

  // A fresh process (modelled by a fresh runner) reloads every outcome:
  // nothing re-solves and the deterministic JSON is byte-identical.
  CampaignRunner warm(options);
  const CampaignReport report = warm.run(quick_sources());
  EXPECT_EQ(report.solved_count, 0u);
  EXPECT_GT(report.cache_hit_count, 0u);
  EXPECT_EQ(cold_json, to_json(report));
  std::filesystem::remove_all(dir);
}

TEST(Cache, CorruptedDiskEntriesDegradeToMisses) {
  const std::string dir =
      testing::TempDir() + "fsr_cache_corrupt_" +
      std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  CampaignOptions options;
  options.cache_dir = dir;
  {
    CampaignRunner cold(options);
    (void)cold.run(quick_sources());
  }
  // Vandalise every stored record; the reload must shrug, not crash.
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    std::ofstream out(entry.path(), std::ios::trunc);
    out << "fsr-outcome v1\ngarbage";
  }
  CampaignRunner warm(options);
  const CampaignReport report = warm.run(quick_sources());
  EXPECT_EQ(report.cache_hit_count, 0u);
  EXPECT_GT(report.solved_count, 0u);
  std::filesystem::remove_all(dir);
}

TEST(CampaignRunner, CacheCanBeDisabled) {
  CampaignOptions options;
  options.use_cache = false;
  CampaignRunner runner(options);
  (void)runner.run(quick_sources());
  const CampaignReport second = runner.run(quick_sources());
  EXPECT_EQ(second.cache_hit_count, 0u);
  EXPECT_GT(second.solved_count, 0u);
  EXPECT_EQ(runner.cache().size(), 0u);
}

// ----------------------------------------------------------------- repair --

TEST(CampaignRunner, RepairReportBytesIdenticalForAnyThreadCount) {
  const auto run_with_threads = [](int threads) {
    std::vector<std::unique_ptr<ScenarioSource>> sources;
    RepairTargetSweep sweep;
    sweep.bad_chain_lengths = {2};
    sweep.random_count = 3;
    sources.push_back(repair_target_source(sweep));
    CampaignOptions options;
    options.seed = 11;
    options.threads = threads;
    options.attempt_repair = true;
    CampaignRunner runner(options);
    return to_json(runner.run(sources));
  };
  const std::string serial = run_with_threads(1);
  EXPECT_EQ(serial, run_with_threads(4));
  EXPECT_NE(serial.find("\"repair_summary\""), std::string::npos);
  EXPECT_NE(serial.find("\"repair\": {\"solver_repaired\": true"),
            std::string::npos);
}

TEST(CampaignRunner, RepairAggregatesAndHistogram) {
  std::vector<std::unique_ptr<ScenarioSource>> sources;
  RepairTargetSweep sweep;
  sweep.bad_chain_lengths = {2};
  sweep.random_count = 0;
  sources.push_back(repair_target_source(sweep));
  CampaignOptions options;
  options.attempt_repair = true;
  CampaignRunner runner(options);
  const CampaignReport report = runner.run(sources);

  const SourceSummary totals = report.totals();
  // bad, disagree, ibgp-figure3, bad-chain-2: all unsafe, all repairable.
  EXPECT_EQ(totals.repairs_attempted, 4u);
  EXPECT_EQ(totals.repaired, 4u);
  EXPECT_EQ(totals.repair_verified, 4u);
  const auto histogram = report.repair_edit_size_histogram();
  ASSERT_EQ(histogram.size(), 2u);  // every best fix is a single edit
  EXPECT_EQ(histogram[1], 4u);

  const std::string table = render_table(report);
  EXPECT_NE(table.find("repaired/attempted"), std::string::npos);
  EXPECT_NE(table.find("repair edit-size histogram"), std::string::npos);
}

TEST(CampaignRunner, RepairOffLeavesReportUnchanged) {
  std::vector<std::unique_ptr<ScenarioSource>> sources;
  sources.push_back(gadget_source());
  CampaignRunner runner;
  const CampaignReport report = runner.run(sources);
  EXPECT_EQ(report.totals().repairs_attempted, 0u);
  const std::string json = to_json(report);
  EXPECT_EQ(json.find("repair"), std::string::npos);
  EXPECT_TRUE(report.repair_edit_size_histogram().empty());
}

TEST(Cache, RepairModeSeparatesKeys) {
  Scenario safety;
  safety.id = "x";
  safety.kind = ScenarioKind::safety;
  safety.seed = 7;
  safety.spp = std::make_shared<const spp::SppInstance>(spp::bad_gadget());
  // Outcomes with repair data must not alias plain safety outcomes, but
  // repair results are content-determined (SPVP trials seeded from the
  // content digest), so the repair key stays seed-free and duplicates
  // still dedup.
  EXPECT_NE(scenario_cache_key(safety, true), scenario_cache_key(safety, false));
  EXPECT_EQ(scenario_cache_key(safety, false), scenario_cache_key(safety));
  Scenario reseeded = safety;
  reseeded.seed = 8;
  EXPECT_EQ(scenario_cache_key(safety, true),
            scenario_cache_key(reseeded, true));
  EXPECT_EQ(scenario_cache_key(safety, false),
            scenario_cache_key(reseeded, false));

  // Algebra scenarios are not repair-eligible; their key is mode-invariant.
  Scenario algebra_scenario;
  algebra_scenario.id = "alg";
  algebra_scenario.kind = ScenarioKind::safety;
  algebra_scenario.algebra = algebra::gao_rexford_guideline_a();
  EXPECT_EQ(scenario_cache_key(algebra_scenario, true),
            scenario_cache_key(algebra_scenario, false));
}

TEST(Cache, SimConfigSeparatesKeys) {
  // The PR-9 regression: simulation outcomes depend on the whole sim
  // configuration, not just the per-scenario seed, so every axis that can
  // change the run must land in the key — records written under one config
  // must never satisfy a lookup under another.
  Scenario simulation;
  simulation.id = "s";
  simulation.kind = ScenarioKind::simulation;
  simulation.seed = 7;
  simulation.spp =
      std::make_shared<const spp::SppInstance>(spp::bad_gadget());
  const sim::SimOptions base;
  const std::string base_key = scenario_cache_key(simulation, base);

  sim::SimOptions churn = base;
  churn.scenario = "link-flap";
  EXPECT_NE(scenario_cache_key(simulation, churn), base_key);
  sim::SimOptions suppressed = base;
  suppressed.suppression = "split-horizon";
  EXPECT_NE(scenario_cache_key(simulation, suppressed), base_key);
  sim::SimOptions mrai = base;
  mrai.mrai_ticks = 5;
  EXPECT_NE(scenario_cache_key(simulation, mrai), base_key);
  sim::SimOptions slower_links = base;
  slower_links.max_link_delay = 9;
  EXPECT_NE(scenario_cache_key(simulation, slower_links), base_key);
  sim::SimOptions tighter_budget = base;
  tighter_budget.max_steps = 64;
  EXPECT_NE(scenario_cache_key(simulation, tighter_budget), base_key);

  // The detector axes are deliberately NOT keyed: the differential suite
  // proves both detectors byte-identical (and the hash mask is verified
  // away), so their records are interchangeable by construction.
  sim::SimOptions canonical = base;
  canonical.detector = "canonical";
  EXPECT_EQ(scenario_cache_key(simulation, canonical), base_key);
  sim::SimOptions masked = base;
  masked.detector_hash_mask = 0;
  EXPECT_EQ(scenario_cache_key(simulation, masked), base_key);

  // The per-run seed is already in the base key, not the sim marker.
  Scenario reseeded = simulation;
  reseeded.seed = 8;
  EXPECT_NE(scenario_cache_key(reseeded, base), base_key);

  // Non-simulation scenarios ignore the sim config entirely.
  Scenario safety = simulation;
  safety.kind = ScenarioKind::safety;
  EXPECT_EQ(scenario_cache_key(safety, churn), scenario_cache_key(safety));
}

TEST(CampaignRunner, WarmCacheNeverServesADifferentSimConfig) {
  // Disk-backed cross-config regression for the same bug: a cache filled
  // under one sim configuration must be useless to a campaign running
  // another — and fully warm again for the configuration that wrote it.
  const std::string dir = testing::TempDir() + "fsr_cache_simcfg_" +
                          std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  GadgetSweep sweep;
  sweep.include_simulations = true;
  const auto sim_sources = [&sweep] {
    std::vector<std::unique_ptr<ScenarioSource>> sources;
    sources.push_back(gadget_source(sweep));
    return sources;
  };

  CampaignOptions cold_options;
  cold_options.cache_dir = dir;
  {
    CampaignRunner cold(cold_options);
    const CampaignReport report = cold.run(sim_sources());
    EXPECT_GT(report.totals().sim_runs, 0u);
  }

  CampaignOptions flap_options = cold_options;
  flap_options.sim.scenario = "link-flap";
  flap_options.sim.suppression = "poisoned-reverse";
  CampaignRunner warm_other(flap_options);
  const CampaignReport other = warm_other.run(sim_sources());
  std::size_t sims = 0;
  for (const ScenarioResult& result : other.results) {
    if (result.kind != ScenarioKind::simulation) continue;
    ++sims;
    EXPECT_FALSE(result.cache_hit) << result.id;
    ASSERT_TRUE(result.outcome->sim.has_value()) << result.id;
    // The outcome really ran under the new config, not the cached one.
    EXPECT_EQ(result.outcome->sim->scenario, "link-flap") << result.id;
    EXPECT_EQ(result.outcome->sim->suppression, "poisoned-reverse")
        << result.id;
  }
  EXPECT_GT(sims, 0u);

  // Same config as the cold run => every simulation is a warm hit again.
  CampaignRunner warm_same(cold_options);
  const CampaignReport same = warm_same.run(sim_sources());
  for (const ScenarioResult& result : same.results) {
    if (result.kind != ScenarioKind::simulation || result.deduplicated) {
      continue;
    }
    EXPECT_TRUE(result.cache_hit) << result.id;
  }
  std::filesystem::remove_all(dir);
}

TEST(ScenarioSource, SppFromTopologyExtractsSimulatableInstances) {
  // The campaign's --simulate bridge for annotated topologies: the
  // extracted instance must give the destination's neighbours real routes
  // (otherwise nothing ever originates and every simulation is a trivial
  // zero-message convergence) and fold only policy-permitted paths.
  topology::AsHierarchyParams params;
  params.depth = 5;
  params.seed = 1;
  const topology::Topology topo =
      topology::generate_as_hierarchy(params, topology::LabelScheme::business);
  const spp::SppInstance instance = spp_from_topology(
      "x", topo, *algebra::gao_rexford_guideline_a(), params.depth + 4, 16, 3);
  EXPECT_EQ(instance.destination(), topo.destination);
  EXPECT_GT(instance.permitted_path_count(), 0u);
  bool destination_reachable = false;
  for (const auto& [u, v] : instance.edges()) {
    const std::string& neighbour = u == topo.destination   ? v
                                   : v == topo.destination ? u
                                                           : std::string();
    if (neighbour.empty()) continue;
    if (!instance.permitted(neighbour).empty()) destination_reachable = true;
  }
  EXPECT_TRUE(destination_reachable);

  // And the simulator actually has something to do on it.
  sim::SimOptions options;
  options.seed = 3;
  const sim::SimResult run = sim::simulate(instance, options);
  EXPECT_TRUE(run.converged || run.oscillating);
  EXPECT_GT(run.messages, 0u);
}

TEST(ScenarioSource, RepairTargetsSourceIsRegistered) {
  const auto& names = builtin_source_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "repair-targets"),
            names.end());
  const auto source = make_builtin_source("repair-targets", false);
  const std::vector<Scenario> scenarios = source->generate(1, 0);
  EXPECT_GE(scenarios.size(), 7u);
  for (const Scenario& scenario : scenarios) {
    EXPECT_EQ(scenario.kind, ScenarioKind::safety);
    EXPECT_NE(scenario.spp, nullptr);
  }
}

// ------------------------------------------------------------- robustness --

TEST(CampaignRunner, FailingScenarioRecordsErrorWithoutAborting) {
  // An SPP instance with no permitted paths fails translation; the
  // campaign must record the error, keep going, and keep the failure out
  // of the cache.
  std::vector<Scenario> scenarios;
  Scenario broken;
  broken.id = "broken/empty";
  broken.source = "broken";
  broken.kind = ScenarioKind::safety;
  broken.spp = std::make_shared<const spp::SppInstance>(
      spp::SppInstance("pathless"));
  scenarios.push_back(broken);
  Scenario good;
  good.id = "ok/good";
  good.source = "ok";
  good.kind = ScenarioKind::safety;
  good.spp = std::make_shared<const spp::SppInstance>(spp::good_gadget());
  scenarios.push_back(good);

  CampaignRunner runner;
  const CampaignReport report = runner.run_scenarios(std::move(scenarios));
  ASSERT_EQ(report.results.size(), 2u);
  EXPECT_FALSE(report.results[0].outcome->error.empty());
  EXPECT_TRUE(report.results[1].outcome->error.empty());
  EXPECT_EQ(runner.cache().size(), 1u);  // only the good outcome cached
  EXPECT_NE(to_json(report).find("\"verdict\": \"error\""), std::string::npos);
}

TEST(CampaignRunner, RejectsMalformedScenarioShapes) {
  // Shape errors are programming mistakes: they fail fast in the
  // sequential scheduling phase, never inside a worker.
  const auto run_one = [](Scenario scenario) {
    scenario.id = "shape";
    std::vector<Scenario> scenarios;
    scenarios.push_back(std::move(scenario));
    CampaignRunner runner;
    (void)runner.run_scenarios(std::move(scenarios));
  };
  Scenario emulation_without_topology;
  emulation_without_topology.kind = ScenarioKind::emulation;
  emulation_without_topology.algebra = algebra::gao_rexford_guideline_a();
  EXPECT_THROW(run_one(emulation_without_topology), InvalidArgument);

  Scenario safety_with_both;
  safety_with_both.kind = ScenarioKind::safety;
  safety_with_both.algebra = algebra::gao_rexford_guideline_a();
  safety_with_both.spp =
      std::make_shared<const spp::SppInstance>(spp::good_gadget());
  EXPECT_THROW(run_one(safety_with_both), InvalidArgument);
}

TEST(CampaignRunner, RejectsNonPositiveThreadCount) {
  CampaignOptions options;
  options.threads = 0;
  EXPECT_THROW(CampaignRunner{options}, InvalidArgument);
}

// -------------------------------------------------------------- reporting --

TEST(CampaignReport, AggregatesVerdictsPerSource) {
  CampaignRunner runner;
  const CampaignReport report = runner.run(quick_sources());
  const auto per_source = report.per_source();
  ASSERT_EQ(per_source.size(), 3u);
  EXPECT_EQ(per_source[0].first, "gadgets");
  // good, fixed figure-3 and the chains are safe; bad, disagree and the
  // broken figure-3 are not provably safe.
  EXPECT_EQ(per_source[0].second.safe, 5u);
  EXPECT_EQ(per_source[0].second.not_provably_safe, 3u);
  const SourceSummary totals = report.totals();
  EXPECT_EQ(totals.scenarios, report.results.size());
  EXPECT_EQ(totals.safe + totals.not_provably_safe + totals.converged +
                totals.diverged,
            report.results.size());
  EXPECT_FALSE(report.core_frequencies().empty());
}

TEST(CampaignReport, TimingsAreOptInAndTableRenders) {
  CampaignRunner runner;
  const CampaignReport report = runner.run(quick_sources());
  const std::string plain = to_json(report);
  EXPECT_EQ(plain.find("wall_ms"), std::string::npos);
  EXPECT_EQ(plain.find("timings"), std::string::npos);
  JsonOptions options;
  options.include_timings = true;
  const std::string timed = to_json(report, options);
  EXPECT_NE(timed.find("\"timings\""), std::string::npos);
  EXPECT_NE(timed.find("wall_ms"), std::string::npos);

  const std::string table = render_table(report);
  EXPECT_NE(table.find("FSR campaign report"), std::string::npos);
  EXPECT_NE(table.find("gadgets"), std::string::npos);
  EXPECT_NE(table.find("TOTAL"), std::string::npos);
}

// -------------------------------------------------- size-capped LRU sweep --

namespace {

/// An outcome whose serialized record is at least `bytes` long (padding
/// rides in the narrative, which round-trips verbatim).
std::shared_ptr<const ScenarioOutcome> padded_outcome(std::size_t bytes) {
  auto outcome = std::make_shared<ScenarioOutcome>();
  SafetyReport safety;
  safety.verdict = SafetyVerdict::safe;
  safety.narrative = std::string(bytes, 'x');
  outcome->safety = std::move(safety);
  return outcome;
}

std::string eviction_dir(const char* tag) {
  const std::string dir = testing::TempDir() + "fsr_cache_evict_" + tag +
                          "_" + std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  return dir;
}

std::size_t outcome_files(const std::string& dir) {
  std::size_t count = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".outcome") ++count;
  }
  return count;
}

}  // namespace

TEST(Cache, SizeCapEvictsOldestRecordsOnOverflow) {
  const std::string dir = eviction_dir("cap");
  const std::uint64_t cap = 4000;
  {
    ResultCache cache(dir, cap);
    for (int i = 0; i < 8; ++i) {
      cache.insert("key-" + std::to_string(i), padded_outcome(1000));
    }
    // Every insert swept: the directory never exceeds the cap, the oldest
    // records are the ones that went, and the in-memory entries all
    // survive (eviction sheds disk history, not this run's answers).
    EXPECT_LE(cache.disk_bytes(), cap);
    EXPECT_GT(cache.evicted_files(), 0u);
    EXPECT_EQ(cache.size(), 8u);
    for (int i = 0; i < 8; ++i) {
      EXPECT_NE(cache.find("key-" + std::to_string(i)), nullptr) << i;
    }
  }
  EXPECT_LT(outcome_files(dir), 8u);

  // A fresh cache reloads only the surviving (most recent) records; the
  // newest insertion is always among them.
  ResultCache reloaded(dir, cap);
  EXPECT_EQ(reloaded.size(), outcome_files(dir));
  EXPECT_NE(reloaded.find("key-7"), nullptr);
  EXPECT_EQ(reloaded.find("key-0"), nullptr);
  std::filesystem::remove_all(dir);
}

TEST(Cache, FindHitsRefreshRecencySoHotRecordsSurviveTheSweep) {
  const std::string dir = eviction_dir("touch");
  // Measure one record's on-disk size so the cap holds exactly two.
  std::uint64_t record_bytes = 0;
  {
    const std::string probe_dir = eviction_dir("touch_probe");
    ResultCache probe(probe_dir);
    probe.insert("probe", padded_outcome(1000));
    record_bytes = probe.disk_bytes();
    std::filesystem::remove_all(probe_dir);
  }
  ASSERT_GT(record_bytes, 0u);
  ResultCache cache(dir, 2 * record_bytes + record_bytes / 2);
  cache.insert("hot", padded_outcome(1000));
  cache.insert("cold", padded_outcome(1000));
  // Touch the older record: it becomes the most recently ACCESSED even
  // though "cold" was written later.
  EXPECT_NE(cache.find("hot"), nullptr);
  // Overflow: the sweep must shed "cold" (oldest access), not "hot".
  cache.insert("new", padded_outcome(1000));
  ResultCache reloaded(dir);
  EXPECT_NE(reloaded.find("hot"), nullptr);
  EXPECT_NE(reloaded.find("new"), nullptr);
  EXPECT_EQ(reloaded.find("cold"), nullptr);
  std::filesystem::remove_all(dir);
}

TEST(Cache, StartupLoadAppliesTheCapToAnOverfullDirectory) {
  const std::string dir = eviction_dir("startup");
  {
    ResultCache unbounded(dir);  // fill without a cap
    for (int i = 0; i < 6; ++i) {
      unbounded.insert("key-" + std::to_string(i), padded_outcome(1000));
    }
  }
  EXPECT_EQ(outcome_files(dir), 6u);
  ResultCache capped(dir, 3000);
  EXPECT_LE(capped.disk_bytes(), 3000u);
  EXPECT_GT(capped.evicted_files(), 0u);
  EXPECT_LT(outcome_files(dir), 6u);
  std::filesystem::remove_all(dir);
}

TEST(Cache, SingleOversizedRecordSurvivesAlone) {
  const std::string dir = eviction_dir("oversize");
  ResultCache cache(dir, 100);
  cache.insert("big", padded_outcome(5000));
  // Deleting the only record would leave a cache that serves nothing.
  EXPECT_EQ(outcome_files(dir), 1u);
  EXPECT_EQ(cache.evicted_files(), 0u);
  std::filesystem::remove_all(dir);
}

TEST(CampaignRunner, CacheMaxBytesFlowsThroughCampaignOptions) {
  const std::string dir = eviction_dir("runner");
  CampaignOptions options;
  options.cache_dir = dir;
  options.cache_max_bytes = 8000;
  CampaignRunner runner(options);
  const CampaignReport report = runner.run(quick_sources());
  EXPECT_GT(report.solved_count, 0u);
  EXPECT_LE(runner.cache().disk_bytes(), options.cache_max_bytes);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace fsr::campaign
