// Tests for the HLP mechanism (Section VI-D): program validity, fragment
// hiding semantics, convergence over multi-domain topologies, the
// byte-cost ordering PV > HLP > HLP-CH under churn, and churn isolation.
#include <gtest/gtest.h>

#include "algebra/additive_algebra.h"
#include "fsr/emulation.h"
#include "spp/gadgets.h"
#include "util/error.h"
#include "proto/hlp.h"
#include "topology/hlp_domains.h"

namespace fsr {
namespace {

topology::Topology small_domains(std::uint64_t seed = 3) {
  topology::HlpDomainsParams params;
  params.domain_count = 4;
  params.nodes_per_domain = 6;
  params.cross_domain_links = 8;
  params.seed = seed;
  return topology::generate_hlp_domains(params);
}

EmulationOptions quick_options() {
  EmulationOptions options;
  options.batch_interval = 100 * net::k_millisecond;
  options.max_time = 60 * net::k_second;
  return options;
}

TEST(Hlp, ProgramParses) {
  const ndlog::Program program = proto::hlp_program();
  EXPECT_EQ(program.rules.size(), 6u);
  EXPECT_EQ(program.materialized.size(), 5u);
}

TEST(Hlp, ConvergesAndRoutesEveryNode) {
  const auto topo = small_domains();
  const auto result = emulate_hlp(topo, 0, quick_options());
  ASSERT_TRUE(result.quiesced);
  // Every node except the destination selects a route.
  EXPECT_EQ(result.best_routes.size(), topo.nodes.size() - 1);
}

TEST(Hlp, ForeignDomainRoutesAreFragmented) {
  const auto topo = small_domains();
  const auto result = emulate_hlp(topo, 0, quick_options());
  ASSERT_TRUE(result.quiesced);
  const std::string dest_domain = topo.domain_of.at(topo.destination);
  int fragmented = 0;
  for (const auto& [node, route] : result.best_routes) {
    if (topo.domain_of.at(node) == dest_domain) continue;
    // A route from another domain must contain at least one domain marker
    // and no plain router names from foreign domains other than the next
    // hops inside the node's own domain.
    bool has_marker = false;
    for (const std::string& hop : route.second) {
      if (hop.starts_with("dom")) has_marker = true;
    }
    EXPECT_TRUE(has_marker) << node << " route lacks domain markers";
    ++fragmented;
  }
  EXPECT_GT(fragmented, 0);
}

TEST(Hlp, FragmentsAreSmallerThanPvPaths) {
  const auto topo = small_domains();
  const auto hlp = emulate_hlp(topo, 0, quick_options());
  const auto pv_algebra = algebra::igp_cost({1, 2, 3, 5, 6, 7, 8, 9, 10});
  const auto pv = emulate_gpv(*pv_algebra, topo, quick_options());
  ASSERT_TRUE(hlp.quiesced);
  ASSERT_TRUE(pv.quiesced);
  EXPECT_LT(hlp.bytes, pv.bytes);  // hidden paths are cheaper on the wire
}

TEST(Hlp, CostHidingReducesChurnTraffic) {
  const auto topo = small_domains();
  EmulationOptions options = quick_options();
  options.max_time = 90 * net::k_second;
  options.churn.events = 10;
  options.churn.start = 10 * net::k_second;
  options.churn.interval = net::k_second;
  options.churn.magnitude = 2;  // below the threshold of 5

  const auto plain = emulate_hlp(topo, 0, options);
  const auto hidden = emulate_hlp(topo, 5, options);
  ASSERT_TRUE(plain.quiesced);
  ASSERT_TRUE(hidden.quiesced);
  EXPECT_LT(hidden.bytes, plain.bytes);
  EXPECT_LT(hidden.messages, plain.messages);
}

TEST(Hlp, PvHlpChOrderingUnderChurn) {
  // The Figure 6 ordering: PV > HLP > HLP-CH in bytes per node.
  const auto topo = small_domains(11);
  EmulationOptions options = quick_options();
  options.max_time = 90 * net::k_second;
  options.churn.events = 12;
  options.churn.start = 10 * net::k_second;
  options.churn.interval = net::k_second;
  options.churn.magnitude = 2;

  const auto pv_algebra = algebra::igp_cost({1, 2, 3, 5, 6, 7, 8, 9, 10});
  const auto pv = emulate_gpv(*pv_algebra, topo, options);
  const auto hlp = emulate_hlp(topo, 0, options);
  const auto ch = emulate_hlp(topo, 5, options);
  ASSERT_TRUE(pv.quiesced);
  ASSERT_TRUE(hlp.quiesced);
  ASSERT_TRUE(ch.quiesced);
  EXPECT_LT(hlp.bytes, pv.bytes);
  EXPECT_LT(ch.bytes, hlp.bytes);
}

TEST(Hlp, SelectsMinimumCostRoutes) {
  // Tiny two-domain instance with a known optimum: the direct in-domain
  // path must win over any detour.
  topology::Topology topo;
  topo.name = "tiny";
  topo.nodes = {"n0", "n1", "dst"};
  topo.destination = "dst";
  topo.domain_of = {{"n0", "dom0"}, {"n1", "dom1"}, {"dst", "dom0"}};
  const auto cost = [](std::int64_t c) { return algebra::Value::integer(c); };
  topo.links.push_back(topology::TopoLink{"n0", "dst", cost(1), cost(1), {}});
  topo.links.push_back(topology::TopoLink{"n1", "n0", cost(5), cost(5), {}});

  const auto result = emulate_hlp(topo, 0, quick_options());
  ASSERT_TRUE(result.quiesced);
  ASSERT_TRUE(result.best_routes.contains("n0"));
  EXPECT_EQ(result.best_routes.at("n0").first, "1");  // direct cost
  ASSERT_TRUE(result.best_routes.contains("n1"));
  EXPECT_EQ(result.best_routes.at("n1").first, "6");  // 5 + 1 across domains
}

TEST(Hlp, RejectsNegativeThreshold) {
  const auto topo = small_domains();
  EXPECT_THROW(emulate_hlp(topo, -1, quick_options()), InvalidArgument);
}

TEST(Churn, RequiresIntegerCosts) {
  // Churn on an atom-signature policy is a usage error.
  EmulationOptions options = quick_options();
  options.churn.events = 2;
  const auto topo = small_domains();
  (void)topo;
  // Reuse the SPP gadget path: signatures there are atoms.
  EXPECT_THROW(
      emulate_spp(spp::good_gadget(), options),
      InvalidArgument);
}

}  // namespace
}  // namespace fsr
