// End-to-end tests of the automated safety analysis (Section IV),
// reproducing every verdict the paper reports:
//   * shortest hop-count: strictly monotone (sat);
//   * Gao-Rexford guideline A: strict unsat, plain monotone sat with the
//     witness model C=1, P=2, R=2;
//   * guideline A (x) hop-count: safe by the composition rule;
//   * GOOD/BAD/DISAGREE gadgets: safe / not provably safe / not provably
//     safe;
//   * the Figure-3 iBGP instance: eighteen constraints, unsat, with a
//     six-constraint minimal core touching only the reflectors a, b, c.
// Both solver pipelines (textual Yices script and direct API) are checked
// against each other.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "algebra/additive_algebra.h"
#include "algebra/lexical_product.h"
#include "algebra/standard_policies.h"
#include "campaign/scenario_source.h"
#include "fsr/incremental_session.h"
#include "fsr/safety_analyzer.h"
#include "groundtruth/engine.h"
#include "spp/gadgets.h"
#include "spp/translate.h"
#include "util/error.h"

namespace fsr {
namespace {

SafetyAnalyzer textual_analyzer() {
  SafetyAnalyzer::Options options;
  options.via_textual_pipeline = true;
  return SafetyAnalyzer(options);
}

SafetyAnalyzer direct_analyzer() {
  SafetyAnalyzer::Options options;
  options.via_textual_pipeline = false;
  return SafetyAnalyzer(options);
}

TEST(SafetyAnalyzer, HopCountIsStrictlyMonotone) {
  const auto report =
      textual_analyzer().analyze(*algebra::shortest_hop_count());
  EXPECT_EQ(report.verdict, SafetyVerdict::safe);
  ASSERT_EQ(report.checks.size(), 1u);
  EXPECT_TRUE(report.checks[0].holds);
  // The emitted script carries the paper's forall template.
  EXPECT_NE(report.checks[0].yices_script.find(
                "(assert (forall (s::Sig) (< s (+ s 1))))"),
            std::string::npos);
}

TEST(SafetyAnalyzer, ZeroWeightIgpCostIsMonotoneOnly) {
  const auto algebra = algebra::igp_cost({0, 3});
  const auto report = textual_analyzer().analyze(*algebra);
  EXPECT_EQ(report.verdict, SafetyVerdict::not_provably_safe);
  ASSERT_EQ(report.checks.size(), 2u);
  EXPECT_FALSE(report.checks[0].holds);  // strict fails on the 0 weight
  EXPECT_TRUE(report.checks[1].holds);   // plain holds
}

TEST(SafetyAnalyzer, GaoRexfordStrictFailsPlainHoldsWithPaperModel) {
  const auto report =
      textual_analyzer().analyze(*algebra::gao_rexford_guideline_a());
  EXPECT_EQ(report.verdict, SafetyVerdict::not_provably_safe);
  ASSERT_EQ(report.checks.size(), 2u);

  const MonotonicityReport& strict = report.checks[0];
  EXPECT_FALSE(strict.holds);
  EXPECT_EQ(strict.preference_constraint_count, 3u);
  EXPECT_EQ(strict.monotonicity_constraint_count, 5u);
  // The minimal core pins a self-loop entry (c (+) C = C or p (+) P = P).
  ASSERT_EQ(strict.unsat_core.size(), 1u);
  EXPECT_EQ(strict.unsat_core[0].kind,
            ConstraintProvenance::Kind::monotonicity);

  const MonotonicityReport& plain = report.checks[1];
  EXPECT_TRUE(plain.holds);
  EXPECT_EQ(plain.model.at("C"), 1);
  EXPECT_EQ(plain.model.at("P"), 2);
  EXPECT_EQ(plain.model.at("R"), 2);
}

TEST(SafetyAnalyzer, GaoRexfordWithHopCountIsSafeByComposition) {
  const auto report =
      textual_analyzer().analyze(*algebra::gao_rexford_with_hop_count());
  EXPECT_EQ(report.verdict, SafetyVerdict::safe);
  // Factor 1 strict fails, factor 1 plain holds, factor 2 strict holds.
  ASSERT_EQ(report.checks.size(), 3u);
  EXPECT_FALSE(report.checks[0].holds);
  EXPECT_TRUE(report.checks[1].holds);
  EXPECT_TRUE(report.checks[2].holds);
}

TEST(SafetyAnalyzer, WidestShortestIsSafeByComposition) {
  const auto report =
      textual_analyzer().analyze(*algebra::widest_shortest({10, 100, 1000}));
  EXPECT_EQ(report.verdict, SafetyVerdict::safe);
}

TEST(SafetyAnalyzer, AllMonotoneNoStrictFactorIsNotProvablySafe) {
  // bandwidth (x) bandwidth: both factors monotone-only.
  const auto product =
      algebra::lexical_product(algebra::bandwidth_classes({10, 100}),
                               algebra::bandwidth_classes({10, 100}));
  const auto report = textual_analyzer().analyze(*product);
  EXPECT_EQ(report.verdict, SafetyVerdict::not_provably_safe);
}

TEST(SafetyAnalyzer, NonMonotoneFirstFactorStopsComposition) {
  // BAD gadget algebra as primary factor: not even monotone.
  const auto bad = spp::algebra_from_spp(spp::bad_gadget());
  const auto product =
      algebra::lexical_product(bad, algebra::shortest_hop_count());
  const auto report = textual_analyzer().analyze(*product);
  EXPECT_EQ(report.verdict, SafetyVerdict::not_provably_safe);
  ASSERT_EQ(report.checks.size(), 2u);
  EXPECT_FALSE(report.checks[1].holds);  // plain also fails
}

TEST(SafetyAnalyzer, GoodGadgetIsSafe) {
  const auto report =
      textual_analyzer().analyze(*spp::algebra_from_spp(spp::good_gadget()));
  EXPECT_EQ(report.verdict, SafetyVerdict::safe);
}

TEST(SafetyAnalyzer, BadGadgetIsNotProvablySafe) {
  const auto report =
      textual_analyzer().analyze(*spp::algebra_from_spp(spp::bad_gadget()));
  EXPECT_EQ(report.verdict, SafetyVerdict::not_provably_safe);
  const auto* core = report.failing_core();
  ASSERT_NE(core, nullptr);
  // The dispute cycle of BAD GADGET involves all three nodes' rankings and
  // all three monotonicity constraints: a 6-element core.
  EXPECT_EQ(core->size(), 6u);
}

TEST(SafetyAnalyzer, DisagreeIsNotProvablySafe) {
  // Known false positive of the strict-monotonicity test: DISAGREE always
  // converges in practice, yet is not strictly monotone (the paper reports
  // the same verdict).
  const auto report = textual_analyzer().analyze(
      *spp::algebra_from_spp(spp::disagree_gadget()));
  EXPECT_EQ(report.verdict, SafetyVerdict::not_provably_safe);
}

TEST(SafetyAnalyzer, Figure3EighteenConstraintsUnsat) {
  const auto a = spp::algebra_from_spp(spp::ibgp_figure3_gadget());
  const auto report = textual_analyzer().analyze(*a);
  EXPECT_EQ(report.verdict, SafetyVerdict::not_provably_safe);
  const MonotonicityReport& strict = report.checks[0];
  EXPECT_EQ(
      strict.preference_constraint_count + strict.monotonicity_constraint_count,
      18u);
}

TEST(SafetyAnalyzer, Figure3CoreTouchesOnlyReflectors) {
  const auto a = spp::algebra_from_spp(spp::ibgp_figure3_gadget());
  const auto report = textual_analyzer().analyze(*a);
  const auto* core = report.failing_core();
  ASSERT_NE(core, nullptr);
  EXPECT_EQ(core->size(), 6u);  // the oscillation cycle, minimal
  // Every core constraint mentions only reflector paths (a, b, c routes);
  // the egress nodes d, e, f never appear — the paper's diagnostic.
  for (const auto& prov : *core) {
    EXPECT_EQ(prov.description.find("d-a-"), std::string::npos) << prov.description;
    EXPECT_EQ(prov.description.find("e-b-"), std::string::npos) << prov.description;
    EXPECT_EQ(prov.description.find("f-c-"), std::string::npos) << prov.description;
    EXPECT_EQ(prov.description.find("rank at d"), std::string::npos);
    EXPECT_EQ(prov.description.find("rank at e"), std::string::npos);
    EXPECT_EQ(prov.description.find("rank at f"), std::string::npos);
  }
}

TEST(SafetyAnalyzer, Figure3FixedIsSafe) {
  const auto a = spp::algebra_from_spp(spp::ibgp_figure3_fixed());
  const auto report = textual_analyzer().analyze(*a);
  EXPECT_EQ(report.verdict, SafetyVerdict::safe);
}

TEST(SafetyAnalyzer, PipelinesAgree) {
  // Textual (emit -> parse -> solve) and direct API pipelines must agree
  // on verdicts, models, and cores for all the standard cases.
  const std::vector<algebra::AlgebraPtr> algebras = {
      algebra::shortest_hop_count(),
      algebra::gao_rexford_guideline_a(),
      algebra::gao_rexford_guideline_b(),
      algebra::backup_routing(),
      spp::algebra_from_spp(spp::good_gadget()),
      spp::algebra_from_spp(spp::bad_gadget()),
      spp::algebra_from_spp(spp::disagree_gadget()),
      spp::algebra_from_spp(spp::ibgp_figure3_gadget()),
  };
  for (const auto& algebra : algebras) {
    const auto textual = textual_analyzer().analyze(*algebra);
    const auto direct = direct_analyzer().analyze(*algebra);
    EXPECT_EQ(textual.verdict, direct.verdict) << algebra->name();
    ASSERT_EQ(textual.checks.size(), direct.checks.size()) << algebra->name();
    for (std::size_t i = 0; i < textual.checks.size(); ++i) {
      EXPECT_EQ(textual.checks[i].holds, direct.checks[i].holds);
      EXPECT_EQ(textual.checks[i].model.values, direct.checks[i].model.values);
      ASSERT_EQ(textual.checks[i].unsat_core.size(),
                direct.checks[i].unsat_core.size());
      for (std::size_t j = 0; j < textual.checks[i].unsat_core.size(); ++j) {
        EXPECT_EQ(textual.checks[i].unsat_core[j].description,
                  direct.checks[i].unsat_core[j].description);
      }
    }
  }
}

TEST(SafetyAnalyzer, EmittedScriptMatchesPaperShape) {
  const std::string script = SafetyAnalyzer::emit_yices_script(
      algebra::gao_rexford_guideline_a()->symbolic(),
      MonotonicityMode::strict);
  EXPECT_NE(script.find("(define-type Sig (subtype (n::nat) (> n 0)))"),
            std::string::npos);
  EXPECT_NE(script.find("(define C::Sig)"), std::string::npos);
  EXPECT_NE(script.find(";; route preference constraints"),
            std::string::npos);
  EXPECT_NE(script.find(";; strict monotonicity constraints"),
            std::string::npos);
  EXPECT_NE(script.find("(check)"), std::string::npos);
}

TEST(SafetyAnalyzer, NarrativeSuggestsCompositionForMonotoneAlgebras) {
  const auto report =
      textual_analyzer().analyze(*algebra::gao_rexford_guideline_a());
  EXPECT_NE(report.narrative.find("tie-breaker"), std::string::npos);
}

// Unsat-core *minimality* on the gadget library: every reported core
// element is necessary — removing any single one flips the check to sat.
TEST(SafetyAnalyzer, GadgetLibraryCoresAreMinimal) {
  const std::vector<spp::SppInstance> unsafe_gadgets = {
      spp::bad_gadget(), spp::disagree_gadget(), spp::ibgp_figure3_gadget()};
  for (const spp::SppInstance& gadget : unsafe_gadgets) {
    const auto algebra = spp::algebra_from_spp(gadget);
    IncrementalSafetySession session =
        SafetyAnalyzer::open_incremental(*algebra, MonotonicityMode::strict);
    const auto full = session.check({});
    ASSERT_FALSE(full.holds) << gadget.name();
    ASSERT_FALSE(full.core.empty()) << gadget.name();

    // The core must itself be unsatisfiable even with everything else
    // removed, and minimal: dropping any one member restores sat.
    std::vector<std::size_t> non_core;
    for (std::size_t i = 0; i < session.constraint_count(); ++i) {
      if (std::find(full.core.begin(), full.core.end(), i) ==
          full.core.end()) {
        non_core.push_back(i);
      }
    }
    std::vector<std::size_t> everything(session.constraint_count());
    for (std::size_t i = 0; i < everything.size(); ++i) everything[i] = i;
    session.make_variable(everything);
    EXPECT_FALSE(session.check(full.core).holds) << gadget.name();
    for (std::size_t i = 0; i < full.core.size(); ++i) {
      std::vector<std::size_t> keep = non_core;
      for (std::size_t j = 0; j < full.core.size(); ++j) {
        if (j != i) keep.push_back(full.core[j]);
      }
      EXPECT_TRUE(session.check(keep).holds)
          << gadget.name() << ": core element '"
          << session.provenance(full.core[i]).description
          << "' is not necessary";
    }
  }
}

// The incremental session must agree with the per-call analyzer pipelines
// on every standard case: same verdicts, same core provenance.
TEST(IncrementalSession, AgreesWithAnalyzer) {
  const std::vector<algebra::AlgebraPtr> algebras = {
      algebra::gao_rexford_guideline_a(),
      spp::algebra_from_spp(spp::good_gadget()),
      spp::algebra_from_spp(spp::bad_gadget()),
      spp::algebra_from_spp(spp::disagree_gadget()),
      spp::algebra_from_spp(spp::ibgp_figure3_gadget()),
      spp::algebra_from_spp(spp::ibgp_figure3_fixed()),
  };
  for (const auto& algebra : algebras) {
    const MonotonicityReport direct = direct_analyzer().check_monotonicity(
        *algebra, MonotonicityMode::strict);
    IncrementalSafetySession session =
        SafetyAnalyzer::open_incremental(*algebra, MonotonicityMode::strict);
    const auto result = session.check({});
    EXPECT_EQ(result.holds, direct.holds) << algebra->name();
    if (!result.holds) {
      ASSERT_EQ(result.core.size(), direct.unsat_core.size())
          << algebra->name();
      for (std::size_t i = 0; i < result.core.size(); ++i) {
        EXPECT_EQ(session.provenance(result.core[i]).description,
                  direct.unsat_core[i].description);
      }
    }
  }
}

TEST(IncrementalSession, ExtrasInTheCoreAreReportedByIndex) {
  // A counterexample can run through constraints a check introduced itself
  // (per-check extras); the session must surface them so the repair search
  // can branch on them instead of silently dying.
  const auto algebra = spp::algebra_from_spp(spp::good_gadget());
  IncrementalSafetySession session =
      SafetyAnalyzer::open_incremental(*algebra, MonotonicityMode::strict);
  // Retract the whole base so the only possible cycle is the two extras.
  std::vector<std::size_t> everything(session.constraint_count());
  for (std::size_t i = 0; i < everything.size(); ++i) everything[i] = i;
  session.make_variable(everything);
  std::vector<IncrementalSafetySession::Extra> extras = {
      {algebra::PrefRel::strictly_better, "r(1-0)", "r(2-0)", "one"},
      {algebra::PrefRel::strictly_better, "r(2-0)", "r(1-0)", "two"},
  };
  const auto result = session.check({}, extras);
  ASSERT_FALSE(result.holds);
  EXPECT_TRUE(result.core.empty());  // the cycle is purely the extras
  EXPECT_EQ(result.extra_core, (std::vector<std::size_t>{0, 1}));
}

TEST(IncrementalSession, RepeatedChecksReuseTheEngine) {
  const auto algebra = spp::algebra_from_spp(spp::bad_gadget());
  IncrementalSafetySession session =
      SafetyAnalyzer::open_incremental(*algebra, MonotonicityMode::strict);
  const auto first = session.check({});
  ASSERT_FALSE(first.holds);
  session.make_variable(first.core);
  for (int round = 0; round < 5; ++round) {
    // Dropping any single core member must flip the gadget to provably
    // safe, and each re-check shares the one engine base.
    std::vector<std::size_t> keep;
    for (std::size_t j = 0; j < first.core.size(); ++j) {
      if (j != static_cast<std::size_t>(round % first.core.size())) {
        keep.push_back(first.core[j]);
      }
    }
    EXPECT_TRUE(session.check(keep).holds);
  }
  EXPECT_EQ(session.check_count(), 6u);
  EXPECT_LE(session.engine_rebuilds(), 2u);
}

// Agreement sweep between the solver verdict and the exact ground-truth
// backends: a SAFE verdict is a proof of strict monotonicity, which (by
// Sobrinho / Griffin-Shepherd-Wilfong) implies a UNIQUE stable assignment
// — so both oracles must report exactly one on every provably-safe SPP
// instance, gadget or random. (The converse is not checked: not-provably-
// safe instances may have any number of stable states — DISAGREE has two,
// BAD none — which is the false-positive caveat the paper itself makes.)
TEST(SafetyAnalyzer, SafeVerdictImpliesUniqueStableAssignmentBothOracles) {
  const SafetyAnalyzer analyzer;
  const auto sat =
      groundtruth::make_engine(groundtruth::Mode::sat_search);
  const auto enumerate =
      groundtruth::make_engine(groundtruth::Mode::enumerate);

  std::vector<spp::SppInstance> instances = {
      spp::good_gadget(), spp::bad_gadget(), spp::disagree_gadget(),
      spp::ibgp_figure3_gadget(), spp::ibgp_figure3_fixed(),
      spp::good_gadget_chain(4), spp::bad_gadget_chain(3)};
  for (int i = 0; i < 20; ++i) {
    instances.push_back(campaign::random_spp_instance(
        "sweep-" + std::to_string(i), 500 + static_cast<std::uint64_t>(i),
        campaign::RandomSppSweep{}));
  }

  std::size_t safe_seen = 0;
  for (const spp::SppInstance& instance : instances) {
    const SafetyReport report =
        analyzer.analyze(*spp::algebra_from_spp(instance));
    if (report.verdict != SafetyVerdict::safe) continue;
    ++safe_seen;
    const groundtruth::Result via_sat = sat->analyze(instance);
    ASSERT_TRUE(via_sat.decided) << instance.name();
    EXPECT_TRUE(via_sat.has_stable) << instance.name();
    EXPECT_EQ(via_sat.count, 1u) << instance.name();
    EXPECT_TRUE(via_sat.count_exact) << instance.name();
    const groundtruth::Result via_enum = enumerate->analyze(instance);
    ASSERT_TRUE(via_enum.decided) << instance.name();
    EXPECT_EQ(via_enum.count, 1u) << instance.name();
  }
  EXPECT_GT(safe_seen, 2u);  // the sweep actually hit safe instances
}

// The safety analyzer's big win over enumeration-backed validation: on a
// Rocketfuel-shaped chain whose state space dwarfs any enumeration cap,
// the solver verdict and the CDCL ground truth still cross-validate.
TEST(SafetyAnalyzer, SatSearchCrossValidatesBeyondEnumeration) {
  const spp::SppInstance chain = spp::good_gadget_chain(16);  // 3^48 states
  const SafetyReport report =
      SafetyAnalyzer().analyze(*spp::algebra_from_spp(chain));
  EXPECT_EQ(report.verdict, SafetyVerdict::safe);
  const auto result =
      groundtruth::make_engine(groundtruth::Mode::sat_search)->analyze(chain);
  ASSERT_TRUE(result.decided);
  EXPECT_EQ(result.count, 1u);
  EXPECT_TRUE(result.count_exact);
  ASSERT_TRUE(result.witness.has_value());
  EXPECT_TRUE(spp::is_stable_assignment(chain, *result.witness));
  // Enumeration cannot even start here.
  EXPECT_THROW((void)spp::enumerate_stable_assignments(chain),
               InvalidArgument);
}

TEST(SafetyAnalyzer, SolveTimeIsRecorded) {
  const auto report =
      textual_analyzer().analyze(*spp::algebra_from_spp(spp::bad_gadget()));
  EXPECT_GT(report.total_solve_time_ms(), 0.0);
  // Gadget-scale analyses complete well under the paper's 100 ms budget.
  EXPECT_LT(report.total_solve_time_ms(), 100.0);
}

}  // namespace
}  // namespace fsr
