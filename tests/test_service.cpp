// Tests for the fsr::api service façade: typed request validation and
// fingerprints, the JSON wire protocol, and the service's two core
// contracts — responses byte-identical to serial execution for any pool
// size and any client-thread interleaving, and warm-session reuse that
// never changes deterministic bytes (only provenance).
//
// Runs under the `service` ctest label.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "api/json.h"
#include "api/request.h"
#include "api/service.h"
#include "api/wire.h"
#include "fsr/incremental_session.h"
#include "groundtruth/stable_sat.h"
#include "obs/export.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "repair/repair_engine.h"
#include "spp/gadgets.h"
#include "spp/translate.h"
#include "util/error.h"

namespace fsr::api {
namespace {

std::shared_ptr<const spp::SppInstance> shared_gadget(const std::string& name) {
  return std::make_shared<const spp::SppInstance>(spp::gadget_by_name(name));
}

/// A mixed batch exercising every request kind, with duplicated content so
/// pooled runs hit warm sessions on SOME schedule.
std::vector<Request> mixed_batch() {
  std::vector<Request> requests;
  for (const char* name : {"bad", "disagree", "good", "bad-chain-4"}) {
    requests.push_back(GroundTruthRequest{shared_gadget(name), {}});
    requests.push_back(RepairRequest{shared_gadget(name), 7});
    requests.push_back(AnalyzeSafetyRequest{nullptr, shared_gadget(name)});
  }
  // Duplicates of earlier content (fresh shared_ptrs on purpose: identity
  // comes from the fingerprint, not the pointer).
  requests.push_back(GroundTruthRequest{shared_gadget("bad"), {}});
  requests.push_back(RepairRequest{shared_gadget("bad-chain-4"), 7});
  requests.push_back(
      GroundTruthRequest{shared_gadget("good"), groundtruth::Mode::enumerate});
  EmulateRequest emulate;
  emulate.spp = shared_gadget("good");
  emulate.seed = 7;
  requests.push_back(emulate);
  // Simulations, convergent and oscillating, interleaved with the solver
  // kinds — the same mix the CI serve smoke byte-diffs across pool sizes.
  SimulateRequest sim_good;
  sim_good.spp = shared_gadget("good");
  sim_good.seed = 7;
  requests.push_back(sim_good);
  SimulateRequest sim_bad;
  sim_bad.spp = shared_gadget("bad");
  sim_bad.seed = 7;
  sim_bad.scenario = "staged";
  requests.push_back(sim_bad);
  return requests;
}

/// Deterministic rendering of a response: the id is zeroed because it
/// encodes submission ORDER, which multi-client submission legitimately
/// permutes — everything else must be schedule-independent.
std::string deterministic_bytes(Response response) {
  response.id = 0;
  return wire::render_response(response);
}

// ------------------------------------------------------- request basics --

TEST(Request, KindsRoundTripTheirWireNames) {
  for (const RequestKind kind :
       {RequestKind::analyze_safety, RequestKind::ground_truth,
        RequestKind::repair, RequestKind::emulate, RequestKind::simulate,
        RequestKind::stats, RequestKind::debug}) {
    EXPECT_EQ(parse_request_kind(to_string(kind)), kind);
  }
  EXPECT_FALSE(parse_request_kind("nonsense").has_value());
}

TEST(Request, ValidationRejectsMalformedShapes) {
  EXPECT_THROW(validate(Request(AnalyzeSafetyRequest{})), InvalidArgument);
  EXPECT_THROW(validate(Request(GroundTruthRequest{})), InvalidArgument);
  EXPECT_THROW(validate(Request(RepairRequest{})), InvalidArgument);
  EXPECT_THROW(validate(Request(EmulateRequest{})), InvalidArgument);
  AnalyzeSafetyRequest both;
  both.spp = shared_gadget("bad");
  both.algebra = spp::algebra_from_spp(*both.spp);
  EXPECT_THROW(validate(Request(both)), InvalidArgument);
}

TEST(Request, FingerprintIsKindFreeAndSeedFreeContentIdentity) {
  const Request truth = GroundTruthRequest{shared_gadget("bad"), {}};
  const Request repair_a = RepairRequest{shared_gadget("bad"), 1};
  const Request repair_b = RepairRequest{shared_gadget("bad"), 99};
  const Request other = RepairRequest{shared_gadget("disagree"), 1};
  EXPECT_EQ(fingerprint(truth), fingerprint(repair_a));
  EXPECT_EQ(fingerprint(repair_a), fingerprint(repair_b));
  EXPECT_NE(fingerprint(repair_a), fingerprint(other));
}

// ------------------------------------------------------------- json/wire --

TEST(Json, ParsesTheWireSubset) {
  const json::Value value = json::parse(
      R"({"kind": "repair", "seed": 42, "deep": {"list": [1, 2.5, "x\n", true, null]}})");
  ASSERT_NE(value.find("kind"), nullptr);
  EXPECT_EQ(value.find("kind")->as_string("kind"), "repair");
  EXPECT_EQ(value.find("seed")->as_u64("seed"), 42u);
  const json::Value* list = value.find("deep")->find("list");
  ASSERT_NE(list, nullptr);
  const auto& items = list->as_array("list");
  ASSERT_EQ(items.size(), 5u);
  EXPECT_EQ(items[0].as_u64("0"), 1u);
  EXPECT_DOUBLE_EQ(items[1].as_number("1"), 2.5);
  EXPECT_EQ(items[2].as_string("2"), "x\n");
  EXPECT_TRUE(items[3].as_bool("3"));
  EXPECT_TRUE(items[4].is_null());
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(json::parse("{"), InvalidArgument);
  EXPECT_THROW(json::parse("{\"a\": }"), InvalidArgument);
  EXPECT_THROW(json::parse("[1,]"), InvalidArgument);
  EXPECT_THROW(json::parse("\"unterminated"), InvalidArgument);
  EXPECT_THROW(json::parse("{} trailing"), InvalidArgument);
  EXPECT_THROW(json::parse("tru"), InvalidArgument);
  // Type mismatches surface as InvalidArgument too.
  EXPECT_THROW(json::parse("3.5").as_u64("x"), InvalidArgument);
  EXPECT_THROW(json::parse("-2").as_u64("x"), InvalidArgument);
}

TEST(Wire, ParsesEveryPayloadShape) {
  EXPECT_EQ(kind_of(wire::parse_request(
                R"({"kind": "ground-truth", "gadget": "bad"})")),
            RequestKind::ground_truth);
  EXPECT_EQ(kind_of(wire::parse_request(
                R"({"kind": "analyze-safety", "policy": "guideline-a"})")),
            RequestKind::analyze_safety);
  EXPECT_EQ(kind_of(wire::parse_request(
                R"({"kind": "repair", "random": {"seed": 3}, "seed": 9})")),
            RequestKind::repair);
  EXPECT_EQ(kind_of(wire::parse_request(
                R"({"kind": "emulate", "gadget": "good", "seed": 7})")),
            RequestKind::emulate);
  const Request simulate = wire::parse_request(
      R"({"kind": "simulate", "gadget": "bad", "seed": 3,)"
      R"( "scenario": "link-flap", "suppression": "split-horizon",)"
      R"( "max-steps": 500})");
  EXPECT_EQ(kind_of(simulate), RequestKind::simulate);
  const auto& sim = std::get<SimulateRequest>(simulate);
  EXPECT_EQ(sim.seed, 3u);
  EXPECT_EQ(sim.scenario, "link-flap");
  EXPECT_EQ(sim.suppression, "split-horizon");
  EXPECT_EQ(sim.max_steps, std::optional<std::uint64_t>(500));
  // Omitted => the SPVP default, exactly like scenario.
  const auto& defaulted = std::get<SimulateRequest>(wire::parse_request(
      R"({"kind": "simulate", "gadget": "bad", "seed": 3})"));
  EXPECT_EQ(defaulted.suppression, "none");
}

TEST(Wire, InlineSppMatchesTheLibraryGadgetFingerprint) {
  // The DISAGREE gadget spelled inline must canonicalize to the same
  // content identity as the library instance, name notwithstanding.
  const Request inline_request = wire::parse_request(R"({
      "kind": "ground-truth",
      "spp": {"name": "my-disagree", "destination": "0",
              "edges": [["1", "0"], ["2", "0"], ["1", "2"]],
              "paths": [["1", "2", "0"], ["1", "0"],
                        ["2", "1", "0"], ["2", "0"]]}})");
  const Request library_request =
      Request(GroundTruthRequest{shared_gadget("disagree"), {}});
  EXPECT_EQ(fingerprint(inline_request), fingerprint(library_request));
}

TEST(Wire, SchemaViolationsThrow) {
  EXPECT_THROW(wire::parse_request("not json"), InvalidArgument);
  EXPECT_THROW(wire::parse_request(R"({"gadget": "bad"})"), InvalidArgument);
  EXPECT_THROW(wire::parse_request(R"({"kind": "bogus", "gadget": "bad"})"),
               InvalidArgument);
  EXPECT_THROW(wire::parse_request(R"({"kind": "repair"})"), InvalidArgument);
  EXPECT_THROW(
      wire::parse_request(R"({"kind": "repair", "gadget": "no-such"})"),
      InvalidArgument);
  EXPECT_THROW(wire::parse_request(
                   R"({"kind": "repair", "gadget": "bad", "policy": "backup"})"),
               InvalidArgument);
  EXPECT_THROW(
      wire::parse_request(
          R"({"kind": "ground-truth", "gadget": "bad", "mode": "magic"})"),
      InvalidArgument);
  // Simulate-only fields are validated, not silently defaulted.
  EXPECT_THROW(validate(wire::parse_request(
                   R"({"kind": "simulate", "gadget": "bad",)"
                   R"( "scenario": "earthquake"})")),
               InvalidArgument);
  EXPECT_THROW(validate(wire::parse_request(
                   R"({"kind": "simulate", "gadget": "bad",)"
                   R"( "suppression": "route-dampening"})")),
               InvalidArgument);
  EXPECT_THROW(validate(wire::parse_request(
                   R"({"kind": "simulate", "gadget": "bad",)"
                   R"( "max-steps": 0})")),
               InvalidArgument);
}

TEST(Service, SimulateSuppressionRoundTripsThroughTheWire) {
  AnalysisService service;
  for (const std::string& policy : sim::suppression_names()) {
    SimulateRequest request;
    request.spp = shared_gadget("good");
    request.seed = 7;
    request.suppression = policy;
    const Response response = service.call(request);
    ASSERT_TRUE(response.sim.has_value()) << policy;
    EXPECT_EQ(response.sim->suppression, policy);
    const std::string rendered = wire::render_response(response);
    EXPECT_NE(rendered.find("\"suppression\": \"" + policy + "\""),
              std::string::npos)
        << rendered;
  }
}

TEST(Service, SimulateCutoffRendersNoFixedPoint) {
  // A budget-cut run must say so on the wire — and must not pass off its
  // mid-flight selections as a fixed point (WIRE.md's cutoff contract).
  AnalysisService service;
  SimulateRequest request;
  request.spp = shared_gadget("bad");
  request.seed = 3;
  request.max_steps = 3;
  const Response response = service.call(request);
  ASSERT_TRUE(response.sim.has_value());
  EXPECT_TRUE(response.sim->cutoff);
  const std::string rendered = wire::render_response(response);
  EXPECT_NE(rendered.find("\"cutoff\": true"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("\"fixed_point_stable\": false"), std::string::npos)
      << rendered;
  EXPECT_NE(rendered.find("\"fixed_point\": {}"), std::string::npos)
      << rendered;
}

TEST(Wire, UnknownKindErrorNamesTheValidKinds) {
  // fsr_serve turns this throw into an in-band {"error": ...} line, so the
  // message must let a client fix the request without reading the source.
  try {
    wire::parse_request(R"({"kind": "simulat", "gadget": "bad"})");
    FAIL() << "unknown kind parsed";
  } catch (const InvalidArgument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("unknown request kind 'simulat'"),
              std::string::npos)
        << message;
    EXPECT_NE(message.find("simulate"), std::string::npos) << message;
    EXPECT_NE(message.find("analyze-safety"), std::string::npos) << message;
  }
}

TEST(Wire, TimingsAreOptInProvenance) {
  AnalysisService service;
  const Response response =
      service.call(GroundTruthRequest{shared_gadget("bad"), {}});
  const std::string plain = wire::render_response(response);
  EXPECT_EQ(plain.find("wall_ms"), std::string::npos);
  EXPECT_EQ(plain.find("warm_session"), std::string::npos);
  EXPECT_EQ(plain.find("conflicts"), std::string::npos);
  wire::RenderOptions timed;
  timed.timings = true;
  const std::string with_timings = wire::render_response(response, timed);
  EXPECT_NE(with_timings.find("\"wall_ms\""), std::string::npos);
  EXPECT_NE(with_timings.find("\"warm_session\""), std::string::npos);
}

// ------------------------------------------------------ service contracts --

TEST(Service, AnswersEveryKindAndErrorsStayInBand) {
  AnalysisService service;
  const Response truth =
      service.call(GroundTruthRequest{shared_gadget("bad"), {}});
  ASSERT_TRUE(truth.ground_truth.has_value());
  EXPECT_TRUE(truth.ground_truth->decided);
  EXPECT_FALSE(truth.ground_truth->has_stable);

  const Response safety =
      service.call(AnalyzeSafetyRequest{nullptr, shared_gadget("good")});
  ASSERT_TRUE(safety.safety.has_value());
  EXPECT_EQ(safety.safety->verdict, SafetyVerdict::safe);

  const Response repair = service.call(RepairRequest{shared_gadget("bad"), 7});
  ASSERT_TRUE(repair.repair.has_value());
  EXPECT_TRUE(repair.repair->repaired());

  EmulateRequest emulate;
  emulate.spp = shared_gadget("good");
  emulate.seed = 7;
  const Response emulated = service.call(emulate);
  ASSERT_TRUE(emulated.emulation.has_value());
  EXPECT_TRUE(emulated.emulation->quiesced);

  SimulateRequest simulate;
  simulate.spp = shared_gadget("good");
  simulate.seed = 7;
  const Response simulated = service.call(simulate);
  ASSERT_TRUE(simulated.sim.has_value());
  EXPECT_TRUE(simulated.sim->converged);
  EXPECT_TRUE(simulated.sim->fixed_point_stable);
  // Content identity is shared with the solver kinds over the same
  // instance — but a repeat is NEVER served warm (the simulator keeps no
  // solver state worth caching).
  EXPECT_EQ(simulated.fingerprint,
            fingerprint(Request(GroundTruthRequest{shared_gadget("good"), {}})));
  EXPECT_FALSE(service.call(simulate).warm_session);

  // A malformed request resolves its future with an in-band error.
  const Response failed = service.call(Request(RepairRequest{}));
  EXPECT_FALSE(failed.error.empty());
  EXPECT_FALSE(failed.repair.has_value());
  EXPECT_GE(service.stats().errors, 1u);
}

TEST(Service, PerRequestModeOverridesTheDefaultOracle) {
  AnalysisService service;
  const Response enumerated = service.call(
      GroundTruthRequest{shared_gadget("disagree"), groundtruth::Mode::enumerate});
  ASSERT_TRUE(enumerated.ground_truth.has_value());
  EXPECT_TRUE(enumerated.ground_truth->decided);
  EXPECT_EQ(enumerated.ground_truth->count, 2u);
  EXPECT_GT(enumerated.ground_truth->states_scanned, 0u);  // enumerate ran
}

TEST(Service, WarmGroundTruthAgreesWithTheScratchEngineEverywhere) {
  // Warm-session answers must carry the exact deterministic fields of the
  // one-shot engine — the byte-stability the whole reuse design rests on.
  AnalysisService service;
  const auto engine = groundtruth::make_engine(groundtruth::Mode::sat_search);
  for (const char* name :
       {"good", "bad", "disagree", "ibgp-figure3", "ibgp-figure3-fixed",
        "bad-chain-4", "bad-chain-8"}) {
    const auto instance = shared_gadget(name);
    // Twice per instance: the second answer comes from the warm session.
    for (int round = 0; round < 2; ++round) {
      const Response response =
          service.call(GroundTruthRequest{instance, {}});
      ASSERT_TRUE(response.ground_truth.has_value()) << name;
      const groundtruth::Result scratch = engine->analyze(*instance);
      EXPECT_EQ(response.ground_truth->decided, scratch.decided) << name;
      EXPECT_EQ(response.ground_truth->has_stable, scratch.has_stable) << name;
      EXPECT_EQ(response.ground_truth->count, scratch.count) << name;
      EXPECT_EQ(response.ground_truth->count_exact, scratch.count_exact)
          << name;
      EXPECT_EQ(response.ground_truth->witness, scratch.witness) << name;
    }
  }
}

TEST(Service, BudgetStoppedGroundTruthAnswersFallBackToColdBytes) {
  // 7 independent DISAGREE pairs sharing the destination: 2^7 = 128 stable
  // assignments, past the 64-solution enumeration bound — so WHICH subset
  // a capped enumeration finds follows the solver's search order, which
  // warm learned clauses would perturb. The service must detect the
  // budget stop and recompute on a fresh session instead of serving
  // order-dependent warm bytes.
  auto chain = std::make_shared<spp::SppInstance>("disagree-chain", "0");
  for (int k = 0; k < 7; ++k) {
    const std::string a = "a" + std::to_string(k);
    const std::string b = "b" + std::to_string(k);
    chain->add_edge(a, "0");
    chain->add_edge(b, "0");
    chain->add_edge(a, b);
    chain->add_permitted_path({a, b, "0"});
    chain->add_permitted_path({a, "0"});
    chain->add_permitted_path({b, a, "0"});
    chain->add_permitted_path({b, "0"});
  }
  const std::shared_ptr<const spp::SppInstance> instance = std::move(chain);

  AnalysisService service;  // threads = 1: the second request WOULD be warm
  const Response cold = service.call(GroundTruthRequest{instance, {}});
  ASSERT_TRUE(cold.ground_truth.has_value());
  EXPECT_FALSE(cold.ground_truth->count_exact);
  EXPECT_EQ(cold.ground_truth->budget_stop,
            groundtruth::BudgetStop::solutions);
  const Response repeat = service.call(GroundTruthRequest{instance, {}});
  EXPECT_FALSE(repeat.warm_session);  // warmth declined, not just unreported
  EXPECT_EQ(deterministic_bytes(cold), deterministic_bytes(repeat));
}

TEST(Service, SecondIdenticalFingerprintRequestReportsAWarmHit) {
  AnalysisService service;  // threads = 1: scheduling is deterministic
  const Response cold = service.call(RepairRequest{shared_gadget("bad"), 7});
  const Response warm = service.call(RepairRequest{shared_gadget("bad"), 7});
  EXPECT_FALSE(cold.warm_session);
  EXPECT_TRUE(warm.warm_session);
  // Warmth is provenance only: deterministic bytes must not move.
  EXPECT_EQ(deterministic_bytes(cold), deterministic_bytes(warm));

  const Response truth_cold =
      service.call(GroundTruthRequest{shared_gadget("disagree"), {}});
  const Response truth_warm =
      service.call(GroundTruthRequest{shared_gadget("disagree"), {}});
  EXPECT_FALSE(truth_cold.warm_session);
  EXPECT_TRUE(truth_warm.warm_session);
  EXPECT_EQ(deterministic_bytes(truth_cold), deterministic_bytes(truth_warm));

  // Kinds share the entry: the repair above already built bad's oracle, so
  // a ground-truth request on the same content starts warm.
  const Response cross = service.call(GroundTruthRequest{shared_gadget("bad"), {}});
  EXPECT_TRUE(cross.warm_session);
  EXPECT_GE(service.stats().warm_hits, 3u);
}

TEST(Service, SessionCacheCapacityBoundsAndEvicts) {
  ServiceOptions options;
  options.session_cache_capacity = 1;
  AnalysisService service(options);
  // Alternating fingerprints under capacity 1: every request evicts the
  // other's entry, so nothing is ever warm.
  for (int round = 0; round < 2; ++round) {
    EXPECT_FALSE(
        service.call(GroundTruthRequest{shared_gadget("bad"), {}}).warm_session);
    EXPECT_FALSE(service.call(GroundTruthRequest{shared_gadget("disagree"), {}})
                     .warm_session);
  }
  EXPECT_EQ(service.stats().warm_hits, 0u);
  EXPECT_GE(service.stats().sessions_evicted, 2u);

  // Capacity 0 disables reuse outright.
  ServiceOptions disabled;
  disabled.session_cache_capacity = 0;
  AnalysisService cold_service(disabled);
  cold_service.call(GroundTruthRequest{shared_gadget("bad"), {}});
  EXPECT_FALSE(cold_service.call(GroundTruthRequest{shared_gadget("bad"), {}})
                   .warm_session);
}

TEST(Service, BorrowedSessionsMatchSelfBuiltReportBytes) {
  // The RepairSessions contract, head on: a report computed against
  // caller-owned (then reused, warm) sessions is byte-identical to the
  // engine building everything itself — including the already-safe gate
  // path ("good") and the oracle-heavy chains.
  const repair::RepairEngine engine;
  for (const char* name : {"good", "bad", "disagree", "ibgp-figure3",
                           "bad-chain-4", "bad-chain-8"}) {
    const spp::SppInstance instance = spp::gadget_by_name(name);
    const std::string self_built = repair::to_json(engine.repair(instance, 7));

    IncrementalSafetySession::Options gate_options;
    gate_options.extract_models = false;
    IncrementalSafetySession gate(
        spp::algebra_from_spp(instance)->symbolic(), MonotonicityMode::strict,
        gate_options);
    groundtruth::StableSatSession oracle(instance);
    repair::RepairSessions sessions;
    sessions.strict_gate = &gate;
    sessions.oracle = &oracle;
    EXPECT_EQ(repair::to_json(engine.repair(instance, 7, sessions)),
              self_built)
        << name << " (cold borrowed sessions)";
    EXPECT_EQ(repair::to_json(engine.repair(instance, 7, sessions)),
              self_built)
        << name << " (warm borrowed sessions)";
  }
}

TEST(Service, ResponsesByteIdenticalToSerialAtAnyPoolSizeAndClientCount) {
  // The concurrency contract: N requests from M client threads through a
  // pool of any size produce responses byte-identical to serial execution.
  const std::vector<Request> requests = mixed_batch();

  std::vector<std::string> serial;
  {
    AnalysisService service;  // threads = 1
    for (const Request& request : requests) {
      serial.push_back(deterministic_bytes(service.call(request)));
    }
  }

  for (const int pool_size : {2, 8}) {
    ServiceOptions options;
    options.threads = pool_size;
    AnalysisService service(options);

    constexpr std::size_t k_clients = 4;
    std::vector<std::future<Response>> futures(requests.size());
    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < k_clients; ++c) {
      clients.emplace_back([&, c]() {
        for (std::size_t i = c; i < requests.size(); i += k_clients) {
          futures[i] = service.submit(requests[i]);  // disjoint slots
        }
      });
    }
    for (std::thread& client : clients) client.join();

    for (std::size_t i = 0; i < requests.size(); ++i) {
      EXPECT_EQ(deterministic_bytes(futures[i].get()), serial[i])
          << "pool=" << pool_size << " request=" << i;
    }
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.submitted, requests.size());
    EXPECT_EQ(stats.completed, requests.size());
    EXPECT_EQ(stats.errors, 0u);
  }
}

TEST(Service, BatchRunReturnsResponsesInSubmissionOrder) {
  ServiceOptions options;
  options.threads = 4;
  AnalysisService service(options);
  const std::vector<Response> responses = service.run(mixed_batch());
  for (std::size_t i = 0; i < responses.size(); ++i) {
    EXPECT_EQ(responses[i].id, i);
  }
}

// ------------------------------------------------------- observability --

TEST(Wire, StatsRequestIsPayloadFreeAndFingerprintless) {
  const Request request = wire::parse_request("{\"kind\": \"stats\"}");
  EXPECT_TRUE(std::holds_alternative<StatsRequest>(request));
  EXPECT_EQ(fingerprint(request), "");
  // A payload on a stats line is a schema violation, not silently ignored.
  EXPECT_THROW(
      wire::parse_request("{\"kind\": \"stats\", \"gadget\": \"bad\"}"),
      InvalidArgument);
}

TEST(Wire, DebugRequestIsPayloadFreeAndFingerprintless) {
  const Request request = wire::parse_request("{\"kind\": \"debug\"}");
  EXPECT_TRUE(std::holds_alternative<DebugRequest>(request));
  EXPECT_EQ(fingerprint(request), "");
  EXPECT_THROW(
      wire::parse_request("{\"kind\": \"debug\", \"gadget\": \"bad\"}"),
      InvalidArgument);
}

TEST(Service, DebugRequestDrainsTheInstalledFlightRecorder) {
  obs::FlightRecorder recorder(256);
  obs::install_recorder(&recorder);
  std::string line;
  {
    AnalysisService service;
    service.call(GroundTruthRequest{shared_gadget("bad"), {}});
    const Response response = service.call(DebugRequest{});
    EXPECT_TRUE(response.error.empty());
    EXPECT_EQ(response.fingerprint, "");
    ASSERT_TRUE(response.debug.has_value());
    EXPECT_TRUE(response.debug->enabled);
    ASSERT_FALSE(response.debug->events.empty());
    line = wire::render_response(response);
  }
  obs::install_recorder(nullptr);

  // Golden schema: key set and shape, never values (they are live state).
  const json::Value parsed = json::parse(line);
  EXPECT_EQ(parsed.find("kind")->as_string("kind"), "debug");
  const json::Value* debug = parsed.find("debug");
  ASSERT_NE(debug, nullptr);
  EXPECT_TRUE(debug->find("enabled")->as_bool("enabled"));
  ASSERT_NE(debug->find("dropped"), nullptr);
  const auto& events = debug->find("events")->as_array("events");
  ASSERT_FALSE(events.empty());
  bool saw_begin = false, saw_end = false, saw_query = false;
  for (const json::Value& event : events) {
    for (const char* key : {"seq", "ts_us", "tid", "kind", "detail", "a",
                            "b"}) {
      EXPECT_NE(event.find(key), nullptr) << key;
    }
    const std::string kind = event.find("kind")->as_string("kind");
    if (kind == "request-begin" &&
        event.find("detail")->as_string("detail") == "ground-truth") {
      saw_begin = true;
    } else if (kind == "request-end") {
      saw_end = true;
      EXPECT_FALSE(event.find("detail")->as_string("detail").empty());
    } else if (kind == "solver-query") {
      saw_query = true;
    }
  }
  // The ground-truth request left its whole forensic trail: begin, the
  // solver query it ran, and its end mark with the fingerprint.
  EXPECT_TRUE(saw_begin);
  EXPECT_TRUE(saw_end);
  EXPECT_TRUE(saw_query);
}

TEST(Service, DebugRequestReportsDisabledWithoutARecorder) {
  ASSERT_EQ(obs::recorder(), nullptr);
  AnalysisService service;
  const Response response = service.call(DebugRequest{});
  EXPECT_TRUE(response.error.empty());
  ASSERT_TRUE(response.debug.has_value());
  EXPECT_FALSE(response.debug->enabled);
  EXPECT_TRUE(response.debug->events.empty());
  const std::string line = wire::render_response(response);
  const json::Value parsed = json::parse(line);
  EXPECT_FALSE(parsed.find("debug")->find("enabled")->as_bool("enabled"));
}

TEST(Service, SlowRequestWatchdogCountsWithoutTouchingBytes) {
  const Request request = GroundTruthRequest{shared_gadget("bad"), {}};
  std::string baseline;
  {
    AnalysisService plain;  // default threshold: nothing here is slow
    baseline = deterministic_bytes(plain.call(request));
    EXPECT_EQ(plain.stats().slow_requests, 0u);
  }
  ServiceOptions options;
  options.slow_request_ms = 1e-6;  // everything is an outlier
  AnalysisService service(options);
  obs::FlightRecorder recorder(64);
  obs::install_recorder(&recorder);
  const Response flagged = service.call(request);
  obs::install_recorder(nullptr);
  // Observation only: identical bytes, but the watchdog counted and left
  // its forensic mark in the recorder.
  EXPECT_EQ(deterministic_bytes(flagged), baseline);
  EXPECT_GE(service.stats().slow_requests, 1u);
  bool saw_slow = false;
  for (const obs::RecorderEvent& event : recorder.drain()) {
    if (event.kind == obs::RecorderEventKind::slow_request) saw_slow = true;
  }
  EXPECT_TRUE(saw_slow);

  ServiceOptions off;
  off.slow_request_ms = 0;  // 0 disables the watchdog outright
  AnalysisService quiet(off);
  quiet.call(request);
  EXPECT_EQ(quiet.stats().slow_requests, 0u);
}

TEST(Service, StatsRequestAnswersTheGoldenSchema) {
  AnalysisService service;
  service.call(GroundTruthRequest{shared_gadget("bad"), {}});
  service.call(RepairRequest{shared_gadget("bad"), 7});
  const Response response = service.call(StatsRequest{});
  EXPECT_TRUE(response.error.empty());
  ASSERT_TRUE(response.stats.has_value());
  EXPECT_EQ(response.fingerprint, "");

  // The golden schema: values are live execution state, so the contract
  // is the KEY SET and rendering shape, never the numbers.
  const std::string line = wire::render_response(response);
  const json::Value parsed = json::parse(line);
  EXPECT_EQ(parsed.find("kind")->as_string("kind"), "stats");
  const json::Value* stats = parsed.find("stats");
  ASSERT_NE(stats, nullptr);
  const json::Value* service_block = stats->find("service");
  ASSERT_NE(service_block, nullptr);
  for (const char* key :
       {"submitted", "completed", "errors", "warm_hits", "affinity_hits",
        "sessions_built", "sessions_evicted", "slow_requests"}) {
    EXPECT_NE(service_block->find(key), nullptr) << key;
  }
  const json::Value* metrics = stats->find("metrics");
  ASSERT_NE(metrics, nullptr);
  // Spot-check the consolidated instruments the two calls above exercised.
  for (const char* key :
       {"service.requests.submitted", "service.requests.completed",
        "session_cache.misses", "sat.queries", "sat.conflicts", "smt.checks",
        "repair.runs", "repair.solver_checks"}) {
    EXPECT_NE(metrics->find(key), nullptr) << key;
  }

  // The embedded service block is this service's own delta view: two
  // analysis calls plus the stats call itself were submitted by now.
  EXPECT_EQ(service_block->find("submitted")->as_u64("submitted"), 3u);
  EXPECT_GE(metrics->find("sat.queries")->as_u64("sat.queries"), 1u);
}

TEST(Service, ServiceStatsAreRegistryDeltasPerInstance) {
  // Two services used back-to-back must each report their own work even
  // though both write the same process-wide instruments.
  {
    AnalysisService first;
    first.call(GroundTruthRequest{shared_gadget("bad"), {}});
    EXPECT_EQ(first.stats().submitted, 1u);
    EXPECT_EQ(first.stats().completed, 1u);
  }
  AnalysisService second;
  EXPECT_EQ(second.stats().submitted, 0u);
  EXPECT_EQ(second.stats().completed, 0u);
  second.call(GroundTruthRequest{shared_gadget("disagree"), {}});
  const ServiceStats stats = second.stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.errors, 0u);
}

TEST(Service, ByteIdentityHoldsWithTracingOnAtPoolSizesOneAndEight) {
  // The tentpole's hard contract: installing a tracer must not move one
  // deterministic byte, at any pool size, against a tracing-off baseline.
  const std::vector<Request> requests = mixed_batch();
  std::vector<std::string> baseline;
  {
    AnalysisService service;  // tracing off, threads = 1
    for (const Request& request : requests) {
      baseline.push_back(deterministic_bytes(service.call(request)));
    }
  }

  for (const int pool_size : {1, 8}) {
    obs::Tracer tracer;
    obs::install_tracer(&tracer);
    ServiceOptions options;
    options.threads = pool_size;
    std::vector<Response> responses;
    {
      AnalysisService service(options);
      responses = service.run(requests);
    }
    obs::install_tracer(nullptr);
    for (std::size_t i = 0; i < responses.size(); ++i) {
      EXPECT_EQ(deterministic_bytes(responses[i]), baseline[i])
          << "pool=" << pool_size << " request=" << i;
    }
    // The run actually traced: every request records at least its
    // service.execute span.
    EXPECT_GE(tracer.event_count(), requests.size());
    const std::string trace = tracer.chrome_trace_json();
    const json::Value parsed = json::parse(trace);
    EXPECT_GE(parsed.find("traceEvents")->as_array("traceEvents").size(),
              requests.size());
  }
}

TEST(Service, ByteIdentityHoldsWithEveryDiagnosticChannelEnabled) {
  // The PR's hard contract, all channels at once: flight recorder
  // installed, metrics file writer scraping, tracer recording, and the
  // slow-request watchdog firing on every request must not move one
  // deterministic byte at any pool size against an everything-off serial
  // baseline. ("stats"/"debug" are live by contract and excluded here,
  // exactly as the CI smoke filters them before diffing.)
  const std::vector<Request> requests = mixed_batch();
  std::vector<std::string> baseline;
  {
    AnalysisService service;  // channels off, threads = 1
    for (const Request& request : requests) {
      baseline.push_back(deterministic_bytes(service.call(request)));
    }
  }

  namespace fs = std::filesystem;
  const fs::path metrics_path =
      fs::temp_directory_path() / "fsr_test_service_metrics.prom";
  for (const int pool_size : {1, 8}) {
    obs::Tracer tracer;
    obs::install_tracer(&tracer);
    obs::FlightRecorder recorder(256);
    obs::install_recorder(&recorder);
    std::vector<Response> responses;
    {
      obs::MetricsFileWriter::Options writer_options;
      writer_options.path = metrics_path.string();
      writer_options.interval = std::chrono::milliseconds(5);
      obs::MetricsFileWriter writer(writer_options);
      ServiceOptions options;
      options.threads = pool_size;
      options.slow_request_ms = 1e-6;  // the watchdog fires on everything
      AnalysisService service(options);
      responses = service.run(requests);
      // The live kinds answer in-band alongside the analysis traffic.
      const Response debug = service.call(DebugRequest{});
      ASSERT_TRUE(debug.debug.has_value());
      EXPECT_TRUE(debug.debug->enabled);
      EXPECT_FALSE(debug.debug->events.empty());
      writer.stop();
      EXPECT_TRUE(writer.ok());
    }
    obs::install_recorder(nullptr);
    obs::install_tracer(nullptr);

    for (std::size_t i = 0; i < responses.size(); ++i) {
      EXPECT_EQ(deterministic_bytes(responses[i]), baseline[i])
          << "pool=" << pool_size << " request=" << i;
    }
    // Every channel actually saw traffic.
    EXPECT_GT(recorder.recorded(), 0u);
    EXPECT_GE(tracer.event_count(), requests.size());
  }
  fs::remove(metrics_path);
}

TEST(Service, RepairEffortDeltasAreExactInBorrowedAndSelfBuiltPaths) {
  // The satellite bugfix, asserted directly on the report structs: per-run
  // effort (solver checks, oracle session deltas) and per-run wall clocks
  // must measure the same thing whether sessions were borrowed — cold or
  // warm — or lazily self-built.
  const repair::RepairEngine engine;
  for (const char* name : {"good", "bad", "disagree", "bad-chain-4"}) {
    const spp::SppInstance instance = spp::gadget_by_name(name);
    const repair::RepairReport self_built = engine.repair(instance, 7);

    IncrementalSafetySession::Options gate_options;
    gate_options.extract_models = false;
    IncrementalSafetySession gate(
        spp::algebra_from_spp(instance)->symbolic(), MonotonicityMode::strict,
        gate_options);
    groundtruth::StableSatSession oracle(instance);
    repair::RepairSessions sessions;
    sessions.strict_gate = &gate;
    sessions.oracle = &oracle;
    const repair::RepairReport cold = engine.repair(instance, 7, sessions);
    const repair::RepairReport warm = engine.repair(instance, 7, sessions);

    for (const repair::RepairReport* borrowed : {&cold, &warm}) {
      EXPECT_EQ(borrowed->solver_checks, self_built.solver_checks) << name;
      EXPECT_EQ(borrowed->candidates_checked, self_built.candidates_checked)
          << name;
      EXPECT_EQ(borrowed->cores_seen, self_built.cores_seen) << name;
      EXPECT_EQ(borrowed->oracle_queries, self_built.oracle_queries) << name;
    }
    // Oracle group effort: every run demands the same group set, so the
    // encoded+cache-hit total is identical across borrowed runs no matter
    // how warm the session is (the SPLIT is what warmth amortises). The
    // self-built path additionally encodes the base instance inside its
    // own delta window — strictly more work, never less.
    EXPECT_EQ(cold.oracle_groups_encoded + cold.oracle_cache_hits,
              warm.oracle_groups_encoded + warm.oracle_cache_hits)
        << name;
    EXPECT_GE(self_built.oracle_groups_encoded + self_built.oracle_cache_hits,
              cold.oracle_groups_encoded + cold.oracle_cache_hits)
        << name;
    // Both paths time the whole repair call (setup included), so every
    // run reports a positive wall clock — the self-built path used to
    // drop its constructor work (spec translation, session builds) on
    // the floor relative to the borrowed path.
    EXPECT_GT(self_built.wall_ms, 0.0) << name;
    EXPECT_GT(cold.wall_ms, 0.0) << name;
    EXPECT_GT(warm.wall_ms, 0.0) << name;
  }
}

}  // namespace
}  // namespace fsr::api
