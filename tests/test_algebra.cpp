// Unit tests for the routing-algebra layer: values, finite algebras, the
// combined-extension derivation (checked against the paper's published
// Gao-Rexford tables), additive algebras, and lexical products.
#include <gtest/gtest.h>

#include "algebra/additive_algebra.h"
#include "algebra/finite_algebra.h"
#include "algebra/lexical_product.h"
#include "algebra/standard_policies.h"
#include "util/error.h"

namespace fsr::algebra {
namespace {

Value A(const char* s) { return Value::atom(s); }
Value I(std::int64_t v) { return Value::integer(v); }

// ---------------------------------------------------------------- value --

TEST(Value, KindsAndAccessors) {
  EXPECT_EQ(I(7).as_integer(), 7);
  EXPECT_EQ(A("C").as_atom(), "C");
  const Value p = Value::pair(A("C"), I(3));
  EXPECT_EQ(p.first().as_atom(), "C");
  EXPECT_EQ(p.second().as_integer(), 3);
}

TEST(Value, AccessorTypeErrors) {
  EXPECT_THROW(I(1).as_atom(), InvalidArgument);
  EXPECT_THROW(A("x").as_integer(), InvalidArgument);
  EXPECT_THROW(I(1).first(), InvalidArgument);
}

TEST(Value, EqualityAndOrdering) {
  EXPECT_EQ(I(2), I(2));
  EXPECT_NE(I(2), I(3));
  EXPECT_NE(I(2), A("2"));
  EXPECT_LT(I(1), I(2));
  EXPECT_EQ(Value::pair(A("a"), I(1)), Value::pair(A("a"), I(1)));
  EXPECT_NE(Value::pair(A("a"), I(1)), Value::pair(A("a"), I(2)));
}

TEST(Value, ToString) {
  EXPECT_EQ(I(5).to_string(), "5");
  EXPECT_EQ(A("C").to_string(), "C");
  EXPECT_EQ(Value::pair(A("C"), I(2)).to_string(), "(C, 2)");
}

// ------------------------------------------------------ finite algebra --

TEST(FiniteAlgebra, BuilderValidatesNames) {
  FiniteAlgebra::Builder b("t");
  b.add_signature("X");
  EXPECT_THROW(b.prefer("X", PrefRel::strictly_better, "ghost"),
               InvalidArgument);
  EXPECT_THROW(b.set_generation("nolabel", "X", "X"), InvalidArgument);
}

TEST(FiniteAlgebra, DefaultsPhiGenerationAndOpenFilters) {
  FiniteAlgebra::Builder b("t");
  b.add_signature("X");
  b.add_label("l", "l");
  const AlgebraPtr a = b.build();
  EXPECT_TRUE(a->import_allows(A("l"), A("X")));
  EXPECT_TRUE(a->export_allows(A("l"), A("X")));
  EXPECT_FALSE(a->extend(A("l"), A("X")).has_value());  // phi by default
  EXPECT_FALSE(a->originate(A("l")).has_value());
}

TEST(FiniteAlgebra, ComplementIsSymmetric) {
  const AlgebraPtr a = gao_rexford_guideline_a();
  EXPECT_EQ(a->complement(A("c")), A("p"));
  EXPECT_EQ(a->complement(A("p")), A("c"));
  EXPECT_EQ(a->complement(A("r")), A("r"));
}

// The combined (+) of guideline A must reproduce the paper's table:
//        C    R    P
//   c    C    phi  phi
//   r    R    phi  phi
//   p    P    P    P
TEST(FiniteAlgebra, GaoRexfordCombinedTableMatchesPaper) {
  const AlgebraPtr a = gao_rexford_guideline_a();
  const auto combined = [&](const char* l, const char* s) {
    return a->combined_extend(A(l), A(s));
  };
  EXPECT_EQ(combined("c", "C"), A("C"));
  EXPECT_FALSE(combined("c", "R").has_value());
  EXPECT_FALSE(combined("c", "P").has_value());
  EXPECT_EQ(combined("r", "C"), A("R"));
  EXPECT_FALSE(combined("r", "R").has_value());
  EXPECT_FALSE(combined("r", "P").has_value());
  EXPECT_EQ(combined("p", "C"), A("P"));
  EXPECT_EQ(combined("p", "R"), A("P"));
  EXPECT_EQ(combined("p", "P"), A("P"));
}

TEST(FiniteAlgebra, GaoRexfordSymbolicExtensionsAreTheFiveNonPhiEntries) {
  const SymbolicSpec spec = gao_rexford_guideline_a()->symbolic();
  EXPECT_EQ(spec.signatures.size(), 3u);
  EXPECT_EQ(spec.preferences.size(), 3u);
  // Exactly the five constraints of the paper's Section IV-C encoding.
  EXPECT_EQ(spec.extensions.size(), 5u);
}

TEST(FiniteAlgebra, GaoRexfordPreferences) {
  const AlgebraPtr a = gao_rexford_guideline_a();
  EXPECT_EQ(a->compare(A("C"), A("P")), Ordering::better);
  EXPECT_EQ(a->compare(A("P"), A("C")), Ordering::worse);
  EXPECT_EQ(a->compare(A("P"), A("R")), Ordering::equal);
  EXPECT_EQ(a->compare(A("C"), A("C")), Ordering::equal);
}

TEST(FiniteAlgebra, GuidelineBTotalOrder) {
  const AlgebraPtr b = gao_rexford_guideline_b();
  EXPECT_EQ(b->compare(A("C"), A("R")), Ordering::better);
  EXPECT_EQ(b->compare(A("R"), A("P")), Ordering::better);
  EXPECT_EQ(b->compare(A("C"), A("P")), Ordering::better);  // transitivity
}

TEST(FiniteAlgebra, CyclicPreferencesDetected) {
  FiniteAlgebra::Builder b("cyclic");
  b.add_signature("X").add_signature("Y");
  b.add_label("l", "l");
  b.prefer("X", PrefRel::strictly_better, "Y");
  b.prefer("Y", PrefRel::strictly_better, "X");
  const AlgebraPtr a = b.build();
  const auto* finite = dynamic_cast<const FiniteAlgebra*>(a.get());
  ASSERT_NE(finite, nullptr);
  EXPECT_FALSE(finite->has_consistent_preferences());
  EXPECT_THROW(a->compare(A("X"), A("Y")), InvalidArgument);
  // Symbolic access still works so the analyzer can diagnose the cycle.
  EXPECT_EQ(a->symbolic().preferences.size(), 2u);
}

TEST(FiniteAlgebra, EqualViaMutualWeakConstraints) {
  FiniteAlgebra::Builder b("weak");
  b.add_signature("X").add_signature("Y");
  b.add_label("l", "l");
  b.prefer("X", PrefRel::better_or_equal, "Y");
  b.prefer("Y", PrefRel::better_or_equal, "X");
  const AlgebraPtr a = b.build();
  EXPECT_EQ(a->compare(A("X"), A("Y")), Ordering::equal);
}

TEST(FiniteAlgebra, IncomparableWhenUnrelated) {
  FiniteAlgebra::Builder b("partial");
  b.add_signature("X").add_signature("Y").add_signature("Z");
  b.add_label("l", "l");
  b.prefer("X", PrefRel::strictly_better, "Y");
  const AlgebraPtr a = b.build();
  EXPECT_EQ(a->compare(A("X"), A("Z")), Ordering::incomparable);
}

TEST(FiniteAlgebra, BackupRoutingDegradesAcrossBackupLinks) {
  const AlgebraPtr a = backup_routing();
  EXPECT_EQ(a->extend(A("b"), A("C")), A("B"));
  EXPECT_EQ(a->extend(A("c"), A("B")), A("B"));  // sticky
  EXPECT_EQ(a->compare(A("P"), A("B")), Ordering::better);
  EXPECT_EQ(a->compare(A("C"), A("B")), Ordering::better);
  // Backup routes may be exported towards providers (that is the point).
  EXPECT_TRUE(a->export_allows(A("c"), A("B")));
  EXPECT_FALSE(a->export_allows(A("c"), A("P")));
}

// ---------------------------------------------------- additive algebra --

TEST(AdditiveAlgebra, HopCountSemantics) {
  const AlgebraPtr a = shortest_hop_count();
  EXPECT_EQ(a->extend(I(1), I(3)), I(4));
  EXPECT_EQ(a->originate(I(1)), I(1));
  EXPECT_EQ(a->compare(I(2), I(5)), Ordering::better);
  EXPECT_EQ(a->compare(I(5), I(5)), Ordering::equal);
  EXPECT_TRUE(a->import_allows(I(1), I(9)));
  EXPECT_TRUE(a->export_allows(I(1), I(9)));
  EXPECT_EQ(a->complement(I(1)), I(1));
}

TEST(AdditiveAlgebra, SymbolicTemplatesPerWeight) {
  const AlgebraPtr a = igp_cost({5, 10});
  const SymbolicSpec spec = a->symbolic();
  EXPECT_TRUE(spec.signatures.empty());
  ASSERT_EQ(spec.additive_templates.size(), 2u);
  EXPECT_EQ(spec.additive_templates[0].delta, 5);
  EXPECT_EQ(spec.additive_templates[1].delta, 10);
}

TEST(AdditiveAlgebra, RejectsEmptyWeights) {
  EXPECT_THROW(AdditiveAlgebra("x", {}), InvalidArgument);
}

// ----------------------------------------------------- lexical product --

TEST(LexicalProduct, PairwiseSemantics) {
  const AlgebraPtr gr_hops = gao_rexford_with_hop_count();
  const Value label = Value::pair(A("c"), I(1));
  const Value sig = Value::pair(A("C"), I(2));
  const auto extended = gr_hops->extend(label, sig);
  ASSERT_TRUE(extended.has_value());
  EXPECT_EQ(*extended, Value::pair(A("C"), I(3)));
}

TEST(LexicalProduct, PrimaryDecidesBeforeTiebreak) {
  const AlgebraPtr gr_hops = gao_rexford_with_hop_count();
  // Customer route with MORE hops still beats provider route with fewer.
  EXPECT_EQ(gr_hops->compare(Value::pair(A("C"), I(9)),
                             Value::pair(A("P"), I(1))),
            Ordering::better);
  // Equal class: hop count breaks the tie.
  EXPECT_EQ(gr_hops->compare(Value::pair(A("C"), I(2)),
                             Value::pair(A("C"), I(4))),
            Ordering::better);
  // P and R are equally preferred; hop count decides.
  EXPECT_EQ(gr_hops->compare(Value::pair(A("P"), I(3)),
                             Value::pair(A("R"), I(2))),
            Ordering::worse);
}

TEST(LexicalProduct, PhiInEitherComponentProhibits) {
  const AlgebraPtr gr_hops = gao_rexford_with_hop_count();
  // Combined c (+) P = phi: the business factor's export filter rejects
  // announcing provider routes towards a provider. (Plain extend is only
  // the generation operator (+)_P, which stays defined.)
  EXPECT_FALSE(gr_hops
                   ->combined_extend(Value::pair(A("c"), I(1)),
                                     Value::pair(A("P"), I(2)))
                   .has_value());
  EXPECT_TRUE(gr_hops
                  ->extend(Value::pair(A("c"), I(1)),
                           Value::pair(A("P"), I(2)))
                  .has_value());
}

TEST(LexicalProduct, ExportFilterComesFromBusinessFactor) {
  const AlgebraPtr gr_hops = gao_rexford_with_hop_count();
  EXPECT_FALSE(gr_hops->export_allows(Value::pair(A("c"), I(1)),
                                      Value::pair(A("P"), I(2))));
  EXPECT_TRUE(gr_hops->export_allows(Value::pair(A("p"), I(1)),
                                     Value::pair(A("P"), I(2))));
}

TEST(LexicalProduct, FactorsFlattenNestedProducts) {
  const AlgebraPtr nested = lexical_product(
      gao_rexford_guideline_a(),
      lexical_product(bandwidth_classes({10, 100}), shortest_hop_count()));
  EXPECT_EQ(nested->lexical_factors().size(), 3u);
}

TEST(LexicalProduct, OriginationComposes) {
  const AlgebraPtr gr_hops = gao_rexford_with_hop_count();
  const auto orig = gr_hops->originate(Value::pair(A("c"), I(1)));
  ASSERT_TRUE(orig.has_value());
  EXPECT_EQ(*orig, Value::pair(A("C"), I(1)));
}

// ------------------------------------------------------ bandwidth ------

TEST(BandwidthClasses, MinSemanticsAndPreference) {
  const AlgebraPtr bw = bandwidth_classes({10, 100, 1000});
  EXPECT_EQ(bw->extend(A("bw100"), A("bw1000")), A("bw100"));  // bottleneck
  EXPECT_EQ(bw->extend(A("bw1000"), A("bw10")), A("bw10"));
  EXPECT_EQ(bw->compare(A("bw1000"), A("bw10")), Ordering::better);
}

TEST(BandwidthClasses, NotStrictlyMonotone) {
  // min(link, route) can leave the class unchanged: the symbolic spec must
  // contain an extension with from == to, which breaks strictness.
  const SymbolicSpec spec = bandwidth_classes({10, 100})->symbolic();
  bool has_fixed_point = false;
  for (const auto& ext : spec.extensions) {
    if (ext.from_sig == ext.to_sig) has_fixed_point = true;
  }
  EXPECT_TRUE(has_fixed_point);
}

}  // namespace
}  // namespace fsr::algebra
