// Tests for the event-driven SPVP simulator (src/sim): seeded-schedule
// determinism (same seed => the identical event trace), convergence on the
// safe gadget library, exact oscillation detection on the unsafe members,
// churn scenarios, MRAI batching, and option validation. The 100-seed
// differential sweep against the SAT oracle lives in test_differential.cpp
// (fuzz label); this file is the fast lane.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "groundtruth/engine.h"
#include "obs/metrics.h"
#include "sim/simulator.h"
#include "spp/gadgets.h"
#include "spp/spp.h"
#include "util/error.h"

namespace fsr::sim {
namespace {

SimResult run_gadget(const std::string& name, SimOptions options) {
  return simulate(spp::gadget_by_name(name), options);
}

// ------------------------------------------------------------ scenarios --

TEST(Sim, ScenarioNamesAreTheDocumentedFour) {
  const std::vector<std::string> expected = {"steady", "staged", "link-flap",
                                             "session-reset"};
  EXPECT_EQ(scenario_names(), expected);
  for (const std::string& name : expected) {
    EXPECT_TRUE(is_scenario_name(name)) << name;
  }
  EXPECT_FALSE(is_scenario_name("earthquake"));
  EXPECT_FALSE(is_scenario_name(""));
}

TEST(Sim, SuppressionNamesAreTheDocumentedThree) {
  const std::vector<std::string> expected = {"none", "split-horizon",
                                             "poisoned-reverse"};
  EXPECT_EQ(suppression_names(), expected);
  for (const std::string& name : expected) {
    EXPECT_TRUE(is_suppression_name(name)) << name;
  }
  EXPECT_FALSE(is_suppression_name("route-dampening"));
  EXPECT_FALSE(is_suppression_name(""));
}

TEST(Sim, InvalidOptionsThrow) {
  SimOptions bad_scenario;
  bad_scenario.scenario = "earthquake";
  EXPECT_THROW(run_gadget("good", bad_scenario), InvalidArgument);
  SimOptions no_budget;
  no_budget.max_steps = 0;
  EXPECT_THROW(run_gadget("good", no_budget), InvalidArgument);
  SimOptions bad_suppression;
  bad_suppression.suppression = "carrier-pigeon";
  EXPECT_THROW(run_gadget("good", bad_suppression), InvalidArgument);
  SimOptions bad_detector;
  bad_detector.detector = "quantum";
  EXPECT_THROW(run_gadget("good", bad_detector), InvalidArgument);
}

// ---------------------------------------------------------- determinism --

TEST(Sim, SameSeedReproducesTheIdenticalEventTrace) {
  for (const char* gadget : {"good", "bad", "disagree", "ibgp-figure3"}) {
    for (const std::string& scenario : scenario_names()) {
      SimOptions options;
      options.seed = 42;
      options.scenario = scenario;
      options.record_trace = true;
      const SimResult first = run_gadget(gadget, options);
      const SimResult second = run_gadget(gadget, options);
      ASSERT_FALSE(first.trace.empty()) << gadget << "/" << scenario;
      EXPECT_EQ(first.trace, second.trace) << gadget << "/" << scenario;
      EXPECT_EQ(first.steps, second.steps) << gadget << "/" << scenario;
      EXPECT_EQ(first.messages, second.messages) << gadget << "/" << scenario;
      EXPECT_EQ(first.final_assignment, second.final_assignment)
          << gadget << "/" << scenario;
    }
  }
}

TEST(Sim, SeedsActuallySteerTheSchedule) {
  // Across 16 seeds the staged scenario must produce more than one distinct
  // trace — otherwise the seed is decorative and the sweep in
  // test_differential.cpp explores nothing.
  std::set<std::vector<std::string>> traces;
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    SimOptions options;
    options.seed = seed;
    options.scenario = "staged";
    options.record_trace = true;
    traces.insert(run_gadget("good", options).trace);
  }
  EXPECT_GT(traces.size(), 1u);
}

// ---------------------------------------------- convergence/oscillation --

TEST(Sim, GoodGadgetConvergesToItsUniqueStableAssignment) {
  const spp::SppInstance instance = spp::good_gadget();
  const groundtruth::Result truth =
      groundtruth::make_engine(groundtruth::Mode::enumerate)->analyze(instance);
  ASSERT_TRUE(truth.has_stable);
  ASSERT_TRUE(truth.witness.has_value());
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SimOptions options;
    options.seed = seed;
    const SimResult run = simulate(instance, options);
    EXPECT_TRUE(run.converged) << "seed " << seed;
    EXPECT_FALSE(run.oscillating) << "seed " << seed;
    EXPECT_TRUE(run.fixed_point_stable) << "seed " << seed;
    EXPECT_EQ(run.final_assignment, *truth.witness) << "seed " << seed;
    EXPECT_GT(run.messages, 0u) << "seed " << seed;
    EXPECT_LE(run.convergence_tick, run.ticks) << "seed " << seed;
  }
}

TEST(Sim, BadGadgetOscillatesUnderEverySeedAndScenario) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    for (const std::string& scenario : scenario_names()) {
      SimOptions options;
      options.seed = seed;
      options.scenario = scenario;
      const SimResult run = run_gadget("bad", options);
      EXPECT_FALSE(run.converged) << seed << "/" << scenario;
      EXPECT_TRUE(run.oscillating) << seed << "/" << scenario;
      EXPECT_GT(run.cycle_length, 0u) << seed << "/" << scenario;
    }
  }
}

TEST(Sim, DisagreeFixedPointsAreAlwaysOneOfItsTwoStableStates) {
  // DISAGREE has exactly two stable assignments; under the symmetric
  // steady schedule it livelocks (the classic flap), but staged activation
  // breaks the tie for most seeds — and whenever a run terminates it must
  // land on one of the two.
  const spp::SppInstance instance = spp::disagree_gadget();
  const groundtruth::Result truth =
      groundtruth::make_engine(groundtruth::Mode::enumerate)->analyze(instance);
  ASSERT_EQ(truth.count, 2u);
  std::size_t converged = 0;
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    SimOptions options;
    options.seed = seed;
    options.scenario = "staged";
    const SimResult run = simulate(instance, options);
    if (!run.converged) continue;
    ++converged;
    EXPECT_TRUE(run.fixed_point_stable) << "seed " << seed;
    EXPECT_TRUE(spp::is_stable_assignment(instance, run.final_assignment))
        << "seed " << seed;
  }
  EXPECT_GT(converged, 0u);
}

// ------------------------------------------------------- churn and MRAI --

TEST(Sim, ChurnScenariosStillConvergeOnSafeInstances) {
  for (const char* gadget : {"good", "ibgp-figure3-fixed", "good-chain-3"}) {
    for (const std::string& scenario :
         {std::string("link-flap"), std::string("session-reset")}) {
      SimOptions options;
      options.seed = 5;
      options.scenario = scenario;
      const SimResult run = run_gadget(gadget, options);
      EXPECT_TRUE(run.converged) << gadget << "/" << scenario;
      EXPECT_TRUE(run.fixed_point_stable) << gadget << "/" << scenario;
      EXPECT_EQ(run.scenario, scenario) << gadget;
    }
  }
}

TEST(Sim, LinkFlapCostsMessagesOverSteadyState) {
  // The flap forces withdrawals and re-announcements, so a flapped run of
  // the same (instance, seed) can never use fewer messages than steady.
  SimOptions steady;
  steady.seed = 9;
  const SimResult calm = run_gadget("good-chain-3", steady);
  SimOptions flap = steady;
  flap.scenario = "link-flap";
  const SimResult flapped = run_gadget("good-chain-3", flap);
  EXPECT_TRUE(calm.converged);
  EXPECT_TRUE(flapped.converged);
  EXPECT_GE(flapped.messages, calm.messages);
}

TEST(Sim, MraiBatchingConvergesToTheSameFixedPoint) {
  SimOptions plain;
  plain.seed = 3;
  const SimResult triggered = run_gadget("good", plain);
  SimOptions batched = plain;
  batched.mrai_ticks = 5;
  const SimResult mrai = run_gadget("good", batched);
  ASSERT_TRUE(triggered.converged);
  ASSERT_TRUE(mrai.converged);
  // MRAI delays and batches updates but must not change the destination:
  // GOOD has a unique stable assignment.
  EXPECT_EQ(mrai.final_assignment, triggered.final_assignment);
  EXPECT_TRUE(mrai.fixed_point_stable);
}

TEST(Sim, StepBudgetCutsOffUndecidedRuns) {
  SimOptions options;
  options.max_steps = 3;  // far below BAD's first state repeat
  const SimResult run = run_gadget("bad", options);
  EXPECT_FALSE(run.converged);
  EXPECT_FALSE(run.oscillating);
  EXPECT_TRUE(run.cutoff);
  EXPECT_EQ(run.steps, 3u);
}

TEST(Sim, CutoffRunsCarryNoFixedPoint) {
  // A truncated run's mid-flight selections are not a fixed point: the
  // result must not smuggle them out as one (the wire layer renders this
  // contract, so it is load-bearing beyond the struct).
  SimOptions options;
  options.max_steps = 3;
  const SimResult cut = run_gadget("bad", options);
  ASSERT_TRUE(cut.cutoff);
  EXPECT_TRUE(cut.final_assignment.empty());
  EXPECT_FALSE(cut.fixed_point_stable);
  // Decided runs never report cutoff.
  const SimResult decided = run_gadget("bad", SimOptions{});
  ASSERT_TRUE(decided.oscillating);
  EXPECT_FALSE(decided.cutoff);
  const SimResult quiesced = run_gadget("good", SimOptions{});
  ASSERT_TRUE(quiesced.converged);
  EXPECT_FALSE(quiesced.cutoff);
  EXPECT_FALSE(quiesced.final_assignment.empty());
}

// -------------------------------------------------------------- suppression --

TEST(Sim, SuppressionPoliciesAreEchoedAndStillDecideSafeInstances) {
  for (const std::string& policy : suppression_names()) {
    SimOptions options;
    options.seed = 7;
    options.suppression = policy;
    const SimResult run = run_gadget("good", options);
    EXPECT_EQ(run.suppression, policy);
    EXPECT_TRUE(run.converged) << policy;
    EXPECT_FALSE(run.cutoff) << policy;
  }
}

TEST(Sim, SplitHorizonNeverSendsMoreThanUnsuppressed) {
  // Split horizon only ever drops advertisements (towards the selected next
  // hop); for a fixed (instance, seed) it cannot generate message traffic
  // the unsuppressed run would not have.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SimOptions plain;
    plain.seed = seed;
    const SimResult none = run_gadget("good-chain-3", plain);
    SimOptions horizon = plain;
    horizon.suppression = "split-horizon";
    const SimResult suppressed = run_gadget("good-chain-3", horizon);
    EXPECT_LE(suppressed.messages, none.messages) << "seed " << seed;
  }
}

// ---------------------------------------------------------------- detectors --

std::string result_fingerprint(const SimResult& run) {
  std::string out;
  out += run.converged ? 'C' : '-';
  out += run.oscillating ? 'O' : '-';
  out += run.cutoff ? 'X' : '-';
  out += '|' + std::to_string(run.steps) + '|' + std::to_string(run.ticks);
  out += '|' + std::to_string(run.messages);
  out += '|' + std::to_string(run.route_changes);
  out += '|' + std::to_string(run.convergence_tick);
  out += '|' + std::to_string(run.cycle_length);
  out += run.fixed_point_stable ? "|S" : "|-";
  for (const auto& [node, path] : run.final_assignment) {
    out += '|' + node + '=' + spp::path_name(path);
  }
  return out;
}

TEST(Sim, IncrementalAndCanonicalDetectorsAgreeOnEveryField) {
  // The fast lane of the 100-seed sweep in test_differential.cpp: both
  // detectors must report byte-identical results on a converging, an
  // oscillating, and a tie-breaking instance.
  for (const char* gadget : {"good", "bad", "disagree"}) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      SimOptions incremental;
      incremental.seed = seed;
      SimOptions canonical = incremental;
      canonical.detector = "canonical";
      EXPECT_EQ(result_fingerprint(run_gadget(gadget, incremental)),
                result_fingerprint(run_gadget(gadget, canonical)))
          << gadget << " seed " << seed;
    }
  }
}

TEST(Sim, ForcedHashCollisionsAreVerifiedAwayAndCounted) {
  // detector_hash_mask=0 makes every state hash identical, so every
  // post-churn step looks like a cycle candidate. Canonical verification
  // must reject the fakes (counting them) and the reported result must be
  // byte-identical to the honest-hash run — a collision can never fake a
  // cycle, only cost time.
  const std::uint64_t before =
      obs::registry().counter("sim.hash_collisions").value();
  SimOptions honest;
  honest.seed = 11;
  SimOptions colliding = honest;
  colliding.detector_hash_mask = 0;
  for (const char* gadget : {"good", "bad"}) {
    EXPECT_EQ(result_fingerprint(run_gadget(gadget, honest)),
              result_fingerprint(run_gadget(gadget, colliding)))
        << gadget;
  }
  const std::uint64_t after =
      obs::registry().counter("sim.hash_collisions").value();
  // BAD oscillates after a multi-step prefix: the all-collisions run must
  // have hit (and rejected) at least one fake match before the real repeat.
  EXPECT_GT(after, before);
}

}  // namespace
}  // namespace fsr::sim
