// Tests for fsr::obs: registry semantics (stable handles, kind conflicts,
// deterministic snapshots), histogram bucketing, tracer span recording and
// Chrome trace_event rendering, and the no-tracer-no-overhead contract.
//
// The registry is PROCESS-GLOBAL and other suites (and instrumented
// subsystems) also write to it, so everything here asserts deltas against
// freshly captured floors or uses test-unique instrument names — never
// absolute process totals.
//
// Runs under the `fast` ctest label.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "api/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fsr::obs {
namespace {

TEST(Metrics, CounterHandleIsStableAndShared) {
  Counter& a = registry().counter("test_obs.counter_stable");
  Counter& b = registry().counter("test_obs.counter_stable");
  EXPECT_EQ(&a, &b);
  const std::uint64_t floor = a.value();
  b.add(3);
  a.add();
  EXPECT_EQ(a.value(), floor + 4);
}

TEST(Metrics, KindConflictThrows) {
  registry().counter("test_obs.kind_conflict");
  EXPECT_THROW(registry().gauge("test_obs.kind_conflict"), std::logic_error);
  EXPECT_THROW(registry().histogram("test_obs.kind_conflict"),
               std::logic_error);
}

TEST(Metrics, GaugeSetsAndAdds) {
  Gauge& gauge = registry().gauge("test_obs.gauge");
  gauge.set(42);
  EXPECT_EQ(gauge.value(), 42);
  gauge.add(-50);
  EXPECT_EQ(gauge.value(), -8);
}

TEST(Metrics, HistogramPowerOfTwoBuckets) {
  Histogram& hist = registry().histogram("test_obs.histogram");
  const std::uint64_t count_floor = hist.count();
  const std::uint64_t sum_floor = hist.sum();
  // Bucket b counts samples in (2^(b-1), 2^b]; zeros and ones land in 0.
  const std::uint64_t b0 = hist.bucket(0), b1 = hist.bucket(1),
                      b2 = hist.bucket(2), b3 = hist.bucket(3);
  hist.record(0);
  hist.record(1);
  hist.record(2);
  hist.record(3);
  hist.record(8);
  EXPECT_EQ(hist.count(), count_floor + 5);
  EXPECT_EQ(hist.sum(), sum_floor + 14);
  EXPECT_EQ(hist.bucket(0), b0 + 2);  // 0, 1
  EXPECT_EQ(hist.bucket(1), b1 + 1);  // 2
  EXPECT_EQ(hist.bucket(2), b2 + 1);  // 3
  EXPECT_EQ(hist.bucket(3), b3 + 1);  // 8
}

TEST(Metrics, SnapshotIsSortedByNameAndRendersCanonicalJson) {
  registry().counter("test_obs.zz_last").add(1);
  registry().counter("test_obs.aa_first").add(2);
  const MetricsSnapshot snapshot = registry().snapshot();
  ASSERT_GE(snapshot.metrics.size(), 2u);
  for (std::size_t i = 1; i < snapshot.metrics.size(); ++i) {
    EXPECT_LT(snapshot.metrics[i - 1].name, snapshot.metrics[i].name);
  }
  // The JSON must parse and carry every instrument as a key.
  const std::string json = to_json(snapshot);
  const api::json::Value parsed = api::json::parse(json);
  EXPECT_NE(parsed.find("test_obs.zz_last"), nullptr);
  EXPECT_NE(parsed.find("test_obs.aa_first"), nullptr);
}

TEST(Metrics, ConcurrentIncrementsAreLossless) {
  Counter& counter = registry().counter("test_obs.concurrent");
  const std::uint64_t floor = counter.value();
  constexpr int k_threads = 8;
  constexpr int k_adds = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < k_threads; ++t) {
    threads.emplace_back([&counter]() {
      for (int i = 0; i < k_adds; ++i) counter.add();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), floor + k_threads * k_adds);
}

TEST(Trace, SpanIsNoOpWithoutTracer) {
  ASSERT_EQ(tracer(), nullptr);  // suites must not leak an installed tracer
  Span span("test_obs.should_not_record");
  EXPECT_FALSE(span.active());
  span.arg("ignored", std::uint64_t{1});  // must not crash
}

TEST(Trace, SpansRecordWithArgsAndNesting) {
  Tracer local;
  install_tracer(&local);
  {
    Span outer("test_obs.outer");
    outer.arg("label", std::string("a\"b"));  // exercises escaping
    {
      Span inner("test_obs.inner");
      inner.arg("n", std::uint64_t{7});
      inner.arg("flag", true);
    }
  }
  install_tracer(nullptr);
  EXPECT_EQ(local.event_count(), 2u);

  const std::string json = local.chrome_trace_json();
  const api::json::Value parsed = api::json::parse(json);
  const api::json::Value* events = parsed.find("traceEvents");
  ASSERT_NE(events, nullptr);
  const auto& list = events->as_array("traceEvents");
  ASSERT_EQ(list.size(), 2u);
  // Same thread, RAII scoping: the outer span must contain the inner.
  std::uint64_t outer_start = 0, outer_end = 0, inner_start = 0, inner_end = 0;
  for (const api::json::Value& event : list) {
    const std::string name = event.find("name")->as_string("name");
    const std::uint64_t ts = event.find("ts")->as_u64("ts");
    const std::uint64_t dur = event.find("dur")->as_u64("dur");
    EXPECT_EQ(event.find("ph")->as_string("ph"), "X");
    if (name == "test_obs.outer") {
      outer_start = ts;
      outer_end = ts + dur;
      EXPECT_EQ(event.find("args")->find("label")->as_string("label"), "a\"b");
    } else {
      EXPECT_EQ(name, "test_obs.inner");
      inner_start = ts;
      inner_end = ts + dur;
      EXPECT_EQ(event.find("args")->find("n")->as_u64("n"), 7u);
    }
  }
  EXPECT_LE(outer_start, inner_start);
  EXPECT_LE(inner_end, outer_end);
}

TEST(Trace, SpanBoundAtConstructionSurvivesUninstall) {
  // A span holds the tracer it saw at construction: uninstalling mid-span
  // must neither drop the event nor crash.
  Tracer local;
  install_tracer(&local);
  {
    Span span("test_obs.mid_uninstall");
    install_tracer(nullptr);
  }
  EXPECT_EQ(local.event_count(), 1u);
}

}  // namespace
}  // namespace fsr::obs
