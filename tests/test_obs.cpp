// Tests for fsr::obs: registry semantics (stable handles, kind conflicts,
// deterministic snapshots, registration races), histogram bucketing, tracer
// span/counter/instant recording and Chrome trace_event rendering, the
// flight recorder's lock-free rings and diagnostic dumps, the OpenMetrics
// exporter, and the no-channel-no-overhead contracts.
//
// The registry is PROCESS-GLOBAL and other suites (and instrumented
// subsystems) also write to it, so everything here asserts deltas against
// freshly captured floors or uses test-unique instrument names — never
// absolute process totals.
//
// Runs under the `fast` ctest label.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "api/json.h"
#include "groundtruth/sat_solver.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace.h"

namespace fsr::obs {
namespace {

TEST(Metrics, CounterHandleIsStableAndShared) {
  Counter& a = registry().counter("test_obs.counter_stable");
  Counter& b = registry().counter("test_obs.counter_stable");
  EXPECT_EQ(&a, &b);
  const std::uint64_t floor = a.value();
  b.add(3);
  a.add();
  EXPECT_EQ(a.value(), floor + 4);
}

TEST(Metrics, KindConflictThrows) {
  registry().counter("test_obs.kind_conflict");
  EXPECT_THROW(registry().gauge("test_obs.kind_conflict"), std::logic_error);
  EXPECT_THROW(registry().histogram("test_obs.kind_conflict"),
               std::logic_error);
}

TEST(Metrics, GaugeSetsAndAdds) {
  Gauge& gauge = registry().gauge("test_obs.gauge");
  gauge.set(42);
  EXPECT_EQ(gauge.value(), 42);
  gauge.add(-50);
  EXPECT_EQ(gauge.value(), -8);
}

TEST(Metrics, HistogramPowerOfTwoBuckets) {
  Histogram& hist = registry().histogram("test_obs.histogram");
  const std::uint64_t count_floor = hist.count();
  const std::uint64_t sum_floor = hist.sum();
  // Bucket b counts samples in (2^(b-1), 2^b]; zeros and ones land in 0.
  const std::uint64_t b0 = hist.bucket(0), b1 = hist.bucket(1),
                      b2 = hist.bucket(2), b3 = hist.bucket(3);
  hist.record(0);
  hist.record(1);
  hist.record(2);
  hist.record(3);
  hist.record(8);
  EXPECT_EQ(hist.count(), count_floor + 5);
  EXPECT_EQ(hist.sum(), sum_floor + 14);
  EXPECT_EQ(hist.bucket(0), b0 + 2);  // 0, 1
  EXPECT_EQ(hist.bucket(1), b1 + 1);  // 2
  EXPECT_EQ(hist.bucket(2), b2 + 1);  // 3
  EXPECT_EQ(hist.bucket(3), b3 + 1);  // 8
}

TEST(Metrics, SnapshotIsSortedByNameAndRendersCanonicalJson) {
  registry().counter("test_obs.zz_last").add(1);
  registry().counter("test_obs.aa_first").add(2);
  const MetricsSnapshot snapshot = registry().snapshot();
  ASSERT_GE(snapshot.metrics.size(), 2u);
  for (std::size_t i = 1; i < snapshot.metrics.size(); ++i) {
    EXPECT_LT(snapshot.metrics[i - 1].name, snapshot.metrics[i].name);
  }
  // The JSON must parse and carry every instrument as a key.
  const std::string json = to_json(snapshot);
  const api::json::Value parsed = api::json::parse(json);
  EXPECT_NE(parsed.find("test_obs.zz_last"), nullptr);
  EXPECT_NE(parsed.find("test_obs.aa_first"), nullptr);
}

TEST(Metrics, ConcurrentIncrementsAreLossless) {
  Counter& counter = registry().counter("test_obs.concurrent");
  const std::uint64_t floor = counter.value();
  constexpr int k_threads = 8;
  constexpr int k_adds = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < k_threads; ++t) {
    threads.emplace_back([&counter]() {
      for (int i = 0; i < k_adds; ++i) counter.add();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), floor + k_threads * k_adds);
}

TEST(Trace, SpanIsNoOpWithoutTracer) {
  ASSERT_EQ(tracer(), nullptr);  // suites must not leak an installed tracer
  Span span("test_obs.should_not_record");
  EXPECT_FALSE(span.active());
  span.arg("ignored", std::uint64_t{1});  // must not crash
}

TEST(Trace, SpansRecordWithArgsAndNesting) {
  Tracer local;
  install_tracer(&local);
  {
    Span outer("test_obs.outer");
    outer.arg("label", std::string("a\"b"));  // exercises escaping
    {
      Span inner("test_obs.inner");
      inner.arg("n", std::uint64_t{7});
      inner.arg("flag", true);
    }
  }
  install_tracer(nullptr);
  EXPECT_EQ(local.event_count(), 2u);

  const std::string json = local.chrome_trace_json();
  const api::json::Value parsed = api::json::parse(json);
  const api::json::Value* events = parsed.find("traceEvents");
  ASSERT_NE(events, nullptr);
  // Metadata ("M") events lead the stream so viewers label tracks before
  // any data event references them; the data events follow.
  std::vector<const api::json::Value*> list;
  for (const api::json::Value& event : events->as_array("traceEvents")) {
    if (event.find("cat")->as_string("cat") == "__metadata") continue;
    list.push_back(&event);
  }
  EXPECT_EQ(events->as_array("traceEvents")
                .front()
                .find("ph")
                ->as_string("ph"),
            "M");
  ASSERT_EQ(list.size(), 2u);
  // Same thread, RAII scoping: the outer span must contain the inner.
  std::uint64_t outer_start = 0, outer_end = 0, inner_start = 0, inner_end = 0;
  for (const api::json::Value* event_ptr : list) {
    const api::json::Value& event = *event_ptr;
    const std::string name = event.find("name")->as_string("name");
    const std::uint64_t ts = event.find("ts")->as_u64("ts");
    const std::uint64_t dur = event.find("dur")->as_u64("dur");
    EXPECT_EQ(event.find("ph")->as_string("ph"), "X");
    if (name == "test_obs.outer") {
      outer_start = ts;
      outer_end = ts + dur;
      EXPECT_EQ(event.find("args")->find("label")->as_string("label"), "a\"b");
    } else {
      EXPECT_EQ(name, "test_obs.inner");
      inner_start = ts;
      inner_end = ts + dur;
      EXPECT_EQ(event.find("args")->find("n")->as_u64("n"), 7u);
    }
  }
  EXPECT_LE(outer_start, inner_start);
  EXPECT_LE(inner_end, outer_end);
}

TEST(Trace, SpanBoundAtConstructionSurvivesUninstall) {
  // A span holds the tracer it saw at construction: uninstalling mid-span
  // must neither drop the event nor crash.
  Tracer local;
  install_tracer(&local);
  {
    Span span("test_obs.mid_uninstall");
    install_tracer(nullptr);
  }
  EXPECT_EQ(local.event_count(), 1u);
}

// ------------------------------------------------------- registry races --

TEST(Metrics, ConcurrentRegistrationYieldsOneStableInstrument) {
  // Threads race FIRST-USE registration of the same names (rotated start
  // offsets so the races land on every name): all of them must resolve to
  // the same instrument and no increment may be lost.
  constexpr int k_threads = 8;
  constexpr int k_names = 6;
  constexpr int k_adds = 500;
  std::vector<std::string> names;
  for (int n = 0; n < k_names; ++n) {
    names.push_back("test_obs.reg_race_" + std::to_string(n));
  }
  std::vector<std::array<Counter*, k_names>> seen(k_threads);
  std::vector<std::thread> threads;
  for (int t = 0; t < k_threads; ++t) {
    threads.emplace_back([&, t]() {
      for (int n = 0; n < k_names; ++n) {
        const int pick = (n + t) % k_names;
        Counter& counter = registry().counter(names[static_cast<std::size_t>(pick)]);
        seen[static_cast<std::size_t>(t)][static_cast<std::size_t>(pick)] =
            &counter;
        for (int i = 0; i < k_adds; ++i) counter.add();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int n = 0; n < k_names; ++n) {
    for (int t = 1; t < k_threads; ++t) {
      EXPECT_EQ(seen[static_cast<std::size_t>(t)][static_cast<std::size_t>(n)],
                seen[0][static_cast<std::size_t>(n)])
          << names[static_cast<std::size_t>(n)];
    }
    EXPECT_EQ(seen[0][static_cast<std::size_t>(n)]->value(),
              static_cast<std::uint64_t>(k_threads) * k_adds)
        << names[static_cast<std::size_t>(n)];
  }
}

TEST(Metrics, KindConflictsStayDeterministicUnderContention) {
  // Fix the winning kind first, then race matching and conflicting
  // registrations: every conflicting call must throw, every matching call
  // must succeed, with no torn state either way.
  registry().counter("test_obs.race_kind");
  constexpr int k_threads = 8;
  constexpr int k_rounds = 100;
  std::atomic<int> conflicts{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < k_threads; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < k_rounds; ++i) {
        if (t % 2 == 0) {
          registry().counter("test_obs.race_kind").add();
        } else {
          try {
            registry().gauge("test_obs.race_kind");
            ADD_FAILURE() << "kind conflict must throw";
          } catch (const std::logic_error&) {
            conflicts.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(conflicts.load(), (k_threads / 2) * k_rounds);
  EXPECT_EQ(registry().counter("test_obs.race_kind").value(),
            static_cast<std::uint64_t>(k_threads / 2) * k_rounds);
}

// ------------------------------------------------------ flight recorder --

TEST(Recorder, KindSpellingsAreStable) {
  EXPECT_STREQ(to_string(RecorderEventKind::request_begin), "request-begin");
  EXPECT_STREQ(to_string(RecorderEventKind::request_end), "request-end");
  EXPECT_STREQ(to_string(RecorderEventKind::solver_query), "solver-query");
  EXPECT_STREQ(to_string(RecorderEventKind::cache_eviction), "cache-eviction");
  EXPECT_STREQ(to_string(RecorderEventKind::error), "error");
  EXPECT_STREQ(to_string(RecorderEventKind::slow_request), "slow-request");
  EXPECT_STREQ(to_string(RecorderEventKind::mark), "mark");
}

TEST(Recorder, RecordsAndDrainsInSeqOrder) {
  FlightRecorder local(16);
  local.record(RecorderEventKind::mark, "alpha", 1, 2);
  local.record(RecorderEventKind::solver_query, "sat.test", 10, 20);
  local.record(RecorderEventKind::error, "boom", 3);
  const std::vector<RecorderEvent> events = local.drain();
  ASSERT_EQ(events.size(), 3u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i);
  }
  EXPECT_EQ(std::string(events[0].detail), "alpha");
  EXPECT_EQ(events[0].a, 1u);
  EXPECT_EQ(events[0].b, 2u);
  EXPECT_EQ(events[1].kind, RecorderEventKind::solver_query);
  EXPECT_EQ(std::string(events[1].detail), "sat.test");
  EXPECT_EQ(events[2].kind, RecorderEventKind::error);
  EXPECT_LE(events[0].ts_us, events[2].ts_us);  // monotone per thread
  EXPECT_EQ(events[0].tid, events[2].tid);      // one writer here
  EXPECT_EQ(local.recorded(), 3u);
  EXPECT_EQ(local.dropped(), 0u);
}

TEST(Recorder, DetailTruncatesInsteadOfOverflowing) {
  FlightRecorder local(4);
  local.record(RecorderEventKind::mark, std::string(200, 'x'));
  const std::vector<RecorderEvent> events = local.drain();
  ASSERT_EQ(events.size(), 1u);
  const std::string detail(events[0].detail);
  EXPECT_EQ(detail, std::string(RecorderEvent::k_detail_capacity - 1, 'x'));
}

TEST(Recorder, WrapKeepsTheNewestAndCountsTheDrop) {
  FlightRecorder local(4);
  for (int i = 0; i < 10; ++i) {
    local.record(RecorderEventKind::mark, "e" + std::to_string(i),
                 static_cast<std::uint64_t>(i));
  }
  const std::vector<RecorderEvent> events = local.drain();
  ASSERT_EQ(events.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(events[static_cast<std::size_t>(i)].seq,
              static_cast<std::uint64_t>(6 + i));
    EXPECT_EQ(std::string(events[static_cast<std::size_t>(i)].detail),
              "e" + std::to_string(6 + i));
  }
  EXPECT_EQ(local.recorded(), 10u);
  EXPECT_EQ(local.dropped(), 6u);
}

TEST(Recorder, DrainMergesPerThreadRingsByGlobalSeq) {
  constexpr int k_threads = 4;
  constexpr int k_events = 200;
  FlightRecorder local(k_threads * k_events);  // per-thread: no ring wraps
  std::vector<std::thread> threads;
  for (int t = 0; t < k_threads; ++t) {
    threads.emplace_back([&local]() {
      for (int i = 0; i < k_events; ++i) {
        local.record(RecorderEventKind::mark, "m");
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const std::vector<RecorderEvent> events = local.drain();
  ASSERT_EQ(events.size(), static_cast<std::size_t>(k_threads * k_events));
  // seq is the global claim order: the quiesced merge is exactly 0..N-1.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i);
  }
  EXPECT_EQ(local.dropped(), 0u);
}

TEST(Recorder, RecordEventNeedsAnInstalledRecorder) {
  ASSERT_EQ(recorder(), nullptr);  // suites must not leak an installed one
  record_event(RecorderEventKind::mark, "dropped-on-the-floor");  // no crash
  FlightRecorder local(8);
  install_recorder(&local);
  EXPECT_EQ(recorder(), &local);
  record_event(RecorderEventKind::mark, "captured", 5);
  install_recorder(nullptr);
  EXPECT_EQ(recorder(), nullptr);
  const std::vector<RecorderEvent> events = local.drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::string(events[0].detail), "captured");
  EXPECT_EQ(events[0].a, 5u);
}

TEST(Recorder, DiagnosticDumpRoundTripsThroughJson) {
  namespace fs = std::filesystem;
  const fs::path path = fs::temp_directory_path() / "fsr_test_obs_dump.json";
  fs::remove(path);
  FlightRecorder local(8);
  install_recorder(&local);
  record_event(RecorderEventKind::mark, "pre-dump", 11, 22);
  EXPECT_TRUE(write_diagnostic_dump(path.string(), "unit-test"));
  install_recorder(nullptr);

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  const std::string contents((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  const api::json::Value parsed = api::json::parse(contents);
  EXPECT_EQ(parsed.find("reason")->as_string("reason"), "unit-test");
  EXPECT_EQ(parsed.find("recorded")->as_u64("recorded"), 1u);
  EXPECT_EQ(parsed.find("dropped")->as_u64("dropped"), 0u);
  const auto& events = parsed.find("events")->as_array("events");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].find("kind")->as_string("kind"), "mark");
  EXPECT_EQ(events[0].find("detail")->as_string("detail"), "pre-dump");
  EXPECT_EQ(events[0].find("a")->as_u64("a"), 11u);
  EXPECT_EQ(events[0].find("b")->as_u64("b"), 22u);
  // The registry snapshot rides along so a post-mortem has process totals.
  ASSERT_NE(parsed.find("metrics"), nullptr);
  fs::remove(path);

  // An unwritable path reports failure instead of throwing — a crash
  // handler cannot afford an exception unwinding through it.
  EXPECT_FALSE(write_diagnostic_dump("/nonexistent-dir-xyz/dump.json", "x"));
}

// ---------------------------------------------------------- openmetrics --

TEST(Export, NamesSanitizeToTheOpenMetricsCharset) {
  EXPECT_EQ(openmetrics_name("sat.conflicts"), "fsr_sat_conflicts");
  EXPECT_EQ(openmetrics_name("service.requests.submitted"),
            "fsr_service_requests_submitted");
  EXPECT_EQ(openmetrics_name("weird-name:with/chars"),
            "fsr_weird_name_with_chars");
}

TEST(Export, RenderPassesTheLintOnAHandBuiltSnapshot) {
  MetricsSnapshot snapshot;
  MetricValue counter;
  counter.name = "demo.counter";
  counter.kind = MetricValue::Kind::counter;
  counter.value = 7;
  MetricValue gauge;
  gauge.name = "demo.gauge";
  gauge.kind = MetricValue::Kind::gauge;
  gauge.value = -3;
  MetricValue hist;
  hist.name = "demo.hist";
  hist.kind = MetricValue::Kind::histogram;
  hist.count = 5;
  hist.sum = 14;
  hist.buckets = {2, 1, 1, 1};  // the metrics.h doc example
  snapshot.metrics = {counter, gauge, hist};

  const std::string text = render_openmetrics(snapshot);
  EXPECT_NE(text.find("# HELP fsr_demo_counter "), std::string::npos);
  EXPECT_NE(text.find("# TYPE fsr_demo_counter counter\n"), std::string::npos);
  EXPECT_NE(text.find("fsr_demo_counter_total 7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE fsr_demo_gauge gauge\n"), std::string::npos);
  EXPECT_NE(text.find("fsr_demo_gauge -3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE fsr_demo_hist histogram\n"), std::string::npos);
  // Power-of-two buckets become CUMULATIVE le series: counts 2,1,1,1 turn
  // into 2,3,4,5 over le=1,2,4,8, and +Inf repeats the total count.
  EXPECT_NE(text.find("fsr_demo_hist_bucket{le=\"1\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("fsr_demo_hist_bucket{le=\"2\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("fsr_demo_hist_bucket{le=\"4\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("fsr_demo_hist_bucket{le=\"8\"} 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("fsr_demo_hist_bucket{le=\"+Inf\"} 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("fsr_demo_hist_sum 14\n"), std::string::npos);
  EXPECT_NE(text.find("fsr_demo_hist_count 5\n"), std::string::npos);
  ASSERT_GE(text.size(), 6u);
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");  // mandatory trailer
}

TEST(Export, RegistryRoundTripsThroughTheExposition) {
  registry().counter("test_obs.export_counter").add(9);
  const MetricsSnapshot snapshot = registry().snapshot();
  const std::string text = render_openmetrics(snapshot);
  EXPECT_NE(text.find("fsr_test_obs_export_counter_total"), std::string::npos);
  // Every registry instrument appears under its sanitized family name.
  for (const MetricValue& metric : snapshot.metrics) {
    EXPECT_NE(text.find("# TYPE " + openmetrics_name(metric.name) + " "),
              std::string::npos)
        << metric.name;
  }
}

TEST(Export, FileWriterWritesAtomicallyAndFlushesOnStop) {
  namespace fs = std::filesystem;
  const fs::path path =
      fs::temp_directory_path() / "fsr_test_obs_metrics.prom";
  fs::remove(path);
  registry().counter("test_obs.export_writer").add(1);
  MetricsFileWriter::Options options;
  options.path = path.string();
  options.interval = std::chrono::hours(1);  // never rewrites mid-test
  MetricsFileWriter writer(options);
  writer.stop();
  writer.stop();  // idempotent
  EXPECT_TRUE(writer.ok());
  EXPECT_GE(writer.writes(), 2u);  // the immediate write plus the final one

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  const std::string contents((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("fsr_test_obs_export_writer_total"),
            std::string::npos);
  ASSERT_GE(contents.size(), 6u);
  EXPECT_EQ(contents.substr(contents.size() - 6), "# EOF\n");
  // The temp+rename idiom must not leave temp litter behind.
  for (const auto& entry : fs::directory_iterator(path.parent_path())) {
    EXPECT_EQ(entry.path().filename().string().find(
                  "fsr_test_obs_metrics.prom.tmp"),
              std::string::npos);
  }
  fs::remove(path);
}

// ------------------------------------------------- trace counters et al --

TEST(Trace, CountersInstantsAndThreadNamesRenderTheirChromePhases) {
  Tracer local;
  install_tracer(&local);
  set_thread_name("test-main");
  trace_counter("test_obs.level", std::uint64_t{42});
  trace_counter("test_obs.rate", 2.5);
  trace_instant("test_obs.tick");
  { Span span("test_obs.phases_span"); }
  install_tracer(nullptr);
  EXPECT_EQ(local.event_count(), 4u);  // metadata renders, never counts

  const api::json::Value parsed = api::json::parse(local.chrome_trace_json());
  const auto& events = parsed.find("traceEvents")->as_array("traceEvents");
  EXPECT_EQ(events.front().find("ph")->as_string("ph"), "M");
  bool saw_process = false, saw_thread = false, saw_u64 = false,
       saw_double = false, saw_instant = false, saw_span = false;
  for (const api::json::Value& event : events) {
    const std::string ph = event.find("ph")->as_string("ph");
    const std::string name = event.find("name")->as_string("name");
    if (ph == "M" && name == "process_name") {
      saw_process = true;
      EXPECT_EQ(event.find("args")->find("name")->as_string("name"), "fsr");
    } else if (ph == "M" && name == "thread_name" &&
               event.find("args")->find("name")->as_string("name") ==
                   "test-main") {
      saw_thread = true;
    } else if (name == "test_obs.level") {
      saw_u64 = true;
      EXPECT_EQ(ph, "C");
      EXPECT_EQ(event.find("args")->find("value")->as_u64("value"), 42u);
    } else if (name == "test_obs.rate") {
      saw_double = true;
      EXPECT_EQ(ph, "C");
      EXPECT_DOUBLE_EQ(
          event.find("args")->find("value")->as_number("value"), 2.5);
    } else if (name == "test_obs.tick") {
      saw_instant = true;
      EXPECT_EQ(ph, "i");
      EXPECT_EQ(event.find("s")->as_string("s"), "t");
    } else if (name == "test_obs.phases_span") {
      saw_span = true;
      EXPECT_EQ(ph, "X");
      EXPECT_NE(event.find("dur"), nullptr);
    }
  }
  EXPECT_TRUE(saw_process);
  EXPECT_TRUE(saw_thread);
  EXPECT_TRUE(saw_u64);
  EXPECT_TRUE(saw_double);
  EXPECT_TRUE(saw_instant);
  EXPECT_TRUE(saw_span);
}

TEST(Trace, CounterAndInstantAreNoOpsWithoutTracer) {
  ASSERT_EQ(tracer(), nullptr);
  trace_counter("test_obs.ignored", std::uint64_t{1});
  trace_counter("test_obs.ignored", 1.5);
  trace_instant("test_obs.ignored");  // must not crash, must not record
}

TEST(Trace, WriteIsAtomicAndParseable) {
  namespace fs = std::filesystem;
  const fs::path path = fs::temp_directory_path() / "fsr_test_obs_trace.json";
  fs::remove(path);
  Tracer local;
  install_tracer(&local);
  { Span span("test_obs.write"); }
  install_tracer(nullptr);
  EXPECT_TRUE(local.write(path.string()));

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  const std::string contents((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  EXPECT_NE(api::json::parse(contents).find("traceEvents"), nullptr);
  // The temp+rename idiom must not leave temp litter behind.
  for (const auto& entry : fs::directory_iterator(path.parent_path())) {
    EXPECT_EQ(entry.path().filename().string().find(
                  "fsr_test_obs_trace.json.tmp"),
              std::string::npos);
  }
  fs::remove(path);
  // An unwritable target reports failure instead of throwing.
  EXPECT_FALSE(local.write("/nonexistent-dir-xyz/trace.json"));
}

// ------------------------------------------------------ solver telemetry --

TEST(Trace, SolverRestartsEmitInstantsNestedInTheOwningSpan) {
  Tracer local;
  install_tracer(&local);
  const std::uint32_t span_tid = current_thread_tid();
  {
    Span span("test_obs.sat_query");
    // Pigeonhole PHP(6,5): unsatisfiable and hard enough that the Luby
    // schedule (first restart after 64 conflicts) fires several times.
    groundtruth::SatSolver solver;
    constexpr int k_pigeons = 6, k_holes = 5;
    std::vector<std::vector<groundtruth::Lit>> rows(k_pigeons);
    for (int p = 0; p < k_pigeons; ++p) {
      for (int h = 0; h < k_holes; ++h) {
        rows[static_cast<std::size_t>(p)].push_back(
            groundtruth::make_lit(solver.new_variable(), false));
      }
    }
    for (int p = 0; p < k_pigeons; ++p) {
      solver.add_clause(rows[static_cast<std::size_t>(p)]);
    }
    for (int h = 0; h < k_holes; ++h) {
      for (int p1 = 0; p1 < k_pigeons; ++p1) {
        for (int p2 = p1 + 1; p2 < k_pigeons; ++p2) {
          solver.add_clause(
              {groundtruth::lit_negate(
                   rows[static_cast<std::size_t>(p1)]
                       [static_cast<std::size_t>(h)]),
               groundtruth::lit_negate(
                   rows[static_cast<std::size_t>(p2)]
                       [static_cast<std::size_t>(h)])});
        }
      }
    }
    EXPECT_EQ(solver.solve(), groundtruth::SolveStatus::unsatisfiable);
    EXPECT_GT(solver.restarts(), 0u);  // the premise of this test
  }
  install_tracer(nullptr);

  const api::json::Value parsed = api::json::parse(local.chrome_trace_json());
  const auto& events = parsed.find("traceEvents")->as_array("traceEvents");
  std::uint64_t span_start = 0, span_end = 0;
  bool saw_span = false;
  for (const api::json::Value& event : events) {
    if (event.find("name")->as_string("name") == "test_obs.sat_query") {
      saw_span = true;
      span_start = event.find("ts")->as_u64("ts");
      span_end = span_start + event.find("dur")->as_u64("dur");
    }
  }
  ASSERT_TRUE(saw_span);
  std::size_t restarts = 0;
  bool saw_rate = false, saw_learned = false, saw_props = false;
  for (const api::json::Value& event : events) {
    const std::string name = event.find("name")->as_string("name");
    if (name == "sat.restart") {
      ++restarts;
      EXPECT_EQ(event.find("ph")->as_string("ph"), "i");
      // Nested under the owning query span: same thread, inside [ts, end].
      EXPECT_EQ(event.find("tid")->as_u64("tid"), span_tid);
      const std::uint64_t ts = event.find("ts")->as_u64("ts");
      EXPECT_GE(ts, span_start);
      EXPECT_LE(ts, span_end);
    } else if (name == "sat.conflict_rate") {
      saw_rate = true;
      EXPECT_EQ(event.find("ph")->as_string("ph"), "C");
    } else if (name == "sat.learned_db") {
      saw_learned = true;
      EXPECT_EQ(event.find("ph")->as_string("ph"), "C");
    } else if (name == "sat.propagations") {
      saw_props = true;
    }
  }
  EXPECT_GT(restarts, 0u);
  EXPECT_TRUE(saw_rate);
  EXPECT_TRUE(saw_learned);
  EXPECT_TRUE(saw_props);
}

}  // namespace
}  // namespace fsr::obs
