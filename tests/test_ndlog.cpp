// Tests for the NDlog substrate: values, parser, function registry, and
// the per-node engine (joins, assignments, filters, count-based deletion
// propagation, aggregate views, remote heads).
#include <gtest/gtest.h>

#include "ndlog/engine.h"
#include "ndlog/functions.h"
#include "ndlog/parser.h"
#include "util/error.h"

namespace fsr::ndlog {
namespace {

Value A(const char* s) { return Value::atom(s); }
Value I(std::int64_t v) { return Value::integer(v); }

// ---------------------------------------------------------------- value --

TEST(NdlogValue, Basics) {
  EXPECT_EQ(I(3).as_integer(), 3);
  EXPECT_EQ(A("u").as_atom(), "u");
  const Value path = Value::list({A("u"), A("v")});
  EXPECT_EQ(path.as_list().size(), 2u);
  EXPECT_TRUE(Value::boolean(true).truthy());
  EXPECT_FALSE(Value::boolean(false).truthy());
  EXPECT_THROW(I(1).as_list(), InvalidArgument);
}

TEST(NdlogValue, WireSize) {
  EXPECT_EQ(I(7).wire_size(), 4u);
  EXPECT_EQ(A("abc").wire_size(), 3u);
  EXPECT_EQ(Value::list({A("ab"), I(1)}).wire_size(), 2u + 2u + 4u);
  EXPECT_EQ(tuple_wire_size({A("ab"), I(1)}), 6u);
}

TEST(NdlogValue, ToString) {
  EXPECT_EQ(Value::list({A("u"), A("d")}).to_string(), "[u,d]");
  EXPECT_EQ(tuple_to_string({A("u"), I(2)}), "(u,2)");
}

// --------------------------------------------------------------- parser --

TEST(NdlogParser, ParsesGpvShape) {
  const Program program = parse_program(R"(
    materialize(label, keys(1,2)).
    materialize(route, keys(1,2,3,4)).
    gpvRecv sig(@U,SNew,PNew) :- msg(@U,V,D,S,P), V=f_head(P),
        label(@U,V,L), f_import(L,S)=true,
        SNew=f_concatSig(L,S), PNew=f_concatPath(U,P).
    gpvSelect localOpt(@U,D,a_pref<S>,P) :- route(@U,D,S,P).
  )");
  ASSERT_EQ(program.materialized.size(), 2u);
  EXPECT_EQ(program.materialized[0].relation, "label");
  EXPECT_EQ(program.materialized[0].key_positions,
            (std::vector<std::size_t>{1, 2}));
  ASSERT_EQ(program.rules.size(), 2u);

  const Rule& recv = program.rules[0];
  EXPECT_EQ(recv.label, "gpvRecv");
  EXPECT_EQ(recv.head.relation, "sig");
  EXPECT_EQ(recv.head.location_index, 0u);
  ASSERT_EQ(recv.body.size(), 6u);
  EXPECT_EQ(recv.body[0].kind, BodyElement::Kind::atom);
  EXPECT_EQ(recv.body[0].atom.relation, "msg");
  EXPECT_EQ(recv.body[1].kind, BodyElement::Kind::constraint);

  const Rule& select = program.rules[1];
  EXPECT_TRUE(select.head.has_aggregate());
  EXPECT_EQ(select.head.args[2].aggregate_function, "a_pref");
  EXPECT_EQ(select.head.args[2].aggregate_variable, "S");
}

TEST(NdlogParser, ParsesFactsWithListsAndQuotes) {
  const Program program = parse_program(R"(
    label(@u, v, 'c').
    sig(@u, 1, [u, d]).
  )");
  ASSERT_EQ(program.facts.size(), 2u);
  EXPECT_EQ(program.facts[0].relation, "label");
  EXPECT_EQ(program.facts[0].tuple[2], A("c"));
  EXPECT_EQ(program.facts[1].tuple[1], I(1));
  EXPECT_EQ(program.facts[1].tuple[2], Value::list({A("u"), A("d")}));
}

TEST(NdlogParser, RapidNetMaterializeForm) {
  const Program program =
      parse_program("materialize(link, infinity, infinity, keys(1,2)).");
  ASSERT_EQ(program.materialized.size(), 1u);
  EXPECT_EQ(program.materialized[0].key_positions,
            (std::vector<std::size_t>{1, 2}));
}

TEST(NdlogParser, CommentsAndNegativeNumbers) {
  const Program program = parse_program(R"(
    // a comment
    cost(@u, v, -5).  // trailing comment
  )");
  ASSERT_EQ(program.facts.size(), 1u);
  EXPECT_EQ(program.facts[0].tuple[2], I(-5));
}

TEST(NdlogParser, Errors) {
  EXPECT_THROW(parse_program("rule("), ParseError);
  EXPECT_THROW(parse_program("foo(@X Y)."), ParseError);
  EXPECT_THROW(parse_program("x bad(X) :- y(X)"), ParseError);  // missing '.'
  EXPECT_THROW(parse_program("f(X) :- g(X), ."), ParseError);
  EXPECT_THROW(parse_program("lbl fact(@a,b)."), ParseError);  // labelled fact
  EXPECT_THROW(parse_program("f(Var)."), ParseError);  // non-ground fact
}

TEST(NdlogParser, RoundTripToString) {
  const Program program = parse_program(
      "materialize(t, keys(1)).\n"
      "r1 t(@U,V) :- s(@U,V), V!=u.\n");
  const Program reparsed = parse_program(program.to_string());
  EXPECT_EQ(reparsed.rules.size(), 1u);
  EXPECT_EQ(reparsed.materialized.size(), 1u);
}

// ------------------------------------------------------------ functions --

TEST(Functions, Builtins) {
  const FunctionRegistry registry = FunctionRegistry::with_builtins();
  EXPECT_EQ(registry.call("f_concatPath", {A("u"), Value::list({A("v")})}),
            Value::list({A("u"), A("v")}));
  EXPECT_EQ(registry.call("f_head", {Value::list({A("v"), A("d")})}), A("v"));
  EXPECT_EQ(registry.call("f_last", {Value::list({A("v"), A("d")})}), A("d"));
  EXPECT_EQ(registry.call("f_size", {Value::list({A("v")})}), I(1));
  EXPECT_TRUE(
      registry.call("f_member", {Value::list({A("v"), A("d")}), A("d")})
          .truthy());
  EXPECT_FALSE(
      registry.call("f_member", {Value::list({A("v")}), A("x")}).truthy());
  EXPECT_EQ(registry.call("f_add", {I(2), I(3)}), I(5));
  EXPECT_EQ(registry.call("f_min", {I(2), I(3)}), I(2));
  EXPECT_TRUE(registry.call("f_lt", {I(2), I(3)}).truthy());
}

TEST(Functions, ErrorsOnUnknownAndArity) {
  const FunctionRegistry registry = FunctionRegistry::with_builtins();
  EXPECT_THROW(registry.call("f_nothere", {}), InvalidArgument);
  EXPECT_THROW(registry.call("f_head", {I(1), I(2)}), InvalidArgument);
  EXPECT_THROW(registry.call("f_head", {Value::list({})}), InvalidArgument);
}

// --------------------------------------------------------------- engine --

class EngineTest : public ::testing::Test {
 protected:
  FunctionRegistry registry_ = FunctionRegistry::with_builtins();
};

TEST_F(EngineTest, JoinAssignFilterPipeline) {
  const Program program = parse_program(R"(
    materialize(edge, keys(1,2)).
    materialize(twoHop, keys(1,2)).
    r twoHop(@U,W) :- edge(@U,V), edge(@V2,W), V2=V, W!=U.
  )");
  Engine engine("u", program, &registry_);
  engine.insert("edge", {A("u"), A("v")});
  engine.insert("edge", {A("v"), A("w")});
  engine.insert("edge", {A("v"), A("u")});  // filtered: W != U
  const auto hops = engine.relation_contents("twoHop");
  ASSERT_EQ(hops.size(), 1u);
  EXPECT_EQ(hops[0], (Tuple{A("u"), A("w")}));
}

TEST_F(EngineTest, DeletionPropagatesThroughRules) {
  const Program program = parse_program(R"(
    materialize(base, keys(1,2)).
    materialize(derived, keys(1,2)).
    r derived(@U,V) :- base(@U,V).
  )");
  Engine engine("u", program, &registry_);
  engine.insert("base", {A("u"), A("x")});
  EXPECT_EQ(engine.relation_contents("derived").size(), 1u);
  engine.apply(Delta{"base", {A("u"), A("x")}, -1});
  EXPECT_TRUE(engine.relation_contents("derived").empty());
}

TEST_F(EngineTest, CountBasedSemanticsForMultipleDerivations) {
  const Program program = parse_program(R"(
    materialize(src1, keys(1,2)).
    materialize(src2, keys(1,2)).
    materialize(out, keys(1,2)).
    ra out(@U,V) :- src1(@U,V).
    rb out(@U,V) :- src2(@U,V).
  )");
  Engine engine("u", program, &registry_);
  engine.insert("src1", {A("u"), A("x")});
  engine.insert("src2", {A("u"), A("x")});
  EXPECT_EQ(engine.count("out", {A("u"), A("x")}), 2);
  // Removing one derivation keeps the tuple alive...
  engine.apply(Delta{"src1", {A("u"), A("x")}, -1});
  EXPECT_EQ(engine.relation_contents("out").size(), 1u);
  // ...removing the second deletes it.
  engine.apply(Delta{"src2", {A("u"), A("x")}, -1});
  EXPECT_TRUE(engine.relation_contents("out").empty());
}

TEST_F(EngineTest, NegativeCountIsAnError) {
  const Program program = parse_program("materialize(t, keys(1)).");
  Engine engine("u", program, &registry_);
  EXPECT_THROW(engine.apply(Delta{"t", {A("x")}, -1}), Error);
}

TEST_F(EngineTest, AggregateSelectsMinimum) {
  const Program program = parse_program(R"(
    materialize(cost, keys(1,2,3)).
    materialize(best, keys(1)).
    r best(@U,a_min<C>,V) :- cost(@U,C,V).
  )");
  Engine engine("u", program, &registry_);
  engine.insert("cost", {A("u"), I(5), A("v1")});
  engine.insert("cost", {A("u"), I(3), A("v2")});
  engine.insert("cost", {A("u"), I(9), A("v3")});
  auto best = engine.relation_contents("best");
  ASSERT_EQ(best.size(), 1u);
  EXPECT_EQ(best[0], (Tuple{A("u"), I(3), A("v2")}));
  // Deleting the winner promotes the runner-up.
  engine.apply(Delta{"cost", {A("u"), I(3), A("v2")}, -1});
  best = engine.relation_contents("best");
  ASSERT_EQ(best.size(), 1u);
  EXPECT_EQ(best[0], (Tuple{A("u"), I(5), A("v1")}));
  // Deleting everything clears the view.
  engine.apply(Delta{"cost", {A("u"), I(5), A("v1")}, -1});
  engine.apply(Delta{"cost", {A("u"), I(9), A("v3")}, -1});
  EXPECT_TRUE(engine.relation_contents("best").empty());
}

TEST_F(EngineTest, AggregateGroupsIndependently) {
  const Program program = parse_program(R"(
    materialize(cost, keys(1,2,3)).
    materialize(best, keys(1,2)).
    r best(@U,D,a_min<C>) :- cost(@U,D,C).
  )");
  Engine engine("u", program, &registry_);
  engine.insert("cost", {A("u"), A("d1"), I(4)});
  engine.insert("cost", {A("u"), A("d2"), I(7)});
  engine.insert("cost", {A("u"), A("d1"), I(2)});
  const auto best = engine.relation_contents("best");
  ASSERT_EQ(best.size(), 2u);
  EXPECT_EQ(best[0], (Tuple{A("u"), A("d1"), I(2)}));
  EXPECT_EQ(best[1], (Tuple{A("u"), A("d2"), I(7)}));
}

TEST_F(EngineTest, RemoteHeadsGoToSink) {
  const Program program = parse_program(R"(
    materialize(link, keys(1,2)).
    r msg(@N,U) :- link(@U,N).
  )");
  Engine engine("u", program, &registry_);
  std::vector<RemoteDelta> remote;
  engine.set_remote_sink([&remote](RemoteDelta d) { remote.push_back(d); });
  engine.insert("link", {A("u"), A("v")});
  ASSERT_EQ(remote.size(), 1u);
  EXPECT_EQ(remote[0].target_node, "v");
  EXPECT_EQ(remote[0].delta.relation, "msg");
  EXPECT_EQ(remote[0].delta.polarity, +1);
}

TEST_F(EngineTest, EventRelationsAreNotStored) {
  const Program program = parse_program(R"(
    materialize(seen, keys(1,2)).
    r seen(@U,X) :- ping(@U,X).
  )");
  Engine engine("u", program, &registry_);
  engine.apply(Delta{"ping", {A("u"), A("a")}, +1});
  EXPECT_EQ(engine.relation_contents("seen").size(), 1u);
  EXPECT_TRUE(engine.relation_contents("ping").empty());  // event: no store
}

TEST_F(EngineTest, ObserverSeesTransitions) {
  const Program program = parse_program("materialize(t, keys(1)).");
  Engine engine("u", program, &registry_);
  std::vector<int> polarities;
  engine.set_observer(
      [&polarities](const Delta& d) { polarities.push_back(d.polarity); });
  engine.insert("t", {A("x")});
  engine.insert("t", {A("x")});  // count 2: no transition
  engine.apply(Delta{"t", {A("x")}, -1});  // count 1: no transition
  engine.apply(Delta{"t", {A("x")}, -1});  // count 0: transition
  EXPECT_EQ(polarities, (std::vector<int>{+1, -1}));
}

TEST_F(EngineTest, ValidatesAggregateRuleShape) {
  // Two body atoms under an aggregate head are rejected.
  const Program bad = parse_program(R"(
    materialize(a, keys(1)).
    materialize(b, keys(1)).
    r best(@U,a_min<C>) :- a(@U,C), b(@U,C).
  )");
  EXPECT_THROW(Engine("u", bad, &registry_), InvalidArgument);
}

TEST_F(EngineTest, ValidatesAggregateFunctionExists) {
  const Program bad = parse_program(R"(
    materialize(a, keys(1)).
    r best(@U,a_ghost<C>) :- a(@U,C).
  )");
  EXPECT_THROW(Engine("u", bad, &registry_), InvalidArgument);
}

TEST_F(EngineTest, ConstantsInAtomsFilter) {
  const Program program = parse_program(R"(
    materialize(pair, keys(1,2,3)).
    materialize(only5, keys(1,2)).
    r only5(@U,X) :- pair(@U,X,5).
  )");
  Engine engine("u", program, &registry_);
  engine.insert("pair", {A("u"), A("a"), I(5)});
  engine.insert("pair", {A("u"), A("b"), I(6)});
  const auto out = engine.relation_contents("only5");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (Tuple{A("u"), A("a")}));
}

TEST_F(EngineTest, RepeatedVariableInAtomUnifies) {
  const Program program = parse_program(R"(
    materialize(pair, keys(1,2,3)).
    materialize(diag, keys(1,2)).
    r diag(@U,X) :- pair(@U,X,X).
  )");
  Engine engine("u", program, &registry_);
  engine.insert("pair", {A("u"), I(3), I(3)});
  engine.insert("pair", {A("u"), I(3), I(4)});
  EXPECT_EQ(engine.relation_contents("diag").size(), 1u);
}

}  // namespace
}  // namespace fsr::ndlog
