// Tests for the ground-truth subsystem (src/groundtruth/): the CDCL SAT
// core, the stable-assignment CNF encoding, and the engine facade — ending
// in the acceptance sweep: the sat-search backend must agree with exact
// enumeration on the whole gadget library plus 200 seeded random SPP
// instances (existence verdict, exact solution count, and witnesses that
// hold up under both the stability predicate and seeded SPVP runs).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "campaign/scenario_source.h"
#include "groundtruth/engine.h"
#include "groundtruth/sat_solver.h"
#include "groundtruth/stable_sat.h"
#include "repair/edit.h"
#include "spp/gadgets.h"
#include "spp/spp.h"
#include "util/error.h"
#include "util/rng.h"

namespace fsr::groundtruth {
namespace {

// ------------------------------------------------------------ SAT solver --

TEST(SatSolver, DecidesTinyFormulas) {
  SatSolver sat;
  const std::int32_t a = sat.new_variable();
  const std::int32_t b = sat.new_variable();
  sat.add_clause({make_lit(a, false), make_lit(b, false)});
  sat.add_clause({make_lit(a, true), make_lit(b, false)});
  EXPECT_EQ(sat.solve(), SolveStatus::satisfiable);
  EXPECT_TRUE(sat.model_value(b));  // b is forced by resolution

  SatSolver unsat;
  const std::int32_t x = unsat.new_variable();
  unsat.add_clause({make_lit(x, false)});
  unsat.add_clause({make_lit(x, true)});
  EXPECT_EQ(unsat.solve(), SolveStatus::unsatisfiable);
}

TEST(SatSolver, EmptyClauseIsContradiction) {
  SatSolver sat;
  (void)sat.new_variable();
  sat.add_clause({});
  EXPECT_EQ(sat.solve(), SolveStatus::unsatisfiable);
}

TEST(SatSolver, TautologiesAndDuplicatesAreHarmless) {
  SatSolver sat;
  const std::int32_t a = sat.new_variable();
  sat.add_clause({make_lit(a, false), make_lit(a, true)});   // tautology
  sat.add_clause({make_lit(a, false), make_lit(a, false)});  // duplicate lit
  EXPECT_EQ(sat.solve(), SolveStatus::satisfiable);
  EXPECT_TRUE(sat.model_value(a));
}

TEST(SatSolver, PigeonholePrinciplesAreRefutedByLearning) {
  // 4 pigeons into 3 holes: every clause-learning path gets exercised.
  SatSolver sat;
  constexpr int pigeons = 4;
  constexpr int holes = 3;
  std::int32_t var[pigeons][holes];
  for (int p = 0; p < pigeons; ++p) {
    for (int h = 0; h < holes; ++h) var[p][h] = sat.new_variable();
  }
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> some_hole;
    for (int h = 0; h < holes; ++h) {
      some_hole.push_back(make_lit(var[p][h], false));
    }
    sat.add_clause(some_hole);
  }
  for (int h = 0; h < holes; ++h) {
    for (int p = 0; p < pigeons; ++p) {
      for (int q = p + 1; q < pigeons; ++q) {
        sat.add_clause({make_lit(var[p][h], true), make_lit(var[q][h], true)});
      }
    }
  }
  EXPECT_EQ(sat.solve(), SolveStatus::unsatisfiable);
  EXPECT_GT(sat.conflicts(), 0u);
  EXPECT_GT(sat.learned_clauses(), 0u);
}

TEST(SatSolver, ConflictBudgetYieldsUnknown) {
  // A hard-enough refutation with a one-conflict budget cannot finish.
  SatSolver sat;
  constexpr int pigeons = 5;
  constexpr int holes = 4;
  std::vector<std::vector<std::int32_t>> var(pigeons);
  for (int p = 0; p < pigeons; ++p) {
    for (int h = 0; h < holes; ++h) var[p].push_back(sat.new_variable());
  }
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> some_hole;
    for (int h = 0; h < holes; ++h) {
      some_hole.push_back(make_lit(var[p][h], false));
    }
    sat.add_clause(some_hole);
  }
  for (int h = 0; h < holes; ++h) {
    for (int p = 0; p < pigeons; ++p) {
      for (int q = p + 1; q < pigeons; ++q) {
        sat.add_clause({make_lit(var[p][h], true), make_lit(var[q][h], true)});
      }
    }
  }
  EXPECT_EQ(sat.solve(/*max_conflicts=*/1), SolveStatus::unknown);
  // With the budget lifted the refutation completes (state is reusable).
  EXPECT_EQ(sat.solve(), SolveStatus::unsatisfiable);
}

TEST(SatSolver, ModelEnumerationViaBlockingClauses) {
  // x ∨ y has exactly three models over {x, y}.
  SatSolver sat;
  const std::int32_t x = sat.new_variable();
  const std::int32_t y = sat.new_variable();
  sat.add_clause({make_lit(x, false), make_lit(y, false)});
  std::set<std::pair<bool, bool>> models;
  while (sat.solve() == SolveStatus::satisfiable) {
    const bool vx = sat.model_value(x);
    const bool vy = sat.model_value(y);
    EXPECT_TRUE(models.emplace(vx, vy).second) << "model repeated";
    sat.add_clause({make_lit(x, !vx ? false : true),
                    make_lit(y, !vy ? false : true)});
  }
  EXPECT_EQ(models.size(), 3u);
  EXPECT_FALSE(models.contains({false, false}));
}

// ------------------------------------- clause groups + assumptions --------

TEST(SatSolverGroups, GroupClausesBindOnlyWhenAssumed) {
  SatSolver sat;
  const std::int32_t x = sat.new_variable();
  const GroupId group = sat.new_group();
  sat.add_clause({make_lit(x, false)});
  sat.add_clause_in_group(group, {make_lit(x, true)});  // contradicts x
  // Group off: satisfiable. Group on: unsat under the assumption, and the
  // solver stays reusable.
  EXPECT_EQ(sat.solve_under({sat.group_disable(group)}), SolveStatus::satisfiable);
  EXPECT_TRUE(sat.model_value(x));
  EXPECT_EQ(sat.solve_under({sat.group_enable(group)}),
            SolveStatus::unsatisfiable);
  EXPECT_EQ(sat.solve_under({sat.group_disable(group)}), SolveStatus::satisfiable);
}

TEST(SatSolverGroups, RetireIsPermanentAndIdempotent) {
  SatSolver sat;
  const std::int32_t x = sat.new_variable();
  const GroupId group = sat.new_group();
  sat.add_clause({make_lit(x, false)});
  sat.add_clause_in_group(group, {make_lit(x, true)});
  sat.retire_group(group);
  sat.retire_group(group);
  EXPECT_TRUE(sat.group_retired(group));
  // Retired clauses are permanently satisfied; later adds are dropped.
  sat.add_clause_in_group(group, {make_lit(x, true)});
  EXPECT_EQ(sat.solve(), SolveStatus::satisfiable);
  EXPECT_TRUE(sat.model_value(x));
}

TEST(SatSolverGroups, FailedAssumptionsAreASufficientSubset) {
  SatSolver sat;
  const std::int32_t x = sat.new_variable();
  const std::int32_t y = sat.new_variable();
  const std::int32_t z = sat.new_variable();
  sat.add_clause({make_lit(x, true), make_lit(y, true)});  // ¬x ∨ ¬y
  const std::vector<Lit> assumptions = {make_lit(z, false), make_lit(x, false),
                                        make_lit(y, false)};
  ASSERT_EQ(sat.solve_under(assumptions), SolveStatus::unsatisfiable);
  const std::vector<Lit> failed = sat.failed_assumptions();
  ASSERT_FALSE(failed.empty());
  for (const Lit lit : failed) {
    EXPECT_NE(std::find(assumptions.begin(), assumptions.end(), lit),
              assumptions.end());
  }
  // z is irrelevant to the conflict and must not be blamed.
  EXPECT_EQ(std::find(failed.begin(), failed.end(), make_lit(z, false)),
            failed.end());
  // The named subset is itself unsatisfiable with the clause set.
  EXPECT_EQ(sat.solve_under(failed), SolveStatus::unsatisfiable);
  // And the solver still answers the unconstrained question.
  EXPECT_EQ(sat.solve(), SolveStatus::satisfiable);
}

namespace {

/// A random CNF instance partitioned into groups, for the activate/
/// deactivate round-trip property below.
struct GroupedCnf {
  std::int32_t variables = 0;
  std::vector<std::vector<Lit>> clauses;
  std::vector<std::size_t> group_of;  // clause -> group index
  std::size_t groups = 0;
};

GroupedCnf random_grouped_cnf(util::Rng& rng) {
  GroupedCnf cnf;
  cnf.variables = static_cast<std::int32_t>(rng.uniform_int(3, 8));
  cnf.groups = static_cast<std::size_t>(rng.uniform_int(2, 4));
  const std::int64_t clause_count = rng.uniform_int(
      cnf.variables, 3 * static_cast<std::int64_t>(cnf.variables));
  for (std::int64_t c = 0; c < clause_count; ++c) {
    const std::int64_t width = rng.uniform_int(1, 3);
    std::vector<Lit> clause;
    for (std::int64_t l = 0; l < width; ++l) {
      const auto var =
          static_cast<std::int32_t>(rng.uniform_int(0, cnf.variables - 1));
      clause.push_back(make_lit(var, rng.chance(0.5)));
    }
    cnf.clauses.push_back(std::move(clause));
    cnf.group_of.push_back(
        static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(cnf.groups) - 1)));
  }
  return cnf;
}

/// Model count over the original variables for the active clause subset,
/// via a fresh plainly-built solver (the reference the session mechanics
/// must reproduce).
std::size_t fresh_model_count(const GroupedCnf& cnf,
                              const std::vector<bool>& active,
                              SolveStatus& verdict) {
  SatSolver sat;
  for (std::int32_t v = 0; v < cnf.variables; ++v) (void)sat.new_variable();
  for (std::size_t c = 0; c < cnf.clauses.size(); ++c) {
    if (active[cnf.group_of[c]]) sat.add_clause(cnf.clauses[c]);
  }
  verdict = sat.solve();
  std::size_t models = 0;
  while (sat.solve() == SolveStatus::satisfiable) {
    ++models;
    std::vector<Lit> blocking;
    for (std::int32_t v = 0; v < cnf.variables; ++v) {
      blocking.push_back(make_lit(v, sat.model_value(v)));
    }
    sat.add_clause(std::move(blocking));
    if (models > 1024) break;  // cannot happen with <= 8 variables
  }
  return models;
}

}  // namespace

TEST(SatSolverGroups, ActivationRoundTripsMatchFreshBuilds) {
  // The clause-group acceptance property: across 100 seeded random group
  // schedules, a persistent solver answering through assumptions (with
  // per-round blocking clauses in a throwaway group, retired after use)
  // stays equivalent to a fresh solver built from only the active clauses
  // — same verdict, same model count over the original variables.
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    util::Rng rng(7100 + seed);
    const GroupedCnf cnf = random_grouped_cnf(rng);

    SatSolver persistent;
    for (std::int32_t v = 0; v < cnf.variables; ++v) {
      (void)persistent.new_variable();
    }
    std::vector<GroupId> groups;
    for (std::size_t g = 0; g < cnf.groups; ++g) {
      groups.push_back(persistent.new_group());
    }
    for (std::size_t c = 0; c < cnf.clauses.size(); ++c) {
      persistent.add_clause_in_group(groups[cnf.group_of[c]],
                                     cnf.clauses[c]);
    }

    const std::int64_t rounds = rng.uniform_int(4, 8);
    for (std::int64_t round = 0; round < rounds; ++round) {
      std::vector<bool> active(cnf.groups);
      for (std::size_t g = 0; g < cnf.groups; ++g) active[g] = rng.chance(0.5);

      SolveStatus fresh_verdict = SolveStatus::unknown;
      const std::size_t fresh_models =
          fresh_model_count(cnf, active, fresh_verdict);

      std::vector<Lit> assumptions;
      for (std::size_t g = 0; g < cnf.groups; ++g) {
        assumptions.push_back(active[g] ? persistent.group_enable(groups[g])
                                        : persistent.group_disable(groups[g]));
      }
      const SolveStatus verdict = persistent.solve_under(assumptions);
      EXPECT_EQ(verdict, fresh_verdict)
          << "seed " << 7100 + seed << " round " << round;

      GroupId query = -1;
      std::size_t models = 0;
      while (persistent.solve_under(assumptions) ==
             SolveStatus::satisfiable) {
        ++models;
        std::vector<Lit> blocking;
        for (std::int32_t v = 0; v < cnf.variables; ++v) {
          blocking.push_back(make_lit(v, persistent.model_value(v)));
        }
        if (query < 0) {
          query = persistent.new_group();
          assumptions.push_back(persistent.group_enable(query));
        }
        persistent.add_clause_in_group(query, std::move(blocking));
        ASSERT_LE(models, 1024u);
      }
      if (query >= 0) persistent.retire_group(query);
      EXPECT_EQ(models, fresh_models)
          << "seed " << 7100 + seed << " round " << round;
    }
  }
}

// ------------------------------------------------- stable-assignment CNF --

TEST(StableSat, GadgetLibraryCounts) {
  EXPECT_EQ(solve_stable_assignments(spp::good_gadget(), 16).count, 1u);
  EXPECT_EQ(solve_stable_assignments(spp::bad_gadget(), 16).count, 0u);
  EXPECT_FALSE(solve_stable_assignments(spp::bad_gadget(), 16).has_stable);
  EXPECT_EQ(solve_stable_assignments(spp::disagree_gadget(), 16).count, 2u);
  EXPECT_EQ(solve_stable_assignments(spp::ibgp_figure3_gadget(), 16).count,
            0u);
  EXPECT_EQ(solve_stable_assignments(spp::ibgp_figure3_fixed(), 16).count,
            1u);
}

TEST(StableSat, WitnessesAreStableAndCanonicallyOrdered) {
  const StableSearchResult result =
      solve_stable_assignments(spp::disagree_gadget(), 16);
  ASSERT_EQ(result.assignments.size(), 2u);
  EXPECT_TRUE(result.count_exact);
  for (const spp::Assignment& assignment : result.assignments) {
    EXPECT_TRUE(spp::is_stable_assignment(spp::disagree_gadget(), assignment));
  }
  EXPECT_LT(result.assignments[0], result.assignments[1]);
}

TEST(StableSat, SolutionBoundTurnsCountIntoFloor) {
  const StableSearchResult bounded =
      solve_stable_assignments(spp::disagree_gadget(), 1);
  EXPECT_TRUE(bounded.decided);
  EXPECT_TRUE(bounded.has_stable);
  EXPECT_EQ(bounded.count, 1u);
  EXPECT_FALSE(bounded.count_exact);
}

TEST(StableSat, RankingStructureUnitPropagatesWithoutSearch) {
  // GOOD-gadget chains are decided by propagation over the ranking
  // structure alone: the unique stable state needs no conflicts at all.
  const StableSearchResult result =
      solve_stable_assignments(spp::good_gadget_chain(8), 4);
  EXPECT_TRUE(result.decided);
  EXPECT_EQ(result.count, 1u);
  EXPECT_EQ(result.stats.conflicts, 0u);
  EXPECT_GT(result.stats.propagations, 0u);
}

TEST(StableSat, DecidesFarBeyondTheEnumerationCap) {
  // 3^48 candidate states; enumeration is hopeless, the CDCL search needs
  // a couple of conflicts.
  const StableSearchResult result =
      solve_stable_assignments(spp::bad_gadget_chain(16), 4);
  EXPECT_TRUE(result.decided);
  EXPECT_FALSE(result.has_stable);
  EXPECT_TRUE(result.count_exact);
}

TEST(StableSat, EmptyInstanceHasTheVacuousAssignment) {
  const spp::SppInstance empty("empty");
  const StableSearchResult result = solve_stable_assignments(empty, 4);
  EXPECT_TRUE(result.decided);
  EXPECT_TRUE(result.has_stable);
  EXPECT_EQ(result.count, 1u);
  ASSERT_EQ(result.assignments.size(), 1u);
  EXPECT_TRUE(result.assignments[0].empty());
}

// ------------------------------------------------------ incremental session --

TEST(StableSatSession, BaseQueriesMatchScratchOnTheGadgetLibrary) {
  for (const spp::SppInstance& instance :
       {spp::good_gadget(), spp::bad_gadget(), spp::disagree_gadget(),
        spp::ibgp_figure3_gadget(), spp::ibgp_figure3_fixed(),
        spp::bad_gadget_chain(4)}) {
    const StableSearchResult scratch =
        solve_stable_assignments(instance, 64);
    StableSatSession session(instance);
    for (int round = 0; round < 3; ++round) {
      const StableSearchResult incremental = session.analyze({}, 64);
      EXPECT_EQ(incremental.decided, scratch.decided) << instance.name();
      EXPECT_EQ(incremental.has_stable, scratch.has_stable) << instance.name();
      EXPECT_EQ(incremental.count, scratch.count) << instance.name();
      EXPECT_EQ(incremental.count_exact, scratch.count_exact)
          << instance.name();
      EXPECT_EQ(incremental.assignments, scratch.assignments)
          << instance.name();
    }
    // Round 2 and 3 hit the ranking-group cache for every node.
    EXPECT_GT(session.stats().group_cache_hits, 0u);
  }
}

TEST(StableSatSession, DeltaQueriesMatchScratchOnEditedInstances) {
  // Every single-path demote and drop across the bad gadget: the session's
  // CNF delta must agree with a from-scratch encode of the edited
  // instance (applied by the REAL edit implementation, repair::apply_edits,
  // so the two paths cannot drift apart), and interleaved base queries
  // must stay unpolluted.
  const spp::SppInstance bad = spp::bad_gadget();
  const StableSearchResult base_scratch = solve_stable_assignments(bad, 64);
  StableSatSession session(bad);
  const auto expect_delta_agreement = [&](const repair::PolicyEdit& edit) {
    const auto edited = repair::apply_edits(bad, {edit});
    ASSERT_TRUE(edited.has_value()) << edit.describe();
    const RankingDelta delta{edit.node, edited->permitted(edit.node)};
    const StableSearchResult scratch = solve_stable_assignments(*edited, 64);
    const StableSearchResult incremental = session.analyze({delta}, 64);
    EXPECT_EQ(incremental.has_stable, scratch.has_stable) << edit.describe();
    EXPECT_EQ(incremental.count, scratch.count) << edit.describe();
    EXPECT_EQ(incremental.assignments, scratch.assignments)
        << edit.describe();
  };
  for (const std::string& node : bad.nodes()) {
    const std::vector<spp::Path>& ranked = bad.permitted(node);
    for (std::size_t rank = 0; rank < ranked.size(); ++rank) {
      if (rank + 1 < ranked.size()) {
        expect_delta_agreement(repair::PolicyEdit{
            repair::EditKind::demote_path, node, ranked[rank], {}});
      }
      expect_delta_agreement(repair::PolicyEdit{repair::EditKind::drop_path,
                                                node, ranked[rank], {}});
      // Base round-trip: no delta leaks into the next query.
      const StableSearchResult back = session.analyze({}, 64);
      EXPECT_EQ(back.has_stable, base_scratch.has_stable);
      EXPECT_EQ(back.assignments, base_scratch.assignments);
    }
  }
}

TEST(StableSatSession, MultiNodeDeltaDropsAndReordersTogether) {
  // Drop node 1's through-route AND demote node 2's in one query: the
  // all-direct-ish configuration has a unique stable state.
  const spp::SppInstance bad = spp::bad_gadget();
  StableSatSession session(bad);
  RankingDelta drop1{"1", {{"1", "0"}}};
  RankingDelta demote2{"2", {{"2", "0"}, {"2", "3", "0"}}};
  const StableSearchResult result = session.analyze({drop1, demote2}, 64);
  EXPECT_TRUE(result.decided);
  EXPECT_TRUE(result.has_stable);
  EXPECT_EQ(result.count, 1u);
  EXPECT_TRUE(result.count_exact);
  for (const spp::Assignment& assignment : result.assignments) {
    // The witness decodes against the EDITED rankings.
    EXPECT_EQ(assignment.at("1"), (spp::Path{"1", "0"}));
  }
}

TEST(StableSatSession, BudgetStopsAreReported) {
  const spp::SppInstance bad = spp::bad_gadget();
  StableSatSession session(bad);
  // A one-conflict budget cannot refute BAD: undecided, conflicts stop.
  const StableSearchResult starved = session.analyze({}, 64, 1);
  EXPECT_FALSE(starved.decided);
  EXPECT_EQ(starved.budget_stop, BudgetStop::conflicts);
  // DISAGREE at a solution bound of 1: verdict exact, count a floor.
  StableSatSession disagree(spp::disagree_gadget());
  const StableSearchResult capped = disagree.analyze({}, 1);
  EXPECT_TRUE(capped.decided);
  EXPECT_FALSE(capped.count_exact);
  EXPECT_EQ(capped.budget_stop, BudgetStop::solutions);
  // And with room to finish: no budget interfered.
  const StableSearchResult full = disagree.analyze({}, 64);
  EXPECT_TRUE(full.count_exact);
  EXPECT_EQ(full.count, 2u);
  EXPECT_EQ(full.budget_stop, BudgetStop::none);
}

TEST(StableSatSession, RejectsMalformedDeltas) {
  const spp::SppInstance bad = spp::bad_gadget();
  StableSatSession session(bad);
  RankingDelta unknown_node{"9", {}};
  EXPECT_THROW((void)session.analyze({unknown_node}, 4), InvalidArgument);
  RankingDelta foreign_path{"1", {{"2", "3", "0"}}};
  EXPECT_THROW((void)session.analyze({foreign_path}, 4), InvalidArgument);
  RankingDelta duplicated{"1", {{"1", "0"}, {"1", "0"}}};
  EXPECT_THROW((void)session.analyze({duplicated}, 4), InvalidArgument);
  RankingDelta twice{"1", {{"1", "0"}}};
  EXPECT_THROW((void)session.analyze({twice, twice}, 4), InvalidArgument);
  // A failed query must not poison the session.
  const StableSearchResult after = session.analyze({}, 4);
  EXPECT_TRUE(after.decided);
  EXPECT_FALSE(after.has_stable);
}

TEST(StableSat, ScratchSearchReportsBudgetStops) {
  const StableSearchResult starved =
      solve_stable_assignments(spp::bad_gadget(), 64, /*max_conflicts=*/1);
  EXPECT_FALSE(starved.decided);
  EXPECT_EQ(starved.budget_stop, BudgetStop::conflicts);
  const StableSearchResult capped =
      solve_stable_assignments(spp::disagree_gadget(), 1);
  EXPECT_EQ(capped.budget_stop, BudgetStop::solutions);
  const StableSearchResult full =
      solve_stable_assignments(spp::disagree_gadget(), 64);
  EXPECT_EQ(full.budget_stop, BudgetStop::none);
}

TEST(StableSat, BudgetStopNamesRoundTrip) {
  EXPECT_STREQ(to_string(BudgetStop::none), "none");
  EXPECT_STREQ(to_string(BudgetStop::states), "states");
  EXPECT_STREQ(to_string(BudgetStop::conflicts), "conflicts");
  EXPECT_STREQ(to_string(BudgetStop::solutions), "solutions");
}

// ----------------------------------------------------------- engine modes --

TEST(Engine, ModeNamesRoundTrip) {
  EXPECT_STREQ(to_string(Mode::enumerate), "enumerate");
  EXPECT_STREQ(to_string(Mode::sat_search), "sat-search");
  EXPECT_EQ(parse_mode("enumerate"), Mode::enumerate);
  EXPECT_EQ(parse_mode("sat-search"), Mode::sat_search);
  EXPECT_EQ(parse_mode("brute-force"), std::nullopt);
}

TEST(Engine, EnumerateBackendGivesUpBeyondItsBudget) {
  Options options;
  options.max_states = 1000;
  const auto engine = make_engine(Mode::enumerate, options);
  // A state space beyond the budget is rejected in O(nodes) — zero states
  // scanned (the seed enumerator's up-front guard, minus the throw).
  const Result result = engine->analyze(spp::bad_gadget_chain(8));
  EXPECT_FALSE(result.decided);
  EXPECT_EQ(result.states_scanned, 0u);

  const auto sat = make_engine(Mode::sat_search, options);
  const Result exact = sat->analyze(spp::bad_gadget_chain(8));
  EXPECT_TRUE(exact.decided);
  EXPECT_FALSE(exact.has_stable);
}

TEST(Engine, SatBackendReportsUndecidedOnZeroConflictBudget) {
  // A budget too small to refute BAD leaves the question open rather than
  // guessing. (BAD needs at least one conflict to refute.)
  Options options;
  options.max_conflicts = 1;
  const auto engine = make_engine(Mode::sat_search, options);
  const Result result = engine->analyze(spp::bad_gadget());
  EXPECT_FALSE(result.decided);
}

// ------------------------------------------------------ acceptance sweep --

void expect_agreement(const spp::SppInstance& instance,
                      const GroundTruthEngine& sat,
                      const GroundTruthEngine& enumerate,
                      std::uint64_t spvp_seed) {
  const Result a = sat.analyze(instance);
  const Result b = enumerate.analyze(instance);
  ASSERT_TRUE(b.decided) << instance.name() << ": enumeration was capped";
  ASSERT_TRUE(b.count_exact) << instance.name();
  ASSERT_TRUE(a.decided) << instance.name();
  EXPECT_TRUE(a.count_exact) << instance.name();
  EXPECT_EQ(a.has_stable, b.has_stable) << instance.name();
  EXPECT_EQ(a.count, b.count) << instance.name();
  EXPECT_EQ(a.witness.has_value(), b.witness.has_value()) << instance.name();
  if (a.witness.has_value()) {
    // Both backends surface the canonical (lexicographically least)
    // witness, and it must satisfy the stability predicate.
    EXPECT_EQ(*a.witness, *b.witness) << instance.name();
    EXPECT_TRUE(spp::is_stable_assignment(instance, *a.witness))
        << instance.name();
    // Spot-check against the protocol: seeded SPVP, when it converges,
    // lands on one of the enumerated stable assignments.
    util::Rng rng(spvp_seed);
    const spp::SpvpResult run = spp::simulate_spvp(instance, rng, 50000);
    if (run.converged) {
      EXPECT_TRUE(spp::is_stable_assignment(instance, run.final_assignment))
          << instance.name();
      EXPECT_TRUE(a.has_stable) << instance.name();
    }
  }
}

TEST(Agreement, EveryGadgetInTheLibrary) {
  Options options;
  options.max_solutions = 1u << 12;  // exact counts on gadget scale
  const auto sat = make_engine(Mode::sat_search, options);
  const auto enumerate = make_engine(Mode::enumerate, options);
  // Chains stop at x4 (3^12 states): the largest family member exact
  // enumeration can still cross-check — beyond that only sat-search
  // answers, which is the point of the subsystem, not of this test.
  std::vector<spp::SppInstance> gadgets = {
      spp::good_gadget(),         spp::bad_gadget(),
      spp::disagree_gadget(),     spp::ibgp_figure3_gadget(),
      spp::ibgp_figure3_fixed(),  spp::good_gadget_chain(2),
      spp::good_gadget_chain(4),  spp::bad_gadget_chain(2),
      spp::bad_gadget_chain(4)};
  for (const spp::SppInstance& gadget : gadgets) {
    expect_agreement(gadget, *sat, *enumerate, /*spvp_seed=*/7);
  }
}

TEST(Agreement, TwoHundredSeededRandomInstances) {
  Options options;
  options.max_solutions = 1u << 12;
  const auto sat = make_engine(Mode::sat_search, options);
  const auto enumerate = make_engine(Mode::enumerate, options);

  campaign::RandomSppSweep plain;  // defaults: 3-6 nodes, sparse
  campaign::RandomSppSweep dense;  // conflict-heavy (repair-fuzz shape)
  dense.extra_edge_probability = 0.5;
  dense.paths_per_node = 4;

  std::size_t with_stable = 0;
  std::size_t multi_stable = 0;
  for (int i = 0; i < 200; ++i) {
    const campaign::RandomSppSweep& sweep = i % 2 == 0 ? plain : dense;
    const spp::SppInstance instance = campaign::random_spp_instance(
        "agreement-" + std::to_string(i),
        /*seed=*/9000 + static_cast<std::uint64_t>(i), sweep);
    expect_agreement(instance, *sat, *enumerate,
                     /*spvp_seed=*/31 + static_cast<std::uint64_t>(i));
    const Result verdict = sat->analyze(instance);
    if (verdict.has_stable) ++with_stable;
    if (verdict.count > 1) ++multi_stable;
  }
  // Random instances nearly always admit a stable state (BAD-style cycles
  // are covered by the gadget sweep above); the interesting random cases
  // are the DISAGREE-shaped multi-solution ones, which must occur.
  EXPECT_GT(with_stable, 100u);
  EXPECT_GT(multi_stable, 0u);
}

TEST(Agreement, DeterministicAcrossRepeatedRuns) {
  const auto engine = make_engine(Mode::sat_search);
  const spp::SppInstance instance = campaign::random_spp_instance(
      "determinism", 424242, campaign::RandomSppSweep{});
  const Result first = engine->analyze(instance);
  for (int round = 0; round < 3; ++round) {
    const Result repeat = engine->analyze(instance);
    EXPECT_EQ(first.has_stable, repeat.has_stable);
    EXPECT_EQ(first.count, repeat.count);
    EXPECT_EQ(first.witness, repeat.witness);
    EXPECT_EQ(first.conflicts, repeat.conflicts);
    EXPECT_EQ(first.decisions, repeat.decisions);
  }
}

}  // namespace
}  // namespace fsr::groundtruth
