// Tests for the ground-truth subsystem (src/groundtruth/): the CDCL SAT
// core, the stable-assignment CNF encoding, and the engine facade — ending
// in the acceptance sweep: the sat-search backend must agree with exact
// enumeration on the whole gadget library plus 200 seeded random SPP
// instances (existence verdict, exact solution count, and witnesses that
// hold up under both the stability predicate and seeded SPVP runs).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "campaign/scenario_source.h"
#include "groundtruth/engine.h"
#include "groundtruth/sat_solver.h"
#include "groundtruth/stable_sat.h"
#include "spp/gadgets.h"
#include "spp/spp.h"
#include "util/rng.h"

namespace fsr::groundtruth {
namespace {

// ------------------------------------------------------------ SAT solver --

TEST(SatSolver, DecidesTinyFormulas) {
  SatSolver sat;
  const std::int32_t a = sat.new_variable();
  const std::int32_t b = sat.new_variable();
  sat.add_clause({make_lit(a, false), make_lit(b, false)});
  sat.add_clause({make_lit(a, true), make_lit(b, false)});
  EXPECT_EQ(sat.solve(), SolveStatus::satisfiable);
  EXPECT_TRUE(sat.model_value(b));  // b is forced by resolution

  SatSolver unsat;
  const std::int32_t x = unsat.new_variable();
  unsat.add_clause({make_lit(x, false)});
  unsat.add_clause({make_lit(x, true)});
  EXPECT_EQ(unsat.solve(), SolveStatus::unsatisfiable);
}

TEST(SatSolver, EmptyClauseIsContradiction) {
  SatSolver sat;
  (void)sat.new_variable();
  sat.add_clause({});
  EXPECT_EQ(sat.solve(), SolveStatus::unsatisfiable);
}

TEST(SatSolver, TautologiesAndDuplicatesAreHarmless) {
  SatSolver sat;
  const std::int32_t a = sat.new_variable();
  sat.add_clause({make_lit(a, false), make_lit(a, true)});   // tautology
  sat.add_clause({make_lit(a, false), make_lit(a, false)});  // duplicate lit
  EXPECT_EQ(sat.solve(), SolveStatus::satisfiable);
  EXPECT_TRUE(sat.model_value(a));
}

TEST(SatSolver, PigeonholePrinciplesAreRefutedByLearning) {
  // 4 pigeons into 3 holes: every clause-learning path gets exercised.
  SatSolver sat;
  constexpr int pigeons = 4;
  constexpr int holes = 3;
  std::int32_t var[pigeons][holes];
  for (int p = 0; p < pigeons; ++p) {
    for (int h = 0; h < holes; ++h) var[p][h] = sat.new_variable();
  }
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> some_hole;
    for (int h = 0; h < holes; ++h) {
      some_hole.push_back(make_lit(var[p][h], false));
    }
    sat.add_clause(some_hole);
  }
  for (int h = 0; h < holes; ++h) {
    for (int p = 0; p < pigeons; ++p) {
      for (int q = p + 1; q < pigeons; ++q) {
        sat.add_clause({make_lit(var[p][h], true), make_lit(var[q][h], true)});
      }
    }
  }
  EXPECT_EQ(sat.solve(), SolveStatus::unsatisfiable);
  EXPECT_GT(sat.conflicts(), 0u);
  EXPECT_GT(sat.learned_clauses(), 0u);
}

TEST(SatSolver, ConflictBudgetYieldsUnknown) {
  // A hard-enough refutation with a one-conflict budget cannot finish.
  SatSolver sat;
  constexpr int pigeons = 5;
  constexpr int holes = 4;
  std::vector<std::vector<std::int32_t>> var(pigeons);
  for (int p = 0; p < pigeons; ++p) {
    for (int h = 0; h < holes; ++h) var[p].push_back(sat.new_variable());
  }
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> some_hole;
    for (int h = 0; h < holes; ++h) {
      some_hole.push_back(make_lit(var[p][h], false));
    }
    sat.add_clause(some_hole);
  }
  for (int h = 0; h < holes; ++h) {
    for (int p = 0; p < pigeons; ++p) {
      for (int q = p + 1; q < pigeons; ++q) {
        sat.add_clause({make_lit(var[p][h], true), make_lit(var[q][h], true)});
      }
    }
  }
  EXPECT_EQ(sat.solve(/*max_conflicts=*/1), SolveStatus::unknown);
  // With the budget lifted the refutation completes (state is reusable).
  EXPECT_EQ(sat.solve(), SolveStatus::unsatisfiable);
}

TEST(SatSolver, ModelEnumerationViaBlockingClauses) {
  // x ∨ y has exactly three models over {x, y}.
  SatSolver sat;
  const std::int32_t x = sat.new_variable();
  const std::int32_t y = sat.new_variable();
  sat.add_clause({make_lit(x, false), make_lit(y, false)});
  std::set<std::pair<bool, bool>> models;
  while (sat.solve() == SolveStatus::satisfiable) {
    const bool vx = sat.model_value(x);
    const bool vy = sat.model_value(y);
    EXPECT_TRUE(models.emplace(vx, vy).second) << "model repeated";
    sat.add_clause({make_lit(x, !vx ? false : true),
                    make_lit(y, !vy ? false : true)});
  }
  EXPECT_EQ(models.size(), 3u);
  EXPECT_FALSE(models.contains({false, false}));
}

// ------------------------------------------------- stable-assignment CNF --

TEST(StableSat, GadgetLibraryCounts) {
  EXPECT_EQ(solve_stable_assignments(spp::good_gadget(), 16).count, 1u);
  EXPECT_EQ(solve_stable_assignments(spp::bad_gadget(), 16).count, 0u);
  EXPECT_FALSE(solve_stable_assignments(spp::bad_gadget(), 16).has_stable);
  EXPECT_EQ(solve_stable_assignments(spp::disagree_gadget(), 16).count, 2u);
  EXPECT_EQ(solve_stable_assignments(spp::ibgp_figure3_gadget(), 16).count,
            0u);
  EXPECT_EQ(solve_stable_assignments(spp::ibgp_figure3_fixed(), 16).count,
            1u);
}

TEST(StableSat, WitnessesAreStableAndCanonicallyOrdered) {
  const StableSearchResult result =
      solve_stable_assignments(spp::disagree_gadget(), 16);
  ASSERT_EQ(result.assignments.size(), 2u);
  EXPECT_TRUE(result.count_exact);
  for (const spp::Assignment& assignment : result.assignments) {
    EXPECT_TRUE(spp::is_stable_assignment(spp::disagree_gadget(), assignment));
  }
  EXPECT_LT(result.assignments[0], result.assignments[1]);
}

TEST(StableSat, SolutionBoundTurnsCountIntoFloor) {
  const StableSearchResult bounded =
      solve_stable_assignments(spp::disagree_gadget(), 1);
  EXPECT_TRUE(bounded.decided);
  EXPECT_TRUE(bounded.has_stable);
  EXPECT_EQ(bounded.count, 1u);
  EXPECT_FALSE(bounded.count_exact);
}

TEST(StableSat, RankingStructureUnitPropagatesWithoutSearch) {
  // GOOD-gadget chains are decided by propagation over the ranking
  // structure alone: the unique stable state needs no conflicts at all.
  const StableSearchResult result =
      solve_stable_assignments(spp::good_gadget_chain(8), 4);
  EXPECT_TRUE(result.decided);
  EXPECT_EQ(result.count, 1u);
  EXPECT_EQ(result.stats.conflicts, 0u);
  EXPECT_GT(result.stats.propagations, 0u);
}

TEST(StableSat, DecidesFarBeyondTheEnumerationCap) {
  // 3^48 candidate states; enumeration is hopeless, the CDCL search needs
  // a couple of conflicts.
  const StableSearchResult result =
      solve_stable_assignments(spp::bad_gadget_chain(16), 4);
  EXPECT_TRUE(result.decided);
  EXPECT_FALSE(result.has_stable);
  EXPECT_TRUE(result.count_exact);
}

TEST(StableSat, EmptyInstanceHasTheVacuousAssignment) {
  const spp::SppInstance empty("empty");
  const StableSearchResult result = solve_stable_assignments(empty, 4);
  EXPECT_TRUE(result.decided);
  EXPECT_TRUE(result.has_stable);
  EXPECT_EQ(result.count, 1u);
  ASSERT_EQ(result.assignments.size(), 1u);
  EXPECT_TRUE(result.assignments[0].empty());
}

// ----------------------------------------------------------- engine modes --

TEST(Engine, ModeNamesRoundTrip) {
  EXPECT_STREQ(to_string(Mode::enumerate), "enumerate");
  EXPECT_STREQ(to_string(Mode::sat_search), "sat-search");
  EXPECT_EQ(parse_mode("enumerate"), Mode::enumerate);
  EXPECT_EQ(parse_mode("sat-search"), Mode::sat_search);
  EXPECT_EQ(parse_mode("brute-force"), std::nullopt);
}

TEST(Engine, EnumerateBackendGivesUpBeyondItsBudget) {
  Options options;
  options.max_states = 1000;
  const auto engine = make_engine(Mode::enumerate, options);
  // A state space beyond the budget is rejected in O(nodes) — zero states
  // scanned (the seed enumerator's up-front guard, minus the throw).
  const Result result = engine->analyze(spp::bad_gadget_chain(8));
  EXPECT_FALSE(result.decided);
  EXPECT_EQ(result.states_scanned, 0u);

  const auto sat = make_engine(Mode::sat_search, options);
  const Result exact = sat->analyze(spp::bad_gadget_chain(8));
  EXPECT_TRUE(exact.decided);
  EXPECT_FALSE(exact.has_stable);
}

TEST(Engine, SatBackendReportsUndecidedOnZeroConflictBudget) {
  // A budget too small to refute BAD leaves the question open rather than
  // guessing. (BAD needs at least one conflict to refute.)
  Options options;
  options.max_conflicts = 1;
  const auto engine = make_engine(Mode::sat_search, options);
  const Result result = engine->analyze(spp::bad_gadget());
  EXPECT_FALSE(result.decided);
}

// ------------------------------------------------------ acceptance sweep --

void expect_agreement(const spp::SppInstance& instance,
                      const GroundTruthEngine& sat,
                      const GroundTruthEngine& enumerate,
                      std::uint64_t spvp_seed) {
  const Result a = sat.analyze(instance);
  const Result b = enumerate.analyze(instance);
  ASSERT_TRUE(b.decided) << instance.name() << ": enumeration was capped";
  ASSERT_TRUE(b.count_exact) << instance.name();
  ASSERT_TRUE(a.decided) << instance.name();
  EXPECT_TRUE(a.count_exact) << instance.name();
  EXPECT_EQ(a.has_stable, b.has_stable) << instance.name();
  EXPECT_EQ(a.count, b.count) << instance.name();
  EXPECT_EQ(a.witness.has_value(), b.witness.has_value()) << instance.name();
  if (a.witness.has_value()) {
    // Both backends surface the canonical (lexicographically least)
    // witness, and it must satisfy the stability predicate.
    EXPECT_EQ(*a.witness, *b.witness) << instance.name();
    EXPECT_TRUE(spp::is_stable_assignment(instance, *a.witness))
        << instance.name();
    // Spot-check against the protocol: seeded SPVP, when it converges,
    // lands on one of the enumerated stable assignments.
    util::Rng rng(spvp_seed);
    const spp::SpvpResult run = spp::simulate_spvp(instance, rng, 50000);
    if (run.converged) {
      EXPECT_TRUE(spp::is_stable_assignment(instance, run.final_assignment))
          << instance.name();
      EXPECT_TRUE(a.has_stable) << instance.name();
    }
  }
}

TEST(Agreement, EveryGadgetInTheLibrary) {
  Options options;
  options.max_solutions = 1u << 12;  // exact counts on gadget scale
  const auto sat = make_engine(Mode::sat_search, options);
  const auto enumerate = make_engine(Mode::enumerate, options);
  // Chains stop at x4 (3^12 states): the largest family member exact
  // enumeration can still cross-check — beyond that only sat-search
  // answers, which is the point of the subsystem, not of this test.
  std::vector<spp::SppInstance> gadgets = {
      spp::good_gadget(),         spp::bad_gadget(),
      spp::disagree_gadget(),     spp::ibgp_figure3_gadget(),
      spp::ibgp_figure3_fixed(),  spp::good_gadget_chain(2),
      spp::good_gadget_chain(4),  spp::bad_gadget_chain(2),
      spp::bad_gadget_chain(4)};
  for (const spp::SppInstance& gadget : gadgets) {
    expect_agreement(gadget, *sat, *enumerate, /*spvp_seed=*/7);
  }
}

TEST(Agreement, TwoHundredSeededRandomInstances) {
  Options options;
  options.max_solutions = 1u << 12;
  const auto sat = make_engine(Mode::sat_search, options);
  const auto enumerate = make_engine(Mode::enumerate, options);

  campaign::RandomSppSweep plain;  // defaults: 3-6 nodes, sparse
  campaign::RandomSppSweep dense;  // conflict-heavy (repair-fuzz shape)
  dense.extra_edge_probability = 0.5;
  dense.paths_per_node = 4;

  std::size_t with_stable = 0;
  std::size_t multi_stable = 0;
  for (int i = 0; i < 200; ++i) {
    const campaign::RandomSppSweep& sweep = i % 2 == 0 ? plain : dense;
    const spp::SppInstance instance = campaign::random_spp_instance(
        "agreement-" + std::to_string(i),
        /*seed=*/9000 + static_cast<std::uint64_t>(i), sweep);
    expect_agreement(instance, *sat, *enumerate,
                     /*spvp_seed=*/31 + static_cast<std::uint64_t>(i));
    const Result verdict = sat->analyze(instance);
    if (verdict.has_stable) ++with_stable;
    if (verdict.count > 1) ++multi_stable;
  }
  // Random instances nearly always admit a stable state (BAD-style cycles
  // are covered by the gadget sweep above); the interesting random cases
  // are the DISAGREE-shaped multi-solution ones, which must occur.
  EXPECT_GT(with_stable, 100u);
  EXPECT_GT(multi_stable, 0u);
}

TEST(Agreement, DeterministicAcrossRepeatedRuns) {
  const auto engine = make_engine(Mode::sat_search);
  const spp::SppInstance instance = campaign::random_spp_instance(
      "determinism", 424242, campaign::RandomSppSweep{});
  const Result first = engine->analyze(instance);
  for (int round = 0; round < 3; ++round) {
    const Result repeat = engine->analyze(instance);
    EXPECT_EQ(first.has_stable, repeat.has_stable);
    EXPECT_EQ(first.count, repeat.count);
    EXPECT_EQ(first.witness, repeat.witness);
    EXPECT_EQ(first.conflicts, repeat.conflicts);
    EXPECT_EQ(first.decisions, repeat.decisions);
  }
}

}  // namespace
}  // namespace fsr::groundtruth
