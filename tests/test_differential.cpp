// Differential fuzz harness: four independent stable-paths oracles swept
// over 300+ seeded random SPP instances (plus random drop/demote edit
// schedules per instance) and held to agreement —
//
//   1. incremental-assumption SAT (StableSatSession: persistent solver,
//      clause groups + assumptions, per-edit CNF deltas);
//   2. scratch SAT (solve_stable_assignments: full re-encode per query);
//   3. capped brute-force enumeration (the seed toolkit's oracle);
//   4. seeded SPVP simulation (a protocol run, not a solver).
//
// Checked per instance: existence verdict, exact model count (wherever a
// backend's bound permits exactness), the full canonical witness set
// between the two SAT paths, witness validity under the stability
// predicate, and SPVP convergence landing inside the enumerated set. Any
// disagreement fails with the instance's generator seed and a full dump,
// so every finding reproduces from one integer.
//
// The sweep seed base comes from FSR_FUZZ_SEED (default 9500) — CI pins it
// so the fuzz lane is reproducible run over run. Runs under the `fuzz`
// ctest label: `ctest -L fuzz`.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "campaign/scenario_source.h"
#include "groundtruth/engine.h"
#include "groundtruth/stable_sat.h"
#include "repair/edit.h"
#include "sim/simulator.h"
#include "spp/gadgets.h"
#include "spp/spp.h"
#include "util/rng.h"

namespace fsr::groundtruth {
namespace {

constexpr std::size_t k_instances = 300;
constexpr std::size_t k_edit_schedules = 3;  // random edit queries/instance
constexpr std::size_t k_solution_bound = std::size_t{1} << 12;

std::uint64_t fuzz_seed_base() {
  const char* env = std::getenv("FSR_FUZZ_SEED");
  if (env == nullptr || *env == '\0') return 9500;
  return std::strtoull(env, nullptr, 10);
}

/// Everything needed to reproduce a finding by hand.
std::string dump_instance(const spp::SppInstance& instance) {
  std::string out = "instance " + instance.name() + "\n";
  out += "  edges:";
  for (const auto& [u, v] : instance.edges()) out += " " + u + "-" + v;
  out += "\n";
  for (const std::string& node : instance.nodes()) {
    out += "  " + node + ":";
    for (const spp::Path& path : instance.permitted(node)) {
      out += " " + spp::path_name(path);
    }
    out += "\n";
  }
  return out;
}

void expect_same_search(const StableSearchResult& incremental,
                        const StableSearchResult& scratch,
                        const spp::SppInstance& instance) {
  ASSERT_TRUE(scratch.decided) << dump_instance(instance);
  ASSERT_TRUE(incremental.decided) << dump_instance(instance);
  EXPECT_EQ(incremental.has_stable, scratch.has_stable)
      << dump_instance(instance);
  EXPECT_EQ(incremental.count, scratch.count) << dump_instance(instance);
  EXPECT_EQ(incremental.count_exact, scratch.count_exact)
      << dump_instance(instance);
  EXPECT_EQ(incremental.assignments, scratch.assignments)
      << dump_instance(instance);
  for (const spp::Assignment& assignment : incremental.assignments) {
    EXPECT_TRUE(spp::is_stable_assignment(instance, assignment))
        << dump_instance(instance);
  }
}

void expect_enumeration_agrees(const StableSearchResult& sat,
                               const spp::SppInstance& instance) {
  Options options;
  options.max_states = std::uint64_t{1} << 18;
  options.max_solutions = k_solution_bound;
  const auto enumerate = make_engine(Mode::enumerate, options);
  const Result scan = enumerate->analyze(instance);
  if (!scan.decided) return;  // state space beyond the cap: nothing to check
  EXPECT_EQ(scan.has_stable, sat.has_stable) << dump_instance(instance);
  if (scan.count_exact && sat.count_exact) {
    EXPECT_EQ(scan.count, sat.count) << dump_instance(instance);
  }
  if (scan.witness.has_value()) {
    EXPECT_TRUE(spp::is_stable_assignment(instance, *scan.witness))
        << dump_instance(instance);
    if (sat.count_exact && !sat.assignments.empty()) {
      // Both canonical: the least witness must coincide.
      EXPECT_EQ(*scan.witness, sat.assignments.front())
          << dump_instance(instance);
    }
  }
}

void expect_spvp_agrees(const StableSearchResult& sat,
                        const spp::SppInstance& instance,
                        std::uint64_t spvp_seed) {
  util::Rng rng(spvp_seed);
  const spp::SpvpResult run = spp::simulate_spvp(instance, rng, 20000);
  if (!run.converged) return;  // oscillation/cutoff proves nothing by itself
  EXPECT_TRUE(spp::is_stable_assignment(instance, run.final_assignment))
      << dump_instance(instance);
  EXPECT_TRUE(sat.has_stable) << dump_instance(instance);
  if (sat.count_exact) {
    EXPECT_NE(std::find(sat.assignments.begin(), sat.assignments.end(),
                        run.final_assignment),
              sat.assignments.end())
        << "SPVP fixed point missing from the enumerated stable set\n"
        << dump_instance(instance);
  }
}

/// A seeded random drop or demote edit applicable to `instance`, or
/// nullopt when the instance offers none (no node has editable paths).
std::optional<repair::PolicyEdit> random_edit(const spp::SppInstance& instance,
                                              util::Rng& rng) {
  const std::vector<std::string> nodes = instance.nodes();
  if (nodes.empty()) return std::nullopt;
  for (int attempt = 0; attempt < 16; ++attempt) {
    const std::string& node = nodes[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(nodes.size()) - 1))];
    const std::vector<spp::Path>& ranked = instance.permitted(node);
    if (ranked.empty()) continue;
    const auto pick = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(ranked.size()) - 1));
    const bool demote = rng.chance(0.5);
    if (demote && pick + 1 == ranked.size()) continue;  // already last
    if (!demote && instance.permitted_path_count() == 1) continue;
    return repair::PolicyEdit{demote ? repair::EditKind::demote_path
                                     : repair::EditKind::drop_path,
                              node, ranked[pick], {}};
  }
  return std::nullopt;
}

TEST(Differential, FourOraclesAgreeAcrossTheFuzzSweep) {
  const std::uint64_t base = fuzz_seed_base();

  campaign::RandomSppSweep plain;  // defaults: 3-6 nodes, sparse
  campaign::RandomSppSweep dense;  // conflict-heavy (repair-fuzz shape)
  dense.extra_edge_probability = 0.5;
  dense.paths_per_node = 4;

  std::size_t with_stable = 0;
  std::size_t multi_stable = 0;
  std::size_t edited_queries = 0;
  for (std::size_t i = 0; i < k_instances; ++i) {
    const std::uint64_t seed = base + i;
    const campaign::RandomSppSweep& sweep = i % 2 == 0 ? plain : dense;
    const spp::SppInstance instance = campaign::random_spp_instance(
        "differential-" + std::to_string(seed), seed, sweep);
    SCOPED_TRACE("generator seed " + std::to_string(seed) +
                 (i % 2 == 0 ? " (plain sweep)" : " (dense sweep)"));

    const StableSearchResult scratch =
        solve_stable_assignments(instance, k_solution_bound);
    StableSatSession session(instance);
    const StableSearchResult incremental =
        session.analyze({}, k_solution_bound);
    expect_same_search(incremental, scratch, instance);
    expect_enumeration_agrees(scratch, instance);
    expect_spvp_agrees(scratch, instance, /*spvp_seed=*/base + 31 * i);
    if (scratch.has_stable) ++with_stable;
    if (scratch.count > 1) ++multi_stable;

    // Random edit schedules: the same persistent session answers each
    // edited configuration via a CNF delta; scratch re-encodes the edited
    // instance. Base round-trips between edits catch state leaks.
    util::Rng edit_rng(seed ^ 0xed17u);
    for (std::size_t round = 0; round < k_edit_schedules; ++round) {
      const auto edit = random_edit(instance, edit_rng);
      if (!edit.has_value()) break;
      const auto edited = repair::apply_edits(instance, {*edit});
      if (!edited.has_value()) continue;  // edit emptied the instance
      SCOPED_TRACE("edit: " + edit->describe());
      RankingDelta delta;
      delta.node = edit->node;
      delta.ranked = edited->permitted(edit->node);
      const StableSearchResult edited_scratch =
          solve_stable_assignments(*edited, k_solution_bound);
      const StableSearchResult edited_incremental =
          session.analyze({delta}, k_solution_bound);
      expect_same_search(edited_incremental, edited_scratch, *edited);
      expect_spvp_agrees(edited_scratch, *edited,
                         /*spvp_seed=*/base + 31 * i + round + 1);
      ++edited_queries;
    }
    const StableSearchResult back = session.analyze({}, k_solution_bound);
    expect_same_search(back, scratch, instance);
  }

  // The sweep must actually exercise the interesting shapes: stable and
  // multi-stable instances, and a healthy number of edited queries.
  EXPECT_GT(with_stable, k_instances / 2);
  EXPECT_GT(multi_stable, 0u);
  EXPECT_GT(edited_queries, k_instances);
}

TEST(Differential, EventSimulatorFixedPointsMatchTheSatOracle) {
  // The event-driven simulator (src/sim) against oracle #1: 100 seeds per
  // library gadget, cycling through every churn scenario. Every
  // terminating run's fixed point must be a member of the SAT-enumerated
  // stable set, and an instance the oracle proves has NO stable assignment
  // must never terminate (the simulator's exact cycle detection has to
  // catch it instead).
  const std::uint64_t base = fuzz_seed_base();
  constexpr std::size_t k_sim_seeds = 100;
  const std::vector<std::string> gadgets = {
      "good",       "bad",          "disagree",     "ibgp-figure3",
      "ibgp-figure3-fixed", "good-chain-3", "bad-chain-2"};
  const std::vector<std::string>& scenarios = sim::scenario_names();

  std::size_t terminating = 0;
  std::size_t oscillating = 0;
  for (const std::string& name : gadgets) {
    const spp::SppInstance instance = spp::gadget_by_name(name);
    const StableSearchResult sat =
        solve_stable_assignments(instance, k_solution_bound);
    ASSERT_TRUE(sat.decided) << dump_instance(instance);
    for (std::size_t s = 0; s < k_sim_seeds; ++s) {
      sim::SimOptions options;
      options.seed = base + s;
      options.scenario = scenarios[s % scenarios.size()];
      const sim::SimResult run = sim::simulate(instance, options);
      SCOPED_TRACE(name + " seed " + std::to_string(options.seed) + " (" +
                   options.scenario + ")");
      // Finite deterministic transition system + generous step cap: every
      // run decides one way or the other.
      ASSERT_TRUE(run.converged || run.oscillating) << dump_instance(instance);
      if (run.converged) {
        ++terminating;
        EXPECT_TRUE(run.fixed_point_stable) << dump_instance(instance);
        EXPECT_TRUE(spp::is_stable_assignment(instance, run.final_assignment))
            << dump_instance(instance);
        EXPECT_TRUE(sat.has_stable) << dump_instance(instance);
        if (sat.count_exact) {
          EXPECT_NE(std::find(sat.assignments.begin(), sat.assignments.end(),
                              run.final_assignment),
                    sat.assignments.end())
              << "simulated fixed point missing from the SAT stable set\n"
              << dump_instance(instance);
        }
      } else {
        ++oscillating;
        EXPECT_GT(run.cycle_length, 0u) << dump_instance(instance);
      }
      if (!sat.has_stable) {
        EXPECT_TRUE(run.oscillating)
            << "run terminated on an instance with no stable assignment\n"
            << dump_instance(instance);
      }
    }
  }
  // The sweep saw both behaviours in volume (BAD and its chain alone
  // guarantee 200 oscillations; the safe gadgets guarantee termination).
  EXPECT_GE(terminating, 3 * k_sim_seeds);
  EXPECT_GE(oscillating, 2 * k_sim_seeds);
}

TEST(Differential, IncrementalDetectorIsByteIdenticalToCanonical) {
  // The incremental-hash + Brent detector against the PR-8 full
  // canonicalisation detector: 100 seeds per library gadget cycling through
  // every churn scenario, every SimResult field AND the per-event trace
  // byte-identical. This is the property that lets the cache layer share
  // records across detectors (campaign/cache.cpp keys sim outcomes without
  // the detector axis).
  const std::uint64_t base = fuzz_seed_base();
  constexpr std::size_t k_sim_seeds = 100;
  const std::vector<std::string> gadgets = {
      "good",       "bad",          "disagree",     "ibgp-figure3",
      "ibgp-figure3-fixed", "good-chain-3", "bad-chain-2"};
  const std::vector<std::string>& scenarios = sim::scenario_names();
  const std::vector<std::string>& policies = sim::suppression_names();

  for (const std::string& name : gadgets) {
    const spp::SppInstance instance = spp::gadget_by_name(name);
    for (std::size_t s = 0; s < k_sim_seeds; ++s) {
      sim::SimOptions incremental;
      incremental.seed = base + s;
      incremental.scenario = scenarios[s % scenarios.size()];
      incremental.suppression = policies[s % policies.size()];
      incremental.record_trace = true;
      sim::SimOptions canonical = incremental;
      canonical.detector = "canonical";
      const sim::SimResult a = sim::simulate(instance, incremental);
      const sim::SimResult b = sim::simulate(instance, canonical);
      SCOPED_TRACE(name + " seed " + std::to_string(incremental.seed) + " (" +
                   incremental.scenario + "/" + incremental.suppression + ")");
      ASSERT_EQ(a.converged, b.converged);
      ASSERT_EQ(a.oscillating, b.oscillating);
      ASSERT_EQ(a.cutoff, b.cutoff);
      ASSERT_EQ(a.steps, b.steps);
      ASSERT_EQ(a.ticks, b.ticks);
      ASSERT_EQ(a.messages, b.messages);
      ASSERT_EQ(a.route_changes, b.route_changes);
      ASSERT_EQ(a.convergence_tick, b.convergence_tick);
      ASSERT_EQ(a.cycle_length, b.cycle_length);
      ASSERT_EQ(a.fixed_point_stable, b.fixed_point_stable);
      ASSERT_EQ(a.final_assignment, b.final_assignment);
      ASSERT_EQ(a.trace, b.trace);
    }
  }
}

}  // namespace
}  // namespace fsr::groundtruth
