// Tests for the SPP substrate: instance validation, the gadget library's
// ground-truth stable-state structure, the asynchronous SPVP simulator,
// and the SPP -> algebra translation of Section III-B (including the
// paper's eighteen-constraint Figure-3 encoding).
#include <gtest/gtest.h>

#include "algebra/finite_algebra.h"
#include "spp/gadgets.h"
#include "spp/spp.h"
#include "spp/translate.h"
#include "util/error.h"
#include "util/rng.h"

namespace fsr::spp {
namespace {

// ------------------------------------------------------------ instance --

TEST(SppInstance, ValidatesPaths) {
  SppInstance instance("t");
  instance.add_edge("1", "0");
  instance.add_edge("1", "2");
  EXPECT_THROW(instance.add_permitted_path({"1"}), InvalidArgument);
  EXPECT_THROW(instance.add_permitted_path({"1", "2"}), InvalidArgument);
  EXPECT_THROW(instance.add_permitted_path({"0", "1", "0"}), InvalidArgument);
  EXPECT_THROW(instance.add_permitted_path({"2", "0"}), InvalidArgument);
  EXPECT_THROW(instance.add_permitted_path({"1", "1", "0"}), InvalidArgument);
  instance.add_permitted_path({"1", "0"});
  EXPECT_EQ(instance.permitted("1").size(), 1u);
}

TEST(SppInstance, RankOfReflectsInsertionOrder) {
  const SppInstance g = good_gadget();
  EXPECT_EQ(g.rank_of({"1", "3", "0"}), 0u);
  EXPECT_EQ(g.rank_of({"1", "0"}), 1u);
  EXPECT_EQ(g.rank_of({"1", "2", "0"}), std::nullopt);
}

TEST(SppInstance, EdgesDeduplicated) {
  SppInstance instance("t");
  instance.add_edge("1", "2");
  instance.add_edge("2", "1");
  EXPECT_EQ(instance.edges().size(), 1u);
  EXPECT_TRUE(instance.has_edge("2", "1"));
}

TEST(SppInstance, RejectsSelfLoop) {
  SppInstance instance("t");
  EXPECT_THROW(instance.add_edge("1", "1"), InvalidArgument);
}

TEST(SppInstance, NodesExcludeDestination) {
  const SppInstance g = disagree_gadget();
  const auto nodes = g.nodes();
  EXPECT_EQ(nodes.size(), 2u);
  for (const auto& n : nodes) EXPECT_NE(n, "0");
}

// ------------------------------------------------- stable enumeration --

TEST(StableStates, GoodGadgetHasUniqueSolution) {
  const auto stable = enumerate_stable_assignments(good_gadget());
  ASSERT_EQ(stable.size(), 1u);
  const Assignment& a = stable.front();
  EXPECT_EQ(a.at("1"), (Path{"1", "3", "0"}));
  EXPECT_EQ(a.at("2"), (Path{"2", "0"}));
  EXPECT_EQ(a.at("3"), (Path{"3", "0"}));
}

TEST(StableStates, BadGadgetHasNoSolution) {
  EXPECT_TRUE(enumerate_stable_assignments(bad_gadget()).empty());
}

TEST(StableStates, DisagreeHasExactlyTwoSolutions) {
  const auto stable = enumerate_stable_assignments(disagree_gadget());
  EXPECT_EQ(stable.size(), 2u);
}

TEST(StableStates, Figure3GadgetHasNoSolution) {
  // The iBGP reflection instance oscillates: no stable assignment.
  EXPECT_TRUE(enumerate_stable_assignments(ibgp_figure3_gadget()).empty());
}

TEST(StableStates, Figure3FixedHasSolution) {
  const auto stable = enumerate_stable_assignments(ibgp_figure3_fixed());
  ASSERT_FALSE(stable.empty());
  // In every stable state each reflector uses its own client's egress.
  for (const Assignment& a : stable) {
    EXPECT_EQ(a.at("a"), (Path{"a", "d", "0"}));
    EXPECT_EQ(a.at("b"), (Path{"b", "e", "0"}));
    EXPECT_EQ(a.at("c"), (Path{"c", "f", "0"}));
  }
}

TEST(StableStates, EnumerationGuardsSearchSpace) {
  EXPECT_THROW(
      enumerate_stable_assignments(good_gadget_chain(30), /*max_states=*/100),
      InvalidArgument);
}

TEST(StableStates, StabilityPredicateMatchesEnumeration) {
  const auto stable = enumerate_stable_assignments(disagree_gadget());
  for (const Assignment& assignment : stable) {
    EXPECT_TRUE(is_stable_assignment(disagree_gadget(), assignment));
  }
  // Perturbing a stable state breaks the predicate.
  Assignment broken = stable.front();
  broken.erase(broken.begin()->first);
  EXPECT_FALSE(is_stable_assignment(disagree_gadget(), broken));
  EXPECT_FALSE(is_stable_assignment(bad_gadget(), {}));
}

TEST(StableStates, BudgetedScanStopsInsteadOfThrowing) {
  // The full space of good_gadget_chain(8) is 3^24 states; a 1000-state
  // budget must stop cleanly and say so.
  const BudgetedEnumeration capped =
      enumerate_stable_assignments_budgeted(good_gadget_chain(8), 1000);
  EXPECT_FALSE(capped.complete);
  EXPECT_EQ(capped.states_scanned, 1000u);

  const BudgetedEnumeration full =
      enumerate_stable_assignments_budgeted(disagree_gadget(), 1u << 20);
  EXPECT_TRUE(full.complete);
  EXPECT_EQ(full.states_scanned, 9u);  // 3 options x 3 options
  EXPECT_EQ(full.assignments.size(), 2u);

  // The solutions bound also ends the scan early.
  const BudgetedEnumeration bounded = enumerate_stable_assignments_budgeted(
      disagree_gadget(), 1u << 20, /*max_solutions=*/1);
  EXPECT_FALSE(bounded.complete);
  EXPECT_EQ(bounded.assignments.size(), 1u);
}

TEST(StableStates, BudgetedScanNamesTheExhaustedBudget) {
  // An incomplete scan says WHICH budget ended it — the repair report
  // surfaces this instead of a bare not_applicable.
  const BudgetedEnumeration states_out =
      enumerate_stable_assignments_budgeted(good_gadget_chain(8), 1000);
  EXPECT_EQ(states_out.stopped_by, EnumerationStop::state_budget);
  const BudgetedEnumeration solutions_out =
      enumerate_stable_assignments_budgeted(disagree_gadget(), 1u << 20,
                                            /*max_solutions=*/1);
  EXPECT_EQ(solutions_out.stopped_by, EnumerationStop::solution_budget);
  const BudgetedEnumeration done =
      enumerate_stable_assignments_budgeted(disagree_gadget(), 1u << 20);
  EXPECT_EQ(done.stopped_by, EnumerationStop::completed);
  EXPECT_STREQ(to_string(EnumerationStop::completed), "completed");
  EXPECT_STREQ(to_string(EnumerationStop::state_budget), "state-budget");
  EXPECT_STREQ(to_string(EnumerationStop::solution_budget),
               "solution-budget");
}

// ----------------------------------------------------------- SPVP sim --

TEST(Spvp, GoodGadgetConvergesToTheUniqueSolution) {
  util::Rng rng(1);
  const SpvpResult r = simulate_spvp(good_gadget(), rng);
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.final_assignment.at("1"), (Path{"1", "3", "0"}));
}

TEST(Spvp, BadGadgetNeverConverges) {
  util::Rng rng(2);
  const SpvpResult r = simulate_spvp(bad_gadget(), rng, 20000);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.activations, 20000u);
  EXPECT_GT(r.route_changes, 100u);  // sustained oscillation, not silence
}

TEST(Spvp, DisagreeConvergesToOneOfTwoStates) {
  const auto stable = enumerate_stable_assignments(disagree_gadget());
  ASSERT_EQ(stable.size(), 2u);
  int seen_first = 0;
  for (int seed = 0; seed < 20; ++seed) {
    util::Rng rng(static_cast<std::uint64_t>(seed));
    const SpvpResult r = simulate_spvp(disagree_gadget(), rng);
    ASSERT_TRUE(r.converged);
    const bool is_first = r.final_assignment == stable[0];
    const bool is_second = r.final_assignment == stable[1];
    EXPECT_TRUE(is_first || is_second);
    if (is_first) ++seen_first;
  }
  // Both outcomes are reachable across seeds (non-determinism is real).
  EXPECT_GT(seen_first, 0);
  EXPECT_LT(seen_first, 20);
}

TEST(Spvp, Figure3GadgetOscillates) {
  util::Rng rng(3);
  const SpvpResult r = simulate_spvp(ibgp_figure3_gadget(), rng, 20000);
  EXPECT_FALSE(r.converged);
}

TEST(Spvp, Figure3FixedConverges) {
  util::Rng rng(4);
  const SpvpResult r = simulate_spvp(ibgp_figure3_fixed(), rng);
  EXPECT_TRUE(r.converged);
}

// --------------------------------------------------------- translation --

TEST(Translate, Figure3ProducesEighteenConstraints) {
  const auto a = algebra_from_spp(ibgp_figure3_gadget());
  const algebra::SymbolicSpec spec = a->symbolic();
  // 15 permitted paths -> 15 signatures.
  EXPECT_EQ(spec.signatures.size(), 15u);
  // 9 pairwise ranking constraints (1+1+1+2+2+2).
  EXPECT_EQ(spec.preferences.size(), 9u);
  // 9 concatenation entries (paths whose suffix is itself permitted).
  EXPECT_EQ(spec.extensions.size(), 9u);
  // Together: the paper's "eighteen constraints" for this instance.
  EXPECT_EQ(spec.preferences.size() + spec.extensions.size(), 18u);
}

TEST(Translate, LabelsAndComplements) {
  const auto a = algebra_from_spp(disagree_gadget());
  EXPECT_EQ(a->complement(algebra::Value::atom(spp_label("1", "2"))),
            algebra::Value::atom(spp_label("2", "1")));
}

TEST(Translate, ExtensionReplaysSppDynamics) {
  const auto a = algebra_from_spp(good_gadget());
  // 1 extends 3's direct route over link 1->3: permitted, yields r(1-3-0).
  const auto extended =
      a->extend(algebra::Value::atom(spp_label("1", "3")),
                algebra::Value::atom(spp_signature({"3", "0"})));
  ASSERT_TRUE(extended.has_value());
  EXPECT_EQ(extended->as_atom(), spp_signature({"1", "3", "0"}));
  // 2 extending 3's route is not permitted anywhere: phi.
  EXPECT_FALSE(a->extend(algebra::Value::atom(spp_label("2", "1")),
                         algebra::Value::atom(spp_signature({"3", "0"})))
                   .has_value());
}

TEST(Translate, OriginationCoversOneHopPermittedPaths) {
  const auto a = algebra_from_spp(good_gadget());
  const auto orig = a->originate(algebra::Value::atom(spp_label("3", "0")));
  ASSERT_TRUE(orig.has_value());
  EXPECT_EQ(orig->as_atom(), spp_signature({"3", "0"}));
}

TEST(Translate, PerNodeRankingBecomesStrictPreference) {
  const auto a = algebra_from_spp(good_gadget());
  EXPECT_EQ(a->compare(algebra::Value::atom(spp_signature({"1", "3", "0"})),
                       algebra::Value::atom(spp_signature({"1", "0"}))),
            algebra::Ordering::better);
  // Paths of different nodes are incomparable (partial order; the paper's
  // soundness argument in Section IV-C explains why this is fine).
  EXPECT_EQ(a->compare(algebra::Value::atom(spp_signature({"1", "0"})),
                       algebra::Value::atom(spp_signature({"2", "0"}))),
            algebra::Ordering::incomparable);
}

TEST(Translate, RejectsEmptyInstance) {
  SppInstance empty("empty");
  EXPECT_THROW(algebra_from_spp(empty), InvalidArgument);
}

TEST(Translate, GoodGadgetChainScales) {
  const auto a = algebra_from_spp(good_gadget_chain(4));
  EXPECT_EQ(a->symbolic().signatures.size(), 4u * 6u);
}

}  // namespace
}  // namespace fsr::spp
