// Unit tests for the SMT substrate: s-expressions, linearisation, the
// difference engine, the context (models + minimal unsat cores) and the
// Yices-style frontend, including the paper's Section IV-C examples.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <random>
#include <set>

#include "smt/context.h"
#include "smt/difference_engine.h"
#include "smt/linear.h"
#include "smt/sexpr.h"
#include "smt/term.h"
#include "smt/yices_frontend.h"
#include "util/error.h"

namespace fsr::smt {
namespace {

// ---------------------------------------------------------------- sexpr --

TEST(Sexpr, ParsesAtomsAndLists) {
  const Sexpr s = parse_sexpr("(assert (< C P))");
  ASSERT_TRUE(s.is_call("assert"));
  ASSERT_EQ(s.size(), 2u);
  const Sexpr& rel = s.items()[1];
  ASSERT_TRUE(rel.is_call("<"));
  EXPECT_EQ(rel.items()[1].spelling(), "C");
  EXPECT_EQ(rel.items()[2].spelling(), "P");
}

TEST(Sexpr, SkipsCommentsAndWhitespace) {
  const auto all = parse_sexprs(
      ";; preference relations\n"
      "(assert (< C R)) ; trailing\n"
      "\n  (check)\n");
  ASSERT_EQ(all.size(), 2u);
  EXPECT_TRUE(all[0].is_call("assert"));
  EXPECT_TRUE(all[1].is_call("check"));
}

TEST(Sexpr, RoundTripsToString) {
  const std::string text = "(define-type Sig (subtype (n::nat) (> n 0)))";
  EXPECT_EQ(parse_sexpr(text).to_string(), text);
}

TEST(Sexpr, RejectsUnbalancedInput) {
  EXPECT_THROW(parse_sexprs("(assert (< C P)"), ParseError);
  EXPECT_THROW(parse_sexprs(")"), ParseError);
  EXPECT_THROW(parse_sexpr("(a) (b)"), ParseError);
}

TEST(Sexpr, NestedListDepth) {
  const Sexpr s = parse_sexpr("(a (b (c (d e))))");
  EXPECT_TRUE(s.is_call("a"));
  EXPECT_TRUE(s.items()[1].items()[1].items()[1].is_call("d"));
}

// --------------------------------------------------------------- linear --

TEST(Linear, FlattensNestedArithmetic) {
  // (x + 2) - (y - 3) = x - y + 5
  const Term t = Term::sub(Term::add(Term::variable("x"), Term::constant(2)),
                           Term::sub(Term::variable("y"), Term::constant(3)));
  const LinearForm f = linearize(t);
  EXPECT_EQ(f.constant, 5);
  EXPECT_EQ(f.coefficients.at("x"), 1);
  EXPECT_EQ(f.coefficients.at("y"), -1);
}

TEST(Linear, CancelsVariables) {
  const Term t = Term::sub(Term::variable("x"), Term::variable("x"));
  const LinearForm f = linearize(t);
  EXPECT_EQ(f.variable_count(), 0u);
  EXPECT_EQ(f.constant, 0);
}

TEST(Linear, ScalarMultiplication) {
  const Term t = Term::mul(Term::constant(3),
                           Term::add(Term::variable("x"), Term::constant(1)));
  const LinearForm f = linearize(t);
  EXPECT_EQ(f.coefficients.at("x"), 3);
  EXPECT_EQ(f.constant, 3);
}

TEST(Linear, RejectsNonLinearProducts) {
  const Term t = Term::mul(Term::variable("x"), Term::variable("y"));
  EXPECT_THROW(linearize(t), InvalidArgument);
}

TEST(Linear, RejectsRelations) {
  EXPECT_THROW(linearize(Term::lt(Term::variable("x"), Term::variable("y"))),
               InvalidArgument);
}

// ---------------------------------------------------- difference engine --

TEST(DifferenceEngine, SimpleSatisfiableChain) {
  // x1 - x0 <= -1, x2 - x1 <= -1 : satisfiable.
  std::vector<DiffConstraint> cs = {{1, 0, -1, 100}, {2, 1, -1, 101}};
  const DiffResult r = solve_difference_system(3, cs);
  ASSERT_TRUE(r.satisfiable);
  EXPECT_LE(r.model[1] - r.model[0], -1);
  EXPECT_LE(r.model[2] - r.model[1], -1);
  EXPECT_EQ(r.model[0], 0);  // normalised
}

TEST(DifferenceEngine, DetectsNegativeCycle) {
  // x - y <= -1 and y - x <= 0 : cycle weight -1.
  std::vector<DiffConstraint> cs = {{1, 2, -1, 7}, {2, 1, 0, 8}};
  const DiffResult r = solve_difference_system(3, cs);
  ASSERT_FALSE(r.satisfiable);
  const std::set<std::int64_t> tags(r.conflict_tags.begin(),
                                    r.conflict_tags.end());
  EXPECT_EQ(tags, (std::set<std::int64_t>{7, 8}));
}

TEST(DifferenceEngine, SelfLoopContradiction) {
  // x - x <= -1 is unsatisfiable on its own.
  std::vector<DiffConstraint> cs = {{1, 1, -1, 42}};
  const DiffResult r = solve_difference_system(2, cs);
  ASSERT_FALSE(r.satisfiable);
  ASSERT_EQ(r.conflict_tags.size(), 1u);
  EXPECT_EQ(r.conflict_tags[0], 42);
}

TEST(DifferenceEngine, ZeroWeightCycleIsSatisfiable) {
  std::vector<DiffConstraint> cs = {{1, 2, 0, 1}, {2, 1, 0, 2}};
  const DiffResult r = solve_difference_system(3, cs);
  ASSERT_TRUE(r.satisfiable);
  EXPECT_EQ(r.model[1], r.model[2]);
}

TEST(DifferenceEngine, RejectsBadVariableIndices) {
  std::vector<DiffConstraint> cs = {{5, 0, 0, 1}};
  EXPECT_THROW(solve_difference_system(2, cs), InvalidArgument);
}

TEST(DifferenceEngine, LongSatisfiableCycleWithSlack) {
  // Ring of n constraints x_{i+1} - x_i <= 1 plus x_0 - x_{n-1} <= -(n-1):
  // total cycle weight 0 -> satisfiable, forces a strict ladder.
  constexpr std::int32_t n = 50;
  std::vector<DiffConstraint> cs;
  for (std::int32_t i = 0; i + 1 < n; ++i) {
    cs.push_back({i + 1, i, 1, i});
  }
  cs.push_back({0, n - 1, -(n - 1), 99});
  const DiffResult r = solve_difference_system(n, cs);
  ASSERT_TRUE(r.satisfiable);
  EXPECT_EQ(r.model[n - 1] - r.model[0], n - 1);
}

TEST(DifferenceEngine, LongUnsatisfiableCycleFindsCore) {
  // Ring where the loop-closing edge makes total weight -1.
  constexpr std::int32_t n = 40;
  std::vector<DiffConstraint> cs;
  for (std::int32_t i = 0; i + 1 < n; ++i) {
    cs.push_back({i + 1, i, 1, i});
  }
  cs.push_back({0, n - 1, -n, 99});
  const DiffResult r = solve_difference_system(n, cs);
  ASSERT_FALSE(r.satisfiable);
  EXPECT_FALSE(r.conflict_tags.empty());
  // The closing edge must participate in any conflict.
  EXPECT_NE(std::find(r.conflict_tags.begin(), r.conflict_tags.end(), 99),
            r.conflict_tags.end());
}

// -------------------------------------------------------------- context --

TEST(Context, SatWithModelRespectsConstraints) {
  Context ctx;
  ctx.declare_variable("a");
  ctx.declare_variable("b");
  ctx.declare_variable("c");
  ctx.assert_less("a", "b");
  ctx.assert_less("b", "c");
  const CheckResult r = ctx.check();
  ASSERT_EQ(r.status, Status::sat);
  EXPECT_LT(r.model.at("a"), r.model.at("b"));
  EXPECT_LT(r.model.at("b"), r.model.at("c"));
  EXPECT_GE(r.model.at("a"), 1);  // positivity (type constraint)
}

TEST(Context, UnsatCoreIsMinimal) {
  Context ctx;
  ctx.declare_variable("a");
  ctx.declare_variable("b");
  ctx.declare_variable("c");
  const auto i1 = ctx.assert_less("a", "b", "a<b");
  const auto i2 = ctx.assert_less("b", "a", "b<a");
  ctx.assert_less("a", "c", "a<c (irrelevant)");
  const CheckResult r = ctx.check();
  ASSERT_EQ(r.status, Status::unsat);
  const std::set<AssertionId> core(r.unsat_core.begin(), r.unsat_core.end());
  EXPECT_EQ(core, (std::set<AssertionId>{i1, i2}));
}

TEST(Context, SelfStrictLessIsItsOwnCore) {
  Context ctx;
  ctx.declare_variable("C");
  ctx.declare_variable("P");
  ctx.assert_less("C", "P", "C<P");
  const auto bad = ctx.assert_less("C", "C", "C<C");
  const CheckResult r = ctx.check();
  ASSERT_EQ(r.status, Status::unsat);
  ASSERT_EQ(r.unsat_core.size(), 1u);
  EXPECT_EQ(r.unsat_core[0], bad);
  EXPECT_EQ(ctx.describe(bad), "C<C");
}

TEST(Context, RetractRemovesConflict) {
  Context ctx;
  ctx.declare_variable("x");
  ctx.declare_variable("y");
  ctx.assert_less("x", "y");
  const auto bad = ctx.assert_less("y", "x");
  ASSERT_EQ(ctx.check().status, Status::unsat);
  ctx.retract(bad);
  EXPECT_EQ(ctx.check().status, Status::sat);
  EXPECT_EQ(ctx.active_assertion_count(), 1u);
}

TEST(Context, EqualityPropagates) {
  Context ctx;
  ctx.declare_variable("p");
  ctx.declare_variable("r");
  ctx.assert_equal("p", "r");
  const CheckResult r = ctx.check();
  ASSERT_EQ(r.status, Status::sat);
  EXPECT_EQ(r.model.at("p"), r.model.at("r"));
}

TEST(Context, EqualityChainWithStrictContradiction) {
  Context ctx;
  for (const char* v : {"a", "b", "c", "d"}) ctx.declare_variable(v);
  const auto e1 = ctx.assert_equal("a", "b", "a=b");
  const auto e2 = ctx.assert_equal("b", "c", "b=c");
  const auto l1 = ctx.assert_less("c", "d", "c<d");
  const auto l2 = ctx.assert_less("d", "a", "d<a");
  const CheckResult r = ctx.check();
  ASSERT_EQ(r.status, Status::unsat);
  const std::set<AssertionId> core(r.unsat_core.begin(), r.unsat_core.end());
  EXPECT_EQ(core, (std::set<AssertionId>{e1, e2, l1, l2}));
}

TEST(Context, BoundAgainstConstant) {
  Context ctx;
  ctx.declare_variable("x");
  ctx.assert_term(Term::lt(Term::variable("x"), Term::constant(2)), "x<2");
  const CheckResult r = ctx.check();
  ASSERT_EQ(r.status, Status::sat);
  // x must be exactly 1: positive and < 2 -- the paper's own x<2 example.
  EXPECT_EQ(r.model.at("x"), 1);
}

TEST(Context, ConstantBoundConflictsWithPositivity) {
  Context ctx;
  ctx.declare_variable("x");  // x >= 1 by type
  const auto id =
      ctx.assert_term(Term::lt(Term::variable("x"), Term::constant(1)), "x<1");
  const CheckResult r = ctx.check();
  ASSERT_EQ(r.status, Status::unsat);
  // The type constraint never shows up; the core is the user's assertion.
  ASSERT_EQ(r.unsat_core.size(), 1u);
  EXPECT_EQ(r.unsat_core[0], id);
}

TEST(Context, ForallValidSchemaIsNoOp) {
  Context ctx;
  ctx.declare_variable("y");
  ctx.assert_term(Term::forall_positive(
      "s", Term::lt(Term::variable("s"),
                    Term::add(Term::variable("s"), Term::constant(1)))));
  EXPECT_EQ(ctx.check().status, Status::sat);
}

TEST(Context, ForallInvalidSchemaIsUnsat) {
  Context ctx;
  // forall s: s < s  -- the classic non-monotone policy shape.
  const auto id = ctx.assert_term(Term::forall_positive(
      "s", Term::lt(Term::variable("s"), Term::variable("s"))));
  const CheckResult r = ctx.check();
  ASSERT_EQ(r.status, Status::unsat);
  ASSERT_EQ(r.unsat_core.size(), 1u);
  EXPECT_EQ(r.unsat_core[0], id);
}

TEST(Context, ForallDecreasingCostIsUnsatForMonotonicity) {
  Context ctx;
  // forall s: s <= s - 2 is false over positive integers.
  const auto id = ctx.assert_term(Term::forall_positive(
      "s", Term::le(Term::variable("s"),
                    Term::sub(Term::variable("s"), Term::constant(2)))));
  const CheckResult r = ctx.check();
  ASSERT_EQ(r.status, Status::unsat);
  EXPECT_EQ(r.unsat_core, (std::vector<AssertionId>{id}));
}

TEST(Context, RejectsUndeclaredVariables) {
  Context ctx;
  ctx.declare_variable("x");
  EXPECT_THROW(ctx.assert_less("x", "ghost"), InvalidArgument);
}

TEST(Context, RejectsDuplicateDeclaration) {
  Context ctx;
  ctx.declare_variable("x");
  EXPECT_THROW(ctx.declare_variable("x"), InvalidArgument);
}

TEST(Context, RejectsNonDifferenceRelation) {
  Context ctx;
  ctx.declare_variable("x");
  ctx.declare_variable("y");
  // 2x - y < 0 has a non-unit coefficient.
  EXPECT_THROW(
      ctx.assert_term(Term::lt(
          Term::mul(Term::constant(2), Term::variable("x")),
          Term::variable("y"))),
      InvalidArgument);
}

TEST(Context, CheckSubsetIgnoresOtherAssertions) {
  Context ctx;
  ctx.declare_variable("x");
  ctx.declare_variable("y");
  const auto good = ctx.assert_less("x", "y");
  ctx.assert_less("y", "x");  // conflicting, but not in the subset
  EXPECT_EQ(ctx.check_subset({good}).status, Status::sat);
  EXPECT_EQ(ctx.check().status, Status::unsat);
}

TEST(Context, UnminimizedCoreStillConflicting) {
  Context ctx;
  ctx.set_minimize_cores(false);
  ctx.declare_variable("a");
  ctx.declare_variable("b");
  ctx.assert_less("a", "b");
  ctx.assert_less("b", "a");
  ctx.assert_less("a", "a");
  const CheckResult r = ctx.check();
  ASSERT_EQ(r.status, Status::unsat);
  // Without minimisation we still get a genuine conflict set.
  EXPECT_EQ(ctx.check_subset(r.unsat_core).status, Status::unsat);
}

// ------------------------------------- incremental solving and scopes --

// Regression for the AssertionId stability contract: ids survive
// interleaved assert/retract/reassert, and unsat cores reported afterwards
// name the right assertions.
TEST(Context, AssertionIdsStableAcrossRetractAndReassert) {
  Context ctx;
  for (const char* v : {"x", "y", "z"}) ctx.declare_variable(v);
  const auto a = ctx.assert_less("x", "y", "x<y");
  const auto b = ctx.assert_less("y", "z", "y<z");
  ctx.retract(a);
  const auto c = ctx.assert_less("z", "x", "z<x");
  EXPECT_NE(c, a);
  EXPECT_NE(c, b);
  // A retracted assertion keeps its identity...
  EXPECT_EQ(ctx.describe(a), "x<y");
  EXPECT_FALSE(ctx.is_active(a));
  EXPECT_EQ(ctx.check().status, Status::sat);  // y<z, z<x alone: satisfiable
  // ...and reasserting restores it under the original id, with a correct
  // minimal core across the whole interleaving.
  ctx.reassert(a);
  const CheckResult r = ctx.check();
  ASSERT_EQ(r.status, Status::unsat);
  const std::set<AssertionId> core(r.unsat_core.begin(), r.unsat_core.end());
  EXPECT_EQ(core, (std::set<AssertionId>{a, b, c}));
  for (const AssertionId id : r.unsat_core) {
    EXPECT_NO_THROW((void)ctx.describe(id));
  }
}

TEST(Context, PoppedIdsAreNeverReused) {
  Context ctx;
  ctx.declare_variable("x");
  ctx.declare_variable("y");
  const auto base = ctx.assert_less("x", "y", "base");
  ctx.push();
  const auto scoped = ctx.assert_less("y", "x", "scoped");
  EXPECT_EQ(ctx.check().status, Status::unsat);
  ctx.pop();
  const auto later = ctx.assert_less_equal("x", "y", "later");
  EXPECT_NE(later, scoped);  // the popped id is gone for good
  EXPECT_THROW((void)ctx.describe(scoped), InvalidArgument);
  EXPECT_EQ(ctx.describe(later), "later");
  EXPECT_EQ(ctx.describe(base), "base");
  EXPECT_EQ(ctx.check().status, Status::sat);
}

TEST(Context, PopUndoesFlagFlipsMadeInScope) {
  Context ctx;
  ctx.declare_variable("x");
  ctx.declare_variable("y");
  const auto a = ctx.assert_less("x", "y");
  ctx.push();
  ctx.retract(a);
  const auto b = ctx.assert_less("y", "x");
  EXPECT_EQ(ctx.check().status, Status::sat);  // only y<x active in scope
  (void)b;
  ctx.pop();
  EXPECT_TRUE(ctx.is_active(a));
  EXPECT_EQ(ctx.active_assertion_count(), 1u);
  EXPECT_EQ(ctx.check().status, Status::sat);
}

TEST(Context, AssumptionCheckActivatesRetractedAssertions) {
  Context ctx;
  for (const char* v : {"a", "b", "c"}) ctx.declare_variable(v);
  const auto i1 = ctx.assert_less("a", "b", "a<b");
  const auto i2 = ctx.assert_less("b", "c", "b<c");
  const auto i3 = ctx.assert_less("c", "a", "c<a");
  ctx.retract(i3);

  CheckResult without = ctx.check(std::vector<AssertionId>{});
  ASSERT_EQ(without.status, Status::sat);
  EXPECT_LT(without.model.at("a"), without.model.at("b"));
  EXPECT_LT(without.model.at("b"), without.model.at("c"));

  const CheckResult with = ctx.check({i3});
  ASSERT_EQ(with.status, Status::unsat);
  const std::set<AssertionId> core(with.unsat_core.begin(),
                                   with.unsat_core.end());
  EXPECT_EQ(core, (std::set<AssertionId>{i1, i2, i3}));
  // The retraction itself is untouched by assumption checks.
  EXPECT_FALSE(ctx.is_active(i3));
  EXPECT_EQ(ctx.check(std::vector<AssertionId>{}).status, Status::sat);
}

TEST(Context, AssumptionChecksShareOneEngineAcrossScopedExtras) {
  // The repair pattern: a fixed base, retractable members, per-candidate
  // scoped extras. The incremental engine must be built exactly once.
  Context ctx;
  for (const char* v : {"a", "b", "c", "d"}) ctx.declare_variable(v);
  ctx.assert_less("a", "b");
  ctx.assert_less("b", "c");
  const auto variable = ctx.assert_less("c", "d", "c<d");
  ctx.retract(variable);

  for (int round = 0; round < 8; ++round) {
    ctx.push();
    const auto extra = (round % 2 == 0)
                           ? ctx.assert_less("d", "a", "d<a")
                           : ctx.assert_less_equal("a", "d", "a<=d");
    (void)extra;
    const CheckResult r = ctx.check({variable});
    EXPECT_EQ(r.status, round % 2 == 0 ? Status::unsat : Status::sat);
    ctx.pop();
  }
  EXPECT_EQ(ctx.incremental_check_count(), 8u);
  EXPECT_EQ(ctx.incremental_rebuild_count(), 1u);
}

TEST(Context, AssumptionCheckHandlesTriviallyFalseAssumption) {
  Context ctx;
  ctx.declare_variable("x");
  const auto bad = ctx.assert_term(Term::forall_positive(
      "s", Term::lt(Term::variable("s"), Term::variable("s"))));
  ctx.retract(bad);
  EXPECT_EQ(ctx.check(std::vector<AssertionId>{}).status, Status::sat);
  const CheckResult r = ctx.check({bad});
  ASSERT_EQ(r.status, Status::unsat);
  EXPECT_EQ(r.unsat_core, (std::vector<AssertionId>{bad}));
}

TEST(Context, IncrementalRebuildAfterBaseRetraction) {
  Context ctx;
  ctx.declare_variable("x");
  ctx.declare_variable("y");
  const auto a = ctx.assert_less("x", "y");
  const auto b = ctx.assert_less("y", "x");
  EXPECT_EQ(ctx.check(std::vector<AssertionId>{}).status, Status::unsat);
  // Retracting a base member invalidates the engine base; the next
  // incremental check must rebuild and get the right answer.
  ctx.retract(b);
  EXPECT_EQ(ctx.check(std::vector<AssertionId>{}).status, Status::sat);
  EXPECT_EQ(ctx.check({b}).status, Status::unsat);
  (void)a;
  EXPECT_GE(ctx.incremental_rebuild_count(), 2u);
}

// Property sweep: incremental assumption checks agree with from-scratch
// subset checks on random systems, models satisfy the checked constraints,
// and unsat cores are genuine minimal conflicts.
class IncrementalContextProperty : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalContextProperty, AgreesWithFromScratch) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 977 + 13);
  constexpr int n_vars = 5;
  std::uniform_int_distribution<int> var_dist(1, n_vars);
  std::uniform_int_distribution<int> rel_dist(0, 2);

  Context ctx;
  for (int v = 1; v <= n_vars; ++v) {
    ctx.declare_variable("v" + std::to_string(v));
  }
  struct Atom {
    AssertionId id;
    int lhs, rhs, rel;  // rel: 0 '<', 1 '<=', 2 '='
  };
  std::vector<Atom> atoms;
  for (int i = 0; i < 10; ++i) {
    Atom atom{0, var_dist(rng), var_dist(rng), rel_dist(rng)};
    const std::string lhs = "v" + std::to_string(atom.lhs);
    const std::string rhs = "v" + std::to_string(atom.rhs);
    atom.id = atom.rel == 0   ? ctx.assert_less(lhs, rhs)
              : atom.rel == 1 ? ctx.assert_less_equal(lhs, rhs)
                              : ctx.assert_equal(lhs, rhs);
    atoms.push_back(atom);
  }
  // Retract a random subset; those become assumption candidates.
  std::vector<AssertionId> retractable;
  for (const Atom& atom : atoms) {
    if (rng() % 2 == 0) {
      ctx.retract(atom.id);
      retractable.push_back(atom.id);
    }
  }

  for (int round = 0; round < 6; ++round) {
    std::vector<AssertionId> assumptions;
    for (const AssertionId id : retractable) {
      if (rng() % 2 == 0) assumptions.push_back(id);
    }
    const CheckResult incremental = ctx.check(assumptions);

    std::vector<AssertionId> subset;
    for (const Atom& atom : atoms) {
      if (ctx.is_active(atom.id)) subset.push_back(atom.id);
    }
    subset.insert(subset.end(), assumptions.begin(), assumptions.end());
    const CheckResult scratch = ctx.check_subset(subset);

    ASSERT_EQ(incremental.status, scratch.status) << "round " << round;
    if (incremental.status == Status::sat) {
      // The incremental model (unlike check()'s) is any feasible witness;
      // verify it satisfies every checked atom exactly.
      const std::set<AssertionId> checked(subset.begin(), subset.end());
      for (const Atom& atom : atoms) {
        if (!checked.contains(atom.id)) continue;
        const auto l = incremental.model.at("v" + std::to_string(atom.lhs));
        const auto r = incremental.model.at("v" + std::to_string(atom.rhs));
        if (atom.rel == 0) {
          EXPECT_LT(l, r);
        } else if (atom.rel == 1) {
          EXPECT_LE(l, r);
        } else {
          EXPECT_EQ(l, r);
        }
        EXPECT_GE(l, 1);  // positivity type constraint
      }
    } else {
      EXPECT_EQ(ctx.check_subset(incremental.unsat_core).status,
                Status::unsat);
      for (std::size_t i = 0; i < incremental.unsat_core.size(); ++i) {
        std::vector<AssertionId> without;
        for (std::size_t j = 0; j < incremental.unsat_core.size(); ++j) {
          if (j != i) without.push_back(incremental.unsat_core[j]);
        }
        EXPECT_EQ(ctx.check_subset(without).status, Status::sat)
            << "incremental core is not minimal";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomIncrementalSystems, IncrementalContextProperty,
                         ::testing::Range(0, 30));

// ------------------------------------------------------ yices frontend --

// Paper Section IV-C, example 1: shortest hop-count. Expected: sat.
TEST(YicesFrontend, ShortestHopCountIsSat) {
  YicesFrontend frontend;
  const ScriptResult r = frontend.run_script(R"(
    (define-type Sig (subtype (n::nat) (> n 0)))
    (assert (forall (s::Sig) (< s (+ s 1))))
    (check)
  )");
  EXPECT_EQ(r.single_check().status, Status::sat);
  EXPECT_EQ(r.transcript.front(), "sat");
}

// Paper Section IV-C, example 2: Gao-Rexford guideline A, strict
// monotonicity. Expected: unsat (the c (+) C = C entry violates it).
TEST(YicesFrontend, GaoRexfordStrictIsUnsat) {
  YicesFrontend frontend;
  const ScriptResult r = frontend.run_script(R"(
    (define-type Sig (subtype (n::nat) (> n 0)))
    (define C::Sig) (define P::Sig) (define R::Sig)
    ;; preference relations
    (assert (< C R)) (assert (< C P)) (assert (= R P))
    ;; strict monotonicity
    (assert (< C C)) (assert (< C R)) (assert (< C P))
    (assert (< R P)) (assert (< P P))
    (check)
  )");
  const CheckOutcome& outcome = r.single_check();
  ASSERT_EQ(outcome.status, Status::unsat);
  // Minimal core: a single self-strict constraint such as (< C C).
  ASSERT_EQ(outcome.core_texts.size(), 1u);
  EXPECT_TRUE(outcome.core_texts[0] == "(< C C)" ||
              outcome.core_texts[0] == "(< P P)");
}

// Paper Section IV-C, example 2 continued: plain monotonicity of guideline
// A. Expected: sat with the instantiation C=1, P=2, R=2.
TEST(YicesFrontend, GaoRexfordMonotoneIsSatWithPaperModel) {
  YicesFrontend frontend;
  const ScriptResult r = frontend.run_script(R"(
    (define-type Sig (subtype (n::nat) (> n 0)))
    (define C::Sig) (define P::Sig) (define R::Sig)
    (assert (< C R)) (assert (< C P)) (assert (= R P))
    (assert (<= C C)) (assert (<= C R)) (assert (<= C P))
    (assert (<= R P)) (assert (<= P P))
    (check)
  )");
  const CheckOutcome& outcome = r.single_check();
  ASSERT_EQ(outcome.status, Status::sat);
  EXPECT_EQ(outcome.model.at("C"), 1);
  EXPECT_EQ(outcome.model.at("P"), 2);
  EXPECT_EQ(outcome.model.at("R"), 2);
}

TEST(YicesFrontend, ResetClearsState) {
  YicesFrontend frontend;
  ScriptResult r = frontend.run_script(R"(
    (define-type Sig (subtype (n::nat) (> n 0)))
    (define X::Sig)
    (assert (< X X))
    (check)
    (reset)
  )");
  EXPECT_EQ(r.single_check().status, Status::unsat);
  // After reset the same definitions are accepted again... but types were
  // reset too, so re-run a full fresh script through the same frontend.
  const ScriptResult r2 = frontend.run_script(R"(
    (define-type Sig (subtype (n::nat) (> n 0)))
    (define X::Sig)
    (check)
  )");
  EXPECT_EQ(r2.single_check().status, Status::sat);
}

TEST(YicesFrontend, IgnoresHousekeepingCommands) {
  YicesFrontend frontend;
  const ScriptResult r = frontend.run_script(R"(
    (set-evidence! true)
    (set-verbosity 3)
    (check)
  )");
  EXPECT_EQ(r.single_check().status, Status::sat);
}

TEST(YicesFrontend, RejectsUnknownCommand) {
  YicesFrontend frontend;
  EXPECT_THROW(frontend.run_script("(frobnicate)"), InvalidArgument);
}

TEST(YicesFrontend, RejectsUnknownType) {
  YicesFrontend frontend;
  EXPECT_THROW(frontend.run_script("(define X::Mystery)"), InvalidArgument);
}

TEST(YicesFrontend, NatTypeAllowsZero) {
  YicesFrontend frontend;
  const ScriptResult r = frontend.run_script(R"(
    (define x::nat)
    (assert (< x 1))
    (check)
  )");
  ASSERT_EQ(r.single_check().status, Status::sat);
  EXPECT_EQ(r.single_check().model.at("x"), 0);
}

TEST(YicesFrontend, IntTypeAllowsNegative) {
  YicesFrontend frontend;
  const ScriptResult r = frontend.run_script(R"(
    (define x::int)
    (assert (< x 0))
    (check)
  )");
  ASSERT_EQ(r.single_check().status, Status::sat);
  EXPECT_LT(r.single_check().model.at("x"), 0);
}

TEST(YicesFrontend, SubtypeGeBound) {
  YicesFrontend frontend;
  const ScriptResult r = frontend.run_script(R"(
    (define-type Cost (subtype (n::nat) (>= n 10)))
    (define x::Cost)
    (check)
  )");
  ASSERT_EQ(r.single_check().status, Status::sat);
  EXPECT_GE(r.single_check().model.at("x"), 10);
}

TEST(YicesFrontend, RetractCoreAndRecheckWorkflow) {
  // The iterative repair loop from Section IV-B: remove reported cores one
  // at a time until the configuration is satisfiable.
  YicesFrontend frontend;
  ScriptResult r = frontend.run_script(R"(
    (define-type Sig (subtype (n::nat) (> n 0)))
    (define a::Sig) (define b::Sig) (define c::Sig)
    (assert (< a b)) (assert (< b a))
    (assert (< b c)) (assert (< c b))
    (check)
  )");
  int repairs = 0;
  while (r.checks.back().status == Status::unsat) {
    ASSERT_LT(repairs, 4) << "repair loop failed to terminate";
    for (const AssertionId id : r.checks.back().core_ids) {
      frontend.context().retract(id);
    }
    ++repairs;
    ScriptResult next;
    frontend.execute(parse_sexpr("(check)"), next);
    r = next;
  }
  EXPECT_EQ(r.checks.back().status, Status::sat);
  EXPECT_EQ(repairs, 2);  // two independent 2-cycles
}

// Property-style sweep: random difference systems are checked against a
// brute-force assignment enumerator over a small domain. If brute force
// finds a solution in [1, domain]^n the solver must say sat; if the solver
// says sat its model must satisfy every constraint (checked exactly).
class DifferenceEngineProperty : public ::testing::TestWithParam<int> {};

TEST_P(DifferenceEngineProperty, AgreesWithBruteForce) {
  const int seed = GetParam();
  std::mt19937_64 rng(static_cast<std::uint64_t>(seed));
  constexpr int n_vars = 4;  // excluding the zero variable; brute domain 1..4
  std::uniform_int_distribution<int> var_dist(1, n_vars);
  std::uniform_int_distribution<int> rel_dist(0, 2);
  std::uniform_int_distribution<int> count_dist(2, 8);

  Context ctx;
  for (int v = 1; v <= n_vars; ++v) {
    ctx.declare_variable("v" + std::to_string(v));
  }
  struct Atom {
    int lhs, rhs, rel;  // rel: 0 '<', 1 '<=', 2 '='
  };
  std::vector<Atom> atoms;
  const int count = count_dist(rng);
  for (int i = 0; i < count; ++i) {
    Atom a{var_dist(rng), var_dist(rng), rel_dist(rng)};
    atoms.push_back(a);
    const std::string lhs = "v" + std::to_string(a.lhs);
    const std::string rhs = "v" + std::to_string(a.rhs);
    if (a.rel == 0) {
      ctx.assert_less(lhs, rhs);
    } else if (a.rel == 1) {
      ctx.assert_less_equal(lhs, rhs);
    } else {
      ctx.assert_equal(lhs, rhs);
    }
  }

  const CheckResult r = ctx.check();

  // Brute force over the small domain.
  bool brute_sat = false;
  std::array<int, n_vars + 1> assign{};
  const auto satisfied = [&](const Atom& a) {
    const int l = assign[static_cast<std::size_t>(a.lhs)];
    const int rr = assign[static_cast<std::size_t>(a.rhs)];
    return a.rel == 0 ? l < rr : a.rel == 1 ? l <= rr : l == rr;
  };
  const int total = 1 << (2 * n_vars);  // 4 values -> 2 bits per var
  for (int word = 0; word < total && !brute_sat; ++word) {
    for (int v = 1; v <= n_vars; ++v) {
      assign[static_cast<std::size_t>(v)] = ((word >> (2 * (v - 1))) & 3) + 1;
    }
    brute_sat = std::all_of(atoms.begin(), atoms.end(), satisfied);
  }

  if (brute_sat) {
    EXPECT_EQ(r.status, Status::sat)
        << "brute force found a model but solver reported unsat";
  }
  if (r.status == Status::sat) {
    // Solver model must satisfy all constraints (over unbounded ints).
    for (const Atom& a : atoms) {
      const auto l = r.model.at("v" + std::to_string(a.lhs));
      const auto rr = r.model.at("v" + std::to_string(a.rhs));
      if (a.rel == 0) {
        EXPECT_LT(l, rr);
      } else if (a.rel == 1) {
        EXPECT_LE(l, rr);
      } else {
        EXPECT_EQ(l, rr);
      }
    }
  } else {
    // Unsat: the reported core must itself be unsatisfiable and minimal.
    EXPECT_EQ(ctx.check_subset(r.unsat_core).status, Status::unsat);
    for (std::size_t i = 0; i < r.unsat_core.size(); ++i) {
      std::vector<AssertionId> without;
      for (std::size_t j = 0; j < r.unsat_core.size(); ++j) {
        if (j != i) without.push_back(r.unsat_core[j]);
      }
      EXPECT_EQ(ctx.check_subset(without).status, Status::sat)
          << "core is not minimal";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSystems, DifferenceEngineProperty,
                         ::testing::Range(0, 40));

}  // namespace
}  // namespace fsr::smt
