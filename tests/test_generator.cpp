// Tests for the NDlog generation layer (Section V-B / Table II): the
// value bridge, the registered policy functions' behavioural agreement
// with the source algebra, the rendered #def_func pseudo-code, and the
// GPV program template.
#include <gtest/gtest.h>

#include "algebra/additive_algebra.h"
#include "algebra/standard_policies.h"
#include "fsr/ndlog_generator.h"
#include "fsr/value_bridge.h"
#include "proto/gpv.h"
#include "spp/gadgets.h"
#include "spp/translate.h"
#include "util/error.h"
#include "util/strings.h"

namespace fsr {
namespace {

// --------------------------------------------------------- value bridge --

TEST(ValueBridge, RoundTripsAllShapes) {
  const std::vector<algebra::Value> values = {
      algebra::Value::integer(42),
      algebra::Value::atom("C"),
      algebra::Value::pair(algebra::Value::atom("C"),
                           algebra::Value::integer(3)),
      algebra::Value::pair(
          algebra::Value::pair(algebra::Value::atom("x"),
                               algebra::Value::integer(1)),
          algebra::Value::integer(2)),
  };
  for (const algebra::Value& value : values) {
    EXPECT_EQ(to_algebra(to_ndlog(value)), value) << value.to_string();
  }
}

TEST(ValueBridge, RejectsNonPairLists) {
  EXPECT_THROW(to_algebra(ndlog::Value::list({ndlog::Value::integer(1),
                                              ndlog::Value::integer(2),
                                              ndlog::Value::integer(3)})),
               InvalidArgument);
}

// ----------------------------------------------------- policy functions --

class PolicyFunctions : public ::testing::Test {
 protected:
  void load(const algebra::AlgebraPtr& algebra) {
    algebra_ = algebra;
    registry_ = ndlog::FunctionRegistry::with_builtins();
    register_policy_functions(*algebra_, registry_);
  }
  algebra::AlgebraPtr algebra_;
  ndlog::FunctionRegistry registry_ = ndlog::FunctionRegistry::with_builtins();
};

TEST_F(PolicyFunctions, GaoRexfordAgreesWithAlgebra) {
  load(algebra::gao_rexford_guideline_a());
  const auto atom = [](const char* s) { return ndlog::Value::atom(s); };

  // f_pref: strictly-better pairs only.
  EXPECT_TRUE(registry_.call("f_pref", {atom("C"), atom("P")}).truthy());
  EXPECT_FALSE(registry_.call("f_pref", {atom("P"), atom("C")}).truthy());
  EXPECT_FALSE(registry_.call("f_pref", {atom("P"), atom("R")}).truthy());

  // f_concatSig follows (+)_P.
  EXPECT_EQ(registry_.call("f_concatSig", {atom("c"), atom("C")}), atom("C"));
  EXPECT_EQ(registry_.call("f_concatSig", {atom("p"), atom("R")}), atom("P"));

  // f_import is open for guideline A (no import filters, (+)_P total).
  EXPECT_TRUE(registry_.call("f_import", {atom("c"), atom("P")}).truthy());

  // f_export is called with the SENDER's label: exporting towards a
  // provider means label 'p'; provider/peer routes must be filtered.
  EXPECT_TRUE(registry_.call("f_export", {atom("p"), atom("C")}).truthy());
  EXPECT_FALSE(registry_.call("f_export", {atom("p"), atom("P")}).truthy());
  EXPECT_FALSE(registry_.call("f_export", {atom("r"), atom("R")}).truthy());
  // ...but everything may be exported to a customer (label 'c').
  EXPECT_TRUE(registry_.call("f_export", {atom("c"), atom("P")}).truthy());
}

TEST_F(PolicyFunctions, SppInstanceFoldsPhiIntoImport) {
  load(spp::algebra_from_spp(spp::good_gadget()));
  const auto atom = [](const std::string& s) { return ndlog::Value::atom(s); };
  // Permitted extension: import allowed, concat defined.
  EXPECT_TRUE(registry_
                  .call("f_import", {atom(spp::spp_label("1", "3")),
                                     atom(spp::spp_signature({"3", "0"}))})
                  .truthy());
  // Non-permitted extension: phi folded into the import decision.
  EXPECT_FALSE(registry_
                   .call("f_import", {atom(spp::spp_label("2", "1")),
                                      atom(spp::spp_signature({"3", "0"}))})
                   .truthy());
  // Calling f_concatSig on a filtered combination is a mechanism bug.
  EXPECT_THROW(registry_.call("f_concatSig",
                              {atom(spp::spp_label("2", "1")),
                               atom(spp::spp_signature({"3", "0"}))}),
               InvalidArgument);
}

TEST_F(PolicyFunctions, LexicalProductWorksOnPairs) {
  load(algebra::gao_rexford_with_hop_count());
  const auto pair = [](const char* cls, std::int64_t hops) {
    return ndlog::Value::list(
        {ndlog::Value::atom(cls), ndlog::Value::integer(hops)});
  };
  EXPECT_TRUE(registry_.call("f_pref", {pair("C", 9), pair("P", 1)}).truthy());
  EXPECT_TRUE(registry_.call("f_pref", {pair("C", 1), pair("C", 2)}).truthy());
  EXPECT_FALSE(registry_.call("f_pref", {pair("C", 2), pair("C", 2)}).truthy());
  EXPECT_EQ(registry_.call("f_concatSig", {pair("c", 1), pair("C", 3)}),
            pair("C", 4));
}

TEST_F(PolicyFunctions, AggregateUsesAlgebraPreference) {
  load(algebra::gao_rexford_guideline_a());
  const auto& better = registry_.aggregate("a_pref");
  EXPECT_TRUE(better(ndlog::Value::atom("C"), ndlog::Value::atom("P")));
  EXPECT_FALSE(better(ndlog::Value::atom("P"), ndlog::Value::atom("R")));
}

// ------------------------------------------------------------ rendering --

TEST(RenderPolicyFunctions, HopCountMatchesPaperShape) {
  const std::string rendered =
      render_policy_functions(*algebra::shortest_hop_count());
  EXPECT_NE(rendered.find("#def_func f_concatSig(L,S) { return L+S }"),
            std::string::npos);
  EXPECT_NE(rendered.find("#def_func f_import(L,S) { return true }"),
            std::string::npos);
}

TEST(RenderPolicyFunctions, GaoRexfordListsTableEntries) {
  const std::string rendered =
      render_policy_functions(*algebra::gao_rexford_guideline_a());
  // Generation entries (the paper's f_concatSig if-chain).
  EXPECT_NE(rendered.find("if (L=='c') && (S=='C') return 'C'"),
            std::string::npos);
  EXPECT_NE(rendered.find("if (L=='p') && (S=='R') return 'P'"),
            std::string::npos);
  // Export filter rows (sender-side labels).
  EXPECT_NE(rendered.find("f_export"), std::string::npos);
  // Preference comparison.
  EXPECT_NE(rendered.find("(S1=='C' && S2=='P')"), std::string::npos);
}

TEST(RenderPolicyFunctions, LexicalProductRendersFactors) {
  const std::string rendered =
      render_policy_functions(*algebra::gao_rexford_with_hop_count());
  EXPECT_NE(rendered.find("factor 1: gao-rexford-A"), std::string::npos);
  EXPECT_NE(rendered.find("factor 2: hop-count"), std::string::npos);
}

// ------------------------------------------------------------- template --

TEST(GpvTemplate, ParsesAndHasFourRules) {
  const ndlog::Program program = proto::gpv_program();
  ASSERT_EQ(program.rules.size(), 4u);
  EXPECT_EQ(program.rules[0].label, "gpvRecv");
  EXPECT_EQ(program.rules[1].label, "gpvStore");
  EXPECT_EQ(program.rules[2].label, "gpvSelect");
  EXPECT_EQ(program.rules[3].label, "gpvSend");
  // msg is an event: not materialized.
  EXPECT_EQ(program.find_materialize("msg"), nullptr);
  EXPECT_NE(program.find_materialize("route"), nullptr);
}

TEST(GpvTemplate, RecvGuardsAgainstLoops) {
  EXPECT_NE(proto::gpv_source().find("f_member(P,U)=false"),
            std::string::npos);
}

}  // namespace
}  // namespace fsr
