// Tests for the counterexample-guided repair engine: edit application,
// verified minimal repairs on the classic divergent gadgets (the acceptance
// property: DISAGREE/BAD-class instances get ground-truthed single-edit
// fixes), incremental-vs-from-scratch agreement, determinism, multi-edit
// search, and the campaign-facing summary.
#include <gtest/gtest.h>

#include <set>

#include "fsr/safety_analyzer.h"
#include "repair/edit.h"
#include "repair/repair_engine.h"
#include "spp/gadgets.h"
#include "spp/spp.h"
#include "spp/translate.h"

namespace fsr::repair {
namespace {

// ---------------------------------------------------------------- edits --

TEST(ApplyEdits, DropRemovesPathFromRanking) {
  const spp::SppInstance bad = spp::bad_gadget();
  PolicyEdit drop{EditKind::drop_path, "1", {"1", "2", "0"}, {}};
  const auto edited = apply_edits(bad, {drop});
  ASSERT_TRUE(edited.has_value());
  EXPECT_EQ(edited->permitted("1"),
            (std::vector<spp::Path>{{"1", "0"}}));
  // Other nodes untouched; edges preserved.
  EXPECT_EQ(edited->permitted("2"), bad.permitted("2"));
  EXPECT_TRUE(edited->has_edge("1", "2"));
}

TEST(ApplyEdits, DemoteMovesPathToBottom) {
  const spp::SppInstance bad = spp::bad_gadget();
  PolicyEdit demote{EditKind::demote_path, "1", {"1", "2", "0"}, {}};
  const auto edited = apply_edits(bad, {demote});
  ASSERT_TRUE(edited.has_value());
  EXPECT_EQ(edited->permitted("1"),
            (std::vector<spp::Path>{{"1", "0"}, {"1", "2", "0"}}));
}

TEST(ApplyEdits, InapplicableEditsReturnNullopt) {
  const spp::SppInstance bad = spp::bad_gadget();
  // Dropping a path that is not permitted.
  PolicyEdit ghost{EditKind::drop_path, "1", {"1", "0", "0"}, {}};
  EXPECT_FALSE(apply_edits(bad, {ghost}).has_value());
  // Demoting a path that is already last.
  PolicyEdit last{EditKind::demote_path, "1", {"1", "0"}, {}};
  EXPECT_FALSE(apply_edits(bad, {last}).has_value());
  // Dropping the same path twice.
  PolicyEdit drop{EditKind::drop_path, "1", {"1", "2", "0"}, {}};
  EXPECT_FALSE(apply_edits(bad, {drop, drop}).has_value());
}

TEST(ApplyEdits, RelaxEditsAreConstraintLevelOnly) {
  const spp::SppInstance bad = spp::bad_gadget();
  PolicyEdit relax{EditKind::relax_preference, {}, {"1", "2", "0"},
                   {"1", "0"}};
  const auto edited = apply_edits(bad, {relax});
  ASSERT_TRUE(edited.has_value());  // skipped, instance unchanged
  EXPECT_EQ(edited->permitted("1"), bad.permitted("1"));
}

// ------------------------------------------------------ acceptance cases --

void expect_verified_single_edit_repair(const spp::SppInstance& instance) {
  const RepairEngine engine;
  const RepairReport report = engine.repair(instance, /*seed=*/7);
  EXPECT_FALSE(report.already_safe);
  EXPECT_FALSE(report.initial_core.empty());
  ASSERT_TRUE(report.repaired());
  const RepairCandidate* best = report.best();
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->edits.size(), 1u);
  EXPECT_TRUE(best->solver_safe);
  EXPECT_EQ(best->ground_truth, GroundTruth::verified);
  EXPECT_GE(best->stable_assignments, 1u);
  EXPECT_TRUE(best->spvp_converged);

  // The claimed fix must hold end to end: apply the edits and the analyzer
  // must prove the edited instance safe.
  const auto edited = apply_edits(instance, best->edits);
  ASSERT_TRUE(edited.has_value());
  const SafetyReport safety =
      SafetyAnalyzer().analyze(*spp::algebra_from_spp(*edited));
  EXPECT_EQ(safety.verdict, SafetyVerdict::safe);
}

TEST(RepairEngine, DisagreeGetsVerifiedMinimalRepair) {
  expect_verified_single_edit_repair(spp::disagree_gadget());
}

TEST(RepairEngine, BadGadgetGetsVerifiedMinimalRepair) {
  expect_verified_single_edit_repair(spp::bad_gadget());
}

TEST(RepairEngine, BadGadgetChainGetsRepaired) {
  expect_verified_single_edit_repair(spp::bad_gadget_chain(2));
}

TEST(RepairEngine, Figure3BestRepairMatchesThePaperFix) {
  const RepairEngine engine;
  const RepairReport report = engine.repair(spp::ibgp_figure3_gadget());
  ASSERT_TRUE(report.repaired());
  // The paper's NoGadget fix makes a reflector prefer its own client's
  // egress; the engine's least-destructive ranking surfaces exactly that
  // shape: demote one reflector's remote-client route.
  const RepairCandidate* best = report.best();
  ASSERT_NE(best, nullptr);
  ASSERT_EQ(best->edits.size(), 1u);
  EXPECT_EQ(best->edits[0].kind, EditKind::demote_path);
  const std::set<std::string> reflectors = {"a", "b", "c"};
  EXPECT_TRUE(reflectors.contains(best->edits[0].node));
  EXPECT_EQ(best->ground_truth, GroundTruth::verified);
}

TEST(RepairEngine, SafeInstanceShortCircuits) {
  const RepairEngine engine;
  const RepairReport report = engine.repair(spp::good_gadget());
  EXPECT_TRUE(report.already_safe);
  EXPECT_FALSE(report.repaired());
  EXPECT_TRUE(report.initial_core.empty());
  EXPECT_EQ(report.solver_checks, 1u);
}

TEST(RepairEngine, TwoIndependentDisputesNeedTwoEdits) {
  // Two disjoint DISAGREE pairs sharing the destination: no single edit
  // can fix both cycles, so the minimal repair has exactly two edits.
  spp::SppInstance twin("twin-disagree");
  const auto add_pair = [&](const std::string& u, const std::string& v) {
    twin.add_edge(u, "0");
    twin.add_edge(v, "0");
    twin.add_edge(u, v);
    twin.add_permitted_path({u, v, "0"});
    twin.add_permitted_path({u, "0"});
    twin.add_permitted_path({v, u, "0"});
    twin.add_permitted_path({v, "0"});
  };
  add_pair("1", "2");
  add_pair("3", "4");

  const RepairEngine engine;
  const RepairReport report = engine.repair(twin);
  ASSERT_TRUE(report.repaired());
  EXPECT_EQ(report.best()->edits.size(), 2u);
  EXPECT_EQ(report.best()->ground_truth, GroundTruth::verified);
  EXPECT_GT(report.cores_seen, 1u);  // the second cycle surfaced as a new
                                     // counterexample mid-search
}

TEST(RepairEngine, EditBudgetLimitsSearchDepth) {
  spp::SppInstance twin("twin-disagree");
  const auto add_pair = [&](const std::string& u, const std::string& v) {
    twin.add_edge(u, "0");
    twin.add_edge(v, "0");
    twin.add_edge(u, v);
    twin.add_permitted_path({u, v, "0"});
    twin.add_permitted_path({u, "0"});
    twin.add_permitted_path({v, u, "0"});
    twin.add_permitted_path({v, "0"});
  };
  add_pair("1", "2");
  add_pair("3", "4");

  RepairOptions options;
  options.max_edits = 1;
  const RepairReport report = RepairEngine(options).repair(twin);
  EXPECT_FALSE(report.repaired());
  EXPECT_GT(report.candidates_checked, 0u);
}

TEST(RepairEngine, CheckBudgetIsHonoured) {
  RepairOptions options;
  options.max_checks = 3;
  const RepairReport report =
      RepairEngine(options).repair(spp::bad_gadget());
  EXPECT_LE(report.solver_checks, 3u);
  EXPECT_TRUE(report.budget_exhausted || report.repaired());
}

// --------------------------------------------- determinism and ablation --

TEST(RepairEngine, ReportsAreDeterministic) {
  const RepairEngine engine;
  const std::string one = to_json(engine.repair(spp::bad_gadget(), 42));
  const std::string two = to_json(engine.repair(spp::bad_gadget(), 42));
  EXPECT_EQ(one, two);
}

TEST(RepairEngine, IncrementalAndFromScratchAgree) {
  RepairOptions incremental;
  RepairOptions scratch;
  scratch.use_incremental = false;
  const std::vector<spp::SppInstance> instances = {
      spp::bad_gadget(), spp::disagree_gadget(), spp::ibgp_figure3_gadget(),
      spp::bad_gadget_chain(3)};
  for (const spp::SppInstance& instance : instances) {
    const RepairReport fast = RepairEngine(incremental).repair(instance, 5);
    const RepairReport slow = RepairEngine(scratch).repair(instance, 5);
    EXPECT_EQ(to_json(fast), to_json(slow)) << instance.name();
    EXPECT_EQ(slow.engine_rebuilds, 0u);  // ablation never builds the engine
  }
}

TEST(RepairEngine, RelaxCanBeDisabled) {
  RepairOptions options;
  options.allow_relax = false;
  const RepairReport report =
      RepairEngine(options).repair(spp::disagree_gadget());
  ASSERT_TRUE(report.repaired());
  for (const RepairCandidate& candidate : report.repairs) {
    for (const PolicyEdit& edit : candidate.edits) {
      EXPECT_NE(edit.kind, EditKind::relax_preference);
    }
  }
}

// ----------------------------------------------------- ground-truth modes --

TEST(RepairEngine, GroundTruthBackendsAgreeOnGadgetRepairs) {
  // Same search, same candidates; only the validation oracle differs. On
  // gadget-scale instances both oracles are exact, so the full report —
  // ranked repairs, stable-assignment counts, verdicts — must match
  // except for the recorded mode name.
  RepairOptions sat_options;
  sat_options.ground_truth = groundtruth::Mode::sat_search;
  RepairOptions enum_options;
  enum_options.ground_truth = groundtruth::Mode::enumerate;
  const std::vector<spp::SppInstance> instances = {
      spp::bad_gadget(), spp::disagree_gadget(), spp::ibgp_figure3_gadget(),
      spp::bad_gadget_chain(2)};
  for (const spp::SppInstance& instance : instances) {
    RepairReport via_sat = RepairEngine(sat_options).repair(instance, 5);
    const RepairReport via_enum =
        RepairEngine(enum_options).repair(instance, 5);
    EXPECT_EQ(via_sat.ground_truth_mode, groundtruth::Mode::sat_search);
    via_sat.ground_truth_mode = via_enum.ground_truth_mode;
    EXPECT_EQ(to_json(via_sat), to_json(via_enum)) << instance.name();
  }
}

TEST(RepairEngine, SatSearchVerifiesWhereEnumerationCannot) {
  // bad_gadget_chain(8) has 24 nodes: any candidate's state space (3^24)
  // dwarfs the enumeration cap, so the enumerate oracle must abstain
  // (not_applicable) while sat-search proves the repair outright.
  RepairOptions enum_options;
  enum_options.ground_truth = groundtruth::Mode::enumerate;
  const RepairReport unverified =
      RepairEngine(enum_options).repair(spp::bad_gadget_chain(8), 7);
  ASSERT_TRUE(unverified.repaired());
  EXPECT_EQ(unverified.best()->ground_truth, GroundTruth::not_applicable);

  RepairOptions sat_options;
  sat_options.ground_truth = groundtruth::Mode::sat_search;
  const RepairReport verified =
      RepairEngine(sat_options).repair(spp::bad_gadget_chain(8), 7);
  ASSERT_TRUE(verified.repaired());
  EXPECT_EQ(verified.best()->ground_truth, GroundTruth::verified);
  EXPECT_GE(verified.best()->stable_assignments, 1u);
  // Identical searches: the oracle cannot change which edits are found.
  EXPECT_EQ(verified.best()->describe(), unverified.best()->describe());
}

TEST(RepairSummary, CarriesTheGroundTruthMode) {
  const RepairEngine engine;  // default: sat-search
  const RepairSummary summary =
      summarize(engine.repair(spp::disagree_gadget()));
  EXPECT_EQ(summary.ground_truth_mode, "sat-search");
}

TEST(RepairEngine, IncrementalAndScratchOraclesAgree) {
  // Same search, same candidates; only the oracle PLUMBING differs (one
  // persistent StableSatSession vs a from-scratch encode per candidate).
  // Reports must be byte-identical.
  RepairOptions session_options;
  RepairOptions scratch_options;
  scratch_options.use_incremental_oracle = false;
  const std::vector<spp::SppInstance> instances = {
      spp::bad_gadget(), spp::disagree_gadget(), spp::ibgp_figure3_gadget(),
      spp::bad_gadget_chain(4)};
  for (const spp::SppInstance& instance : instances) {
    const RepairReport incremental =
        RepairEngine(session_options).repair(instance, 5);
    const RepairReport scratch =
        RepairEngine(scratch_options).repair(instance, 5);
    EXPECT_EQ(to_json(incremental), to_json(scratch)) << instance.name();
    // The session really ran (and only on the incremental side).
    EXPECT_GT(incremental.oracle_queries, 0u) << instance.name();
    EXPECT_EQ(scratch.oracle_queries, 0u) << instance.name();
  }
}

TEST(RepairEngine, OracleSessionCachesRankingGroupsAcrossCandidates) {
  const RepairEngine engine;
  const RepairReport report = engine.repair(spp::bad_gadget_chain(4), 5);
  ASSERT_TRUE(report.repaired());
  EXPECT_GT(report.oracle_queries, 1u);
  // Candidates touch the BAD member's three nodes; every untouched node's
  // ranking group is encoded once and reused by every later query.
  EXPECT_GT(report.oracle_cache_hits, 0u);
}

// -------------------------------------------------- oracle budget reasons --

TEST(RepairEngine, EnumerateOracleReportsStateBudgetExhaustion) {
  RepairOptions options;
  options.ground_truth = groundtruth::Mode::enumerate;
  options.ground_truth_max_states = 4;  // even the gadget overflows this
  const RepairReport report = RepairEngine(options).repair(spp::bad_gadget());
  ASSERT_TRUE(report.repaired());
  EXPECT_EQ(report.best()->ground_truth, GroundTruth::not_applicable);
  EXPECT_EQ(report.best()->oracle_budget, groundtruth::BudgetStop::states);
  EXPECT_EQ(summarize(report).oracle_budget, "states");
  EXPECT_NE(to_json(report).find("\"oracle_budget\": \"states\""),
            std::string::npos);
}

TEST(RepairEngine, StarvedSatOracleStillReportsHonestly) {
  // Gadget-scale repaired candidates are decided by unit propagation, so a
  // one-conflict budget cannot make the sat-search oracle LIE — it either
  // still verifies or abstains with the conflicts reason (the session-level
  // conflicts stop itself is pinned down in test_groundtruth.cpp).
  RepairOptions options;
  options.ground_truth_max_conflicts = 1;
  const RepairReport report =
      RepairEngine(options).repair(spp::ibgp_figure3_gadget(), 7);
  ASSERT_TRUE(report.repaired());
  for (const RepairCandidate& candidate : report.repairs) {
    if (candidate.ground_truth == GroundTruth::not_applicable &&
        candidate.edits.front().kind != EditKind::relax_preference) {
      EXPECT_EQ(candidate.oracle_budget, groundtruth::BudgetStop::conflicts)
          << candidate.describe();
    }
    if (candidate.ground_truth == GroundTruth::verified) {
      EXPECT_GE(candidate.stable_assignments, 1u) << candidate.describe();
    }
  }
  // And the full-budget run verifies the same best repair.
  const RepairReport full = RepairEngine().repair(spp::ibgp_figure3_gadget(), 7);
  EXPECT_EQ(report.best()->describe(), full.best()->describe());
}

TEST(RepairEngine, SolutionBoundMarksCountsAsFloors) {
  RepairOptions options;
  options.ground_truth_max_solutions = 1;
  const RepairReport report =
      RepairEngine(options).repair(spp::disagree_gadget(), 7);
  ASSERT_TRUE(report.repaired());
  // Some repaired DISAGREE variants keep two stable states; capping the
  // enumeration at one makes the verdict exact but the count a floor.
  bool saw_solutions_stop = false;
  for (const RepairCandidate& candidate : report.repairs) {
    if (candidate.oracle_budget == groundtruth::BudgetStop::solutions) {
      saw_solutions_stop = true;
      EXPECT_EQ(candidate.ground_truth, GroundTruth::verified);
      EXPECT_EQ(candidate.stable_assignments, 1u);
    }
  }
  EXPECT_TRUE(saw_solutions_stop);
}

// -------------------------------------------------------------- beam search --

TEST(RepairEngine, BeamPruningKeepsTheCoreJustifiedRepair) {
  // A width-1 beam still repairs BAD: depth-1 candidates are evaluated
  // before pruning, and the surviving state is the most core-demanded one.
  RepairOptions options;
  options.beam_width = 1;
  options.max_edits = 2;
  const RepairReport report = RepairEngine(options).repair(spp::bad_gadget());
  ASSERT_TRUE(report.repaired());
  EXPECT_EQ(report.best()->edits.size(), 1u);
}

TEST(RepairEngine, BeamPruningIsCountedNeverSilent) {
  spp::SppInstance twin("twin-disagree");
  const auto add_pair = [&](const std::string& u, const std::string& v) {
    twin.add_edge(u, "0");
    twin.add_edge(v, "0");
    twin.add_edge(u, v);
    twin.add_permitted_path({u, v, "0"});
    twin.add_permitted_path({u, "0"});
    twin.add_permitted_path({v, u, "0"});
    twin.add_permitted_path({v, "0"});
  };
  add_pair("1", "2");
  add_pair("3", "4");

  RepairOptions wide;
  wide.beam_width = 0;  // exhaustive BFS: nothing is ever pruned
  const RepairReport unpruned = RepairEngine(wide).repair(twin, 5);
  EXPECT_EQ(unpruned.beam_pruned, 0u);
  ASSERT_TRUE(unpruned.repaired());

  RepairOptions narrow;
  narrow.beam_width = 2;
  const RepairReport pruned = RepairEngine(narrow).repair(twin, 5);
  EXPECT_GT(pruned.beam_pruned, 0u);
  EXPECT_NE(to_json(pruned).find("\"beam_pruned\": "), std::string::npos);
  // Core-frequency ranking keeps both disputes' edits in play: the
  // two-edit repair is still found through the width-2 beam.
  ASSERT_TRUE(pruned.repaired());
  EXPECT_EQ(pruned.best()->edits.size(), 2u);
  EXPECT_EQ(pruned.best()->ground_truth, GroundTruth::verified);
}

TEST(RepairEngine, ThreeDisputesNeedThreeEditsThroughTheBeam) {
  // Three disjoint DISAGREE pairs: minimal repair = one edit per dispute.
  // max_edits = 3 with the default beam stays tractable and exact.
  spp::SppInstance triple("triple-disagree");
  const auto add_pair = [&](const std::string& u, const std::string& v) {
    triple.add_edge(u, "0");
    triple.add_edge(v, "0");
    triple.add_edge(u, v);
    triple.add_permitted_path({u, v, "0"});
    triple.add_permitted_path({u, "0"});
    triple.add_permitted_path({v, u, "0"});
    triple.add_permitted_path({v, "0"});
  };
  add_pair("1", "2");
  add_pair("3", "4");
  add_pair("5", "6");

  RepairOptions options;
  options.max_edits = 3;
  options.max_checks = 4096;
  const RepairReport report = RepairEngine(options).repair(triple, 5);
  ASSERT_TRUE(report.repaired());
  EXPECT_EQ(report.best()->edits.size(), 3u);
  EXPECT_EQ(report.best()->ground_truth, GroundTruth::verified);
  // The beam actually pruned (the depth-3 frontier outgrows the width),
  // yet a minimal verified repair survived.
  EXPECT_GT(report.beam_pruned, 0u);
}

// ----------------------------------------------------------------- digest --

TEST(RepairSummary, SummarizesTheBestCandidate) {
  const RepairEngine engine;
  const RepairSummary summary =
      summarize(engine.repair(spp::disagree_gadget()));
  EXPECT_TRUE(summary.attempted);
  EXPECT_TRUE(summary.solver_repaired);
  EXPECT_TRUE(summary.verified);
  EXPECT_EQ(summary.edit_count, 1u);
  ASSERT_EQ(summary.edits.size(), 1u);
  EXPECT_GT(summary.candidates_checked, 0u);
  EXPECT_GT(summary.solver_checks, 0u);
  EXPECT_TRUE(summary.error.empty());
}

TEST(RepairReport, RendersJsonAndText) {
  const RepairEngine engine;
  const RepairReport report = engine.repair(spp::bad_gadget());
  const std::string json = to_json(report);
  EXPECT_NE(json.find("\"instance\": \"bad-gadget\""), std::string::npos);
  EXPECT_NE(json.find("\"repaired\": true"), std::string::npos);
  EXPECT_NE(json.find("\"ground_truth\": \"verified\""), std::string::npos);
  EXPECT_EQ(json.find("wall_ms"), std::string::npos);  // deterministic only
  const std::string text = render_text(report);
  EXPECT_NE(text.find("repair report: bad-gadget"), std::string::npos);
  EXPECT_NE(text.find("minimal unsat core"), std::string::npos);
}

}  // namespace
}  // namespace fsr::repair
