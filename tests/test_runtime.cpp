// Tests for the distributed NDlog runtime: fact routing, batched flushing
// with within-batch coalescing, immediate mode, convergence tracking,
// churn injection via apply_delta, and failure injection (link down).
#include <gtest/gtest.h>

#include "ndlog/parser.h"
#include "ndlog/runtime.h"
#include "util/error.h"

namespace fsr::ndlog {
namespace {

Value A(const char* s) { return Value::atom(s); }
Value I(std::int64_t v) { return Value::integer(v); }

// A two-node ping program: anything inserted into `out` at a node is
// shipped to the peer named in the tuple and stored in `seen` there.
const char* k_relay_program = R"(
  materialize(out, keys(1,2,3)).
  materialize(seen, keys(1,2)).
  relay seen(@T,X) :- out(@U,T,X).
)";

struct Harness {
  explicit Harness(RuntimeOptions options,
                   const char* source = k_relay_program)
      : program(parse_program(source)),
        registry(FunctionRegistry::with_builtins()),
        simulator(7),
        runtime(simulator, program, &registry, options) {
    runtime.add_node("a");
    runtime.add_node("b");
    runtime.add_link("a", "b", net::LinkConfig{});
  }
  Program program;
  FunctionRegistry registry;
  net::Simulator simulator;
  Runtime runtime;
};

TEST(Runtime, DeliversRemoteDerivations) {
  RuntimeOptions options;
  options.batch_interval = 100 * net::k_millisecond;
  options.tracked_relation = "seen";
  Harness h(options);
  h.runtime.insert_fact("a", "out", {A("a"), A("b"), I(1)});
  const RunResult result = h.runtime.run(10 * net::k_second);
  EXPECT_TRUE(result.quiesced);
  EXPECT_EQ(h.runtime.engine("b").relation_contents("seen").size(), 1u);
  EXPECT_EQ(result.messages, 1u);
  EXPECT_GT(result.convergence_time, 0);  // delivered after a batch flush
  EXPECT_EQ(result.tracked_changes, 1u);
}

TEST(Runtime, ImmediateModeSkipsBatching) {
  RuntimeOptions options;
  options.batch_interval = 0;
  Harness h(options);
  h.runtime.insert_fact("a", "out", {A("a"), A("b"), I(1)});
  const RunResult result = h.runtime.run(10 * net::k_second);
  EXPECT_TRUE(result.quiesced);
  // Only link latency, no batch wait: delivery within ~10 ms + tx.
  EXPECT_LT(result.end_time, 20 * net::k_millisecond);
}

TEST(Runtime, BatchCoalescesInsertDeletePairs) {
  RuntimeOptions options;
  options.batch_interval = 500 * net::k_millisecond;
  Harness h(options);
  // Insert and retract the same fact within one batch window: the remote
  // deltas cancel and nothing is sent at all.
  h.runtime.insert_fact("a", "out", {A("a"), A("b"), I(1)});
  h.runtime.apply_delta("a", Delta{"out", {A("a"), A("b"), I(1)}, -1});
  const RunResult result = h.runtime.run(10 * net::k_second);
  EXPECT_TRUE(result.quiesced);
  EXPECT_EQ(result.messages, 0u);
  EXPECT_TRUE(h.runtime.engine("b").relation_contents("seen").empty());
}

TEST(Runtime, DeleteAfterFlushPropagatesAsRetraction) {
  RuntimeOptions options;
  options.batch_interval = 100 * net::k_millisecond;
  Harness h(options);
  h.runtime.insert_fact("a", "out", {A("a"), A("b"), I(1)});
  // Let the insert flush, then retract mid-run.
  h.simulator.schedule(net::k_second, [&h]() {
    h.runtime.apply_delta("a", Delta{"out", {A("a"), A("b"), I(1)}, -1});
  });
  const RunResult result = h.runtime.run(10 * net::k_second);
  EXPECT_TRUE(result.quiesced);
  EXPECT_EQ(result.messages, 2u);  // +1 then -1
  EXPECT_TRUE(h.runtime.engine("b").relation_contents("seen").empty());
}

TEST(Runtime, LoadProgramFactsRoutesByLocation) {
  RuntimeOptions options;
  options.batch_interval = 0;
  const char* source = R"(
    materialize(out, keys(1,2,3)).
    materialize(seen, keys(1,2)).
    relay seen(@T,X) :- out(@U,T,X).
    out(@a, b, 42).
    out(@b, a, 7).
  )";
  Harness h(options, source);
  h.runtime.load_program_facts();
  const RunResult result = h.runtime.run(net::k_second);
  EXPECT_TRUE(result.quiesced);
  EXPECT_EQ(h.runtime.engine("a").count("out", {A("a"), A("b"), I(42)}), 1);
  EXPECT_EQ(h.runtime.engine("b").count("out", {A("b"), A("a"), I(7)}), 1);
  EXPECT_EQ(h.runtime.engine("b").relation_contents("seen").size(), 1u);
  EXPECT_EQ(h.runtime.engine("a").relation_contents("seen").size(), 1u);
}

TEST(Runtime, LinkFailureDropsTraffic) {
  RuntimeOptions options;
  options.batch_interval = 100 * net::k_millisecond;
  Harness h(options);
  // Take the link down before anything flushes.
  h.simulator.set_link_up(0, 1, false);
  h.runtime.insert_fact("a", "out", {A("a"), A("b"), I(1)});
  const RunResult result = h.runtime.run(10 * net::k_second);
  EXPECT_TRUE(result.quiesced);
  // The message was "sent" (accounted) but never delivered.
  EXPECT_TRUE(h.runtime.engine("b").relation_contents("seen").empty());
}

TEST(Runtime, UnknownNodeThrows) {
  RuntimeOptions options;
  Harness h(options);
  EXPECT_THROW(h.runtime.insert_fact("ghost", "out", {A("x")}),
               InvalidArgument);
  EXPECT_THROW(h.runtime.engine("ghost"), InvalidArgument);
}

TEST(Runtime, DuplicateNodeThrows) {
  RuntimeOptions options;
  Harness h(options);
  EXPECT_THROW(h.runtime.add_node("a"), InvalidArgument);
}

TEST(Runtime, RemoteDeltaToUnknownTargetThrows) {
  RuntimeOptions options;
  options.batch_interval = 0;
  Harness h(options);
  // `out` names a target node that was never added.
  EXPECT_THROW(
      h.runtime.insert_fact("a", "out", {A("a"), A("ghost"), I(1)}),
      InvalidArgument);
}

TEST(Runtime, BatchDriftStaysWithinInterval) {
  RuntimeOptions options;
  options.batch_interval = 100 * net::k_millisecond;
  options.batch_drift = 0.1;
  options.tracked_relation = "seen";
  Harness h(options);
  h.runtime.insert_fact("a", "out", {A("a"), A("b"), I(1)});
  const RunResult result = h.runtime.run(10 * net::k_second);
  EXPECT_TRUE(result.quiesced);
  // Flush happens within: one interval + phase + drift + delivery.
  EXPECT_LT(result.convergence_time,
            2 * options.batch_interval + 20 * net::k_millisecond +
                static_cast<net::Time>(0.1 * options.batch_interval));
}

TEST(Runtime, TracksOnlyTheConfiguredRelation) {
  RuntimeOptions options;
  options.batch_interval = 0;
  options.tracked_relation = "nothing";
  Harness h(options);
  h.runtime.insert_fact("a", "out", {A("a"), A("b"), I(1)});
  const RunResult result = h.runtime.run(net::k_second);
  EXPECT_TRUE(result.quiesced);
  EXPECT_EQ(result.tracked_changes, 0u);
  EXPECT_EQ(result.convergence_time, 0);
}

}  // namespace
}  // namespace fsr::ndlog
