// Unit tests for the discrete-event network simulator: scheduling order,
// link delay arithmetic (serialisation + latency), FIFO ordering, jitter
// bounds, failure injection, host profiles, and traffic accounting.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/simulator.h"
#include "util/error.h"

namespace fsr::net {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim(1);
  std::vector<int> order;
  sim.schedule(30, [&order]() { order.push_back(3); });
  sim.schedule(10, [&order]() { order.push_back(1); });
  sim.schedule(20, [&order]() { order.push_back(2); });
  EXPECT_TRUE(sim.run(100));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, SimultaneousEventsKeepFifoOrder) {
  Simulator sim(1);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule(10, [&order, i]() { order.push_back(i); });
  }
  EXPECT_TRUE(sim.run(100));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, RunStopsAtDeadline) {
  Simulator sim(1);
  bool ran = false;
  sim.schedule(1000, [&ran]() { ran = true; });
  EXPECT_FALSE(sim.run(500));  // not quiesced
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.clear_pending();
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, RejectsSchedulingIntoThePast) {
  Simulator sim(1);
  EXPECT_THROW(sim.schedule(-1, []() {}), InvalidArgument);
}

TEST(Simulator, MessageDelayIsSerializationPlusLatency) {
  Simulator sim(1);
  const NodeId a = sim.add_node("a");
  const NodeId b = sim.add_node("b");
  LinkConfig config;
  config.bandwidth_mbps = 8.0;  // 1 byte/us
  config.latency = 100;
  sim.add_link(a, b, config);

  Time delivered_at = -1;
  sim.set_receiver([&](NodeId, NodeId, const Message&) {
    delivered_at = sim.now();
  });
  sim.send(a, b, Message{50, {}});  // tx = 50 us
  EXPECT_TRUE(sim.run(10'000));
  EXPECT_EQ(delivered_at, 150);  // 50 tx + 100 latency
}

TEST(Simulator, LinkSerializesBackToBackMessages) {
  Simulator sim(1);
  const NodeId a = sim.add_node("a");
  const NodeId b = sim.add_node("b");
  LinkConfig config;
  config.bandwidth_mbps = 8.0;
  config.latency = 0;
  sim.add_link(a, b, config);

  std::vector<Time> deliveries;
  sim.set_receiver([&](NodeId, NodeId, const Message&) {
    deliveries.push_back(sim.now());
  });
  sim.send(a, b, Message{100, {}});
  sim.send(a, b, Message{100, {}});  // must wait for the first
  EXPECT_TRUE(sim.run(10'000));
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0], 100);
  EXPECT_EQ(deliveries[1], 200);  // serialised, not parallel
}

TEST(Simulator, FifoPerDirectionEvenAcrossSizes) {
  // A small message sent after a large one must not overtake it.
  Simulator sim(1);
  const NodeId a = sim.add_node("a");
  const NodeId b = sim.add_node("b");
  LinkConfig config;
  config.bandwidth_mbps = 8.0;
  config.latency = 50;
  sim.add_link(a, b, config);
  std::vector<std::size_t> sizes;
  sim.set_receiver([&](NodeId, NodeId, const Message& m) {
    sizes.push_back(m.size_bytes);
  });
  sim.send(a, b, Message{1000, {}});
  sim.send(a, b, Message{1, {}});
  EXPECT_TRUE(sim.run(100'000));
  EXPECT_EQ(sizes, (std::vector<std::size_t>{1000, 1}));
}

TEST(Simulator, JitterStaysWithinBounds) {
  Simulator sim(7);
  const NodeId a = sim.add_node("a");
  const NodeId b = sim.add_node("b");
  LinkConfig config;
  config.bandwidth_mbps = 8000.0;  // negligible tx time
  config.latency = 1000;
  config.max_jitter = 500;
  sim.add_link(a, b, config);
  std::vector<Time> deliveries;
  sim.set_receiver([&](NodeId, NodeId, const Message&) {
    deliveries.push_back(sim.now());
  });
  for (int i = 0; i < 50; ++i) sim.send(a, b, Message{1, {}});
  EXPECT_TRUE(sim.run(1'000'000));
  Time lo = deliveries.front();
  Time hi = deliveries.front();
  for (const Time t : deliveries) {
    lo = std::min(lo, t);
    hi = std::max(hi, t);
  }
  EXPECT_GE(lo, 1000);
  EXPECT_LE(hi, 1000 + 500 + 50);  // latency + jitter + tx residue
  EXPECT_GT(hi - lo, 0);           // jitter actually applied
}

TEST(Simulator, DownLinkDropsMessages) {
  Simulator sim(1);
  const NodeId a = sim.add_node("a");
  const NodeId b = sim.add_node("b");
  sim.add_link(a, b, LinkConfig{});
  int received = 0;
  sim.set_receiver([&](NodeId, NodeId, const Message&) { ++received; });
  sim.set_link_up(a, b, false);
  sim.send(a, b, Message{10, {}});
  EXPECT_TRUE(sim.run(1'000'000));
  EXPECT_EQ(received, 0);
  sim.set_link_up(a, b, true);
  sim.send(a, b, Message{10, {}});
  EXPECT_TRUE(sim.run(2'000'000));
  EXPECT_EQ(received, 1);
}

TEST(Simulator, SendWithoutLinkThrows) {
  Simulator sim(1);
  const NodeId a = sim.add_node("a");
  const NodeId b = sim.add_node("b");
  EXPECT_THROW(sim.send(a, b, Message{1, {}}), InvalidArgument);
}

TEST(Simulator, RejectsBadLinks) {
  Simulator sim(1);
  const NodeId a = sim.add_node("a");
  EXPECT_THROW(sim.add_link(a, a, LinkConfig{}), InvalidArgument);
  LinkConfig bad;
  bad.bandwidth_mbps = 0.0;
  const NodeId b = sim.add_node("b");
  EXPECT_THROW(sim.add_link(a, b, bad), InvalidArgument);
}

TEST(Simulator, TestbedProfileDelaysDeliveries) {
  const auto run_once = [](HostProfile profile) {
    Simulator sim(3, profile);
    const NodeId a = sim.add_node("a");
    const NodeId b = sim.add_node("b");
    sim.add_link(a, b, LinkConfig{});
    Time delivered = 0;
    sim.set_receiver(
        [&](NodeId, NodeId, const Message&) { delivered = sim.now(); });
    sim.send(a, b, Message{10, {}});
    sim.run(10 * k_second);
    return delivered;
  };
  EXPECT_GT(run_once(HostProfile::testbed()),
            run_once(HostProfile::simulation()));
}

TEST(TrafficStats, BucketsAndTotals) {
  TrafficStats stats(/*bucket_width=*/1000);
  stats.record_send(0, 100, 500);
  stats.record_send(0, 1500, 300);
  stats.record_send(1, 1700, 200);
  EXPECT_EQ(stats.total_messages(), 3u);
  EXPECT_EQ(stats.total_bytes(), 1000u);
  EXPECT_EQ(stats.node_bytes(0), 800u);
  EXPECT_EQ(stats.node_bytes(1), 200u);
  EXPECT_EQ(stats.node_bytes(9), 0u);
  ASSERT_EQ(stats.bucket_bytes().size(), 2u);
  EXPECT_EQ(stats.bucket_bytes()[0], 500u);
  EXPECT_EQ(stats.bucket_bytes()[1], 500u);
}

TEST(TrafficStats, AverageBandwidthComputation) {
  TrafficStats stats(/*bucket_width=*/k_second);
  stats.record_send(0, 0, 2'000'000);  // 2 MB in a 1 s bucket
  // 2 MB / 4 nodes / 1 s = 0.5 MBps per node.
  EXPECT_DOUBLE_EQ(stats.average_node_bandwidth_mbps(0, 4), 0.5);
  EXPECT_DOUBLE_EQ(stats.average_node_bandwidth_mbps(5, 4), 0.0);
  EXPECT_DOUBLE_EQ(stats.average_node_bandwidth_mbps(0, 0), 0.0);
}

TEST(TrafficStats, BucketBoundaryAndGapAccounting) {
  TrafficStats stats(/*bucket_width=*/1000);
  stats.record_send(0, 999, 10);   // last microsecond of bucket 0
  stats.record_send(0, 1000, 20);  // first microsecond of bucket 1
  stats.record_send(0, 5500, 30);  // skips buckets 2..4
  ASSERT_EQ(stats.bucket_bytes().size(), 6u);
  EXPECT_EQ(stats.bucket_bytes()[0], 10u);
  EXPECT_EQ(stats.bucket_bytes()[1], 20u);
  EXPECT_EQ(stats.bucket_bytes()[2], 0u);  // gap buckets exist and are zero
  EXPECT_EQ(stats.bucket_bytes()[3], 0u);
  EXPECT_EQ(stats.bucket_bytes()[4], 0u);
  EXPECT_EQ(stats.bucket_bytes()[5], 30u);
  EXPECT_EQ(stats.bucket_width(), 1000);
}

TEST(TrafficStats, AverageBandwidthAcrossBucketsAndSenders) {
  TrafficStats stats(/*bucket_width=*/k_second / 2);
  stats.record_send(0, 0, 1'000'000);
  stats.record_send(1, 100, 1'000'000);  // same bucket, different sender
  stats.record_send(2, 600'000, 3'000'000);
  // Bucket 0: 2 MB over 0.5 s across 2 nodes = 2 MBps per node.
  EXPECT_DOUBLE_EQ(stats.average_node_bandwidth_mbps(0, 2), 2.0);
  // Bucket 1: 3 MB over 0.5 s across 3 nodes = 2 MBps per node.
  EXPECT_DOUBLE_EQ(stats.average_node_bandwidth_mbps(1, 3), 2.0);
  EXPECT_EQ(stats.total_bytes(), 5'000'000u);
  EXPECT_EQ(stats.node_bytes(2), 3'000'000u);
}

TEST(Simulator, DuplexDirectionsSerializeIndependently) {
  // The two directions of a duplex link are independent FIFOs: reverse
  // traffic must not queue behind forward traffic.
  Simulator sim(1);
  const NodeId a = sim.add_node("a");
  const NodeId b = sim.add_node("b");
  LinkConfig config;
  config.bandwidth_mbps = 8.0;  // 1 byte/us
  config.latency = 0;
  sim.add_link(a, b, config);
  std::vector<std::pair<NodeId, Time>> deliveries;
  sim.set_receiver([&](NodeId from, NodeId, const Message&) {
    deliveries.emplace_back(from, sim.now());
  });
  sim.send(a, b, Message{100, {}});
  sim.send(b, a, Message{100, {}});
  EXPECT_TRUE(sim.run(10'000));
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0].second, 100);  // both finish at t=100:
  EXPECT_EQ(deliveries[1].second, 100);  // no cross-direction serialisation
}

TEST(Simulator, DeliveryTraceIdenticalUnderIdenticalSeeds) {
  // Stronger than DeterministicGivenSeed: with jittered links, contended
  // FIFOs, and interleaved timers, the full delivery trace (sender, size,
  // time) and the traffic accounting must replay exactly.
  struct Delivery {
    NodeId from;
    std::size_t size;
    Time at;
    bool operator==(const Delivery& o) const {
      return from == o.from && size == o.size && at == o.at;
    }
  };
  const auto run_once = [](std::uint64_t seed) {
    Simulator sim(seed);
    const NodeId a = sim.add_node("a");
    const NodeId b = sim.add_node("b");
    const NodeId c = sim.add_node("c");
    LinkConfig config;
    config.bandwidth_mbps = 8.0;
    config.latency = 500;
    config.max_jitter = 2000;
    sim.add_link(a, b, config);
    sim.add_link(c, b, config);
    std::vector<Delivery> trace;
    sim.set_receiver([&](NodeId from, NodeId, const Message& m) {
      trace.push_back(Delivery{from, m.size_bytes, sim.now()});
    });
    for (int i = 0; i < 20; ++i) {
      const auto size = static_cast<std::size_t>(10 + 37 * i % 200);
      sim.schedule(i * 100, [&sim, a, b, size]() {
        sim.send(a, b, Message{size, {}});
      });
      sim.schedule(i * 100 + 50, [&sim, c, b, size]() {
        sim.send(c, b, Message{size, {}});
      });
    }
    sim.run(10 * k_second);
    return std::make_pair(trace, sim.stats().bucket_bytes());
  };
  const auto first = run_once(42);
  const auto second = run_once(42);
  EXPECT_TRUE(first.first == second.first);
  EXPECT_EQ(first.second, second.second);
  ASSERT_EQ(first.first.size(), 40u);  // nothing lost under contention
}

TEST(Simulator, DeterministicGivenSeed) {
  const auto run_once = [](std::uint64_t seed) {
    Simulator sim(seed);
    const NodeId a = sim.add_node("a");
    const NodeId b = sim.add_node("b");
    LinkConfig config;
    config.max_jitter = 5000;
    sim.add_link(a, b, config);
    std::vector<Time> times;
    sim.set_receiver(
        [&](NodeId, NodeId, const Message&) { times.push_back(sim.now()); });
    for (int i = 0; i < 10; ++i) sim.send(a, b, Message{10, {}});
    sim.run(10 * k_second);
    return times;
  };
  EXPECT_EQ(run_once(5), run_once(5));
  EXPECT_NE(run_once(5), run_once(6));
}

}  // namespace
}  // namespace fsr::net
