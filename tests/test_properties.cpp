// Parameterized property suites over randomized SPP instances, tying the
// three methods together:
//
//   * Theorem 4.1, empirically: whenever the analyzer reports SAFE
//     (strictly monotone), the asynchronous SPVP simulator converges, a
//     stable assignment exists, and the NDlog emulation quiesces.
//   * Contrapositive ground truth: when exhaustive enumeration finds NO
//     stable assignment, the analyzer must NOT report safe.
//   * The dispute-cycle detector agrees exactly with the solver verdict
//     on SPP instances (a cycle exists iff strict monotonicity fails).
//   * Translation fidelity: per-node ranking order is preserved by the
//     generated algebra's compare().
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <random>

#include "fsr/emulation.h"
#include "fsr/safety_analyzer.h"
#include "spp/gadgets.h"
#include "spp/dispute_wheel.h"
#include "spp/spp.h"
#include "spp/translate.h"
#include "util/rng.h"

namespace fsr {
namespace {

/// Random SPP instance: a handful of nodes around one destination with
/// random link structure and randomly ranked simple paths.
spp::SppInstance random_instance(std::uint64_t seed) {
  util::Rng rng(seed);
  const int n = static_cast<int>(rng.uniform_int(2, 5));
  spp::SppInstance instance("random-" + std::to_string(seed));

  std::vector<std::string> nodes;
  for (int i = 1; i <= n; ++i) nodes.push_back(std::to_string(i));

  // Every node may reach the destination directly with probability 0.8;
  // random internal links with probability 0.5.
  std::vector<std::pair<std::string, std::string>> edges;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.8) || i == 0) {
      instance.add_edge(nodes[static_cast<std::size_t>(i)], "0");
    }
    for (int j = i + 1; j < n; ++j) {
      if (rng.chance(0.5)) {
        instance.add_edge(nodes[static_cast<std::size_t>(i)],
                          nodes[static_cast<std::size_t>(j)]);
      }
    }
  }

  // Enumerate simple paths to the destination (depth-limited), then keep
  // a random ranked subset per node.
  std::map<std::string, std::vector<spp::Path>> candidates;
  // Straightforward recursive enumeration, source-first.
  std::function<void(spp::Path)> walk = [&](spp::Path path) {
    const std::string& tip = path.back();
    if (instance.has_edge(tip, "0")) {
      spp::Path complete = path;
      complete.push_back("0");
      candidates[path.front()].push_back(std::move(complete));
    }
    if (path.size() >= 3) return;
    for (const std::string& node : nodes) {
      if (std::find(path.begin(), path.end(), node) != path.end()) continue;
      if (!instance.has_edge(tip, node)) continue;
      spp::Path longer = path;
      longer.push_back(node);
      walk(std::move(longer));
    }
  };
  for (const std::string& node : nodes) walk({node});

  for (auto& [node, paths] : candidates) {
    (void)node;
    std::shuffle(paths.begin(), paths.end(), rng.engine());
    const auto keep = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(paths.size())));
    for (std::size_t i = 0; i < keep; ++i) {
      instance.add_permitted_path(paths[i]);
    }
  }
  return instance;
}

class RandomSppProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomSppProperty, SolverVerdictConsistentWithGroundTruth) {
  const spp::SppInstance instance = random_instance(GetParam());
  if (instance.permitted_path_count() == 0) return;

  const SafetyAnalyzer analyzer;
  const auto report =
      analyzer.analyze(*spp::algebra_from_spp(instance));
  const bool safe = report.verdict == SafetyVerdict::safe;

  // Ground truth 1: stable assignments.
  const auto stable = spp::enumerate_stable_assignments(instance);
  if (stable.empty()) {
    // No stable state -> certainly not safe; strict monotonicity must fail.
    EXPECT_FALSE(safe) << instance.name();
  }

  // Ground truth 2: dynamics. Safe implies convergence of SPVP from
  // multiple activation schedules...
  if (safe) {
    for (std::uint64_t spvp_seed = 1; spvp_seed <= 3; ++spvp_seed) {
      util::Rng rng(GetParam() * 1000 + spvp_seed);
      const auto run = spp::simulate_spvp(instance, rng, 50000);
      EXPECT_TRUE(run.converged) << instance.name();
    }
    // ...and of the generated NDlog implementation.
    EmulationOptions options;
    options.batch_interval = 50 * net::k_millisecond;
    options.max_time = 60 * net::k_second;
    const auto emulated = emulate_spp(instance, options);
    EXPECT_TRUE(emulated.quiesced) << instance.name();
  }
}

TEST_P(RandomSppProperty, DisputeCycleAgreesWithSolver) {
  const spp::SppInstance instance = random_instance(GetParam());
  if (instance.permitted_path_count() == 0) return;

  const SafetyAnalyzer analyzer;
  const auto check = analyzer.check_monotonicity(
      *spp::algebra_from_spp(instance), MonotonicityMode::strict);
  const auto cycle = spp::find_dispute_cycle(instance);
  // SPP constraints are all strict, so: strictly monotone ranking exists
  // iff the strict-preference digraph is acyclic.
  EXPECT_EQ(check.holds, !cycle.has_value()) << instance.name();
}

TEST_P(RandomSppProperty, TranslationPreservesRankingOrder) {
  const spp::SppInstance instance = random_instance(GetParam());
  if (instance.permitted_path_count() == 0) return;
  const auto algebra = spp::algebra_from_spp(instance);
  for (const std::string& node : instance.nodes()) {
    const auto& ranked = instance.permitted(node);
    for (std::size_t i = 0; i < ranked.size(); ++i) {
      for (std::size_t j = i + 1; j < ranked.size(); ++j) {
        EXPECT_EQ(
            algebra->compare(
                algebra::Value::atom(spp::spp_signature(ranked[i])),
                algebra::Value::atom(spp::spp_signature(ranked[j]))),
            algebra::Ordering::better);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSppProperty,
                         ::testing::Range<std::uint64_t>(1, 41));

// ----------------------------------------------- dispute wheel on gadgets

TEST(DisputeWheel, BadGadgetHasCycleGoodGadgetDoesNot) {
  EXPECT_TRUE(spp::find_dispute_cycle(spp::bad_gadget()).has_value());
  EXPECT_FALSE(spp::find_dispute_cycle(spp::good_gadget()).has_value());
}

TEST(DisputeWheel, Figure3CycleRunsThroughReflectors) {
  const auto cycle = spp::find_dispute_cycle(spp::ibgp_figure3_gadget());
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(cycle->size(), 6u);  // matches the solver's minimal core
  for (const auto& edge : *cycle) {
    EXPECT_EQ(edge.provenance.find("rank at d"), std::string::npos);
    EXPECT_EQ(edge.provenance.find("rank at e"), std::string::npos);
    EXPECT_EQ(edge.provenance.find("rank at f"), std::string::npos);
  }
}

TEST(DisputeWheel, CycleEdgesChain) {
  const auto cycle = spp::find_dispute_cycle(spp::disagree_gadget());
  ASSERT_TRUE(cycle.has_value());
  ASSERT_GE(cycle->size(), 2u);
  for (std::size_t i = 0; i < cycle->size(); ++i) {
    const auto& next = (*cycle)[(i + 1) % cycle->size()];
    EXPECT_EQ((*cycle)[i].dispreferred, next.preferred);
  }
}

}  // namespace
}  // namespace fsr
