// Tests for the topology generators: the AS hierarchy (Figure 4 input),
// the Rocketfuel-like iBGP experiment (Figure 5 / Section VI-B input) and
// the HLP domain topology (Figure 6 input). Generators must be
// deterministic in their seeds and reproduce the structural parameters
// the paper's experiments depend on.
#include <gtest/gtest.h>

#include <set>

#include "spp/translate.h"
#include "fsr/safety_analyzer.h"
#include "topology/as_hierarchy.h"
#include "topology/hlp_domains.h"
#include "topology/rocketfuel.h"
#include "util/error.h"

namespace fsr::topology {
namespace {

// -------------------------------------------------------- AS hierarchy --

TEST(AsHierarchy, ChainLengthMatchesRequestedDepth) {
  for (const std::int32_t depth : {3, 6, 10, 16}) {
    AsHierarchyParams params;
    params.depth = depth;
    params.seed = 9;
    const Topology topo =
        generate_as_hierarchy(params, LabelScheme::business);
    EXPECT_EQ(longest_customer_provider_chain(topo), depth);
  }
}

TEST(AsHierarchy, DeterministicPerSeed) {
  AsHierarchyParams params;
  params.depth = 5;
  params.seed = 33;
  const Topology a = generate_as_hierarchy(params, LabelScheme::business);
  const Topology b = generate_as_hierarchy(params, LabelScheme::business);
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  ASSERT_EQ(a.links.size(), b.links.size());
  for (std::size_t i = 0; i < a.links.size(); ++i) {
    EXPECT_EQ(a.links[i].u, b.links[i].u);
    EXPECT_EQ(a.links[i].v, b.links[i].v);
  }
  params.seed = 34;
  const Topology c = generate_as_hierarchy(params, LabelScheme::business);
  const auto link_endpoints = [](const Topology& topo) {
    std::vector<std::pair<std::string, std::string>> out;
    for (const TopoLink& link : topo.links) out.emplace_back(link.u, link.v);
    return out;
  };
  EXPECT_NE(link_endpoints(a), link_endpoints(c));
}

TEST(AsHierarchy, LabelsAreComplementary) {
  AsHierarchyParams params;
  params.depth = 4;
  const Topology topo = generate_as_hierarchy(params, LabelScheme::business);
  for (const TopoLink& link : topo.links) {
    const std::string u_side = link.label_uv.as_atom();
    const std::string v_side = link.label_vu.as_atom();
    if (u_side == "c") {
      EXPECT_EQ(v_side, "p");
    } else if (u_side == "p") {
      EXPECT_EQ(v_side, "c");
    } else {
      EXPECT_EQ(u_side, "r");
      EXPECT_EQ(v_side, "r");
    }
  }
}

TEST(AsHierarchy, HopCountSchemeUsesPairs) {
  AsHierarchyParams params;
  params.depth = 3;
  const Topology topo =
      generate_as_hierarchy(params, LabelScheme::business_hop_count);
  for (const TopoLink& link : topo.links) {
    ASSERT_TRUE(link.label_uv.is_pair());
    EXPECT_EQ(link.label_uv.second().as_integer(), 1);
  }
}

TEST(AsHierarchy, DestinationIsStubAtDeepestLevel) {
  AsHierarchyParams params;
  params.depth = 5;
  const Topology topo = generate_as_hierarchy(params, LabelScheme::business);
  EXPECT_EQ(topo.destination, "dst");
  int incident = 0;
  for (const TopoLink& link : topo.links) {
    if (link.u == "dst" || link.v == "dst") ++incident;
  }
  EXPECT_EQ(incident, 1);  // a stub: single provider
}

TEST(AsHierarchy, RejectsDegenerateParameters) {
  AsHierarchyParams params;
  params.depth = 1;
  EXPECT_THROW(generate_as_hierarchy(params, LabelScheme::business),
               InvalidArgument);
  params.depth = 3;
  params.top_level_count = 0;
  EXPECT_THROW(generate_as_hierarchy(params, LabelScheme::business),
               InvalidArgument);
}

// ---------------------------------------------------------- Rocketfuel --

TEST(Rocketfuel, ReproducesPaperScale) {
  RocketfuelParams params;
  const IbgpExperiment experiment = build_rocketfuel_ibgp(params);
  EXPECT_EQ(experiment.router_count, 87u);
  EXPECT_EQ(experiment.physical_link_count, 322u);
  EXPECT_EQ(experiment.reflectors.size(), 53u);
  EXPECT_EQ(experiment.egresses.size(), 3u);
  // 6 levels: reflector levels 0..4 plus the client level.
  std::set<std::int32_t> levels;
  for (const auto& [node, level] : experiment.level_of) {
    (void)node;
    levels.insert(level);
  }
  EXPECT_EQ(levels.size(), 6u);
}

TEST(Rocketfuel, ConstraintCountsInPaperRange) {
  RocketfuelParams params;
  params.embed_gadget = true;
  const auto experiment = build_rocketfuel_ibgp(params);
  const SafetyAnalyzer analyzer;
  const auto check = analyzer.check_monotonicity(
      *spp::algebra_from_spp(experiment.instance),
      MonotonicityMode::strict);
  // Paper: 292 ranking + 259 strict-monotonicity constraints. The
  // synthetic extraction lands in the same range.
  EXPECT_GT(check.preference_constraint_count, 150u);
  EXPECT_LT(check.preference_constraint_count, 400u);
  EXPECT_GT(check.monotonicity_constraint_count, 150u);
  EXPECT_LT(check.monotonicity_constraint_count, 400u);
}

TEST(Rocketfuel, GadgetMakesItUnsafeWithSixConstraintCore) {
  RocketfuelParams params;
  params.embed_gadget = true;
  const auto experiment = build_rocketfuel_ibgp(params);
  const SafetyAnalyzer analyzer;
  const auto check = analyzer.check_monotonicity(
      *spp::algebra_from_spp(experiment.instance),
      MonotonicityMode::strict);
  ASSERT_FALSE(check.holds);
  EXPECT_EQ(check.unsat_core.size(), 6u);  // the paper's minimal core
  // Every core constraint mentions only planted gadget routers.
  for (const auto& prov : check.unsat_core) {
    bool mentions_gadget = false;
    for (const std::string& router : experiment.gadget_routers) {
      if (prov.description.find(router) != std::string::npos) {
        mentions_gadget = true;
      }
    }
    EXPECT_TRUE(mentions_gadget) << prov.description;
  }
}

TEST(Rocketfuel, CleanConfigurationIsProvablySafe) {
  RocketfuelParams params;
  params.embed_gadget = false;
  const auto experiment = build_rocketfuel_ibgp(params);
  const SafetyAnalyzer analyzer;
  const auto check = analyzer.check_monotonicity(
      *spp::algebra_from_spp(experiment.instance),
      MonotonicityMode::strict);
  EXPECT_TRUE(check.holds);
}

TEST(Rocketfuel, AnalysisWellUnderHundredMilliseconds) {
  RocketfuelParams params;
  params.embed_gadget = true;
  const auto experiment = build_rocketfuel_ibgp(params);
  const SafetyAnalyzer analyzer;
  const auto check = analyzer.check_monotonicity(
      *spp::algebra_from_spp(experiment.instance),
      MonotonicityMode::strict);
  EXPECT_LT(check.solve_time_ms, 100.0);  // the paper's bound
}

TEST(Rocketfuel, HoldsAcrossSeeds) {
  for (const std::uint64_t seed : {2u, 3u, 4u}) {
    RocketfuelParams params;
    params.seed = seed;
    params.embed_gadget = true;
    const auto broken = build_rocketfuel_ibgp(params);
    params.embed_gadget = false;
    const auto clean = build_rocketfuel_ibgp(params);
    const SafetyAnalyzer analyzer;
    EXPECT_FALSE(analyzer
                     .check_monotonicity(
                         *spp::algebra_from_spp(broken.instance),
                         MonotonicityMode::strict)
                     .holds)
        << "seed " << seed;
    EXPECT_TRUE(analyzer
                    .check_monotonicity(
                        *spp::algebra_from_spp(clean.instance),
                        MonotonicityMode::strict)
                    .holds)
        << "seed " << seed;
  }
}

// ---------------------------------------------------------- HLP domains --

TEST(HlpDomains, ReproducesPaperParameters) {
  HlpDomainsParams params;
  const Topology topo = generate_hlp_domains(params);
  // 10 x 20 nodes + the destination.
  EXPECT_EQ(topo.nodes.size(), 201u);
  // Count cross-domain links.
  int cross = 0;
  for (const TopoLink& link : topo.links) {
    if (is_cross_domain(topo, link)) ++cross;
  }
  EXPECT_EQ(cross, 84);
  // Every node has a domain marker.
  for (const std::string& node : topo.nodes) {
    EXPECT_TRUE(topo.domain_of.contains(node)) << node;
  }
}

TEST(HlpDomains, LatenciesFollowLinkType) {
  HlpDomainsParams params;
  const Topology topo = generate_hlp_domains(params);
  for (const TopoLink& link : topo.links) {
    if (is_cross_domain(topo, link)) {
      EXPECT_EQ(link.net_config.latency, params.inter_latency);
    } else {
      EXPECT_EQ(link.net_config.latency, params.intra_latency);
    }
  }
}

TEST(HlpDomains, IntraDomainGraphsAreConnected) {
  HlpDomainsParams params;
  params.domain_count = 4;
  params.nodes_per_domain = 8;
  params.cross_domain_links = 6;
  const Topology topo = generate_hlp_domains(params);
  // Union-find per domain over intra links only.
  std::map<std::string, std::string> parent;
  const std::function<std::string(const std::string&)> find =
      [&](const std::string& x) -> std::string {
    auto it = parent.find(x);
    if (it == parent.end() || it->second == x) return x;
    return it->second = find(it->second);
  };
  for (const TopoLink& link : topo.links) {
    if (!is_cross_domain(topo, link)) {
      parent[find(link.u)] = find(link.v);
    }
  }
  std::map<std::string, std::set<std::string>> components;
  for (const std::string& node : topo.nodes) {
    if (node == topo.destination) continue;
    components[topo.domain_of.at(node)].insert(find(node));
  }
  for (const auto& [domain, roots] : components) {
    EXPECT_EQ(roots.size(), 1u) << domain << " is disconnected";
  }
}

TEST(HlpDomains, RejectsDegenerateParameters) {
  HlpDomainsParams params;
  params.domain_count = 1;
  EXPECT_THROW(generate_hlp_domains(params), InvalidArgument);
}

TEST(TopologyType, LabelledNeighborsBothDirections) {
  Topology topo;
  topo.nodes = {"a", "b"};
  topo.destination = "b";
  topo.links.push_back(TopoLink{"a", "b", algebra::Value::integer(3),
                                algebra::Value::integer(4), {}});
  const auto a_neighbors = topo.labelled_neighbors("a");
  ASSERT_EQ(a_neighbors.size(), 1u);
  EXPECT_EQ(a_neighbors[0].first, "b");
  EXPECT_EQ(a_neighbors[0].second.as_integer(), 3);
  const auto b_neighbors = topo.labelled_neighbors("b");
  ASSERT_EQ(b_neighbors.size(), 1u);
  EXPECT_EQ(b_neighbors[0].second.as_integer(), 4);
}

}  // namespace
}  // namespace fsr::topology
