// Golden repair corpus: the full gadget library's fsr_repair JSON,
// snapshotted under tests/golden/ and diffed byte-exactly on every run —
// any drift in the search, the ranking, the oracle verdicts, or the JSON
// rendering fails loudly here before it reaches a user.
//
// Regenerating after an INTENDED change (review the diff before
// committing!):
//
//   FSR_UPDATE_GOLDEN=1 ./build/test_golden
//
// Runs under the `golden` ctest label: `ctest -L golden`.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "repair/repair_engine.h"
#include "spp/gadgets.h"

#ifndef FSR_GOLDEN_DIR
#error "FSR_GOLDEN_DIR must point at the source tree's tests/golden"
#endif

namespace fsr::repair {
namespace {

constexpr std::uint64_t k_seed = 7;  // drives only the SPVP trials

std::vector<std::pair<std::string, spp::SppInstance>> corpus() {
  std::vector<std::pair<std::string, spp::SppInstance>> out;
  out.emplace_back("good", spp::good_gadget());
  out.emplace_back("bad", spp::bad_gadget());
  out.emplace_back("disagree", spp::disagree_gadget());
  out.emplace_back("ibgp-figure3", spp::ibgp_figure3_gadget());
  out.emplace_back("ibgp-figure3-fixed", spp::ibgp_figure3_fixed());
  for (const int length : {2, 4, 8}) {
    out.emplace_back("bad-chain-" + std::to_string(length),
                     spp::bad_gadget_chain(length));
  }
  return out;
}

TEST(GoldenRepair, ReportsMatchTheSnapshots) {
  const bool update = std::getenv("FSR_UPDATE_GOLDEN") != nullptr;
  const RepairEngine engine;  // default options = the documented behaviour
  for (const auto& [name, instance] : corpus()) {
    SCOPED_TRACE(name);
    const std::string rendered = to_json(engine.repair(instance, k_seed));
    const std::string path =
        std::string(FSR_GOLDEN_DIR) + "/" + name + ".repair.json";
    if (update) {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      ASSERT_TRUE(out.good()) << "cannot write " << path;
      out << rendered;
      continue;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good())
        << "missing golden snapshot " << path
        << " — generate it with FSR_UPDATE_GOLDEN=1 ./build/test_golden";
    std::ostringstream disk;
    disk << in.rdbuf();
    EXPECT_EQ(rendered, disk.str())
        << "repair report drifted from its snapshot; if the change is "
           "intended, regenerate with FSR_UPDATE_GOLDEN=1 ./build/test_golden "
           "and review the diff";
  }
}

TEST(GoldenRepair, SnapshotsAreSeedStable) {
  // The deterministic fields must not depend on the SPVP seed beyond what
  // the report admits: re-running the corpus with the SAME seed twice is
  // byte-identical (the golden diff's precondition).
  const RepairEngine engine;
  for (const auto& [name, instance] : corpus()) {
    EXPECT_EQ(to_json(engine.repair(instance, k_seed)),
              to_json(engine.repair(instance, k_seed)))
        << name;
  }
}

}  // namespace
}  // namespace fsr::repair
