// Campaign-engine scaling: scenarios/sec of a mixed safety workload at
// 1, 2, 4, and hardware-concurrency worker threads. The workload mixes
// the heavy Rocketfuel extractions with gadget and fuzz scenarios, with
// the result cache disabled so every thread count solves identical work.
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "campaign/runner.h"

namespace {

using namespace fsr::campaign;

std::vector<std::unique_ptr<ScenarioSource>> workload() {
  std::vector<std::unique_ptr<ScenarioSource>> sources;
  sources.push_back(gadget_source());
  RocketfuelSweep rocketfuel;
  rocketfuel.seeds = {1, 2, 3, 4};
  sources.push_back(rocketfuel_source(std::move(rocketfuel)));
  RandomSppSweep random_sweep;
  random_sweep.count = 16;
  random_sweep.max_nodes = 7;
  sources.push_back(random_spp_source(random_sweep));
  return sources;
}

}  // namespace

int main() {
  fsr::bench::print_banner("campaign scaling: scenarios/sec by worker count");

  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  std::vector<int> thread_counts = {1, 2, 4};
  if (hardware != 1 && hardware != 2 && hardware != 4) {
    thread_counts.push_back(static_cast<int>(hardware));
  }
  std::printf("hardware concurrency: %u\n\n", hardware);

  fsr::bench::print_row({"threads", "scenarios", "solved", "wall ms",
                         "scenarios/sec", "speedup"});
  double baseline_ms = 0.0;
  for (const int threads : thread_counts) {
    CampaignOptions options;
    options.threads = threads;
    options.use_cache = false;  // identical solve work for every row
    CampaignRunner runner(options);
    const std::vector<Scenario> scenarios = runner.generate(workload());

    const auto start = std::chrono::steady_clock::now();
    const CampaignReport report = runner.run_scenarios(scenarios);
    const auto stop = std::chrono::steady_clock::now();
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    if (baseline_ms == 0.0) baseline_ms = elapsed_ms;

    char wall[32], rate[32], speedup[32];
    std::snprintf(wall, sizeof(wall), "%.1f", elapsed_ms);
    std::snprintf(rate, sizeof(rate), "%.1f",
                  1000.0 * static_cast<double>(report.solved_count) /
                      elapsed_ms);
    std::snprintf(speedup, sizeof(speedup), "%.2fx", baseline_ms / elapsed_ms);
    fsr::bench::print_row({std::to_string(threads),
                           std::to_string(report.results.size()),
                           std::to_string(report.solved_count), wall, rate,
                           speedup});
  }
  return 0;
}
