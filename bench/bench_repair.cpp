// Repair-engine throughput: repairs/sec on the BAD-gadget family and
// random-SPP fuzz instances, plus two ablations at a fixed seed so both
// paths see the exact same work and the speedup isolates the machinery:
//
//   * solver re-checks — incremental Context::check(assumptions) over one
//     difference-engine base vs a full solve per re-check;
//   * oracle validation — ONE persistent StableSatSession answering every
//     candidate through clause-group CNF deltas vs the PR-3 behaviour of
//     re-encoding each edited instance from scratch (the bad-chain family:
//     the instance grows linearly while each candidate's delta stays one
//     node's ranking block).
//
//   bench_repair [--json FILE] [--check THRESHOLDS]
//
// --json writes the aggregate speedups (and per-instance ratios) as flat
// metrics; --check enforces the floors in bench/thresholds.json — the CI
// bench-regression gate.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "campaign/scenario_source.h"
#include "fsr/incremental_session.h"
#include "groundtruth/stable_sat.h"
#include "repair/edit.h"
#include "repair/repair_engine.h"
#include "spp/gadgets.h"
#include "spp/translate.h"

namespace {

constexpr std::uint64_t k_seed = 42;

double time_repairs_ms(const fsr::spp::SppInstance& instance,
                       const fsr::repair::RepairOptions& options, int reps) {
  const fsr::repair::RepairEngine engine(options);
  const auto start = std::chrono::steady_clock::now();
  for (int rep = 0; rep < reps; ++rep) {
    const auto report = engine.repair(instance, k_seed);
    (void)report;
  }
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count() /
         reps;
}

std::string fmt(double value, const char* suffix = "") {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.2f%s", value, suffix);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fsr;

  std::string json_path;
  std::string thresholds_path;
  if (!bench::parse_metric_args(argc, argv, "bench_repair", json_path,
                                thresholds_path)) {
    return 2;
  }

  std::vector<std::pair<std::string, spp::SppInstance>> workload;
  workload.emplace_back("bad", spp::bad_gadget());
  workload.emplace_back("disagree", spp::disagree_gadget());
  workload.emplace_back("ibgp-figure3", spp::ibgp_figure3_gadget());
  for (const int length : {4, 8, 16}) {
    workload.emplace_back("bad-chain-x" + std::to_string(length),
                          spp::bad_gadget_chain(length));
  }
  {
    campaign::RandomSppSweep sweep;
    sweep.extra_edge_probability = 0.5;
    sweep.paths_per_node = 4;
    for (int i = 0; i < 4; ++i) {
      workload.emplace_back(
          "fuzz-" + std::to_string(i),
          campaign::random_spp_instance("fuzz-" + std::to_string(i),
                                        k_seed + static_cast<std::uint64_t>(i),
                                        sweep));
    }
  }

  // ---- full pipeline: counterexample search + ground-truth validation ----
  bench::print_banner("repair throughput: full pipeline (ground truth on)");
  bench::print_row({"instance", "repaired", "checks", "ms/repair",
                    "repairs/sec"},
                   16);
  double total_ms = 0.0;
  std::size_t repaired = 0;
  for (const auto& [name, instance] : workload) {
    repair::RepairOptions options;
    const repair::RepairEngine engine(options);
    const auto report = engine.repair(instance, k_seed);
    const int reps = report.wall_ms > 20.0 ? 3 : 20;
    const double ms = time_repairs_ms(instance, options, reps);
    total_ms += ms;
    if (report.repaired()) ++repaired;
    bench::print_row({name,
                      report.already_safe ? "safe"
                      : report.repaired() ? "yes"
                                          : "no",
                      std::to_string(report.solver_checks), fmt(ms),
                      fmt(1000.0 / ms)},
                     16);
  }
  std::printf("%zu/%zu instances repaired, %.1f repairs/sec aggregate\n",
              repaired, workload.size(),
              1000.0 * static_cast<double>(workload.size()) / total_ms);

  // ---- ablation: incremental vs from-scratch re-checks -------------------
  // The repair loop's hot path: one session, hundreds of near-identical
  // candidate re-checks (the unsat core retracted, varying keep-subsets).
  // Incremental = Context::check(assumptions) over the shared engine base;
  // from-scratch = one full solve per re-check. Same check sequence, same
  // answers; only the solver strategy differs.
  bench::print_banner(
      "repair ablation: incremental vs from-scratch re-checks");
  bench::print_row({"instance", "constraints", "incremental ms", "scratch ms",
                    "speedup", "checks/sec (inc)"},
                   17);
  constexpr int k_recheck_rounds = 500;
  double incremental_total = 0.0;
  double scratch_total = 0.0;
  std::map<std::string, double> metrics;
  for (const auto& [name, instance] : workload) {
    const auto algebra = spp::algebra_from_spp(instance);
    const auto time_rechecks = [&](bool incremental) {
      // Session configured exactly as the repair engine configures it
      // (status-only checks; models skipped where the API allows).
      IncrementalSafetySession::Options options;
      options.incremental = incremental;
      options.extract_models = false;
      IncrementalSafetySession session(algebra->symbolic(),
                                       MonotonicityMode::strict, options);
      const auto initial = session.check({});
      std::vector<std::size_t> core = initial.core;
      if (core.empty()) {
        // Safe instance: exercise the same loop over the first constraints.
        for (std::size_t i = 0; i < 4 && i < session.constraint_count(); ++i) {
          core.push_back(i);
        }
      }
      session.make_variable(core);
      const auto start = std::chrono::steady_clock::now();
      for (int round = 0; round < k_recheck_rounds; ++round) {
        // Candidate shape: all core members but one, cycling.
        std::vector<std::size_t> keep;
        for (std::size_t j = 0; j < core.size(); ++j) {
          if (j != static_cast<std::size_t>(round) % core.size()) {
            keep.push_back(core[j]);
          }
        }
        const auto result = session.check(keep);
        (void)result;
      }
      const auto stop = std::chrono::steady_clock::now();
      return std::chrono::duration<double, std::milli>(stop - start).count();
    };
    const double inc_ms = time_rechecks(true);
    const double scr_ms = time_rechecks(false);
    incremental_total += inc_ms;
    scratch_total += scr_ms;
    metrics["repair_" + name + "_speedup"] = scr_ms / inc_ms;
    IncrementalSafetySession probe = SafetyAnalyzer::open_incremental(
        *algebra, MonotonicityMode::strict);
    bench::print_row({name, std::to_string(probe.constraint_count()),
                      fmt(inc_ms), fmt(scr_ms), fmt(scr_ms / inc_ms, "x"),
                      fmt(1000.0 * k_recheck_rounds / inc_ms)},
                     17);
  }
  std::printf(
      "aggregate: %.2fx speedup over %d re-checks/instance (%.1f ms -> "
      "%.1f ms)\n",
      scratch_total / incremental_total, k_recheck_rounds, scratch_total,
      incremental_total);
  metrics["repair_incremental_speedup"] = scratch_total / incremental_total;

  // ---- oracle ablation: incremental session vs scratch re-encodes --------
  // The candidate-validation workload the repair engine hands its oracle:
  // every single demote/drop edit across the instance (capped), validated
  // (a) through one persistent StableSatSession — construction included,
  // since a repair run pays it exactly once — and (b) by re-encoding each
  // edited instance from scratch, the PR 3 baseline. Verdicts are checked
  // to agree before anything is timed.
  bench::print_banner(
      "oracle ablation: incremental session vs scratch candidate validation");
  bench::print_row({"instance", "candidates", "session ms", "scratch ms",
                    "speedup", "validations/sec (inc)"},
                   18);
  constexpr std::size_t k_max_oracle_candidates = 64;
  constexpr std::size_t k_oracle_solutions = 64;
  double oracle_incremental_total = 0.0;
  double oracle_scratch_total = 0.0;
  for (const int length : {4, 8, 16}) {
    const std::string name = "bad-chain-x" + std::to_string(length);
    const spp::SppInstance instance = spp::bad_gadget_chain(length);

    struct OracleCandidate {
      groundtruth::RankingDelta delta;
      spp::SppInstance edited;
    };
    std::vector<OracleCandidate> candidates;
    for (const std::string& node : instance.nodes()) {
      const std::vector<spp::Path>& ranked = instance.permitted(node);
      for (std::size_t rank = 0;
           rank < ranked.size() &&
           candidates.size() < k_max_oracle_candidates;
           ++rank) {
        for (const repair::EditKind kind :
             {repair::EditKind::demote_path, repair::EditKind::drop_path}) {
          if (kind == repair::EditKind::demote_path &&
              rank + 1 == ranked.size()) {
            continue;  // already last
          }
          const repair::PolicyEdit edit{kind, node, ranked[rank], {}};
          auto edited = repair::apply_edits(instance, {edit});
          if (!edited.has_value()) continue;
          candidates.push_back(OracleCandidate{
              groundtruth::RankingDelta{node, edited->permitted(node)},
              std::move(*edited)});
          if (candidates.size() >= k_max_oracle_candidates) break;
        }
      }
    }

    // Agreement sanity pass (untimed): same verdict and count everywhere.
    {
      fsr::groundtruth::StableSatSession session(instance);
      for (const OracleCandidate& candidate : candidates) {
        const auto incremental =
            session.analyze({candidate.delta}, k_oracle_solutions);
        const auto scratch = fsr::groundtruth::solve_stable_assignments(
            candidate.edited, k_oracle_solutions);
        if (incremental.has_stable != scratch.has_stable ||
            incremental.count != scratch.count) {
          std::fprintf(stderr,
                       "bench_repair: oracle disagreement on %s (%s)\n",
                       name.c_str(), candidate.delta.node.c_str());
          return 1;
        }
      }
    }

    const int reps = length >= 16 ? 3 : 10;
    const auto time_session_ms = [&]() {
      const auto start = std::chrono::steady_clock::now();
      for (int rep = 0; rep < reps; ++rep) {
        fsr::groundtruth::StableSatSession session(instance);
        for (const OracleCandidate& candidate : candidates) {
          const auto result =
              session.analyze({candidate.delta}, k_oracle_solutions);
          (void)result;
        }
      }
      const auto stop = std::chrono::steady_clock::now();
      return std::chrono::duration<double, std::milli>(stop - start).count() /
             reps;
    };
    const auto time_scratch_ms = [&]() {
      const auto start = std::chrono::steady_clock::now();
      for (int rep = 0; rep < reps; ++rep) {
        for (const OracleCandidate& candidate : candidates) {
          const auto result = fsr::groundtruth::solve_stable_assignments(
              candidate.edited, k_oracle_solutions);
          (void)result;
        }
      }
      const auto stop = std::chrono::steady_clock::now();
      return std::chrono::duration<double, std::milli>(stop - start).count() /
             reps;
    };
    const double inc_ms = time_session_ms();
    const double scr_ms = time_scratch_ms();
    oracle_incremental_total += inc_ms;
    oracle_scratch_total += scr_ms;
    metrics["repair_oracle_" + name + "_speedup"] = scr_ms / inc_ms;
    bench::print_row(
        {name, std::to_string(candidates.size()), fmt(inc_ms), fmt(scr_ms),
         fmt(scr_ms / inc_ms, "x"),
         fmt(1000.0 * static_cast<double>(candidates.size()) / inc_ms)},
        18);
  }
  std::printf(
      "aggregate: %.2fx candidate-validation speedup (%.1f ms -> %.1f ms)\n",
      oracle_scratch_total / oracle_incremental_total, oracle_scratch_total,
      oracle_incremental_total);
  metrics["repair_oracle_incremental_speedup"] =
      oracle_scratch_total / oracle_incremental_total;

  if (!json_path.empty() && !bench::write_metrics_file(json_path, metrics)) {
    std::fprintf(stderr, "bench_repair: cannot write '%s'\n",
                 json_path.c_str());
    return 1;
  }
  if (!thresholds_path.empty() &&
      !bench::check_thresholds(metrics, thresholds_path, "repair_")) {
    return 1;
  }
  return 0;
}
