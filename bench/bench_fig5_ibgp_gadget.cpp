// Figure 5 — average per-node bandwidth over time for the iBGP
// configuration with and without the embedded gadget (Section VI-B).
//
// The Rocketfuel-like 87-router AS (53 reflectors in a 6-level
// hierarchy, 3 egress routers) runs GPV under the extracted SPP policy.
// "Gadget" embeds the Figure-3 oscillation at the top-reflector triangle;
// "NoGadget" is the repaired configuration. Expected shape (paper): the
// gadget run shows sustained bandwidth (transient oscillation keeps
// re-advertising) while the fixed run decays to zero quickly; the paper
// reports ~91% lower communication overhead and ~82% lower convergence
// time after the fix.
#include <cstdio>

#include "bench_util.h"
#include "fsr/emulation.h"
#include "topology/rocketfuel.h"
#include "util/strings.h"

namespace {

fsr::EmulationResult run(bool gadget) {
  fsr::topology::RocketfuelParams params;
  params.embed_gadget = gadget;
  const auto experiment = fsr::topology::build_rocketfuel_ibgp(params);

  fsr::EmulationOptions options;
  options.batch_interval = 100 * fsr::net::k_millisecond;
  // The gadget oscillates forever; cut it off after a fixed horizon so
  // both configurations are compared over the same window.
  options.max_time = 30 * fsr::net::k_second;
  options.stats_bucket = 500 * fsr::net::k_millisecond;

  fsr::net::LinkConfig link;  // 100 Mbps, 10 ms with up to 3 ms jitter
  link.max_jitter = 3 * fsr::net::k_millisecond;
  return fsr::emulate_spp(experiment.instance, options, link);
}

}  // namespace

int main() {
  using fsr::bench::print_banner;
  using fsr::bench::print_row;

  const auto gadget = run(true);
  const auto fixed = run(false);

  print_banner("Figure 5: average per-node bandwidth (MBps) over time");
  print_row({"time (s)", "Gadget", "NoGadget"}, 14);
  const std::size_t buckets = std::max(gadget.bandwidth_series_mbps.size(),
                                       fixed.bandwidth_series_mbps.size());
  const double bucket_s =
      static_cast<double>(gadget.stats_bucket) / fsr::net::k_second;
  for (std::size_t i = 0; i < buckets; ++i) {
    const double g = i < gadget.bandwidth_series_mbps.size()
                         ? gadget.bandwidth_series_mbps[i]
                         : 0.0;
    const double f = i < fixed.bandwidth_series_mbps.size()
                         ? fixed.bandwidth_series_mbps[i]
                         : 0.0;
    print_row({fsr::util::format_fixed(static_cast<double>(i) * bucket_s, 1),
               fsr::util::format_fixed(g, 4), fsr::util::format_fixed(f, 4)},
              14);
  }

  print_banner("Summary (Section VI-B)");
  std::printf("Gadget  : quiesced=%s bytes=%llu messages=%llu\n",
              gadget.quiesced ? "yes" : "no (oscillating)",
              static_cast<unsigned long long>(gadget.bytes),
              static_cast<unsigned long long>(gadget.messages));
  std::printf("NoGadget: quiesced=%s bytes=%llu messages=%llu conv=%.2fs\n",
              fixed.quiesced ? "yes" : "no",
              static_cast<unsigned long long>(fixed.bytes),
              static_cast<unsigned long long>(fixed.messages),
              static_cast<double>(fixed.convergence_time) / fsr::net::k_second);
  if (gadget.bytes > 0) {
    const double overhead_drop =
        100.0 * (1.0 - static_cast<double>(fixed.bytes) /
                           static_cast<double>(gadget.bytes));
    std::printf(
        "communication overhead reduction after fix: %.0f%% (paper: ~91%%)\n",
        overhead_drop);
  }
  const double conv_gadget = static_cast<double>(
      gadget.quiesced ? gadget.convergence_time : gadget.end_time);
  if (conv_gadget > 0) {
    const double conv_drop =
        100.0 *
        (1.0 - static_cast<double>(fixed.convergence_time) / conv_gadget);
    std::printf(
        "convergence time reduction after fix:       %.0f%% (paper: ~82%%)\n",
        conv_drop);
  }
  return 0;
}
