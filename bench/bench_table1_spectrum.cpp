// Table I — the spectrum of policy configurations.
//
// Reproduces the paper's Table I qualitatively (topology / preference /
// filter specificity per policy class) and augments it with what FSR
// actually derives for each class: constraint counts, safety verdict, and
// solve time. One row per policy: shortest hop-count, Gao-Rexford
// guideline A, IGP-cost, and an SPP instance (the Figure-3 iBGP gadget).
#include <string>

#include "algebra/additive_algebra.h"
#include "algebra/standard_policies.h"
#include "bench_util.h"
#include "fsr/safety_analyzer.h"
#include "spp/gadgets.h"
#include "spp/translate.h"
#include "util/strings.h"

namespace {

struct Row {
  std::string policy;
  std::string topology;
  std::string preferences;
  std::string filters;
  fsr::algebra::AlgebraPtr algebra;
};

}  // namespace

int main() {
  using fsr::bench::print_banner;
  using fsr::bench::print_row;

  const std::vector<Row> rows = {
      {"Hop-count", "General", "Specific", "None",
       fsr::algebra::shortest_hop_count()},
      {"Gao-Rexford", "General", "Constrained", "Constrained",
       fsr::algebra::gao_rexford_guideline_a()},
      {"IGP-cost", "Specific", "Specific", "Constrained",
       fsr::algebra::igp_cost({1, 5, 10, 20})},
      {"SPP instance", "Specific", "Specific", "Specific",
       fsr::spp::algebra_from_spp(fsr::spp::ibgp_figure3_gadget())},
  };

  print_banner("Table I: spectrum of policy configurations");
  print_row({"Policy", "Topology", "Preferences", "Filters"}, 16);
  for (const Row& row : rows) {
    print_row({row.policy, row.topology, row.preferences, row.filters}, 16);
  }

  print_banner("FSR analysis per policy class");
  print_row({"Policy", "Verdict", "#pref", "#mono", "solve(ms)"}, 16);
  const fsr::SafetyAnalyzer analyzer;
  for (const Row& row : rows) {
    const auto report = analyzer.analyze(*row.algebra);
    const auto& strict = report.checks.front();
    print_row(
        {row.policy,
         report.verdict == fsr::SafetyVerdict::safe ? "safe"
                                                    : "not provably safe",
         std::to_string(strict.preference_constraint_count),
         std::to_string(strict.monotonicity_constraint_count),
         fsr::util::format_fixed(report.total_solve_time_ms(), 2)},
        16);
  }
  return 0;
}
