// Shared helpers for the benchmark harnesses: paper-style table printing.
#ifndef FSR_BENCH_BENCH_UTIL_H
#define FSR_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <string>
#include <vector>

namespace fsr::bench {

inline void print_banner(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

inline void print_row(const std::vector<std::string>& cells, int width = 22) {
  for (const std::string& cell : cells) {
    std::printf("%-*s", width, cell.c_str());
  }
  std::printf("\n");
}

}  // namespace fsr::bench

#endif  // FSR_BENCH_BENCH_UTIL_H
