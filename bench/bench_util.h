// Shared helpers for the benchmark harnesses: paper-style table printing,
// plus the tiny flat-JSON metric I/O the CI bench-regression gate uses
// (benches emit {"metric": value} files; thresholds are read back the same
// way — no JSON library needed for flat numeric objects).
#ifndef FSR_BENCH_BENCH_UTIL_H
#define FSR_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

namespace fsr::bench {

inline void print_banner(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

inline void print_row(const std::vector<std::string>& cells, int width = 22) {
  for (const std::string& cell : cells) {
    std::printf("%-*s", width, cell.c_str());
  }
  std::printf("\n");
}

/// Finds `"key": <number>` in flat JSON text. Good enough for the
/// bench-metric and threshold files this repo exchanges with CI.
inline std::optional<double> read_json_number(const std::string& text,
                                              const std::string& key) {
  const std::string needle = "\"" + key + "\"";
  std::size_t at = text.find(needle);
  if (at == std::string::npos) return std::nullopt;
  at = text.find(':', at + needle.size());
  if (at == std::string::npos) return std::nullopt;
  const char* start = text.c_str() + at + 1;
  char* end = nullptr;
  const double value = std::strtod(start, &end);
  if (end == start) return std::nullopt;
  return value;
}

inline std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

/// Renders metrics as a flat JSON object (sorted keys, %.4f values).
inline std::string metrics_json(const std::map<std::string, double>& metrics) {
  std::string out = "{\n";
  bool first = true;
  for (const auto& [key, value] : metrics) {
    if (!first) out += ",\n";
    first = false;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.4f", value);
    out += "  \"" + key + "\": " + buf;
  }
  out += "\n}\n";
  return out;
}

inline bool write_metrics_file(const std::string& path,
                               const std::map<std::string, double>& metrics) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << metrics_json(metrics);
  return static_cast<bool>(out);
}

/// Enforces every `<metric>_min` entry of the thresholds file whose base
/// metric the bench computed: metric >= floor. `metric_prefix` names this
/// bench's metric family (e.g. "groundtruth_"): any thresholds entry in
/// that family with NO matching emitted metric is a hard failure — a
/// renamed workload or a typo in thresholds.json must break the gate
/// loudly, never disable it silently. Prints a PASS/FAIL line per
/// enforced threshold; returns false when any floor is violated (the CI
/// gate's exit status).
inline bool check_thresholds(const std::map<std::string, double>& metrics,
                             const std::string& thresholds_path,
                             const std::string& metric_prefix) {
  const auto text = read_file(thresholds_path);
  if (!text.has_value()) {
    std::fprintf(stderr, "bench: cannot read thresholds file '%s'\n",
                 thresholds_path.c_str());
    return false;
  }
  bool all_pass = true;
  std::size_t enforced = 0;
  for (const auto& [metric, value] : metrics) {
    const auto floor = read_json_number(*text, metric + "_min");
    if (!floor.has_value()) continue;
    ++enforced;
    const bool pass = value >= *floor;
    all_pass = all_pass && pass;
    std::printf("threshold %-40s %8.2f >= %-8.2f %s\n", metric.c_str(), value,
                *floor, pass ? "PASS" : "FAIL");
  }
  // Orphan scan: every `"<prefix>..._min"` key in the file must have been
  // enforced above.
  const std::string needle = "\"" + metric_prefix;
  for (std::size_t at = text->find(needle); at != std::string::npos;
       at = text->find(needle, at + 1)) {
    const std::size_t end = text->find('"', at + 1);
    if (end == std::string::npos) break;
    const std::string key = text->substr(at + 1, end - at - 1);
    if (key.size() < 4 || key.compare(key.size() - 4, 4, "_min") != 0) {
      continue;
    }
    const std::string base = key.substr(0, key.size() - 4);
    if (!metrics.contains(base)) {
      std::fprintf(stderr,
                   "bench: thresholds entry '%s' matches no emitted metric "
                   "(renamed workload or typo?) — failing the gate\n",
                   key.c_str());
      all_pass = false;
    }
  }
  if (enforced == 0) {
    std::fprintf(stderr,
                 "bench: thresholds file '%s' gates none of this bench's "
                 "metrics\n",
                 thresholds_path.c_str());
    return false;
  }
  return all_pass;
}

/// The shared `[--json FILE] [--check THRESHOLDS]` argv contract of the
/// CI-gated benches. Returns false (after printing usage) on unknown
/// arguments.
inline bool parse_metric_args(int argc, char** argv, const char* bench_name,
                              std::string& json_path,
                              std::string& thresholds_path) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
      thresholds_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--json FILE] [--check THRESHOLDS]\n",
                   bench_name);
      return false;
    }
  }
  return true;
}

}  // namespace fsr::bench

#endif  // FSR_BENCH_BENCH_UTIL_H
