// Solver ablation — google-benchmark microbenchmarks backing the paper's
// "<100 ms" analysis claims and our design choices:
//
//   * satisfiable chains (the shape ranking constraints take),
//   * unsatisfiable rings (worst-case negative-cycle detection),
//   * SPP-derived systems (the Figure-3 instance and the Rocketfuel-like
//     extraction),
//   * unsat-core minimisation on vs off (deletion pass cost).
#include <benchmark/benchmark.h>

#include "fsr/safety_analyzer.h"
#include "smt/context.h"
#include "spp/gadgets.h"
#include "spp/translate.h"
#include "topology/rocketfuel.h"

namespace {

void build_chain(fsr::smt::Context& ctx, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    ctx.declare_variable("v" + std::to_string(i));
  }
  for (std::int64_t i = 0; i + 1 < n; ++i) {
    ctx.assert_less("v" + std::to_string(i), "v" + std::to_string(i + 1));
  }
}

void bm_satisfiable_chain(benchmark::State& state) {
  for (auto _ : state) {
    fsr::smt::Context ctx;
    build_chain(ctx, state.range(0));
    benchmark::DoNotOptimize(ctx.check().status);
  }
}
BENCHMARK(bm_satisfiable_chain)->Arg(64)->Arg(256)->Arg(1024);

void bm_unsat_ring(benchmark::State& state) {
  for (auto _ : state) {
    fsr::smt::Context ctx;
    const std::int64_t n = state.range(0);
    build_chain(ctx, n);
    ctx.assert_less("v" + std::to_string(n - 1), "v0");  // close the ring
    benchmark::DoNotOptimize(ctx.check().status);
  }
}
BENCHMARK(bm_unsat_ring)->Arg(64)->Arg(256)->Arg(1024);

void bm_unsat_ring_no_minimize(benchmark::State& state) {
  for (auto _ : state) {
    fsr::smt::Context ctx;
    ctx.set_minimize_cores(false);
    const std::int64_t n = state.range(0);
    build_chain(ctx, n);
    ctx.assert_less("v" + std::to_string(n - 1), "v0");
    benchmark::DoNotOptimize(ctx.check().status);
  }
}
BENCHMARK(bm_unsat_ring_no_minimize)->Arg(64)->Arg(256)->Arg(1024);

void bm_figure3_analysis(benchmark::State& state) {
  const auto algebra =
      fsr::spp::algebra_from_spp(fsr::spp::ibgp_figure3_gadget());
  const fsr::SafetyAnalyzer analyzer;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analyzer
            .check_monotonicity(*algebra, fsr::MonotonicityMode::strict)
            .holds);
  }
}
BENCHMARK(bm_figure3_analysis);

void bm_rocketfuel_analysis(benchmark::State& state) {
  fsr::topology::RocketfuelParams params;
  params.embed_gadget = true;
  const auto experiment = fsr::topology::build_rocketfuel_ibgp(params);
  const auto algebra = fsr::spp::algebra_from_spp(experiment.instance);
  const fsr::SafetyAnalyzer analyzer;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analyzer
            .check_monotonicity(*algebra, fsr::MonotonicityMode::strict)
            .holds);
  }
}
BENCHMARK(bm_rocketfuel_analysis);

void bm_yices_text_roundtrip(benchmark::State& state) {
  const auto algebra =
      fsr::spp::algebra_from_spp(fsr::spp::ibgp_figure3_gadget());
  fsr::SafetyAnalyzer::Options direct;
  direct.via_textual_pipeline = false;
  const fsr::SafetyAnalyzer textual;  // default: textual pipeline
  const fsr::SafetyAnalyzer api(direct);
  for (auto _ : state) {
    // Measures the overhead of emit -> parse -> solve over the direct API.
    benchmark::DoNotOptimize(
        textual.check_monotonicity(*algebra, fsr::MonotonicityMode::strict)
            .holds);
  }
}
BENCHMARK(bm_yices_text_roundtrip);

}  // namespace

BENCHMARK_MAIN();
