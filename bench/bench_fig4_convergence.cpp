// Figure 4 — convergence time vs the longest customer-provider chain.
//
// The paper's Section VI-A experiment: Gao-Rexford guideline A composed
// with shortest hop-count (provably safe by the composition rule) runs
// over AS hierarchies whose longest customer-provider chain ranges from
// 3 to 16, with routes batched every second. Three series are printed:
//
//   CAIDA-Sim      - simulation profile,
//   CAIDA-Testbed  - deployment profile (per-message host overhead and
//                    scheduling jitter; Section VI-A's testbed stand-in),
//   Theoretic Worst Case - 2*(d+1) advertisement phases (Sami et al.).
//
// Expected shape (paper): both measured series grow roughly linearly with
// the chain length and stay clearly below the worst case, because leaf
// customers are multi-homed and reach providers over peer links without
// using the full depth.
#include <cstdio>

#include "algebra/standard_policies.h"
#include "bench_util.h"
#include "fsr/emulation.h"
#include "topology/as_hierarchy.h"
#include "util/strings.h"

int main() {
  using fsr::bench::print_banner;
  using fsr::bench::print_row;

  const auto policy = fsr::algebra::gao_rexford_with_hop_count();

  print_banner(
      "Figure 4: convergence time (s) vs longest customer-provider chain");
  print_row({"chain", "nodes", "CAIDA-Sim", "CAIDA-Testbed", "WorstCase(2(d+1))"},
            20);

  for (std::int32_t depth = 3; depth <= 16; ++depth) {
    fsr::topology::AsHierarchyParams params;
    params.depth = depth;
    params.seed = 42 + static_cast<std::uint64_t>(depth);
    const auto topo = fsr::topology::generate_as_hierarchy(
        params, fsr::topology::LabelScheme::business_hop_count);
    const std::int32_t chain =
        fsr::topology::longest_customer_provider_chain(topo);

    fsr::EmulationOptions sim_options;
    sim_options.batch_interval = fsr::net::k_second;  // the paper's batching
    sim_options.max_time = 200 * fsr::net::k_second;

    fsr::EmulationOptions testbed_options = sim_options;
    testbed_options.host_profile = fsr::net::HostProfile::testbed();

    const auto sim = fsr::emulate_gpv(*policy, topo, sim_options);
    const auto testbed = fsr::emulate_gpv(*policy, topo, testbed_options);

    if (!sim.quiesced || !testbed.quiesced) {
      std::printf("depth %d: did not quiesce (unexpected for a safe policy)\n",
                  depth);
      continue;
    }
    print_row({std::to_string(chain), std::to_string(topo.nodes.size()),
               fsr::util::format_fixed(
                   static_cast<double>(sim.convergence_time) /
                       fsr::net::k_second, 2),
               fsr::util::format_fixed(
                   static_cast<double>(testbed.convergence_time) /
                       fsr::net::k_second, 2),
               fsr::util::format_fixed(2.0 * (chain + 1), 1)},
              20);
  }

  print_banner("Ablation: batching interval at chain depth 8");
  print_row({"batch (ms)", "convergence (s)", "messages"}, 20);
  fsr::topology::AsHierarchyParams params;
  params.depth = 8;
  params.seed = 50;
  const auto topo = fsr::topology::generate_as_hierarchy(
      params, fsr::topology::LabelScheme::business_hop_count);
  for (const fsr::net::Time batch :
       {fsr::net::Time{0}, 100 * fsr::net::k_millisecond,
        500 * fsr::net::k_millisecond, fsr::net::k_second}) {
    fsr::EmulationOptions options;
    options.batch_interval = batch;
    options.max_time = 200 * fsr::net::k_second;
    const auto result = fsr::emulate_gpv(*policy, topo, options);
    print_row({std::to_string(batch / fsr::net::k_millisecond),
               fsr::util::format_fixed(
                   static_cast<double>(result.convergence_time) /
                       fsr::net::k_second, 2),
               std::to_string(result.messages)},
              20);
  }
  return 0;
}
