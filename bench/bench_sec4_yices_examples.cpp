// Section IV-C — the three worked solver examples, run through the
// textual Yices-style pipeline exactly as the paper presents them:
//
//   1. shortest hop-count          -> sat
//   2. Gao-Rexford guideline A:
//        strict monotonicity       -> unsat (core: a self-loop entry)
//        plain monotonicity        -> sat with C=1, P=2, R=2
//   3. the Figure-3 iBGP instance  -> 18 constraints, unsat, minimal core
//      of 6 constraints touching only the route reflectors a, b, c
#include <cstdio>

#include "algebra/additive_algebra.h"
#include "algebra/standard_policies.h"
#include "bench_util.h"
#include "fsr/safety_analyzer.h"
#include "spp/gadgets.h"
#include "spp/translate.h"
#include "util/strings.h"

namespace {

void show_check(const fsr::MonotonicityReport& report) {
  std::printf("-- emitted script --\n%s", report.yices_script.c_str());
  std::printf("-- solver --\n%s", report.holds ? "sat\n" : "unsat\n");
  if (report.holds) {
    for (const auto& [name, value] : report.model.values) {
      std::printf("(= %s %ld)\n", name.c_str(), static_cast<long>(value));
    }
  } else {
    std::printf("unsat core (%zu constraints):\n", report.unsat_core.size());
    for (const auto& prov : report.unsat_core) {
      std::printf("  %s   [%s]\n", prov.constraint.c_str(),
                  prov.description.c_str());
    }
  }
  std::printf("solve time: %s ms\n",
              fsr::util::format_fixed(report.solve_time_ms, 3).c_str());
}

}  // namespace

int main() {
  using fsr::bench::print_banner;
  const fsr::SafetyAnalyzer analyzer;

  print_banner("Example 1: shortest hop-count (strict monotonicity)");
  show_check(analyzer.check_monotonicity(*fsr::algebra::shortest_hop_count(),
                                         fsr::MonotonicityMode::strict));

  print_banner("Example 2a: Gao-Rexford guideline A (strict monotonicity)");
  const auto gr = fsr::algebra::gao_rexford_guideline_a();
  show_check(
      analyzer.check_monotonicity(*gr, fsr::MonotonicityMode::strict));

  print_banner("Example 2b: Gao-Rexford guideline A (plain monotonicity)");
  show_check(analyzer.check_monotonicity(*gr, fsr::MonotonicityMode::plain));

  print_banner("Example 3: Figure-3 iBGP instance (strict monotonicity)");
  const auto ibgp =
      fsr::spp::algebra_from_spp(fsr::spp::ibgp_figure3_gadget());
  const auto check =
      analyzer.check_monotonicity(*ibgp, fsr::MonotonicityMode::strict);
  std::printf("constraints: %zu rankings + %zu strict monotonicity = %zu\n",
              check.preference_constraint_count,
              check.monotonicity_constraint_count,
              check.preference_constraint_count +
                  check.monotonicity_constraint_count);
  show_check(check);

  print_banner("Example 3 (repaired): reflectors prefer their own clients");
  const auto fixed =
      fsr::spp::algebra_from_spp(fsr::spp::ibgp_figure3_fixed());
  const auto fixed_check =
      analyzer.check_monotonicity(*fixed, fsr::MonotonicityMode::strict);
  std::printf("verdict: %s\n", fixed_check.holds ? "sat (safe)" : "unsat");
  return 0;
}
