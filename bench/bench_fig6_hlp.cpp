// Figure 6 — average per-node bandwidth over time for the path-vector
// baseline (PV), HLP, and HLP with cost hiding (HLP-CH), Section VI-D.
//
// Topology per the paper: 10 domains of 20 nodes (acyclic hierarchies,
// 1-2 providers per node), 84 cross-domain links, 10 ms / 50 ms
// latencies, 100 Mbps everywhere; cost-hiding threshold 5.
//
// Two phases are reported:
//   * initial convergence (no churn): HLP converges a bit faster than PV
//     and moves fewer bytes (fragmented paths are smaller);
//   * a churn phase (egress cost flapping below the hiding threshold):
//     HLP-CH suppresses cross-domain re-advertisement and lands well
//     below plain HLP, which lands below PV — the paper's per-node
//     communication ordering (1.75 / 1.09 / 0.59 MB on their testbed).
#include <algorithm>
#include <cstdio>

#include "algebra/additive_algebra.h"
#include "bench_util.h"
#include "fsr/emulation.h"
#include "topology/hlp_domains.h"
#include "util/strings.h"

namespace {

struct Series {
  std::string name;
  fsr::EmulationResult initial;
  fsr::EmulationResult churn;
};

}  // namespace

int main() {
  using fsr::bench::print_banner;
  using fsr::bench::print_row;

  const fsr::topology::HlpDomainsParams params;
  const auto topo = fsr::topology::generate_hlp_domains(params);
  std::printf("topology: %zu nodes, %zu links (%d domains x %d nodes, %d "
              "cross-domain links)\n",
              topo.nodes.size(), topo.links.size(), params.domain_count,
              params.nodes_per_domain, params.cross_domain_links);

  // Initial convergence is measured in immediate mode so that per-message
  // cost (queueing of the larger PV updates) is visible rather than being
  // quantised away by the batch interval.
  fsr::EmulationOptions initial_options;
  initial_options.batch_interval = 0;
  initial_options.max_time = 60 * fsr::net::k_second;
  initial_options.stats_bucket = 100 * fsr::net::k_millisecond;

  // The churn phase uses the regular batching runtime: cost hiding works
  // by making successive advertisements byte-identical so the batch
  // coalescer cancels them.
  fsr::EmulationOptions churn_options = initial_options;
  churn_options.batch_interval = 100 * fsr::net::k_millisecond;
  churn_options.max_time = 120 * fsr::net::k_second;
  churn_options.churn.events = 20;
  churn_options.churn.start = 10 * fsr::net::k_second;
  churn_options.churn.interval = fsr::net::k_second;
  churn_options.churn.magnitude = 2;  // below the hiding threshold

  const auto pv_algebra =
      fsr::algebra::igp_cost({1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  std::vector<Series> series;
  series.push_back(
      {"PV", fsr::emulate_gpv(*pv_algebra, topo, initial_options),
       fsr::emulate_gpv(*pv_algebra, topo, churn_options)});
  series.push_back({"HLP", fsr::emulate_hlp(topo, 0, initial_options),
                    fsr::emulate_hlp(topo, 0, churn_options)});
  series.push_back({"HLP-CH", fsr::emulate_hlp(topo, 5, initial_options),
                    fsr::emulate_hlp(topo, 5, churn_options)});

  print_banner("Initial convergence (no churn)");
  print_row({"mechanism", "convergence (s)", "messages", "bytes"}, 18);
  for (const Series& s : series) {
    print_row({s.name,
               fsr::util::format_fixed(
                   static_cast<double>(s.initial.convergence_time) /
                       fsr::net::k_second, 3),
               std::to_string(s.initial.messages),
               std::to_string(s.initial.bytes)},
              18);
  }

  print_banner("Churn phase: per-node communication cost");
  print_row({"mechanism", "MB per node", "messages"}, 18);
  for (const Series& s : series) {
    print_row({s.name,
               fsr::util::format_fixed(
                   static_cast<double>(s.churn.bytes) / 1e6 /
                       static_cast<double>(s.churn.node_count), 4),
               std::to_string(s.churn.messages)},
              18);
  }

  print_banner(
      "Figure 6: average per-node bandwidth (MBps) over time (churn run)");
  print_row({"time (s)", "PV", "HLP", "HLP-CH"}, 12);
  std::size_t buckets = 0;
  for (const Series& s : series) {
    buckets = std::max(buckets, s.churn.bandwidth_series_mbps.size());
  }
  // Print the PEAK within each one-second window (advertisement activity
  // is bursty at batch boundaries; sampling single buckets would miss it).
  const double bucket_s =
      static_cast<double>(churn_options.stats_bucket) / fsr::net::k_second;
  for (std::size_t i = 0; i < buckets; i += 10) {
    std::vector<std::string> cells = {
        fsr::util::format_fixed(static_cast<double>(i) * bucket_s, 1)};
    for (const Series& s : series) {
      double peak = 0.0;
      for (std::size_t j = i;
           j < i + 10 && j < s.churn.bandwidth_series_mbps.size(); ++j) {
        peak = std::max(peak, s.churn.bandwidth_series_mbps[j]);
      }
      cells.push_back(fsr::util::format_fixed(peak, 5));
    }
    print_row(cells, 12);
  }

  print_banner("Ablation: cost-hiding threshold sweep (churn phase)");
  print_row({"threshold", "MB per node", "messages"}, 18);
  for (const std::int64_t threshold : {0, 2, 5, 10}) {
    const auto result = fsr::emulate_hlp(topo, threshold, churn_options);
    print_row({std::to_string(threshold),
               fsr::util::format_fixed(
                   static_cast<double>(result.bytes) / 1e6 /
                       static_cast<double>(result.node_count), 4),
               std::to_string(result.messages)},
              18);
  }
  return 0;
}
