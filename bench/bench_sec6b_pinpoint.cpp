// Section VI-B — pinpointing the iBGP configuration error with the
// solver.
//
// The SPP instance extracted from the Rocketfuel-like 87-router AS is
// analyzed for strict monotonicity. Expected (paper): a few hundred
// constraints each for per-node rankings and strict monotonicity (the
// paper reports 292 + 259), `unsat` in well under 100 ms, and a minimal
// unsatisfiable core of 6 constraints that names exactly the routers of
// the embedded gadget — the operator's repair hint. After the repair the
// instance is satisfiable.
#include <cstdio>

#include "bench_util.h"
#include "fsr/safety_analyzer.h"
#include "spp/translate.h"
#include "topology/rocketfuel.h"
#include "util/strings.h"

int main() {
  using fsr::bench::print_banner;

  fsr::topology::RocketfuelParams params;
  params.embed_gadget = true;
  const auto broken = fsr::topology::build_rocketfuel_ibgp(params);
  params.embed_gadget = false;
  const auto repaired = fsr::topology::build_rocketfuel_ibgp(params);

  print_banner("Input: Rocketfuel-like AS with embedded Figure-3 gadget");
  std::printf("routers=%zu physical links=%zu iBGP sessions=%zu\n",
              broken.router_count, broken.physical_link_count,
              broken.session_count);
  std::printf("extracted permitted paths=%zu\n",
              broken.instance.permitted_path_count());

  const fsr::SafetyAnalyzer analyzer;
  const auto algebra = fsr::spp::algebra_from_spp(broken.instance);
  const auto check = analyzer.check_monotonicity(
      *algebra, fsr::MonotonicityMode::strict);

  print_banner("Safety analysis");
  std::printf("constraints: %zu per-node ranking + %zu strict monotonicity "
              "(paper: 292 + 259)\n",
              check.preference_constraint_count,
              check.monotonicity_constraint_count);
  std::printf("solver: %s in %s ms (paper: unsat within 100 ms)\n",
              check.holds ? "sat" : "unsat",
              fsr::util::format_fixed(check.solve_time_ms, 2).c_str());

  if (!check.holds) {
    std::printf("minimal unsat core (%zu constraints; paper: 6):\n",
                check.unsat_core.size());
    for (const auto& prov : check.unsat_core) {
      std::printf("  %s\n", prov.description.c_str());
    }
    std::printf("gadget routers planted by the experiment:");
    for (const auto& router : broken.gadget_routers) {
      std::printf(" %s", router.c_str());
    }
    std::printf("\n");
  }

  print_banner("After repair (reflectors prefer their own clients)");
  const auto repaired_check = analyzer.check_monotonicity(
      *fsr::spp::algebra_from_spp(repaired.instance),
      fsr::MonotonicityMode::strict);
  std::printf("solver: %s in %s ms\n",
              repaired_check.holds ? "sat (provably safe)" : "unsat",
              fsr::util::format_fixed(repaired_check.solve_time_ms, 2).c_str());
  return 0;
}
