// Ground-truth oracle ablation: brute-force enumeration vs the CDCL
// stable-assignment search (src/groundtruth/), over the gadget library,
// the BAD-gadget chain family (x4/x8/x16), and random-SPP fuzz instances
// sized so the enumerator cannot finish.
//
// Enumeration cost is measured as the raw budgeted scan (2^20 states); on
// the larger instances the scan exhausts the budget without a verdict
// (bad-chain-x16 alone has 3^48 candidate states), so its time is a LOWER
// BOUND on true enumeration cost while sat-search's answer is exact — the
// reported speedup floors the real one. Everything runs at a fixed seed;
// the CI bench-regression gate consumes the --json metrics and enforces
// the floors in bench/thresholds.json via --check.
//
//   bench_groundtruth [--json FILE] [--check THRESHOLDS]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "campaign/scenario_source.h"
#include "groundtruth/engine.h"
#include "spp/gadgets.h"

namespace {

constexpr std::uint64_t k_seed = 42;

template <typename Fn>
double time_run_ms(const Fn& run) {
  // One probe run sizes the repetition count; slow cases keep the probe
  // measurement itself so multi-second enumerations run exactly once.
  const auto probe_start = std::chrono::steady_clock::now();
  run();
  const double probe_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - probe_start)
                              .count();
  if (probe_ms > 50.0) return probe_ms;
  const int reps = probe_ms > 5.0 ? 5 : 25;
  const auto start = std::chrono::steady_clock::now();
  for (int rep = 0; rep < reps; ++rep) run();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
             .count() /
         reps;
}

std::string fmt(double value, const char* suffix = "") {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f%s", value, suffix);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fsr;

  std::string json_path;
  std::string thresholds_path;
  if (!bench::parse_metric_args(argc, argv, "bench_groundtruth", json_path,
                                thresholds_path)) {
    return 2;
  }

  std::vector<std::pair<std::string, spp::SppInstance>> workload;
  workload.emplace_back("good", spp::good_gadget());
  workload.emplace_back("bad", spp::bad_gadget());
  workload.emplace_back("disagree", spp::disagree_gadget());
  workload.emplace_back("ibgp-figure3", spp::ibgp_figure3_gadget());
  workload.emplace_back("ibgp-fixed", spp::ibgp_figure3_fixed());
  for (const int length : {4, 8, 16}) {
    workload.emplace_back("bad-chain-x" + std::to_string(length),
                          spp::bad_gadget_chain(length));
  }
  {
    // Fuzz sizes the enumerator cannot finish: ~12 nodes with dense
    // rankings put the state space far beyond the 2^22 budget.
    campaign::RandomSppSweep sweep;
    sweep.min_nodes = 12;
    sweep.max_nodes = 12;
    sweep.extra_edge_probability = 0.4;
    sweep.paths_per_node = 5;
    for (int i = 0; i < 3; ++i) {
      workload.emplace_back(
          "fuzz-large-" + std::to_string(i),
          campaign::random_spp_instance("fuzz-large-" + std::to_string(i),
                                        k_seed + static_cast<std::uint64_t>(i),
                                        sweep));
    }
  }

  groundtruth::Options options;
  options.max_solutions = 8;
  // 2^20 states: enough for bad-chain-x4 (3^12 states) to finish exactly,
  // small enough that the capped scans keep the bench CI-sized. The capped
  // cases' reported speedups remain lower bounds either way.
  options.max_states = std::uint64_t{1} << 20;
  const auto sat_engine =
      groundtruth::make_engine(groundtruth::Mode::sat_search, options);

  bench::print_banner(
      "ground truth: enumerate vs conflict-driven sat-search");
  bench::print_row({"instance", "enum ms", "enum verdict", "sat ms",
                    "sat verdict", "speedup"},
                   16);

  std::map<std::string, double> metrics;
  double enum_total = 0.0;
  double sat_total = 0.0;
  for (const auto& [name, instance] : workload) {
    // Enumeration cost is the raw budgeted scan (spp layer): the engine's
    // enumerate backend pre-rejects oversized instances in O(nodes), which
    // is the right production behaviour but would make the capped cases'
    // lower bound trivial. The scan is what "keep enumerating anyway"
    // actually costs.
    const spp::BudgetedEnumeration scan =
        spp::enumerate_stable_assignments_budgeted(instance,
                                                   options.max_states,
                                                   options.max_solutions);
    const auto sat_result = sat_engine->analyze(instance);
    const double enum_ms = time_run_ms([&] {
      (void)spp::enumerate_stable_assignments_budgeted(
          instance, options.max_states, options.max_solutions);
    });
    const double sat_ms =
        time_run_ms([&] { (void)sat_engine->analyze(instance); });
    enum_total += enum_ms;
    sat_total += sat_ms;
    const double speedup = enum_ms / sat_ms;

    const auto verdict = [](const groundtruth::Result& result) {
      if (!result.decided) return std::string("gave up");
      std::string out = result.has_stable
                            ? "stable x" + std::to_string(result.count)
                            : "no stable";
      if (result.has_stable && !result.count_exact) out += "+";
      return out;
    };
    std::string enum_verdict;
    if (!scan.assignments.empty()) {
      enum_verdict = "stable x" + std::to_string(scan.assignments.size());
      if (!scan.complete) enum_verdict += "+";
    } else {
      enum_verdict = scan.complete ? "no stable" : "gave up";
    }
    bench::print_row({name, fmt(enum_ms), enum_verdict, fmt(sat_ms),
                      verdict(sat_result), fmt(speedup, "x")},
                     16);
    if (sat_result.decided && !scan.complete) {
      std::printf(
          "  ^ enumeration scanned %llu states without a verdict; "
          "sat-search decided exactly in %llu conflicts "
          "(speedup is a lower bound)\n",
          static_cast<unsigned long long>(scan.states_scanned),
          static_cast<unsigned long long>(sat_result.conflicts));
    }
    metrics["groundtruth_" + name + "_speedup"] = speedup;
  }
  const double aggregate = enum_total / sat_total;
  metrics["groundtruth_aggregate_speedup"] = aggregate;
  std::printf("aggregate: %.1fx (enumerate %.1f ms vs sat-search %.1f ms)\n",
              aggregate, enum_total, sat_total);

  if (!json_path.empty() && !bench::write_metrics_file(json_path, metrics)) {
    std::fprintf(stderr, "bench_groundtruth: cannot write '%s'\n",
                 json_path.c_str());
    return 1;
  }
  if (!thresholds_path.empty() &&
      !bench::check_thresholds(metrics, thresholds_path, "groundtruth_")) {
    return 1;
  }
  return 0;
}
