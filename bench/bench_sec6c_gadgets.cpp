// Section VI-C — eBGP gadget analysis and experimentation.
//
// Analysis: GOOD GADGET safe; BAD GADGET and DISAGREE not provably safe
// (DISAGREE is the strict-monotonicity test's known false positive).
// Experimentation:
//   * GOOD gadget chains: convergence time and message count grow with
//     the number of gadgets (route recomputation), but all runs converge;
//   * BAD GADGET: never converges — sustained update traffic until cut
//     off;
//   * DISAGREE sweep: convergence time grows with the percentage of
//     conflicting links (pairs of adjacent nodes preferring to route
//     through each other).
#include <cstdio>

#include "bench_util.h"
#include "fsr/emulation.h"
#include "fsr/safety_analyzer.h"
#include "spp/gadgets.h"
#include "spp/translate.h"
#include "util/strings.h"

namespace {

/// K two-node gadgets attached to one destination; `conflicting` of them
/// are DISAGREE pairs, the rest prefer their direct route.
fsr::spp::SppInstance pair_field(std::int32_t pairs,
                                 std::int32_t conflicting) {
  fsr::spp::SppInstance instance("pair-field");
  for (std::int32_t i = 0; i < pairs; ++i) {
    const std::string a = "a" + std::to_string(i);
    const std::string b = "b" + std::to_string(i);
    instance.add_edge(a, "0");
    instance.add_edge(b, "0");
    instance.add_edge(a, b);
    if (i < conflicting) {  // DISAGREE pair
      instance.add_permitted_path({a, b, "0"});
      instance.add_permitted_path({a, "0"});
      instance.add_permitted_path({b, a, "0"});
      instance.add_permitted_path({b, "0"});
    } else {  // direct-first pair
      instance.add_permitted_path({a, "0"});
      instance.add_permitted_path({a, b, "0"});
      instance.add_permitted_path({b, "0"});
      instance.add_permitted_path({b, a, "0"});
    }
  }
  return instance;
}

fsr::EmulationOptions options_with_cutoff(fsr::net::Time cutoff) {
  fsr::EmulationOptions options;
  options.batch_interval = 100 * fsr::net::k_millisecond;
  options.max_time = cutoff;
  return options;
}

}  // namespace

int main() {
  using fsr::bench::print_banner;
  using fsr::bench::print_row;

  const fsr::SafetyAnalyzer analyzer;
  print_banner("Gadget safety analysis");
  print_row({"gadget", "verdict", "core size"}, 18);
  const std::vector<std::pair<std::string, fsr::spp::SppInstance>> gadgets = {
      {"GOOD GADGET", fsr::spp::good_gadget()},
      {"BAD GADGET", fsr::spp::bad_gadget()},
      {"DISAGREE", fsr::spp::disagree_gadget()},
  };
  for (const auto& [name, instance] : gadgets) {
    const auto report =
        analyzer.analyze(*fsr::spp::algebra_from_spp(instance));
    const auto* core = report.failing_core();
    print_row({name,
               report.verdict == fsr::SafetyVerdict::safe
                   ? "safe"
                   : "not provably safe",
               core ? std::to_string(core->size()) : "-"},
              18);
  }

  print_banner("GOOD gadget chains: cost grows with gadget count");
  print_row({"gadgets", "convergence (s)", "messages", "route changes"}, 18);
  for (const std::int32_t count : {1, 2, 4, 8}) {
    const auto result =
        fsr::emulate_spp(fsr::spp::good_gadget_chain(count),
                         options_with_cutoff(60 * fsr::net::k_second));
    print_row({std::to_string(count),
               fsr::util::format_fixed(
                   static_cast<double>(result.convergence_time) /
                       fsr::net::k_second, 2),
               std::to_string(result.messages),
               std::to_string(result.route_changes)},
              18);
  }

  print_banner("BAD GADGET: sustained oscillation until cut-off");
  for (const fsr::net::Time cutoff :
       {5 * fsr::net::k_second, 10 * fsr::net::k_second,
        20 * fsr::net::k_second}) {
    const auto result =
        fsr::emulate_spp(fsr::spp::bad_gadget(), options_with_cutoff(cutoff));
    std::printf(
        "cut-off %2lds: quiesced=%s messages=%llu (rate %.0f msg/s, steady)\n",
        static_cast<long>(cutoff / fsr::net::k_second),
        result.quiesced ? "yes" : "no",
        static_cast<unsigned long long>(result.messages),
        static_cast<double>(result.messages) /
            (static_cast<double>(cutoff) / fsr::net::k_second));
  }

  print_banner("DISAGREE: convergence vs percentage of conflicting links");
  print_row({"conflicting %", "mean convergence (s)", "mean messages"}, 22);
  constexpr std::int32_t k_pairs = 10;
  constexpr std::uint64_t k_seeds = 10;
  // Conflicting pairs settle only when timing asymmetry separates the two
  // nodes: links carry a few ms of jitter (as in the paper's testbed) and
  // advertisement timers drift by up to 10% of the batch interval. Results
  // are averaged over seeds because individual disputes settle after a
  // geometric number of rounds.
  fsr::net::LinkConfig jittery;
  jittery.max_jitter = 3 * fsr::net::k_millisecond;
  for (const std::int32_t conflicting : {0, 2, 4, 6, 8, 10}) {
    double total_convergence = 0.0;
    double total_messages = 0.0;
    std::int32_t failures = 0;
    for (std::uint64_t seed = 1; seed <= k_seeds; ++seed) {
      auto sweep_options = options_with_cutoff(120 * fsr::net::k_second);
      sweep_options.batch_drift = 0.1;
      sweep_options.seed = seed;
      const auto result = fsr::emulate_spp(pair_field(k_pairs, conflicting),
                                           sweep_options, jittery);
      if (!result.quiesced) {
        ++failures;
        continue;
      }
      total_convergence +=
          static_cast<double>(result.convergence_time) / fsr::net::k_second;
      total_messages += static_cast<double>(result.messages);
    }
    const auto runs = static_cast<double>(k_seeds - failures);
    print_row(
        {std::to_string(conflicting * 100 / k_pairs),
         runs > 0 ? fsr::util::format_fixed(total_convergence / runs, 2)
                  : std::string("-"),
         runs > 0 ? fsr::util::format_fixed(total_messages / runs, 0)
                  : std::string("-")},
        22);
  }
  return 0;
}
