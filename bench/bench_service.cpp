// AnalysisService throughput: requests/sec for cold vs warm-session
// request streams on the gadget library.
//
// The stream interleaves ground-truth and repair requests over the gadget
// library (the BAD-chain family included, where the base CNF/SMT encodings
// dominate per-request cost). "Cold" runs the stream through a service
// with session reuse disabled (session_cache_capacity 0): every request
// re-encodes its instance from scratch, the pre-façade behaviour. "Warm"
// runs the same stream through a service whose workers keep persistent
// sessions keyed by instance fingerprint, primed by one untimed pass — so
// the measured passes hit warm solver state (cached CNF ranking groups,
// learned clauses, encoded SMT bases) on every request.
//
// Responses are byte-compared (ids zeroed) before anything is timed: warm
// serving must never change deterministic bytes, and this bench refuses to
// publish a speedup for answers that drifted.
//
//   bench_service [--json FILE] [--check THRESHOLDS]
//
// --json writes the speedup/rps metrics; --check enforces
// service_warm_speedup_min from bench/thresholds.json — the CI gate for
// the warm-session contract.
#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "api/service.h"
#include "api/wire.h"
#include "bench_util.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "spp/gadgets.h"

namespace {

constexpr std::uint64_t k_seed = 42;

const std::vector<const char*>& gadget_names() {
  static const std::vector<const char*> names = {
      "bad",         "disagree",    "ibgp-figure3",
      "bad-chain-4", "bad-chain-8", "bad-chain-16"};
  return names;
}

/// The gated workload: repeated exact queries over a hot instance set —
/// the "many scenarios, heavy traffic" shape warm sessions exist for. A
/// cold service pays the CNF encode per request; a warm one only solves.
std::vector<fsr::api::Request> query_stream() {
  std::vector<fsr::api::Request> requests;
  for (const char* name : gadget_names()) {
    auto instance = std::make_shared<const fsr::spp::SppInstance>(
        fsr::spp::gadget_by_name(name));
    requests.push_back(fsr::api::GroundTruthRequest{instance, {}});
  }
  return requests;
}

/// The informational workload: full repairs, where the candidate search
/// dominates and warm sessions only shave the encode/base costs.
std::vector<fsr::api::Request> repair_stream() {
  std::vector<fsr::api::Request> requests;
  for (const char* name : gadget_names()) {
    requests.push_back(fsr::api::RepairRequest{
        std::make_shared<const fsr::spp::SppInstance>(
            fsr::spp::gadget_by_name(name)),
        k_seed});
  }
  return requests;
}

std::vector<std::string> response_bytes(
    std::vector<fsr::api::Response> responses) {
  std::vector<std::string> bytes;
  bytes.reserve(responses.size());
  for (fsr::api::Response& response : responses) {
    response.id = 0;  // submission order, not content
    bytes.push_back(fsr::api::wire::render_response(response));
  }
  return bytes;
}

double time_passes_ms(fsr::api::AnalysisService& service,
                      const std::vector<fsr::api::Request>& stream,
                      int passes) {
  const auto start = std::chrono::steady_clock::now();
  for (int pass = 0; pass < passes; ++pass) {
    const auto responses = service.run(stream);
    (void)responses;
  }
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count() /
         passes;
}

std::string fmt(double value, const char* suffix = "") {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.2f%s", value, suffix);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fsr::api;
  namespace bench = fsr::bench;

  std::string json_path;
  std::string thresholds_path;
  if (!bench::parse_metric_args(argc, argv, "bench_service", json_path,
                                thresholds_path)) {
    return 2;
  }

  std::map<std::string, double> metrics;

  ServiceOptions cold_options;
  cold_options.session_cache_capacity = 0;  // reuse disabled: the ablation
  ServiceOptions warm_options;
  warm_options.session_cache_capacity = 16;

  constexpr int k_passes = 5;
  const auto measure_stream =
      [&](const char* label, const std::vector<Request>& stream,
          const char* metric_prefix) {
        // Byte-agreement sanity pass (untimed): warm serving must never
        // change deterministic bytes.
        {
          AnalysisService cold(cold_options);
          AnalysisService warm(warm_options);
          warm.run(stream);  // prime
          if (response_bytes(cold.run(stream)) !=
              response_bytes(warm.run(stream))) {
            std::fprintf(
                stderr,
                "bench_service: warm responses drifted from cold bytes (%s)\n",
                label);
            std::exit(1);
          }
        }
        AnalysisService cold(cold_options);
        const double cold_ms = time_passes_ms(cold, stream, k_passes);
        AnalysisService warm(warm_options);
        warm.run(stream);  // prime the session cache (untimed cold pass)
        const double warm_ms = time_passes_ms(warm, stream, k_passes);
        const double requests = static_cast<double>(stream.size());
        bench::print_row({label, std::to_string(stream.size()), fmt(cold_ms),
                          fmt(warm_ms), fmt(cold_ms / warm_ms, "x"),
                          fmt(1000.0 * requests / warm_ms)},
                         17);
        metrics[std::string(metric_prefix) + "cold_requests_per_sec"] =
            1000.0 * requests / cold_ms;
        metrics[std::string(metric_prefix) + "warm_requests_per_sec"] =
            1000.0 * requests / warm_ms;
        return cold_ms / warm_ms;
      };

  // Solver-effort provenance: registry deltas around the measured streams,
  // recorded alongside the timing metrics so a perf regression in
  // BENCH_pr.json can be read against "did the solver do more work" (an
  // algorithmic change) or not (a constant-factor one).
  const std::vector<std::string> effort_counters = {
      "sat.queries",           "sat.conflicts", "sat.decisions",
      "sat.propagations",      "smt.checks",    "repair.solver_checks"};
  const auto effort_values = [&effort_counters]() {
    std::vector<std::uint64_t> values;
    for (const std::string& name : effort_counters) {
      values.push_back(fsr::obs::registry().counter(name).value());
    }
    return values;
  };
  const std::vector<std::uint64_t> effort_floor = effort_values();

  bench::print_banner(
      "service throughput: cold vs warm-session request streams");
  bench::print_row({"stream", "requests", "cold ms", "warm ms", "speedup",
                    "req/sec (warm)"},
                   17);
  // The gated metric: the hot-query workload the warm-session design
  // exists for (repeated ground-truth requests over a fixed instance set).
  metrics["service_warm_speedup"] =
      measure_stream("ground-truth", query_stream(), "service_");
  // Informational: full repairs re-run the candidate search either way, so
  // warmth only shaves the encode/base construction.
  metrics["service_repair_warm_speedup"] =
      measure_stream("repair", repair_stream(), "service_repair_");

  const std::vector<std::uint64_t> effort_ceiling = effort_values();
  for (std::size_t i = 0; i < effort_counters.size(); ++i) {
    std::string key = "service_effort_" + effort_counters[i];
    for (char& c : key) {
      if (c == '.') c = '_';
    }
    metrics[key] =
        static_cast<double>(effort_ceiling[i] - effort_floor[i]);
  }

  // ---- tracing overhead (informational, not gated) -----------------------
  // The obs contract: a span is one relaxed atomic load when no tracer is
  // installed, and recording stays off the deterministic path when one is.
  // Measured on the warm hot-query stream, where per-request work is
  // smallest and any fixed overhead is most visible.
  {
    AnalysisService service(warm_options);
    service.run(query_stream());  // prime
    const double off_ms = time_passes_ms(service, query_stream(), k_passes);
    fsr::obs::Tracer tracer;
    fsr::obs::install_tracer(&tracer);
    const double on_ms = time_passes_ms(service, query_stream(), k_passes);
    fsr::obs::install_tracer(nullptr);
    const double overhead_pct = 100.0 * (on_ms / off_ms - 1.0);
    bench::print_banner("tracing overhead: warm hot-query stream");
    bench::print_row({"trace off ms", "trace on ms", "overhead"}, 14);
    bench::print_row({fmt(off_ms), fmt(on_ms), fmt(overhead_pct, "%")}, 14);
    metrics["service_trace_overhead_pct"] = overhead_pct;
  }

  // ---- diagnostics overhead (informational, not gated) -------------------
  // The full production-diagnostics stack at once: flight recorder
  // installed, OpenMetrics file writer scraping every 100 ms, and the
  // slow-request watchdog armed. Same contract as tracing: per-request cost
  // is a handful of relaxed atomics plus one lock-free ring write, so the
  // overhead on the warm hot-query stream should be noise.
  {
    AnalysisService service(warm_options);
    service.run(query_stream());  // prime
    const double off_ms = time_passes_ms(service, query_stream(), k_passes);
    fsr::obs::FlightRecorder recorder(1024);
    fsr::obs::install_recorder(&recorder);
    const std::string metrics_path =
        json_path.empty() ? "bench_service_metrics.prom.tmp-probe"
                          : json_path + ".metrics.prom";
    double on_ms = 0.0;
    {
      fsr::obs::MetricsFileWriter::Options writer_options;
      writer_options.path = metrics_path;
      writer_options.interval = std::chrono::milliseconds(100);
      fsr::obs::MetricsFileWriter writer(writer_options);
      on_ms = time_passes_ms(service, query_stream(), k_passes);
    }
    fsr::obs::install_recorder(nullptr);
    std::remove(metrics_path.c_str());
    const double overhead_pct = 100.0 * (on_ms / off_ms - 1.0);
    bench::print_banner(
        "diagnostics overhead: recorder + metrics writer, warm hot-query "
        "stream");
    bench::print_row({"diag off ms", "diag on ms", "overhead"}, 14);
    bench::print_row({fmt(off_ms), fmt(on_ms), fmt(overhead_pct, "%")}, 14);
    metrics["service_diagnostics_overhead_pct"] = overhead_pct;
    metrics["service_recorder_events"] =
        static_cast<double>(recorder.recorded());
  }

  // ---- pool scaling (informational, not gated) ---------------------------
  bench::print_banner("service throughput: worker-pool scaling (warm)");
  bench::print_row({"threads", "ms/stream", "req/sec"}, 14);
  const std::vector<Request> scaling_stream = repair_stream();
  for (const int threads : {1, 2, 4}) {
    ServiceOptions options = warm_options;
    options.threads = threads;
    AnalysisService service(options);
    service.run(scaling_stream);  // prime every worker's cache somewhere
    const double ms = time_passes_ms(service, scaling_stream, k_passes);
    bench::print_row(
        {std::to_string(threads), fmt(ms),
         fmt(1000.0 * static_cast<double>(scaling_stream.size()) / ms)},
        14);
  }

  if (!json_path.empty() && !bench::write_metrics_file(json_path, metrics)) {
    std::fprintf(stderr, "bench_service: cannot write '%s'\n",
                 json_path.c_str());
    return 1;
  }
  if (!thresholds_path.empty() &&
      !bench::check_thresholds(metrics, thresholds_path, "service_")) {
    return 1;
  }
  return 0;
}
