// AnalysisService throughput: requests/sec for cold vs warm-session
// request streams on the gadget library.
//
// The stream interleaves ground-truth and repair requests over the gadget
// library (the BAD-chain family included, where the base CNF/SMT encodings
// dominate per-request cost). "Cold" runs the stream through a service
// with session reuse disabled (session_cache_capacity 0): every request
// re-encodes its instance from scratch, the pre-façade behaviour. "Warm"
// runs the same stream through a service whose workers keep persistent
// sessions keyed by instance fingerprint, primed by one untimed pass — so
// the measured passes hit warm solver state (cached CNF ranking groups,
// learned clauses, encoded SMT bases) on every request.
//
// Responses are byte-compared (ids zeroed) before anything is timed: warm
// serving must never change deterministic bytes, and this bench refuses to
// publish a speedup for answers that drifted.
//
//   bench_service [--json FILE] [--check THRESHOLDS]
//
// --json writes the speedup/rps metrics; --check enforces
// service_warm_speedup_min from bench/thresholds.json — the CI gate for
// the warm-session contract.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "api/service.h"
#include "api/wire.h"
#include "bench_util.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "spp/gadgets.h"

namespace {

constexpr std::uint64_t k_seed = 42;

const std::vector<const char*>& gadget_names() {
  static const std::vector<const char*> names = {
      "bad",         "disagree",    "ibgp-figure3",
      "bad-chain-4", "bad-chain-8", "bad-chain-16"};
  return names;
}

/// The gated workload: repeated exact queries over a hot instance set —
/// the "many scenarios, heavy traffic" shape warm sessions exist for. A
/// cold service pays the CNF encode per request; a warm one only solves.
std::vector<fsr::api::Request> query_stream() {
  std::vector<fsr::api::Request> requests;
  for (const char* name : gadget_names()) {
    auto instance = std::make_shared<const fsr::spp::SppInstance>(
        fsr::spp::gadget_by_name(name));
    requests.push_back(fsr::api::GroundTruthRequest{instance, {}});
  }
  return requests;
}

/// The informational workload: full repairs, where the candidate search
/// dominates and warm sessions only shave the encode/base costs.
std::vector<fsr::api::Request> repair_stream() {
  std::vector<fsr::api::Request> requests;
  for (const char* name : gadget_names()) {
    requests.push_back(fsr::api::RepairRequest{
        std::make_shared<const fsr::spp::SppInstance>(
            fsr::spp::gadget_by_name(name)),
        k_seed});
  }
  return requests;
}

std::vector<std::string> response_bytes(
    std::vector<fsr::api::Response> responses) {
  std::vector<std::string> bytes;
  bytes.reserve(responses.size());
  for (fsr::api::Response& response : responses) {
    response.id = 0;  // submission order, not content
    bytes.push_back(fsr::api::wire::render_response(response));
  }
  return bytes;
}

double time_passes_ms(fsr::api::AnalysisService& service,
                      const std::vector<fsr::api::Request>& stream,
                      int passes) {
  const auto start = std::chrono::steady_clock::now();
  for (int pass = 0; pass < passes; ++pass) {
    const auto responses = service.run(stream);
    (void)responses;
  }
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count() /
         passes;
}

std::string fmt(double value, const char* suffix = "") {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.2f%s", value, suffix);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fsr::api;
  namespace bench = fsr::bench;

  std::string json_path;
  std::string thresholds_path;
  if (!bench::parse_metric_args(argc, argv, "bench_service", json_path,
                                thresholds_path)) {
    return 2;
  }

  std::map<std::string, double> metrics;

  ServiceOptions cold_options;
  cold_options.session_cache_capacity = 0;  // reuse disabled: the ablation
  ServiceOptions warm_options;
  warm_options.session_cache_capacity = 16;

  constexpr int k_passes = 5;
  const auto measure_stream =
      [&](const char* label, const std::vector<Request>& stream,
          const char* metric_prefix) {
        // Byte-agreement sanity pass (untimed): warm serving must never
        // change deterministic bytes.
        {
          AnalysisService cold(cold_options);
          AnalysisService warm(warm_options);
          warm.run(stream);  // prime
          if (response_bytes(cold.run(stream)) !=
              response_bytes(warm.run(stream))) {
            std::fprintf(
                stderr,
                "bench_service: warm responses drifted from cold bytes (%s)\n",
                label);
            std::exit(1);
          }
        }
        AnalysisService cold(cold_options);
        const double cold_ms = time_passes_ms(cold, stream, k_passes);
        AnalysisService warm(warm_options);
        warm.run(stream);  // prime the session cache (untimed cold pass)
        const double warm_ms = time_passes_ms(warm, stream, k_passes);
        const double requests = static_cast<double>(stream.size());
        bench::print_row({label, std::to_string(stream.size()), fmt(cold_ms),
                          fmt(warm_ms), fmt(cold_ms / warm_ms, "x"),
                          fmt(1000.0 * requests / warm_ms)},
                         17);
        metrics[std::string(metric_prefix) + "cold_requests_per_sec"] =
            1000.0 * requests / cold_ms;
        metrics[std::string(metric_prefix) + "warm_requests_per_sec"] =
            1000.0 * requests / warm_ms;
        return cold_ms / warm_ms;
      };

  // Solver-effort provenance: registry deltas around the measured streams,
  // recorded alongside the timing metrics so a perf regression in
  // BENCH_pr.json can be read against "did the solver do more work" (an
  // algorithmic change) or not (a constant-factor one).
  const std::vector<std::string> effort_counters = {
      "sat.queries",           "sat.conflicts", "sat.decisions",
      "sat.propagations",      "smt.checks",    "repair.solver_checks"};
  const auto effort_values = [&effort_counters]() {
    std::vector<std::uint64_t> values;
    for (const std::string& name : effort_counters) {
      values.push_back(fsr::obs::registry().counter(name).value());
    }
    return values;
  };
  const std::vector<std::uint64_t> effort_floor = effort_values();

  bench::print_banner(
      "service throughput: cold vs warm-session request streams");
  bench::print_row({"stream", "requests", "cold ms", "warm ms", "speedup",
                    "req/sec (warm)"},
                   17);
  // The gated metric: the hot-query workload the warm-session design
  // exists for (repeated ground-truth requests over a fixed instance set).
  metrics["service_warm_speedup"] =
      measure_stream("ground-truth", query_stream(), "service_");
  // Informational: full repairs re-run the candidate search either way, so
  // warmth only shaves the encode/base construction.
  metrics["service_repair_warm_speedup"] =
      measure_stream("repair", repair_stream(), "service_repair_");

  const std::vector<std::uint64_t> effort_ceiling = effort_values();
  for (std::size_t i = 0; i < effort_counters.size(); ++i) {
    std::string key = "service_effort_" + effort_counters[i];
    for (char& c : key) {
      if (c == '.') c = '_';
    }
    metrics[key] =
        static_cast<double>(effort_ceiling[i] - effort_floor[i]);
  }

  // ---- tracing overhead (informational, not gated) -----------------------
  // The obs contract: a span is one relaxed atomic load when no tracer is
  // installed, and recording stays off the deterministic path when one is.
  // Measured on the warm hot-query stream, where per-request work is
  // smallest and any fixed overhead is most visible.
  {
    AnalysisService service(warm_options);
    service.run(query_stream());  // prime
    const double off_ms = time_passes_ms(service, query_stream(), k_passes);
    fsr::obs::Tracer tracer;
    fsr::obs::install_tracer(&tracer);
    const double on_ms = time_passes_ms(service, query_stream(), k_passes);
    fsr::obs::install_tracer(nullptr);
    const double overhead_pct = 100.0 * (on_ms / off_ms - 1.0);
    bench::print_banner("tracing overhead: warm hot-query stream");
    bench::print_row({"trace off ms", "trace on ms", "overhead"}, 14);
    bench::print_row({fmt(off_ms), fmt(on_ms), fmt(overhead_pct, "%")}, 14);
    metrics["service_trace_overhead_pct"] = overhead_pct;
  }

  // ---- diagnostics overhead (informational, not gated) -------------------
  // The full production-diagnostics stack at once: flight recorder
  // installed, OpenMetrics file writer scraping every 100 ms, and the
  // slow-request watchdog armed. Same contract as tracing: per-request cost
  // is a handful of relaxed atomics plus one lock-free ring write, so the
  // overhead on the warm hot-query stream should be noise.
  {
    AnalysisService service(warm_options);
    service.run(query_stream());  // prime
    const double off_ms = time_passes_ms(service, query_stream(), k_passes);
    fsr::obs::FlightRecorder recorder(1024);
    fsr::obs::install_recorder(&recorder);
    const std::string metrics_path =
        json_path.empty() ? "bench_service_metrics.prom.tmp-probe"
                          : json_path + ".metrics.prom";
    double on_ms = 0.0;
    {
      fsr::obs::MetricsFileWriter::Options writer_options;
      writer_options.path = metrics_path;
      writer_options.interval = std::chrono::milliseconds(100);
      fsr::obs::MetricsFileWriter writer(writer_options);
      on_ms = time_passes_ms(service, query_stream(), k_passes);
    }
    fsr::obs::install_recorder(nullptr);
    std::remove(metrics_path.c_str());
    const double overhead_pct = 100.0 * (on_ms / off_ms - 1.0);
    bench::print_banner(
        "diagnostics overhead: recorder + metrics writer, warm hot-query "
        "stream");
    bench::print_row({"diag off ms", "diag on ms", "overhead"}, 14);
    bench::print_row({fmt(off_ms), fmt(on_ms), fmt(overhead_pct, "%")}, 14);
    metrics["service_diagnostics_overhead_pct"] = overhead_pct;
    metrics["service_recorder_events"] =
        static_cast<double>(recorder.recorded());
  }

  // ---- pool scaling (informational, not gated) ---------------------------
  bench::print_banner("service throughput: worker-pool scaling (warm)");
  bench::print_row({"threads", "ms/stream", "req/sec"}, 14);
  const std::vector<Request> scaling_stream = repair_stream();
  for (const int threads : {1, 2, 4}) {
    ServiceOptions options = warm_options;
    options.threads = threads;
    AnalysisService service(options);
    service.run(scaling_stream);  // prime every worker's cache somewhere
    const double ms = time_passes_ms(service, scaling_stream, k_passes);
    bench::print_row(
        {std::to_string(threads), fmt(ms),
         fmt(1000.0 * static_cast<double>(scaling_stream.size()) / ms)},
        14);
  }

  // ---- fingerprint-affinity sharding ablation (gated) --------------------
  // Concurrent clients over a wide instance set, warm caches scarce: the
  // shape fsr::netserve routes for. Each worker keeps an LRU of 4 warm
  // sessions while the stream cycles 15 distinct instances, so WHERE a
  // request lands decides whether it finds warm state. Consistent-hash
  // affinity pins each instance to one home worker (its session survives);
  // round-robin sprays them, and every worker thrashes its tiny cache
  // building sessions the others already built. The gate is the warm
  // hit-rate ratio between the two policies — the scheduling half of the
  // netserve design, measured end to end.
  {
    std::vector<Request> affinity_stream;
    std::vector<std::string> chain_names;
    for (int length = 2; length <= 8; ++length) {
      chain_names.push_back("good-chain-" + std::to_string(length));
      chain_names.push_back("bad-chain-" + std::to_string(length));
    }
    chain_names.push_back("bad");  // 15 distinct: deliberately not a
                                   // multiple of the worker count, so
                                   // round-robin never self-aligns
    for (const std::string& name : chain_names) {
      affinity_stream.push_back(GroundTruthRequest{
          std::make_shared<const fsr::spp::SppInstance>(
              fsr::spp::gadget_by_name(name)),
          {}});
    }

    struct PolicyResult {
      double hit_rate = 0.0;
      double requests_per_sec = 0.0;
    };
    const auto measure_policy = [&](SchedulePolicy policy) {
      ServiceOptions options;
      options.threads = 8;
      options.session_cache_capacity = 4;  // scarce: 15 instances in play
      options.schedule = policy;
      AnalysisService service(options);
      service.run(affinity_stream);  // prime (one build per instance)
      const ServiceStats before = service.stats();

      constexpr int k_clients = 4;
      constexpr int k_client_passes = 4;
      const auto start = std::chrono::steady_clock::now();
      std::vector<std::thread> clients;
      for (int c = 0; c < k_clients; ++c) {
        clients.emplace_back([&service, &affinity_stream] {
          for (int pass = 0; pass < k_client_passes; ++pass) {
            std::vector<std::future<Response>> futures;
            futures.reserve(affinity_stream.size());
            for (const Request& request : affinity_stream) {
              futures.push_back(service.submit(request));
            }
            for (std::future<Response>& future : futures) future.get();
          }
        });
      }
      for (std::thread& client : clients) client.join();
      const auto stop = std::chrono::steady_clock::now();

      const ServiceStats after = service.stats();
      const double completed =
          static_cast<double>(after.completed - before.completed);
      const double warm_hits =
          static_cast<double>(after.warm_hits - before.warm_hits);
      const double ms =
          std::chrono::duration<double, std::milli>(stop - start).count();
      PolicyResult result;
      result.hit_rate = completed > 0.0 ? warm_hits / completed : 0.0;
      result.requests_per_sec = ms > 0.0 ? 1000.0 * completed / ms : 0.0;
      return result;
    };

    const PolicyResult affinity = measure_policy(SchedulePolicy::affinity);
    const PolicyResult round_robin =
        measure_policy(SchedulePolicy::round_robin);
    // A zero round-robin hit rate is the expected thrash endpoint; clamp
    // so the gated ratio stays finite.
    const double ratio =
        affinity.hit_rate / std::max(round_robin.hit_rate, 0.02);

    bench::print_banner(
        "fingerprint-affinity sharding: warm hit rate, 4 clients x 8 "
        "workers, scarce caches");
    bench::print_row({"policy", "warm hit rate", "req/sec"}, 16);
    bench::print_row({"affinity", fmt(100.0 * affinity.hit_rate, "%"),
                      fmt(affinity.requests_per_sec)},
                     16);
    bench::print_row({"round-robin", fmt(100.0 * round_robin.hit_rate, "%"),
                      fmt(round_robin.requests_per_sec)},
                     16);
    metrics["service_affinity_warm_hit_rate"] = affinity.hit_rate;
    metrics["service_round_robin_warm_hit_rate"] = round_robin.hit_rate;
    metrics["service_affinity_warm_hit_ratio"] = ratio;
    metrics["service_affinity_requests_per_sec"] = affinity.requests_per_sec;
    metrics["service_round_robin_requests_per_sec"] =
        round_robin.requests_per_sec;
  }

  if (!json_path.empty() && !bench::write_metrics_file(json_path, metrics)) {
    std::fprintf(stderr, "bench_service: cannot write '%s'\n",
                 json_path.c_str());
    return 1;
  }
  if (!thresholds_path.empty() &&
      !bench::check_thresholds(metrics, thresholds_path, "service_")) {
    return 1;
  }
  return 0;
}
