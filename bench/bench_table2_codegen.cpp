// Table II — the algebra -> NDlog mapping.
//
// Prints the correspondence the paper tabulates (pref -> f_pref,
// (+)_P -> f_concatSig, (+)_I -> f_import, (+)_E -> f_export), the GPV
// mechanism template the functions plug into, and the generated #def_func
// bodies for the paper's two worked examples (shortest hop-count and
// Gao-Rexford guideline A) plus an SPP instance.
#include <cstdio>

#include "algebra/additive_algebra.h"
#include "algebra/standard_policies.h"
#include "bench_util.h"
#include "fsr/ndlog_generator.h"
#include "proto/gpv.h"
#include "spp/gadgets.h"
#include "spp/translate.h"

int main() {
  using fsr::bench::print_banner;
  using fsr::bench::print_row;

  print_banner("Table II: algebra and NDlog mapping");
  print_row({"Algebra", "NDlog predicate / function"}, 14);
  print_row({"pref", "f_pref"}, 14);
  print_row({"(+)_P", "f_concatSig"}, 14);
  print_row({"(+)_I", "f_import"}, 14);
  print_row({"(+)_E", "f_export"}, 14);

  print_banner("GPV mechanism template (Section V-A)");
  std::printf("%s\n", fsr::proto::gpv_source().c_str());

  print_banner("Generated functions: shortest hop-count (Section V-C)");
  std::printf("%s\n",
              fsr::render_policy_functions(*fsr::algebra::shortest_hop_count())
                  .c_str());

  print_banner("Generated functions: Gao-Rexford guideline A (Section V-C)");
  std::printf(
      "%s\n",
      fsr::render_policy_functions(*fsr::algebra::gao_rexford_guideline_a())
          .c_str());

  print_banner("Generated functions: DISAGREE SPP instance (excerpt)");
  const auto spp_algebra =
      fsr::spp::algebra_from_spp(fsr::spp::disagree_gadget());
  std::printf("%s\n", fsr::render_policy_functions(*spp_algebra).c_str());
  return 0;
}
