// Event-driven simulator throughput: messages/sec and convergence-step
// counts over the gadget library (informational — no CI gate).
//
// Two shapes:
//   * convergence scaling — GOOD-gadget chains of growing size, steady and
//     link-flap schedules, many seeds each: how many activation steps and
//     messages a safe instance of N gadgets takes to quiesce, and how fast
//     the simulator chews through them;
//   * oscillation detection — the unsafe gadgets, where the run's cost is
//     the exact state-repeat search, reported as steps/sec until the cycle
//     is found.
//
// All throughput numbers land in BENCH_pr.json via --json as sim_* metrics
// and are deliberately not threshold-gated (wall-clock throughput on shared
// CI runners is provenance, not a contract). The exception is the detector
// ablation: sim_hash_speedup — the PR-8 full-canonicalisation detector's
// wall clock over the incremental-hash + Brent detector's on the x16
// oscillation workload — IS gated (sim_hash_speedup_min in
// bench/thresholds.json). A speedup ratio of two same-machine runs cancels
// runner noise, and the incremental detector regressing to canonical cost
// is exactly the regression this PR exists to prevent.
//
//   bench_sim [--json FILE] [--check THRESHOLDS]
#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "sim/simulator.h"
#include "spp/gadgets.h"
#include "spp/spp.h"

namespace {

constexpr std::uint64_t k_seed_base = 42;
constexpr std::uint64_t k_seeds_per_instance = 32;

struct SweepStats {
  double wall_ms = 0.0;
  std::uint64_t messages = 0;
  std::uint64_t steps = 0;
  std::uint64_t runs = 0;
  std::uint64_t converged = 0;
  std::uint64_t oscillating = 0;
};

SweepStats sweep(const fsr::spp::SppInstance& instance,
                 const std::string& scenario,
                 const std::string& detector = "incremental") {
  SweepStats stats;
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t s = 0; s < k_seeds_per_instance; ++s) {
    fsr::sim::SimOptions options;
    options.seed = k_seed_base + s;
    options.scenario = scenario;
    options.detector = detector;
    const fsr::sim::SimResult run = fsr::sim::simulate(instance, options);
    stats.messages += run.messages;
    stats.steps += run.steps;
    ++stats.runs;
    if (run.converged) ++stats.converged;
    if (run.oscillating) ++stats.oscillating;
  }
  const auto stop = std::chrono::steady_clock::now();
  stats.wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  return stats;
}

std::string fmt(double value, const char* suffix = "") {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.2f%s", value, suffix);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  namespace bench = fsr::bench;

  std::string json_path;
  std::string thresholds_path;
  if (!bench::parse_metric_args(argc, argv, "bench_sim", json_path,
                                thresholds_path)) {
    return 2;
  }

  std::map<std::string, double> metrics;
  double total_messages = 0.0;
  double total_ms = 0.0;

  bench::print_banner(
      "sim convergence scaling: GOOD-gadget chains, 32 seeds each");
  bench::print_row({"instance", "scenario", "conv", "steps/run",
                    "msgs/run", "msgs/sec"},
                   13);
  for (const std::int32_t length : {1, 4, 8, 16}) {
    const fsr::spp::SppInstance chain = fsr::spp::good_gadget_chain(length);
    for (const char* scenario : {"steady", "link-flap"}) {
      const SweepStats stats = sweep(chain, scenario);
      const double runs = static_cast<double>(stats.runs);
      const double msgs_per_sec =
          1000.0 * static_cast<double>(stats.messages) / stats.wall_ms;
      bench::print_row(
          {"good-chain-" + std::to_string(length), scenario,
           std::to_string(stats.converged) + "/" + std::to_string(stats.runs),
           fmt(static_cast<double>(stats.steps) / runs),
           fmt(static_cast<double>(stats.messages) / runs), fmt(msgs_per_sec)},
          13);
      total_messages += static_cast<double>(stats.messages);
      total_ms += stats.wall_ms;
      if (std::string(scenario) == "steady") {
        metrics["sim_chain" + std::to_string(length) + "_steps_per_run"] =
            static_cast<double>(stats.steps) / runs;
        metrics["sim_chain" + std::to_string(length) + "_messages_per_run"] =
            static_cast<double>(stats.messages) / runs;
      }
    }
  }

  bench::print_banner(
      "sim oscillation detection: unsafe gadgets, 32 seeds each");
  bench::print_row({"instance", "osc", "steps/run", "steps/sec"}, 15);
  for (const char* name : {"bad", "disagree", "ibgp-figure3"}) {
    const SweepStats stats =
        sweep(fsr::spp::gadget_by_name(name), "steady");
    const double steps_per_sec =
        1000.0 * static_cast<double>(stats.steps) / stats.wall_ms;
    bench::print_row(
        {name,
         std::to_string(stats.oscillating) + "/" + std::to_string(stats.runs),
         fmt(static_cast<double>(stats.steps) /
             static_cast<double>(stats.runs)),
         fmt(steps_per_sec)},
        15);
    total_messages += static_cast<double>(stats.messages);
    total_ms += stats.wall_ms;
    if (std::string(name) == "bad") {
      metrics["sim_bad_detection_steps_per_sec"] = steps_per_sec;
    }
  }

  bench::print_banner(
      "detector ablation: canonicalisation vs incremental hash, "
      "bad-chain-x16, 32 seeds");
  bench::print_row({"detector", "osc", "wall ms", "speedup"}, 15);
  {
    const fsr::spp::SppInstance big_bad = fsr::spp::bad_gadget_chain(16);
    // Warm-up pass so neither detector pays first-touch allocator costs.
    (void)sweep(big_bad, "steady");
    const SweepStats canonical = sweep(big_bad, "steady", "canonical");
    const SweepStats incremental = sweep(big_bad, "steady", "incremental");
    const double speedup = canonical.wall_ms / incremental.wall_ms;
    bench::print_row({"canonical",
                      std::to_string(canonical.oscillating) + "/" +
                          std::to_string(canonical.runs),
                      fmt(canonical.wall_ms), "1.00"},
                     15);
    bench::print_row({"incremental",
                      std::to_string(incremental.oscillating) + "/" +
                          std::to_string(incremental.runs),
                      fmt(incremental.wall_ms), fmt(speedup, "x")},
                     15);
    metrics["sim_hash_speedup"] = speedup;
    total_messages += static_cast<double>(incremental.messages);
    total_ms += incremental.wall_ms;
  }

  metrics["sim_messages_per_sec"] = 1000.0 * total_messages / total_ms;
  bench::print_banner("sim aggregate");
  bench::print_row({"messages/sec (all sweeps)",
                    fmt(metrics["sim_messages_per_sec"])},
                   28);

  if (!json_path.empty() && !bench::write_metrics_file(json_path, metrics)) {
    std::fprintf(stderr, "bench_sim: cannot write '%s'\n", json_path.c_str());
    return 1;
  }
  if (!thresholds_path.empty() &&
      !bench::check_thresholds(metrics, thresholds_path, "sim_")) {
    return 1;
  }
  return 0;
}
