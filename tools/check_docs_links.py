#!/usr/bin/env python3
"""Intra-repo markdown link lint.

Walks every tracked-ish *.md file in the repository, extracts inline
markdown links and images, and fails (exit 1) when a repo-relative
target does not resolve to an existing file or directory. External
targets (http/https/mailto), pure in-page anchors (#...), and targets
that resolve outside the repository root (e.g. the README's GitHub
../../actions badge links, which only exist on the web UI) are skipped.

Usage: tools/check_docs_links.py [repo-root]
"""

import os
import re
import sys

SKIP_DIRS = {".git", ".ccache", "node_modules"}
SKIP_DIR_PREFIXES = ("build",)

# [text](target) and ![alt](target); target may be <wrapped> and may
# carry an optional "title". Nested parens are not used in this repo.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(\s*(<[^>]*>|[^)\s]+)(?:\s+\"[^\"]*\")?\s*\)")
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def markdown_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [
            d
            for d in dirnames
            if d not in SKIP_DIRS and not d.startswith(SKIP_DIR_PREFIXES)
        ]
        for name in sorted(filenames):
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def strip_code(text):
    """Drops fenced and inline code spans so example snippets containing
    bracket syntax never register as links."""
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    return re.sub(r"`[^`\n]*`", "", text)


def check_file(path, root):
    dead = []
    skipped = 0
    with open(path, encoding="utf-8") as handle:
        text = strip_code(handle.read())
    for match in LINK_RE.finditer(text):
        target = match.group(1).strip()
        if target.startswith("<") and target.endswith(">"):
            target = target[1:-1].strip()
        if not target or target.startswith("#"):
            continue
        if target.lower().startswith(EXTERNAL_PREFIXES):
            continue
        # Drop fragment/query: the lint checks file existence, not anchors.
        target = target.split("#", 1)[0].split("?", 1)[0]
        if not target:
            continue
        resolved = os.path.normpath(os.path.join(os.path.dirname(path), target))
        if os.path.commonpath([os.path.abspath(resolved), root]) != root:
            skipped += 1  # escapes the repo (web-only links): unverifiable
            continue
        if not os.path.exists(resolved):
            dead.append((target, resolved))
    return dead, skipped


def main():
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    files = list(markdown_files(root))
    if not files:
        print("check_docs_links: no markdown files found under", root)
        return 1
    failures = 0
    checked = 0
    skipped_total = 0
    for path in files:
        dead, skipped = check_file(path, root)
        checked += 1
        skipped_total += skipped
        for target, resolved in dead:
            failures += 1
            print(
                "DEAD LINK %s -> %s (resolved: %s)"
                % (os.path.relpath(path, root), target, os.path.relpath(resolved, root))
            )
    print(
        "check_docs_links: %d files, %d dead links, %d external-to-repo skipped"
        % (checked, failures, skipped_total)
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
