#!/usr/bin/env python3
"""End-to-end smoke for fsr_serve's socket mode (src/netserve/).

Usage: python3 tools/serve_socket_smoke.py path/to/fsr_serve

Proves the transport acceptance properties of docs/WIRE.md ("Transport"):

  * byte identity — a fixed request stream produces byte-identical
    responses over stdin, TCP, and Unix-domain transports, at --shards 1
    and --shards 8, from 8 concurrent clients at once (stats/debug lines
    are live state, the two documented exceptions, and are filtered);
  * the stdin contract per connection — dense ids, blank lines skipped,
    in-band errors;
  * graceful drain — SIGTERM makes the server answer everything already
    received, flush, close cleanly, and exit 0.

Self-contained on purpose: it generates its own request stream and its
own stdin-mode reference, so the release and sanitizer CI jobs can run
the same file against different build trees.
"""

import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time

REQUESTS = [
    '{"kind": "analyze-safety", "gadget": "bad"}',
    '{"kind": "ground-truth", "gadget": "bad-chain-8"}',
    '',  # blank: skipped without a response, but counted for line numbers
    '{"kind": "simulate", "gadget": "good", "seed": 7}',
    '{"kind": "repair", "gadget": "bad"}',
    '{"kind": "simulate", "gadget": "bad", "seed": 7, "scenario": "staged"}',
    '{"kind": "stats"}',
    '{"kind": "ground-truth", "gadget": "disagree", "mode": "enumerate"}',
    '{"kind": "this-is-not-a-kind"}',  # answered in-band, with a line number
    '{"kind": "emulate", "gadget": "good", "seed": 7}',
]
STREAM = "".join(line + "\n" for line in REQUESTS).encode()


def deterministic(payload: bytes) -> bytes:
    """Drops the stats lines — live execution state, the documented
    exception to byte-reproducibility."""
    return b"".join(
        line + b"\n"
        for line in payload.splitlines()
        if b'"kind": "stats"' not in line and b'"kind": "debug"' not in line
    )


def stdin_reference(binary: str) -> bytes:
    # Exit status 1 is expected: the stream contains an in-band error line.
    result = subprocess.run(
        [binary], input=STREAM, stdout=subprocess.PIPE, check=False
    )
    assert result.returncode == 1, result.returncode
    reference = deterministic(result.stdout)
    assert b'"id": 0' in reference and b'"id": 8' in reference, reference
    assert b"line 9: " in reference, reference  # the in-band error line
    return reference


def launch(binary: str, shards: int, unix_path: str):
    server = subprocess.Popen(
        [binary, "--listen", "127.0.0.1:0", "--unix", unix_path,
         "--shards", str(shards)],
        stderr=subprocess.PIPE,
    )
    port = None
    deadline = time.time() + 30
    while time.time() < deadline:
        line = server.stderr.readline().decode()
        assert line, "server exited before announcing its listeners"
        sys.stderr.write(line)
        if line.startswith("fsr_serve: listening on 127.0.0.1:"):
            port = int(line.rsplit(":", 1)[1])
        if line.startswith("fsr_serve: listening on unix:"):
            break
    assert port, "no TCP announce within 30s"
    return server, port


def connect(port: int, unix_path: str, use_unix: bool) -> socket.socket:
    if use_unix:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.connect(unix_path)
    else:
        sock = socket.create_connection(("127.0.0.1", port))
    sock.settimeout(60)
    return sock


def client(port: int, unix_path: str, index: int, replies: list):
    sock = connect(port, unix_path, use_unix=index % 2 == 1)
    # Odd clients dribble the stream in small pieces: framing must
    # reassemble arbitrary chunk boundaries into the same bytes.
    if index % 2 == 1:
        for start in range(0, len(STREAM), 7):
            sock.sendall(STREAM[start : start + 7])
    else:
        sock.sendall(STREAM)
    sock.shutdown(socket.SHUT_WR)
    data = b""
    while True:
        chunk = sock.recv(65536)
        if not chunk:
            break
        data += chunk
    sock.close()
    replies[index] = data


def drain_check(binary: str, unix_path: str):
    """SIGTERM with a client mid-connection: the received line is still
    answered, the close is clean, and the exit status is 0."""
    server, port = launch(binary, shards=4, unix_path=unix_path)
    sock = connect(port, unix_path, use_unix=False)
    sock.sendall(b'{"kind": "analyze-safety", "gadget": "good"}\n')
    first = b""
    while not first.endswith(b"\n"):  # proves the line was answered
        first += sock.recv(1)
    assert b'"id": 0' in first, first

    server.send_signal(signal.SIGTERM)
    rest = b""
    while True:
        chunk = sock.recv(65536)
        if not chunk:
            break
        rest += chunk
    sock.close()
    assert rest == b"", rest  # clean EOF, no stray bytes after the answer
    assert server.wait(timeout=60) == 0, server.returncode
    print("smoke ok: SIGTERM drain answered the in-flight line, exit 0")


def main() -> int:
    binary = sys.argv[1]
    reference = stdin_reference(binary)
    clients = 8

    with tempfile.TemporaryDirectory() as tmp:
        unix_path = tmp + "/fsr-serve-smoke.sock"
        for shards in (1, 8):
            server, port = launch(binary, shards, unix_path)
            replies = [None] * clients
            threads = [
                threading.Thread(
                    target=client, args=(port, unix_path, i, replies)
                )
                for i in range(clients)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            for i, payload in enumerate(replies):
                assert payload is not None, f"client {i} got no reply"
                actual = deterministic(payload)
                assert actual == reference, (
                    f"client {i} (shards {shards}) drifted from stdin bytes:\n"
                    f"{actual!r}\nvs\n{reference!r}"
                )
            server.send_signal(signal.SIGTERM)
            assert server.wait(timeout=60) == 0, server.returncode
            print(
                f"smoke ok: {clients} clients x shards={shards}: TCP and "
                "Unix responses byte-identical to stdin mode"
            )
        drain_check(binary, unix_path)
    return 0


if __name__ == "__main__":
    sys.exit(main())
