// The policy library: ready-made algebras for the configurations the paper
// studies (Section II-B, IV-C, VI).
//
// Business-relationship labels follow the paper's conventions:
//   label 'c' — the neighbour at the far end is a customer;
//   label 'p' — the far end is a provider (reverse of 'c');
//   label 'r' — the far end is a peer (self-reverse).
// Signatures 'C', 'P', 'R' classify routes learned from a customer,
// provider, or peer respectively.
#ifndef FSR_ALGEBRA_STANDARD_POLICIES_H
#define FSR_ALGEBRA_STANDARD_POLICIES_H

#include <set>

#include "algebra/algebra.h"

namespace fsr::algebra {

/// Gao-Rexford guideline A (Section II-B): prefer customer routes over
/// peer and provider routes (peer vs provider unconstrained, encoded as
/// equally preferred); export customer routes everywhere, but peer and
/// provider routes only to customers. Strictly monotone: NO (c (+) C = C);
/// monotone: yes — the paper's running example.
AlgebraPtr gao_rexford_guideline_a();

/// A stricter business-relationship guideline in the style of Gao-Rexford
/// guideline B: customer routes are preferred over peer routes, and peer
/// routes over provider routes (C < R < P), with the same export
/// discipline as guideline A. Still monotone-only, for the same c(+)C=C
/// reason.
AlgebraPtr gao_rexford_guideline_b();

/// Backup routing in the spirit of Gao, Griffin and Rexford [8]: a second
/// signature class B marks routes that traversed a backup link; primary
/// routes are always preferred over backup routes, and any route crossing
/// a backup link (label 'b', self-reverse) degrades to B.
AlgebraPtr backup_routing();

/// Bandwidth-class routing ("prefer higher bandwidth"): signatures are a
/// finite ladder of bandwidth classes (e.g. {10, 100, 1000} Mbps); the
/// extension takes the minimum of link class and route class; higher is
/// better. Monotone but NOT strictly monotone (min can leave the class
/// unchanged) — the canonical "needs a tie-breaker" primary policy for the
/// widest-shortest composition.
AlgebraPtr bandwidth_classes(const std::set<std::int64_t>& classes_mbps);

/// Widest-shortest routing (Section II-A): bandwidth_classes (x) hop-count.
AlgebraPtr widest_shortest(const std::set<std::int64_t>& classes_mbps);

/// The paper's Section VI-A experiment policy: Gao-Rexford guideline A
/// composed with shortest hop-count as tie-breaker — provably safe by the
/// composition rule (A monotone, hop-count strictly monotone).
AlgebraPtr gao_rexford_with_hop_count();

}  // namespace fsr::algebra

#endif  // FSR_ALGEBRA_STANDARD_POLICIES_H
