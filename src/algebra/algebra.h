// The routing-algebra abstraction <Sigma, pref, L, (+)> with FSR's
// extension separating import, generation, and export (Section III-A).
//
// An algebra answers two kinds of questions:
//
//  1. *Operational* — given a label and a signature, what does the policy
//     do? (import_allows / extend / export_allows / compare). These drive
//     the generated distributed implementation and the reference
//     path-vector engine.
//
//  2. *Symbolic* — what constraints define the policy? (symbolic()). These
//     feed the safety analyzer, which encodes them as integer constraints
//     per Section IV-B.
//
// The prohibited signature phi is modelled as std::nullopt so it cannot be
// accidentally routed on.
#ifndef FSR_ALGEBRA_ALGEBRA_H
#define FSR_ALGEBRA_ALGEBRA_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "algebra/value.h"

namespace fsr::algebra {

/// Result of comparing two signatures under the preference relation.
/// `better` means the left argument is strictly preferred.
enum class Ordering { better, equal, worse, incomparable };

/// Relation kinds appearing in symbolic preference constraints.
enum class PrefRel { strictly_better, equal, better_or_equal };

/// The symbolic content of an algebra, as consumed by the safety analyzer.
///
/// Finite algebras enumerate concrete signatures, pairwise preference
/// constraints, and combined (+) entries (entries yielding phi are omitted:
/// s strictly-precedes phi holds by definition and contributes nothing).
/// Closed-form additive algebras instead contribute forall templates
/// "forall s: s REL s + delta" — one per distinct label weight.
struct SymbolicSpec {
  std::string algebra_name;

  std::vector<std::string> signatures;

  struct Preference {
    std::string lhs;
    PrefRel rel = PrefRel::strictly_better;
    std::string rhs;
    std::string provenance;  // human-readable origin, e.g. "rank at node a"
  };
  std::vector<Preference> preferences;

  /// One combined-concatenation entry: label (+) from_sig = to_sig.
  struct Extension {
    std::string label;
    std::string from_sig;
    std::string to_sig;
    std::string provenance;
  };
  std::vector<Extension> extensions;

  /// Closed-form monotonicity template: forall s: s REL s + delta.
  struct AdditiveTemplate {
    std::int64_t delta = 0;
    std::string provenance;
  };
  std::vector<AdditiveTemplate> additive_templates;
};

/// Abstract routing algebra. Implementations are immutable after
/// construction and therefore freely shareable across threads.
class RoutingAlgebra {
 public:
  virtual ~RoutingAlgebra() = default;

  virtual const std::string& name() const noexcept = 0;

  /// Import filter (+)_I: may node u accept a route with signature `sig`
  /// arriving over its incoming link labelled `label`?
  virtual bool import_allows(const Value& label, const Value& sig) const = 0;

  /// Export filter (+)_E: may a route with signature `sig` be announced
  /// over a link whose RECEIVER-side label is `label`?
  ///
  /// Orientation note. The paper's (+)_E tables (Section III-A) are keyed
  /// by the label the *receiver* assigns to the link — its row `c` reads
  /// "exports only customer routes to a provider" (the receiver of such an
  /// export sees a customer link). That convention is what makes the
  /// published combined (+) table come out right, so we adopt it verbatim.
  /// A sender that knows its own label L for the link simply queries
  /// export_allows(complement(L), sig); the generated f_export function
  /// does exactly that (see fsr::NdlogGenerator).
  virtual bool export_allows(const Value& label, const Value& sig) const = 0;

  /// Simple concatenation (+)_P: signature of the extended path. Returns
  /// std::nullopt (phi) when the combination is undefined/prohibited.
  virtual std::optional<Value> extend(const Value& label,
                                      const Value& sig) const = 0;

  /// The complement of a label: the label of the reverse link (e.g. the
  /// reverse of a customer link is a provider link). Needed to derive the
  /// combined (+) from the separated filters (Section III-A).
  virtual Value complement(const Value& label) const = 0;

  /// Signature of a one-hop path over a link labelled `label` (the
  /// origination set of the metarouting literature, Section V-B step 4).
  virtual std::optional<Value> originate(const Value& label) const = 0;

  /// Preference comparison. Returns Ordering::incomparable when the policy
  /// leaves the order unspecified (e.g. provider vs peer before any
  /// tie-breaking composition).
  virtual Ordering compare(const Value& lhs, const Value& rhs) const = 0;

  /// Symbolic constraints for the safety analyzer.
  virtual SymbolicSpec symbolic() const = 0;

  /// Factors of a lexical product, in significance order; empty for leaf
  /// algebras. The analyzer applies the composition rule of Section IV-B.
  virtual std::vector<const RoutingAlgebra*> lexical_factors() const {
    return {};
  }

  /// Combined concatenation (+) of Section II: phi when either the import
  /// filter on `label` or the export filter on complement(label) rejects,
  /// otherwise (+)_P. Provided here because the derivation is the same for
  /// every algebra.
  std::optional<Value> combined_extend(const Value& label,
                                       const Value& sig) const;
};

using AlgebraPtr = std::shared_ptr<const RoutingAlgebra>;

}  // namespace fsr::algebra

#endif  // FSR_ALGEBRA_ALGEBRA_H
