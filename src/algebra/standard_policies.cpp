#include "algebra/standard_policies.h"

#include <string>
#include <vector>

#include "algebra/additive_algebra.h"
#include "algebra/finite_algebra.h"
#include "algebra/lexical_product.h"
#include "util/error.h"

namespace fsr::algebra {
namespace {

// Shared scaffolding for the business-relationship algebras: the three
// labels/signatures, the generation table (route class is determined by
// the link class alone), the export discipline (only customer routes cross
// "up" or "sideways"), and the origination map.
//
// The export table is keyed by the receiver-side label (see the
// orientation note in algebra.h): a route announced towards a provider is
// received over that provider's customer link, hence row 'c' filters P/R.
void add_business_core(FiniteAlgebra::Builder& builder) {
  builder.add_signature("C").add_signature("P").add_signature("R");
  builder.add_label("c", "p");  // reverse of a customer link is a provider
  builder.add_label("r", "r");  // peer links are self-reverse

  for (const std::string sig : {"C", "P", "R"}) {
    builder.set_generation("c", sig, "C");  // route via customer is C
    builder.set_generation("r", sig, "R");  // route via peer is R
    builder.set_generation("p", sig, "P");  // route via provider is P
  }
  // Export: customer routes go everywhere; peer/provider routes reach
  // customers only. Rows 'c' and 'r' are announcements towards providers
  // and peers respectively (receiver-side view), row 'p' towards customers.
  for (const std::string sig : {"P", "R"}) {
    builder.set_export("c", sig, false);
    builder.set_export("r", sig, false);
  }
  builder.set_origination("c", "C");
  builder.set_origination("r", "R");
  builder.set_origination("p", "P");
}

}  // namespace

AlgebraPtr gao_rexford_guideline_a() {
  FiniteAlgebra::Builder builder("gao-rexford-A");
  add_business_core(builder);
  builder.prefer("C", PrefRel::strictly_better, "P", "guideline A: C < P");
  builder.prefer("C", PrefRel::strictly_better, "R", "guideline A: C < R");
  builder.prefer("P", PrefRel::equal, "R", "guideline A: P = R");
  return builder.build();
}

AlgebraPtr gao_rexford_guideline_b() {
  FiniteAlgebra::Builder builder("gao-rexford-B");
  add_business_core(builder);
  builder.prefer("C", PrefRel::strictly_better, "R", "guideline B: C < R");
  builder.prefer("R", PrefRel::strictly_better, "P", "guideline B: R < P");
  return builder.build();
}

AlgebraPtr backup_routing() {
  FiniteAlgebra::Builder builder("backup-routing");
  builder.add_signature("C").add_signature("P").add_signature("R");
  builder.add_signature("B");  // traversed a backup link
  builder.add_label("c", "p");
  builder.add_label("r", "r");
  builder.add_label("b", "b");  // backup links are self-reverse

  for (const std::string sig : {"C", "P", "R", "B"}) {
    if (sig != "B") {
      builder.set_generation("c", sig, "C");
      builder.set_generation("r", sig, "R");
      builder.set_generation("p", sig, "P");
    } else {
      // Once a backup route, always a backup route.
      builder.set_generation("c", sig, "B");
      builder.set_generation("r", sig, "B");
      builder.set_generation("p", sig, "B");
    }
    builder.set_generation("b", sig, "B");  // crossing a backup link degrades
  }
  for (const std::string sig : {"P", "R"}) {
    builder.set_export("c", sig, false);
    builder.set_export("r", sig, false);
  }
  // Backup routes may be exported anywhere: that is their purpose.
  builder.prefer("C", PrefRel::strictly_better, "P");
  builder.prefer("C", PrefRel::strictly_better, "R");
  builder.prefer("P", PrefRel::equal, "R");
  builder.prefer("P", PrefRel::strictly_better, "B", "primary < backup");
  builder.set_origination("c", "C");
  builder.set_origination("r", "R");
  builder.set_origination("p", "P");
  builder.set_origination("b", "B");
  return builder.build();
}

AlgebraPtr bandwidth_classes(const std::set<std::int64_t>& classes_mbps) {
  if (classes_mbps.empty()) {
    throw InvalidArgument("bandwidth_classes needs at least one class");
  }
  FiniteAlgebra::Builder builder("bandwidth-classes");
  const auto class_name = [](std::int64_t mbps) {
    return "bw" + std::to_string(mbps);
  };
  std::vector<std::int64_t> ordered(classes_mbps.begin(), classes_mbps.end());
  for (const std::int64_t mbps : ordered) {
    builder.add_signature(class_name(mbps));
    builder.add_label(class_name(mbps), class_name(mbps));
  }
  // Higher bandwidth is better: bw_hi < bw_lo in preference order.
  for (std::size_t i = 0; i + 1 < ordered.size(); ++i) {
    builder.prefer(class_name(ordered[i + 1]), PrefRel::strictly_better,
                   class_name(ordered[i]),
                   "wider is better: " + class_name(ordered[i + 1]) + " < " +
                       class_name(ordered[i]));
  }
  // Extension: the bottleneck bandwidth, min(link, route).
  for (const std::int64_t link : ordered) {
    for (const std::int64_t route : ordered) {
      builder.set_generation(class_name(link), class_name(route),
                             class_name(std::min(link, route)));
    }
    builder.set_origination(class_name(link), class_name(link));
  }
  return builder.build();
}

AlgebraPtr widest_shortest(const std::set<std::int64_t>& classes_mbps) {
  return lexical_product(bandwidth_classes(classes_mbps),
                         shortest_hop_count());
}

AlgebraPtr gao_rexford_with_hop_count() {
  return lexical_product(gao_rexford_guideline_a(), shortest_hop_count());
}

}  // namespace fsr::algebra
