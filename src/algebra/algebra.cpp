#include "algebra/algebra.h"

namespace fsr::algebra {

std::optional<Value> RoutingAlgebra::combined_extend(const Value& label,
                                                     const Value& sig) const {
  // `label` is the receiver-side label of the link the route crosses. Both
  // filters are keyed by it (see the orientation note on export_allows):
  // the import filter is the receiver's own, and the export filter row for
  // a receiver-side label describes what the sender may announce over the
  // reverse link. A rejection by either yields phi (std::nullopt).
  if (!import_allows(label, sig)) return std::nullopt;
  if (!export_allows(label, sig)) return std::nullopt;
  return extend(label, sig);
}

}  // namespace fsr::algebra
