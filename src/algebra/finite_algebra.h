// Finite table-driven routing algebras.
//
// A FiniteAlgebra enumerates its signatures and labels explicitly and
// defines the three concatenation operators and the preference relation by
// tables — the representation used for the Gao-Rexford guidelines, backup
// routing, bandwidth classes, and SPP-derived instances. Build one through
// FiniteAlgebra::Builder:
//
//   FiniteAlgebra::Builder b("gao-rexford-A");
//   b.add_signature("C"); b.add_signature("P"); b.add_signature("R");
//   b.add_label("c", "p");   // customer link; reverse is a provider link
//   b.add_label("r", "r");   // peer links are their own reverse
//   b.prefer("C", PrefRel::strictly_better, "P", "guideline A");
//   b.set_generation("c", "C", "C");  // c (+)P C = C
//   b.set_export("c", "P", false);    // provider may not re-export P
//   b.set_origination("c", "C");
//   AlgebraPtr a = b.build();
//
// Unspecified generation entries are phi (prohibited); unspecified filter
// entries default to allow, mirroring the paper's presentation where only
// the filtering rows are written down.
#ifndef FSR_ALGEBRA_FINITE_ALGEBRA_H
#define FSR_ALGEBRA_FINITE_ALGEBRA_H

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "algebra/algebra.h"

namespace fsr::algebra {

class FiniteAlgebra final : public RoutingAlgebra {
 public:
  class Builder;

  const std::string& name() const noexcept override { return name_; }

  bool import_allows(const Value& label, const Value& sig) const override;
  bool export_allows(const Value& label, const Value& sig) const override;
  std::optional<Value> extend(const Value& label,
                              const Value& sig) const override;
  Value complement(const Value& label) const override;
  std::optional<Value> originate(const Value& label) const override;
  Ordering compare(const Value& lhs, const Value& rhs) const override;
  SymbolicSpec symbolic() const override;

  const std::set<std::string>& signatures() const noexcept {
    return signatures_;
  }
  const std::set<std::string>& labels() const noexcept { return labels_; }

  /// True when the declared preferences are free of strict cycles, i.e.
  /// compare() is usable. An algebra with cyclic preferences can still be
  /// analyzed symbolically (the solver reports the cycle as an unsat core)
  /// but cannot drive a protocol execution.
  bool has_consistent_preferences() const noexcept {
    return preferences_consistent_;
  }

 private:
  friend class Builder;
  FiniteAlgebra() = default;

  using TableKey = std::pair<std::string, std::string>;  // (label, sig)

  void index_of_or_throw(const std::string& sig) const;
  void compute_preference_closure();

  std::string name_;
  std::set<std::string> signatures_;
  std::set<std::string> labels_;
  std::map<std::string, std::string> complements_;
  std::map<TableKey, std::string> generation_;       // (+)_P, absent = phi
  std::map<TableKey, bool> import_;                  // absent = allow
  std::map<TableKey, bool> export_;                  // absent = allow
  std::map<std::string, std::string> origination_;   // label -> signature
  std::vector<SymbolicSpec::Preference> preferences_;

  // Preference closure: for each ordered signature pair, whether lhs is
  // reachable from rhs ("weak") and whether some step is strict.
  std::map<std::string, std::size_t> sig_index_;
  std::vector<std::vector<bool>> reach_weak_;
  std::vector<std::vector<bool>> reach_strict_;
  bool preferences_consistent_ = true;
};

class FiniteAlgebra::Builder {
 public:
  explicit Builder(std::string name);

  Builder& add_signature(const std::string& sig);
  /// Declares a label and its reverse-link label (both are registered).
  Builder& add_label(const std::string& label, const std::string& reverse);

  Builder& prefer(const std::string& lhs, PrefRel rel, const std::string& rhs,
                  std::string provenance = {});

  /// label (+)_P sig = result. Unset entries are phi.
  Builder& set_generation(const std::string& label, const std::string& sig,
                          const std::string& result);
  /// Import filter entry; unset entries allow.
  Builder& set_import(const std::string& label, const std::string& sig,
                      bool allow);
  /// Export filter entry, keyed by the receiver-side label; unset allow.
  Builder& set_export(const std::string& label, const std::string& sig,
                      bool allow);
  /// Signature of a one-hop path over `label`.
  Builder& set_origination(const std::string& label, const std::string& sig);

  /// Validates and produces the immutable algebra. Throws
  /// fsr::InvalidArgument on undeclared names or missing complements.
  AlgebraPtr build();

 private:
  void require_signature(const std::string& sig) const;
  void require_label(const std::string& label) const;

  FiniteAlgebra algebra_;
  bool built_ = false;
};

}  // namespace fsr::algebra

#endif  // FSR_ALGEBRA_FINITE_ALGEBRA_H
