#include "algebra/finite_algebra.h"

#include <memory>

#include "util/error.h"

namespace fsr::algebra {

// ------------------------------------------------------------- queries --

bool FiniteAlgebra::import_allows(const Value& label, const Value& sig) const {
  const auto it = import_.find({label.as_atom(), sig.as_atom()});
  return it == import_.end() ? true : it->second;
}

bool FiniteAlgebra::export_allows(const Value& label, const Value& sig) const {
  const auto it = export_.find({label.as_atom(), sig.as_atom()});
  return it == export_.end() ? true : it->second;
}

std::optional<Value> FiniteAlgebra::extend(const Value& label,
                                           const Value& sig) const {
  const auto it = generation_.find({label.as_atom(), sig.as_atom()});
  if (it == generation_.end()) return std::nullopt;
  return Value::atom(it->second);
}

Value FiniteAlgebra::complement(const Value& label) const {
  const auto it = complements_.find(label.as_atom());
  if (it == complements_.end()) {
    throw InvalidArgument("algebra '" + name_ + "' has no complement for '" +
                          label.as_atom() + "'");
  }
  return Value::atom(it->second);
}

std::optional<Value> FiniteAlgebra::originate(const Value& label) const {
  const auto it = origination_.find(label.as_atom());
  if (it == origination_.end()) return std::nullopt;
  return Value::atom(it->second);
}

void FiniteAlgebra::index_of_or_throw(const std::string& sig) const {
  if (!sig_index_.contains(sig)) {
    throw InvalidArgument("algebra '" + name_ + "' has no signature '" + sig +
                          "'");
  }
}

Ordering FiniteAlgebra::compare(const Value& lhs, const Value& rhs) const {
  if (!preferences_consistent_) {
    throw InvalidArgument(
        "algebra '" + name_ +
        "' has cyclic preferences; compare() is undefined (the safety "
        "analyzer can still process the algebra symbolically)");
  }
  const std::string& a = lhs.as_atom();
  const std::string& b = rhs.as_atom();
  index_of_or_throw(a);
  index_of_or_throw(b);
  const std::size_t i = sig_index_.at(a);
  const std::size_t j = sig_index_.at(b);
  if (i == j) return Ordering::equal;
  const bool ab_strict = reach_strict_[i][j];
  const bool ba_strict = reach_strict_[j][i];
  const bool ab_weak = reach_weak_[i][j];
  const bool ba_weak = reach_weak_[j][i];
  if (ab_strict) return Ordering::better;
  if (ba_strict) return Ordering::worse;
  if (ab_weak && ba_weak) return Ordering::equal;  // mutual weak: same class
  if (ab_weak) return Ordering::better;  // documented: one-way weak resolves
  if (ba_weak) return Ordering::worse;   // in the weak edge's direction
  return Ordering::incomparable;
}

SymbolicSpec FiniteAlgebra::symbolic() const {
  SymbolicSpec spec;
  spec.algebra_name = name_;
  spec.signatures.assign(signatures_.begin(), signatures_.end());
  spec.preferences = preferences_;
  // Combined (+) entries: phi rows are skipped (s strictly-precedes phi by
  // definition, so they impose no constraint; Section IV-C).
  for (const std::string& label : labels_) {
    for (const std::string& sig : signatures_) {
      const Value l = Value::atom(label);
      const Value s = Value::atom(sig);
      const std::optional<Value> extended = combined_extend(l, s);
      if (!extended.has_value()) continue;
      spec.extensions.push_back(SymbolicSpec::Extension{
          label, sig, extended->as_atom(),
          label + " (+) " + sig + " = " + extended->as_atom()});
    }
  }
  return spec;
}

// Computes reachability over the declared preference constraints:
// reach_weak[i][j]  = sig_i is at least as preferred as sig_j (derivable);
// reach_strict[i][j]= derivation uses at least one strict step.
// Equal constraints contribute edges in both directions.
void FiniteAlgebra::compute_preference_closure() {
  std::size_t n = 0;
  for (const std::string& sig : signatures_) sig_index_[sig] = n++;

  reach_weak_.assign(n, std::vector<bool>(n, false));
  reach_strict_.assign(n, std::vector<bool>(n, false));
  for (std::size_t i = 0; i < n; ++i) reach_weak_[i][i] = true;

  for (const auto& pref : preferences_) {
    const std::size_t i = sig_index_.at(pref.lhs);
    const std::size_t j = sig_index_.at(pref.rhs);
    switch (pref.rel) {
      case PrefRel::strictly_better:
        reach_weak_[i][j] = true;
        reach_strict_[i][j] = true;
        break;
      case PrefRel::better_or_equal:
        reach_weak_[i][j] = true;
        break;
      case PrefRel::equal:
        reach_weak_[i][j] = true;
        reach_weak_[j][i] = true;
        break;
    }
  }

  // Floyd-Warshall-style closure tracking strictness.
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      if (!reach_weak_[i][k]) continue;
      for (std::size_t j = 0; j < n; ++j) {
        if (!reach_weak_[k][j]) continue;
        reach_weak_[i][j] = true;
        if (reach_strict_[i][k] || reach_strict_[k][j]) {
          reach_strict_[i][j] = true;
        }
      }
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (reach_strict_[i][i]) {
      preferences_consistent_ = false;
      return;
    }
  }
}

// -------------------------------------------------------------- builder --

FiniteAlgebra::Builder::Builder(std::string name) {
  if (name.empty()) throw InvalidArgument("algebra name must be non-empty");
  algebra_.name_ = std::move(name);
}

void FiniteAlgebra::Builder::require_signature(const std::string& sig) const {
  if (!algebra_.signatures_.contains(sig)) {
    throw InvalidArgument("algebra '" + algebra_.name_ +
                          "': undeclared signature '" + sig + "'");
  }
}

void FiniteAlgebra::Builder::require_label(const std::string& label) const {
  if (!algebra_.labels_.contains(label)) {
    throw InvalidArgument("algebra '" + algebra_.name_ +
                          "': undeclared label '" + label + "'");
  }
}

FiniteAlgebra::Builder& FiniteAlgebra::Builder::add_signature(
    const std::string& sig) {
  if (sig.empty()) throw InvalidArgument("signature name must be non-empty");
  algebra_.signatures_.insert(sig);
  return *this;
}

FiniteAlgebra::Builder& FiniteAlgebra::Builder::add_label(
    const std::string& label, const std::string& reverse) {
  if (label.empty() || reverse.empty()) {
    throw InvalidArgument("label names must be non-empty");
  }
  algebra_.labels_.insert(label);
  algebra_.labels_.insert(reverse);
  algebra_.complements_[label] = reverse;
  algebra_.complements_[reverse] = label;
  return *this;
}

FiniteAlgebra::Builder& FiniteAlgebra::Builder::prefer(
    const std::string& lhs, PrefRel rel, const std::string& rhs,
    std::string provenance) {
  require_signature(lhs);
  require_signature(rhs);
  if (provenance.empty()) {
    const char* symbol = rel == PrefRel::strictly_better ? " < "
                         : rel == PrefRel::equal         ? " = "
                                                         : " <= ";
    provenance = lhs + symbol + rhs;
  }
  algebra_.preferences_.push_back(
      SymbolicSpec::Preference{lhs, rel, rhs, std::move(provenance)});
  return *this;
}

FiniteAlgebra::Builder& FiniteAlgebra::Builder::set_generation(
    const std::string& label, const std::string& sig,
    const std::string& result) {
  require_label(label);
  require_signature(sig);
  require_signature(result);
  algebra_.generation_[{label, sig}] = result;
  return *this;
}

FiniteAlgebra::Builder& FiniteAlgebra::Builder::set_import(
    const std::string& label, const std::string& sig, bool allow) {
  require_label(label);
  require_signature(sig);
  algebra_.import_[{label, sig}] = allow;
  return *this;
}

FiniteAlgebra::Builder& FiniteAlgebra::Builder::set_export(
    const std::string& label, const std::string& sig, bool allow) {
  require_label(label);
  require_signature(sig);
  algebra_.export_[{label, sig}] = allow;
  return *this;
}

FiniteAlgebra::Builder& FiniteAlgebra::Builder::set_origination(
    const std::string& label, const std::string& sig) {
  require_label(label);
  require_signature(sig);
  algebra_.origination_[label] = sig;
  return *this;
}

AlgebraPtr FiniteAlgebra::Builder::build() {
  if (built_) throw InvalidArgument("Builder::build called twice");
  built_ = true;
  algebra_.compute_preference_closure();
  return std::shared_ptr<const FiniteAlgebra>(
      new FiniteAlgebra(std::move(algebra_)));
}

}  // namespace fsr::algebra
