// Closed-form additive algebras: shortest hop-count and IGP-cost routing.
//
// Signatures are positive integers (path costs), labels are integer link
// weights, (+)_P is integer addition and lower is better. There are no
// filters. Symbolically these algebras contribute the universally
// quantified template the paper shows for hop-count:
//
//   (assert (forall (s::Sig) (< s (+ s 1))))
//
// one instance per distinct declared label weight, so strict monotonicity
// holds exactly when every weight is positive.
#ifndef FSR_ALGEBRA_ADDITIVE_ALGEBRA_H
#define FSR_ALGEBRA_ADDITIVE_ALGEBRA_H

#include <set>
#include <string>

#include "algebra/algebra.h"

namespace fsr::algebra {

class AdditiveAlgebra final : public RoutingAlgebra {
 public:
  /// `label_weights` is the set of link weights that may appear in a
  /// deployment; hop-count routing is AdditiveAlgebra("hop-count", {1}).
  AdditiveAlgebra(std::string name, std::set<std::int64_t> label_weights);

  const std::string& name() const noexcept override { return name_; }

  bool import_allows(const Value& label, const Value& sig) const override;
  bool export_allows(const Value& label, const Value& sig) const override;
  std::optional<Value> extend(const Value& label,
                              const Value& sig) const override;
  Value complement(const Value& label) const override;
  std::optional<Value> originate(const Value& label) const override;
  Ordering compare(const Value& lhs, const Value& rhs) const override;
  SymbolicSpec symbolic() const override;

  const std::set<std::int64_t>& label_weights() const noexcept {
    return weights_;
  }

 private:
  std::string name_;
  std::set<std::int64_t> weights_;
};

/// Shortest hop-count routing (Section II-A's running example).
AlgebraPtr shortest_hop_count();

/// IGP-cost routing over the given set of link weights.
AlgebraPtr igp_cost(std::set<std::int64_t> weights);

}  // namespace fsr::algebra

#endif  // FSR_ALGEBRA_ADDITIVE_ALGEBRA_H
