#include "algebra/additive_algebra.h"

#include <memory>

#include "util/error.h"

namespace fsr::algebra {

AdditiveAlgebra::AdditiveAlgebra(std::string name,
                                 std::set<std::int64_t> label_weights)
    : name_(std::move(name)), weights_(std::move(label_weights)) {
  if (name_.empty()) throw InvalidArgument("algebra name must be non-empty");
  if (weights_.empty()) {
    throw InvalidArgument("additive algebra '" + name_ +
                          "' needs at least one label weight");
  }
}

bool AdditiveAlgebra::import_allows(const Value&, const Value&) const {
  return true;  // no filtering in cost-based routing
}

bool AdditiveAlgebra::export_allows(const Value&, const Value&) const {
  return true;
}

std::optional<Value> AdditiveAlgebra::extend(const Value& label,
                                             const Value& sig) const {
  return Value::integer(label.as_integer() + sig.as_integer());
}

Value AdditiveAlgebra::complement(const Value& label) const {
  return label;  // links are cost-symmetric in these policies
}

std::optional<Value> AdditiveAlgebra::originate(const Value& label) const {
  return Value::integer(label.as_integer());
}

Ordering AdditiveAlgebra::compare(const Value& lhs, const Value& rhs) const {
  const std::int64_t a = lhs.as_integer();
  const std::int64_t b = rhs.as_integer();
  if (a < b) return Ordering::better;
  if (a > b) return Ordering::worse;
  return Ordering::equal;
}

SymbolicSpec AdditiveAlgebra::symbolic() const {
  SymbolicSpec spec;
  spec.algebra_name = name_;
  for (const std::int64_t w : weights_) {
    spec.additive_templates.push_back(SymbolicSpec::AdditiveTemplate{
        w, "forall s: s REL s + " + std::to_string(w) + "  [" + name_ + "]"});
  }
  return spec;
}

AlgebraPtr shortest_hop_count() {
  return std::make_shared<AdditiveAlgebra>("hop-count",
                                           std::set<std::int64_t>{1});
}

AlgebraPtr igp_cost(std::set<std::int64_t> weights) {
  return std::make_shared<AdditiveAlgebra>("igp-cost", std::move(weights));
}

}  // namespace fsr::algebra
