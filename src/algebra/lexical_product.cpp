#include "algebra/lexical_product.h"

#include <memory>

#include "util/error.h"

namespace fsr::algebra {

LexicalProduct::LexicalProduct(AlgebraPtr primary, AlgebraPtr tiebreak)
    : primary_(std::move(primary)), tiebreak_(std::move(tiebreak)) {
  if (primary_ == nullptr || tiebreak_ == nullptr) {
    throw InvalidArgument("lexical product factors must be non-null");
  }
  name_ = primary_->name() + " (x) " + tiebreak_->name();
}

bool LexicalProduct::import_allows(const Value& label,
                                   const Value& sig) const {
  return primary_->import_allows(label.first(), sig.first()) &&
         tiebreak_->import_allows(label.second(), sig.second());
}

bool LexicalProduct::export_allows(const Value& label,
                                   const Value& sig) const {
  return primary_->export_allows(label.first(), sig.first()) &&
         tiebreak_->export_allows(label.second(), sig.second());
}

std::optional<Value> LexicalProduct::extend(const Value& label,
                                            const Value& sig) const {
  auto first = primary_->extend(label.first(), sig.first());
  if (!first.has_value()) return std::nullopt;
  auto second = tiebreak_->extend(label.second(), sig.second());
  if (!second.has_value()) return std::nullopt;
  return Value::pair(std::move(*first), std::move(*second));
}

Value LexicalProduct::complement(const Value& label) const {
  return Value::pair(primary_->complement(label.first()),
                     tiebreak_->complement(label.second()));
}

std::optional<Value> LexicalProduct::originate(const Value& label) const {
  auto first = primary_->originate(label.first());
  if (!first.has_value()) return std::nullopt;
  auto second = tiebreak_->originate(label.second());
  if (!second.has_value()) return std::nullopt;
  return Value::pair(std::move(*first), std::move(*second));
}

Ordering LexicalProduct::compare(const Value& lhs, const Value& rhs) const {
  const Ordering head = primary_->compare(lhs.first(), rhs.first());
  if (head != Ordering::equal) return head;
  return tiebreak_->compare(lhs.second(), rhs.second());
}

SymbolicSpec LexicalProduct::symbolic() const {
  // The analyzer never encodes a product directly; it decomposes through
  // lexical_factors() and applies the composition rule. The spec carries
  // the name only, so misuse is detectable.
  SymbolicSpec spec;
  spec.algebra_name = name_;
  return spec;
}

std::vector<const RoutingAlgebra*> LexicalProduct::lexical_factors() const {
  // Flatten nested products so A (x) (B (x) C) analyzes as [A, B, C].
  std::vector<const RoutingAlgebra*> factors;
  for (const RoutingAlgebra* algebra :
       {primary_.get(), tiebreak_.get()}) {
    const auto nested = algebra->lexical_factors();
    if (nested.empty()) {
      factors.push_back(algebra);
    } else {
      factors.insert(factors.end(), nested.begin(), nested.end());
    }
  }
  return factors;
}

AlgebraPtr lexical_product(AlgebraPtr primary, AlgebraPtr tiebreak) {
  return std::make_shared<LexicalProduct>(std::move(primary),
                                          std::move(tiebreak));
}

}  // namespace fsr::algebra
