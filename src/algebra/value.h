// Runtime values for routing-algebra semantics.
//
// A signature or label is, at run time, one of:
//   * an integer        (closed-form algebras: hop counts, IGP costs)
//   * an atom           (finite algebras: "C", "P", "R", or SPP path names)
//   * a pair            (lexical products compose values component-wise)
// The prohibited-path signature phi is deliberately NOT a Value: operations
// that can prohibit a path return std::optional<Value>, with std::nullopt
// playing the role of phi. This makes "forgot to handle phi" a compile
// error rather than a silent bug.
#ifndef FSR_ALGEBRA_VALUE_H
#define FSR_ALGEBRA_VALUE_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace fsr::algebra {

enum class ValueKind { integer, atom, pair };

class Value {
 public:
  /// Default-constructs the integer 0 (needed for map/optional storage).
  Value() = default;

  static Value integer(std::int64_t v) {
    Value out;
    out.kind_ = ValueKind::integer;
    out.integer_ = v;
    return out;
  }

  static Value atom(std::string name) {
    Value out;
    out.kind_ = ValueKind::atom;
    out.atom_ = std::move(name);
    return out;
  }

  static Value pair(Value first, Value second) {
    Value out;
    out.kind_ = ValueKind::pair;
    out.children_.reserve(2);
    out.children_.push_back(std::move(first));
    out.children_.push_back(std::move(second));
    return out;
  }

  ValueKind kind() const noexcept { return kind_; }
  bool is_integer() const noexcept { return kind_ == ValueKind::integer; }
  bool is_atom() const noexcept { return kind_ == ValueKind::atom; }
  bool is_pair() const noexcept { return kind_ == ValueKind::pair; }

  /// Requires is_integer().
  std::int64_t as_integer() const;
  /// Requires is_atom().
  const std::string& as_atom() const;
  /// Require is_pair().
  const Value& first() const;
  const Value& second() const;

  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }
  /// Structural ordering; used only for deterministic container keys, not
  /// for route preference (which is the algebra's job).
  bool operator<(const Value& other) const;

  std::string to_string() const;

 private:
  ValueKind kind_ = ValueKind::integer;
  std::int64_t integer_ = 0;
  std::string atom_;
  std::vector<Value> children_;
};

}  // namespace fsr::algebra

#endif  // FSR_ALGEBRA_VALUE_H
