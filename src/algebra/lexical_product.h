// Lexical product of routing algebras (Section II-A).
//
// A (x) B ranks routes by A first and breaks ties with B. Labels and
// signatures are pairs; every operator acts component-wise; a path is
// prohibited as soon as either component prohibits it. The safety analyzer
// exploits the composition theorem of Section IV-B: A strictly monotone =>
// safe; A monotone and B strictly monotone => safe.
#ifndef FSR_ALGEBRA_LEXICAL_PRODUCT_H
#define FSR_ALGEBRA_LEXICAL_PRODUCT_H

#include <string>

#include "algebra/algebra.h"

namespace fsr::algebra {

class LexicalProduct final : public RoutingAlgebra {
 public:
  LexicalProduct(AlgebraPtr primary, AlgebraPtr tiebreak);

  const std::string& name() const noexcept override { return name_; }

  bool import_allows(const Value& label, const Value& sig) const override;
  bool export_allows(const Value& label, const Value& sig) const override;
  std::optional<Value> extend(const Value& label,
                              const Value& sig) const override;
  Value complement(const Value& label) const override;
  std::optional<Value> originate(const Value& label) const override;
  Ordering compare(const Value& lhs, const Value& rhs) const override;
  SymbolicSpec symbolic() const override;
  std::vector<const RoutingAlgebra*> lexical_factors() const override;

  const RoutingAlgebra& primary() const noexcept { return *primary_; }
  const RoutingAlgebra& tiebreak() const noexcept { return *tiebreak_; }

 private:
  AlgebraPtr primary_;
  AlgebraPtr tiebreak_;
  std::string name_;
};

/// Convenience factory: A (x) B.
AlgebraPtr lexical_product(AlgebraPtr primary, AlgebraPtr tiebreak);

}  // namespace fsr::algebra

#endif  // FSR_ALGEBRA_LEXICAL_PRODUCT_H
