#include "algebra/value.h"

#include <tuple>

#include "util/error.h"

namespace fsr::algebra {

std::int64_t Value::as_integer() const {
  if (!is_integer()) {
    throw InvalidArgument("value " + to_string() + " is not an integer");
  }
  return integer_;
}

const std::string& Value::as_atom() const {
  if (!is_atom()) {
    throw InvalidArgument("value " + to_string() + " is not an atom");
  }
  return atom_;
}

const Value& Value::first() const {
  if (!is_pair()) {
    throw InvalidArgument("value " + to_string() + " is not a pair");
  }
  return children_[0];
}

const Value& Value::second() const {
  if (!is_pair()) {
    throw InvalidArgument("value " + to_string() + " is not a pair");
  }
  return children_[1];
}

bool Value::operator==(const Value& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case ValueKind::integer:
      return integer_ == other.integer_;
    case ValueKind::atom:
      return atom_ == other.atom_;
    case ValueKind::pair:
      return children_ == other.children_;
  }
  return false;
}

bool Value::operator<(const Value& other) const {
  if (kind_ != other.kind_) return kind_ < other.kind_;
  switch (kind_) {
    case ValueKind::integer:
      return integer_ < other.integer_;
    case ValueKind::atom:
      return atom_ < other.atom_;
    case ValueKind::pair:
      return children_ < other.children_;
  }
  return false;
}

std::string Value::to_string() const {
  switch (kind_) {
    case ValueKind::integer:
      return std::to_string(integer_);
    case ValueKind::atom:
      return atom_;
    case ValueKind::pair:
      return "(" + children_[0].to_string() + ", " + children_[1].to_string() +
             ")";
  }
  return "?";
}

}  // namespace fsr::algebra
