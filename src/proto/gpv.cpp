#include "proto/gpv.h"

namespace fsr::proto {

std::string gpv_source() {
  return R"(
// Generalized Path Vector (GPV) - FSR's default routing mechanism.
materialize(label, keys(1,2)).
materialize(sig, keys(1,2,3)).
materialize(route, keys(1,2,3,4)).
materialize(localOpt, keys(1,2)).

// Receiving routes: extend the advertised path, apply the import policy.
gpvRecv sig(@U,SNew,PNew) :- msg(@U,V,D,S,P), V=f_head(P),
    f_member(P,U)=false, label(@U,V,L), f_import(L,S)=true,
    SNew=f_concatSig(L,S), PNew=f_concatPath(U,P).

// Storing routes: the candidate route table.
gpvStore route(@U,D,S,P) :- sig(@U,S,P), D=f_last(P).

// Selecting routes: the best candidate per destination under f_pref.
gpvSelect localOpt(@U,D,a_pref<S>,P) :- route(@U,D,S,P).

// Sending routes: re-advertise the local optimum, applying export policy.
gpvSend msg(@N,U,D,S,P) :- localOpt(@U,D,S,P), label(@U,N,L),
    f_export(L,S)=true.
)";
}

ndlog::Program gpv_program() { return ndlog::parse_program(gpv_source()); }

}  // namespace fsr::proto
