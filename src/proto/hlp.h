// HLP — Hybrid Link-state / Path-vector (Subramanian et al.), the
// alternative routing mechanism of the paper's Section VI-D (Figure 6).
//
// HLP partitions the ASes into customer-provider hierarchies ("domains")
// and hides internal paths when routes cross domain boundaries: the
// fragmented path-vector carries one marker per traversed domain instead
// of every internal hop. With cost hiding (HLP-CH), advertised costs are
// quantised to a threshold, so small internal cost changes produce
// byte-identical advertisements that the batching layer cancels.
//
// Our NDlog rendering (8 rules) keeps the two properties Figure 6
// measures — smaller inter-domain updates and less cross-domain churn —
// while modelling intra-domain propagation as a cost vector (the paper's
// own implementation is 10-11 rules; see DESIGN.md for the substitution
// note).
//
// Policy/topology-specific functions (registered by fsr::emulate_hlp):
//   f_hlpHide(P, Dom)  -- fragment a path: own-domain marker + the
//                         markers already present + the destination;
//   f_hideCost(C)      -- quantise C down to the hiding threshold
//                         (identity when the threshold is 0).
#ifndef FSR_PROTO_HLP_H
#define FSR_PROTO_HLP_H

#include <string>

#include "ndlog/parser.h"

namespace fsr::proto {

std::string hlp_source();
ndlog::Program hlp_program();

}  // namespace fsr::proto

#endif  // FSR_PROTO_HLP_H
