// Reference path-vector computation, independent of the NDlog stack.
//
// Used to validate the generated implementation (paper Theorem 5.1 and
// Appendix A): after an emulation converges, every stored signature must
// equal sigma(p) — the label-fold of the path under the algebra — and,
// for safe (strictly monotone) configurations, the selected routes must
// match the synchronous fixpoint computed here.
#ifndef FSR_PROTO_REFERENCE_PV_H
#define FSR_PROTO_REFERENCE_PV_H

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "algebra/algebra.h"
#include "topology/topology.h"

namespace fsr::proto {

/// sigma(p): the signature of a concrete path under `algebra`, i.e. the
/// origination signature of its final hop extended through each link's
/// combined operator (import + export + generation). Returns std::nullopt
/// when any step is prohibited (phi) or a label is missing.
std::optional<algebra::Value> path_signature(
    const algebra::RoutingAlgebra& algebra,
    const topology::Topology& topology,
    const std::vector<std::string>& path);

struct ReferenceRoute {
  algebra::Value signature;
  std::vector<std::string> path;
};

struct ReferenceResult {
  bool converged = false;
  std::int32_t rounds = 0;
  std::map<std::string, ReferenceRoute> best;  // node -> selected route
};

/// Synchronous path-vector fixpoint: every round, every node re-selects
/// its best extension of its neighbours' current routes (ties broken
/// structurally, matching the NDlog aggregate's determinism). Converges
/// within ~|V| rounds for strictly monotone algebras; `max_rounds` cuts
/// off disputes.
ReferenceResult compute_reference_routes(
    const algebra::RoutingAlgebra& algebra,
    const topology::Topology& topology, std::int32_t max_rounds = 0);

}  // namespace fsr::proto

#endif  // FSR_PROTO_REFERENCE_PV_H
