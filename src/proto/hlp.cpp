#include "proto/hlp.h"

namespace fsr::proto {

std::string hlp_source() {
  return R"(
// HLP: link-state style propagation inside a domain, fragmented
// path-vector across domains, optional cost hiding.
materialize(link, keys(1,2)).
materialize(domain, keys(1)).
materialize(sig, keys(1,2,3)).
materialize(route, keys(1,2,3,4)).
materialize(localOpt, keys(1,2)).

// Receive over an intra-domain link: plain cost-vector extension.
hlpRecvIntra sig(@U,CNew,PNew) :- msg(@U,V,D,C,P), f_member(P,U)=false,
    link(@U,V,LC,intra), CNew=f_add(C,LC), PNew=f_concatPath(U,P).

// Receive over an inter-domain link: additionally reject routes that
// already traversed this domain (fragment-level loop prevention).
hlpRecvInter sig(@U,CNew,PNew) :- msg(@U,V,D,C,P), f_member(P,U)=false,
    link(@U,V,LC,inter), domain(@U,Dom), f_member(P,Dom)=false,
    CNew=f_add(C,LC), PNew=f_concatPath(U,P).

hlpStore route(@U,D,C,P) :- sig(@U,C,P), D=f_last(P).

hlpSelect localOpt(@U,D,a_min<C>,P) :- route(@U,D,C,P).

// Within the domain the full path travels.
hlpSendIntra msg(@N,U,D,C,P) :- localOpt(@U,D,C,P), link(@U,N,LC,intra).

// Across domains the path is fragmented and the cost optionally hidden.
hlpSendInter msg(@N,U,D,CH,PH) :- localOpt(@U,D,C,P), link(@U,N,LC,inter),
    domain(@U,Dom), PH=f_hlpHide(P,Dom), CH=f_hideCost(C).
)";
}

ndlog::Program hlp_program() { return ndlog::parse_program(hlp_source()); }

}  // namespace fsr::proto
