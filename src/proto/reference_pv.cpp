#include "proto/reference_pv.h"

#include <algorithm>
#include <map>

#include "util/error.h"

namespace fsr::proto {
namespace {

/// Label at `from` for its link towards `to`, if the link exists.
std::optional<algebra::Value> label_of(const topology::Topology& topology,
                                       const std::string& from,
                                       const std::string& to) {
  for (const topology::TopoLink& link : topology.links) {
    if (link.u == from && link.v == to) return link.label_uv;
    if (link.v == from && link.u == to) return link.label_vu;
  }
  return std::nullopt;
}

/// Structural comparison mirroring the NDlog aggregate's deterministic
/// tie-break: (signature, path) in value order.
bool structurally_less(const ReferenceRoute& a, const ReferenceRoute& b) {
  if (a.signature != b.signature) return a.signature < b.signature;
  return a.path < b.path;
}

}  // namespace

std::optional<algebra::Value> path_signature(
    const algebra::RoutingAlgebra& algebra,
    const topology::Topology& topology,
    const std::vector<std::string>& path) {
  if (path.size() < 2 || path.back() != topology.destination) {
    return std::nullopt;
  }
  // One-hop tail: origination over the penultimate node's label.
  const std::string& origin_node = path[path.size() - 2];
  const auto origin_label = label_of(topology, origin_node, path.back());
  if (!origin_label.has_value()) return std::nullopt;
  std::optional<algebra::Value> sig = algebra.originate(*origin_label);
  // Fold the remaining links back to the path's source.
  for (std::size_t i = path.size() - 2; i-- > 0;) {
    if (!sig.has_value()) return std::nullopt;
    const auto label = label_of(topology, path[i], path[i + 1]);
    if (!label.has_value()) return std::nullopt;
    sig = algebra.combined_extend(*label, *sig);
  }
  return sig;
}

ReferenceResult compute_reference_routes(
    const algebra::RoutingAlgebra& algebra,
    const topology::Topology& topology, std::int32_t max_rounds) {
  if (max_rounds <= 0) {
    max_rounds = static_cast<std::int32_t>(topology.nodes.size()) + 2;
  }
  ReferenceResult result;

  for (std::int32_t round = 0; round < max_rounds; ++round) {
    bool changed = false;
    std::map<std::string, ReferenceRoute> next = result.best;

    for (const std::string& node : topology.nodes) {
      if (node == topology.destination) continue;
      std::optional<ReferenceRoute> best;

      for (const auto& [neighbor, label] :
           topology.labelled_neighbors(node)) {
        std::optional<ReferenceRoute> candidate;
        if (neighbor == topology.destination) {
          const auto orig = algebra.originate(label);
          if (orig.has_value()) {
            candidate =
                ReferenceRoute{*orig, {node, topology.destination}};
          }
        } else {
          const auto it = result.best.find(neighbor);
          if (it == result.best.end()) continue;
          const ReferenceRoute& via = it->second;
          // Loop prevention, as in gpvRecv.
          if (std::find(via.path.begin(), via.path.end(), node) !=
              via.path.end()) {
            continue;
          }
          const auto extended = algebra.combined_extend(label, via.signature);
          if (extended.has_value()) {
            std::vector<std::string> path;
            path.reserve(via.path.size() + 1);
            path.push_back(node);
            path.insert(path.end(), via.path.begin(), via.path.end());
            candidate = ReferenceRoute{*extended, std::move(path)};
          }
        }
        if (!candidate.has_value()) continue;
        if (!best.has_value()) {
          best = std::move(candidate);
          continue;
        }
        const algebra::Ordering order =
            algebra.compare(candidate->signature, best->signature);
        if (order == algebra::Ordering::better ||
            (order != algebra::Ordering::worse &&
             structurally_less(*candidate, *best))) {
          best = std::move(candidate);
        }
      }

      const auto current = result.best.find(node);
      const bool had = current != result.best.end();
      if (best.has_value() != had ||
          (best.has_value() && had &&
           (best->signature != current->second.signature ||
            best->path != current->second.path))) {
        changed = true;
        if (best.has_value()) {
          next[node] = *best;
        } else {
          next.erase(node);
        }
      }
    }

    result.best = std::move(next);
    result.rounds = round + 1;
    if (!changed) {
      result.converged = true;
      return result;
    }
  }
  result.converged = false;
  return result;
}

}  // namespace fsr::proto
