// The Generalized Path-Vector protocol in NDlog (paper Section V-A).
//
// The program below is the paper's GPV modulo two mechanical adjustments:
//   * body elements are ordered so every variable is bound before use
//     (our engine evaluates bodies left to right; Datalog as printed in
//     the paper is order-free);
//   * the standard loop-prevention test f_member(P,U)=false from the
//     declarative-routing literature is written explicitly in gpvRecv
//     (without it, policies that do not filter loops themselves — e.g.
//     Gao-Rexford over a cyclic AS graph — would count paths forever).
//
// Policy is injected through the four generated functions of Table II:
// f_pref, f_concatSig, f_import, f_export (see fsr::NdlogGenerator).
#ifndef FSR_PROTO_GPV_H
#define FSR_PROTO_GPV_H

#include <string>

#include "ndlog/parser.h"

namespace fsr::proto {

/// The GPV program source text.
std::string gpv_source();

/// Parsed form (parsed once per call; callers typically cache).
ndlog::Program gpv_program();

}  // namespace fsr::proto

#endif  // FSR_PROTO_GPV_H
