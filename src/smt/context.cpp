#include "smt/context.h"

#include <algorithm>
#include <set>

#include "obs/metrics.h"
#include "smt/linear.h"
#include "util/error.h"

namespace fsr::smt {
namespace {

// Floor/ceil division with mathematically correct behaviour for negative
// operands (C++ integer division truncates toward zero).
std::int64_t floor_div(std::int64_t a, std::int64_t b) {
  const std::int64_t q = a / b;
  const std::int64_t r = a % b;
  return (r != 0 && ((r < 0) != (b < 0))) ? q - 1 : q;
}

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return -floor_div(-a, b);
}

// Tag used for type (positivity) constraints; never a valid assertion id.
constexpr std::int64_t k_builtin_tag = -1;

}  // namespace

std::int64_t Model::at(const std::string& name) const {
  const auto it = values.find(name);
  if (it == values.end()) {
    throw InvalidArgument("model has no value for variable '" + name + "'");
  }
  return it->second;
}

void Context::declare_variable(const std::string& name,
                               std::optional<std::int64_t> lower_bound) {
  if (name.empty()) throw InvalidArgument("variable name must be non-empty");
  if (variable_ids_.contains(name)) {
    throw InvalidArgument("variable '" + name + "' is already declared");
  }
  // Index 0 is the implicit zero variable; named variables start at 1.
  const auto index = static_cast<std::int32_t>(variables_.size() + 1);
  variables_.push_back(VariableInfo{name, lower_bound});
  variable_ids_.emplace(name, index);
  ++base_revision_;
}

bool Context::has_variable(const std::string& name) const {
  return variable_ids_.contains(name);
}

std::int32_t Context::variable_index(const std::string& name) const {
  const auto it = variable_ids_.find(name);
  if (it == variable_ids_.end()) {
    throw InvalidArgument("undeclared variable '" + name + "'");
  }
  return it->second;
}

std::size_t Context::index_for(AssertionId id, const char* who) const {
  const auto it = id_to_index_.find(id);
  if (it == id_to_index_.end()) {
    throw InvalidArgument(std::string(who) + ": unknown assertion id");
  }
  return it->second;
}

Context::AssertionInfo& Context::info_for(AssertionId id, const char* who) {
  return assertions_[index_for(id, who)];
}

const Context::AssertionInfo& Context::info_for(AssertionId id,
                                                const char* who) const {
  return assertions_[index_for(id, who)];
}

AssertionId Context::assert_term(const Term& term, std::string label) {
  AssertionInfo info;
  info.id = next_id_;
  info.label = std::move(label);
  info.text = term.to_string();

  if (term.is_relation()) {
    lower_relation(term, info);
  } else if (term.kind() == TermKind::forall_pos) {
    lower_forall(term, info);
  } else {
    throw InvalidArgument("assertion must be a relation or forall: " +
                          info.text);
  }
  ++next_id_;
  id_to_index_.emplace(info.id, assertions_.size());
  if (info.trivially_false) ++active_trivial_count_;
  if (scopes_.empty()) ++base_revision_;  // base-level assert grows the base
  assertions_.push_back(std::move(info));
  return assertions_.back().id;
}

AssertionId Context::assert_less(const std::string& lhs,
                                 const std::string& rhs, std::string label) {
  return assert_term(Term::lt(Term::variable(lhs), Term::variable(rhs)),
                     std::move(label));
}

AssertionId Context::assert_less_equal(const std::string& lhs,
                                       const std::string& rhs,
                                       std::string label) {
  return assert_term(Term::le(Term::variable(lhs), Term::variable(rhs)),
                     std::move(label));
}

AssertionId Context::assert_equal(const std::string& lhs,
                                  const std::string& rhs, std::string label) {
  return assert_term(Term::eq(Term::variable(lhs), Term::variable(rhs)),
                     std::move(label));
}

void Context::record_flag_change(AssertionId id, bool previous) {
  if (!scopes_.empty()) {
    scopes_.back().flag_changes.emplace_back(id, previous);
  }
}

void Context::retract(AssertionId id) {
  AssertionInfo& info = info_for(id, "retract");
  if (info.active) {
    record_flag_change(id, true);
    info.active = false;
    if (info.trivially_false) --active_trivial_count_;
    ++base_revision_;
  }
}

void Context::reassert(AssertionId id) {
  AssertionInfo& info = info_for(id, "reassert");
  if (!info.active) {
    record_flag_change(id, false);
    info.active = true;
    if (info.trivially_false) ++active_trivial_count_;
    ++base_revision_;
  }
}

bool Context::is_active(AssertionId id) const {
  return info_for(id, "is_active").active;
}

void Context::push() {
  ScopeInfo scope;
  scope.assertion_count = assertions_.size();
  scopes_.push_back(std::move(scope));
}

void Context::pop() {
  if (scopes_.empty()) {
    throw InvalidArgument("pop without matching push");
  }
  ScopeInfo scope = std::move(scopes_.back());
  scopes_.pop_back();
  // Undo flag flips in reverse order; skip ids of assertions that were both
  // created and flipped inside the scope (they are about to be removed).
  for (auto it = scope.flag_changes.rbegin(); it != scope.flag_changes.rend();
       ++it) {
    const auto found = id_to_index_.find(it->first);
    if (found == id_to_index_.end()) continue;
    if (found->second >= scope.assertion_count) continue;
    AssertionInfo& info = assertions_[found->second];
    if (info.active != it->second && info.trivially_false) {
      it->second ? ++active_trivial_count_ : --active_trivial_count_;
    }
    info.active = it->second;
  }
  while (assertions_.size() > scope.assertion_count) {
    const AssertionInfo& info = assertions_.back();
    if (info.active && info.trivially_false) --active_trivial_count_;
    id_to_index_.erase(info.id);
    assertions_.pop_back();
  }
  // Scope-created assertions are never part of the engine base, so a pop
  // only invalidates it when it restored retract/reassert flips (which may
  // touch base assertions).
  if (!scope.flag_changes.empty()) ++base_revision_;
}

// Lowers `lhs REL rhs` into difference constraints over variable indices.
//
// The linear difference (lhs - rhs) is classified:
//   * no variables:       decided immediately;
//   * one variable:       a bound against the implicit zero variable,
//                         with exact integer tightening for non-unit
//                         coefficients;
//   * two variables (+1/-1): a difference constraint;
//   * anything else:      outside the theory -> InvalidArgument.
void Context::lower_relation(const Term& term, AssertionInfo& out) const {
  LinearForm diff = linearize(term.children().at(0));
  diff -= linearize(term.children().at(1));

  TermKind rel = term.kind();
  // Normalise > and >= by negating the form.
  if (rel == TermKind::gt || rel == TermKind::ge) {
    diff *= -1;
    rel = (rel == TermKind::gt) ? TermKind::lt : TermKind::le;
  }

  // Validate variables are declared before any other analysis, so errors
  // are reported consistently regardless of constraint shape.
  for (const auto& [name, coeff] : diff.coefficients) {
    (void)coeff;
    (void)variable_index(name);
  }

  const auto emit = [&out](std::int32_t minuend, std::int32_t subtrahend,
                           std::int64_t bound, AssertionId id) {
    out.constraints.push_back(DiffConstraint{minuend, subtrahend, bound, id});
  };

  switch (diff.variable_count()) {
    case 0: {
      const std::int64_t c = diff.constant;
      const bool holds = (rel == TermKind::lt)   ? (c < 0)
                         : (rel == TermKind::le) ? (c <= 0)
                                                 : (c == 0);
      out.trivially_false = !holds;
      return;
    }
    case 1: {
      const auto& [name, coeff] = *diff.coefficients.begin();
      const std::int32_t x = variable_index(name);
      const std::int64_t c = diff.constant;
      // coeff * x + c REL 0
      if (rel == TermKind::eq) {
        if (c % coeff != 0) {
          out.trivially_false = true;  // no integer solution
          return;
        }
        const std::int64_t v = -c / coeff;
        emit(x, 0, v, out.id);  // x - 0 <= v
        emit(0, x, -v, out.id);  // 0 - x <= -v  (x >= v)
        return;
      }
      const std::int64_t strict_adjust = (rel == TermKind::lt) ? 1 : 0;
      if (coeff > 0) {
        // x <= floor((-c - adjust) / coeff)
        emit(x, 0, floor_div(-c - strict_adjust, coeff), out.id);
      } else {
        // x >= ceil((c + adjust) / -coeff)
        emit(0, x, -ceil_div(c + strict_adjust, -coeff), out.id);
      }
      return;
    }
    case 2: {
      auto it = diff.coefficients.begin();
      const auto& [name_a, coeff_a] = *it;
      ++it;
      const auto& [name_b, coeff_b] = *it;
      if (!((coeff_a == 1 && coeff_b == -1) ||
            (coeff_a == -1 && coeff_b == 1))) {
        throw InvalidArgument(
            "relation is outside difference logic (non-unit coefficients): " +
            out.text);
      }
      const std::int32_t pos =
          variable_index(coeff_a == 1 ? name_a : name_b);
      const std::int32_t neg =
          variable_index(coeff_a == 1 ? name_b : name_a);
      const std::int64_t c = diff.constant;
      // pos - neg + c REL 0
      switch (rel) {
        case TermKind::lt:
          emit(pos, neg, -c - 1, out.id);
          return;
        case TermKind::le:
          emit(pos, neg, -c, out.id);
          return;
        case TermKind::eq:
          emit(pos, neg, -c, out.id);
          emit(neg, pos, c, out.id);
          return;
        default:
          break;
      }
      throw InvalidArgument("unsupported relation kind");
    }
    default:
      throw InvalidArgument(
          "relation involves more than two variables, outside difference "
          "logic: " +
          out.text);
  }
}

// Decides a universally quantified template over positive integers.
//
// The body must be `lhs REL rhs` with both sides linear in the bound
// variable only; writing the difference as a*s + b, validity over all
// s >= 1 is:
//   <   : (a < 0 and a+b < 0)  or (a == 0 and b < 0)
//   <=  : (a < 0 and a+b <= 0) or (a == 0 and b <= 0)
//   =   : a == 0 and b == 0
// (for a > 0 the form grows without bound, so < / <= must fail).
// A valid forall adds nothing to the context; an invalid one makes the
// whole context unsatisfiable with itself as the (minimal) core.
void Context::lower_forall(const Term& term, AssertionInfo& out) const {
  const Term& body = term.children().at(0);
  if (!body.is_relation()) {
    throw InvalidArgument("forall body must be a relation: " + out.text);
  }
  LinearForm diff = linearize(body.children().at(0));
  diff -= linearize(body.children().at(1));

  TermKind rel = body.kind();
  if (rel == TermKind::gt || rel == TermKind::ge) {
    diff *= -1;
    rel = (rel == TermKind::gt) ? TermKind::lt : TermKind::le;
  }

  std::int64_t a = 0;
  for (const auto& [name, coeff] : diff.coefficients) {
    if (name != term.name()) {
      throw InvalidArgument(
          "forall body may only reference the bound variable '" +
          term.name() + "': " + out.text);
    }
    a = coeff;
  }
  const std::int64_t b = diff.constant;

  bool valid = false;
  switch (rel) {
    case TermKind::lt:
      valid = (a < 0 && a + b < 0) || (a == 0 && b < 0);
      break;
    case TermKind::le:
      valid = (a < 0 && a + b <= 0) || (a == 0 && b <= 0);
      break;
    case TermKind::eq:
      valid = (a == 0 && b == 0);
      break;
    default:
      throw InvalidArgument("unsupported relation in forall: " + out.text);
  }
  out.trivially_false = !valid;
}

CheckResult Context::check() const {
  std::vector<const AssertionInfo*> active;
  active.reserve(assertions_.size());
  for (const AssertionInfo& a : assertions_) {
    if (a.active) active.push_back(&a);
  }
  return run_check(active);
}

CheckResult Context::check_subset(const std::vector<AssertionId>& ids) const {
  std::vector<const AssertionInfo*> active;
  active.reserve(ids.size());
  for (const AssertionId id : ids) {
    active.push_back(&info_for(id, "check_subset"));
  }
  return run_check(active);
}

// Rebuilds or extends the cached incremental engine so its base equals the
// active assertions below the outermost live scope (plus type constraints).
// A base that changed by anything other than additions forces a rebuild.
void Context::sync_engine_base() {
  // Fast path: nothing that can affect the base changed since last sync.
  if (engine_synced_once_ && engine_base_revision_ == base_revision_) return;

  const std::size_t floor =
      scopes_.empty() ? assertions_.size()
                      : std::min(scopes_.front().assertion_count,
                                 assertions_.size());
  std::vector<AssertionId> base;
  base.reserve(floor);
  for (std::size_t i = 0; i < floor; ++i) {
    if (assertions_[i].active) base.push_back(assertions_[i].id);
  }

  bool reuse = engine_.has_value();
  if (reuse) {
    const std::set<AssertionId> current(base.begin(), base.end());
    for (const AssertionId id : engine_base_ids_) {
      if (!current.contains(id)) {
        reuse = false;
        break;
      }
    }
  }
  if (!reuse) {
    ++stat_engine_rebuilds_;
    static obs::Counter& rebuild_counter =
        obs::registry().counter("smt.engine_rebuilds");
    rebuild_counter.add(1);
    engine_.emplace(1);
    engine_base_ids_.clear();
    engine_variable_count_ = 0;
  }

  // Grow variables. Seeding each new variable at potential(0) + bound makes
  // the type-constraint add a zero-slack no-op.
  for (std::size_t v = engine_variable_count_; v < variables_.size(); ++v) {
    const VariableInfo& info = variables_[v];
    const std::int64_t zero = engine_->potential(0);
    engine_->add_variable(info.lower_bound.has_value() ? zero + *info.lower_bound
                                                       : zero);
    if (info.lower_bound.has_value()) {
      engine_->add(DiffConstraint{0, static_cast<std::int32_t>(v + 1),
                                  -*info.lower_bound, k_builtin_tag});
    }
  }
  engine_variable_count_ = variables_.size();

  // Add base assertions the engine has not seen yet. Once the base turns
  // infeasible the remaining constraints are recorded without solving; the
  // stored conflict stands for every later check until the base changes.
  const std::set<AssertionId> synced(engine_base_ids_.begin(),
                                     engine_base_ids_.end());
  for (const AssertionId id : base) {
    if (synced.contains(id)) continue;
    const AssertionInfo& a = info_for(id, "check");
    for (const DiffConstraint& c : a.constraints) engine_->add(c);
    engine_base_ids_.push_back(id);
  }
  engine_base_revision_ = base_revision_;
  engine_synced_once_ = true;
}

CheckResult Context::finish_unsat_from_engine(
    const std::vector<const AssertionInfo*>& assumed) {
  CheckResult result;
  result.status = Status::unsat;
  std::vector<AssertionId> candidate;
  for (const std::int64_t tag : engine_->conflict_tags()) {
    if (tag != k_builtin_tag) candidate.push_back(tag);
  }
  if (candidate.empty()) {
    // Degenerate fallback (cannot normally happen): over-approximate with
    // everything considered and let the minimiser reduce it.
    for (const AssertionInfo& a : assertions_) {
      if (a.active) candidate.push_back(a.id);
    }
    for (const AssertionInfo* a : assumed) {
      if (!a->active) candidate.push_back(a->id);
    }
  }
  result.unsat_core =
      minimize_cores_ ? minimize_core(std::move(candidate)) : candidate;
  return result;
}

CheckResult Context::check(const std::vector<AssertionId>& assumptions,
                           bool extract_model) {
  ++stat_incremental_checks_;

  // Validate assumptions before touching solver state.
  std::vector<const AssertionInfo*> assumed;
  assumed.reserve(assumptions.size());
  for (const AssertionId id : assumptions) {
    assumed.push_back(&info_for(id, "check"));
  }

  // Decided-false assertions mirror run_check: actives in assertion order
  // first, then the assumptions. The counter keeps the no-hit case O(1).
  CheckResult result;
  if (active_trivial_count_ > 0) {
    for (const AssertionInfo& a : assertions_) {
      if (a.active && a.trivially_false) {
        result.status = Status::unsat;
        result.unsat_core = {a.id};
        return result;
      }
    }
  }
  for (const AssertionInfo* a : assumed) {
    if (a->trivially_false) {
      result.status = Status::unsat;
      result.unsat_core = {a->id};
      return result;
    }
  }

  sync_engine_base();

  if (!engine_->feasible()) {
    // The always-active base is already unsatisfiable; its recorded
    // conflict answers every check until the base changes.
    return finish_unsat_from_engine(assumed);
  }

  // Layer scope-local actives and assumptions on the shared base.
  const std::size_t floor =
      scopes_.empty() ? assertions_.size()
                      : std::min(scopes_.front().assertion_count,
                                 assertions_.size());
  engine_->push();
  bool feasible = true;
  std::set<AssertionId> layered;
  for (std::size_t i = floor; i < assertions_.size() && feasible; ++i) {
    const AssertionInfo& a = assertions_[i];
    if (!a.active) continue;
    layered.insert(a.id);
    for (const DiffConstraint& c : a.constraints) {
      if (!engine_->add(c)) {
        feasible = false;
        break;
      }
    }
  }
  for (const AssertionInfo* a : assumed) {
    if (!feasible) break;
    if (a->active) continue;  // already part of the base or scoped layer
    if (!layered.insert(a->id).second) continue;
    for (const DiffConstraint& c : a->constraints) {
      if (!engine_->add(c)) {
        feasible = false;
        break;
      }
    }
  }

  if (feasible) {
    result.status = Status::sat;
    if (extract_model) {
      const std::vector<std::int64_t> values = engine_->model();
      for (std::size_t v = 0; v < variables_.size(); ++v) {
        result.model.values[variables_[v].name] = values[v + 1];
      }
    }
  } else {
    result = finish_unsat_from_engine(assumed);
  }
  engine_->pop();
  return result;
}

CheckResult Context::run_check(
    const std::vector<const AssertionInfo*>& active) const {
  CheckResult result;

  // A decided-false assertion (failed forall schema, contradictory constant
  // comparison) is an unsat core on its own.
  for (const AssertionInfo* a : active) {
    if (a->trivially_false) {
      result.status = Status::unsat;
      result.unsat_core = {a->id};
      return result;
    }
  }

  std::vector<DiffConstraint> constraints;
  for (const AssertionInfo* a : active) {
    constraints.insert(constraints.end(), a->constraints.begin(),
                       a->constraints.end());
  }
  // Type constraints: a lower bound lb gives x >= lb, i.e. 0 - x <= -lb.
  for (std::size_t v = 0; v < variables_.size(); ++v) {
    if (variables_[v].lower_bound.has_value()) {
      constraints.push_back(DiffConstraint{0,
                                           static_cast<std::int32_t>(v + 1),
                                           -*variables_[v].lower_bound,
                                           k_builtin_tag});
    }
  }

  const auto var_count = static_cast<std::int32_t>(variables_.size() + 1);
  DiffResult diff = solve_difference_system(var_count, constraints);

  if (diff.satisfiable) {
    result.status = Status::sat;
    for (std::size_t v = 0; v < variables_.size(); ++v) {
      result.model.values[variables_[v].name] = diff.model[v + 1];
    }
    return result;
  }

  result.status = Status::unsat;
  std::vector<AssertionId> candidate;
  for (const std::int64_t tag : diff.conflict_tags) {
    if (tag != k_builtin_tag) candidate.push_back(tag);
  }
  // Degenerate fallback: a conflict consisting purely of type constraints
  // cannot happen (x >= 1 alone is satisfiable), but keep the report sound
  // if the seed was over-approximated.
  if (candidate.empty()) {
    for (const AssertionInfo* a : active) candidate.push_back(a->id);
  }
  result.unsat_core =
      minimize_cores_ ? minimize_core(std::move(candidate)) : candidate;
  return result;
}

// Deletion-based minimisation: drop one member at a time and keep the
// removal whenever the remainder is still unsatisfiable. The negative-cycle
// seed is already small, so this loop runs a handful of cheap re-checks.
std::vector<AssertionId> Context::minimize_core(
    std::vector<AssertionId> candidate) const {
  std::size_t i = 0;
  while (i < candidate.size()) {
    std::vector<AssertionId> trial;
    trial.reserve(candidate.size() - 1);
    for (std::size_t j = 0; j < candidate.size(); ++j) {
      if (j != i) trial.push_back(candidate[j]);
    }
    if (check_subset(trial).status == Status::unsat) {
      candidate = std::move(trial);  // keep i pointing at the next element
    } else {
      ++i;
    }
  }
  std::sort(candidate.begin(), candidate.end());
  return candidate;
}

std::string Context::describe(AssertionId id) const {
  const AssertionInfo& a = info_for(id, "describe");
  return a.label.empty() ? a.text : a.label;
}

std::size_t Context::active_assertion_count() const noexcept {
  std::size_t n = 0;
  for (const AssertionInfo& a : assertions_) {
    if (a.active) ++n;
  }
  return n;
}

}  // namespace fsr::smt
