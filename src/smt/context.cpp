#include "smt/context.h"

#include <algorithm>

#include "smt/linear.h"
#include "util/error.h"

namespace fsr::smt {
namespace {

// Floor/ceil division with mathematically correct behaviour for negative
// operands (C++ integer division truncates toward zero).
std::int64_t floor_div(std::int64_t a, std::int64_t b) {
  const std::int64_t q = a / b;
  const std::int64_t r = a % b;
  return (r != 0 && ((r < 0) != (b < 0))) ? q - 1 : q;
}

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return -floor_div(-a, b);
}

// Tag used for type (positivity) constraints; never a valid assertion id.
constexpr std::int64_t k_builtin_tag = -1;

}  // namespace

std::int64_t Model::at(const std::string& name) const {
  const auto it = values.find(name);
  if (it == values.end()) {
    throw InvalidArgument("model has no value for variable '" + name + "'");
  }
  return it->second;
}

void Context::declare_variable(const std::string& name,
                               std::optional<std::int64_t> lower_bound) {
  if (name.empty()) throw InvalidArgument("variable name must be non-empty");
  if (variable_ids_.contains(name)) {
    throw InvalidArgument("variable '" + name + "' is already declared");
  }
  // Index 0 is the implicit zero variable; named variables start at 1.
  const auto index = static_cast<std::int32_t>(variables_.size() + 1);
  variables_.push_back(VariableInfo{name, lower_bound});
  variable_ids_.emplace(name, index);
}

bool Context::has_variable(const std::string& name) const {
  return variable_ids_.contains(name);
}

std::int32_t Context::variable_index(const std::string& name) const {
  const auto it = variable_ids_.find(name);
  if (it == variable_ids_.end()) {
    throw InvalidArgument("undeclared variable '" + name + "'");
  }
  return it->second;
}

AssertionId Context::assert_term(const Term& term, std::string label) {
  AssertionInfo info;
  info.id = static_cast<AssertionId>(assertions_.size());
  info.label = std::move(label);
  info.text = term.to_string();

  if (term.is_relation()) {
    lower_relation(term, info);
  } else if (term.kind() == TermKind::forall_pos) {
    lower_forall(term, info);
  } else {
    throw InvalidArgument("assertion must be a relation or forall: " +
                          info.text);
  }
  assertions_.push_back(std::move(info));
  return assertions_.back().id;
}

AssertionId Context::assert_less(const std::string& lhs,
                                 const std::string& rhs, std::string label) {
  return assert_term(Term::lt(Term::variable(lhs), Term::variable(rhs)),
                     std::move(label));
}

AssertionId Context::assert_less_equal(const std::string& lhs,
                                       const std::string& rhs,
                                       std::string label) {
  return assert_term(Term::le(Term::variable(lhs), Term::variable(rhs)),
                     std::move(label));
}

AssertionId Context::assert_equal(const std::string& lhs,
                                  const std::string& rhs, std::string label) {
  return assert_term(Term::eq(Term::variable(lhs), Term::variable(rhs)),
                     std::move(label));
}

void Context::retract(AssertionId id) {
  if (id < 0 || static_cast<std::size_t>(id) >= assertions_.size()) {
    throw InvalidArgument("retract: unknown assertion id");
  }
  assertions_[static_cast<std::size_t>(id)].active = false;
}

// Lowers `lhs REL rhs` into difference constraints over variable indices.
//
// The linear difference (lhs - rhs) is classified:
//   * no variables:       decided immediately;
//   * one variable:       a bound against the implicit zero variable,
//                         with exact integer tightening for non-unit
//                         coefficients;
//   * two variables (+1/-1): a difference constraint;
//   * anything else:      outside the theory -> InvalidArgument.
void Context::lower_relation(const Term& term, AssertionInfo& out) const {
  LinearForm diff = linearize(term.children().at(0));
  diff -= linearize(term.children().at(1));

  TermKind rel = term.kind();
  // Normalise > and >= by negating the form.
  if (rel == TermKind::gt || rel == TermKind::ge) {
    diff *= -1;
    rel = (rel == TermKind::gt) ? TermKind::lt : TermKind::le;
  }

  // Validate variables are declared before any other analysis, so errors
  // are reported consistently regardless of constraint shape.
  for (const auto& [name, coeff] : diff.coefficients) {
    (void)coeff;
    (void)variable_index(name);
  }

  const auto emit = [&out](std::int32_t minuend, std::int32_t subtrahend,
                           std::int64_t bound, AssertionId id) {
    out.constraints.push_back(DiffConstraint{minuend, subtrahend, bound, id});
  };

  switch (diff.variable_count()) {
    case 0: {
      const std::int64_t c = diff.constant;
      const bool holds = (rel == TermKind::lt)   ? (c < 0)
                         : (rel == TermKind::le) ? (c <= 0)
                                                 : (c == 0);
      out.trivially_false = !holds;
      return;
    }
    case 1: {
      const auto& [name, coeff] = *diff.coefficients.begin();
      const std::int32_t x = variable_index(name);
      const std::int64_t c = diff.constant;
      // coeff * x + c REL 0
      if (rel == TermKind::eq) {
        if (c % coeff != 0) {
          out.trivially_false = true;  // no integer solution
          return;
        }
        const std::int64_t v = -c / coeff;
        emit(x, 0, v, out.id);  // x - 0 <= v
        emit(0, x, -v, out.id);  // 0 - x <= -v  (x >= v)
        return;
      }
      const std::int64_t strict_adjust = (rel == TermKind::lt) ? 1 : 0;
      if (coeff > 0) {
        // x <= floor((-c - adjust) / coeff)
        emit(x, 0, floor_div(-c - strict_adjust, coeff), out.id);
      } else {
        // x >= ceil((c + adjust) / -coeff)
        emit(0, x, -ceil_div(c + strict_adjust, -coeff), out.id);
      }
      return;
    }
    case 2: {
      auto it = diff.coefficients.begin();
      const auto& [name_a, coeff_a] = *it;
      ++it;
      const auto& [name_b, coeff_b] = *it;
      if (!((coeff_a == 1 && coeff_b == -1) ||
            (coeff_a == -1 && coeff_b == 1))) {
        throw InvalidArgument(
            "relation is outside difference logic (non-unit coefficients): " +
            out.text);
      }
      const std::int32_t pos =
          variable_index(coeff_a == 1 ? name_a : name_b);
      const std::int32_t neg =
          variable_index(coeff_a == 1 ? name_b : name_a);
      const std::int64_t c = diff.constant;
      // pos - neg + c REL 0
      switch (rel) {
        case TermKind::lt:
          emit(pos, neg, -c - 1, out.id);
          return;
        case TermKind::le:
          emit(pos, neg, -c, out.id);
          return;
        case TermKind::eq:
          emit(pos, neg, -c, out.id);
          emit(neg, pos, c, out.id);
          return;
        default:
          break;
      }
      throw InvalidArgument("unsupported relation kind");
    }
    default:
      throw InvalidArgument(
          "relation involves more than two variables, outside difference "
          "logic: " +
          out.text);
  }
}

// Decides a universally quantified template over positive integers.
//
// The body must be `lhs REL rhs` with both sides linear in the bound
// variable only; writing the difference as a*s + b, validity over all
// s >= 1 is:
//   <   : (a < 0 and a+b < 0)  or (a == 0 and b < 0)
//   <=  : (a < 0 and a+b <= 0) or (a == 0 and b <= 0)
//   =   : a == 0 and b == 0
// (for a > 0 the form grows without bound, so < / <= must fail).
// A valid forall adds nothing to the context; an invalid one makes the
// whole context unsatisfiable with itself as the (minimal) core.
void Context::lower_forall(const Term& term, AssertionInfo& out) const {
  const Term& body = term.children().at(0);
  if (!body.is_relation()) {
    throw InvalidArgument("forall body must be a relation: " + out.text);
  }
  LinearForm diff = linearize(body.children().at(0));
  diff -= linearize(body.children().at(1));

  TermKind rel = body.kind();
  if (rel == TermKind::gt || rel == TermKind::ge) {
    diff *= -1;
    rel = (rel == TermKind::gt) ? TermKind::lt : TermKind::le;
  }

  std::int64_t a = 0;
  for (const auto& [name, coeff] : diff.coefficients) {
    if (name != term.name()) {
      throw InvalidArgument(
          "forall body may only reference the bound variable '" +
          term.name() + "': " + out.text);
    }
    a = coeff;
  }
  const std::int64_t b = diff.constant;

  bool valid = false;
  switch (rel) {
    case TermKind::lt:
      valid = (a < 0 && a + b < 0) || (a == 0 && b < 0);
      break;
    case TermKind::le:
      valid = (a < 0 && a + b <= 0) || (a == 0 && b <= 0);
      break;
    case TermKind::eq:
      valid = (a == 0 && b == 0);
      break;
    default:
      throw InvalidArgument("unsupported relation in forall: " + out.text);
  }
  out.trivially_false = !valid;
}

CheckResult Context::check() const {
  std::vector<const AssertionInfo*> active;
  active.reserve(assertions_.size());
  for (const AssertionInfo& a : assertions_) {
    if (a.active) active.push_back(&a);
  }
  return run_check(active);
}

CheckResult Context::check_subset(const std::vector<AssertionId>& ids) const {
  std::vector<const AssertionInfo*> active;
  active.reserve(ids.size());
  for (const AssertionId id : ids) {
    if (id < 0 || static_cast<std::size_t>(id) >= assertions_.size()) {
      throw InvalidArgument("check_subset: unknown assertion id");
    }
    active.push_back(&assertions_[static_cast<std::size_t>(id)]);
  }
  return run_check(active);
}

CheckResult Context::run_check(
    const std::vector<const AssertionInfo*>& active) const {
  CheckResult result;

  // A decided-false assertion (failed forall schema, contradictory constant
  // comparison) is an unsat core on its own.
  for (const AssertionInfo* a : active) {
    if (a->trivially_false) {
      result.status = Status::unsat;
      result.unsat_core = {a->id};
      return result;
    }
  }

  std::vector<DiffConstraint> constraints;
  for (const AssertionInfo* a : active) {
    constraints.insert(constraints.end(), a->constraints.begin(),
                       a->constraints.end());
  }
  // Type constraints: a lower bound lb gives x >= lb, i.e. 0 - x <= -lb.
  for (std::size_t v = 0; v < variables_.size(); ++v) {
    if (variables_[v].lower_bound.has_value()) {
      constraints.push_back(DiffConstraint{0,
                                           static_cast<std::int32_t>(v + 1),
                                           -*variables_[v].lower_bound,
                                           k_builtin_tag});
    }
  }

  const auto var_count = static_cast<std::int32_t>(variables_.size() + 1);
  DiffResult diff = solve_difference_system(var_count, constraints);

  if (diff.satisfiable) {
    result.status = Status::sat;
    for (std::size_t v = 0; v < variables_.size(); ++v) {
      result.model.values[variables_[v].name] = diff.model[v + 1];
    }
    return result;
  }

  result.status = Status::unsat;
  std::vector<AssertionId> candidate;
  for (const std::int64_t tag : diff.conflict_tags) {
    if (tag != k_builtin_tag) candidate.push_back(tag);
  }
  // Degenerate fallback: a conflict consisting purely of type constraints
  // cannot happen (x >= 1 alone is satisfiable), but keep the report sound
  // if the seed was over-approximated.
  if (candidate.empty()) {
    for (const AssertionInfo* a : active) candidate.push_back(a->id);
  }
  result.unsat_core =
      minimize_cores_ ? minimize_core(std::move(candidate)) : candidate;
  return result;
}

// Deletion-based minimisation: drop one member at a time and keep the
// removal whenever the remainder is still unsatisfiable. The negative-cycle
// seed is already small, so this loop runs a handful of cheap re-checks.
std::vector<AssertionId> Context::minimize_core(
    std::vector<AssertionId> candidate) const {
  std::size_t i = 0;
  while (i < candidate.size()) {
    std::vector<AssertionId> trial;
    trial.reserve(candidate.size() - 1);
    for (std::size_t j = 0; j < candidate.size(); ++j) {
      if (j != i) trial.push_back(candidate[j]);
    }
    if (check_subset(trial).status == Status::unsat) {
      candidate = std::move(trial);  // keep i pointing at the next element
    } else {
      ++i;
    }
  }
  std::sort(candidate.begin(), candidate.end());
  return candidate;
}

std::string Context::describe(AssertionId id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= assertions_.size()) {
    throw InvalidArgument("describe: unknown assertion id");
  }
  const AssertionInfo& a = assertions_[static_cast<std::size_t>(id)];
  return a.label.empty() ? a.text : a.label;
}

std::size_t Context::active_assertion_count() const noexcept {
  std::size_t n = 0;
  for (const AssertionInfo& a : assertions_) {
    if (a.active) ++n;
  }
  return n;
}

}  // namespace fsr::smt
