// Decision procedure for integer difference logic.
//
// Every constraint FSR generates reduces to the form  x - y <= c  over
// integer variables (a strict `x < y` is `x - y <= -1` because the domain
// is the integers). A conjunction of such constraints is satisfiable iff
// the corresponding constraint graph — an edge y --c--> x for each
// x - y <= c — has no negative-weight cycle (a classical result; see e.g.
// Cormen et al., "difference constraints and shortest paths").
//
// The engine additionally:
//   * extracts a model from shortest-path potentials when satisfiable;
//   * reports the set of constraints on a negative cycle when
//     unsatisfiable, which seeds the minimal unsat-core computation in
//     Context.
#ifndef FSR_SMT_DIFFERENCE_ENGINE_H
#define FSR_SMT_DIFFERENCE_ENGINE_H

#include <cstdint>
#include <optional>
#include <vector>

namespace fsr::smt {

/// Dense variable index; variable 0 is reserved by callers for the
/// implicit "zero" variable used to encode bounds against constants.
using DiffVar = std::int32_t;

/// One difference constraint: minuend - subtrahend <= bound, tagged with an
/// opaque caller-supplied id (FSR uses the assertion id) for core reporting.
struct DiffConstraint {
  DiffVar minuend = 0;
  DiffVar subtrahend = 0;
  std::int64_t bound = 0;
  std::int64_t tag = 0;
};

/// Result of a feasibility check.
struct DiffResult {
  bool satisfiable = false;
  /// When satisfiable: one value per variable (size == variable_count).
  /// The assignment is normalised so that variable 0 maps to 0.
  std::vector<std::int64_t> model;
  /// When unsatisfiable: tags of the constraints forming a negative cycle.
  /// Duplicates are removed; order follows the cycle.
  std::vector<std::int64_t> conflict_tags;
};

/// Checks feasibility of `constraints` over `variable_count` integer
/// variables using Bellman-Ford with a virtual super-source. Runs in
/// O(V * E); the systems FSR produces (hundreds of constraints) solve in
/// well under a millisecond, matching the paper's <100ms Yices numbers
/// with a wide margin.
DiffResult solve_difference_system(std::int32_t variable_count,
                                   const std::vector<DiffConstraint>& constraints);

/// Incremental difference-logic engine (Cotton-Maler style).
///
/// Maintains a feasible potential function over the constraint graph so
/// that each added constraint costs only a local Dijkstra-like repair on
/// reduced costs — O(1) when the new edge is already satisfied — instead of
/// the full O(V * E) Bellman-Ford pass solve_difference_system runs per
/// call. push()/pop() snapshot the engine so a caller can layer temporary
/// constraints (assumption-based checks, repair candidates) on a shared
/// base without ever rebuilding it. This is what makes the repair engine's
/// hundreds of near-identical re-checks cheap.
///
/// Thread-compatibility: a mutable single-thread object with no global
/// state; distinct instances on distinct threads never interfere (same
/// contract as Context, which owns one per solver session).
class IncrementalDiffEngine {
 public:
  /// Starts with `variable_count` variables, all at potential 0. Callers
  /// reserve variable 0 as the implicit zero variable.
  explicit IncrementalDiffEngine(std::int32_t variable_count = 1);

  std::int32_t variable_count() const noexcept {
    return static_cast<std::int32_t>(potentials_.size());
  }
  std::size_t constraint_count() const noexcept { return edges_.size(); }

  /// Adds a variable with the given initial potential and returns its
  /// index. Choosing the potential so the variable's already-known bounds
  /// hold (e.g. potential(0) + lower_bound before adding the type
  /// constraint) makes the subsequent add() a no-repair fast path.
  std::int32_t add_variable(std::int64_t potential);

  std::int64_t potential(std::int32_t variable) const;

  /// Adds a constraint and repairs the potential function. Returns false
  /// when the constraint closes a negative cycle: the engine becomes
  /// infeasible, conflict_tags() names the cycle, and it stays infeasible
  /// (later adds are recorded but not solved) until the offending scope is
  /// popped.
  bool add(const DiffConstraint& constraint);

  bool feasible() const noexcept { return feasible_; }

  /// Tags of the constraints on the detected negative cycle, in cycle
  /// order with duplicates removed. Meaningful only when !feasible().
  const std::vector<std::int64_t>& conflict_tags() const noexcept {
    return conflict_tags_;
  }

  /// A satisfying assignment (one value per variable, variable 0 at 0).
  /// Unlike solve_difference_system's model this is a feasible witness,
  /// not the minimal shortest-path assignment. Requires feasible().
  std::vector<std::int64_t> model() const;

  /// Snapshots constraints, potentials and feasibility; pop() restores the
  /// snapshot exactly (constraints added in the scope are discarded).
  void push();
  void pop();
  std::size_t scope_depth() const noexcept { return scopes_.size(); }

 private:
  struct Edge {
    DiffVar from = 0;  // subtrahend
    DiffVar to = 0;    // minuend:  to - from <= weight
    std::int64_t weight = 0;
    std::int64_t tag = 0;
  };
  struct Scope {
    std::size_t edge_count = 0;
    std::size_t var_count = 0;
    std::vector<std::int64_t> potentials;
    bool feasible = true;
    std::vector<std::int64_t> conflict_tags;
  };

  std::vector<Edge> edges_;
  std::vector<std::vector<std::int32_t>> out_;  // var -> indices into edges_
  std::vector<std::int64_t> potentials_;
  bool feasible_ = true;
  std::vector<std::int64_t> conflict_tags_;
  std::vector<Scope> scopes_;
};

}  // namespace fsr::smt

#endif  // FSR_SMT_DIFFERENCE_ENGINE_H
