// Decision procedure for integer difference logic.
//
// Every constraint FSR generates reduces to the form  x - y <= c  over
// integer variables (a strict `x < y` is `x - y <= -1` because the domain
// is the integers). A conjunction of such constraints is satisfiable iff
// the corresponding constraint graph — an edge y --c--> x for each
// x - y <= c — has no negative-weight cycle (a classical result; see e.g.
// Cormen et al., "difference constraints and shortest paths").
//
// The engine additionally:
//   * extracts a model from shortest-path potentials when satisfiable;
//   * reports the set of constraints on a negative cycle when
//     unsatisfiable, which seeds the minimal unsat-core computation in
//     Context.
#ifndef FSR_SMT_DIFFERENCE_ENGINE_H
#define FSR_SMT_DIFFERENCE_ENGINE_H

#include <cstdint>
#include <optional>
#include <vector>

namespace fsr::smt {

/// Dense variable index; variable 0 is reserved by callers for the
/// implicit "zero" variable used to encode bounds against constants.
using DiffVar = std::int32_t;

/// One difference constraint: minuend - subtrahend <= bound, tagged with an
/// opaque caller-supplied id (FSR uses the assertion id) for core reporting.
struct DiffConstraint {
  DiffVar minuend = 0;
  DiffVar subtrahend = 0;
  std::int64_t bound = 0;
  std::int64_t tag = 0;
};

/// Result of a feasibility check.
struct DiffResult {
  bool satisfiable = false;
  /// When satisfiable: one value per variable (size == variable_count).
  /// The assignment is normalised so that variable 0 maps to 0.
  std::vector<std::int64_t> model;
  /// When unsatisfiable: tags of the constraints forming a negative cycle.
  /// Duplicates are removed; order follows the cycle.
  std::vector<std::int64_t> conflict_tags;
};

/// Checks feasibility of `constraints` over `variable_count` integer
/// variables using Bellman-Ford with a virtual super-source. Runs in
/// O(V * E); the systems FSR produces (hundreds of constraints) solve in
/// well under a millisecond, matching the paper's <100ms Yices numbers
/// with a wide margin.
DiffResult solve_difference_system(std::int32_t variable_count,
                                   const std::vector<DiffConstraint>& constraints);

}  // namespace fsr::smt

#endif  // FSR_SMT_DIFFERENCE_ENGINE_H
