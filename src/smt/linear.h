// Normalisation of terms into linear forms.
//
// Every arithmetic term the toolkit generates is linear over its variables.
// The solver classifies each asserted atom by first flattening both sides
// into sum(coefficient * variable) + constant; the difference of the two
// sides then decides which decision procedure applies (difference logic for
// at-most-two unit-coefficient variables, the forall schema checker for
// quantified bodies).
#ifndef FSR_SMT_LINEAR_H
#define FSR_SMT_LINEAR_H

#include <cstdint>
#include <map>
#include <string>

#include "smt/term.h"

namespace fsr::smt {

/// A linear integer form: sum over `coefficients` of coeff * var, plus
/// `constant`. Variables with zero coefficient are never stored.
struct LinearForm {
  std::map<std::string, std::int64_t> coefficients;
  std::int64_t constant = 0;

  LinearForm& operator+=(const LinearForm& other);
  LinearForm& operator-=(const LinearForm& other);
  LinearForm& operator*=(std::int64_t factor);

  /// Number of variables with non-zero coefficient.
  std::size_t variable_count() const noexcept { return coefficients.size(); }
};

/// Flattens `term` (which must be arithmetic: variable/constant/add/sub/mul)
/// into a LinearForm. Throws fsr::InvalidArgument if the term is non-linear
/// (e.g. a product of two variables) or is a relation/quantifier.
LinearForm linearize(const Term& term);

}  // namespace fsr::smt

#endif  // FSR_SMT_LINEAR_H
