#include "smt/yices_frontend.h"

#include <cctype>

#include "util/error.h"
#include "util/strings.h"

namespace fsr::smt {
namespace {

bool is_integer_literal(std::string_view text) {
  if (text.empty()) return false;
  std::size_t i = (text[0] == '-') ? 1 : 0;
  if (i == text.size()) return false;
  for (; i < text.size(); ++i) {
    if (std::isdigit(static_cast<unsigned char>(text[i])) == 0) return false;
  }
  return true;
}

/// Splits a Yices binder "name::type" into its two halves.
std::pair<std::string, std::string> split_binding(const std::string& atom) {
  const std::size_t pos = atom.find("::");
  if (pos == std::string::npos || pos == 0 || pos + 2 >= atom.size()) {
    throw InvalidArgument("expected name::type binding, found '" + atom + "'");
  }
  return {atom.substr(0, pos), atom.substr(pos + 2)};
}

}  // namespace

const CheckOutcome& ScriptResult::single_check() const {
  if (checks.size() != 1) {
    throw InvalidArgument("script performed " + std::to_string(checks.size()) +
                          " checks, expected exactly 1");
  }
  return checks.front();
}

ScriptResult YicesFrontend::run_script(std::string_view source) {
  ScriptResult result;
  for (const Sexpr& command : parse_sexprs(source)) {
    execute(command, result);
  }
  return result;
}

void YicesFrontend::execute(const Sexpr& command, ScriptResult& result) {
  if (!command.is_list() || command.size() == 0 ||
      !command.items().front().is_atom()) {
    throw InvalidArgument("malformed command: " + command.to_string());
  }
  const std::string& head = command.items().front().spelling();
  if (head == "define-type") {
    execute_define_type(command);
  } else if (head == "define") {
    execute_define(command);
  } else if (head == "assert") {
    execute_assert(command);
  } else if (head == "check") {
    execute_check(result);
  } else if (head == "reset") {
    context_ = Context{};
  } else if (head == "echo") {
    for (std::size_t i = 1; i < command.size(); ++i) {
      result.transcript.push_back(command.items()[i].to_string());
    }
  } else if (util::starts_with(head, "set-")) {
    // Yices housekeeping (set-evidence!, set-verbosity, ...): accepted and
    // ignored; evidence (models, cores) is always produced.
  } else {
    throw InvalidArgument("unknown command '" + head + "'");
  }
}

// (define-type Name (subtype (n::nat) (> n 0)))   -> lower bound 1
// (define-type Name (subtype (n::nat) (>= n c)))  -> lower bound c
// (define-type Name nat)                          -> lower bound 0
// (define-type Name int)                          -> unbounded
void YicesFrontend::execute_define_type(const Sexpr& command) {
  if (command.size() != 3) {
    throw InvalidArgument("define-type expects a name and a definition: " +
                          command.to_string());
  }
  const std::string& name = command.items()[1].spelling();
  const Sexpr& definition = command.items()[2];

  if (definition.is_atom()) {
    const auto it = types_.find(definition.spelling());
    if (it == types_.end()) {
      throw InvalidArgument("unknown base type '" + definition.spelling() +
                            "'");
    }
    types_[name] = it->second;
    return;
  }

  if (!definition.is_call("subtype") || definition.size() != 3) {
    throw InvalidArgument("unsupported type definition: " +
                          definition.to_string());
  }
  const Sexpr& binder = definition.items()[1];
  if (!binder.is_list() || binder.size() != 1 ||
      !binder.items().front().is_atom()) {
    throw InvalidArgument("subtype binder must be (name::base): " +
                          binder.to_string());
  }
  const auto [bound_var, base] = split_binding(binder.items().front().spelling());
  const auto base_it = types_.find(base);
  if (base_it == types_.end()) {
    throw InvalidArgument("unknown base type '" + base + "'");
  }

  // Predicate must be a lower-bound comparison on the bound variable.
  const Sexpr& predicate = definition.items()[2];
  if (!predicate.is_list() || predicate.size() != 3 ||
      !predicate.items()[0].is_atom() || !predicate.items()[1].is_atom() ||
      !predicate.items()[2].is_atom()) {
    throw InvalidArgument("unsupported subtype predicate: " +
                          predicate.to_string());
  }
  const std::string& op = predicate.items()[0].spelling();
  const std::string& var = predicate.items()[1].spelling();
  const std::string& bound_text = predicate.items()[2].spelling();
  if (var != bound_var || !is_integer_literal(bound_text)) {
    throw InvalidArgument("unsupported subtype predicate: " +
                          predicate.to_string());
  }
  const std::int64_t bound = std::stoll(bound_text);
  std::optional<std::int64_t> lower;
  if (op == ">") {
    lower = bound + 1;
  } else if (op == ">=") {
    lower = bound;
  } else {
    throw InvalidArgument(
        "only lower-bound subtype predicates are supported: " +
        predicate.to_string());
  }
  if (base_it->second.has_value() && *base_it->second > *lower) {
    lower = base_it->second;  // subtype cannot weaken the base bound
  }
  types_[name] = lower;
}

// (define C::Sig)
void YicesFrontend::execute_define(const Sexpr& command) {
  if (command.size() != 2 || !command.items()[1].is_atom()) {
    throw InvalidArgument("define expects name::type: " + command.to_string());
  }
  const auto [name, type] = split_binding(command.items()[1].spelling());
  const auto it = types_.find(type);
  if (it == types_.end()) {
    throw InvalidArgument("unknown type '" + type + "' in " +
                          command.to_string());
  }
  context_.declare_variable(name, it->second);
}

void YicesFrontend::execute_assert(const Sexpr& command) {
  if (command.size() != 2) {
    throw InvalidArgument("assert expects one expression: " +
                          command.to_string());
  }
  const Sexpr& body = command.items()[1];
  context_.assert_term(parse_term(body), body.to_string());
}

void YicesFrontend::execute_check(ScriptResult& result) {
  const CheckResult check = context_.check();
  CheckOutcome outcome;
  outcome.status = check.status;
  if (check.status == Status::sat) {
    result.transcript.emplace_back("sat");
    outcome.model = check.model;
    for (const auto& [name, value] : check.model.values) {
      result.transcript.push_back("(= " + name + " " + std::to_string(value) +
                                  ")");
    }
  } else {
    result.transcript.emplace_back("unsat");
    result.transcript.emplace_back("unsat core:");
    outcome.core_ids = check.unsat_core;
    for (const AssertionId id : check.unsat_core) {
      outcome.core_texts.push_back(context_.describe(id));
      result.transcript.push_back("  " + context_.describe(id));
    }
  }
  result.checks.push_back(std::move(outcome));
}

Term YicesFrontend::parse_term(const Sexpr& expr) const {
  return parse_yices_term(expr);
}

Term parse_yices_term(const Sexpr& expr) {
  if (expr.is_atom()) {
    const std::string& spelling = expr.spelling();
    if (is_integer_literal(spelling)) {
      return Term::constant(std::stoll(spelling));
    }
    return Term::variable(spelling);
  }

  if (expr.size() == 0 || !expr.items().front().is_atom()) {
    throw InvalidArgument("malformed term: " + expr.to_string());
  }
  const std::string& op = expr.items().front().spelling();

  if (op == "forall") {
    if (expr.size() != 3) {
      throw InvalidArgument("forall expects binder and body: " +
                            expr.to_string());
    }
    const Sexpr& binder = expr.items()[1];
    if (!binder.is_list() || binder.size() != 1 ||
        !binder.items().front().is_atom()) {
      throw InvalidArgument(
          "forall supports exactly one bound variable (name::type): " +
          expr.to_string());
    }
    const auto [var, type] = split_binding(binder.items().front().spelling());
    (void)type;  // the bound ranges over the positive integers in FSR's use
    return Term::forall_positive(var, parse_yices_term(expr.items()[2]));
  }

  std::vector<Term> args;
  for (std::size_t i = 1; i < expr.size(); ++i) {
    args.push_back(parse_yices_term(expr.items()[i]));
  }
  const auto binary_only = [&](const char* what) {
    if (args.size() != 2) {
      throw InvalidArgument(std::string(what) +
                            " expects two operands: " + expr.to_string());
    }
  };

  if (op == "+") {
    if (args.empty()) {
      throw InvalidArgument("+ expects operands: " + expr.to_string());
    }
    Term acc = std::move(args.front());
    for (std::size_t i = 1; i < args.size(); ++i) {
      acc = Term::add(std::move(acc), std::move(args[i]));
    }
    return acc;
  }
  if (op == "-") {
    binary_only("-");
    return Term::sub(std::move(args[0]), std::move(args[1]));
  }
  if (op == "*") {
    binary_only("*");
    return Term::mul(std::move(args[0]), std::move(args[1]));
  }
  if (op == "<") {
    binary_only("<");
    return Term::lt(std::move(args[0]), std::move(args[1]));
  }
  if (op == "<=") {
    binary_only("<=");
    return Term::le(std::move(args[0]), std::move(args[1]));
  }
  if (op == ">") {
    binary_only(">");
    return Term::gt(std::move(args[0]), std::move(args[1]));
  }
  if (op == ">=") {
    binary_only(">=");
    return Term::ge(std::move(args[0]), std::move(args[1]));
  }
  if (op == "=") {
    binary_only("=");
    return Term::eq(std::move(args[0]), std::move(args[1]));
  }
  throw InvalidArgument("unknown operator '" + op + "' in " + expr.to_string());
}

}  // namespace fsr::smt
