// Yices-style textual frontend for the solver.
//
// FSR (Section IV-C) emits constraint scripts in Yices 1.x concrete syntax:
//
//   (define-type Sig (subtype (n::nat) (> n 0)))
//   (define C::Sig) (define P::Sig) (define R::Sig)
//   (assert (< C R)) (assert (< C P)) (assert (= R P))
//   (check)
//
// This frontend executes such scripts against fsr::smt::Context, so the
// toolkit's algebra -> text -> solver pipeline is exercised end to end, and
// users can hand-write or post-edit constraint files exactly as they would
// with the original tool.
//
// Supported commands: define-type (subtype over nat / nat / int), define,
// assert, check, reset, echo. Yices housekeeping commands such as
// (set-evidence! true) are accepted and ignored. Unknown commands raise
// fsr::ParseError.
#ifndef FSR_SMT_YICES_FRONTEND_H
#define FSR_SMT_YICES_FRONTEND_H

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "smt/context.h"
#include "smt/sexpr.h"

namespace fsr::smt {

/// Parses one expression of the Yices term grammar (atoms, +, -, *, the
/// relations, forall) into a solver term. Shared by the frontend and by
/// components that drive the Context directly from textual constraints.
Term parse_yices_term(const Sexpr& expr);

/// The observable result of one (check) command.
struct CheckOutcome {
  Status status = Status::sat;
  Model model;                          // populated when sat
  std::vector<AssertionId> core_ids;    // populated when unsat
  std::vector<std::string> core_texts;  // assertion spellings for the core
};

/// Everything a script run produced: structured outcomes plus a printable
/// transcript (one line per output, in Yices's style: "sat", "unsat",
/// "(= C 1)", "unsat core: ...").
struct ScriptResult {
  std::vector<CheckOutcome> checks;
  std::vector<std::string> transcript;

  /// Convenience for the common single-(check) script.
  const CheckOutcome& single_check() const;
};

class YicesFrontend {
 public:
  /// Parses and executes a whole script.
  ScriptResult run_script(std::string_view source);

  /// Executes one already-parsed command, appending to `result`.
  void execute(const Sexpr& command, ScriptResult& result);

  /// Access to the underlying context (e.g. to retract core members and
  /// re-check, the iterative repair loop of Section IV-B).
  Context& context() noexcept { return context_; }
  const Context& context() const noexcept { return context_; }

 private:
  void execute_define_type(const Sexpr& command);
  void execute_define(const Sexpr& command);
  void execute_assert(const Sexpr& command);
  void execute_check(ScriptResult& result);
  Term parse_term(const Sexpr& expr) const;

  Context context_;
  // Type name -> lower bound (nullopt = unbounded int).
  std::map<std::string, std::optional<std::int64_t>> types_ = {
      {"int", std::nullopt},
      {"nat", std::int64_t{0}},
  };
};

}  // namespace fsr::smt

#endif  // FSR_SMT_YICES_FRONTEND_H
