// Solver context: named assertions, satisfiability checking, model
// extraction and minimal unsat cores.
//
// This is the component that stands in for Yices in the FSR pipeline
// (Figure 1 of the paper). It accepts the same logical content FSR's
// encoding produces — integer variables that are positive by type,
// conjunctions of <, <=, = atoms, and universally quantified linear
// templates — decides satisfiability exactly, and reproduces the two
// Yices behaviours the toolkit relies on:
//
//   * on `sat`, a concrete model (e.g. C=1, P=2, R=2 for the monotone
//     Gao-Rexford encoding in Section IV-C);
//   * on `unsat`, a *minimal* unsatisfiable core of the user's assertions,
//     which FSR maps back to the offending policy constraints.
#ifndef FSR_SMT_CONTEXT_H
#define FSR_SMT_CONTEXT_H

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "smt/difference_engine.h"
#include "smt/term.h"

namespace fsr::smt {

enum class Status { sat, unsat };

/// Identifier returned by assert_term. Ids are drawn from a monotonically
/// increasing counter that is never reused, so an id stays stable across
/// retracts, reasserts and scope pops (an id popped out of existence is
/// simply rejected by later calls, never recycled for a new assertion).
using AssertionId = std::int64_t;

/// Variable assignment for a satisfiable check. check() values are
/// normalised so they are as small as the constraints allow (shortest-path
/// potentials), which matches the instances Yices prints for FSR's
/// encodings. The incremental check(assumptions) returns a feasible
/// witness that need not be that minimal assignment.
struct Model {
  std::map<std::string, std::int64_t> values;

  std::int64_t at(const std::string& name) const;
};

struct CheckResult {
  Status status = Status::sat;
  Model model;                          // meaningful when status == sat
  std::vector<AssertionId> unsat_core;  // meaningful when status == unsat
};

/// An assertion context in the style of an SMT solver session.
///
/// Thread-compatibility: a Context is a mutable single-thread object — no
/// internal synchronization; the logically-const check() methods build
/// solver state from the assertion store, and the incremental
/// check(assumptions) additionally mutates a cached IncrementalDiffEngine —
/// so a Context must be confined to one thread at a time. There is NO
/// hidden global/static state anywhere in the smt layer (audited 2026-07),
/// so distinct Context instances on distinct threads never interfere; that
/// is the contract the parallel campaign runner relies on (one solver
/// session per worker).
///
/// Usage:
///   Context ctx;
///   ctx.declare_variable("C");
///   ctx.declare_variable("P");
///   auto id = ctx.assert_term(Term::lt(Term::variable("C"),
///                                      Term::variable("P")), "C < P");
///   CheckResult r = ctx.check();
class Context {
 public:
  /// Declares an integer variable with an optional lower bound enforced as
  /// a *type* constraint: always active, never reported in unsat cores,
  /// exactly like a Yices subtype bound. FSR's signatures are subtypes of
  /// nat with n > 0, hence the default bound of 1; pass 0 for `nat` and
  /// std::nullopt for unbounded `int`. Declarations are NOT scoped: pop()
  /// discards scope-local assertions but keeps every declared variable.
  void declare_variable(const std::string& name,
                        std::optional<std::int64_t> lower_bound = 1);

  bool has_variable(const std::string& name) const;

  /// Asserts a relational or universally quantified term. The optional
  /// label is used in reports; when empty the term's own rendering is used.
  /// Throws fsr::InvalidArgument for terms outside the supported fragment
  /// or referencing undeclared variables.
  AssertionId assert_term(const Term& term, std::string label = {});

  /// Convenience wrappers for the three atom shapes FSR generates.
  AssertionId assert_less(const std::string& lhs, const std::string& rhs,
                          std::string label = {});
  AssertionId assert_less_equal(const std::string& lhs, const std::string& rhs,
                                std::string label = {});
  AssertionId assert_equal(const std::string& lhs, const std::string& rhs,
                           std::string label = {});

  /// Deactivates an assertion (used to remove unsat cores one at a time,
  /// the iterative repair workflow described in Section IV-B).
  void retract(AssertionId id);

  /// Re-activates a previously retracted assertion under its original id.
  void reassert(AssertionId id);

  bool is_active(AssertionId id) const;

  /// Opens an assertion scope. pop() removes every assertion made since the
  /// matching push() and undoes retract/reassert flips performed inside the
  /// scope. The repair engine layers per-candidate constraints this way on
  /// a shared base session.
  void push();
  void pop();
  std::size_t scope_depth() const noexcept { return scopes_.size(); }

  /// Checks the conjunction of all active assertions. Always solves from
  /// scratch (and therefore yields the normalised minimal model).
  CheckResult check() const;

  /// Incremental check of (all active assertions) AND (the given
  /// assumptions, activated for this call regardless of retraction).
  /// Reuses a cached incremental difference engine across calls: the
  /// engine's base holds the active assertions below the outermost live
  /// scope, so repeated checks that only vary assumptions or scope-local
  /// assertions never rebuild it. The unsat core may name both active
  /// assertions and assumptions and is minimised as usual.
  /// `extract_model = false` skips model construction on sat — callers that
  /// only branch on the status (the repair loop) save the O(variables)
  /// map-building cost per check.
  CheckResult check(const std::vector<AssertionId>& assumptions,
                    bool extract_model = true);

  /// Checks only the given assertions (plus type constraints). Used by the
  /// core minimiser and exposed for tests and ablation benchmarks.
  CheckResult check_subset(const std::vector<AssertionId>& ids) const;

  /// Human-readable description of an assertion: its label when provided,
  /// otherwise the asserted term.
  std::string describe(AssertionId id) const;

  std::size_t active_assertion_count() const noexcept;
  std::size_t variable_count() const noexcept { return variables_.size(); }

  /// When true (default), unsat cores are minimised by deletion after the
  /// negative-cycle seed; when false the raw cycle is returned. Exposed so
  /// the ablation benchmark can measure the cost/benefit.
  void set_minimize_cores(bool on) noexcept { minimize_cores_ = on; }

  /// Instrumentation for the incremental path (bench_repair's ablation).
  std::uint64_t incremental_check_count() const noexcept {
    return stat_incremental_checks_;
  }
  std::uint64_t incremental_rebuild_count() const noexcept {
    return stat_engine_rebuilds_;
  }

 private:
  struct VariableInfo {
    std::string name;
    std::optional<std::int64_t> lower_bound;
  };

  // One assertion, pre-lowered at assert time into difference constraints
  // over variable indices (tagged with the assertion id), or a decided
  // truth value for quantified/constant assertions.
  struct AssertionInfo {
    AssertionId id = 0;
    std::string label;
    std::string text;
    bool active = true;
    bool trivially_false = false;  // e.g. a failed forall schema
    std::vector<DiffConstraint> constraints;
  };

  struct ScopeInfo {
    std::size_t assertion_count = 0;
    // (id, previous active flag) for every retract/reassert in the scope,
    // in application order; pop() replays them in reverse.
    std::vector<std::pair<AssertionId, bool>> flag_changes;
  };

  std::int32_t variable_index(const std::string& name) const;
  std::size_t index_for(AssertionId id, const char* who) const;
  AssertionInfo& info_for(AssertionId id, const char* who);
  const AssertionInfo& info_for(AssertionId id, const char* who) const;
  void record_flag_change(AssertionId id, bool previous);
  void lower_relation(const Term& term, AssertionInfo& out) const;
  void lower_forall(const Term& term, AssertionInfo& out) const;
  CheckResult run_check(const std::vector<const AssertionInfo*>& active) const;
  std::vector<AssertionId> minimize_core(
      std::vector<AssertionId> candidate) const;
  void sync_engine_base();
  CheckResult finish_unsat_from_engine(
      const std::vector<const AssertionInfo*>& considered);

  std::vector<VariableInfo> variables_;
  std::map<std::string, std::int32_t> variable_ids_;
  std::vector<AssertionInfo> assertions_;
  std::map<AssertionId, std::size_t> id_to_index_;
  AssertionId next_id_ = 0;
  std::vector<ScopeInfo> scopes_;
  bool minimize_cores_ = true;
  // Count of active decided-false assertions, so the incremental check's
  // hot path skips the O(n) scan when (as almost always) there are none.
  std::size_t active_trivial_count_ = 0;
  // Bumped by every mutation that can change the engine base (declares,
  // base-level asserts, flag flips, pops); when unchanged since the last
  // sync, check(assumptions) skips base recomputation entirely.
  std::uint64_t base_revision_ = 0;

  // Cached incremental engine (see check(assumptions)). base_ids_ lists the
  // active below-scope assertions synced into the engine; a base change
  // that is not a pure addition forces a rebuild.
  std::optional<IncrementalDiffEngine> engine_;
  std::vector<AssertionId> engine_base_ids_;
  std::size_t engine_variable_count_ = 0;
  std::uint64_t engine_base_revision_ = 0;
  bool engine_synced_once_ = false;
  std::uint64_t stat_incremental_checks_ = 0;
  std::uint64_t stat_engine_rebuilds_ = 0;
};

}  // namespace fsr::smt

#endif  // FSR_SMT_CONTEXT_H
