// Term language accepted by the solver context.
//
// FSR's safety encoding (Section IV-B of the paper) only ever produces
// conjunctions of atoms over integer variables:
//
//   s1 < s2      (strict preference / strict monotonicity)
//   s1 <= s2     (preference / plain monotonicity)
//   s1 = s2      (equally preferred classes)
//
// plus, for closed-form algebras such as shortest hop-count, a single
// universally quantified template like (forall (s::Sig) (< s (+ s 1))).
// The term language below covers exactly that fragment: linear integer
// expressions and (in)equality atoms, with one level of universal
// quantification over a positive-integer variable.
#ifndef FSR_SMT_TERM_H
#define FSR_SMT_TERM_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace fsr::smt {

enum class TermKind {
  variable,   // named integer variable
  constant,   // integer literal
  add,        // n-ary sum
  sub,        // binary difference
  mul,        // binary product (at most one side non-constant)
  lt,         // <
  le,         // <=
  gt,         // >
  ge,         // >=
  eq,         // =
  forall_pos  // forall bound over positive integers; child 0 is the body,
              // bound variable name stored in `name`
};

/// Immutable expression tree with value semantics. Terms are small (the
/// encodings the toolkit generates are shallow), so plain vectors of
/// children are appropriate; no sharing or interning is needed.
class Term {
 public:
  static Term variable(std::string name) {
    return Term(TermKind::variable, std::move(name), 0, {});
  }
  static Term constant(std::int64_t value) {
    return Term(TermKind::constant, {}, value, {});
  }
  static Term add(Term lhs, Term rhs) {
    return Term(TermKind::add, {}, 0, {std::move(lhs), std::move(rhs)});
  }
  static Term sub(Term lhs, Term rhs) {
    return Term(TermKind::sub, {}, 0, {std::move(lhs), std::move(rhs)});
  }
  static Term mul(Term lhs, Term rhs) {
    return Term(TermKind::mul, {}, 0, {std::move(lhs), std::move(rhs)});
  }
  static Term lt(Term lhs, Term rhs) {
    return Term(TermKind::lt, {}, 0, {std::move(lhs), std::move(rhs)});
  }
  static Term le(Term lhs, Term rhs) {
    return Term(TermKind::le, {}, 0, {std::move(lhs), std::move(rhs)});
  }
  static Term gt(Term lhs, Term rhs) {
    return Term(TermKind::gt, {}, 0, {std::move(lhs), std::move(rhs)});
  }
  static Term ge(Term lhs, Term rhs) {
    return Term(TermKind::ge, {}, 0, {std::move(lhs), std::move(rhs)});
  }
  static Term eq(Term lhs, Term rhs) {
    return Term(TermKind::eq, {}, 0, {std::move(lhs), std::move(rhs)});
  }
  static Term forall_positive(std::string bound_var, Term body) {
    return Term(TermKind::forall_pos, std::move(bound_var), 0,
                {std::move(body)});
  }

  TermKind kind() const noexcept { return kind_; }
  const std::string& name() const noexcept { return name_; }
  std::int64_t value() const noexcept { return value_; }
  const std::vector<Term>& children() const noexcept { return children_; }

  bool is_relation() const noexcept {
    return kind_ == TermKind::lt || kind_ == TermKind::le ||
           kind_ == TermKind::gt || kind_ == TermKind::ge ||
           kind_ == TermKind::eq;
  }

  /// Renders in the prefix syntax the Yices frontend understands, so a
  /// term can be round-tripped through the textual pipeline.
  std::string to_string() const;

 private:
  Term(TermKind kind, std::string name, std::int64_t value,
       std::vector<Term> children)
      : kind_(kind),
        name_(std::move(name)),
        value_(value),
        children_(std::move(children)) {}

  TermKind kind_;
  std::string name_;
  std::int64_t value_;
  std::vector<Term> children_;
};

}  // namespace fsr::smt

#endif  // FSR_SMT_TERM_H
