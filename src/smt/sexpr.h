// S-expression reader/printer for the Yices-style solver frontend.
//
// The FSR paper feeds Yices a textual constraint language built from
// s-expressions, e.g.:
//
//   (define-type Sig (subtype (n::nat) (> n 0)))
//   (define C::Sig)
//   (assert (< C P))
//   (check)
//
// This module provides the concrete syntax layer: a lexer and recursive
// parser producing a small immutable tree, plus a printer used when FSR
// emits constraint files.
#ifndef FSR_SMT_SEXPR_H
#define FSR_SMT_SEXPR_H

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace fsr::smt {

/// An s-expression: either an atom (symbol or integer literal kept as its
/// spelling) or a list of child expressions.
class Sexpr {
 public:
  static Sexpr atom(std::string spelling) {
    Sexpr s;
    s.is_atom_ = true;
    s.spelling_ = std::move(spelling);
    return s;
  }

  static Sexpr list(std::vector<Sexpr> items) {
    Sexpr s;
    s.is_atom_ = false;
    s.items_ = std::move(items);
    return s;
  }

  bool is_atom() const noexcept { return is_atom_; }
  bool is_list() const noexcept { return !is_atom_; }

  /// Spelling of an atom. Requires is_atom().
  const std::string& spelling() const;

  /// Children of a list. Requires is_list().
  const std::vector<Sexpr>& items() const;

  /// Number of children (0 for atoms).
  std::size_t size() const noexcept { return is_atom_ ? 0 : items_.size(); }

  /// Convenience: true if this is a list whose first element is the atom
  /// `head` (the usual "command" shape).
  bool is_call(std::string_view head) const;

  /// Renders back to text (single line).
  std::string to_string() const;

 private:
  Sexpr() = default;
  bool is_atom_ = true;
  std::string spelling_;
  std::vector<Sexpr> items_;
};

/// Parses a whole script: a sequence of top-level s-expressions.
/// Comments run from ';' to end of line. Throws fsr::ParseError on
/// malformed input (unbalanced parentheses, stray tokens).
std::vector<Sexpr> parse_sexprs(std::string_view text);

/// Parses exactly one s-expression; throws if there is not exactly one.
Sexpr parse_sexpr(std::string_view text);

}  // namespace fsr::smt

#endif  // FSR_SMT_SEXPR_H
