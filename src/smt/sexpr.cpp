#include "smt/sexpr.h"

#include <cctype>

#include "util/error.h"

namespace fsr::smt {
namespace {

struct Token {
  enum class Kind { lparen, rparen, atom, end };
  Kind kind = Kind::end;
  std::string spelling;
  int line = 1;
  int column = 1;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Token next() {
    skip_trivia();
    Token tok;
    tok.line = line_;
    tok.column = column_;
    if (pos_ >= text_.size()) {
      tok.kind = Token::Kind::end;
      return tok;
    }
    const char c = text_[pos_];
    if (c == '(') {
      advance();
      tok.kind = Token::Kind::lparen;
      return tok;
    }
    if (c == ')') {
      advance();
      tok.kind = Token::Kind::rparen;
      return tok;
    }
    tok.kind = Token::Kind::atom;
    while (pos_ < text_.size() && !is_delimiter(text_[pos_])) {
      tok.spelling.push_back(text_[pos_]);
      advance();
    }
    return tok;
  }

  int line() const noexcept { return line_; }
  int column() const noexcept { return column_; }

 private:
  static bool is_delimiter(char c) noexcept {
    return c == '(' || c == ')' || c == ';' ||
           std::isspace(static_cast<unsigned char>(c)) != 0;
  }

  void advance() {
    if (text_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++pos_;
  }

  void skip_trivia() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        advance();
      } else if (c == ';') {
        while (pos_ < text_.size() && text_[pos_] != '\n') advance();
      } else {
        break;
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

class Parser {
 public:
  explicit Parser(std::string_view text) : lexer_(text) { shift(); }

  std::vector<Sexpr> parse_all() {
    std::vector<Sexpr> out;
    while (lookahead_.kind != Token::Kind::end) {
      out.push_back(parse_one());
    }
    return out;
  }

 private:
  Sexpr parse_one() {
    switch (lookahead_.kind) {
      case Token::Kind::atom: {
        Sexpr s = Sexpr::atom(lookahead_.spelling);
        shift();
        return s;
      }
      case Token::Kind::lparen: {
        shift();
        std::vector<Sexpr> items;
        while (lookahead_.kind != Token::Kind::rparen) {
          if (lookahead_.kind == Token::Kind::end) {
            throw ParseError("unbalanced '(' in s-expression", lookahead_.line,
                             lookahead_.column);
          }
          items.push_back(parse_one());
        }
        shift();  // consume ')'
        return Sexpr::list(std::move(items));
      }
      case Token::Kind::rparen:
        throw ParseError("unexpected ')'", lookahead_.line, lookahead_.column);
      case Token::Kind::end:
        throw ParseError("unexpected end of input", lookahead_.line,
                         lookahead_.column);
    }
    throw ParseError("unreachable token state", lookahead_.line,
                     lookahead_.column);
  }

  void shift() { lookahead_ = lexer_.next(); }

  Lexer lexer_;
  Token lookahead_;
};

}  // namespace

const std::string& Sexpr::spelling() const {
  if (!is_atom_) throw InvalidArgument("Sexpr::spelling called on a list");
  return spelling_;
}

const std::vector<Sexpr>& Sexpr::items() const {
  if (is_atom_) throw InvalidArgument("Sexpr::items called on an atom");
  return items_;
}

bool Sexpr::is_call(std::string_view head) const {
  return is_list() && !items_.empty() && items_.front().is_atom() &&
         items_.front().spelling_ == head;
}

std::string Sexpr::to_string() const {
  if (is_atom_) return spelling_;
  std::string out = "(";
  for (std::size_t i = 0; i < items_.size(); ++i) {
    if (i != 0) out.push_back(' ');
    out += items_[i].to_string();
  }
  out.push_back(')');
  return out;
}

std::vector<Sexpr> parse_sexprs(std::string_view text) {
  return Parser(text).parse_all();
}

Sexpr parse_sexpr(std::string_view text) {
  auto all = parse_sexprs(text);
  if (all.size() != 1) {
    throw ParseError("expected exactly one s-expression, found " +
                         std::to_string(all.size()),
                     1, 1);
  }
  return std::move(all.front());
}

}  // namespace fsr::smt
