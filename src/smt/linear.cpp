#include "smt/linear.h"

#include "util/error.h"

namespace fsr::smt {

LinearForm& LinearForm::operator+=(const LinearForm& other) {
  for (const auto& [var, coeff] : other.coefficients) {
    auto& mine = coefficients[var];
    mine += coeff;
    if (mine == 0) coefficients.erase(var);
  }
  constant += other.constant;
  return *this;
}

LinearForm& LinearForm::operator-=(const LinearForm& other) {
  for (const auto& [var, coeff] : other.coefficients) {
    auto& mine = coefficients[var];
    mine -= coeff;
    if (mine == 0) coefficients.erase(var);
  }
  constant -= other.constant;
  return *this;
}

LinearForm& LinearForm::operator*=(std::int64_t factor) {
  if (factor == 0) {
    coefficients.clear();
    constant = 0;
    return *this;
  }
  for (auto& [var, coeff] : coefficients) coeff *= factor;
  constant *= factor;
  return *this;
}

LinearForm linearize(const Term& term) {
  switch (term.kind()) {
    case TermKind::variable: {
      LinearForm f;
      f.coefficients[term.name()] = 1;
      return f;
    }
    case TermKind::constant: {
      LinearForm f;
      f.constant = term.value();
      return f;
    }
    case TermKind::add: {
      LinearForm f;
      for (const Term& child : term.children()) f += linearize(child);
      return f;
    }
    case TermKind::sub: {
      LinearForm f = linearize(term.children().at(0));
      f -= linearize(term.children().at(1));
      return f;
    }
    case TermKind::mul: {
      LinearForm lhs = linearize(term.children().at(0));
      LinearForm rhs = linearize(term.children().at(1));
      if (lhs.variable_count() != 0 && rhs.variable_count() != 0) {
        throw InvalidArgument(
            "non-linear product is outside the solver's theory: " +
            term.to_string());
      }
      if (lhs.variable_count() == 0) {
        rhs *= lhs.constant;
        return rhs;
      }
      lhs *= rhs.constant;
      return lhs;
    }
    case TermKind::lt:
    case TermKind::le:
    case TermKind::gt:
    case TermKind::ge:
    case TermKind::eq:
    case TermKind::forall_pos:
      throw InvalidArgument("expected an arithmetic term, found: " +
                            term.to_string());
  }
  throw InvalidArgument("unknown term kind");
}

namespace {

std::string term_kind_spelling(TermKind kind) {
  switch (kind) {
    case TermKind::lt:
      return "<";
    case TermKind::le:
      return "<=";
    case TermKind::gt:
      return ">";
    case TermKind::ge:
      return ">=";
    case TermKind::eq:
      return "=";
    case TermKind::add:
      return "+";
    case TermKind::sub:
      return "-";
    case TermKind::mul:
      return "*";
    default:
      return "?";
  }
}

}  // namespace

std::string Term::to_string() const {
  switch (kind_) {
    case TermKind::variable:
      return name_;
    case TermKind::constant:
      return std::to_string(value_);
    case TermKind::forall_pos: {
      return "(forall (" + name_ + "::Sig) " + children_.front().to_string() +
             ")";
    }
    default: {
      std::string out = "(" + term_kind_spelling(kind_);
      for (const Term& child : children_) {
        out.push_back(' ');
        out += child.to_string();
      }
      out.push_back(')');
      return out;
    }
  }
}

}  // namespace fsr::smt
