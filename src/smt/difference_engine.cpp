#include "smt/difference_engine.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "util/error.h"

namespace fsr::smt {
namespace {

constexpr std::int64_t k_unreached = std::numeric_limits<std::int64_t>::max();

}  // namespace

DiffResult solve_difference_system(
    std::int32_t variable_count,
    const std::vector<DiffConstraint>& constraints) {
  if (variable_count <= 0) {
    throw InvalidArgument("difference system needs at least one variable");
  }
  for (const DiffConstraint& c : constraints) {
    if (c.minuend < 0 || c.minuend >= variable_count || c.subtrahend < 0 ||
        c.subtrahend >= variable_count) {
      throw InvalidArgument("difference constraint references unknown variable");
    }
  }

  // Bellman-Ford with an implicit super-source: initialise every distance
  // to 0 rather than materialising source edges. dist[v] then converges to
  // the shortest distance from the super-source; an edge that can still be
  // relaxed after V-1 rounds lies on (or reaches) a negative cycle.
  const std::size_t n = static_cast<std::size_t>(variable_count);
  std::vector<std::int64_t> dist(n, 0);
  // predecessor edge index used to reconstruct the negative cycle.
  std::vector<std::int64_t> parent_edge(n, -1);

  auto relax_round = [&]() -> std::optional<std::size_t> {
    std::optional<std::size_t> last_relaxed;
    for (std::size_t e = 0; e < constraints.size(); ++e) {
      const DiffConstraint& c = constraints[e];
      // x - y <= bound  =>  edge y -> x with weight `bound`.
      const auto y = static_cast<std::size_t>(c.subtrahend);
      const auto x = static_cast<std::size_t>(c.minuend);
      if (dist[y] == k_unreached) continue;
      const std::int64_t candidate = dist[y] + c.bound;
      if (candidate < dist[x]) {
        dist[x] = candidate;
        parent_edge[x] = static_cast<std::int64_t>(e);
        last_relaxed = x;
      }
    }
    return last_relaxed;
  };

  std::optional<std::size_t> relaxed_in_last_round;
  for (std::int32_t round = 0; round < variable_count; ++round) {
    relaxed_in_last_round = relax_round();
    if (!relaxed_in_last_round.has_value()) break;
  }

  DiffResult result;
  if (!relaxed_in_last_round.has_value()) {
    result.satisfiable = true;
    result.model.resize(n);
    // dist itself is a feasible assignment; shift so variable 0 sits at 0,
    // which keeps the assignment feasible (difference constraints are
    // translation invariant) and gives deterministic, readable models.
    const std::int64_t shift = dist[0];
    for (std::size_t v = 0; v < n; ++v) result.model[v] = dist[v] - shift;
    return result;
  }

  // A vertex relaxed in round V lies on or downstream of a negative cycle.
  // Walk parents V times to land inside the cycle, then collect it. If the
  // parent chain is ever broken (possible only in degenerate edge orders)
  // fall back to reporting every constraint; the deletion-based minimiser
  // in Context reduces over-approximated conflicts to a minimal core.
  const auto fallback_all_tags = [&constraints]() {
    std::vector<std::int64_t> tags;
    tags.reserve(constraints.size());
    for (const DiffConstraint& c : constraints) tags.push_back(c.tag);
    return tags;
  };

  std::vector<std::int64_t> tags;
  std::size_t probe = *relaxed_in_last_round;
  bool chain_ok = true;
  for (std::int32_t i = 0; i < variable_count && chain_ok; ++i) {
    if (parent_edge[probe] < 0) {
      chain_ok = false;
      break;
    }
    probe = static_cast<std::size_t>(
        constraints[static_cast<std::size_t>(parent_edge[probe])].subtrahend);
  }
  if (chain_ok) {
    // `probe` is now on the cycle; walk it once, recording edge tags. Bound
    // the walk by V+1 steps as a defensive limit.
    std::size_t cursor = probe;
    for (std::int32_t steps = 0; steps <= variable_count; ++steps) {
      if (parent_edge[cursor] < 0) {
        chain_ok = false;
        break;
      }
      const auto edge_index = static_cast<std::size_t>(parent_edge[cursor]);
      tags.push_back(constraints[edge_index].tag);
      cursor = static_cast<std::size_t>(constraints[edge_index].subtrahend);
      if (cursor == probe) break;
      if (steps == variable_count) chain_ok = false;
    }
  }
  if (!chain_ok) tags = fallback_all_tags();

  // Deduplicate tags while preserving cycle order (an equality contributes
  // two edges with the same tag; both may appear on the cycle).
  std::vector<std::int64_t> unique_tags;
  for (const std::int64_t tag : tags) {
    if (std::find(unique_tags.begin(), unique_tags.end(), tag) ==
        unique_tags.end()) {
      unique_tags.push_back(tag);
    }
  }

  result.satisfiable = false;
  result.conflict_tags = std::move(unique_tags);
  return result;
}

IncrementalDiffEngine::IncrementalDiffEngine(std::int32_t variable_count) {
  if (variable_count <= 0) {
    throw InvalidArgument("incremental engine needs at least one variable");
  }
  potentials_.assign(static_cast<std::size_t>(variable_count), 0);
  out_.resize(static_cast<std::size_t>(variable_count));
}

std::int32_t IncrementalDiffEngine::add_variable(std::int64_t potential) {
  const auto index = static_cast<std::int32_t>(potentials_.size());
  potentials_.push_back(potential);
  out_.emplace_back();
  return index;
}

std::int64_t IncrementalDiffEngine::potential(std::int32_t variable) const {
  if (variable < 0 || variable >= variable_count()) {
    throw InvalidArgument("incremental engine: unknown variable");
  }
  return potentials_[static_cast<std::size_t>(variable)];
}

bool IncrementalDiffEngine::add(const DiffConstraint& constraint) {
  if (constraint.minuend < 0 || constraint.minuend >= variable_count() ||
      constraint.subtrahend < 0 || constraint.subtrahend >= variable_count()) {
    throw InvalidArgument("difference constraint references unknown variable");
  }
  const auto u = static_cast<std::size_t>(constraint.subtrahend);
  const auto v = static_cast<std::size_t>(constraint.minuend);
  const auto edge_index = static_cast<std::int32_t>(edges_.size());
  edges_.push_back(Edge{constraint.subtrahend, constraint.minuend,
                        constraint.bound, constraint.tag});
  out_[u].push_back(edge_index);

  // Once infeasible the conflict is already recorded; later additions are
  // kept (so pop() bookkeeping stays simple) but not solved.
  if (!feasible_) return false;

  const std::int64_t slack = potentials_[u] + constraint.bound - potentials_[v];
  if (slack >= 0) return true;

  // Cotton-Maler repair: Dijkstra on reduced costs from the edge's target.
  // gamma[x] is the (negative) amount potentials_[x] must still decrease;
  // popping the edge's *source* with a negative gamma means the new edge
  // closes a negative cycle.
  const std::size_t n = potentials_.size();
  std::vector<std::int64_t> gamma(n, 0);
  std::vector<std::int32_t> parent_edge(n, -1);
  std::vector<char> settled(n, 0);
  using QueueEntry = std::pair<std::int64_t, std::size_t>;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue;
  gamma[v] = slack;
  parent_edge[v] = edge_index;
  queue.emplace(slack, v);

  while (!queue.empty()) {
    const auto [g, s] = queue.top();
    queue.pop();
    if (settled[s] != 0 || g != gamma[s]) continue;  // stale entry
    if (gamma[s] >= 0) break;
    if (s == u) {
      // Negative cycle: the new edge plus the parent-edge path back to it.
      feasible_ = false;
      conflict_tags_.clear();
      std::size_t cursor = u;
      do {
        const Edge& edge = edges_[static_cast<std::size_t>(parent_edge[cursor])];
        if (std::find(conflict_tags_.begin(), conflict_tags_.end(),
                      edge.tag) == conflict_tags_.end()) {
          conflict_tags_.push_back(edge.tag);
        }
        cursor = static_cast<std::size_t>(edge.from);
      } while (cursor != u);
      return false;
    }
    settled[s] = 1;
    potentials_[s] += gamma[s];
    gamma[s] = 0;
    for (const std::int32_t e : out_[s]) {
      const Edge& edge = edges_[static_cast<std::size_t>(e)];
      const auto t = static_cast<std::size_t>(edge.to);
      if (settled[t] != 0) continue;
      const std::int64_t candidate =
          potentials_[s] + edge.weight - potentials_[t];
      if (candidate < gamma[t]) {
        gamma[t] = candidate;
        parent_edge[t] = e;
        queue.emplace(candidate, t);
      }
    }
  }
  return true;
}

std::vector<std::int64_t> IncrementalDiffEngine::model() const {
  if (!feasible_) {
    throw InvalidArgument("incremental engine is infeasible; no model");
  }
  std::vector<std::int64_t> values(potentials_.size());
  const std::int64_t shift = potentials_[0];
  for (std::size_t v = 0; v < potentials_.size(); ++v) {
    values[v] = potentials_[v] - shift;
  }
  return values;
}

void IncrementalDiffEngine::push() {
  Scope scope;
  scope.edge_count = edges_.size();
  scope.var_count = potentials_.size();
  scope.potentials = potentials_;
  scope.feasible = feasible_;
  scope.conflict_tags = conflict_tags_;
  scopes_.push_back(std::move(scope));
}

void IncrementalDiffEngine::pop() {
  if (scopes_.empty()) {
    throw InvalidArgument("incremental engine: pop without matching push");
  }
  Scope scope = std::move(scopes_.back());
  scopes_.pop_back();
  while (edges_.size() > scope.edge_count) {
    out_[static_cast<std::size_t>(edges_.back().from)].pop_back();
    edges_.pop_back();
  }
  potentials_ = std::move(scope.potentials);
  out_.resize(scope.var_count);
  feasible_ = scope.feasible;
  conflict_tags_ = std::move(scope.conflict_tags);
}

}  // namespace fsr::smt
