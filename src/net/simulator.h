// Discrete-event network simulator: the ns-3 stand-in FSR's emulation runs
// on (paper Section VI, "Evaluation environment").
//
// The model is deliberately scoped to what the experiments measure:
//   * point-to-point duplex links with bandwidth, propagation latency and
//     optional uniform jitter;
//   * per-direction FIFO serialisation (a message occupies the link for
//     size/bandwidth before propagating);
//   * timers (used by the protocol layer for periodic advertisement
//     batching);
//   * traffic accounting in fixed-width buckets, yielding the
//     "average per-node bandwidth over time" series of Figures 5 and 6;
//   * a deployment profile adding per-message host processing overhead and
//     wider jitter, standing in for the paper's 32-machine testbed runs.
//
// Simulated time is in integer microseconds. The simulator is
// single-threaded and deterministic given its seed.
#ifndef FSR_NET_SIMULATOR_H
#define FSR_NET_SIMULATOR_H

#include <any>
#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <string>
#include <vector>

#include "util/rng.h"

namespace fsr::net {

using Time = std::int64_t;    // microseconds since simulation start
using NodeId = std::int32_t;  // dense node index

constexpr Time k_millisecond = 1'000;
constexpr Time k_second = 1'000'000;

struct LinkConfig {
  double bandwidth_mbps = 100.0;  // paper default: 100 Mbps
  Time latency = 10 * k_millisecond;
  Time max_jitter = 0;  // uniform in [0, max_jitter]
};

/// Host-side behaviour profile. `simulation()` is the ns-3-like default;
/// `testbed()` mimics the paper's deployment mode (socket/stack overhead
/// per message and some scheduling noise).
struct HostProfile {
  Time per_message_overhead = 0;
  Time max_processing_jitter = 0;

  static HostProfile simulation() { return HostProfile{}; }
  static HostProfile testbed() {
    return HostProfile{/*per_message_overhead=*/200,
                       /*max_processing_jitter=*/3 * k_millisecond};
  }
};

/// An in-flight message: opaque payload plus its wire size.
struct Message {
  std::size_t size_bytes = 0;
  std::any payload;
};

/// Aggregate traffic statistics, accumulated while the simulation runs.
class TrafficStats {
 public:
  explicit TrafficStats(Time bucket_width = 10 * k_millisecond)
      : bucket_width_(bucket_width) {}

  void record_send(NodeId sender, Time when, std::size_t bytes);

  std::uint64_t total_messages() const noexcept { return total_messages_; }
  std::uint64_t total_bytes() const noexcept { return total_bytes_; }
  std::uint64_t node_bytes(NodeId node) const;
  Time bucket_width() const noexcept { return bucket_width_; }

  /// Bytes sent network-wide per bucket, index = bucket number.
  const std::vector<std::uint64_t>& bucket_bytes() const noexcept {
    return buckets_;
  }

  /// Average per-node bandwidth in MBps within `bucket` (the Figure 5/6
  /// y-axis), given the node count.
  double average_node_bandwidth_mbps(std::size_t bucket,
                                     std::size_t node_count) const;

 private:
  Time bucket_width_;
  std::uint64_t total_messages_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::vector<std::uint64_t> buckets_;
  std::map<NodeId, std::uint64_t> per_node_bytes_;
};

/// The simulator core.
class Simulator {
 public:
  explicit Simulator(std::uint64_t seed,
                     HostProfile profile = HostProfile::simulation(),
                     Time stats_bucket = 10 * k_millisecond);

  NodeId add_node(std::string name);
  std::size_t node_count() const noexcept { return node_names_.size(); }
  const std::string& node_name(NodeId id) const;

  /// Declares a duplex link (two independent FIFO directions).
  void add_link(NodeId a, NodeId b, LinkConfig config);
  bool has_link(NodeId a, NodeId b) const;

  /// Administrative link state; messages sent over a down link are dropped
  /// silently (used by failure-injection tests).
  void set_link_up(NodeId a, NodeId b, bool up);

  /// The receive callback: invoked at delivery time.
  using Receiver = std::function<void(NodeId from, NodeId to, const Message&)>;
  void set_receiver(Receiver receiver) { receiver_ = std::move(receiver); }

  /// Sends `message` from `a` to `b` over the declared link. Throws
  /// fsr::InvalidArgument if no such link exists.
  void send(NodeId from, NodeId to, Message message);

  /// Schedules `action` to run `delay` microseconds from now.
  void schedule(Time delay, std::function<void()> action);

  Time now() const noexcept { return now_; }

  /// Runs until the event queue drains or `max_time` is exceeded.
  /// Returns true when the queue drained (the system quiesced).
  bool run(Time max_time);

  /// Drops every pending event (used to cut off divergent executions).
  void clear_pending();
  std::size_t pending_events() const noexcept { return queue_.size(); }

  const TrafficStats& stats() const noexcept { return stats_; }
  util::Rng& rng() noexcept { return rng_; }

 private:
  struct DirectedLink {
    LinkConfig config;
    bool up = true;
    Time busy_until = 0;  // serialisation frontier
  };
  struct Event {
    Time at = 0;
    std::uint64_t sequence = 0;  // FIFO among simultaneous events
    std::function<void()> action;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return a.at != b.at ? a.at > b.at : a.sequence > b.sequence;
    }
  };

  DirectedLink& directed_link(NodeId from, NodeId to);

  util::Rng rng_;
  HostProfile profile_;
  std::vector<std::string> node_names_;
  std::map<std::pair<NodeId, NodeId>, DirectedLink> links_;
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
  std::uint64_t next_sequence_ = 0;
  Time now_ = 0;
  Receiver receiver_;
  TrafficStats stats_;
};

}  // namespace fsr::net

#endif  // FSR_NET_SIMULATOR_H
