#include "net/simulator.h"

#include <cmath>

#include "util/error.h"

namespace fsr::net {

// -------------------------------------------------------- TrafficStats --

void TrafficStats::record_send(NodeId sender, Time when, std::size_t bytes) {
  ++total_messages_;
  total_bytes_ += bytes;
  per_node_bytes_[sender] += bytes;
  const auto bucket = static_cast<std::size_t>(when / bucket_width_);
  if (buckets_.size() <= bucket) buckets_.resize(bucket + 1, 0);
  buckets_[bucket] += bytes;
}

std::uint64_t TrafficStats::node_bytes(NodeId node) const {
  const auto it = per_node_bytes_.find(node);
  return it == per_node_bytes_.end() ? 0 : it->second;
}

double TrafficStats::average_node_bandwidth_mbps(
    std::size_t bucket, std::size_t node_count) const {
  if (bucket >= buckets_.size() || node_count == 0) return 0.0;
  const double bucket_seconds =
      static_cast<double>(bucket_width_) / static_cast<double>(k_second);
  const double bytes = static_cast<double>(buckets_[bucket]);
  return bytes / static_cast<double>(node_count) / bucket_seconds / 1e6;
}

// ----------------------------------------------------------- Simulator --

Simulator::Simulator(std::uint64_t seed, HostProfile profile,
                     Time stats_bucket)
    : rng_(seed), profile_(profile), stats_(stats_bucket) {}

NodeId Simulator::add_node(std::string name) {
  node_names_.push_back(std::move(name));
  return static_cast<NodeId>(node_names_.size() - 1);
}

const std::string& Simulator::node_name(NodeId id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= node_names_.size()) {
    throw InvalidArgument("unknown node id " + std::to_string(id));
  }
  return node_names_[static_cast<std::size_t>(id)];
}

void Simulator::add_link(NodeId a, NodeId b, LinkConfig config) {
  (void)node_name(a);
  (void)node_name(b);
  if (a == b) throw InvalidArgument("self-link is not allowed");
  if (config.bandwidth_mbps <= 0.0) {
    throw InvalidArgument("link bandwidth must be positive");
  }
  links_[{a, b}] = DirectedLink{config, true, 0};
  links_[{b, a}] = DirectedLink{config, true, 0};
}

bool Simulator::has_link(NodeId a, NodeId b) const {
  return links_.contains({a, b});
}

void Simulator::set_link_up(NodeId a, NodeId b, bool up) {
  directed_link(a, b).up = up;
  directed_link(b, a).up = up;
}

Simulator::DirectedLink& Simulator::directed_link(NodeId from, NodeId to) {
  const auto it = links_.find({from, to});
  if (it == links_.end()) {
    throw InvalidArgument("no link " + node_name(from) + " -> " +
                          node_name(to));
  }
  return it->second;
}

void Simulator::send(NodeId from, NodeId to, Message message) {
  DirectedLink& link = directed_link(from, to);
  stats_.record_send(from, now_, message.size_bytes);
  if (!link.up) return;  // dropped

  // Host processing (deployment profile) delays the hand-off to the NIC.
  Time depart = now_ + profile_.per_message_overhead;
  if (profile_.max_processing_jitter > 0) {
    depart += rng_.uniform_int(0, profile_.max_processing_jitter);
  }

  // FIFO serialisation: transmission starts when the link is free.
  const double tx_seconds = static_cast<double>(message.size_bytes) * 8.0 /
                            (link.config.bandwidth_mbps * 1e6);
  const Time tx_time = static_cast<Time>(std::ceil(tx_seconds * k_second));
  const Time start = std::max(depart, link.busy_until);
  link.busy_until = start + tx_time;

  Time arrival = link.busy_until + link.config.latency;
  if (link.config.max_jitter > 0) {
    arrival += rng_.uniform_int(0, link.config.max_jitter);
  }

  schedule(arrival - now_,
           [this, from, to, msg = std::move(message)]() mutable {
             if (receiver_) receiver_(from, to, msg);
           });
}

void Simulator::schedule(Time delay, std::function<void()> action) {
  if (delay < 0) throw InvalidArgument("cannot schedule into the past");
  queue_.push(Event{now_ + delay, next_sequence_++, std::move(action)});
}

bool Simulator::run(Time max_time) {
  while (!queue_.empty()) {
    if (queue_.top().at > max_time) return false;
    // std::priority_queue::top is const; the event is copied out before pop
    // so the action can be moved & run after the queue is updated.
    Event event = queue_.top();
    queue_.pop();
    now_ = event.at;
    event.action();
  }
  return true;
}

void Simulator::clear_pending() {
  while (!queue_.empty()) queue_.pop();
}

}  // namespace fsr::net
