#include "api/service.h"

#include <chrono>
#include <utility>

#include "obs/recorder.h"
#include "obs/trace.h"
#include "spp/translate.h"
#include "util/error.h"

namespace fsr::api {
namespace {

/// Maps a session query result onto the engine-facade Result shape,
/// exactly as groundtruth's SatSearchEngine does for the scratch path —
/// the two paths agree on every deterministic field wherever no conflict
/// budget dies mid-query (the PR-4 tested property); effort counters are
/// execution provenance either way.
groundtruth::Result to_ground_truth_result(
    const groundtruth::StableSearchResult& search) {
  groundtruth::Result result;
  result.decided = search.decided;
  result.has_stable = search.has_stable;
  result.count = search.count;
  result.count_exact = search.count_exact;
  result.budget_stop = search.budget_stop;
  if (!search.assignments.empty()) {
    result.witness = search.assignments.front();  // canonical order
  }
  result.conflicts = search.stats.conflicts;
  result.decisions = search.stats.decisions;
  result.propagations = search.stats.propagations;
  return result;
}

}  // namespace

const char* to_string(SchedulePolicy policy) noexcept {
  switch (policy) {
    case SchedulePolicy::affinity:
      return "affinity";
    case SchedulePolicy::round_robin:
      return "round-robin";
  }
  return "affinity";
}

AnalysisService::AnalysisService(ServiceOptions options)
    : options_(std::move(options)),
      router_(options_.threads < 1 ? 1
                                   : static_cast<std::size_t>(options_.threads)),
      submitted_counter_(obs::registry().counter("service.requests.submitted")),
      completed_counter_(obs::registry().counter("service.requests.completed")),
      errors_counter_(obs::registry().counter("service.requests.errors")),
      warm_hits_counter_(obs::registry().counter("service.warm_hits")),
      sessions_built_counter_(obs::registry().counter("service.sessions_built")),
      evictions_counter_(obs::registry().counter("session_cache.evictions")),
      slow_requests_counter_(obs::registry().counter("service.slow_requests")),
      affinity_hits_counter_(
          obs::registry().counter("session_cache.affinity_hits")),
      request_wall_us_(obs::registry().histogram("service.request_wall_us")) {
  if (options_.threads < 1) {
    throw InvalidArgument("service thread count must be >= 1");
  }
  // stats() reports deltas against the registry state seen here.
  baseline_.submitted = submitted_counter_.value();
  baseline_.completed = completed_counter_.value();
  baseline_.errors = errors_counter_.value();
  baseline_.warm_hits = warm_hits_counter_.value();
  baseline_.sessions_built = sessions_built_counter_.value();
  baseline_.sessions_evicted = evictions_counter_.value();
  baseline_.slow_requests = slow_requests_counter_.value();
  baseline_.affinity_hits = affinity_hits_counter_.value();
  queues_.resize(static_cast<std::size_t>(options_.threads));
  workers_.reserve(static_cast<std::size_t>(options_.threads));
  for (int i = 0; i < options_.threads; ++i) {
    workers_.emplace_back([this, i]() {
      obs::set_thread_name("worker-" + std::to_string(i));
      worker_loop(static_cast<std::size_t>(i));
    });
  }
}

AnalysisService::~AnalysisService() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::uint64_t AnalysisService::enqueue(Request request,
                                       std::function<void(Response)> deliver) {
  Job job;
  job.request = std::move(request);
  job.deliver = std::move(deliver);
  // Routing fingerprint. fingerprint() validates first and throws on a bad
  // payload; the error must surface as the response's error field (from
  // execute(), where the bytes are defined), not here — so an unfingerprintable
  // request just routes by the empty string, deterministically.
  try {
    job.fingerprint = fingerprint(job.request);
  } catch (const std::exception&) {
    job.fingerprint.clear();
  }
  std::uint64_t id = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      throw InvalidArgument("submit on a shut-down AnalysisService");
    }
    id = job.id = next_id_++;
    const std::size_t shard =
        options_.schedule == SchedulePolicy::affinity
            ? router_.shard_of(job.fingerprint)
            : static_cast<std::size_t>(rr_next_++) % queues_.size();
    queues_[shard].push_back(std::move(job));
  }
  submitted_counter_.add(1);
  // Affinity pins jobs to one worker's queue, so a targeted wake matters;
  // notify_all keeps the logic simple and submission is rare next to work.
  work_ready_.notify_all();
  return id;
}

std::future<Response> AnalysisService::submit(Request request) {
  // std::function must be copyable; a promise is move-only, so park it in a
  // shared_ptr the deliver closure can own.
  auto promise = std::make_shared<std::promise<Response>>();
  std::future<Response> future = promise->get_future();
  enqueue(std::move(request), [promise](Response response) {
    promise->set_value(std::move(response));
  });
  return future;
}

std::uint64_t AnalysisService::submit(Request request,
                                      std::function<void(Response)> on_complete) {
  return enqueue(std::move(request), std::move(on_complete));
}

std::vector<Response> AnalysisService::run(std::vector<Request> requests) {
  std::vector<std::future<Response>> futures;
  futures.reserve(requests.size());
  for (Request& request : requests) {
    futures.push_back(submit(std::move(request)));
  }
  std::vector<Response> responses;
  responses.reserve(futures.size());
  for (std::future<Response>& future : futures) {
    responses.push_back(future.get());
  }
  return responses;
}

Response AnalysisService::call(Request request) {
  return submit(std::move(request)).get();
}

ServiceStats AnalysisService::stats() const {
  ServiceStats stats;
  stats.submitted = submitted_counter_.value() - baseline_.submitted;
  stats.completed = completed_counter_.value() - baseline_.completed;
  stats.errors = errors_counter_.value() - baseline_.errors;
  stats.warm_hits = warm_hits_counter_.value() - baseline_.warm_hits;
  stats.sessions_built =
      sessions_built_counter_.value() - baseline_.sessions_built;
  stats.sessions_evicted =
      evictions_counter_.value() - baseline_.sessions_evicted;
  stats.slow_requests =
      slow_requests_counter_.value() - baseline_.slow_requests;
  stats.affinity_hits =
      affinity_hits_counter_.value() - baseline_.affinity_hits;
  return stats;
}

void AnalysisService::worker_loop(std::size_t worker) {
  // Worker-owned mutable state: the session cache and (transitively) every
  // solver session it stores live and die with this thread; nothing
  // mutable is ever shared across workers. Each worker drains only its own
  // queue — that is what makes affinity routing stick.
  SessionCache cache(options_.session_cache_capacity);
  std::deque<Job>& queue = queues_[worker];
  while (true) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [&]() { return stopping_ || !queue.empty(); });
      if (queue.empty()) return;  // stopping_, and nothing left to drain
      job = std::move(queue.front());
      queue.pop_front();
    }
    Response response = execute(job.id, job.request, cache, worker);
    completed_counter_.add(1);
    if (!response.error.empty()) errors_counter_.add(1);
    if (response.warm_session) {
      warm_hits_counter_.add(1);
      if (!response.fingerprint.empty() &&
          router_.shard_of(response.fingerprint) == worker) {
        // A warm hit on the worker the router maps this instance to: the
        // observable signature of affinity scheduling doing its job.
        affinity_hits_counter_.add(1);
      }
    }
    // Evictions are counted by the SessionCache itself, straight into the
    // registry — no double bookkeeping here.
    job.deliver(std::move(response));
  }
}

Response AnalysisService::execute(std::uint64_t id, const Request& request,
                                  SessionCache& cache, std::size_t worker) {
  Response response;
  response.id = id;
  response.kind = kind_of(request);
  // Execution provenance (timings-gated on the wire, like wall_ms): WHICH
  // worker served the request. Never part of the deterministic bytes.
  response.shard = static_cast<int>(worker);
  obs::Span span("service.execute");
  span.arg("kind", to_string(response.kind));
  span.arg("id", id);
  obs::record_event(obs::RecorderEventKind::request_begin,
                    to_string(response.kind), id);
  const auto start = std::chrono::steady_clock::now();
  try {
    validate(request);
    response.fingerprint = fingerprint(request);

    if (const auto* req = std::get_if<AnalyzeSafetyRequest>(&request)) {
      // Safety analysis stays on the stateless analyzer: its reports embed
      // solver-path artifacts (scripts, witness models, textual-pipeline
      // cores), so serving them from a warm session could legitimately
      // pick a different minimal core — byte-stability wins over warmth.
      const SafetyAnalyzer analyzer(options_.analyzer);
      const algebra::AlgebraPtr algebra =
          req->algebra != nullptr ? req->algebra
                                  : spp::algebra_from_spp(*req->spp);
      response.safety = analyzer.analyze(*algebra);
    } else if (const auto* req = std::get_if<GroundTruthRequest>(&request)) {
      const groundtruth::Mode mode = req->mode.value_or(options_.ground_truth);
      const groundtruth::Options& truth_options =
          options_.ground_truth_options;
      if (mode == groundtruth::Mode::sat_search) {
        SessionCache::Entry* entry =
            cache.ensure(response.fingerprint, req->spp);
        response.warm_session = entry->oracle.has_value();
        if (!response.warm_session) {
          entry->oracle.emplace(*entry->instance);
          sessions_built_counter_.add(1);
        }
        groundtruth::StableSearchResult search = entry->oracle->analyze(
            {}, truth_options.max_solutions, truth_options.max_conflicts);
        if (response.warm_session &&
            search.budget_stop != groundtruth::BudgetStop::none) {
          // A budget-stopped answer is order-dependent: WHICH assignments a
          // capped enumeration finds (and whether a conflict cap decides at
          // all) follows the solver's search order, which a warm session's
          // learned clauses and activity perturb. The byte-identity
          // contract outranks warmth here: recompute on a fresh session,
          // exactly what a cold worker would have done.
          groundtruth::StableSatSession fresh(*entry->instance);
          search = fresh.analyze({}, truth_options.max_solutions,
                                 truth_options.max_conflicts);
          response.warm_session = false;
        }
        response.ground_truth = to_ground_truth_result(search);
      } else {
        // The enumerate backend keeps no solver state worth warming.
        response.ground_truth =
            groundtruth::make_engine(mode, truth_options)->analyze(*req->spp);
      }
    } else if (const auto* req = std::get_if<RepairRequest>(&request)) {
      SessionCache::Entry* entry = cache.ensure(response.fingerprint, req->spp);
      const bool gate_warm = entry->strict_gate.has_value();
      if (!gate_warm) {
        IncrementalSafetySession::Options gate_options;
        gate_options.extract_models = false;  // gates branch on holds/core
        entry->strict_gate.emplace(
            spp::algebra_from_spp(*entry->instance)->symbolic(),
            MonotonicityMode::strict, gate_options);
        sessions_built_counter_.add(1);
      }
      repair::RepairSessions sessions;
      sessions.strict_gate = &*entry->strict_gate;
      bool oracle_warm = true;
      if (options_.repair.ground_truth == groundtruth::Mode::sat_search &&
          options_.repair.use_incremental_oracle) {
        oracle_warm = entry->oracle.has_value();
        if (!oracle_warm) {
          entry->oracle.emplace(*entry->instance);
          sessions_built_counter_.add(1);
        }
        sessions.oracle = &*entry->oracle;
      }
      response.warm_session = gate_warm && oracle_warm;
      response.repair = repair::RepairEngine(options_.repair)
                            .repair(*req->spp, req->seed, sessions);
    } else if (const auto* req = std::get_if<EmulateRequest>(&request)) {
      EmulationOptions emulation = options_.emulation;
      emulation.seed = req->seed;
      response.emulation = req->spp != nullptr
                               ? emulate_spp(*req->spp, emulation)
                               : emulate_gpv(*req->algebra, *req->topology,
                                             emulation);
    } else if (const auto* req = std::get_if<SimulateRequest>(&request)) {
      // The simulator is deterministic in (instance, options) and keeps no
      // solver state, so there is nothing to warm: the fingerprint still
      // identifies the content (shared with the other kinds over the same
      // instance), but the session cache is never consulted.
      sim::SimOptions sim_options = options_.sim;
      sim_options.seed = req->seed;
      sim_options.scenario = req->scenario;
      sim_options.suppression = req->suppression;
      if (req->max_steps.has_value()) sim_options.max_steps = *req->max_steps;
      response.sim = sim::simulate(*req->spp, sim_options);
    } else if (std::get_if<StatsRequest>(&request) != nullptr) {
      // Live introspection: this service's own deltas plus the process
      // registry. No solver work, no session-cache traffic.
      StatsPayload payload;
      payload.service = stats();
      payload.metrics = obs::registry().snapshot();
      response.stats = std::move(payload);
    } else if (std::get_if<DebugRequest>(&request) != nullptr) {
      // Flight-recorder drain: live like stats. This request's own
      // begin event is already in the rings (intentional — the drain
      // shows the recorder's view up to and including "debug started").
      DebugPayload payload;
      if (obs::FlightRecorder* recorder = obs::recorder()) {
        payload.enabled = true;
        payload.events = recorder->drain();
        payload.dropped = recorder->dropped();
      }
      response.debug = std::move(payload);
    }
  } catch (const std::exception& error) {
    response.error = error.what();
  }
  response.wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - start)
                         .count();
  const auto wall_us = static_cast<std::uint64_t>(response.wall_ms * 1000.0);
  request_wall_us_.record(wall_us);
  if (!response.error.empty()) {
    obs::record_event(obs::RecorderEventKind::error, response.error, id);
  }
  obs::record_event(obs::RecorderEventKind::request_end, response.fingerprint,
                    id, wall_us);
  if (options_.slow_request_ms > 0 &&
      response.wall_ms >= options_.slow_request_ms) {
    // Watchdog: count the outlier and leave a forensic mark in every
    // enabled channel. Never touches the response itself.
    slow_requests_counter_.add(1);
    obs::record_event(
        obs::RecorderEventKind::slow_request, response.fingerprint, wall_us,
        static_cast<std::uint64_t>(options_.slow_request_ms));
    obs::trace_instant("service.slow_request");
  }
  span.arg("warm", response.warm_session);
  if (!response.error.empty()) span.arg("error", true);
  return response;
}

}  // namespace fsr::api
