// The fsr_serve wire protocol: JSON-lines requests in, JSON-lines
// responses out.
//
// One request object per input line. Schema:
//
//   {"kind": K, <payload>, ["seed": N], ["mode": M], ["scenario": S],
//    ["max-steps": N]}
//
//   K        — "analyze-safety" | "ground-truth" | "repair" | "emulate"
//              | "simulate" | "stats" | "debug"
//   payload  — exactly one of (none for "stats", which takes no payload
//              and answers live service counters + the obs registry
//              snapshot, and none for "debug", which drains the installed
//              flight recorder's recent-event history; fsr_serve drains
//              all earlier requests first for both, so their values
//              summarise everything before them in the stream)
//     "gadget": NAME          library gadget (spp::gadget_by_name: good,
//                             bad, disagree, ibgp-figure3,
//                             ibgp-figure3-fixed, good-chain-N,
//                             bad-chain-N)
//     "policy": NAME          standard policy algebra (analyze-safety
//                             only): guideline-a, guideline-b, backup,
//                             bandwidth, widest-shortest,
//                             gao-rexford-hop-count
//     "random": {"seed": N, ...}
//                             seeded random SPP instance (campaign fuzz
//                             generator; optional min_nodes, max_nodes,
//                             paths_per_node, max_path_length)
//     "spp": {"destination": D, "edges": [[U,V],...],
//             "paths": [[hop,...],...], ["name": S]}
//                             inline instance; paths are added in ranked
//                             order (earlier = more preferred at their
//                             source node)
//   "seed"   — SPVP-trial seed (repair), emulation seed, or simulation
//              seed (link delays + churn schedule); optional
//   "mode"   — ground-truth oracle override: "sat-search" | "enumerate"
//   "scenario" — simulate only: churn scenario, one of "steady" (default)
//              | "staged" | "link-flap" | "session-reset"
//   "max-steps" — simulate only: event-budget override (>= 1)
//
// See docs/WIRE.md for the full request/response reference.
//
// Responses are one object per line, in request order, with fixed field
// order and formatting — byte-identical for a fixed request stream and
// ServiceOptions, regardless of --threads (the service determinism
// contract). Deterministic fields only, unless RenderOptions.timings adds
// execution provenance (warm_session, wall_ms, solver effort counters).
// The exceptions are "stats" and "debug": their schema and field order
// are fixed, but their VALUES are live execution state by design —
// counters such as warm_hits depend on which worker served what, the
// registry snapshot includes wall-clock histograms, and recorder events
// carry timestamps and thread ids — so those two kinds make no
// byte-reproducibility promise at all. Filter them out before diffing
// streams (as the CI smoke does).
#ifndef FSR_API_WIRE_H
#define FSR_API_WIRE_H

#include <string>

#include "api/request.h"

namespace fsr::api::wire {

/// Parses one request line; throws fsr::InvalidArgument on malformed JSON
/// or schema violations (fsr_serve answers those with an error response).
Request parse_request(const std::string& line);

struct RenderOptions {
  /// Adds the scheduling-dependent provenance fields. Output is then no
  /// longer byte-stable across thread counts or cache temperature.
  bool timings = false;
};

/// Renders one response as a single JSON line (no trailing newline).
std::string render_response(const Response& response,
                            const RenderOptions& options = {});

}  // namespace fsr::api::wire

#endif  // FSR_API_WIRE_H
