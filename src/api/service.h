// AnalysisService: the one public way into the toolkit's engines.
//
// A service owns a fixed pool of worker threads. Callers submit typed
// Requests (request.h) and receive std::future<Response>; each worker
// keeps a SessionCache of persistent solver sessions (session_cache.h)
// reused across requests keyed by instance fingerprint, so repeated and
// nearby queries hit warm solver state instead of rebuilding — the PR 2 /
// PR 4 within-one-run amortisation extended across the whole service
// lifetime. The previous per-engine surfaces (SafetyAnalyzer,
// GroundTruthEngine, RepairEngine, the emulation drivers) remain as the
// service's backends; new workloads plumb requests, not engines.
//
// Determinism contract (inherited by fsr_serve and the campaign runner):
// every Response's deterministic fields are a pure function of (request
// content, ServiceOptions, request seed). Responses are identified and
// ordered by their dense submission id; worker count, scheduling, and
// session-cache temperature never change deterministic bytes — warm
// sessions are only reused where the answer is provably byte-identical to
// a cold solve (see session_cache.h). Budget-stopped ground-truth answers
// are order-dependent, so those recompute on a fresh session instead of
// trusting warm state; the one residual caveat is a repair oracle's
// conflict budget dying mid-search, the same edge the campaign cache
// keys by.
//
// Thread-safety: submit()/call()/run() and stats() are safe from any
// thread. Workers never share mutable solver state (the
// one-solver-session-per-worker invariant, now owned by the service).
#ifndef FSR_API_SERVICE_H
#define FSR_API_SERVICE_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "api/request.h"
#include "api/session_cache.h"
#include "fsr/emulation.h"
#include "fsr/safety_analyzer.h"
#include "groundtruth/engine.h"
#include "netserve/shard_router.h"
#include "obs/metrics.h"
#include "repair/repair_engine.h"
#include "sim/simulator.h"

namespace fsr::api {

/// How submit() picks the worker for a request.
enum class SchedulePolicy {
  /// Fingerprint-affinity sharding (the default): the request's content
  /// fingerprint is consistent-hashed onto a worker shard
  /// (netserve::ShardRouter), so the same instance always lands on the
  /// worker already holding its warm StableSatSession /
  /// IncrementalSafetySession. This is what keeps the warm hit rate from
  /// being diluted by concurrency; response bytes never depend on it.
  affinity,
  /// Blind rotation over the workers, ignoring the fingerprint — the
  /// pre-netserve submission behaviour, kept as the measurable ablation
  /// baseline (bench_service gates affinity's win over this).
  round_robin,
};

const char* to_string(SchedulePolicy policy) noexcept;

/// The one options struct behind the façade: subsumes the per-engine
/// option structs the four previous entry points took separately.
struct ServiceOptions {
  /// Worker threads (>= 1). Each worker owns its solver sessions and its
  /// SessionCache; deterministic response fields never depend on this.
  int threads = 1;
  /// Warm solver-session entries kept per worker (LRU beyond that);
  /// 0 disables cross-request session reuse entirely.
  std::size_t session_cache_capacity = 8;
  SafetyAnalyzer::Options analyzer;
  repair::RepairOptions repair;
  /// Default ground-truth oracle for GroundTruthRequest (per-request
  /// override via GroundTruthRequest::mode) and its budgets.
  groundtruth::Mode ground_truth = groundtruth::Mode::sat_search;
  groundtruth::Options ground_truth_options;
  /// Base emulation options; each EmulateRequest overrides `.seed`.
  EmulationOptions emulation;
  /// Base event-driven simulation options; each SimulateRequest overrides
  /// `.seed`, `.scenario`, and (when set) `.max_steps`.
  sim::SimOptions sim;
  /// Slow-request watchdog: a request whose wall time reaches this many
  /// milliseconds is counted in "service.slow_requests" (stats and the obs
  /// registry), marked in the flight recorder when one is installed, and
  /// stamped as a "service.slow_request" trace instant when tracing — the
  /// forensic trail for latency outliers. 0 disables the watchdog.
  /// Observation only: response bytes never depend on it.
  double slow_request_ms = 1000.0;
  /// Worker-selection policy for submit(). Affinity preserves warm-session
  /// locality; round_robin is the hash-free ablation baseline. Response
  /// bytes are identical either way (the determinism contract) — only
  /// cache temperature, and hence latency, differs.
  SchedulePolicy schedule = SchedulePolicy::affinity;
};

// ServiceStats now lives in request.h (a StatsRequest response embeds it).

class AnalysisService {
 public:
  explicit AnalysisService(ServiceOptions options = {});
  ~AnalysisService();

  AnalysisService(const AnalysisService&) = delete;
  AnalysisService& operator=(const AnalysisService&) = delete;

  /// Enqueues `request` and returns the future response. Ids are dense and
  /// assigned in submission order; a request that fails (invalid payload,
  /// engine exception) resolves to a Response with `error` set — submit
  /// itself throws only after the service started shutting down.
  std::future<Response> submit(Request request);

  /// Completion-callback submission — the netserve event loop's hook.
  /// `on_complete` runs on the worker thread that served the request, with
  /// the finished Response; it must be fast and must not throw (dispatch a
  /// wake-up, not work). Returns the request's dense submission id.
  std::uint64_t submit(Request request,
                       std::function<void(Response)> on_complete);

  /// Submits the batch and waits for all of it; responses come back in
  /// submission (id) order regardless of which workers answered.
  std::vector<Response> run(std::vector<Request> requests);

  /// Synchronous convenience: submit + get.
  Response call(Request request);

  /// The fingerprint→worker mapping — the affinity seam, exposed so the
  /// scheduling decision is a first-class, testable artifact rather than
  /// an implementation detail. Under SchedulePolicy::affinity this is the
  /// worker submit() picks; responses expose the worker that actually
  /// served them as timings-gated `shard` provenance.
  std::size_t shard_of(const std::string& fingerprint) const noexcept {
    return router_.shard_of(fingerprint);
  }

  const ServiceOptions& options() const noexcept { return options_; }
  /// This service's own counter deltas since construction. The underlying
  /// instruments are the process-wide obs registry ("service.*" and
  /// "session_cache.evictions"); the constructor snapshots a baseline so
  /// concurrent *sequential* services each see their own work. (Two
  /// services running simultaneously share the registry and will see each
  /// other's increments — the registry is process truth, stats() is a
  /// per-instance view.)
  ServiceStats stats() const;

 private:
  struct Job {
    std::uint64_t id = 0;
    Request request;
    /// Routing fingerprint (empty for stats/debug and invalid payloads).
    std::string fingerprint;
    /// Fulfils the caller: a promise-setter for future submits, the raw
    /// callback for hook submits.
    std::function<void(Response)> deliver;
  };

  std::uint64_t enqueue(Request request,
                        std::function<void(Response)> deliver);
  void worker_loop(std::size_t worker);
  Response execute(std::uint64_t id, const Request& request,
                   SessionCache& cache, std::size_t worker);

  ServiceOptions options_;
  netserve::ShardRouter router_;

  // One queue per worker: affinity routing is a push-time decision, and a
  // worker only ever drains its own queue (sessions stay single-owner).
  // One mutex/condvar pair guards them all — submission is cheap next to
  // solver work, so finer-grained locking would buy nothing.
  mutable std::mutex mutex_;
  std::condition_variable work_ready_;
  std::vector<std::deque<Job>> queues_;
  bool stopping_ = false;
  std::uint64_t next_id_ = 0;
  std::uint64_t rr_next_ = 0;  // round_robin rotation state (under mutex_)
  std::vector<std::thread> workers_;

  // Consolidated counters: one source of truth in the obs registry.
  // References are stable for the process lifetime (obs/metrics.h).
  obs::Counter& submitted_counter_;
  obs::Counter& completed_counter_;
  obs::Counter& errors_counter_;
  obs::Counter& warm_hits_counter_;
  obs::Counter& sessions_built_counter_;
  obs::Counter& evictions_counter_;  // shared with SessionCache
  obs::Counter& slow_requests_counter_;
  obs::Counter& affinity_hits_counter_;  // warm hits on the mapped shard
  obs::Histogram& request_wall_us_;
  ServiceStats baseline_;  // registry values at construction
};

}  // namespace fsr::api

#endif  // FSR_API_SERVICE_H
