// The typed request/response family of the fsr::api service façade.
//
// Every analysis the toolkit can run — safety analysis, exact stable-paths
// ground truth, counterexample-guided repair, NDlog emulation — is phrased
// as one tagged Request and answered by one Response. The request carries
// only the PROBLEM (shared immutable payloads plus the seed where results
// are legitimately seed-dependent); engine configuration lives in
// ServiceOptions (service.h), so two services with equal options answer
// equal requests identically, byte for byte.
//
// Determinism contract: a Response's deterministic fields (everything
// except wall_ms and warm_session, which renderers exclude by default) are
// a pure function of (request content, service options, request seed) —
// independent of worker count, scheduling, and warm-session temperature.
// That is what lets fsr_serve promise byte-identical output for any
// --threads value, and what the service-layer tests sweep.
#ifndef FSR_API_REQUEST_H
#define FSR_API_REQUEST_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <variant>

#include "algebra/algebra.h"
#include "fsr/emulation.h"
#include "fsr/safety_analyzer.h"
#include "groundtruth/engine.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "repair/repair_engine.h"
#include "sim/simulator.h"
#include "spp/spp.h"
#include "topology/topology.h"

namespace fsr::api {

enum class RequestKind {
  analyze_safety,
  ground_truth,
  repair,
  emulate,
  simulate,
  stats,
  debug,
};

const char* to_string(RequestKind kind) noexcept;
/// Parses the wire spelling ("analyze-safety", "ground-truth", "repair",
/// "emulate", "simulate", "stats", "debug"); nullopt for anything else.
std::optional<RequestKind> parse_request_kind(const std::string& text);

/// Safety analysis (paper Section IV): exactly one of `algebra` (analyze
/// directly) or `spp` (translate per Section III-B, then analyze).
struct AnalyzeSafetyRequest {
  algebra::AlgebraPtr algebra;
  std::shared_ptr<const spp::SppInstance> spp;
};

/// Exact stable-paths verdict for an SPP instance. `mode` overrides the
/// service's default oracle per request (sat-search answers through the
/// worker's warm StableSatSession when one is cached for this instance).
struct GroundTruthRequest {
  std::shared_ptr<const spp::SppInstance> spp;
  std::optional<groundtruth::Mode> mode;
};

/// Counterexample-guided repair of an SPP instance. `seed` drives only the
/// SPVP ground-truth trials (the campaign layer passes the content-derived
/// seed to keep repair outcomes content-determined; the CLIs pass --seed).
struct RepairRequest {
  std::shared_ptr<const spp::SppInstance> spp;
  std::uint64_t seed = 1;
};

/// NDlog emulation (paper Section VI): an SPP instance, or an algebra over
/// an annotated topology. Results are seed-dependent by design (timer
/// jitter, batching drift), so the seed is part of the request identity.
struct EmulateRequest {
  std::shared_ptr<const spp::SppInstance> spp;
  algebra::AlgebraPtr algebra;
  std::shared_ptr<const topology::Topology> topology;
  std::uint64_t seed = 1;
};

/// Event-driven SPVP simulation (sim/simulator.h): how an SPP instance
/// converges — messages, activation steps, churn response — rather than
/// whether it can diverge. Results are seed-dependent by design (the seed
/// fixes link delays and churn schedules), so the seed, scenario,
/// suppression policy, and step budget are part of the request identity;
/// the remaining knobs live in ServiceOptions::sim like every other
/// engine's configuration.
struct SimulateRequest {
  std::shared_ptr<const spp::SppInstance> spp;
  std::uint64_t seed = 1;
  /// One of sim::scenario_names(); validate() rejects anything else.
  std::string scenario = "steady";
  /// One of sim::suppression_names(); validate() rejects anything else.
  std::string suppression = "none";
  /// Overrides ServiceOptions::sim.max_steps when set.
  std::optional<std::uint64_t> max_steps;
};

/// Live service introspection: no payload, no solver work. The response
/// carries the service's own counters plus a snapshot of the process-wide
/// obs registry. Values are execution state, not analysis results — the
/// one request kind whose response bytes legitimately depend on what else
/// the process has done (schema and field order stay fixed; fsr_serve
/// drains every earlier request first so a serial stream sees a
/// well-defined "everything before me" snapshot). Never cached: its
/// fingerprint is empty by contract, so it can never hit the session cache
/// or a campaign ResultCache — a live snapshot served from a cache would
/// be a lie.
struct StatsRequest {};

/// Flight-recorder drain: no payload, no solver work. The response carries
/// the merged recent-event history of the installed obs::FlightRecorder
/// (empty with `enabled: false` when none is installed — e.g. fsr_serve
/// without --recorder). Live execution state like `stats`: the event list
/// depends on what the process did, the schema and ordering (global seq)
/// are fixed, and fsr_serve drains every earlier request first so the
/// history is quiesced and complete when read. Never cached, like `stats`:
/// the empty fingerprint keeps it out of every cache layer by construction.
struct DebugRequest {};

using Request =
    std::variant<AnalyzeSafetyRequest, GroundTruthRequest, RepairRequest,
                 EmulateRequest, SimulateRequest, StatsRequest, DebugRequest>;

RequestKind kind_of(const Request& request) noexcept;

/// Throws fsr::InvalidArgument unless the request carries exactly the
/// payload shape its kind needs (the service turns the throw into an
/// error Response; callers may validate early for fail-fast behaviour).
void validate(const Request& request);

/// 16-hex content digest of the request's payload — kind-free and
/// seed-free, so a ground-truth request and a repair request over the same
/// instance share one fingerprint and hence one warm session-cache entry.
/// Built from the campaign layer's canonical forms (campaign/cache.h).
std::string fingerprint(const Request& request);

/// Lifetime counters of one AnalysisService (deltas since construction,
/// carved out of the process-wide obs registry so a test or caller can
/// reason about "this service's" work even though the registry is global).
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t errors = 0;       // responses with a non-empty error
  std::uint64_t warm_hits = 0;    // responses served from warm sessions
  std::uint64_t sessions_built = 0;
  std::uint64_t sessions_evicted = 0;
  std::uint64_t slow_requests = 0;  // wall time over ServiceOptions threshold
  /// Warm hits that landed on the worker the shard router maps the
  /// instance to — affinity scheduling observed, not inferred. Under
  /// SchedulePolicy::affinity this tracks warm_hits; under round_robin it
  /// counts only accidental alignment.
  std::uint64_t affinity_hits = 0;
};

/// What a StatsRequest answers with: the owning service's counters plus
/// the process-wide registry snapshot (obs/metrics.h).
struct StatsPayload {
  ServiceStats service;
  obs::MetricsSnapshot metrics;
};

/// What a DebugRequest answers with: the installed flight recorder's
/// merged event history (obs/recorder.h). `enabled` is false — and the
/// rest zero/empty — when no recorder is installed.
struct DebugPayload {
  bool enabled = false;
  std::uint64_t dropped = 0;  // lifetime ring-overwrite count
  std::vector<obs::RecorderEvent> events;
};

/// One request's answer. Exactly one payload optional is set on success
/// (matching the request kind); `error` is non-empty instead when the
/// request failed, and a failed request never aborts the service.
struct Response {
  std::uint64_t id = 0;  // dense submission order, the response ordering key
  RequestKind kind = RequestKind::analyze_safety;
  std::string fingerprint;
  std::string error;

  std::optional<SafetyReport> safety;
  std::optional<groundtruth::Result> ground_truth;
  std::optional<repair::RepairReport> repair;
  std::optional<EmulationResult> emulation;
  std::optional<sim::SimResult> sim;
  std::optional<StatsPayload> stats;
  std::optional<DebugPayload> debug;

  // Execution provenance: scheduling-dependent, so excluded from
  // deterministic renderings (wire.h gates them behind `timings`).
  bool warm_session = false;  // served entirely from cached solver sessions
  double wall_ms = 0.0;
  int shard = -1;  // worker that served the request; -1 = not recorded
};

}  // namespace fsr::api

#endif  // FSR_API_REQUEST_H
