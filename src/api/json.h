// Minimal JSON value model + recursive-descent parser for the fsr_serve
// wire protocol (one request object per input line).
//
// Scope: full JSON syntax (objects, arrays, strings with escapes, numbers,
// booleans, null) with object member ORDER PRESERVED; numbers are held as
// doubles plus the exact integer when the literal is integral, which is
// all the wire layer needs (ids, seeds, small budgets). This is a reader
// for trusted-operator input, not a streaming parser: inputs are single
// request lines, and any syntax error throws fsr::InvalidArgument with a
// byte offset so the CLI can report the offending line precisely.
//
// Rendering stays out of scope on purpose: responses are rendered by
// purpose-built writers (wire.cpp) because byte-stable output — field
// order, number formatting — is part of the service contract, and a
// generic value printer would make those choices implicit.
#ifndef FSR_API_JSON_H
#define FSR_API_JSON_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace fsr::api::json {

class Value {
 public:
  enum class Type { null, boolean, number, string, array, object };

  Type type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == Type::null; }

  /// Typed getters throw fsr::InvalidArgument on a type mismatch, naming
  /// `where` (usually the field being read) in the message.
  bool as_bool(const std::string& where) const;
  double as_number(const std::string& where) const;
  /// The number as a non-negative integer; throws when the literal was
  /// fractional, negative, or not a number.
  std::uint64_t as_u64(const std::string& where) const;
  const std::string& as_string(const std::string& where) const;
  const std::vector<Value>& as_array(const std::string& where) const;
  const std::vector<std::pair<std::string, Value>>& as_object(
      const std::string& where) const;

  /// Object member lookup (first match); nullptr when absent or not an
  /// object.
  const Value* find(const std::string& key) const noexcept;

  // Construction is the parser's business; tests may use these directly.
  static Value make_null();
  static Value make_bool(bool value);
  static Value make_number(double value, bool integral, std::uint64_t integer);
  static Value make_string(std::string value);
  static Value make_array(std::vector<Value> items);
  static Value make_object(std::vector<std::pair<std::string, Value>> members);

 private:
  Type type_ = Type::null;
  bool bool_ = false;
  double number_ = 0.0;
  bool integral_ = false;
  std::uint64_t integer_ = 0;
  std::string string_;
  std::vector<Value> items_;
  std::vector<std::pair<std::string, Value>> members_;
};

/// Parses exactly one JSON value from `text` (surrounding whitespace
/// allowed, trailing garbage rejected). Throws fsr::InvalidArgument on any
/// syntax error.
Value parse(const std::string& text);

}  // namespace fsr::api::json

#endif  // FSR_API_JSON_H
