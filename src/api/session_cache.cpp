#include "api/session_cache.h"

#include "obs/metrics.h"
#include "obs/recorder.h"

namespace fsr::api {

namespace {

// Per-cache counters stay (single-thread, test-visible); the registry gets
// the process-wide aggregate across all workers. References are resolved
// once — ensure() itself never takes the registration lock.
struct CacheMetrics {
  obs::Counter& hits = obs::registry().counter("session_cache.hits");
  obs::Counter& misses = obs::registry().counter("session_cache.misses");
  obs::Counter& evictions = obs::registry().counter("session_cache.evictions");
};

CacheMetrics& cache_metrics() {
  static CacheMetrics metrics;
  return metrics;
}

}  // namespace

SessionCache::Entry* SessionCache::ensure(
    const std::string& fingerprint,
    const std::shared_ptr<const spp::SppInstance>& instance) {
  CacheMetrics& metrics = cache_metrics();
  if (capacity_ == 0) {
    ++misses_;
    metrics.misses.add(1);
    scratch_.emplace();
    scratch_->fingerprint = fingerprint;
    scratch_->instance = instance;
    return &*scratch_;
  }
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->fingerprint == fingerprint) {
      ++hits_;
      metrics.hits.add(1);
      entries_.splice(entries_.begin(), entries_, it);  // bump to MRU
      return &entries_.front();
    }
  }
  ++misses_;
  metrics.misses.add(1);
  if (entries_.size() >= capacity_) {
    obs::record_event(obs::RecorderEventKind::cache_eviction,
                      entries_.back().fingerprint);
    entries_.pop_back();
    ++evictions_;
    metrics.evictions.add(1);
  }
  entries_.emplace_front();
  entries_.front().fingerprint = fingerprint;
  entries_.front().instance = instance;
  return &entries_.front();
}

}  // namespace fsr::api
