#include "api/session_cache.h"

namespace fsr::api {

SessionCache::Entry* SessionCache::ensure(
    const std::string& fingerprint,
    const std::shared_ptr<const spp::SppInstance>& instance) {
  if (capacity_ == 0) {
    ++misses_;
    scratch_.emplace();
    scratch_->fingerprint = fingerprint;
    scratch_->instance = instance;
    return &*scratch_;
  }
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->fingerprint == fingerprint) {
      ++hits_;
      entries_.splice(entries_.begin(), entries_, it);  // bump to MRU
      return &entries_.front();
    }
  }
  ++misses_;
  if (entries_.size() >= capacity_) {
    entries_.pop_back();
    ++evictions_;
  }
  entries_.emplace_front();
  entries_.front().fingerprint = fingerprint;
  entries_.front().instance = instance;
  return &entries_.front();
}

}  // namespace fsr::api
