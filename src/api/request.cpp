#include "api/request.h"

#include "campaign/cache.h"
#include "util/error.h"

namespace fsr::api {

const char* to_string(RequestKind kind) noexcept {
  switch (kind) {
    case RequestKind::analyze_safety:
      return "analyze-safety";
    case RequestKind::ground_truth:
      return "ground-truth";
    case RequestKind::repair:
      return "repair";
    case RequestKind::emulate:
      return "emulate";
    case RequestKind::simulate:
      return "simulate";
    case RequestKind::stats:
      return "stats";
    case RequestKind::debug:
      return "debug";
  }
  return "analyze-safety";
}

std::optional<RequestKind> parse_request_kind(const std::string& text) {
  if (text == "analyze-safety") return RequestKind::analyze_safety;
  if (text == "ground-truth") return RequestKind::ground_truth;
  if (text == "repair") return RequestKind::repair;
  if (text == "emulate") return RequestKind::emulate;
  if (text == "simulate") return RequestKind::simulate;
  if (text == "stats") return RequestKind::stats;
  if (text == "debug") return RequestKind::debug;
  return std::nullopt;
}

RequestKind kind_of(const Request& request) noexcept {
  struct Visitor {
    RequestKind operator()(const AnalyzeSafetyRequest&) const {
      return RequestKind::analyze_safety;
    }
    RequestKind operator()(const GroundTruthRequest&) const {
      return RequestKind::ground_truth;
    }
    RequestKind operator()(const RepairRequest&) const {
      return RequestKind::repair;
    }
    RequestKind operator()(const EmulateRequest&) const {
      return RequestKind::emulate;
    }
    RequestKind operator()(const SimulateRequest&) const {
      return RequestKind::simulate;
    }
    RequestKind operator()(const StatsRequest&) const {
      return RequestKind::stats;
    }
    RequestKind operator()(const DebugRequest&) const {
      return RequestKind::debug;
    }
  };
  return std::visit(Visitor{}, request);
}

void validate(const Request& request) {
  struct Visitor {
    void operator()(const AnalyzeSafetyRequest& req) const {
      const bool has_algebra = req.algebra != nullptr;
      const bool has_spp = req.spp != nullptr;
      if (has_algebra == has_spp) {
        throw InvalidArgument(
            "analyze-safety request needs exactly one of {algebra, spp}");
      }
    }
    void operator()(const GroundTruthRequest& req) const {
      if (req.spp == nullptr) {
        throw InvalidArgument("ground-truth request needs an SPP instance");
      }
    }
    void operator()(const RepairRequest& req) const {
      if (req.spp == nullptr) {
        throw InvalidArgument("repair request needs an SPP instance");
      }
    }
    void operator()(const EmulateRequest& req) const {
      const bool spp_shape = req.spp != nullptr && req.algebra == nullptr &&
                             req.topology == nullptr;
      const bool gpv_shape = req.spp == nullptr && req.algebra != nullptr &&
                             req.topology != nullptr;
      if (!spp_shape && !gpv_shape) {
        throw InvalidArgument(
            "emulate request needs an SPP instance, or an algebra plus a "
            "topology");
      }
    }
    void operator()(const SimulateRequest& req) const {
      if (req.spp == nullptr) {
        throw InvalidArgument("simulate request needs an SPP instance");
      }
      if (!sim::is_scenario_name(req.scenario)) {
        throw InvalidArgument("unknown simulation scenario '" + req.scenario +
                              "' (expected one of: steady, staged, "
                              "link-flap, session-reset)");
      }
      if (!sim::is_suppression_name(req.suppression)) {
        throw InvalidArgument("unknown suppression policy '" +
                              req.suppression +
                              "' (expected one of: none, split-horizon, "
                              "poisoned-reverse)");
      }
      if (req.max_steps.has_value() && *req.max_steps == 0) {
        throw InvalidArgument("simulate max-steps must be >= 1");
      }
    }
    void operator()(const StatsRequest&) const {}  // no payload to check
    void operator()(const DebugRequest&) const {}  // no payload to check
  };
  std::visit(Visitor{}, request);
}

namespace {

std::string payload_canonical(const Request& request) {
  struct Visitor {
    std::string operator()(const AnalyzeSafetyRequest& req) const {
      if (req.spp != nullptr) return campaign::canonical_spp(*req.spp);
      return "alg|" + req.algebra->name() + "|" +
             campaign::canonical_spec(req.algebra->symbolic());
    }
    std::string operator()(const GroundTruthRequest& req) const {
      return campaign::canonical_spp(*req.spp);
    }
    std::string operator()(const RepairRequest& req) const {
      return campaign::canonical_spp(*req.spp);
    }
    std::string operator()(const EmulateRequest& req) const {
      if (req.spp != nullptr) return campaign::canonical_spp(*req.spp);
      return "alg|" + req.algebra->name() + "|" +
             campaign::canonical_spec(req.algebra->symbolic()) + "|topo|" +
             campaign::canonical_topology(*req.topology);
    }
    std::string operator()(const SimulateRequest& req) const {
      return campaign::canonical_spp(*req.spp);
    }
    std::string operator()(const StatsRequest&) const { return std::string(); }
    std::string operator()(const DebugRequest&) const { return std::string(); }
  };
  return std::visit(Visitor{}, request);
}

}  // namespace

std::string fingerprint(const Request& request) {
  validate(request);
  // Stats and debug requests carry no payload: an empty fingerprint keeps
  // them away from the session cache (nothing to warm, nothing to evict).
  if (std::holds_alternative<StatsRequest>(request) ||
      std::holds_alternative<DebugRequest>(request)) {
    return std::string();
  }
  return campaign::content_digest(payload_canonical(request));
}

}  // namespace fsr::api
