#include "api/json.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "util/error.h"

namespace fsr::api::json {
namespace {

const char* type_name(Value::Type type) noexcept {
  switch (type) {
    case Value::Type::null:
      return "null";
    case Value::Type::boolean:
      return "boolean";
    case Value::Type::number:
      return "number";
    case Value::Type::string:
      return "string";
    case Value::Type::array:
      return "array";
    case Value::Type::object:
      return "object";
  }
  return "value";
}

[[noreturn]] void type_error(const std::string& where, const char* wanted,
                             Value::Type got) {
  throw InvalidArgument("json: " + where + " must be a " + wanted +
                        ", not a " + type_name(got));
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value run() {
    Value value = parse_value();
    skip_whitespace();
    if (at_ != text_.size()) fail("trailing characters after the value");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw InvalidArgument("json: " + message + " at byte " +
                          std::to_string(at_));
  }

  void skip_whitespace() {
    while (at_ < text_.size() &&
           (text_[at_] == ' ' || text_[at_] == '\t' || text_[at_] == '\n' ||
            text_[at_] == '\r')) {
      ++at_;
    }
  }

  char peek() {
    if (at_ >= text_.size()) fail("unexpected end of input");
    return text_[at_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', found '" + text_[at_] + "'");
    }
    ++at_;
  }

  bool consume_literal(const char* literal) {
    std::size_t length = 0;
    while (literal[length] != '\0') ++length;
    if (text_.compare(at_, length, literal) != 0) return false;
    at_ += length;
    return true;
  }

  Value parse_value() {
    skip_whitespace();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Value::make_string(parse_string());
    if (c == 't') {
      if (!consume_literal("true")) fail("bad literal");
      return Value::make_bool(true);
    }
    if (c == 'f') {
      if (!consume_literal("false")) fail("bad literal");
      return Value::make_bool(false);
    }
    if (c == 'n') {
      if (!consume_literal("null")) fail("bad literal");
      return Value::make_null();
    }
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    fail(std::string("unexpected character '") + c + "'");
  }

  Value parse_object() {
    expect('{');
    std::vector<std::pair<std::string, Value>> members;
    skip_whitespace();
    if (peek() == '}') {
      ++at_;
      return Value::make_object(std::move(members));
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      members.emplace_back(std::move(key), parse_value());
      skip_whitespace();
      const char c = peek();
      if (c == ',') {
        ++at_;
        continue;
      }
      if (c == '}') {
        ++at_;
        return Value::make_object(std::move(members));
      }
      fail("expected ',' or '}' in object");
    }
  }

  Value parse_array() {
    expect('[');
    std::vector<Value> items;
    skip_whitespace();
    if (peek() == ']') {
      ++at_;
      return Value::make_array(std::move(items));
    }
    while (true) {
      items.push_back(parse_value());
      skip_whitespace();
      const char c = peek();
      if (c == ',') {
        ++at_;
        continue;
      }
      if (c == ']') {
        ++at_;
        return Value::make_array(std::move(items));
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (at_ >= text_.size()) fail("unterminated string");
      const char c = text_[at_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (at_ >= text_.size()) fail("unterminated escape");
      const char escape = text_[at_++];
      switch (escape) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (at_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[at_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape digit");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not worth
          // supporting for this wire format's node names).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = at_;
    bool integral = true;
    if (peek() == '-') ++at_;
    while (at_ < text_.size() && text_[at_] >= '0' && text_[at_] <= '9') ++at_;
    if (at_ < text_.size() && text_[at_] == '.') {
      integral = false;
      ++at_;
      while (at_ < text_.size() && text_[at_] >= '0' && text_[at_] <= '9') {
        ++at_;
      }
    }
    if (at_ < text_.size() && (text_[at_] == 'e' || text_[at_] == 'E')) {
      integral = false;
      ++at_;
      if (at_ < text_.size() && (text_[at_] == '+' || text_[at_] == '-')) {
        ++at_;
      }
      while (at_ < text_.size() && text_[at_] >= '0' && text_[at_] <= '9') {
        ++at_;
      }
    }
    const std::string literal = text_.substr(start, at_ - start);
    if (literal.empty() || literal == "-") fail("bad number");
    const double value = std::strtod(literal.c_str(), nullptr);
    std::uint64_t integer = 0;
    if (integral && literal[0] != '-') {
      integer = std::strtoull(literal.c_str(), nullptr, 10);
    } else if (integral) {
      integral = false;  // negative integers: callers only take u64
    }
    return Value::make_number(value, integral, integer);
  }

  const std::string& text_;
  std::size_t at_ = 0;
};

}  // namespace

bool Value::as_bool(const std::string& where) const {
  if (type_ != Type::boolean) type_error(where, "boolean", type_);
  return bool_;
}

double Value::as_number(const std::string& where) const {
  if (type_ != Type::number) type_error(where, "number", type_);
  return number_;
}

std::uint64_t Value::as_u64(const std::string& where) const {
  if (type_ != Type::number || !integral_) {
    type_error(where, "non-negative integer", type_);
  }
  return integer_;
}

const std::string& Value::as_string(const std::string& where) const {
  if (type_ != Type::string) type_error(where, "string", type_);
  return string_;
}

const std::vector<Value>& Value::as_array(const std::string& where) const {
  if (type_ != Type::array) type_error(where, "array", type_);
  return items_;
}

const std::vector<std::pair<std::string, Value>>& Value::as_object(
    const std::string& where) const {
  if (type_ != Type::object) type_error(where, "object", type_);
  return members_;
}

const Value* Value::find(const std::string& key) const noexcept {
  if (type_ != Type::object) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

Value Value::make_null() { return Value(); }

Value Value::make_bool(bool value) {
  Value out;
  out.type_ = Type::boolean;
  out.bool_ = value;
  return out;
}

Value Value::make_number(double value, bool integral, std::uint64_t integer) {
  Value out;
  out.type_ = Type::number;
  out.number_ = value;
  out.integral_ = integral;
  out.integer_ = integer;
  return out;
}

Value Value::make_string(std::string value) {
  Value out;
  out.type_ = Type::string;
  out.string_ = std::move(value);
  return out;
}

Value Value::make_array(std::vector<Value> items) {
  Value out;
  out.type_ = Type::array;
  out.items_ = std::move(items);
  return out;
}

Value Value::make_object(std::vector<std::pair<std::string, Value>> members) {
  Value out;
  out.type_ = Type::object;
  out.members_ = std::move(members);
  return out;
}

Value parse(const std::string& text) { return Parser(text).run(); }

}  // namespace fsr::api::json
