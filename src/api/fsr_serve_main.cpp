// fsr_serve: the streaming front-end of the fsr::api service.
//
//   printf '%s\n' \
//     '{"kind": "analyze-safety", "gadget": "bad"}' \
//     '{"kind": "ground-truth", "gadget": "bad-chain-8"}' \
//     '{"kind": "repair", "gadget": "bad"}' | fsr_serve --threads 4
//
// Reads JSON-lines requests from stdin (see api/wire.h for the schema),
// fans them out over the AnalysisService worker pool, and streams
// JSON-lines responses to stdout IN REQUEST ORDER — for a fixed request
// stream and options the output bytes are identical for any --threads
// value (the service determinism contract; --timings adds scheduling-
// dependent provenance and breaks that property on purpose).
//
// A malformed or failing request answers with an error response on its
// line — it never aborts the stream. The process exits 0 when every line
// was answered, 1 when any response carried an error (so batch pipelines
// notice), 2 on usage errors.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <future>
#include <iostream>
#include <optional>
#include <string>

#include "api/json.h"
#include "api/service.h"
#include "api/wire.h"
#include "groundtruth/engine.h"
#include "obs/export.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "util/error.h"

namespace {

void print_usage() {
  std::printf(
      "usage: fsr_serve [options] < requests.jsonl > responses.jsonl\n"
      "  --threads N        service worker threads (default 1); responses\n"
      "                     are byte-identical for any value\n"
      "  --session-cache N  warm solver sessions kept per worker\n"
      "                     (default 8; 0 disables cross-request reuse)\n"
      "  --max-edits K      repair edit-size cap (default 2)\n"
      "  --beam W           repair frontier beam width (default 64)\n"
      "  --ground-truth M   default oracle: sat-search (default) |\n"
      "                     enumerate\n"
      "  --timings          add warm_session/wall_ms provenance (output\n"
      "                     is then no longer byte-stable)\n"
      "  --trace-out FILE   write a Chrome trace_event JSON of the run\n"
      "                     (load in about:tracing or ui.perfetto.dev);\n"
      "                     response bytes are unaffected\n"
      "  --metrics-out FILE rewrite FILE atomically with an OpenMetrics\n"
      "                     snapshot of the obs registry, every\n"
      "                     --metrics-interval-ms (default 1000) and once\n"
      "                     at exit; scrape-ready, bytes unaffected\n"
      "  --metrics-interval-ms N\n"
      "                     snapshot period for --metrics-out\n"
      "  --recorder N       install a flight recorder keeping the last N\n"
      "                     events per thread (drained by the \"debug\"\n"
      "                     request kind; 0 = off, the default)\n"
      "  --crash-dump FILE  dump recorder events + a registry snapshot to\n"
      "                     FILE on SIGSEGV/SIGABRT (then die) and on\n"
      "                     SIGUSR1 (on demand, keep serving); implies\n"
      "                     --recorder 1024 unless set explicitly\n"
      "  --slow-ms N        slow-request watchdog threshold in ms\n"
      "                     (fractional ok; default 1000; 0 disables)\n"
      "  --help             this message\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fsr::api;

  ServiceOptions options;
  wire::RenderOptions render_options;
  std::string trace_out;
  std::string metrics_out;
  int metrics_interval_ms = 1000;
  std::size_t recorder_capacity = 0;
  std::string crash_dump;

  const auto need_value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "fsr_serve: %s requires a value\n", flag);
      std::exit(2);
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--threads") == 0) {
      options.threads = std::atoi(need_value(i, "--threads"));
      if (options.threads < 1) {
        std::fprintf(stderr, "fsr_serve: --threads needs a value >= 1\n");
        return 2;
      }
    } else if (std::strcmp(arg, "--session-cache") == 0) {
      const int capacity = std::atoi(need_value(i, "--session-cache"));
      if (capacity < 0) {
        std::fprintf(stderr, "fsr_serve: --session-cache needs a value >= 0\n");
        return 2;
      }
      options.session_cache_capacity = static_cast<std::size_t>(capacity);
    } else if (std::strcmp(arg, "--max-edits") == 0) {
      const int max_edits = std::atoi(need_value(i, "--max-edits"));
      if (max_edits < 1) {
        std::fprintf(stderr, "fsr_serve: --max-edits needs a value >= 1\n");
        return 2;
      }
      options.repair.max_edits = static_cast<std::size_t>(max_edits);
    } else if (std::strcmp(arg, "--beam") == 0) {
      const int beam = std::atoi(need_value(i, "--beam"));
      if (beam < 0) {
        std::fprintf(stderr, "fsr_serve: --beam needs a value >= 0\n");
        return 2;
      }
      options.repair.beam_width = static_cast<std::size_t>(beam);
    } else if (std::optional<fsr::groundtruth::Mode> mode;
               fsr::groundtruth::consume_mode_flag(argc, argv, i, mode)) {
      if (!mode.has_value()) {
        std::fprintf(stderr,
                     "fsr_serve: --ground-truth needs a mode "
                     "(enumerate | sat-search)\n");
        return 2;
      }
      options.ground_truth = *mode;
      options.repair.ground_truth = *mode;
    } else if (std::strcmp(arg, "--timings") == 0) {
      render_options.timings = true;
    } else if (std::strcmp(arg, "--trace-out") == 0) {
      trace_out = need_value(i, "--trace-out");
    } else if (std::strcmp(arg, "--metrics-out") == 0) {
      metrics_out = need_value(i, "--metrics-out");
    } else if (std::strcmp(arg, "--metrics-interval-ms") == 0) {
      metrics_interval_ms = std::atoi(need_value(i, "--metrics-interval-ms"));
      if (metrics_interval_ms < 1) {
        std::fprintf(stderr,
                     "fsr_serve: --metrics-interval-ms needs a value >= 1\n");
        return 2;
      }
    } else if (std::strcmp(arg, "--recorder") == 0) {
      const int capacity = std::atoi(need_value(i, "--recorder"));
      if (capacity < 0) {
        std::fprintf(stderr, "fsr_serve: --recorder needs a value >= 0\n");
        return 2;
      }
      recorder_capacity = static_cast<std::size_t>(capacity);
    } else if (std::strcmp(arg, "--crash-dump") == 0) {
      crash_dump = need_value(i, "--crash-dump");
    } else if (std::strcmp(arg, "--slow-ms") == 0) {
      const double slow_ms = std::atof(need_value(i, "--slow-ms"));
      if (slow_ms < 0) {
        std::fprintf(stderr, "fsr_serve: --slow-ms needs a value >= 0\n");
        return 2;
      }
      options.slow_request_ms = slow_ms;
    } else if (std::strcmp(arg, "--help") == 0) {
      print_usage();
      return 0;
    } else {
      std::fprintf(stderr, "fsr_serve: unknown option '%s'\n", arg);
      print_usage();
      return 2;
    }
  }

  fsr::obs::set_thread_name("main");

  // Install the tracer before the service spins up its workers; it is
  // uninstalled (and the file written) only after the final flush below
  // has resolved every future — by which point each request's spans are
  // already recorded (a span ends before its response is delivered).
  fsr::obs::Tracer tracer;
  if (!trace_out.empty()) fsr::obs::install_tracer(&tracer);

  // The recorder outlives the service (declared first, destroyed last):
  // worker threads cache ring pointers into it, so it must survive until
  // the service has joined them. A crash dump without an explicit
  // --recorder still wants history, so --crash-dump implies one.
  if (!crash_dump.empty() && recorder_capacity == 0) recorder_capacity = 1024;
  fsr::obs::FlightRecorder recorder(recorder_capacity == 0
                                        ? 1
                                        : recorder_capacity);
  if (recorder_capacity > 0) fsr::obs::install_recorder(&recorder);
  if (!crash_dump.empty()) fsr::obs::install_crash_handler(crash_dump);

  std::optional<fsr::obs::MetricsFileWriter> metrics_writer;
  if (!metrics_out.empty()) {
    metrics_writer.emplace(fsr::obs::MetricsFileWriter::Options{
        metrics_out, std::chrono::milliseconds(metrics_interval_ms)});
  }

  AnalysisService service(options);

  // In-flight responses, drained to stdout in request order: submissions
  // stream in while earlier requests still compute, and a ready prefix is
  // flushed opportunistically after every enqueue — the front-end never
  // needs the whole stream in memory. Output ids are the request's
  // ordinal in the stream (dense over non-blank lines), so they stay
  // deterministic even when a malformed line never reaches the service.
  std::deque<std::future<Response>> pending;
  bool any_error = false;
  std::uint64_t next_output_id = 0;
  const auto flush_ready = [&](bool wait_all) {
    while (!pending.empty() &&
           (wait_all || pending.front().wait_for(std::chrono::seconds(0)) ==
                            std::future_status::ready)) {
      Response response = pending.front().get();
      pending.pop_front();
      response.id = next_output_id++;
      if (!response.error.empty()) any_error = true;
      std::string line = wire::render_response(response, render_options);
      line += '\n';
      std::fwrite(line.data(), 1, line.size(), stdout);
      std::fflush(stdout);
    }
  };

  std::string line;
  std::uint64_t line_number = 0;
  while (std::getline(std::cin, line)) {
    ++line_number;
    bool blank = true;
    for (const char c : line) {
      if (c != ' ' && c != '\t' && c != '\r') blank = false;
    }
    if (blank) continue;
    try {
      Request request = wire::parse_request(line);
      if (std::holds_alternative<StatsRequest>(request) ||
          std::holds_alternative<DebugRequest>(request)) {
        // Introspection is a stream barrier: drain everything submitted
        // before it so the snapshot (stats counters or recorder history)
        // means "every request earlier in the stream" rather than
        // "whatever happened to be done".
        flush_ready(true);
      }
      pending.push_back(service.submit(std::move(request)));
    } catch (const std::exception& error) {
      // Parse/schema failures answer in-band, one response per request
      // line, WITHOUT touching the service — a synthetic ready future
      // keeps the stream flowing while earlier requests still compute.
      Response response;
      try {
        // Best-effort kind attribution when the line at least parsed.
        const json::Value body = json::parse(line);
        if (const json::Value* kind_value = body.find("kind")) {
          if (const auto kind =
                  parse_request_kind(kind_value->as_string("kind"))) {
            response.kind = *kind;
          }
        }
      } catch (...) {
        // Not even JSON: the default kind stands; the error text explains.
      }
      response.error = "line " + std::to_string(line_number) + ": " +
                       error.what();
      std::promise<Response> failed;
      failed.set_value(std::move(response));
      pending.push_back(failed.get_future());
    }
    flush_ready(false);
  }
  flush_ready(true);
  fsr::obs::install_recorder(nullptr);
  if (metrics_writer.has_value()) {
    metrics_writer->stop();
    if (!metrics_writer->ok()) {
      std::fprintf(stderr, "fsr_serve: cannot write metrics to '%s'\n",
                   metrics_out.c_str());
      any_error = true;
    }
  }
  if (!trace_out.empty()) {
    fsr::obs::install_tracer(nullptr);
    if (!tracer.write(trace_out)) {
      std::fprintf(stderr, "fsr_serve: cannot write trace to '%s'\n",
                   trace_out.c_str());
      any_error = true;
    }
  }
  return any_error ? 1 : 0;
}
