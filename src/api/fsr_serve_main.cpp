// fsr_serve: the streaming front-end of the fsr::api service.
//
//   printf '%s\n' \
//     '{"kind": "analyze-safety", "gadget": "bad"}' \
//     '{"kind": "ground-truth", "gadget": "bad-chain-8"}' \
//     '{"kind": "repair", "gadget": "bad"}' | fsr_serve --threads 4
//
// Reads JSON-lines requests from stdin (see api/wire.h for the schema),
// fans them out over the AnalysisService worker pool, and streams
// JSON-lines responses to stdout IN REQUEST ORDER — for a fixed request
// stream and options the output bytes are identical for any --threads
// value (the service determinism contract; --timings adds scheduling-
// dependent provenance and breaks that property on purpose).
//
// With --listen HOST:PORT and/or --unix PATH the same protocol is served
// over sockets instead (fsr::netserve): many concurrent clients, per-
// connection pipelining and backpressure, graceful drain on SIGTERM.
// Each connection gets the stdin contract — identical response bytes for
// its request stream, at any --shards value (docs/WIRE.md "Transport").
//
// A malformed or failing request answers with an error response on its
// line — it never aborts the stream. Stdin mode exits 0 when every line
// was answered, 1 when any response carried an error (so batch pipelines
// notice), 2 on usage errors; server mode exits 0 on a clean drain
// (client errors are per-connection, not process state).
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <future>
#include <iostream>
#include <optional>
#include <string>

#include "api/json.h"
#include "api/service.h"
#include "api/wire.h"
#include "groundtruth/engine.h"
#include "netserve/framing.h"
#include "netserve/server.h"
#include "obs/cli.h"
#include "obs/trace.h"
#include "util/error.h"

namespace {

void print_usage() {
  std::printf(
      "usage: fsr_serve [options] < requests.jsonl > responses.jsonl\n"
      "       fsr_serve --listen HOST:PORT [options]\n"
      "       fsr_serve --unix PATH [options]\n"
      "  --threads N        service worker threads (default 1); responses\n"
      "                     are byte-identical for any value\n"
      "  --shards N         alias for --threads (the worker shards the\n"
      "                     fingerprint-affinity scheduler maps onto)\n"
      "  --listen HOST:PORT serve the protocol over TCP (port 0 picks an\n"
      "                     ephemeral port, announced on stderr); may be\n"
      "                     combined with --unix\n"
      "  --unix PATH        serve the protocol over a Unix-domain socket\n"
      "  --round-robin      ablation: schedule by rotation instead of\n"
      "                     fingerprint affinity (bytes identical, warm\n"
      "                     hit rate usually worse)\n"
      "  --session-cache N  warm solver sessions kept per worker\n"
      "                     (default 8; 0 disables cross-request reuse)\n"
      "  --max-edits K      repair edit-size cap (default 2)\n"
      "  --beam W           repair frontier beam width (default 64)\n"
      "  --ground-truth M   default oracle: sat-search (default) |\n"
      "                     enumerate\n"
      "  --timings          add warm_session/shard/wall_ms provenance\n"
      "                     (output is then no longer byte-stable)\n"
      "%s"
      "  --slow-ms N        slow-request watchdog threshold in ms\n"
      "                     (fractional ok; default 1000; 0 disables)\n"
      "  --help             this message\n",
      fsr::obs::diagnostics_usage());
}

fsr::netserve::Server* g_server = nullptr;

void handle_drain_signal(int) {
  // Async-signal-safe: request_drain only stores an atomic and writes a
  // pre-opened pipe fd.
  if (g_server != nullptr) g_server->request_drain();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fsr::api;

  ServiceOptions options;
  wire::RenderOptions render_options;
  fsr::obs::DiagnosticsCliOptions diagnostics;
  std::string listen_spec;
  std::string unix_path;

  const auto need_value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "fsr_serve: %s requires a value\n", flag);
      std::exit(2);
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (fsr::obs::consume_diagnostics_flag(argc, argv, i, "fsr_serve",
                                           diagnostics)) {
      continue;
    }
    if (std::strcmp(arg, "--threads") == 0 ||
        std::strcmp(arg, "--shards") == 0) {
      options.threads = std::atoi(need_value(i, arg));
      if (options.threads < 1) {
        std::fprintf(stderr, "fsr_serve: %s needs a value >= 1\n", arg);
        return 2;
      }
    } else if (std::strcmp(arg, "--listen") == 0) {
      listen_spec = need_value(i, "--listen");
    } else if (std::strcmp(arg, "--unix") == 0) {
      unix_path = need_value(i, "--unix");
    } else if (std::strcmp(arg, "--round-robin") == 0) {
      options.schedule = SchedulePolicy::round_robin;
    } else if (std::strcmp(arg, "--session-cache") == 0) {
      const int capacity = std::atoi(need_value(i, "--session-cache"));
      if (capacity < 0) {
        std::fprintf(stderr, "fsr_serve: --session-cache needs a value >= 0\n");
        return 2;
      }
      options.session_cache_capacity = static_cast<std::size_t>(capacity);
    } else if (std::strcmp(arg, "--max-edits") == 0) {
      const int max_edits = std::atoi(need_value(i, "--max-edits"));
      if (max_edits < 1) {
        std::fprintf(stderr, "fsr_serve: --max-edits needs a value >= 1\n");
        return 2;
      }
      options.repair.max_edits = static_cast<std::size_t>(max_edits);
    } else if (std::strcmp(arg, "--beam") == 0) {
      const int beam = std::atoi(need_value(i, "--beam"));
      if (beam < 0) {
        std::fprintf(stderr, "fsr_serve: --beam needs a value >= 0\n");
        return 2;
      }
      options.repair.beam_width = static_cast<std::size_t>(beam);
    } else if (std::optional<fsr::groundtruth::Mode> mode;
               fsr::groundtruth::consume_mode_flag(argc, argv, i, mode)) {
      if (!mode.has_value()) {
        std::fprintf(stderr,
                     "fsr_serve: --ground-truth needs a mode "
                     "(enumerate | sat-search)\n");
        return 2;
      }
      options.ground_truth = *mode;
      options.repair.ground_truth = *mode;
    } else if (std::strcmp(arg, "--timings") == 0) {
      render_options.timings = true;
    } else if (std::strcmp(arg, "--slow-ms") == 0) {
      const double slow_ms = std::atof(need_value(i, "--slow-ms"));
      if (slow_ms < 0) {
        std::fprintf(stderr, "fsr_serve: --slow-ms needs a value >= 0\n");
        return 2;
      }
      options.slow_request_ms = slow_ms;
    } else if (std::strcmp(arg, "--help") == 0) {
      print_usage();
      return 0;
    } else {
      std::fprintf(stderr, "fsr_serve: unknown option '%s'\n", arg);
      print_usage();
      return 2;
    }
  }

  fsr::obs::set_thread_name("main");

  // The diagnostics stack (tracer/recorder/crash handler/metrics writer)
  // must outlive the service — workers cache recorder ring pointers — so
  // it is constructed before, and finalized after, everything below.
  fsr::obs::DiagnosticsSession diagnostics_session(diagnostics, "fsr_serve");

  if (!listen_spec.empty() || !unix_path.empty()) {
    // ---- Socket server mode (fsr::netserve) ----
    fsr::netserve::ServerOptions server_options;
    server_options.service = options;
    server_options.render = render_options;
    server_options.unix_path = unix_path;
    if (!listen_spec.empty()) {
      const std::size_t colon = listen_spec.rfind(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr, "fsr_serve: --listen needs HOST:PORT\n");
        return 2;
      }
      server_options.tcp_host = listen_spec.substr(0, colon);
      const int port = std::atoi(listen_spec.c_str() + colon + 1);
      if (server_options.tcp_host.empty() || port < 0 || port > 65535) {
        std::fprintf(stderr, "fsr_serve: --listen needs HOST:PORT\n");
        return 2;
      }
      server_options.tcp_port = static_cast<std::uint16_t>(port);
    }
    const std::string tcp_host = server_options.tcp_host;
    try {
      fsr::netserve::Server server(std::move(server_options));
      g_server = &server;
      struct sigaction action {};
      action.sa_handler = handle_drain_signal;
      ::sigaction(SIGTERM, &action, nullptr);
      ::sigaction(SIGINT, &action, nullptr);
      if (!listen_spec.empty()) {
        // Announced so scripts (and CI) can discover an ephemeral port.
        std::fprintf(stderr, "fsr_serve: listening on %s:%u\n",
                     tcp_host.c_str(),
                     static_cast<unsigned>(server.tcp_port()));
      }
      if (!unix_path.empty()) {
        std::fprintf(stderr, "fsr_serve: listening on unix:%s\n",
                     unix_path.c_str());
      }
      const int status = server.run();
      g_server = nullptr;
      return diagnostics_session.finalize() && status == 0 ? status : 1;
    } catch (const std::exception& error) {
      std::fprintf(stderr, "fsr_serve: %s\n", error.what());
      return 1;
    }
  }

  // ---- Stdin pipe mode (byte-compatible with every earlier release) ----
  AnalysisService service(options);

  // In-flight responses, drained to stdout in request order: submissions
  // stream in while earlier requests still compute, and a ready prefix is
  // flushed opportunistically after every enqueue — the front-end never
  // needs the whole stream in memory. Output ids are the request's
  // ordinal in the stream (dense over non-blank lines), so they stay
  // deterministic even when a malformed line never reaches the service.
  std::deque<std::future<Response>> pending;
  bool any_error = false;
  std::uint64_t next_output_id = 0;
  const auto flush_ready = [&](bool wait_all) {
    while (!pending.empty() &&
           (wait_all || pending.front().wait_for(std::chrono::seconds(0)) ==
                            std::future_status::ready)) {
      Response response = pending.front().get();
      pending.pop_front();
      response.id = next_output_id++;
      if (!response.error.empty()) any_error = true;
      std::string line = wire::render_response(response, render_options);
      line += '\n';
      std::fwrite(line.data(), 1, line.size(), stdout);
      std::fflush(stdout);
    }
  };

  std::string line;
  std::uint64_t line_number = 0;
  while (std::getline(std::cin, line)) {
    ++line_number;
    bool blank = true;
    for (const char c : line) {
      if (c != ' ' && c != '\t' && c != '\r') blank = false;
    }
    if (blank) continue;
    // Bounded in-flight queue: on huge streams std::getline outruns the
    // pool, and an unbounded pending deque would hold every response of
    // the backlog in memory. Same constant as a netserve connection's
    // in-flight cap — the two front-ends make the same memory promise.
    while (pending.size() >= fsr::netserve::kMaxInflightPerConnection) {
      pending.front().wait();
      flush_ready(false);  // the front is ready: writes at least one
    }
    try {
      Request request = wire::parse_request(line);
      if (std::holds_alternative<StatsRequest>(request) ||
          std::holds_alternative<DebugRequest>(request)) {
        // Introspection is a stream barrier: drain everything submitted
        // before it so the snapshot (stats counters or recorder history)
        // means "every request earlier in the stream" rather than
        // "whatever happened to be done".
        flush_ready(true);
      }
      pending.push_back(service.submit(std::move(request)));
    } catch (const std::exception& error) {
      // Parse/schema failures answer in-band, one response per request
      // line, WITHOUT touching the service — a synthetic ready future
      // keeps the stream flowing while earlier requests still compute.
      Response response;
      try {
        // Best-effort kind attribution when the line at least parsed.
        const json::Value body = json::parse(line);
        if (const json::Value* kind_value = body.find("kind")) {
          if (const auto kind =
                  parse_request_kind(kind_value->as_string("kind"))) {
            response.kind = *kind;
          }
        }
      } catch (...) {
        // Not even JSON: the default kind stands; the error text explains.
      }
      response.error = "line " + std::to_string(line_number) + ": " +
                       error.what();
      std::promise<Response> failed;
      failed.set_value(std::move(response));
      pending.push_back(failed.get_future());
    }
    flush_ready(false);
  }
  flush_ready(true);
  if (!diagnostics_session.finalize()) any_error = true;
  return any_error ? 1 : 0;
}
