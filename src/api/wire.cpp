#include "api/wire.h"

#include <utility>

#include "algebra/standard_policies.h"
#include "api/json.h"
#include "campaign/scenario_source.h"
#include "obs/metrics.h"
#include "spp/gadgets.h"
#include "util/error.h"
#include "util/strings.h"

namespace fsr::api::wire {
namespace {

using util::json_quoted;

algebra::AlgebraPtr policy_by_name(const std::string& name) {
  if (name == "guideline-a") return algebra::gao_rexford_guideline_a();
  if (name == "guideline-b") return algebra::gao_rexford_guideline_b();
  if (name == "backup") return algebra::backup_routing();
  if (name == "bandwidth") return algebra::bandwidth_classes({10, 100, 1000});
  if (name == "widest-shortest") {
    return algebra::widest_shortest({10, 100, 1000});
  }
  if (name == "gao-rexford-hop-count") {
    return algebra::gao_rexford_with_hop_count();
  }
  throw InvalidArgument("unknown policy '" + name + "'");
}

spp::SppInstance inline_spp(const json::Value& value) {
  const json::Value* name = value.find("name");
  const json::Value* destination = value.find("destination");
  spp::SppInstance instance(
      name != nullptr ? name->as_string("spp.name") : std::string("inline"),
      destination != nullptr ? destination->as_string("spp.destination")
                             : std::string("0"));
  const json::Value* edges = value.find("edges");
  if (edges == nullptr) throw InvalidArgument("spp payload needs edges");
  for (const json::Value& edge : edges->as_array("spp.edges")) {
    const auto& pair = edge.as_array("spp edge");
    if (pair.size() != 2) {
      throw InvalidArgument("spp edge must be a [u, v] pair");
    }
    instance.add_edge(pair[0].as_string("spp edge node"),
                      pair[1].as_string("spp edge node"));
  }
  const json::Value* paths = value.find("paths");
  if (paths == nullptr) throw InvalidArgument("spp payload needs paths");
  for (const json::Value& path : paths->as_array("spp.paths")) {
    spp::Path hops;
    for (const json::Value& hop : path.as_array("spp path")) {
      hops.push_back(hop.as_string("spp path hop"));
    }
    instance.add_permitted_path(hops);
  }
  return instance;
}

spp::SppInstance random_spp(const json::Value& value) {
  const json::Value* seed = value.find("seed");
  if (seed == nullptr) throw InvalidArgument("random payload needs a seed");
  campaign::RandomSppSweep sweep;
  const auto u64_field = [&](const char* key, std::int32_t& out) {
    if (const json::Value* field = value.find(key)) {
      out = static_cast<std::int32_t>(field->as_u64(key));
    }
  };
  u64_field("min_nodes", sweep.min_nodes);
  u64_field("max_nodes", sweep.max_nodes);
  u64_field("paths_per_node", sweep.paths_per_node);
  u64_field("max_path_length", sweep.max_path_length);
  const std::uint64_t seed_value = seed->as_u64("random.seed");
  return campaign::random_spp_instance(
      "random-" + std::to_string(seed_value), seed_value, sweep);
}

/// Resolves the request's one payload into (spp, algebra); exactly one of
/// the accepted payload keys must be present.
struct Payload {
  std::shared_ptr<const spp::SppInstance> spp;
  algebra::AlgebraPtr algebra;
};

Payload parse_payload(const json::Value& body) {
  Payload payload;
  int sources = 0;
  if (const json::Value* gadget = body.find("gadget")) {
    ++sources;
    payload.spp = std::make_shared<const spp::SppInstance>(
        spp::gadget_by_name(gadget->as_string("gadget")));
  }
  if (const json::Value* policy = body.find("policy")) {
    ++sources;
    payload.algebra = policy_by_name(policy->as_string("policy"));
  }
  if (const json::Value* inline_value = body.find("spp")) {
    ++sources;
    payload.spp =
        std::make_shared<const spp::SppInstance>(inline_spp(*inline_value));
  }
  if (const json::Value* random_value = body.find("random")) {
    ++sources;
    payload.spp =
        std::make_shared<const spp::SppInstance>(random_spp(*random_value));
  }
  if (sources != 1) {
    throw InvalidArgument(
        "request needs exactly one payload: gadget | policy | spp | random");
  }
  return payload;
}

std::string render_path(const spp::Path& path) {
  return spp::path_name(path);
}

void append_safety(std::string& out, const SafetyReport& safety) {
  out += "\"safety\": {\"verdict\": ";
  out += json_quoted(safety.verdict == SafetyVerdict::safe
                         ? "safe"
                         : "not_provably_safe");
  out += ", \"narrative\": " + json_quoted(safety.narrative);
  out += ", \"checks\": [";
  for (std::size_t i = 0; i < safety.checks.size(); ++i) {
    const MonotonicityReport& check = safety.checks[i];
    if (i > 0) out += ", ";
    out += "{\"algebra\": " + json_quoted(check.algebra_name);
    out += ", \"mode\": ";
    out += json_quoted(check.mode == MonotonicityMode::strict ? "strict"
                                                              : "plain");
    out += ", \"holds\": ";
    out += check.holds ? "true" : "false";
    out += ", \"preference_constraints\": " +
           std::to_string(check.preference_constraint_count);
    out += ", \"monotonicity_constraints\": " +
           std::to_string(check.monotonicity_constraint_count);
    out += ", \"core\": [";
    for (std::size_t j = 0; j < check.unsat_core.size(); ++j) {
      if (j > 0) out += ", ";
      out += json_quoted(check.unsat_core[j].description);
    }
    out += "]}";
  }
  out += "]}";
}

void append_ground_truth(std::string& out, const groundtruth::Result& truth,
                         bool timings) {
  out += "\"ground_truth\": {\"decided\": ";
  out += truth.decided ? "true" : "false";
  out += ", \"has_stable\": ";
  out += truth.has_stable ? "true" : "false";
  out += ", \"count\": " + std::to_string(truth.count);
  out += ", \"count_exact\": ";
  out += truth.count_exact ? "true" : "false";
  out += ", \"budget_stop\": ";
  out += json_quoted(groundtruth::to_string(truth.budget_stop));
  if (truth.witness.has_value()) {
    out += ", \"witness\": {";
    bool first = true;
    for (const auto& [node, path] : *truth.witness) {
      if (!first) out += ", ";
      out += json_quoted(node) + ": " + json_quoted(render_path(path));
      first = false;
    }
    out += "}";
  }
  if (timings) {
    // Solver effort depends on session temperature (learned clauses carry
    // over on warm hits), so it rides with the provenance fields.
    out += ", \"states_scanned\": " + std::to_string(truth.states_scanned);
    out += ", \"conflicts\": " + std::to_string(truth.conflicts);
    out += ", \"decisions\": " + std::to_string(truth.decisions);
    out += ", \"propagations\": " + std::to_string(truth.propagations);
  }
  out += "}";
}

void append_stats(std::string& out, const StatsPayload& stats) {
  const ServiceStats& service = stats.service;
  out += "\"stats\": {\"service\": {\"submitted\": " +
         std::to_string(service.submitted);
  out += ", \"completed\": " + std::to_string(service.completed);
  out += ", \"errors\": " + std::to_string(service.errors);
  out += ", \"warm_hits\": " + std::to_string(service.warm_hits);
  out += ", \"affinity_hits\": " + std::to_string(service.affinity_hits);
  out += ", \"sessions_built\": " + std::to_string(service.sessions_built);
  out += ", \"sessions_evicted\": " + std::to_string(service.sessions_evicted);
  out += ", \"slow_requests\": " + std::to_string(service.slow_requests);
  out += "}, \"metrics\": " + obs::to_json(stats.metrics);
  out += "}";
}

void append_debug(std::string& out, const DebugPayload& debug) {
  out += "\"debug\": {\"enabled\": ";
  out += debug.enabled ? "true" : "false";
  out += ", \"dropped\": " + std::to_string(debug.dropped);
  out += ", \"events\": [";
  for (std::size_t i = 0; i < debug.events.size(); ++i) {
    const obs::RecorderEvent& event = debug.events[i];
    if (i > 0) out += ", ";
    out += "{\"seq\": " + std::to_string(event.seq);
    out += ", \"ts_us\": " + std::to_string(event.ts_us);
    out += ", \"tid\": " + std::to_string(event.tid);
    out += ", \"kind\": " + json_quoted(obs::to_string(event.kind));
    out += ", \"detail\": " + json_quoted(event.detail);
    out += ", \"a\": " + std::to_string(event.a);
    out += ", \"b\": " + std::to_string(event.b);
    out += "}";
  }
  out += "]}";
}

void append_repair(std::string& out, const repair::RepairReport& report,
                   bool timings) {
  out += "\"repair\": {\"instance\": " + json_quoted(report.instance);
  out += ", \"ground_truth_mode\": " +
         json_quoted(groundtruth::to_string(report.ground_truth_mode));
  out += ", \"already_safe\": ";
  out += report.already_safe ? "true" : "false";
  out += ", \"initial_core\": [";
  for (std::size_t i = 0; i < report.initial_core.size(); ++i) {
    if (i > 0) out += ", ";
    out += json_quoted(report.initial_core[i].description);
  }
  out += "], \"repaired\": ";
  out += report.repaired() ? "true" : "false";
  out += ", \"candidates_checked\": " +
         std::to_string(report.candidates_checked);
  out += ", \"solver_checks\": " + std::to_string(report.solver_checks);
  out += ", \"cores_seen\": " + std::to_string(report.cores_seen);
  out += ", \"beam_pruned\": " + std::to_string(report.beam_pruned);
  out += ", \"budget_exhausted\": ";
  out += report.budget_exhausted ? "true" : "false";
  if (timings) {
    // Session-effort counters depend on cache temperature (a warm oracle
    // skips re-encoding groups a previous run paid for), so like the
    // ground-truth effort block they ride with the provenance fields.
    out += ", \"engine_rebuilds\": " + std::to_string(report.engine_rebuilds);
    out += ", \"oracle_queries\": " + std::to_string(report.oracle_queries);
    out += ", \"oracle_groups_encoded\": " +
           std::to_string(report.oracle_groups_encoded);
    out += ", \"oracle_cache_hits\": " +
           std::to_string(report.oracle_cache_hits);
  }
  out += ", \"repairs\": [";
  for (std::size_t i = 0; i < report.repairs.size(); ++i) {
    const repair::RepairCandidate& candidate = report.repairs[i];
    if (i > 0) out += ", ";
    out += "{\"edits\": [";
    for (std::size_t j = 0; j < candidate.edits.size(); ++j) {
      if (j > 0) out += ", ";
      out += json_quoted(candidate.edits[j].describe());
    }
    out += "], \"ground_truth\": " +
           json_quoted(repair::to_string(candidate.ground_truth));
    out += ", \"stable_assignments\": " +
           std::to_string(candidate.stable_assignments);
    out += ", \"oracle_budget\": " +
           json_quoted(groundtruth::to_string(candidate.oracle_budget));
    out += ", \"spvp_converged\": ";
    out += candidate.spvp_converged ? "true" : "false";
    out += "}";
  }
  out += "]}";
}

void append_sim(std::string& out, const sim::SimResult& sim_result) {
  // Every field here is deterministic in (request, options, seed) — the
  // simulator never reads a wall clock — so nothing is timings-gated.
  out += "\"sim\": {\"scenario\": " + json_quoted(sim_result.scenario);
  out += ", \"suppression\": " + json_quoted(sim_result.suppression);
  out += ", \"converged\": ";
  out += sim_result.converged ? "true" : "false";
  out += ", \"oscillating\": ";
  out += sim_result.oscillating ? "true" : "false";
  out += ", \"cutoff\": ";
  out += sim_result.cutoff ? "true" : "false";
  out += ", \"steps\": " + std::to_string(sim_result.steps);
  out += ", \"ticks\": " + std::to_string(sim_result.ticks);
  out += ", \"messages\": " + std::to_string(sim_result.messages);
  out += ", \"route_changes\": " + std::to_string(sim_result.route_changes);
  out += ", \"convergence_tick\": " +
         std::to_string(sim_result.convergence_tick);
  out += ", \"cycle_length\": " + std::to_string(sim_result.cycle_length);
  out += ", \"fixed_point_stable\": ";
  out += sim_result.fixed_point_stable ? "true" : "false";
  out += ", \"fixed_point\": {";
  bool first = true;
  for (const auto& [node, path] : sim_result.final_assignment) {
    if (!first) out += ", ";
    out += json_quoted(node) + ": " + json_quoted(render_path(path));
    first = false;
  }
  out += "}}";
}

void append_emulation(std::string& out, const EmulationResult& emu) {
  out += "\"emulation\": {\"quiesced\": ";
  out += emu.quiesced ? "true" : "false";
  out += ", \"convergence_us\": " + std::to_string(emu.convergence_time);
  out += ", \"end_us\": " + std::to_string(emu.end_time);
  out += ", \"messages\": " + std::to_string(emu.messages);
  out += ", \"bytes\": " + std::to_string(emu.bytes);
  out += ", \"route_changes\": " + std::to_string(emu.route_changes);
  out += ", \"nodes\": " + std::to_string(emu.node_count);
  out += ", \"best_routes\": {";
  bool first = true;
  for (const auto& [node, route] : emu.best_routes) {
    if (!first) out += ", ";
    out += json_quoted(node) + ": {\"sig\": " + json_quoted(route.first);
    out += ", \"path\": [";
    for (std::size_t i = 0; i < route.second.size(); ++i) {
      if (i > 0) out += ", ";
      out += json_quoted(route.second[i]);
    }
    out += "]}";
    first = false;
  }
  out += "}}";
}

}  // namespace

Request parse_request(const std::string& line) {
  const json::Value body = json::parse(line);
  const json::Value* kind_value = body.find("kind");
  if (kind_value == nullptr) {
    throw InvalidArgument("request needs a kind");
  }
  const std::optional<RequestKind> kind =
      parse_request_kind(kind_value->as_string("kind"));
  if (!kind.has_value()) {
    // Named so a client staring at an fsr_serve error line can fix the
    // request without opening this file.
    throw InvalidArgument("unknown request kind '" +
                          kind_value->as_string("kind") +
                          "' (want analyze-safety, ground-truth, repair, "
                          "emulate, simulate, stats, or debug)");
  }
  if (*kind == RequestKind::stats || *kind == RequestKind::debug) {
    // Introspection carries no payload; anything else on the line is a
    // schema violation the caller should hear about.
    if (body.find("gadget") != nullptr || body.find("policy") != nullptr ||
        body.find("spp") != nullptr || body.find("random") != nullptr) {
      throw InvalidArgument(std::string(to_string(*kind)) +
                            " request takes no payload");
    }
    if (*kind == RequestKind::stats) return StatsRequest{};
    return DebugRequest{};
  }
  Payload payload = parse_payload(body);
  std::uint64_t seed = 1;
  if (const json::Value* seed_value = body.find("seed")) {
    seed = seed_value->as_u64("seed");
  }

  switch (*kind) {
    case RequestKind::analyze_safety: {
      AnalyzeSafetyRequest request;
      request.algebra = std::move(payload.algebra);
      request.spp = std::move(payload.spp);
      validate(Request(request));
      return request;
    }
    case RequestKind::ground_truth: {
      GroundTruthRequest request;
      request.spp = std::move(payload.spp);
      if (const json::Value* mode_value = body.find("mode")) {
        const std::optional<groundtruth::Mode> mode =
            groundtruth::parse_mode(mode_value->as_string("mode"));
        if (!mode.has_value()) {
          throw InvalidArgument("unknown ground-truth mode '" +
                                mode_value->as_string("mode") + "'");
        }
        request.mode = mode;
      }
      validate(Request(request));
      return request;
    }
    case RequestKind::repair: {
      RepairRequest request;
      request.spp = std::move(payload.spp);
      request.seed = seed;
      validate(Request(request));
      return request;
    }
    case RequestKind::emulate: {
      EmulateRequest request;
      request.spp = std::move(payload.spp);
      request.seed = seed;
      validate(Request(request));
      return request;
    }
    case RequestKind::simulate: {
      SimulateRequest request;
      request.spp = std::move(payload.spp);
      request.seed = seed;
      if (const json::Value* scenario = body.find("scenario")) {
        request.scenario = scenario->as_string("scenario");
      }
      if (const json::Value* suppression = body.find("suppression")) {
        request.suppression = suppression->as_string("suppression");
      }
      if (const json::Value* max_steps = body.find("max-steps")) {
        request.max_steps = max_steps->as_u64("max-steps");
      }
      validate(Request(request));
      return request;
    }
    case RequestKind::stats:
    case RequestKind::debug:
      break;  // handled above (payload-free)
  }
  throw InvalidArgument("unknown request kind");
}

std::string render_response(const Response& response,
                            const RenderOptions& options) {
  std::string out = "{\"id\": " + std::to_string(response.id);
  out += ", \"kind\": " + json_quoted(to_string(response.kind));
  if (!response.fingerprint.empty()) {
    out += ", \"fingerprint\": " + json_quoted(response.fingerprint);
  }
  if (!response.error.empty()) {
    out += ", \"error\": " + json_quoted(response.error);
  } else {
    out += ", ";
    if (response.safety.has_value()) {
      append_safety(out, *response.safety);
    } else if (response.ground_truth.has_value()) {
      append_ground_truth(out, *response.ground_truth, options.timings);
    } else if (response.repair.has_value()) {
      append_repair(out, *response.repair, options.timings);
    } else if (response.emulation.has_value()) {
      append_emulation(out, *response.emulation);
    } else if (response.sim.has_value()) {
      append_sim(out, *response.sim);
    } else if (response.stats.has_value()) {
      append_stats(out, *response.stats);
    } else if (response.debug.has_value()) {
      append_debug(out, *response.debug);
    } else {
      out += "\"result\": null";
    }
  }
  if (options.timings) {
    out += ", \"warm_session\": ";
    out += response.warm_session ? "true" : "false";
    if (response.shard >= 0) {
      // Scheduling provenance, like wall_ms: which worker shard served the
      // request. Timings-gated because it depends on --shards and policy.
      out += ", \"shard\": " + std::to_string(response.shard);
    }
    out += ", \"wall_ms\": " + util::format_fixed(response.wall_ms, 3);
  }
  out += "}";
  return out;
}

}  // namespace fsr::api::wire
