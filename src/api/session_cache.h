// Worker-local warm solver-session store for the AnalysisService.
//
// Each service worker keeps the most recently used instances' persistent
// solver sessions alive between requests, keyed by instance fingerprint
// (api::fingerprint — kind-free, so ground-truth and repair requests over
// the same instance share one entry):
//
//   * strict_gate — an IncrementalSafetySession over the instance's
//     strict-mode encoding that is only ever asked the retraction-free
//     base query. Its answer is the recorded engine verdict/core, which is
//     byte-identical to a fresh session's first check (the RepairSessions
//     contract in repair/repair_engine.h), so a warm hit skips the
//     translate + encode + assert cost without perturbing report bytes.
//   * oracle — a StableSatSession whose per-query blocking groups retire
//     at query end; reuse across requests keeps the base CNF, the
//     per-node ranking-group cache, and all learned clauses, which is the
//     PR-4 within-one-run amortisation extended to the whole service
//     lifetime.
//
// Eviction is least-recently-used over a fixed capacity, so a service
// sweeping many distinct instances bounds its memory while a service
// hammering a hot set stays warm. Capacity 0 disables reuse entirely (the
// cold ablation bench_service measures).
//
// Thread-compatibility: a SessionCache is a mutable single-thread object —
// exactly one worker owns it, matching the sessions it stores.
#ifndef FSR_API_SESSION_CACHE_H
#define FSR_API_SESSION_CACHE_H

#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <string>

#include "fsr/incremental_session.h"
#include "groundtruth/stable_sat.h"
#include "spp/spp.h"

namespace fsr::api {

class SessionCache {
 public:
  struct Entry {
    std::string fingerprint;
    std::shared_ptr<const spp::SppInstance> instance;
    std::optional<IncrementalSafetySession> strict_gate;
    std::optional<groundtruth::StableSatSession> oracle;
  };

  explicit SessionCache(std::size_t capacity) : capacity_(capacity) {}

  SessionCache(const SessionCache&) = delete;
  SessionCache& operator=(const SessionCache&) = delete;

  /// Returns the entry for `fingerprint`, creating (and, at capacity,
  /// evicting the least recently used entry) as needed; the returned entry
  /// becomes most recently used. With capacity 0 every call returns a
  /// fresh scratch entry — sessions then live exactly one request.
  /// The pointer is valid until the next ensure() call.
  Entry* ensure(const std::string& fingerprint,
                const std::shared_ptr<const spp::SppInstance>& instance);

  std::size_t size() const noexcept { return entries_.size(); }
  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  std::uint64_t evictions() const noexcept { return evictions_; }

 private:
  std::size_t capacity_;
  std::list<Entry> entries_;  // front = most recently used
  std::optional<Entry> scratch_;  // capacity-0 mode
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace fsr::api

#endif  // FSR_API_SESSION_CACHE_H
