// Process-wide metrics registry: named counters, gauges, and power-of-two
// histograms shared by every subsystem (api, campaign, repair, groundtruth,
// smt) so there is ONE source of truth for "what did the toolkit do".
//
// Design contract:
//   * Registration (registry().counter("sat.conflicts")) takes a mutex and
//     returns a STABLE reference — instruments are never destroyed for the
//     life of the process, so callers register once (typically a
//     function-local static or a member handle) and the hot path is a
//     single relaxed atomic add: lock-free, no allocation, wait-free.
//   * Snapshots are deterministic: instruments are keyed by name in an
//     ordered map, so snapshot()/to_json render in one canonical order
//     regardless of registration interleaving across threads.
//   * Metrics never feed back into analysis results. Deterministic outputs
//     (wire responses, campaign reports, repair JSON) remain pure functions
//     of (request, options, seed); registry values only surface through
//     explicitly live channels (the `stats` request kind) or timings-gated
//     provenance. Tests therefore assert DELTAS or schema, never absolute
//     process totals.
//
// The user-facing tour of the six diagnostics channels built on this
// layer (stats/debug kinds, OpenMetrics, Chrome traces, flight recorder,
// watchdog, timings provenance) lives in docs/OBSERVABILITY.md.
//
// Instrumentation guidelines (for new subsystems):
//   * Count at boundaries, not in inner loops. The CDCL solver keeps its
//     own cheap counters; sessions flush per-query deltas to the registry
//     when a query ends. An increment per propagation would be measurable;
//     an increment per query is free.
//   * Name instruments "<subsystem>.<what>" (e.g. "sat.conflicts",
//     "session_cache.hits"); dots group related metrics in snapshots. The
//     OpenMetrics exporter (obs/export.h) sanitizes the name and prefixes
//     "fsr_", so pick names that stay readable after dots become
//     underscores.
//   * Prefer counters (monotone) over gauges; histograms are for
//     durations/sizes where the shape matters (power-of-two buckets match
//     the campaign report's latency histogram).
//   * Counter TIMELINES (how a value evolved within a run, not just its
//     total) belong on the tracer, not here: flush obs::trace_counter
//     samples at natural boundaries — end of a solver query, each beam
//     depth — and obs::trace_instant for point events (restarts, watchdog
//     hits). Same boundary rule: a sample per query is free, a sample per
//     conflict is not. The registry keeps the process total; the trace
//     keeps the shape.
//   * Flight-recorder events (obs/recorder.h) are for the bounded
//     recent-history story a post-mortem needs: record at most one event
//     per request-level boundary (begin/end, a per-query solver summary,
//     an eviction, an error), with a short detail string — the rings are
//     small and every event evicts an older one.
//   * Whatever the channel, observability never steers: no analysis code
//     path may branch on a metric, trace, or recorder state, so
//     deterministic outputs stay byte-identical with every channel on.
#ifndef FSR_OBS_METRICS_H
#define FSR_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace fsr::obs {

/// Monotone event count. Hot-path add is one relaxed atomic fetch_add.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time level (bytes held, entries resident). May go down.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t n) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Power-of-two histogram: bucket b counts samples in (2^(b-1), 2^b], with
/// bucket 0 holding zeros and ones. Same shape as the campaign report's
/// latency histogram, so traces and reports read the same way.
class Histogram {
 public:
  static constexpr std::size_t k_buckets = 40;

  void record(std::uint64_t sample) noexcept;
  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  std::uint64_t bucket(std::size_t b) const noexcept {
    return buckets_[b].load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> buckets_[k_buckets] = {};
};

/// One instrument's state at snapshot time, already ordered by name.
struct MetricValue {
  std::string name;
  enum class Kind { counter, gauge, histogram } kind = Kind::counter;
  std::int64_t value = 0;       // counter/gauge
  std::uint64_t count = 0;      // histogram
  std::uint64_t sum = 0;        // histogram
  std::vector<std::uint64_t> buckets;  // histogram, trailing zeros trimmed
};

struct MetricsSnapshot {
  std::vector<MetricValue> metrics;  // sorted by name

  /// Value of a counter/gauge by name (0 when absent) — test convenience.
  std::int64_t value(const std::string& name) const noexcept;
};

/// Deterministic JSON rendering: one object, keys in sorted name order.
/// Counters/gauges render as integers; histograms as
/// {"count": N, "sum": S, "buckets": [...]}.
std::string to_json(const MetricsSnapshot& snapshot);

class Registry {
 public:
  /// Returns the instrument registered under `name`, creating it on first
  /// use. The reference is stable for the process lifetime. Registering
  /// the same name with a different instrument kind throws
  /// std::logic_error — names are a global namespace.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  MetricsSnapshot snapshot() const;

 private:
  struct Impl;
  Impl& impl() const;
};

/// The process-wide registry every subsystem shares.
Registry& registry();

}  // namespace fsr::obs

#endif  // FSR_OBS_METRICS_H
