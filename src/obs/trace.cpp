#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

#include "obs/export.h"
#include "util/strings.h"

namespace fsr::obs {

namespace {

std::atomic<Tracer*> g_tracer{nullptr};

// Thread names are process-lifetime state keyed by dense tid, shared by
// every tracer: a tracer installed after threads were named still renders
// their metadata events.
std::mutex& thread_names_mutex() {
  static std::mutex mutex;
  return mutex;
}

std::map<std::uint32_t, std::string>& thread_names() {
  static std::map<std::uint32_t, std::string> names;
  return names;
}

void append_escaped(std::ostream& out, const std::string& text) {
  out << '"';
  for (const char c : text) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      case '\r': out << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out << buffer;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

std::uint64_t Tracer::now_us() const noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void Tracer::record(TraceEvent event) {
  const std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(event));
}

void Tracer::counter(const char* name, std::uint64_t value) {
  TraceEvent event;
  event.name = name;
  event.phase = 'C';
  event.tid = current_thread_tid();
  event.start_us = now_us();
  event.args.emplace_back("value", std::to_string(value));
  record(std::move(event));
}

void Tracer::counter(const char* name, double value) {
  TraceEvent event;
  event.name = name;
  event.phase = 'C';
  event.tid = current_thread_tid();
  event.start_us = now_us();
  event.args.emplace_back("value", util::format_fixed(value, 3));
  record(std::move(event));
}

void Tracer::instant(const char* name) {
  TraceEvent event;
  event.name = name;
  event.phase = 'i';
  event.tid = current_thread_tid();
  event.start_us = now_us();
  record(std::move(event));
}

std::size_t Tracer::event_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::string Tracer::chrome_trace_json() const {
  std::vector<TraceEvent> events;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    events = events_;
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.tid != b.tid) return a.tid < b.tid;
                     if (a.start_us != b.start_us) return a.start_us < b.start_us;
                     return a.dur_us > b.dur_us;  // parents before children
                   });

  std::ostringstream out;
  out << "{\"traceEvents\": [";
  bool first = true;
  // Metadata first: the process name and one thread_name per named tid,
  // so viewers label tracks before any data event references them.
  out << "\n  {\"name\": \"process_name\", \"cat\": \"__metadata\", "
         "\"ph\": \"M\", \"ts\": 0, \"pid\": 1, \"tid\": 0, "
         "\"args\": {\"name\": \"fsr\"}}";
  first = false;
  {
    const std::lock_guard<std::mutex> lock(thread_names_mutex());
    for (const auto& [tid, name] : thread_names()) {
      out << ",\n  {\"name\": \"thread_name\", \"cat\": \"__metadata\", "
             "\"ph\": \"M\", \"ts\": 0, \"pid\": 1, \"tid\": "
          << tid << ", \"args\": {\"name\": ";
      append_escaped(out, name);
      out << "}}";
    }
  }
  for (const TraceEvent& event : events) {
    if (!first) out << ",";
    first = false;
    out << "\n  {\"name\": ";
    append_escaped(out, event.name);
    out << ", \"cat\": \"fsr\", \"ph\": \"" << event.phase
        << "\", \"ts\": " << event.start_us;
    if (event.phase == 'X') out << ", \"dur\": " << event.dur_us;
    if (event.phase == 'i') out << ", \"s\": \"t\"";
    out << ", \"pid\": 1, \"tid\": " << event.tid;
    if (!event.args.empty()) {
      out << ", \"args\": {";
      bool first_arg = true;
      for (const auto& [key, value] : event.args) {
        if (!first_arg) out << ", ";
        first_arg = false;
        append_escaped(out, key);
        out << ": " << value;  // values are pre-rendered JSON scalars
      }
      out << "}";
    }
    out << "}";
  }
  out << "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out.str();
}

bool Tracer::write(const std::string& path) const {
  return write_file_atomic(path, chrome_trace_json());
}

void install_tracer(Tracer* tracer) {
  g_tracer.store(tracer, std::memory_order_release);
}

Tracer* tracer() noexcept {
  return g_tracer.load(std::memory_order_acquire);
}

std::uint32_t current_thread_tid() noexcept {
  // Dense per-process thread ids (0, 1, 2, ...) so traces are small and
  // stable-looking; assigned in first-use order per thread.
  static std::atomic<std::uint32_t> next{0};
  thread_local std::uint32_t tid = next.fetch_add(1);
  return tid;
}

void set_thread_name(const std::string& name) {
  const std::uint32_t tid = current_thread_tid();
  const std::lock_guard<std::mutex> lock(thread_names_mutex());
  thread_names()[tid] = name;
}

void trace_counter(const char* name, std::uint64_t value) {
  if (Tracer* sink = tracer()) sink->counter(name, value);
}

void trace_counter(const char* name, double value) {
  if (Tracer* sink = tracer()) sink->counter(name, value);
}

void trace_instant(const char* name) {
  if (Tracer* sink = tracer()) sink->instant(name);
}

Span::Span(const char* name) : tracer_(obs::tracer()) {
  if (tracer_ == nullptr) return;
  event_.name = name;
  event_.tid = current_thread_tid();
  event_.start_us = tracer_->now_us();
}

Span::~Span() {
  if (tracer_ == nullptr) return;
  const std::uint64_t end = tracer_->now_us();
  event_.dur_us = end > event_.start_us ? end - event_.start_us : 0;
  tracer_->record(std::move(event_));
}

void Span::arg(const char* key, const std::string& value) {
  if (tracer_ == nullptr) return;
  std::ostringstream rendered;
  append_escaped(rendered, value);
  event_.args.emplace_back(key, rendered.str());
}

void Span::arg(const char* key, std::uint64_t value) {
  if (tracer_ == nullptr) return;
  event_.args.emplace_back(key, std::to_string(value));
}

void Span::arg(const char* key, std::int64_t value) {
  if (tracer_ == nullptr) return;
  event_.args.emplace_back(key, std::to_string(value));
}

void Span::arg(const char* key, bool value) {
  if (tracer_ == nullptr) return;
  event_.args.emplace_back(key, value ? "true" : "false");
}

}  // namespace fsr::obs
