#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace fsr::obs {

namespace {

std::atomic<Tracer*> g_tracer{nullptr};

std::uint32_t this_thread_tid() {
  // Dense per-process thread ids (0, 1, 2, ...) so traces are small and
  // stable-looking; assigned in first-span order per thread.
  static std::atomic<std::uint32_t> next{0};
  thread_local std::uint32_t tid = next.fetch_add(1);
  return tid;
}

void append_escaped(std::ostream& out, const std::string& text) {
  out << '"';
  for (const char c : text) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      case '\r': out << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out << buffer;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

std::uint64_t Tracer::now_us() const noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void Tracer::record(TraceEvent event) {
  const std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(event));
}

std::size_t Tracer::event_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::string Tracer::chrome_trace_json() const {
  std::vector<TraceEvent> events;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    events = events_;
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.tid != b.tid) return a.tid < b.tid;
                     if (a.start_us != b.start_us) return a.start_us < b.start_us;
                     return a.dur_us > b.dur_us;  // parents before children
                   });

  std::ostringstream out;
  out << "{\"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) out << ",";
    first = false;
    out << "\n  {\"name\": ";
    append_escaped(out, event.name);
    out << ", \"cat\": \"fsr\", \"ph\": \"X\", \"ts\": " << event.start_us
        << ", \"dur\": " << event.dur_us << ", \"pid\": 1, \"tid\": "
        << event.tid;
    if (!event.args.empty()) {
      out << ", \"args\": {";
      bool first_arg = true;
      for (const auto& [key, value] : event.args) {
        if (!first_arg) out << ", ";
        first_arg = false;
        append_escaped(out, key);
        out << ": " << value;  // values are pre-rendered JSON scalars
      }
      out << "}";
    }
    out << "}";
  }
  out << "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out.str();
}

bool Tracer::write(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const std::string json = chrome_trace_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), file) == json.size();
  return std::fclose(file) == 0 && ok;
}

void install_tracer(Tracer* tracer) {
  g_tracer.store(tracer, std::memory_order_release);
}

Tracer* tracer() noexcept {
  return g_tracer.load(std::memory_order_acquire);
}

Span::Span(const char* name) : tracer_(obs::tracer()) {
  if (tracer_ == nullptr) return;
  event_.name = name;
  event_.tid = this_thread_tid();
  event_.start_us = tracer_->now_us();
}

Span::~Span() {
  if (tracer_ == nullptr) return;
  const std::uint64_t end = tracer_->now_us();
  event_.dur_us = end > event_.start_us ? end - event_.start_us : 0;
  tracer_->record(std::move(event_));
}

void Span::arg(const char* key, const std::string& value) {
  if (tracer_ == nullptr) return;
  std::ostringstream rendered;
  append_escaped(rendered, value);
  event_.args.emplace_back(key, rendered.str());
}

void Span::arg(const char* key, std::uint64_t value) {
  if (tracer_ == nullptr) return;
  event_.args.emplace_back(key, std::to_string(value));
}

void Span::arg(const char* key, std::int64_t value) {
  if (tracer_ == nullptr) return;
  event_.args.emplace_back(key, std::to_string(value));
}

void Span::arg(const char* key, bool value) {
  if (tracer_ == nullptr) return;
  event_.args.emplace_back(key, value ? "true" : "false");
}

}  // namespace fsr::obs
