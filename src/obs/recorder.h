// FlightRecorder: bounded recent-history capture for post-mortems.
//
// A fixed-capacity ring buffer of small structured events per thread —
// request begin/end (fingerprint + wall), per-query solver summaries,
// session-cache evictions, errors, and slow-request marks — so a crashed
// or misbehaving process can explain its last moments without ever having
// logged to disk. Three ways out of the rings:
//
//   * the payload-free "debug" request kind (api/wire.h) drains a merged,
//     deterministically ordered view into a live response;
//   * install_crash_handler() dumps the rings plus a registry snapshot to
//     a JSON file on SIGSEGV/SIGABRT before re-raising, and on demand on
//     SIGUSR1 (the process keeps running);
//   * write_diagnostic_dump() does the same dump programmatically.
//
// Zero-overhead-when-off contract (mirrors obs::Span): no recorder is
// installed by default and record_event() is then ONE relaxed atomic load.
// When installed, the hot path is lock-free and wait-free: each thread
// writes its own ring (single-writer), claims a global sequence number
// with one relaxed fetch_add, and publishes the entry with one release
// store — no mutex, no allocation after the ring exists.
//
// Determinism contract: the recorder observes, never steers. Deterministic
// outputs are byte-identical with the recorder installed or not; recorder
// state only surfaces through the live "debug" response kind and dump
// files (both documented as execution state, like "stats").
//
// Draining while writers are active is safe but best-effort: entries that
// may have been overwritten mid-copy are dropped rather than returned
// torn. fsr_serve drains behind its stream barrier, where no request is in
// flight, so debug responses see a complete, stable history.
#ifndef FSR_OBS_RECORDER_H
#define FSR_OBS_RECORDER_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace fsr::obs {

enum class RecorderEventKind : std::uint8_t {
  request_begin,   // detail = request kind, a = request id
  request_end,     // detail = fingerprint, a = request id, b = wall us
  solver_query,    // detail = query site, a = conflicts, b = propagations
  cache_eviction,  // detail = evicted fingerprint
  error,           // detail = error text (truncated), a = request id
  slow_request,    // detail = fingerprint, a = wall us, b = threshold ms
  net_accept,      // detail = peer/transport, a = connection id
  net_close,       // detail = close reason, a = connection id, b = responses
  mark,            // detail = free-form caller text
};

const char* to_string(RecorderEventKind kind) noexcept;

/// One recorded event. Fixed-size (no heap) so ring writes never allocate;
/// `detail` is a truncated NUL-terminated string.
struct RecorderEvent {
  static constexpr std::size_t k_detail_capacity = 48;

  std::uint64_t seq = 0;    // global claim order — the merged drain order
  std::uint64_t ts_us = 0;  // microseconds since recorder construction
  std::uint32_t tid = 0;    // dense per-thread id (shared with the tracer)
  RecorderEventKind kind = RecorderEventKind::mark;
  char detail[k_detail_capacity] = {};
  std::uint64_t a = 0;  // kind-specific payload, see RecorderEventKind
  std::uint64_t b = 0;
};

class FlightRecorder {
 public:
  /// `capacity` = events retained per writing thread (older entries are
  /// overwritten; the drop is counted, never silent).
  explicit FlightRecorder(std::size_t capacity = 1024);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Appends one event to the calling thread's ring. Lock-free after the
  /// thread's first event (which registers its ring under a mutex).
  void record(RecorderEventKind kind, std::string_view detail,
              std::uint64_t a = 0, std::uint64_t b = 0) noexcept;

  /// Merged view of every thread's retained events, ordered by `seq` (the
  /// global claim order — deterministic for a quiesced recorder). Entries
  /// possibly overwritten while copying are dropped, not returned torn.
  std::vector<RecorderEvent> drain() const;

  /// Events overwritten because a ring wrapped (lifetime total).
  std::uint64_t dropped() const;
  /// Events ever recorded (lifetime total, = seq high-water mark).
  std::uint64_t recorded() const;

  std::size_t capacity() const noexcept { return capacity_; }
  std::uint64_t now_us() const noexcept;

 private:
  struct Ring;
  Ring& ring_for_this_thread();

  const std::size_t capacity_;
  const std::chrono::steady_clock::time_point epoch_;
  const std::uint64_t id_;  // process-unique; keys the thread ring cache
  std::atomic<std::uint64_t> next_seq_{0};
  mutable std::mutex rings_mutex_;
  std::vector<Ring*> rings_;  // owned; freed in the destructor
};

/// Installs `recorder` as the process-wide sink (nullptr to disable). The
/// caller keeps ownership and must uninstall before destroying it.
void install_recorder(FlightRecorder* recorder);
FlightRecorder* recorder() noexcept;

/// Records into the installed recorder; one relaxed load and out when none
/// is installed — safe on any hot path that is at least per-request.
void record_event(RecorderEventKind kind, std::string_view detail,
                  std::uint64_t a = 0, std::uint64_t b = 0) noexcept;

/// Writes a post-mortem JSON file: {"reason", "recorded", "dropped",
/// "events": [...], "metrics": <registry snapshot>}. Uses the installed
/// recorder (the events array is empty with none installed — the registry
/// snapshot alone is still worth having). Atomic temp+rename write;
/// returns false on I/O failure.
bool write_diagnostic_dump(const std::string& path, const std::string& reason);

/// Installs handlers that write a diagnostic dump to `path`: SIGSEGV and
/// SIGABRT dump then re-raise the default disposition (the process still
/// dies, with its post-mortem on disk); SIGUSR1 dumps on demand and
/// returns. Best-effort by design: the dump allocates and takes locks, so
/// a crash inside the allocator or the registry can lose the dump — for a
/// diagnostics file that is the right trade against perturbing every
/// healthy run. Call once, from main, before worker threads exist.
void install_crash_handler(const std::string& path);

}  // namespace fsr::obs

#endif  // FSR_OBS_RECORDER_H
