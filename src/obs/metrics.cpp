#include "obs/metrics.h"

#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>

namespace fsr::obs {

void Histogram::record(std::uint64_t sample) noexcept {
  std::size_t b = 0;
  while (b + 1 < k_buckets && (1ull << b) < sample) ++b;
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
}

std::int64_t MetricsSnapshot::value(const std::string& name) const noexcept {
  for (const MetricValue& metric : metrics) {
    if (metric.name == name) return metric.value;
  }
  return 0;
}

std::string to_json(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (const MetricValue& metric : snapshot.metrics) {
    if (!first) out << ", ";
    first = false;
    out << "\"" << metric.name << "\": ";
    if (metric.kind == MetricValue::Kind::histogram) {
      out << "{\"count\": " << metric.count << ", \"sum\": " << metric.sum
          << ", \"buckets\": [";
      for (std::size_t b = 0; b < metric.buckets.size(); ++b) {
        if (b) out << ", ";
        out << metric.buckets[b];
      }
      out << "]}";
    } else {
      out << metric.value;
    }
  }
  out << "}";
  return out.str();
}

namespace {

// Instruments are stored through unique_ptr so references handed out stay
// stable while the map rebalances; entries are never erased.
struct Instrument {
  MetricValue::Kind kind = MetricValue::Kind::counter;
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
};

}  // namespace

struct Registry::Impl {
  std::mutex mutex;
  std::map<std::string, Instrument> instruments;
};

Registry::Impl& Registry::impl() const {
  // Leaked on purpose: instruments must outlive every static-destruction
  // order; the registry is process-global state like the C runtime's.
  static Impl* impl = new Impl();
  return *impl;
}

Counter& Registry::counter(const std::string& name) {
  Impl& state = impl();
  const std::lock_guard<std::mutex> lock(state.mutex);
  Instrument& slot = state.instruments[name];
  if (slot.counter == nullptr) {
    if (slot.gauge != nullptr || slot.histogram != nullptr) {
      throw std::logic_error("obs: '" + name +
                             "' already registered with another kind");
    }
    slot.kind = MetricValue::Kind::counter;
    slot.counter = std::make_unique<Counter>();
  }
  return *slot.counter;
}

Gauge& Registry::gauge(const std::string& name) {
  Impl& state = impl();
  const std::lock_guard<std::mutex> lock(state.mutex);
  Instrument& slot = state.instruments[name];
  if (slot.gauge == nullptr) {
    if (slot.counter != nullptr || slot.histogram != nullptr) {
      throw std::logic_error("obs: '" + name +
                             "' already registered with another kind");
    }
    slot.kind = MetricValue::Kind::gauge;
    slot.gauge = std::make_unique<Gauge>();
  }
  return *slot.gauge;
}

Histogram& Registry::histogram(const std::string& name) {
  Impl& state = impl();
  const std::lock_guard<std::mutex> lock(state.mutex);
  Instrument& slot = state.instruments[name];
  if (slot.histogram == nullptr) {
    if (slot.counter != nullptr || slot.gauge != nullptr) {
      throw std::logic_error("obs: '" + name +
                             "' already registered with another kind");
    }
    slot.kind = MetricValue::Kind::histogram;
    slot.histogram = std::make_unique<Histogram>();
  }
  return *slot.histogram;
}

MetricsSnapshot Registry::snapshot() const {
  Impl& state = impl();
  const std::lock_guard<std::mutex> lock(state.mutex);
  MetricsSnapshot snapshot;
  snapshot.metrics.reserve(state.instruments.size());
  for (const auto& [name, slot] : state.instruments) {
    MetricValue value;
    value.name = name;
    value.kind = slot.kind;
    switch (slot.kind) {
      case MetricValue::Kind::counter:
        value.value = static_cast<std::int64_t>(slot.counter->value());
        break;
      case MetricValue::Kind::gauge:
        value.value = slot.gauge->value();
        break;
      case MetricValue::Kind::histogram: {
        value.count = slot.histogram->count();
        value.sum = slot.histogram->sum();
        std::size_t last = 0;
        for (std::size_t b = 0; b < Histogram::k_buckets; ++b) {
          if (slot.histogram->bucket(b) != 0) last = b + 1;
        }
        value.buckets.reserve(last);
        for (std::size_t b = 0; b < last; ++b) {
          value.buckets.push_back(slot.histogram->bucket(b));
        }
        break;
      }
    }
    snapshot.metrics.push_back(std::move(value));
  }
  return snapshot;
}

Registry& registry() {
  static Registry instance;
  return instance;
}

}  // namespace fsr::obs
