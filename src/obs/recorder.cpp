#include "obs/recorder.h"

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <utility>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fsr::obs {

const char* to_string(RecorderEventKind kind) noexcept {
  switch (kind) {
    case RecorderEventKind::request_begin:
      return "request-begin";
    case RecorderEventKind::request_end:
      return "request-end";
    case RecorderEventKind::solver_query:
      return "solver-query";
    case RecorderEventKind::cache_eviction:
      return "cache-eviction";
    case RecorderEventKind::error:
      return "error";
    case RecorderEventKind::slow_request:
      return "slow-request";
    case RecorderEventKind::net_accept:
      return "net-accept";
    case RecorderEventKind::net_close:
      return "net-close";
    case RecorderEventKind::mark:
      return "mark";
  }
  return "mark";
}

namespace {

std::atomic<FlightRecorder*> g_recorder{nullptr};

// Distinguishes recorder instances across create/destroy cycles so a
// thread's cached ring pointer can never alias a new recorder that happens
// to reuse the old one's address.
std::atomic<std::uint64_t> g_recorder_ids{1};

}  // namespace

/// One thread's ring. Single-writer: only the owning thread touches
/// `entries` and advances `count`; drains read `count` with acquire and
/// re-check it after copying to shed entries the writer may have
/// overwritten mid-copy.
struct FlightRecorder::Ring {
  explicit Ring(std::size_t capacity) : entries(capacity) {}
  std::vector<RecorderEvent> entries;
  std::atomic<std::uint64_t> count{0};  // lifetime writes by the owner
};

namespace {

struct ThreadRingSlot {
  std::uint64_t recorder_id = 0;
  void* ring = nullptr;  // FlightRecorder::Ring*, type-erased (Ring is private)
};

thread_local ThreadRingSlot t_ring_slot;

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      epoch_(std::chrono::steady_clock::now()),
      id_(g_recorder_ids.fetch_add(1, std::memory_order_relaxed)) {}

FlightRecorder::~FlightRecorder() {
  const std::lock_guard<std::mutex> lock(rings_mutex_);
  for (Ring* ring : rings_) delete ring;
  rings_.clear();
}

std::uint64_t FlightRecorder::now_us() const noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

FlightRecorder::Ring& FlightRecorder::ring_for_this_thread() {
  if (t_ring_slot.recorder_id == id_) {
    return *static_cast<Ring*>(t_ring_slot.ring);
  }
  auto* ring = new Ring(capacity_);
  {
    const std::lock_guard<std::mutex> lock(rings_mutex_);
    rings_.push_back(ring);
  }
  t_ring_slot.recorder_id = id_;
  t_ring_slot.ring = ring;
  return *ring;
}

void FlightRecorder::record(RecorderEventKind kind, std::string_view detail,
                            std::uint64_t a, std::uint64_t b) noexcept {
  Ring& ring = ring_for_this_thread();
  // The slot index comes from the owner-thread write count; the sequence
  // number is the global claim order drains merge by.
  const std::uint64_t index = ring.count.load(std::memory_order_relaxed);
  RecorderEvent& slot = ring.entries[index % capacity_];
  slot.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  slot.ts_us = now_us();
  slot.tid = current_thread_tid();
  slot.kind = kind;
  const std::size_t n =
      detail.size() < RecorderEvent::k_detail_capacity - 1
          ? detail.size()
          : RecorderEvent::k_detail_capacity - 1;
  std::memcpy(slot.detail, detail.data(), n);
  slot.detail[n] = '\0';
  slot.a = a;
  slot.b = b;
  ring.count.store(index + 1, std::memory_order_release);
}

std::vector<RecorderEvent> FlightRecorder::drain() const {
  std::vector<RecorderEvent> merged;
  {
    const std::lock_guard<std::mutex> lock(rings_mutex_);
    for (const Ring* ring : rings_) {
      const std::uint64_t c1 = ring->count.load(std::memory_order_acquire);
      const std::uint64_t first = c1 > capacity_ ? c1 - capacity_ : 0;
      std::vector<std::pair<std::uint64_t, RecorderEvent>> copied;
      copied.reserve(static_cast<std::size_t>(c1 - first));
      for (std::uint64_t j = first; j < c1; ++j) {
        copied.emplace_back(j, ring->entries[j % capacity_]);
      }
      // Entries the writer may have overwritten while we copied are torn:
      // keep only indices still inside the ring window NOW.
      const std::uint64_t c2 = ring->count.load(std::memory_order_acquire);
      const std::uint64_t safe = c2 > capacity_ ? c2 - capacity_ : 0;
      for (auto& [index, event] : copied) {
        if (index >= safe) merged.push_back(event);
      }
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const RecorderEvent& a, const RecorderEvent& b) {
              return a.seq < b.seq;
            });
  return merged;
}

std::uint64_t FlightRecorder::dropped() const {
  const std::lock_guard<std::mutex> lock(rings_mutex_);
  std::uint64_t dropped = 0;
  for (const Ring* ring : rings_) {
    const std::uint64_t count = ring->count.load(std::memory_order_acquire);
    if (count > capacity_) dropped += count - capacity_;
  }
  return dropped;
}

std::uint64_t FlightRecorder::recorded() const {
  return next_seq_.load(std::memory_order_relaxed);
}

void install_recorder(FlightRecorder* recorder) {
  g_recorder.store(recorder, std::memory_order_release);
}

FlightRecorder* recorder() noexcept {
  return g_recorder.load(std::memory_order_acquire);
}

void record_event(RecorderEventKind kind, std::string_view detail,
                  std::uint64_t a, std::uint64_t b) noexcept {
  FlightRecorder* sink = g_recorder.load(std::memory_order_acquire);
  if (sink == nullptr) return;
  sink->record(kind, detail, a, b);
}

namespace {

void append_escaped(std::string& out, std::string_view text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

bool write_diagnostic_dump(const std::string& path,
                           const std::string& reason) {
  std::string out = "{\"reason\": ";
  append_escaped(out, reason);
  FlightRecorder* sink = recorder();
  out += ", \"recorded\": " +
         std::to_string(sink != nullptr ? sink->recorded() : 0);
  out += ", \"dropped\": " +
         std::to_string(sink != nullptr ? sink->dropped() : 0);
  out += ", \"events\": [";
  if (sink != nullptr) {
    bool first = true;
    for (const RecorderEvent& event : sink->drain()) {
      if (!first) out += ",";
      first = false;
      out += "\n  {\"seq\": " + std::to_string(event.seq);
      out += ", \"ts_us\": " + std::to_string(event.ts_us);
      out += ", \"tid\": " + std::to_string(event.tid);
      out += ", \"kind\": \"" + std::string(to_string(event.kind)) + "\"";
      out += ", \"detail\": ";
      append_escaped(out, event.detail);
      out += ", \"a\": " + std::to_string(event.a);
      out += ", \"b\": " + std::to_string(event.b) + "}";
    }
  }
  out += "\n], \"metrics\": " + to_json(registry().snapshot()) + "}\n";
  return write_file_atomic(path, out);
}

namespace {

// The dump path lives in a fixed-size buffer written once, before
// handlers are installed, so the handler never allocates for it.
char g_dump_path[512] = {};
std::atomic<bool> g_dump_taken{false};

const char* signal_name(int sig) {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGABRT: return "SIGABRT";
    case SIGUSR1: return "SIGUSR1";
  }
  return "signal";
}

void fatal_signal_handler(int sig) {
  // Restore the default disposition first so a second fault (e.g. inside
  // the dump itself) terminates instead of recursing.
  std::signal(sig, SIG_DFL);
  if (!g_dump_taken.exchange(true)) {
    write_diagnostic_dump(g_dump_path, signal_name(sig));
  }
  std::raise(sig);
}

void dump_signal_handler(int /*sig*/) {
  // On-demand snapshot: dump and keep running.
  write_diagnostic_dump(g_dump_path, "SIGUSR1");
}

}  // namespace

void install_crash_handler(const std::string& path) {
  const std::size_t n =
      path.size() < sizeof(g_dump_path) - 1 ? path.size()
                                            : sizeof(g_dump_path) - 1;
  std::memcpy(g_dump_path, path.data(), n);
  g_dump_path[n] = '\0';

  struct sigaction fatal = {};
  fatal.sa_handler = fatal_signal_handler;
  sigemptyset(&fatal.sa_mask);
  sigaction(SIGSEGV, &fatal, nullptr);
  sigaction(SIGABRT, &fatal, nullptr);

  struct sigaction dump = {};
  dump.sa_handler = dump_signal_handler;
  sigemptyset(&dump.sa_mask);
  dump.sa_flags = SA_RESTART;  // a dump must not fail in-flight reads
  sigaction(SIGUSR1, &dump, nullptr);
}

}  // namespace fsr::obs
