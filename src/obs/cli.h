// Shared diagnostics flag plumbing for the fsr CLIs.
//
// fsr_serve, fsr_campaign, and fsr_repair all expose the same
// observability surface — --trace-out, --metrics-out,
// --metrics-interval-ms, --recorder, --crash-dump — and before this
// header each main() carried its own copy of the flag parsing, the usage
// text, and the install/finalize choreography (tracer before workers,
// recorder outliving the service, metrics written once at exit). Three
// drifting copies is how fsr_serve grew a --recorder knob the others
// lacked; this header is the one implementation all three share.
//
// Usage pattern in a main():
//
//   obs::DiagnosticsCliOptions diag;
//   for (int i = 1; i < argc; ++i) {
//     if (obs::consume_diagnostics_flag(argc, argv, i, "fsr_serve", diag))
//       continue;
//     ... tool-specific flags ...
//   }
//   obs::DiagnosticsSession session(diag, "fsr_serve");  // BEFORE the
//   ...                                   // service: workers cache ring
//   return session.finalize() && ok ? 0 : 1;  // pointers into the recorder
//
// The session installs on construction and uninstalls + writes outputs in
// finalize() (or its destructor); response/report bytes are never
// affected by any of it.
#ifndef FSR_OBS_CLI_H
#define FSR_OBS_CLI_H

#include <cstddef>
#include <optional>
#include <string>

#include "obs/export.h"
#include "obs/recorder.h"
#include "obs/trace.h"

namespace fsr::obs {

struct DiagnosticsCliOptions {
  std::string trace_out;
  std::string metrics_out;
  std::string crash_dump;
  int metrics_interval_ms = 1000;
  /// Flight-recorder ring capacity per thread; 0 = no recorder — but
  /// --crash-dump without an explicit --recorder implies 1024 (a dump
  /// without history would be useless).
  std::size_t recorder_capacity = 0;
  bool recorder_set_explicitly = false;
};

/// True when argv[i] is one of the shared diagnostics flags (the value,
/// if any, is consumed and i advanced). Prints to stderr and exits 2 on a
/// missing or invalid value, exactly like the CLIs' own flag handling.
bool consume_diagnostics_flag(int argc, char** argv, int& i,
                              const char* program,
                              DiagnosticsCliOptions& options);

/// The usage text for the shared flags, ready to splice into a tool's
/// --help output (every line indented two spaces, trailing newline).
const char* diagnostics_usage();

/// RAII owner of the whole diagnostics stack: tracer, flight recorder,
/// crash handler, periodic metrics writer. Construct BEFORE the
/// AnalysisService (worker threads cache ring pointers into the recorder,
/// so it must outlive them — destruction order does the right thing when
/// this is declared first).
class DiagnosticsSession {
 public:
  DiagnosticsSession(DiagnosticsCliOptions options, const char* program);
  ~DiagnosticsSession();

  DiagnosticsSession(const DiagnosticsSession&) = delete;
  DiagnosticsSession& operator=(const DiagnosticsSession&) = delete;

  /// Uninstalls everything and writes the trace/metrics files. Returns
  /// false (after a stderr message) when any output file failed to write.
  /// Idempotent; the destructor calls it as a safety net.
  bool finalize();

 private:
  DiagnosticsCliOptions options_;
  std::string program_;
  Tracer tracer_;
  std::optional<FlightRecorder> recorder_;
  std::optional<MetricsFileWriter> metrics_writer_;
  bool finalized_ = false;
  bool ok_ = true;
};

}  // namespace fsr::obs

#endif  // FSR_OBS_CLI_H
