// OpenMetrics exporter: renders a MetricsSnapshot as Prometheus/OpenMetrics
// exposition text, plus the atomic-file plumbing that makes scraping safe.
//
// Today the export surface is a file (`--metrics-out FILE` on the CLIs,
// rewritten atomically so a scraper or `cat` never sees a half-written
// exposition); when the epoll server lands the same render_openmetrics()
// string becomes the `/metrics` handler body.
//
// Mapping from the registry (obs/metrics.h):
//   * names are sanitized to the OpenMetrics charset — every character
//     outside [a-zA-Z0-9_] becomes '_' — and prefixed "fsr_", so
//     "sat.conflicts" exports as "fsr_sat_conflicts";
//   * counters export as "<name>_total" with TYPE counter;
//   * gauges export under their plain name with TYPE gauge;
//   * power-of-two histograms convert to cumulative `le` buckets: bucket 0
//     (samples in {0,1}) becomes le="1", bucket b becomes le="2^b", plus
//     the mandatory le="+Inf", `_sum`, and `_count` series;
//   * the exposition ends with the mandatory "# EOF" line.
//
// Rendering is deterministic: snapshots are sorted by name and values
// render in one canonical form, so two snapshots of equal state produce
// byte-identical expositions.
#ifndef FSR_OBS_EXPORT_H
#define FSR_OBS_EXPORT_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>

#include "obs/metrics.h"

namespace fsr::obs {

/// Registry metric name -> OpenMetrics family name ("sat.conflicts" ->
/// "fsr_sat_conflicts"). Exposed so tests and tooling can round-trip.
std::string openmetrics_name(std::string_view name);

/// Full OpenMetrics exposition for `snapshot`: # HELP / # TYPE per family,
/// one sample block per instrument, terminated by "# EOF\n".
std::string render_openmetrics(const MetricsSnapshot& snapshot);

/// Writes `contents` to `path` via a unique temp file in the same
/// directory plus an atomic rename, so readers only ever see complete
/// files. Returns false (best-effort cleanup of the temp) on any I/O
/// error. Shared by the metrics writer, trace output, and crash dumps.
bool write_file_atomic(const std::string& path, std::string_view contents);

/// Renders the process registry and writes it atomically to `path`.
bool write_openmetrics_file(const std::string& path);

/// Background scrape-file writer: snapshots the process registry every
/// `interval` and rewrites `path` atomically; a final snapshot is written
/// on stop() so the file always reflects end-of-run totals even when the
/// run is shorter than one interval.
///
/// Observation-only, like every obs channel: the writer thread reads the
/// registry with relaxed loads and never feeds anything back, so
/// deterministic outputs are byte-identical with a writer running or not.
class MetricsFileWriter {
 public:
  struct Options {
    std::string path;
    std::chrono::milliseconds interval{1000};
  };

  /// Starts the writer thread; the first snapshot is written immediately.
  explicit MetricsFileWriter(Options options);
  ~MetricsFileWriter();

  MetricsFileWriter(const MetricsFileWriter&) = delete;
  MetricsFileWriter& operator=(const MetricsFileWriter&) = delete;

  /// Writes a final snapshot and joins the thread. Idempotent.
  void stop();

  /// False if any write so far failed (bad path, disk full, ...).
  bool ok() const noexcept { return ok_.load(std::memory_order_relaxed); }
  /// Snapshots written so far (including the final one after stop()).
  std::uint64_t writes() const noexcept {
    return writes_.load(std::memory_order_relaxed);
  }

 private:
  void writer_loop();
  void write_snapshot();

  const Options options_;
  std::atomic<bool> ok_{true};
  std::atomic<std::uint64_t> writes_{0};
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;
  bool stopped_ = false;
  std::thread thread_;
};

}  // namespace fsr::obs

#endif  // FSR_OBS_EXPORT_H
