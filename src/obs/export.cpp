#include "obs/export.h"

#include <unistd.h>

#include <filesystem>
#include <fstream>

namespace fsr::obs {

std::string openmetrics_name(std::string_view name) {
  std::string out = "fsr_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

std::string render_openmetrics(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const MetricValue& metric : snapshot.metrics) {
    const std::string family = openmetrics_name(metric.name);
    out += "# HELP " + family + " fsr registry instrument '" + metric.name +
           "'\n";
    switch (metric.kind) {
      case MetricValue::Kind::counter:
        out += "# TYPE " + family + " counter\n";
        out += family + "_total " + std::to_string(metric.value) + "\n";
        break;
      case MetricValue::Kind::gauge:
        out += "# TYPE " + family + " gauge\n";
        out += family + " " + std::to_string(metric.value) + "\n";
        break;
      case MetricValue::Kind::histogram: {
        out += "# TYPE " + family + " histogram\n";
        // Power-of-two buckets to cumulative `le`: bucket 0 counts {0,1}
        // so its upper bound is 1; bucket b covers (2^(b-1), 2^b].
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < metric.buckets.size(); ++b) {
          cumulative += metric.buckets[b];
          const std::uint64_t upper = std::uint64_t{1} << b;
          out += family + "_bucket{le=\"" + std::to_string(upper) + "\"} " +
                 std::to_string(cumulative) + "\n";
        }
        out += family + "_bucket{le=\"+Inf\"} " +
               std::to_string(metric.count) + "\n";
        out += family + "_sum " + std::to_string(metric.sum) + "\n";
        out += family + "_count " + std::to_string(metric.count) + "\n";
        break;
      }
    }
  }
  out += "# EOF\n";
  return out;
}

bool write_file_atomic(const std::string& path, std::string_view contents) {
  namespace fs = std::filesystem;
  // Same idiom as the campaign disk cache: unique temp in the target
  // directory, then an atomic rename so readers never see partial bytes.
  static std::atomic<std::uint64_t> write_counter{0};
  const std::string temp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid())) + "." +
      std::to_string(write_counter.fetch_add(1, std::memory_order_relaxed));
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) return false;
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
    out.close();
    if (!out.good()) {
      std::error_code ec;
      fs::remove(temp, ec);
      return false;
    }
  }
  std::error_code ec;
  fs::rename(temp, path, ec);
  if (ec) {
    std::error_code cleanup;
    fs::remove(temp, cleanup);
    return false;
  }
  return true;
}

bool write_openmetrics_file(const std::string& path) {
  return write_file_atomic(path, render_openmetrics(registry().snapshot()));
}

MetricsFileWriter::MetricsFileWriter(Options options)
    : options_(std::move(options)) {
  write_snapshot();
  thread_ = std::thread([this] { writer_loop(); });
}

MetricsFileWriter::~MetricsFileWriter() { stop(); }

void MetricsFileWriter::stop() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) return;
    stopping_ = true;
    stopped_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
  // Final snapshot: the file must reflect end-of-run totals even when the
  // run finished mid-interval.
  write_snapshot();
}

void MetricsFileWriter::writer_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    if (wake_.wait_for(lock, options_.interval,
                       [this] { return stopping_; })) {
      break;
    }
    lock.unlock();
    write_snapshot();
    lock.lock();
  }
}

void MetricsFileWriter::write_snapshot() {
  if (!write_openmetrics_file(options_.path)) {
    ok_.store(false, std::memory_order_relaxed);
  }
  writes_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace fsr::obs
