// Structured span tracing: scoped RAII spans that record where a request
// spent its time, exported as Chrome trace_event JSON (loadable in
// about:tracing and https://ui.perfetto.dev).
//
// Zero-overhead-when-off contract: no tracer is installed by default, and
// Span's constructor then costs ONE relaxed atomic load (the global tracer
// pointer) — no clock read, no allocation, no lock. Tracing is enabled by
// the CLIs' --trace-out flag, which installs a process-wide Tracer for the
// run and writes the JSON on exit.
//
// Determinism contract: spans observe, never steer. All deterministic
// outputs are byte-identical with tracing on or off — traces go to their
// own file, and nothing reads trace state back into analysis.
//
// Nesting: Chrome's "X" (complete) events imply parent/child structure by
// timestamp containment per thread — a span enclosing another span's
// lifetime on the same thread renders as its parent. RAII scoping makes
// that automatic; spans must therefore end in reverse order of start on
// each thread (guaranteed by scoping, asserted by the CI trace validator).
//
// Usage:
//   obs::Span span("repair.run");
//   span.arg("instance", instance.name);   // string arg
//   ...
//   span.arg("solver_checks", checks);     // numeric arg, attached counters
#ifndef FSR_OBS_TRACE_H
#define FSR_OBS_TRACE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace fsr::obs {

/// One recorded trace event. args values are pre-rendered JSON scalars
/// (quoted strings or bare numbers). `phase` selects the Chrome
/// trace_event type: "X" complete spans (the default), "C" counter
/// samples (args carry the sampled series values), "i" thread-scoped
/// instants (point markers like solver restarts).
struct TraceEvent {
  std::string name;
  char phase = 'X';
  std::uint32_t tid = 0;
  std::uint64_t start_us = 0;
  std::uint64_t dur_us = 0;  // spans only
  std::vector<std::pair<std::string, std::string>> args;
};

/// Collects spans from all threads for one traced run. Thread-safe;
/// span end is one short mutex-guarded vector push (off the analysis hot
/// path — spans wrap whole requests/queries, not solver inner loops).
class Tracer {
 public:
  Tracer();

  void record(TraceEvent event);

  /// Records a counter sample ("C" event) on the current thread: Perfetto
  /// renders each named series as a counter track under the thread, so
  /// per-query solver rates and sizes read as timelines beneath the spans
  /// that produced them. Doubles render with fixed 3-digit precision so
  /// documents stay deterministic for a given set of samples.
  void counter(const char* name, std::uint64_t value);
  void counter(const char* name, double value);

  /// Records a thread-scoped instant ("i" event) — a point marker, e.g. a
  /// solver restart, nested under whatever span encloses it.
  void instant(const char* name);

  /// Microseconds since this tracer was created (steady clock).
  std::uint64_t now_us() const noexcept;

  std::size_t event_count() const;

  /// The full Chrome trace_event document:
  /// {"traceEvents": [...], "displayTimeUnit": "ms"}. Leads with "M"
  /// metadata events (process_name "fsr" + one thread_name per thread
  /// named via set_thread_name, sorted by tid), then data events sorted by
  /// (tid, start_us) so the document is stable for a given set of events.
  std::string chrome_trace_json() const;

  /// Writes chrome_trace_json() to `path` via a temp file + atomic rename,
  /// so an interrupted run never leaves a truncated, unparseable trace.
  /// Returns false on I/O failure.
  bool write(const std::string& path) const;

 private:
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
};

/// Installs `tracer` as the process-wide sink (nullptr to disable). The
/// caller keeps ownership and must keep it alive until uninstalled; live
/// Spans hold the pointer across the swap, so uninstall before destroying.
void install_tracer(Tracer* tracer);
Tracer* tracer() noexcept;

/// Dense per-process thread id (0, 1, 2, ...) assigned on first use; the
/// same ids key trace events, flight-recorder events, and thread names.
std::uint32_t current_thread_tid() noexcept;

/// Names the calling thread for trace output ("main", "worker-0", ...):
/// every Tracer renders the name as a Chrome "M" thread_name metadata
/// event so Perfetto shows named tracks instead of bare dense tids.
/// Process-lifetime and tracer-independent; naming a tid twice keeps the
/// latest name. Cheap, but not for hot paths (takes a mutex).
void set_thread_name(const std::string& name);

/// Counter/instant conveniences against the installed tracer; one relaxed
/// load and out when tracing is off, mirroring Span's off-cost.
void trace_counter(const char* name, std::uint64_t value);
void trace_counter(const char* name, double value);
void trace_instant(const char* name);

/// RAII span: records [construction, destruction) on the current thread
/// against the tracer installed at construction. When no tracer is
/// installed the constructor is a no-op (one relaxed load) and arg() is
/// free.
class Span {
 public:
  explicit Span(const char* name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const noexcept { return tracer_ != nullptr; }

  /// Attach a key/value to the span (rendered in the trace's args object).
  void arg(const char* key, const std::string& value);
  void arg(const char* key, std::uint64_t value);
  void arg(const char* key, std::int64_t value);
  void arg(const char* key, int value) {
    arg(key, static_cast<std::int64_t>(value));
  }
  void arg(const char* key, bool value);

 private:
  Tracer* tracer_ = nullptr;  // bound at construction; null = disabled
  TraceEvent event_;
};

}  // namespace fsr::obs

#endif  // FSR_OBS_TRACE_H
