#include "obs/cli.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace fsr::obs {

namespace {

const char* flag_value(int argc, char** argv, int& i, const char* program,
                       const char* flag) {
  if (i + 1 >= argc) {
    std::fprintf(stderr, "%s: %s requires a value\n", program, flag);
    std::exit(2);
  }
  return argv[++i];
}

}  // namespace

bool consume_diagnostics_flag(int argc, char** argv, int& i,
                              const char* program,
                              DiagnosticsCliOptions& options) {
  const char* arg = argv[i];
  if (std::strcmp(arg, "--trace-out") == 0) {
    options.trace_out = flag_value(argc, argv, i, program, "--trace-out");
  } else if (std::strcmp(arg, "--metrics-out") == 0) {
    options.metrics_out = flag_value(argc, argv, i, program, "--metrics-out");
  } else if (std::strcmp(arg, "--metrics-interval-ms") == 0) {
    options.metrics_interval_ms =
        std::atoi(flag_value(argc, argv, i, program, "--metrics-interval-ms"));
    if (options.metrics_interval_ms < 1) {
      std::fprintf(stderr, "%s: --metrics-interval-ms needs a value >= 1\n",
                   program);
      std::exit(2);
    }
  } else if (std::strcmp(arg, "--recorder") == 0) {
    const int capacity =
        std::atoi(flag_value(argc, argv, i, program, "--recorder"));
    if (capacity < 0) {
      std::fprintf(stderr, "%s: --recorder needs a value >= 0\n", program);
      std::exit(2);
    }
    options.recorder_capacity = static_cast<std::size_t>(capacity);
    options.recorder_set_explicitly = true;
  } else if (std::strcmp(arg, "--crash-dump") == 0) {
    options.crash_dump = flag_value(argc, argv, i, program, "--crash-dump");
  } else {
    return false;
  }
  return true;
}

const char* diagnostics_usage() {
  return
      "  --trace-out FILE   write a Chrome trace_event JSON of the run\n"
      "                     (load in about:tracing or ui.perfetto.dev);\n"
      "                     output bytes are unaffected\n"
      "  --metrics-out FILE rewrite FILE atomically with an OpenMetrics\n"
      "                     snapshot of the obs registry, every\n"
      "                     --metrics-interval-ms (default 1000) and once\n"
      "                     at exit; scrape-ready, bytes unaffected\n"
      "  --metrics-interval-ms N\n"
      "                     snapshot period for --metrics-out\n"
      "  --recorder N       install a flight recorder keeping the last N\n"
      "                     events per thread (fsr_serve drains it via the\n"
      "                     \"debug\" request kind; 0 = off, the default)\n"
      "  --crash-dump FILE  dump recorder events + a registry snapshot to\n"
      "                     FILE on SIGSEGV/SIGABRT (then die) and on\n"
      "                     SIGUSR1 (on demand, keep serving); implies\n"
      "                     --recorder 1024 unless set explicitly\n";
}

DiagnosticsSession::DiagnosticsSession(DiagnosticsCliOptions options,
                                       const char* program)
    : options_(std::move(options)), program_(program) {
  if (!options_.trace_out.empty()) install_tracer(&tracer_);
  std::size_t capacity = options_.recorder_capacity;
  if (!options_.crash_dump.empty() && !options_.recorder_set_explicitly &&
      capacity == 0) {
    capacity = 1024;  // a crash dump without history would be useless
  }
  if (capacity > 0) {
    recorder_.emplace(capacity);
    install_recorder(&*recorder_);
  }
  if (!options_.crash_dump.empty()) install_crash_handler(options_.crash_dump);
  if (!options_.metrics_out.empty()) {
    metrics_writer_.emplace(MetricsFileWriter::Options{
        options_.metrics_out,
        std::chrono::milliseconds(options_.metrics_interval_ms)});
  }
}

DiagnosticsSession::~DiagnosticsSession() { finalize(); }

bool DiagnosticsSession::finalize() {
  if (finalized_) return ok_;
  finalized_ = true;
  if (recorder_.has_value()) install_recorder(nullptr);
  if (metrics_writer_.has_value()) {
    metrics_writer_->stop();
    if (!metrics_writer_->ok()) {
      std::fprintf(stderr, "%s: cannot write metrics to '%s'\n",
                   program_.c_str(), options_.metrics_out.c_str());
      ok_ = false;
    }
  }
  if (!options_.trace_out.empty()) {
    install_tracer(nullptr);
    if (!tracer_.write(options_.trace_out)) {
      std::fprintf(stderr, "%s: cannot write trace to '%s'\n",
                   program_.c_str(), options_.trace_out.c_str());
      ok_ = false;
    }
  }
  return ok_;
}

}  // namespace fsr::obs
