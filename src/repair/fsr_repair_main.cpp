// fsr_repair: counterexample-guided policy repair from the command line —
// a thin client of the fsr::api service façade.
//
//   fsr_repair --gadget bad --gadget disagree
//   fsr_repair --gadget ibgp-figure3 | jq '.[0].repaired'
//   fsr_repair --random 4 --seed 42 --max-edits 3 --table
//
// Each requested instance becomes one RepairRequest through an
// AnalysisService (src/api/service.h): minimal unsat core -> candidate
// edits -> incremental re-checks -> ground-truth validation, with warm
// solver sessions shared across requests per worker. Default output is
// the machine-readable JSON report array on stdout (deterministic fields
// only, byte-identical for any --threads); --table renders the human
// tables instead, timings included. Exit status: 0 on success, 1 when any
// repair failed internally, 2 on usage errors.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <optional>
#include <string>
#include <vector>

#include "api/service.h"
#include "campaign/scenario_source.h"
#include "groundtruth/engine.h"
#include "obs/cli.h"
#include "obs/trace.h"
#include "repair/repair_engine.h"
#include "spp/gadgets.h"
#include "util/error.h"

namespace {

void print_usage() {
  std::printf(
      "usage: fsr_repair [options]\n"
      "  --gadget NAME    repair a named gadget (repeatable); NAME is one\n"
      "                   of good, bad, disagree, ibgp-figure3,\n"
      "                   ibgp-figure3-fixed, good-chain-N, bad-chain-N\n"
      "  --random N       also repair N random fuzz instances\n"
      "  --seed S         seed for fuzz instances and SPVP trials (default 1)\n"
      "  --threads N      service worker threads (default 1); output is\n"
      "                   byte-identical for any value\n"
      "  --max-edits K    edit-size cap for candidates (default 2)\n"
      "  --beam W         frontier cap per search depth, pruned by\n"
      "                   unsat-core frequency (default 64; 0 = exhaustive\n"
      "                   breadth-first search)\n"
      "  --max-checks N   solver re-check budget per instance (default 512)\n"
      "  --no-relax       disable constraint-level relax edits\n"
      "  --ground-truth M ground-truth oracle: sat-search (default) |\n"
      "                   enumerate\n"
      "  --from-scratch   disable incremental solving (ablation)\n"
      "  --scratch-oracle re-encode every candidate's oracle query from\n"
      "                   scratch instead of the shared session (ablation)\n"
      "%s"
      "  --json           machine-readable JSON report array (the default)\n"
      "  --table          human-readable tables, timings included\n"
      "  --format F       compat alias: json | text\n"
      "  --list-gadgets   print known gadget names and exit\n"
      "  --help           this message\n",
      fsr::obs::diagnostics_usage());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fsr::repair;

  fsr::api::ServiceOptions service_options;
  RepairOptions& options = service_options.repair;
  std::vector<std::string> gadgets;
  int random_count = 0;
  std::uint64_t seed = 1;
  std::string format = "json";
  fsr::obs::DiagnosticsCliOptions diagnostics;

  const auto need_value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "fsr_repair: %s requires a value\n", flag);
      std::exit(2);
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (fsr::obs::consume_diagnostics_flag(argc, argv, i, "fsr_repair",
                                           diagnostics)) {
      continue;
    }
    if (std::strcmp(arg, "--gadget") == 0) {
      gadgets.emplace_back(need_value(i, "--gadget"));
    } else if (std::strcmp(arg, "--random") == 0) {
      random_count = std::atoi(need_value(i, "--random"));
    } else if (std::strcmp(arg, "--seed") == 0) {
      seed = std::strtoull(need_value(i, "--seed"), nullptr, 10);
    } else if (std::strcmp(arg, "--threads") == 0) {
      service_options.threads = std::atoi(need_value(i, "--threads"));
      if (service_options.threads < 1) {
        std::fprintf(stderr, "fsr_repair: --threads needs a value >= 1\n");
        return 2;
      }
    } else if (std::strcmp(arg, "--max-edits") == 0) {
      const int max_edits = std::atoi(need_value(i, "--max-edits"));
      if (max_edits < 1) {
        std::fprintf(stderr, "fsr_repair: --max-edits needs a value >= 1\n");
        return 2;
      }
      options.max_edits = static_cast<std::size_t>(max_edits);
    } else if (std::strcmp(arg, "--beam") == 0) {
      const int beam = std::atoi(need_value(i, "--beam"));
      if (beam < 0) {
        std::fprintf(stderr, "fsr_repair: --beam needs a value >= 0\n");
        return 2;
      }
      options.beam_width = static_cast<std::size_t>(beam);
    } else if (std::strcmp(arg, "--max-checks") == 0) {
      const int max_checks = std::atoi(need_value(i, "--max-checks"));
      if (max_checks < 1) {
        std::fprintf(stderr, "fsr_repair: --max-checks needs a value >= 1\n");
        return 2;
      }
      options.max_checks = static_cast<std::size_t>(max_checks);
    } else if (std::strcmp(arg, "--no-relax") == 0) {
      options.allow_relax = false;
    } else if (std::optional<fsr::groundtruth::Mode> mode;
               fsr::groundtruth::consume_mode_flag(argc, argv, i, mode)) {
      if (!mode.has_value()) {
        std::fprintf(stderr,
                     "fsr_repair: --ground-truth needs a mode "
                     "(enumerate | sat-search)\n");
        return 2;
      }
      options.ground_truth = *mode;
    } else if (std::strcmp(arg, "--from-scratch") == 0) {
      options.use_incremental = false;
    } else if (std::strcmp(arg, "--scratch-oracle") == 0) {
      options.use_incremental_oracle = false;
    } else if (std::strcmp(arg, "--json") == 0) {
      format = "json";
    } else if (std::strcmp(arg, "--table") == 0) {
      format = "text";
    } else if (std::strcmp(arg, "--format") == 0) {
      format = need_value(i, "--format");
    } else if (std::strcmp(arg, "--list-gadgets") == 0) {
      for (const std::string& name : fsr::spp::gadget_names()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    } else if (std::strcmp(arg, "--help") == 0) {
      print_usage();
      return 0;
    } else {
      std::fprintf(stderr, "fsr_repair: unknown option '%s'\n", arg);
      print_usage();
      return 2;
    }
  }

  if (format != "text" && format != "json") {
    std::fprintf(stderr, "fsr_repair: unknown format '%s'\n", format.c_str());
    return 2;
  }
  if (gadgets.empty() && random_count == 0) {
    gadgets = {"bad", "disagree", "ibgp-figure3"};
  }

  fsr::obs::set_thread_name("main");
  // Shared diagnostics stack (obs/cli.h): constructed before the service
  // so the recorder outlives every worker thread.
  fsr::obs::DiagnosticsSession diagnostics_session(diagnostics, "fsr_repair");
  try {
    std::vector<fsr::spp::SppInstance> instances;
    for (const std::string& name : gadgets) {
      instances.push_back(fsr::spp::gadget_by_name(name));
    }
    fsr::campaign::RandomSppSweep sweep;
    for (int i = 0; i < random_count; ++i) {
      instances.push_back(fsr::campaign::random_spp_instance(
          "fuzz-" + std::to_string(i), seed + static_cast<std::uint64_t>(i),
          sweep));
    }

    fsr::api::AnalysisService service(service_options);
    std::vector<std::future<fsr::api::Response>> futures;
    futures.reserve(instances.size());
    for (fsr::spp::SppInstance& instance : instances) {
      fsr::api::RepairRequest request;
      request.spp = std::make_shared<const fsr::spp::SppInstance>(
          std::move(instance));
      request.seed = seed;
      futures.push_back(service.submit(std::move(request)));
    }

    bool first = true;
    bool any_error = false;
    if (format == "json") std::printf("[\n");
    for (std::future<fsr::api::Response>& future : futures) {
      const fsr::api::Response response = future.get();
      if (!response.error.empty()) {
        std::fprintf(stderr, "fsr_repair: %s\n", response.error.c_str());
        any_error = true;
        continue;
      }
      if (format == "json") {
        if (!first) std::printf(",\n");
        std::fputs(to_json(*response.repair).c_str(), stdout);
      } else {
        if (!first) std::printf("\n");
        std::fputs(render_text(*response.repair).c_str(), stdout);
      }
      first = false;
    }
    if (format == "json") std::printf("]\n");
    // Every future resolved above, so all spans are recorded.
    if (!diagnostics_session.finalize()) return 1;
    if (any_error) return 1;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "fsr_repair: %s\n", error.what());
    return 1;
  }
  return 0;
}
