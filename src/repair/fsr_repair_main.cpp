// fsr_repair: counterexample-guided policy repair from the command line.
//
//   fsr_repair --gadget bad --gadget disagree
//   fsr_repair --gadget ibgp-figure3 --format json
//   fsr_repair --random 4 --seed 42 --max-edits 3
//
// For every requested instance the tool runs the repair engine
// (src/repair/repair_engine.h): minimal unsat core -> candidate edits ->
// incremental re-checks -> ground-truth validation. Text output includes
// timings; JSON output contains only deterministic fields.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "campaign/scenario_source.h"
#include "groundtruth/engine.h"
#include "repair/repair_engine.h"
#include "spp/gadgets.h"
#include "util/error.h"

namespace {

const std::vector<std::string>& gadget_names() {
  static const std::vector<std::string> names = {
      "good",          "bad",
      "disagree",      "ibgp-figure3",
      "ibgp-figure3-fixed", "bad-chain-4",
      "bad-chain-8"};
  return names;
}

fsr::spp::SppInstance gadget_by_name(const std::string& name) {
  using namespace fsr::spp;
  if (name == "good") return good_gadget();
  if (name == "bad") return bad_gadget();
  if (name == "disagree") return disagree_gadget();
  if (name == "ibgp-figure3") return ibgp_figure3_gadget();
  if (name == "ibgp-figure3-fixed") return ibgp_figure3_fixed();
  const std::string chain_prefix = "bad-chain-";
  if (name.rfind(chain_prefix, 0) == 0) {
    const int count = std::atoi(name.c_str() + chain_prefix.size());
    if (count >= 1) return bad_gadget_chain(count);
  }
  throw fsr::InvalidArgument("unknown gadget '" + name +
                             "' (try --list-gadgets)");
}

void print_usage() {
  std::printf(
      "usage: fsr_repair [options]\n"
      "  --gadget NAME    repair a named gadget (repeatable); NAME is one\n"
      "                   of good, bad, disagree, ibgp-figure3,\n"
      "                   ibgp-figure3-fixed, bad-chain-N\n"
      "  --random N       also repair N random fuzz instances\n"
      "  --seed S         seed for fuzz instances and SPVP trials (default 1)\n"
      "  --max-edits K    edit-size cap for candidates (default 2)\n"
      "  --beam W         frontier cap per search depth, pruned by\n"
      "                   unsat-core frequency (default 64; 0 = exhaustive\n"
      "                   breadth-first search)\n"
      "  --max-checks N   solver re-check budget per instance (default 512)\n"
      "  --no-relax       disable constraint-level relax edits\n"
      "  --ground-truth M ground-truth oracle: sat-search (default) |\n"
      "                   enumerate\n"
      "  --from-scratch   disable incremental solving (ablation)\n"
      "  --scratch-oracle re-encode every candidate's oracle query from\n"
      "                   scratch instead of the shared session (ablation)\n"
      "  --format F       text | json (default text)\n"
      "  --list-gadgets   print known gadget names and exit\n"
      "  --help           this message\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fsr::repair;

  RepairOptions options;
  std::vector<std::string> gadgets;
  int random_count = 0;
  std::uint64_t seed = 1;
  std::string format = "text";

  const auto need_value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "fsr_repair: %s requires a value\n", flag);
      std::exit(2);
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--gadget") == 0) {
      gadgets.emplace_back(need_value(i, "--gadget"));
    } else if (std::strcmp(arg, "--random") == 0) {
      random_count = std::atoi(need_value(i, "--random"));
    } else if (std::strcmp(arg, "--seed") == 0) {
      seed = std::strtoull(need_value(i, "--seed"), nullptr, 10);
    } else if (std::strcmp(arg, "--max-edits") == 0) {
      const int max_edits = std::atoi(need_value(i, "--max-edits"));
      if (max_edits < 1) {
        std::fprintf(stderr, "fsr_repair: --max-edits needs a value >= 1\n");
        return 2;
      }
      options.max_edits = static_cast<std::size_t>(max_edits);
    } else if (std::strcmp(arg, "--beam") == 0) {
      const int beam = std::atoi(need_value(i, "--beam"));
      if (beam < 0) {
        std::fprintf(stderr, "fsr_repair: --beam needs a value >= 0\n");
        return 2;
      }
      options.beam_width = static_cast<std::size_t>(beam);
    } else if (std::strcmp(arg, "--max-checks") == 0) {
      const int max_checks = std::atoi(need_value(i, "--max-checks"));
      if (max_checks < 1) {
        std::fprintf(stderr, "fsr_repair: --max-checks needs a value >= 1\n");
        return 2;
      }
      options.max_checks = static_cast<std::size_t>(max_checks);
    } else if (std::strcmp(arg, "--no-relax") == 0) {
      options.allow_relax = false;
    } else if (std::optional<fsr::groundtruth::Mode> mode;
               fsr::groundtruth::consume_mode_flag(argc, argv, i, mode)) {
      if (!mode.has_value()) {
        std::fprintf(stderr,
                     "fsr_repair: --ground-truth needs a mode "
                     "(enumerate | sat-search)\n");
        return 2;
      }
      options.ground_truth = *mode;
    } else if (std::strcmp(arg, "--from-scratch") == 0) {
      options.use_incremental = false;
    } else if (std::strcmp(arg, "--scratch-oracle") == 0) {
      options.use_incremental_oracle = false;
    } else if (std::strcmp(arg, "--format") == 0) {
      format = need_value(i, "--format");
    } else if (std::strcmp(arg, "--list-gadgets") == 0) {
      for (const std::string& name : gadget_names()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    } else if (std::strcmp(arg, "--help") == 0) {
      print_usage();
      return 0;
    } else {
      std::fprintf(stderr, "fsr_repair: unknown option '%s'\n", arg);
      print_usage();
      return 2;
    }
  }

  if (format != "text" && format != "json") {
    std::fprintf(stderr, "fsr_repair: unknown format '%s'\n", format.c_str());
    return 2;
  }
  if (gadgets.empty() && random_count == 0) {
    gadgets = {"bad", "disagree", "ibgp-figure3"};
  }

  try {
    std::vector<fsr::spp::SppInstance> instances;
    for (const std::string& name : gadgets) {
      instances.push_back(gadget_by_name(name));
    }
    fsr::campaign::RandomSppSweep sweep;
    for (int i = 0; i < random_count; ++i) {
      instances.push_back(fsr::campaign::random_spp_instance(
          "fuzz-" + std::to_string(i), seed + static_cast<std::uint64_t>(i),
          sweep));
    }

    const RepairEngine engine(options);
    bool first = true;
    if (format == "json") std::printf("[\n");
    for (const fsr::spp::SppInstance& instance : instances) {
      const RepairReport report = engine.repair(instance, seed);
      if (format == "json") {
        if (!first) std::printf(",\n");
        std::fputs(to_json(report).c_str(), stdout);
      } else {
        if (!first) std::printf("\n");
        std::fputs(render_text(report).c_str(), stdout);
      }
      first = false;
    }
    if (format == "json") std::printf("]\n");
  } catch (const std::exception& error) {
    std::fprintf(stderr, "fsr_repair: %s\n", error.what());
    return 1;
  }
  return 0;
}
