#include "repair/repair_engine.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <optional>
#include <set>

#include "fsr/incremental_session.h"
#include "groundtruth/stable_sat.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "spp/translate.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/strings.h"

namespace fsr::repair {
namespace {

std::uint64_t trial_seed(std::uint64_t seed, const std::string& candidate_key,
                         int trial) {
  std::uint64_t x = seed ^ util::fnv1a64(candidate_key) ^
                    (0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(trial + 1));
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  return x;
}

int kind_weight(EditKind kind) {
  switch (kind) {
    case EditKind::demote_path:
      return 1;
    case EditKind::drop_path:
      return 2;
    case EditKind::relax_preference:
      return 3;
  }
  return 3;
}

int ground_truth_rank(GroundTruth truth) {
  switch (truth) {
    case GroundTruth::verified:
      return 0;
    case GroundTruth::not_applicable:
      return 1;
    case GroundTruth::failed:
      return 2;
  }
  return 2;
}

std::string edits_key(const std::vector<PolicyEdit>& edits) {
  std::string key;
  for (const PolicyEdit& edit : edits) {
    if (!key.empty()) key += " + ";
    key += edit.describe();
  }
  return key;
}

struct SigInfo {
  std::string node;
  spp::Path path;
};

struct SearchState {
  std::vector<PolicyEdit> edits;  // sorted by describe()
  std::string key;
};

struct Evaluation {
  bool applicable = false;
  bool holds = false;
  std::vector<std::size_t> core;
  /// Follow-up edits derived from core members that were per-check extras
  /// (constraints the candidate itself introduced, e.g. a merged ranking
  /// pair after a demote) — the search must branch on these too.
  std::vector<PolicyEdit> extra_core_edits;
  std::optional<spp::SppInstance> edited;  // set when drop/demote edits ran
  /// The candidate's edited rankings as per-node deltas against the base —
  /// the incremental oracle's query shape (set alongside `edited`).
  std::vector<groundtruth::RankingDelta> deltas;
  bool pure_spp = false;                   // no relax edits in the set
};

/// One repair search: owns all per-run bookkeeping plus the shared search
/// session — built lazily, since a borrowed gate (RepairSessions) answers
/// the initial check and an already-safe run then needs no session at all.
///
/// Candidate evaluation never re-translates the instance: permitted paths
/// are interned to integers once, a candidate's constraint set is derived
/// straight from its edited rankings (mirroring spp::algebra_from_spp:
/// adjacent ranking pairs + permitted-suffix extensions), and the diff
/// against the base encoding runs over integer pairs. That keeps the
/// per-candidate cost proportional to the instance, with the solver work
/// delegated to the shared incremental session.
class Search {
 public:
  Search(const spp::SppInstance& instance, const RepairOptions& options,
         std::uint64_t seed, const RepairSessions& sessions)
      : instance_(instance),
        options_(options),
        seed_(seed),
        spec_(spp::algebra_from_spp(instance)->symbolic()),
        gate_(sessions.strict_gate) {
    // Snapshot the borrowed gate's lifetime counter NOW so every gate
    // query this run issues — however many future search shapes need — is
    // counted as a delta, exactly like the oracle stats below. A
    // hand-maintained "+1 per call site" drifts the moment a second call
    // site appears; a baseline cannot.
    if (gate_ != nullptr) gate_checks_base_ = gate_->check_count();
    // A borrowed oracle only applies to the configuration that would build
    // one (the persistent sat-search session); any other oracle choice
    // ignores the loan so the ablation paths stay exactly what they claim.
    if (options.ground_truth == groundtruth::Mode::sat_search &&
        options.use_incremental_oracle && sessions.oracle != nullptr) {
      oracle_session_ = sessions.oracle;
      oracle_stats_base_ = sessions.oracle->stats();
    }
    for (const std::string& node : instance.nodes()) {
      for (const spp::Path& path : instance.permitted(node)) {
        sig_info_.emplace(spp::spp_signature(path), SigInfo{node, path});
        const int pid = static_cast<int>(paths_.size());
        path_ids_.emplace(path, pid);
        paths_.push_back(path);
        path_names_.push_back(spp::spp_signature(path));
        base_rankings_[node].push_back(pid);
      }
    }
    suffix_pid_.assign(paths_.size(), -1);
    for (std::size_t pid = 0; pid < paths_.size(); ++pid) {
      if (paths_[pid].size() <= 2) continue;
      const spp::Path suffix(paths_[pid].begin() + 1, paths_[pid].end());
      const auto it = path_ids_.find(suffix);
      if (it != path_ids_.end()) suffix_pid_[pid] = it->second;
    }
    std::map<std::string, int> name_to_pid;
    for (std::size_t pid = 0; pid < paths_.size(); ++pid) {
      name_to_pid.emplace(path_names_[pid], static_cast<int>(pid));
    }
    const IncrementalSafetySession& info = info_session();
    for (std::size_t i = 0; i < info.constraint_count(); ++i) {
      const encoding::RelationShape& shape = info.shape(i);
      const auto lhs = name_to_pid.find(shape.lhs);
      const auto rhs = name_to_pid.find(shape.rhs);
      if (lhs == name_to_pid.end() || rhs == name_to_pid.end()) continue;
      base_pair_to_index_.emplace(
          std::make_pair(lhs->second, rhs->second), i);
    }
  }

  RepairReport run() {
    RepairReport report;
    report.instance = instance_.name();
    report.ground_truth_mode = options_.ground_truth;

    IncrementalSafetySession::Result initial;
    if (gate_ != nullptr) {
      // The borrowed gate only ever answers this retraction-free query, so
      // its recorded engine verdict/core is byte-identical to what a fresh
      // session's first check would report — and it still counts as one
      // solver check, exactly as the self-built initial check did.
      initial = gate_->check({});
    } else {
      initial = search_session().check({});
    }
    if (initial.holds) {
      report.already_safe = true;
      finish(report);
      return report;
    }
    note_core(initial.core);
    for (const std::size_t index : initial.core) {
      report.initial_core.push_back(info_session().provenance(index));
    }

    std::set<std::string> visited;
    std::vector<SearchState> frontier =
        expand({}, edit_pool(initial.core, {}), visited);
    for (std::size_t depth = 1;
         depth <= options_.max_edits && !frontier.empty(); ++depth) {
      obs::Span depth_span("repair.depth");
      depth_span.arg("depth", depth);
      depth_span.arg("frontier", frontier.size());
      // Beam timelines: frontier size per depth plus the cumulative prune
      // count, so Perfetto shows the search narrowing under repair.run.
      obs::trace_counter("repair.beam_frontier",
                         static_cast<std::uint64_t>(frontier.size()));
      const std::size_t candidates_floor = report.candidates_checked;
      const std::size_t pruned_floor = report.beam_pruned;
      premark(frontier);
      std::vector<SearchState> next;
      for (const SearchState& state : frontier) {
        if (solver_checks() >= options_.max_checks) {
          report.budget_exhausted = true;
          break;
        }
        Evaluation eval = evaluate(state);
        if (!eval.applicable) continue;
        ++report.candidates_checked;
        if (eval.holds) {
          report.repairs.push_back(make_candidate(state, eval));
        } else if (depth < options_.max_edits) {
          for (SearchState& successor :
               expand(state.edits,
                      edit_pool(eval.core, eval.extra_core_edits), visited)) {
            next.push_back(std::move(successor));
          }
        }
      }
      depth_span.arg("validated", report.candidates_checked - candidates_floor);
      depth_span.arg("generated", next.size());
      depth_span.arg("repairs", report.repairs.size());
      // All states of the minimal successful depth were evaluated before
      // stopping, so `repairs` holds every minimal fix the budget allowed.
      if (!report.repairs.empty() || report.budget_exhausted) break;
      if (options_.beam_width > 0 && next.size() > options_.beam_width) {
        next = prune_frontier(std::move(next), report);
      }
      depth_span.arg("pruned", report.beam_pruned - pruned_floor);
      obs::trace_counter("repair.beam_pruned",
                         static_cast<std::uint64_t>(report.beam_pruned));
      frontier = std::move(next);
    }

    rank(report.repairs);
    finish(report);
    return report;
  }

 private:
  static groundtruth::Options oracle_options(const RepairOptions& options) {
    groundtruth::Options oracle_options;
    oracle_options.max_states = options.ground_truth_max_states;
    oracle_options.max_conflicts = options.ground_truth_max_conflicts;
    oracle_options.max_solutions = options.ground_truth_max_solutions;
    return oracle_options;
  }

  static IncrementalSafetySession::Options session_options(
      const RepairOptions& options) {
    IncrementalSafetySession::Options session_options;
    session_options.incremental = options.use_incremental;
    // The search branches on holds/core only; witness models are dead
    // weight at hundreds of re-checks per repair.
    session_options.extract_models = false;
    return session_options;
  }

  /// The mutable search session, built on first use — an already-safe run
  /// answered by a borrowed gate never constructs one.
  IncrementalSafetySession& search_session() {
    if (!own_session_.has_value()) {
      own_session_.emplace(spec_, MonotonicityMode::strict,
                           session_options(options_));
    }
    return *own_session_;
  }

  /// Read-only encoding info (shapes, provenance, constraint count): the
  /// borrowed gate encodes the same spec deterministically, so preferring
  /// it avoids building the search session just to describe constraints.
  const IncrementalSafetySession& info_session() {
    return gate_ != nullptr ? *gate_ : search_session();
  }

  /// Total solver checks so far, gate queries included — the number the
  /// max_checks budget and the report count, exactly as when every check
  /// ran on one self-built session.
  std::uint64_t solver_checks() const noexcept {
    const std::uint64_t gate_checks =
        gate_ != nullptr ? gate_->check_count() - gate_checks_base_ : 0;
    return gate_checks +
           (own_session_.has_value() ? own_session_->check_count() : 0);
  }

  void finish(RepairReport& report) {
    report.solver_checks = static_cast<std::size_t>(solver_checks());
    report.cores_seen = cores_seen_.size();
    report.engine_rebuilds =
        own_session_.has_value()
            ? static_cast<std::size_t>(own_session_->engine_rebuilds())
            : 0;
    if (oracle_session_ != nullptr) {
      const groundtruth::StableSessionStats& stats = oracle_session_->stats();
      report.oracle_queries = stats.queries - oracle_stats_base_.queries;
      report.oracle_groups_encoded =
          stats.groups_encoded - oracle_stats_base_.groups_encoded;
      report.oracle_cache_hits =
          stats.group_cache_hits - oracle_stats_base_.group_cache_hits;
    }
    // wall_ms is set by RepairEngine::repair around the WHOLE Search
    // lifetime: the constructor does real work (spec translation, path
    // interning, session construction when nothing was lent), so timing
    // run() alone understated self-built runs relative to borrowed ones.
  }

  /// Beam pruning: keep the beam_width states whose edits were most often
  /// demanded by counterexample cores (summed per-edit core frequency),
  /// best-first; ties and evaluation order stay deterministic via the
  /// state key.
  std::vector<SearchState> prune_frontier(std::vector<SearchState> states,
                                          RepairReport& report) const {
    std::vector<std::size_t> score(states.size(), 0);
    for (std::size_t i = 0; i < states.size(); ++i) {
      for (const PolicyEdit& edit : states[i].edits) {
        const auto it = edit_frequency_.find(edit.describe());
        if (it != edit_frequency_.end()) score[i] += it->second;
      }
    }
    std::vector<std::size_t> order(states.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                if (score[a] != score[b]) return score[a] > score[b];
                return states[a].key < states[b].key;
              });
    order.resize(options_.beam_width);
    report.beam_pruned += states.size() - order.size();
    std::vector<SearchState> kept;
    kept.reserve(order.size());
    for (const std::size_t index : order) {
      kept.push_back(std::move(states[index]));
    }
    return kept;
  }

  void note_core(const std::vector<std::size_t>& core) {
    std::string key;
    for (const std::size_t index : core) key += std::to_string(index) + ",";
    cores_seen_.insert(std::move(key));
  }

  const SigInfo& info_of(const std::string& signature) const {
    const auto it = sig_info_.find(signature);
    if (it == sig_info_.end()) {
      throw InvalidArgument("repair: spec signature '" + signature +
                            "' has no SPP path");
    }
    return it->second;
  }

  /// Candidate edits justified by core element `index`.
  std::vector<PolicyEdit> edits_for(std::size_t index) const {
    std::vector<PolicyEdit> out;
    const std::size_t preference_count = spec_.preferences.size();
    if (index < preference_count) {
      const auto& pref = spec_.preferences[index];
      const SigInfo& preferred = info_of(pref.lhs);
      const SigInfo& dispreferred = info_of(pref.rhs);
      out.push_back(PolicyEdit{EditKind::demote_path, preferred.node,
                               preferred.path, {}});
      out.push_back(
          PolicyEdit{EditKind::drop_path, preferred.node, preferred.path, {}});
      out.push_back(PolicyEdit{EditKind::drop_path, dispreferred.node,
                               dispreferred.path, {}});
      if (options_.allow_relax &&
          pref.rel == algebra::PrefRel::strictly_better) {
        out.push_back(PolicyEdit{EditKind::relax_preference, {},
                                 preferred.path, dispreferred.path});
      }
    } else if (index < preference_count + spec_.extensions.size()) {
      const auto& ext = spec_.extensions[index - preference_count];
      const SigInfo& extended = info_of(ext.to_sig);
      const SigInfo& sub = info_of(ext.from_sig);
      out.push_back(
          PolicyEdit{EditKind::drop_path, extended.node, extended.path, {}});
      if (options_.allow_relax) {
        out.push_back(PolicyEdit{EditKind::relax_preference, {}, sub.path,
                                 extended.path});
      }
    }
    return out;
  }

  /// Candidate edits justified by a counterexample: the base-core members'
  /// edits plus the edits already derived from in-core extras. Every
  /// occurrence feeds the core-frequency tally the beam pruning ranks by.
  std::vector<PolicyEdit> edit_pool(
      const std::vector<std::size_t>& core,
      const std::vector<PolicyEdit>& extra_edits) {
    std::vector<PolicyEdit> pool;
    for (const std::size_t index : core) {
      for (PolicyEdit& edit : edits_for(index)) pool.push_back(std::move(edit));
    }
    pool.insert(pool.end(), extra_edits.begin(), extra_edits.end());
    for (const PolicyEdit& edit : pool) ++edit_frequency_[edit.describe()];
    return pool;
  }

  /// Candidate edits for a constraint over two interned paths — the shape
  /// of a per-check extra in the core. Same-node pairs behave like ranking
  /// preferences; cross-node pairs like extension entries.
  std::vector<PolicyEdit> edits_for_pair(int lhs, int rhs,
                                         bool strict) const {
    const spp::Path& preferred = paths_[static_cast<std::size_t>(lhs)];
    const spp::Path& dispreferred = paths_[static_cast<std::size_t>(rhs)];
    std::vector<PolicyEdit> out;
    if (preferred.front() == dispreferred.front()) {
      out.push_back(PolicyEdit{EditKind::demote_path, preferred.front(),
                               preferred, {}});
      out.push_back(
          PolicyEdit{EditKind::drop_path, preferred.front(), preferred, {}});
    }
    out.push_back(PolicyEdit{EditKind::drop_path, dispreferred.front(),
                             dispreferred, {}});
    if (strict && options_.allow_relax) {
      out.push_back(
          PolicyEdit{EditKind::relax_preference, {}, preferred, dispreferred});
    }
    return out;
  }

  std::vector<SearchState> expand(const std::vector<PolicyEdit>& prefix,
                                  const std::vector<PolicyEdit>& pool,
                                  std::set<std::string>& visited) const {
    // Descriptions are computed once per edit; all dedup/ordering below
    // works on the cached strings (describe() allocates).
    std::vector<std::string> prefix_descriptions;
    prefix_descriptions.reserve(prefix.size());
    for (const PolicyEdit& edit : prefix) {
      prefix_descriptions.push_back(edit.describe());
    }
    std::vector<SearchState> out;
    for (const PolicyEdit& edit : pool) {
      std::string description = edit.describe();
      if (std::find(prefix_descriptions.begin(), prefix_descriptions.end(),
                    description) != prefix_descriptions.end()) {
        continue;
      }
      std::vector<std::pair<std::string, const PolicyEdit*>> decorated;
      decorated.reserve(prefix.size() + 1);
      for (std::size_t i = 0; i < prefix.size(); ++i) {
        decorated.emplace_back(prefix_descriptions[i], &prefix[i]);
      }
      decorated.emplace_back(std::move(description), &edit);
      std::sort(decorated.begin(), decorated.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      SearchState state;
      state.edits.reserve(decorated.size());
      for (auto& [text, source] : decorated) {
        state.edits.push_back(*source);
        if (!state.key.empty()) state.key += " + ";
        state.key += text;
      }
      if (visited.insert(state.key).second) out.push_back(std::move(state));
    }
    std::sort(out.begin(), out.end(),
              [](const SearchState& a, const SearchState& b) {
                return a.key < b.key;
              });
    return out;
  }

  /// Moves every constraint some frontier edit could exclude into the
  /// session's variable set in one batch, so the shared engine base
  /// rebuilds at most once per search depth. An edit can only remove
  /// constraints that mention a signature it touches.
  void premark(const std::vector<SearchState>& frontier) {
    std::set<std::string> touched;
    for (const SearchState& state : frontier) {
      for (const PolicyEdit& edit : state.edits) {
        touched.insert(spp::spp_signature(edit.path));
        if (!edit.other.empty()) touched.insert(spp::spp_signature(edit.other));
      }
    }
    IncrementalSafetySession& session = search_session();
    std::vector<std::size_t> to_mark;
    for (std::size_t i = 0; i < session.constraint_count(); ++i) {
      if (session.is_variable(i)) continue;
      const encoding::RelationShape& shape = session.shape(i);
      if (touched.contains(shape.lhs) || touched.contains(shape.rhs)) {
        to_mark.push_back(i);
      }
    }
    session.make_variable(to_mark);
  }

  int path_id(const spp::Path& path) const {
    const auto it = path_ids_.find(path);
    return it == path_ids_.end() ? -1 : it->second;
  }

  Evaluation evaluate(const SearchState& state) {
    Evaluation eval;
    std::vector<PolicyEdit> relax_edits;
    std::size_t spp_edit_count = 0;

    // Apply drop/demote edits to an integer-id copy of the rankings.
    std::map<std::string, std::vector<int>> rankings = base_rankings_;
    std::size_t remaining = paths_.size();
    for (const PolicyEdit& edit : state.edits) {
      if (edit.kind == EditKind::relax_preference) {
        relax_edits.push_back(edit);
        continue;
      }
      ++spp_edit_count;
      const int pid = path_id(edit.path);
      const auto node_it = rankings.find(edit.node);
      if (pid < 0 || node_it == rankings.end()) return eval;
      std::vector<int>& ranked = node_it->second;
      const auto it = std::find(ranked.begin(), ranked.end(), pid);
      if (it == ranked.end()) return eval;  // already dropped by a sibling
      if (edit.kind == EditKind::drop_path) {
        ranked.erase(it);
        --remaining;
      } else {  // demote_path
        if (it + 1 == ranked.end()) return eval;  // already last
        std::rotate(it, it + 1, ranked.end());
      }
    }
    if (remaining == 0) return eval;  // the edits emptied the instance
    eval.pure_spp = relax_edits.empty();

    // The candidate's constraint set, derived exactly as the Section III-B
    // translation would: adjacent ranking pairs + permitted-suffix
    // extensions, as (lhs path, rhs path) id pairs.
    std::vector<std::pair<int, int>> pairs;
    for (const auto& [node, ranked] : rankings) {
      (void)node;
      for (std::size_t i = 0; i + 1 < ranked.size(); ++i) {
        pairs.emplace_back(ranked[i], ranked[i + 1]);
      }
      for (const int pid : ranked) {
        const int suffix = suffix_pid_[static_cast<std::size_t>(pid)];
        if (suffix < 0) continue;
        const spp::Path& suffix_path = paths_[static_cast<std::size_t>(suffix)];
        const auto& suffix_ranked = rankings.at(suffix_path.front());
        if (std::find(suffix_ranked.begin(), suffix_ranked.end(), suffix) !=
            suffix_ranked.end()) {
          pairs.emplace_back(suffix, pid);
        }
      }
    }
    std::vector<IncrementalSafetySession::Extra> extras;
    // The (path pair, strictness) behind each extra, so core members that
    // are extras can seed further edits.
    std::vector<std::pair<int, int>> extra_pairs;
    std::vector<char> extra_strict;
    for (const PolicyEdit& edit : relax_edits) {
      const std::pair<int, int> target{path_id(edit.path),
                                       path_id(edit.other)};
      const auto it = std::find(pairs.begin(), pairs.end(), target);
      if (it == pairs.end()) return eval;  // constraint already gone
      pairs.erase(it);
      extras.push_back(IncrementalSafetySession::Extra{
          algebra::PrefRel::better_or_equal,
          path_names_[static_cast<std::size_t>(target.first)],
          path_names_[static_cast<std::size_t>(target.second)],
          "relaxed: " + edit.describe()});
      extra_pairs.push_back(target);
      extra_strict.push_back(0);
    }

    // Diff against the base encoding: matched base constraints are
    // retained (passed as assumptions when variable); unmatched candidate
    // pairs become per-check extras; unmatched base constraints are
    // excluded (premark made them variable).
    IncrementalSafetySession& session = search_session();
    consumed_.assign(session.constraint_count(), 0);
    std::vector<std::size_t> keep;
    for (const std::pair<int, int>& pair : pairs) {
      const auto it = base_pair_to_index_.find(pair);
      if (it != base_pair_to_index_.end() && consumed_[it->second] == 0) {
        consumed_[it->second] = 1;
        if (session.is_variable(it->second)) keep.push_back(it->second);
      } else {
        extras.push_back(IncrementalSafetySession::Extra{
            algebra::PrefRel::strictly_better,
            path_names_[static_cast<std::size_t>(pair.first)],
            path_names_[static_cast<std::size_t>(pair.second)],
            path_names_[static_cast<std::size_t>(pair.first)] + " < " +
                path_names_[static_cast<std::size_t>(pair.second)]});
        extra_pairs.push_back(pair);
        extra_strict.push_back(1);
      }
    }
    // premark covers every exclusion; keep the fallback for safety.
    std::vector<std::size_t> must_mark;
    for (std::size_t i = 0; i < consumed_.size(); ++i) {
      if (consumed_[i] == 0 && !session.is_variable(i)) must_mark.push_back(i);
    }
    if (!must_mark.empty()) session.make_variable(must_mark);

    std::sort(keep.begin(), keep.end());
    const auto result = session.check(keep, extras);
    eval.applicable = true;
    eval.holds = result.holds;
    eval.core = result.core;
    if (result.holds) {
      if (eval.pure_spp && spp_edit_count > 0) {
        eval.edited = apply_edits(instance_, state.edits);
        // The candidate's oracle query: one RankingDelta per node whose
        // ranking the edits changed (everything else rides on the base).
        for (const auto& [node, ranked] : rankings) {
          if (ranked == base_rankings_.at(node)) continue;
          groundtruth::RankingDelta delta;
          delta.node = node;
          for (const int pid : ranked) {
            delta.ranked.push_back(paths_[static_cast<std::size_t>(pid)]);
          }
          eval.deltas.push_back(std::move(delta));
        }
      }
    } else {
      note_core(result.core);
      for (const std::size_t extra_index : result.extra_core) {
        const std::pair<int, int>& pair = extra_pairs[extra_index];
        for (PolicyEdit& edit :
             edits_for_pair(pair.first, pair.second,
                            extra_strict[extra_index] != 0)) {
          eval.extra_core_edits.push_back(std::move(edit));
        }
      }
    }
    return eval;
  }

  RepairCandidate make_candidate(const SearchState& state,
                                 const Evaluation& eval) {
    RepairCandidate candidate;
    candidate.edits = state.edits;
    candidate.solver_safe = true;
    if (!(eval.pure_spp && eval.edited.has_value())) {
      candidate.ground_truth = GroundTruth::not_applicable;
      return candidate;
    }
    bool converged = true;
    for (int trial = 0; trial < options_.spvp_trials; ++trial) {
      util::Rng rng(trial_seed(seed_, state.key, trial));
      converged = converged &&
                  spp::simulate_spvp(*eval.edited, rng,
                                     options_.spvp_max_activations)
                      .converged;
    }
    candidate.spvp_converged = converged;

    bool decided = false;
    bool has_stable = false;
    std::size_t count = 0;
    if (options_.ground_truth == groundtruth::Mode::sat_search &&
        options_.use_incremental_oracle) {
      // The run's ONE persistent oracle session: borrowed from the caller
      // when lent (warm across requests), else lazily built (already-safe
      // instances never pay for it), then shared by every candidate — each
      // validation costs the candidate's CNF delta, not a re-encode.
      if (oracle_session_ == nullptr) {
        own_oracle_.emplace(instance_);
        oracle_session_ = &*own_oracle_;
      }
      const groundtruth::StableSearchResult truth = oracle_session_->analyze(
          eval.deltas, options_.ground_truth_max_solutions,
          options_.ground_truth_max_conflicts);
      decided = truth.decided;
      has_stable = truth.has_stable;
      count = truth.count;
      candidate.oracle_budget = truth.budget_stop;
    } else {
      if (oracle_ == nullptr) {
        oracle_ = groundtruth::make_engine(options_.ground_truth,
                                           oracle_options(options_));
      }
      const groundtruth::Result truth = oracle_->analyze(*eval.edited);
      decided = truth.decided;
      has_stable = truth.has_stable;
      count = truth.count;
      candidate.oracle_budget = truth.budget_stop;
    }
    if (decided) {
      candidate.stable_assignments = count;
      candidate.ground_truth = (has_stable && converged)
                                   ? GroundTruth::verified
                                   : GroundTruth::failed;
    } else {
      // The oracle's budget ran out (see candidate.oracle_budget: states
      // for enumerate, conflicts for sat-search): the solver verdict
      // stands unverified; SPVP convergence is still recorded.
      candidate.ground_truth = converged ? GroundTruth::not_applicable
                                         : GroundTruth::failed;
    }
    return candidate;
  }

  static void rank(std::vector<RepairCandidate>& repairs) {
    std::sort(repairs.begin(), repairs.end(),
              [](const RepairCandidate& a, const RepairCandidate& b) {
                if (a.edits.size() != b.edits.size()) {
                  return a.edits.size() < b.edits.size();
                }
                const int truth_a = ground_truth_rank(a.ground_truth);
                const int truth_b = ground_truth_rank(b.ground_truth);
                if (truth_a != truth_b) return truth_a < truth_b;
                int weight_a = 0;
                int weight_b = 0;
                for (const PolicyEdit& e : a.edits) {
                  weight_a += kind_weight(e.kind);
                }
                for (const PolicyEdit& e : b.edits) {
                  weight_b += kind_weight(e.kind);
                }
                if (weight_a != weight_b) return weight_a < weight_b;
                return edits_key(a.edits) < edits_key(b.edits);
              });
  }

  const spp::SppInstance& instance_;
  const RepairOptions& options_;
  std::uint64_t seed_;
  algebra::SymbolicSpec spec_;
  // Borrowed read-only gate session (see RepairSessions); answers the
  // initial check so the mutable search session below can stay unbuilt
  // until a candidate actually needs a re-check.
  IncrementalSafetySession* gate_ = nullptr;
  std::optional<IncrementalSafetySession> own_session_;
  std::uint64_t gate_checks_base_ = 0;  // gate check_count() at borrow time
  // Exactly one oracle path materialises at the first solver-safe
  // candidate: the persistent incremental session (default sat-search;
  // borrowed from RepairSessions when lent, else built lazily) or the
  // per-candidate engine (enumerate / the from-scratch ablation).
  groundtruth::StableSatSession* oracle_session_ = nullptr;
  std::optional<groundtruth::StableSatSession> own_oracle_;
  // Stats snapshot at borrow time, so report effort fields are per-run
  // deltas even on a session warmed by earlier requests.
  groundtruth::StableSessionStats oracle_stats_base_{};
  std::unique_ptr<groundtruth::GroundTruthEngine> oracle_;
  std::map<std::string, std::size_t> edit_frequency_;  // beam scoring
  std::map<std::string, SigInfo> sig_info_;
  // Interned permitted paths and the base structures evaluate() diffs
  // against (see class comment).
  std::vector<spp::Path> paths_;
  std::map<spp::Path, int> path_ids_;
  std::vector<std::string> path_names_;  // spp_signature per path id
  std::map<std::string, std::vector<int>> base_rankings_;
  std::vector<int> suffix_pid_;  // permitted-suffix path id, or -1
  std::map<std::pair<int, int>, std::size_t> base_pair_to_index_;
  std::vector<char> consumed_;  // scratch buffer for the per-candidate diff
  std::set<std::string> cores_seen_;
};

std::string quoted(const std::string& text) { return util::json_quoted(text); }

}  // namespace

const char* to_string(GroundTruth truth) noexcept {
  switch (truth) {
    case GroundTruth::verified:
      return "verified";
    case GroundTruth::failed:
      return "failed";
    case GroundTruth::not_applicable:
      return "not_applicable";
  }
  return "not_applicable";
}

std::string RepairCandidate::describe() const { return edits_key(edits); }

RepairReport RepairEngine::repair(const spp::SppInstance& instance,
                                  std::uint64_t seed,
                                  const RepairSessions& sessions) const {
  obs::Span span("repair.run");
  span.arg("instance", instance.name());
  const auto start = std::chrono::steady_clock::now();
  RepairReport report;
  {
    Search search(instance, options_, seed, sessions);
    report = search.run();
  }
  // Time the whole Search lifetime so borrowed-session runs (construction
  // nearly free) and self-built runs (construction pays translation +
  // session setup) report comparable per-run wall clocks.
  report.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();

  struct RepairMetrics {
    obs::Counter& runs = obs::registry().counter("repair.runs");
    obs::Counter& candidates =
        obs::registry().counter("repair.candidates_checked");
    obs::Counter& checks = obs::registry().counter("repair.solver_checks");
    obs::Counter& cores = obs::registry().counter("repair.cores_seen");
    obs::Counter& pruned = obs::registry().counter("repair.beam_pruned");
    obs::Counter& oracle_queries =
        obs::registry().counter("repair.oracle_queries");
    obs::Counter& repaired = obs::registry().counter("repair.repaired");
  };
  static RepairMetrics metrics;
  metrics.runs.add(1);
  metrics.candidates.add(report.candidates_checked);
  metrics.checks.add(report.solver_checks);
  metrics.cores.add(report.cores_seen);
  metrics.pruned.add(report.beam_pruned);
  metrics.oracle_queries.add(report.oracle_queries);
  if (report.repaired()) metrics.repaired.add(1);

  span.arg("solver_checks", report.solver_checks);
  span.arg("candidates_checked", report.candidates_checked);
  span.arg("repaired", report.repaired());
  return report;
}

RepairSummary summarize(const RepairReport& report) {
  RepairSummary summary;
  summary.attempted = true;
  summary.ground_truth_mode = groundtruth::to_string(report.ground_truth_mode);
  summary.candidates_checked = report.candidates_checked;
  summary.solver_checks = report.solver_checks;
  if (const RepairCandidate* best = report.best()) {
    summary.solver_repaired = best->solver_safe;
    summary.verified = best->ground_truth == GroundTruth::verified;
    summary.oracle_budget = groundtruth::to_string(best->oracle_budget);
    summary.edit_count = best->edits.size();
    for (const PolicyEdit& edit : best->edits) {
      summary.edits.push_back(edit.describe());
    }
  }
  return summary;
}

std::string to_json(const RepairReport& report) {
  std::string out = "{\n";
  out += "  \"instance\": " + quoted(report.instance) + ",\n";
  out += "  \"ground_truth_mode\": " +
         quoted(groundtruth::to_string(report.ground_truth_mode)) + ",\n";
  out += "  \"already_safe\": ";
  out += report.already_safe ? "true" : "false";
  out += ",\n  \"initial_core\": [";
  for (std::size_t i = 0; i < report.initial_core.size(); ++i) {
    if (i > 0) out += ", ";
    out += quoted(report.initial_core[i].description);
  }
  out += "],\n  \"repaired\": ";
  out += report.repaired() ? "true" : "false";
  out += ",\n  \"candidates_checked\": " +
         std::to_string(report.candidates_checked) +
         ", \"solver_checks\": " + std::to_string(report.solver_checks) +
         ", \"cores_seen\": " + std::to_string(report.cores_seen) +
         ", \"beam_pruned\": " + std::to_string(report.beam_pruned) +
         ", \"budget_exhausted\": ";
  out += report.budget_exhausted ? "true" : "false";
  out += ",\n  \"repairs\": [\n";
  for (std::size_t i = 0; i < report.repairs.size(); ++i) {
    const RepairCandidate& candidate = report.repairs[i];
    out += "    {\"edits\": [";
    for (std::size_t j = 0; j < candidate.edits.size(); ++j) {
      if (j > 0) out += ", ";
      out += quoted(candidate.edits[j].describe());
    }
    out += "], \"ground_truth\": " +
           quoted(to_string(candidate.ground_truth)) +
           ", \"stable_assignments\": " +
           std::to_string(candidate.stable_assignments) +
           ", \"oracle_budget\": " +
           quoted(groundtruth::to_string(candidate.oracle_budget)) +
           ", \"spvp_converged\": ";
    out += candidate.spvp_converged ? "true" : "false";
    out += "}";
    out += i + 1 < report.repairs.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

std::string render_text(const RepairReport& report) {
  char buf[256];
  std::string out = "==== repair report: " + report.instance + " ====\n";
  if (report.already_safe) {
    out += "already provably safe; nothing to repair\n";
    return out;
  }
  std::snprintf(buf, sizeof(buf), "minimal unsat core (%zu constraints):\n",
                report.initial_core.size());
  out += buf;
  for (const ConstraintProvenance& prov : report.initial_core) {
    out += "  - " + prov.description + "\n";
  }
  std::snprintf(buf, sizeof(buf),
                "search: %zu candidates, %zu solver checks, %zu cores, "
                "%zu engine rebuilds, %zu beam-pruned, %.2f ms, %s oracle%s\n",
                report.candidates_checked, report.solver_checks,
                report.cores_seen, report.engine_rebuilds, report.beam_pruned,
                report.wall_ms,
                groundtruth::to_string(report.ground_truth_mode),
                report.budget_exhausted ? " (budget exhausted)" : "");
  out += buf;
  if (report.oracle_queries > 0) {
    std::snprintf(buf, sizeof(buf),
                  "oracle session: %zu queries, %zu ranking groups encoded, "
                  "%zu cache hits\n",
                  report.oracle_queries, report.oracle_groups_encoded,
                  report.oracle_cache_hits);
    out += buf;
  }
  if (!report.repaired()) {
    out += "no repair found within the edit budget\n";
    return out;
  }
  std::snprintf(buf, sizeof(buf), "repaired: %zu minimal fix(es) of size %zu\n",
                report.repairs.size(), report.repairs.front().edits.size());
  out += buf;
  for (std::size_t i = 0; i < report.repairs.size(); ++i) {
    const RepairCandidate& candidate = report.repairs[i];
    out += "  " + std::to_string(i + 1) + ". " + candidate.describe();
    out += "  [" + std::string(to_string(candidate.ground_truth));
    if (candidate.ground_truth != GroundTruth::not_applicable) {
      std::snprintf(buf, sizeof(buf), ", %zu stable assignment(s), spvp %s",
                    candidate.stable_assignments,
                    candidate.spvp_converged ? "converged" : "diverged");
      out += buf;
    }
    out += "]\n";
  }
  return out;
}

}  // namespace fsr::repair
