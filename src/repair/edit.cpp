#include "repair/edit.h"

#include <algorithm>
#include <map>

namespace fsr::repair {

const char* to_string(EditKind kind) noexcept {
  switch (kind) {
    case EditKind::drop_path:
      return "drop";
    case EditKind::demote_path:
      return "demote";
    case EditKind::relax_preference:
      return "relax";
  }
  return "drop";
}

std::string PolicyEdit::describe() const {
  if (kind == EditKind::relax_preference) {
    return "relax " + spp::path_name(path) + " < " + spp::path_name(other) +
           " to <=";
  }
  return std::string(to_string(kind)) + " " + spp::path_name(path) + " at " +
         node;
}

bool operator==(const PolicyEdit& a, const PolicyEdit& b) {
  return a.kind == b.kind && a.node == b.node && a.path == b.path &&
         a.other == b.other;
}

std::optional<spp::SppInstance> apply_edits(
    const spp::SppInstance& instance, const std::vector<PolicyEdit>& edits) {
  // Work on the rankings as plain vectors; rebuild the instance at the end
  // (SppInstance deliberately has no removal API).
  std::map<std::string, std::vector<spp::Path>> rankings;
  for (const std::string& node : instance.nodes()) {
    rankings[node] = instance.permitted(node);
  }

  for (const PolicyEdit& edit : edits) {
    if (edit.kind == EditKind::relax_preference) continue;
    const auto node_it = rankings.find(edit.node);
    if (node_it == rankings.end()) return std::nullopt;
    std::vector<spp::Path>& ranked = node_it->second;
    const auto path_it = std::find(ranked.begin(), ranked.end(), edit.path);
    if (path_it == ranked.end()) return std::nullopt;
    if (edit.kind == EditKind::drop_path) {
      ranked.erase(path_it);
    } else {  // demote_path
      if (path_it + 1 == ranked.end()) return std::nullopt;  // already last
      std::rotate(path_it, path_it + 1, ranked.end());
    }
  }

  std::size_t remaining = 0;
  for (const auto& [node, ranked] : rankings) remaining += ranked.size();
  if (remaining == 0) return std::nullopt;

  spp::SppInstance edited(instance.name() + "+repair",
                          instance.destination());
  for (const auto& [u, v] : instance.edges()) edited.add_edge(u, v);
  for (const auto& [node, ranked] : rankings) {
    for (const spp::Path& path : ranked) edited.add_permitted_path(path);
  }
  return edited;
}

}  // namespace fsr::repair
