// Counterexample-guided policy repair (closing the paper's Section VI-B
// pinpointing loop).
//
// Given an SPP instance that is not provably safe, the engine:
//
//   1. encodes it once into an IncrementalSafetySession and takes the
//      minimal unsat core of the strict-monotonicity check — the
//      counterexample: the dispute cycle's policy constraints;
//   2. derives candidate edits from the core (drop a permitted path,
//      demote a path in its node's ranking, relax one strict constraint);
//   3. re-checks every candidate against the SHARED solver session —
//      untouched constraints stay in the incremental engine's base, so a
//      re-check costs the candidate's delta, not a rebuild;
//   4. when a candidate is still unsat, its new core seeds further edits
//      (breadth-first, up to max_edits), so every explored edit is
//      justified by some counterexample;
//   5. cross-validates solver-safe candidates against ground truth:
//      enumerate_stable_assignments must find a stable state and repeated
//      simulate_spvp runs must converge;
//   6. returns all fixes of minimal edit size, ranked (ground-truth
//      verified first, then least destructive edit kinds).
//
// Thread-compatibility: a RepairEngine holds only immutable options;
// repair() builds its session and bookkeeping per call, so one engine MAY
// be shared by concurrent callers and distinct engines are fully
// independent — the same contract as SafetyAnalyzer, which is how the
// campaign runner keeps its one-solver-session-per-worker invariant with
// repair enabled (each worker's repair call owns its private session).
#ifndef FSR_REPAIR_REPAIR_ENGINE_H
#define FSR_REPAIR_REPAIR_ENGINE_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "fsr/safety_analyzer.h"
#include "groundtruth/engine.h"
#include "repair/edit.h"
#include "spp/spp.h"

namespace fsr::repair {

/// How a solver-safe candidate fared against the SPP ground truth.
enum class GroundTruth {
  verified,        // >= 1 stable assignment and every SPVP trial converged
  failed,          // ground truth contradicted the solver verdict
  not_applicable,  // candidate includes constraint-level (relax) edits, or
                   // the oracle's budget ran out before a verdict
};

const char* to_string(GroundTruth truth) noexcept;

struct RepairCandidate {
  std::vector<PolicyEdit> edits;  // sorted by describe(); the edit set
  bool solver_safe = false;
  GroundTruth ground_truth = GroundTruth::not_applicable;
  std::size_t stable_assignments = 0;  // when ground truth ran
  bool spvp_converged = false;         // when ground truth ran

  std::string describe() const;  // "demote 1-2-0 at 1" or joined edits
};

struct RepairOptions {
  /// Maximum edits per candidate (search depth). The engine stops at the
  /// first depth that yields any repair, so this is a cap, not a target.
  std::size_t max_edits = 2;
  /// Budget on solver re-checks across the whole search.
  std::size_t max_checks = 512;
  /// Use the shared incremental session (false = from-scratch ablation).
  bool use_incremental = true;
  /// Explore constraint-level relax edits (solver-verified only).
  bool allow_relax = true;
  /// Which exact oracle validates solver-safe candidates (see
  /// groundtruth/engine.h). sat-search decides instances far beyond the
  /// enumeration cap; enumerate preserves the seed toolkit's behaviour.
  groundtruth::Mode ground_truth = groundtruth::Mode::sat_search;
  /// State cap for the enumerate oracle; candidates whose oracle budget
  /// runs out report GroundTruth::not_applicable. Enumeration is
  /// exponential in instance size, so this bounds per-candidate cost.
  std::uint64_t ground_truth_max_states = 1u << 17;
  /// Conflict budget for the sat-search oracle (0 = unbounded).
  std::uint64_t ground_truth_max_conflicts = 1u << 20;
  /// Stable-assignment enumeration bound reported per candidate.
  std::size_t ground_truth_max_solutions = 64;
  std::uint64_t spvp_max_activations = 20000;
  int spvp_trials = 3;
};

struct RepairReport {
  std::string instance;
  /// The oracle that validated candidates (RepairOptions.ground_truth).
  groundtruth::Mode ground_truth_mode = groundtruth::Mode::sat_search;
  bool already_safe = false;
  /// The original counterexample: minimal core of the unedited instance.
  std::vector<ConstraintProvenance> initial_core;
  /// Successful candidates at the minimal edit size, ranked best-first.
  std::vector<RepairCandidate> repairs;
  std::size_t candidates_checked = 0;
  std::size_t solver_checks = 0;
  std::size_t cores_seen = 0;       // distinct counterexamples encountered
  std::size_t engine_rebuilds = 0;  // incremental-base rebuilds (ablation: 0)
  bool budget_exhausted = false;    // max_checks hit before the search ended
  double wall_ms = 0.0;

  bool repaired() const noexcept { return !repairs.empty(); }
  const RepairCandidate* best() const noexcept {
    return repairs.empty() ? nullptr : &repairs.front();
  }
};

/// Deterministic fields only (no wall-clock data), in candidate rank order.
std::string to_json(const RepairReport& report);
/// Human-facing rendering, timings included.
std::string render_text(const RepairReport& report);

class RepairEngine {
 public:
  RepairEngine() : RepairEngine(RepairOptions()) {}
  explicit RepairEngine(RepairOptions options) : options_(options) {}

  const RepairOptions& options() const noexcept { return options_; }

  /// Runs the repair loop. `seed` drives only the SPVP ground-truth trials
  /// (the search itself is deterministic in the instance), so a report's
  /// deterministic fields are a pure function of (instance, options, seed).
  RepairReport repair(const spp::SppInstance& instance,
                      std::uint64_t seed = 1) const;

 private:
  RepairOptions options_;
};

/// The compact per-scenario digest the campaign layer embeds in outcomes
/// and reports. All fields are deterministic.
struct RepairSummary {
  bool attempted = false;
  bool solver_repaired = false;  // some candidate made the solver say safe
  bool verified = false;         // the best candidate is ground-truthed
  std::string ground_truth_mode;  // oracle name ("enumerate"/"sat-search")
  std::size_t edit_count = 0;    // best candidate's edit count
  std::vector<std::string> edits;  // best candidate's edit descriptions
  std::size_t candidates_checked = 0;
  std::size_t solver_checks = 0;
  std::string error;  // non-empty when the repair attempt itself threw
};

RepairSummary summarize(const RepairReport& report);

}  // namespace fsr::repair

#endif  // FSR_REPAIR_REPAIR_ENGINE_H
