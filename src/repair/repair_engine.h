// Counterexample-guided policy repair (closing the paper's Section VI-B
// pinpointing loop).
//
// Given an SPP instance that is not provably safe, the engine:
//
//   1. encodes it once into an IncrementalSafetySession and takes the
//      minimal unsat core of the strict-monotonicity check — the
//      counterexample: the dispute cycle's policy constraints;
//   2. derives candidate edits from the core (drop a permitted path,
//      demote a path in its node's ranking, relax one strict constraint);
//   3. re-checks every candidate against the SHARED solver session —
//      untouched constraints stay in the incremental engine's base, so a
//      re-check costs the candidate's delta, not a rebuild;
//   4. when a candidate is still unsat, its new core seeds further edits
//      (depth by depth, up to max_edits), so every explored edit is
//      justified by some counterexample. Each depth's frontier is a BEAM:
//      when it outgrows beam_width, states are ranked by how often their
//      edits were demanded by counterexample cores (core-frequency
//      scoring) and only the best beam_width survive — the pruning that
//      keeps max_edits >= 3 tractable on Rocketfuel-sized instances;
//   5. cross-validates solver-safe candidates against ground truth — a
//      stable state must exist and repeated simulate_spvp runs must
//      converge. With the default sat-search oracle the candidates share
//      ONE persistent StableSatSession: the base instance is encoded once
//      and each candidate costs a per-node CNF delta (clause groups +
//      assumptions), mirroring how the SMT side amortises re-checks;
//   6. returns all fixes of minimal edit size, ranked (ground-truth
//      verified first, then least destructive edit kinds).
//
// Thread-compatibility: a RepairEngine holds only immutable options;
// repair() builds its session and bookkeeping per call, so one engine MAY
// be shared by concurrent callers and distinct engines are fully
// independent — the same contract as SafetyAnalyzer. Borrowed sessions
// (RepairSessions below) are mutable single-thread objects: a call that
// lends them must confine them to its thread, which is exactly how the
// api::AnalysisService keeps its one-solver-session-per-worker invariant
// (each worker lends only its own SessionCache entries).
#ifndef FSR_REPAIR_REPAIR_ENGINE_H
#define FSR_REPAIR_REPAIR_ENGINE_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "fsr/safety_analyzer.h"
#include "groundtruth/engine.h"
#include "repair/edit.h"
#include "spp/spp.h"

namespace fsr::repair {

/// How a solver-safe candidate fared against the SPP ground truth.
enum class GroundTruth {
  verified,        // >= 1 stable assignment and every SPVP trial converged
  failed,          // ground truth contradicted the solver verdict
  not_applicable,  // candidate includes constraint-level (relax) edits, or
                   // the oracle's budget ran out before a verdict
};

const char* to_string(GroundTruth truth) noexcept;

struct RepairCandidate {
  std::vector<PolicyEdit> edits;  // sorted by describe(); the edit set
  bool solver_safe = false;
  GroundTruth ground_truth = GroundTruth::not_applicable;
  std::size_t stable_assignments = 0;  // when ground truth ran
  bool spvp_converged = false;         // when ground truth ran
  /// Which oracle budget (if any) cut the validation short. `none` when
  /// no oracle ran (relax edits) or no budget interfered. Any other value
  /// marks stable_assignments as a floor; on a not_applicable verdict it
  /// names the budget that kept the oracle from deciding at all (`states`
  /// for enumerate, `conflicts` for sat-search) — a verified verdict with
  /// a non-`none` stop just means enumeration ended early.
  groundtruth::BudgetStop oracle_budget = groundtruth::BudgetStop::none;

  std::string describe() const;  // "demote 1-2-0 at 1" or joined edits
};

struct RepairOptions {
  /// Maximum edits per candidate (search depth). The engine stops at the
  /// first depth that yields any repair, so this is a cap, not a target.
  std::size_t max_edits = 2;
  /// Frontier cap per search depth (0 = unbounded breadth-first search).
  /// An overgrown frontier is pruned to the beam_width states whose edits
  /// were most often demanded by counterexample cores, best-first; pruned
  /// states are counted in RepairReport::beam_pruned, so a "no repair
  /// found" under pruning is never silent.
  std::size_t beam_width = 64;
  /// Budget on solver re-checks across the whole search.
  std::size_t max_checks = 512;
  /// Use the shared incremental session (false = from-scratch ablation).
  bool use_incremental = true;
  /// Validate sat-search-oracle candidates through one persistent
  /// StableSatSession (per-candidate CNF deltas) instead of re-encoding
  /// each edited instance from scratch (false = the oracle ablation
  /// bench_repair measures; both paths report identical verdicts wherever
  /// no conflict budget is exhausted mid-query — a tested property).
  bool use_incremental_oracle = true;
  /// Explore constraint-level relax edits (solver-verified only).
  bool allow_relax = true;
  /// Which exact oracle validates solver-safe candidates (see
  /// groundtruth/engine.h). sat-search decides instances far beyond the
  /// enumeration cap; enumerate preserves the seed toolkit's behaviour.
  groundtruth::Mode ground_truth = groundtruth::Mode::sat_search;
  /// State cap for the enumerate oracle; candidates whose oracle budget
  /// runs out report GroundTruth::not_applicable. Enumeration is
  /// exponential in instance size, so this bounds per-candidate cost.
  std::uint64_t ground_truth_max_states = 1u << 17;
  /// Conflict budget for the sat-search oracle (0 = unbounded).
  std::uint64_t ground_truth_max_conflicts = 1u << 20;
  /// Stable-assignment enumeration bound reported per candidate.
  std::size_t ground_truth_max_solutions = 64;
  std::uint64_t spvp_max_activations = 20000;
  int spvp_trials = 3;
};

struct RepairReport {
  std::string instance;
  /// The oracle that validated candidates (RepairOptions.ground_truth).
  groundtruth::Mode ground_truth_mode = groundtruth::Mode::sat_search;
  bool already_safe = false;
  /// The original counterexample: minimal core of the unedited instance.
  std::vector<ConstraintProvenance> initial_core;
  /// Successful candidates at the minimal edit size, ranked best-first.
  std::vector<RepairCandidate> repairs;
  std::size_t candidates_checked = 0;
  std::size_t solver_checks = 0;
  std::size_t cores_seen = 0;       // distinct counterexamples encountered
  std::size_t engine_rebuilds = 0;  // incremental-base rebuilds (ablation: 0)
  std::size_t beam_pruned = 0;      // frontier states dropped by the beam
  bool budget_exhausted = false;    // max_checks hit before the search ended
  // Incremental-oracle session effort (zero when the enumerate oracle or
  // the from-scratch ablation validated candidates instead).
  std::size_t oracle_queries = 0;
  std::size_t oracle_groups_encoded = 0;
  std::size_t oracle_cache_hits = 0;
  /// Wall time of the WHOLE repair call — search setup (spec translation,
  /// path interning, lazily built sessions) included, so borrowed-session
  /// and self-built runs measure the same thing.
  double wall_ms = 0.0;

  bool repaired() const noexcept { return !repairs.empty(); }
  const RepairCandidate* best() const noexcept {
    return repairs.empty() ? nullptr : &repairs.front();
  }
};

/// Deterministic fields only (no wall-clock data), in candidate rank order.
std::string to_json(const RepairReport& report);
/// Human-facing rendering, timings included.
std::string render_text(const RepairReport& report);

/// Caller-owned solver state a repair run may borrow instead of building
/// its own — the hook the fsr::api service layer uses to keep warm sessions
/// alive ACROSS requests (extending the within-one-run amortisation to the
/// whole service lifetime). Both pointers are optional and independent.
///
/// Contract (what keeps borrowed-session reports byte-identical to the
/// self-built path, a tested property):
///   * `strict_gate` must be a strict-mode session over exactly this
///     instance's translated spec that has only ever answered plain
///     check({}) queries — never make_variable — so its verdict/core is the
///     recorded engine answer a fresh session's first check would give. The
///     engine uses it for the initial already-safe gate + counterexample
///     and counts that query in RepairReport::solver_checks; the mutable
///     search session is then built lazily, so an already-safe instance
///     borrows everything and builds nothing.
///   * `oracle` must be a StableSatSession over exactly this base instance.
///     Its per-query blocking groups retire when each query ends, so reuse
///     across runs answers with the same verdicts/counts/witnesses as a
///     fresh session wherever no conflict budget dies mid-query (the same
///     caveat the campaign cache keys by). Session-effort stats in the
///     report are per-run deltas. Used only when options select the
///     sat-search oracle with use_incremental_oracle.
struct RepairSessions {
  IncrementalSafetySession* strict_gate = nullptr;
  groundtruth::StableSatSession* oracle = nullptr;
};

class RepairEngine {
 public:
  RepairEngine() : RepairEngine(RepairOptions()) {}
  explicit RepairEngine(RepairOptions options) : options_(options) {}

  const RepairOptions& options() const noexcept { return options_; }

  /// Runs the repair loop. `seed` drives only the SPVP ground-truth trials
  /// (the search itself is deterministic in the instance), so a report's
  /// deterministic fields are a pure function of (instance, options, seed).
  /// `sessions` optionally lends warm solver state (see RepairSessions);
  /// the deterministic report fields do not depend on what was lent.
  RepairReport repair(const spp::SppInstance& instance,
                      std::uint64_t seed = 1,
                      const RepairSessions& sessions = {}) const;

 private:
  RepairOptions options_;
};

/// The compact per-scenario digest the campaign layer embeds in outcomes
/// and reports. All fields are deterministic.
struct RepairSummary {
  bool attempted = false;
  bool solver_repaired = false;  // some candidate made the solver say safe
  bool verified = false;         // the best candidate is ground-truthed
  std::string ground_truth_mode;  // oracle name ("enumerate"/"sat-search")
  std::string oracle_budget;  // best candidate's BudgetStop ("none", ...)
  std::size_t edit_count = 0;    // best candidate's edit count
  std::vector<std::string> edits;  // best candidate's edit descriptions
  std::size_t candidates_checked = 0;
  std::size_t solver_checks = 0;
  std::string error;  // non-empty when the repair attempt itself threw
};

RepairSummary summarize(const RepairReport& report);

}  // namespace fsr::repair

#endif  // FSR_REPAIR_REPAIR_ENGINE_H
