// Candidate policy edits for the repair engine.
//
// The counterexample-guided search (repair_engine.h) explores three moves,
// each derived from a member of the minimal unsat core:
//
//   * drop_path        — remove one permitted path from its node's ranking;
//   * demote_path      — move one permitted path to the bottom of its
//                        node's ranking (keeps the path usable as a last
//                        resort, the least destructive structural edit);
//   * relax_preference — weaken one strict encoded constraint (ranking
//                        pair or monotonicity entry) from < to <=. This is
//                        a constraint-level edit with no exact SPP
//                        rendering (SPP rankings are strict), so such
//                        candidates are solver-verified but cannot be
//                        ground-truthed against enumerate_stable_assignments.
//
// Thread-compatibility: PolicyEdit is a plain value type and apply_edits is
// a pure function; both are freely usable from concurrent workers.
#ifndef FSR_REPAIR_EDIT_H
#define FSR_REPAIR_EDIT_H

#include <optional>
#include <string>
#include <vector>

#include "spp/spp.h"

namespace fsr::repair {

enum class EditKind { drop_path, demote_path, relax_preference };

const char* to_string(EditKind kind) noexcept;

struct PolicyEdit {
  EditKind kind = EditKind::drop_path;
  std::string node;  // ranking owner; empty for relax_preference
  spp::Path path;    // edited path (drop/demote) or LHS path (relax)
  spp::Path other;   // relax only: RHS path of the relaxed constraint

  /// Stable human-readable form, also the search's dedup/sort key.
  std::string describe() const;
};

bool operator==(const PolicyEdit& a, const PolicyEdit& b);

/// Applies the SPP-expressible edits (drop/demote) to a copy of `instance`,
/// in the given order; relax_preference entries are skipped (they live at
/// the constraint level only). Returns std::nullopt when any edit is
/// inapplicable — its path is absent from the node's ranking, a demoted
/// path is already last — or when the edits would leave the instance with
/// no permitted paths at all.
std::optional<spp::SppInstance> apply_edits(
    const spp::SppInstance& instance, const std::vector<PolicyEdit>& edits);

}  // namespace fsr::repair

#endif  // FSR_REPAIR_EDIT_H
