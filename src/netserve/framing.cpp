#include "netserve/framing.h"

namespace fsr::netserve {

LineFramer::LineFramer(std::size_t max_line_bytes)
    : max_line_bytes_(max_line_bytes == 0 ? 1 : max_line_bytes) {}

std::vector<Frame> LineFramer::feed(std::string_view chunk) {
  std::vector<Frame> frames;
  while (!chunk.empty()) {
    const std::size_t newline = chunk.find('\n');
    if (newline == std::string_view::npos) {
      append_bounded(chunk);
      break;
    }
    append_bounded(chunk.substr(0, newline));
    // The line is complete. In discard mode the content is already gone;
    // the oversized marker frame is what remains of it.
    if (discarding_) {
      frames.push_back(Frame{std::string(), true});
      discarding_ = false;
    } else {
      frames.push_back(Frame{std::move(partial_), false});
    }
    partial_.clear();
    chunk.remove_prefix(newline + 1);
  }
  return frames;
}

std::vector<Frame> LineFramer::finish() {
  std::vector<Frame> frames;
  if (discarding_) {
    frames.push_back(Frame{std::string(), true});
    discarding_ = false;
  } else if (!partial_.empty()) {
    frames.push_back(Frame{std::move(partial_), false});
  }
  partial_.clear();
  return frames;
}

void LineFramer::append_bounded(std::string_view text) {
  if (discarding_) return;  // the rest of this line is being dropped
  if (partial_.size() + text.size() > max_line_bytes_) {
    // Cap blown: stop buffering THIS line entirely and drop bytes until
    // its newline. The memory already spent is released immediately.
    partial_.clear();
    partial_.shrink_to_fit();
    discarding_ = true;
    return;
  }
  partial_.append(text.data(), text.size());
}

}  // namespace fsr::netserve
