#include "netserve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/recorder.h"
#include "util/error.h"

namespace fsr::netserve {

namespace {

void close_quiet(int& fd) noexcept {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw Error("netserve: cannot set O_NONBLOCK: " +
                std::string(std::strerror(errno)));
  }
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      connections_counter_(obs::registry().counter("net.connections")),
      bytes_in_counter_(obs::registry().counter("net.bytes_in")),
      bytes_out_counter_(obs::registry().counter("net.bytes_out")),
      inflight_gauge_(obs::registry().gauge("net.inflight")),
      service_(options_.service) {
  if (options_.tcp_host.empty() && options_.unix_path.empty()) {
    throw InvalidArgument("netserve: no listener configured");
  }
  try {
    if (::pipe(wake_pipe_) != 0) {
      throw Error("netserve: cannot create wake pipe: " +
                  std::string(std::strerror(errno)));
    }
    set_nonblocking(wake_pipe_[0]);
    set_nonblocking(wake_pipe_[1]);
    if (!options_.tcp_host.empty()) listen_tcp();
    if (!options_.unix_path.empty()) listen_unix();
  } catch (...) {
    close_quiet(tcp_listener_);
    close_quiet(unix_listener_);
    close_quiet(wake_pipe_[0]);
    close_quiet(wake_pipe_[1]);
    throw;
  }
}

Server::~Server() {
  for (auto& [id, conn] : conns_) close_quiet(conn.fd);
  conns_.clear();
  close_quiet(tcp_listener_);
  if (unix_listener_ >= 0 && !options_.unix_path.empty()) {
    ::unlink(options_.unix_path.c_str());
  }
  close_quiet(unix_listener_);
  close_quiet(wake_pipe_[0]);
  close_quiet(wake_pipe_[1]);
  // service_ (declared last) is destroyed after this body returns but
  // BEFORE the other members — its workers join while the completion
  // queue and gauge still exist; queued completions then die with us.
}

void Server::listen_tcp() {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.tcp_port);
  std::string host = options_.tcp_host;
  if (host == "localhost") host = "127.0.0.1";
  if (host == "0.0.0.0" || host == "*") {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
  } else if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    // Deliberately no DNS here: a server bind address should be an
    // explicit interface, and resolver calls have no place in startup.
    throw InvalidArgument("netserve: --listen host must be an IPv4 address "
                          "(or localhost/0.0.0.0), got '" +
                          options_.tcp_host + "'");
  }
  tcp_listener_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (tcp_listener_ < 0) {
    throw Error("netserve: cannot create TCP socket: " +
                std::string(std::strerror(errno)));
  }
  set_nonblocking(tcp_listener_);
  const int one = 1;
  ::setsockopt(tcp_listener_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(tcp_listener_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    throw Error("netserve: cannot bind " + options_.tcp_host + ":" +
                std::to_string(options_.tcp_port) + ": " +
                std::string(std::strerror(errno)));
  }
  if (::listen(tcp_listener_, SOMAXCONN) != 0) {
    throw Error("netserve: listen failed: " +
                std::string(std::strerror(errno)));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(tcp_listener_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    bound_tcp_port_ = ntohs(bound.sin_port);
  }
}

void Server::listen_unix() {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.unix_path.size() >= sizeof(addr.sun_path)) {
    throw InvalidArgument("netserve: --unix path too long (max " +
                          std::to_string(sizeof(addr.sun_path) - 1) +
                          " bytes)");
  }
  std::memcpy(addr.sun_path, options_.unix_path.c_str(),
              options_.unix_path.size() + 1);
  ::unlink(options_.unix_path.c_str());  // stale socket from a dead server
  unix_listener_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (unix_listener_ < 0) {
    throw Error("netserve: cannot create Unix socket: " +
                std::string(std::strerror(errno)));
  }
  set_nonblocking(unix_listener_);
  if (::bind(unix_listener_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    throw Error("netserve: cannot bind '" + options_.unix_path + "': " +
                std::string(std::strerror(errno)));
  }
  if (::listen(unix_listener_, SOMAXCONN) != 0) {
    throw Error("netserve: listen failed: " +
                std::string(std::strerror(errno)));
  }
}

void Server::wake() noexcept {
  // Async-signal-safe (write(2) on a pre-opened fd); also the worker->loop
  // doorbell. A full pipe is fine — the loop is already awake then.
  const char byte = 'w';
  [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
}

void Server::request_drain() noexcept {
  drain_requested_.store(true, std::memory_order_release);
  wake();
}

void Server::begin_drain() {
  draining_ = true;
  close_quiet(tcp_listener_);
  if (unix_listener_ >= 0) {
    ::unlink(options_.unix_path.c_str());
    close_quiet(unix_listener_);
  }
  // Everything already received is still answered and flushed; we just
  // stop reading more. Clients see their responses, then EOF.
  for (auto& [id, conn] : conns_) {
    if (conn.read_open) {
      conn.read_open = false;
      conn.protocol->input_closed();
    }
  }
}

void Server::accept_ready(int listener_fd, const char* transport) {
  while (true) {
    const int fd = ::accept(listener_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (drained) or transient accept error: poll again
    }
    try {
      set_nonblocking(fd);
    } catch (...) {
      ::close(fd);
      continue;
    }
    if (listener_fd == tcp_listener_) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    const std::uint64_t id = next_conn_id_++;
    Conn conn;
    conn.fd = fd;
    conn.protocol = std::make_unique<Connection>(
        id, options_.render, options_.limits,
        [this, id](std::uint64_t slot, api::Request request) {
          inflight_gauge_.add(1);
          service_.submit(
              std::move(request), [this, id, slot](api::Response response) {
                {
                  const std::lock_guard<std::mutex> lock(completions_mutex_);
                  completions_.push_back(
                      Completion{id, slot, std::move(response)});
                }
                inflight_gauge_.add(-1);
                wake();
              });
        });
    conns_.emplace(id, std::move(conn));
    connections_counter_.add(1);
    obs::record_event(obs::RecorderEventKind::net_accept, transport, id);
  }
}

void Server::handle_readable(Conn& conn) {
  char buffer[65536];
  // Bounded rounds per poll wake-up: one greedy client must not starve
  // the rest of the loop.
  for (int round = 0; round < 4 && conn.read_open && conn.protocol->wants_read();
       ++round) {
    const ssize_t n = ::recv(conn.fd, buffer, sizeof(buffer), 0);
    if (n > 0) {
      bytes_in_counter_.add(static_cast<std::uint64_t>(n));
      conn.protocol->feed(std::string_view(buffer, static_cast<size_t>(n)));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    // EOF or a read error: either way no more input is coming. In-flight
    // work still completes and flushes (half-close support — a client may
    // shutdown(SHUT_WR) and keep reading responses).
    conn.read_open = false;
    conn.protocol->input_closed();
    return;
  }
}

void Server::handle_writable(Conn& conn) {
  while (!conn.protocol->output().empty()) {
    const std::string& out = conn.protocol->output();
    const ssize_t n = ::send(conn.fd, out.data(), out.size(), MSG_NOSIGNAL);
    if (n > 0) {
      bytes_out_counter_.add(static_cast<std::uint64_t>(n));
      conn.protocol->consume_output(static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    // Peer is gone (EPIPE/ECONNRESET): nothing left to deliver to. Mark
    // the connection dead; close_finished() reaps it. Completions for its
    // in-flight requests arrive later and are dropped by conn-id lookup.
    obs::record_event(obs::RecorderEventKind::net_close, "reset", conn.protocol->id(),
                      conn.protocol->responses_emitted());
    close_quiet(conn.fd);
    return;
  }
}

void Server::drain_completions() {
  std::vector<Completion> ready;
  {
    const std::lock_guard<std::mutex> lock(completions_mutex_);
    ready.swap(completions_);
  }
  for (Completion& completion : ready) {
    const auto it = conns_.find(completion.conn_id);
    if (it == conns_.end() || it->second.fd < 0) continue;  // client gone
    it->second.protocol->on_response(completion.slot,
                                     std::move(completion.response));
  }
}

void Server::close_finished() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    Conn& conn = it->second;
    const bool dead = conn.fd < 0;  // write error already closed the fd
    if (dead || conn.protocol->finished()) {
      if (!dead) {
        obs::record_event(obs::RecorderEventKind::net_close,
                          conn.protocol->saw_error() ? "done-with-errors"
                                                     : "done",
                          conn.protocol->id(),
                          conn.protocol->responses_emitted());
        close_quiet(conn.fd);
      }
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

int Server::run() {
  std::vector<pollfd> fds;
  std::vector<std::uint64_t> fd_conn;  // conns_ key per pollfd (0 = none)
  while (true) {
    if (drain_requested_.load(std::memory_order_acquire) && !draining_) {
      begin_drain();
    }
    close_finished();
    if (draining_ && conns_.empty()) return 0;

    fds.clear();
    fd_conn.clear();
    fds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
    fd_conn.push_back(0);
    if (tcp_listener_ >= 0) {
      fds.push_back(pollfd{tcp_listener_, POLLIN, 0});
      fd_conn.push_back(0);
    }
    if (unix_listener_ >= 0) {
      fds.push_back(pollfd{unix_listener_, POLLIN, 0});
      fd_conn.push_back(0);
    }
    for (auto& [id, conn] : conns_) {
      short events = 0;
      if (conn.read_open && conn.protocol->wants_read()) events |= POLLIN;
      if (!conn.protocol->output().empty()) events |= POLLOUT;
      if (events == 0) continue;  // quiescent: waiting on the service
      fds.push_back(pollfd{conn.fd, events, 0});
      fd_conn.push_back(id + 1);
    }

    if (::poll(fds.data(), fds.size(), -1) < 0) {
      if (errno == EINTR) continue;
      throw Error("netserve: poll failed: " +
                  std::string(std::strerror(errno)));
    }

    for (std::size_t i = 0; i < fds.size(); ++i) {
      const pollfd& entry = fds[i];
      if (entry.revents == 0) continue;
      if (entry.fd == wake_pipe_[0]) {
        char sink[256];
        while (::read(wake_pipe_[0], sink, sizeof(sink)) > 0) {
        }
        continue;
      }
      if (entry.fd == tcp_listener_) {
        accept_ready(tcp_listener_, "tcp");
        continue;
      }
      if (entry.fd == unix_listener_) {
        accept_ready(unix_listener_, "unix");
        continue;
      }
      const auto it = conns_.find(fd_conn[i] - 1);
      if (it == conns_.end() || it->second.fd != entry.fd) continue;
      if ((entry.revents & (POLLERR | POLLNVAL)) != 0) {
        obs::record_event(obs::RecorderEventKind::net_close, "error",
                          it->second.protocol->id(),
                          it->second.protocol->responses_emitted());
        close_quiet(it->second.fd);
        continue;
      }
      if ((entry.revents & POLLOUT) != 0) handle_writable(it->second);
      if (it->second.fd >= 0 &&
          (entry.revents & (POLLIN | POLLHUP)) != 0) {
        handle_readable(it->second);
      }
    }

    drain_completions();
    // Eager flush: responses that just completed go out this round rather
    // than waiting for one more poll cycle.
    for (auto& [id, conn] : conns_) {
      if (conn.fd >= 0 && !conn.protocol->output().empty()) {
        handle_writable(conn);
      }
    }
  }
}

}  // namespace fsr::netserve
