// Server: the socket front-end of fsr::netserve — a single-threaded
// poll() event loop multiplexing many JSON-lines clients over TCP and/or
// Unix-domain sockets onto one AnalysisService worker pool.
//
// Division of labour: the loop thread owns every socket and every
// Connection (connection.h); service workers execute requests and hand
// finished Responses to a completion queue, waking the loop through a
// self-pipe. Connections are therefore single-threaded objects, and the
// loop never blocks on solver work — it blocks only in poll().
//
// Readiness is per-connection backpressure-aware: a connection that has
// too many unanswered lines or an undrained output buffer is simply not
// polled for POLLIN, so the kernel's receive window pushes back on the
// client while the server's memory stays bounded (connection.h).
//
// Graceful drain (SIGTERM/SIGINT in fsr_serve): request_drain() is
// async-signal-safe — it flips an atomic and writes the self-pipe. The
// loop then closes the listeners (new connects are refused), treats every
// connection's input as closed (lines already received are still
// answered), flushes, and run() returns 0 once the last client is done.
//
// Instrumentation (fsr::obs): "net.connections" (lifetime accepts),
// "net.bytes_in"/"net.bytes_out", "net.backpressure_stalls" (from the
// connections), a "net.inflight" gauge (requests submitted, not yet
// completed, across all connections), and net-accept/net-close flight-
// recorder events carrying the connection id.
#ifndef FSR_NETSERVE_SERVER_H
#define FSR_NETSERVE_SERVER_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "api/service.h"
#include "api/wire.h"
#include "netserve/connection.h"

namespace fsr::netserve {

struct ServerOptions {
  /// TCP listener; empty host disables. Port 0 binds an ephemeral port
  /// (read it back via tcp_port() — tests and CI use this).
  std::string tcp_host;
  std::uint16_t tcp_port = 0;
  /// Unix-domain listener; empty disables. The path is unlinked before
  /// bind and again on shutdown.
  std::string unix_path;

  api::ServiceOptions service;
  api::wire::RenderOptions render;
  ConnectionLimits limits;
};

class Server {
 public:
  /// Binds and listens (throws fsr::Error on any socket failure); the
  /// service pool spins up here too. At least one listener is required.
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The event loop. Returns 0 after a clean drain (request_drain()
  /// observed, every accepted line answered and flushed, every client
  /// closed). Runs until then.
  int run();

  /// Stop accepting, finish in-flight, flush, make run() return — safe
  /// from signal handlers and other threads.
  void request_drain() noexcept;

  /// The TCP listener's bound port (after ephemeral-port resolution);
  /// 0 when no TCP listener exists.
  std::uint16_t tcp_port() const noexcept { return bound_tcp_port_; }

  api::AnalysisService& service() noexcept { return service_; }

 private:
  struct Conn {
    int fd = -1;
    std::unique_ptr<Connection> protocol;
    bool read_open = true;  // false after EOF/drain: stop polling POLLIN
  };
  struct Completion {
    std::uint64_t conn_id = 0;
    std::uint64_t slot = 0;
    api::Response response;
  };

  void listen_tcp();
  void listen_unix();
  void accept_ready(int listener_fd, const char* transport);
  void handle_readable(Conn& conn);
  void handle_writable(Conn& conn);
  void drain_completions();
  void close_finished();
  void begin_drain();
  void wake() noexcept;

  ServerOptions options_;

  int tcp_listener_ = -1;
  int unix_listener_ = -1;
  std::uint16_t bound_tcp_port_ = 0;
  int wake_pipe_[2] = {-1, -1};

  std::atomic<bool> drain_requested_{false};
  bool draining_ = false;

  std::uint64_t next_conn_id_ = 0;
  std::map<std::uint64_t, Conn> conns_;  // keyed by connection id

  std::mutex completions_mutex_;
  std::vector<Completion> completions_;

  obs::Counter& connections_counter_;
  obs::Counter& bytes_in_counter_;
  obs::Counter& bytes_out_counter_;
  obs::Gauge& inflight_gauge_;

  // Declared LAST on purpose: destroyed FIRST, so the worker pool joins
  // (and its completion callbacks stop touching the members above) while
  // the completion queue, gauge, and wake pipe are all still alive.
  api::AnalysisService service_;
};

}  // namespace fsr::netserve

#endif  // FSR_NETSERVE_SERVER_H
