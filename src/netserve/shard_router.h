// ShardRouter: consistent hashing of instance fingerprints onto worker
// shards — the scheduling half of the netserve tentpole.
//
// The AnalysisService keeps one warm SessionCache per worker, so WHERE a
// request runs decides whether it hits warm solver state. Blind pool
// submission dilutes the hit rate under concurrency: the same instance
// lands on whichever worker is free, and every worker slowly builds (and
// evicts) its own copy of every hot session. The router fixes the mapping:
// a request's content fingerprint (api::fingerprint — kind-free, so
// ground-truth and repair requests over one instance agree) always hashes
// to the same shard, so the warm session for an instance lives on exactly
// one worker and every request for that instance finds it.
//
// The hash is a classic consistent-hash ring (k virtual nodes per shard on
// a 64-bit ring, lookup = first point clockwise of the key hash). Two
// properties matter here:
//
//   * determinism — the ring is a pure function of (shard count, vnodes),
//     so the fingerprint→shard mapping is reproducible across processes
//     and testable as a first-class seam (AnalysisService::shard_of);
//   * stability under resizing — growing N shards to N+1 only remaps the
//     keys nearest the new shard's vnodes (~1/(N+1) of them), so a fleet
//     scaling its shard count keeps most instances on their warm worker
//     (plain hash-mod would remap nearly everything).
//
// Response BYTES never depend on the mapping (the service determinism
// contract); only session-cache temperature does. That is what lets the
// wire contract promise byte-identical responses at any --shards value.
//
// Thread-safety: immutable after construction; shard_of is const and
// lock-free, safe from any thread.
#ifndef FSR_NETSERVE_SHARD_ROUTER_H
#define FSR_NETSERVE_SHARD_ROUTER_H

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

namespace fsr::netserve {

class ShardRouter {
 public:
  /// `shards` >= 1; `vnodes_per_shard` trades lookup-table size for
  /// balance (64 keeps the max/mean shard load within ~30% in practice).
  explicit ShardRouter(std::size_t shards, std::size_t vnodes_per_shard = 64);

  std::size_t shards() const noexcept { return shards_; }

  /// The shard `fingerprint` maps to. Total: every string (including the
  /// empty fingerprint of stats/debug/unparseable requests) maps to some
  /// shard, deterministically.
  std::size_t shard_of(std::string_view fingerprint) const noexcept;

 private:
  std::size_t shards_;
  /// (ring point, shard), sorted by point; lookup is a binary search.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> ring_;
};

/// The 64-bit string hash the ring uses (FNV-1a); exposed so tests can
/// reason about placement without re-implementing it.
std::uint64_t fingerprint_hash(std::string_view text) noexcept;

}  // namespace fsr::netserve

#endif  // FSR_NETSERVE_SHARD_ROUTER_H
