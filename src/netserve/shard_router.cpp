#include "netserve/shard_router.h"

#include <algorithm>

namespace fsr::netserve {

namespace {

/// splitmix64 finisher: avalanches a vnode's (shard, index) pair into a
/// ring point. The constants are the reference ones (Steele et al.).
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t fingerprint_hash(std::string_view text) noexcept {
  // FNV-1a 64-bit; fingerprints are short hex strings, so the simple
  // byte-at-a-time loop is already sub-microsecond.
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

ShardRouter::ShardRouter(std::size_t shards, std::size_t vnodes_per_shard)
    : shards_(shards == 0 ? 1 : shards) {
  const std::size_t vnodes = vnodes_per_shard == 0 ? 1 : vnodes_per_shard;
  ring_.reserve(shards_ * vnodes);
  for (std::size_t shard = 0; shard < shards_; ++shard) {
    for (std::size_t vnode = 0; vnode < vnodes; ++vnode) {
      // A vnode's point depends only on its own (shard, vnode) pair, so a
      // ring of N shards is a subset of the ring of N+1 shards — the
      // consistency property.
      const std::uint64_t point = mix64((static_cast<std::uint64_t>(shard)
                                         << 32) |
                                        static_cast<std::uint64_t>(vnode));
      ring_.emplace_back(point, static_cast<std::uint32_t>(shard));
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

std::size_t ShardRouter::shard_of(std::string_view fingerprint) const noexcept {
  const std::uint64_t key = fingerprint_hash(fingerprint);
  // First ring point at or clockwise of the key, wrapping at the top.
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), key,
      [](const std::pair<std::uint64_t, std::uint32_t>& entry,
         std::uint64_t value) { return entry.first < value; });
  if (it == ring_.end()) it = ring_.begin();
  return static_cast<std::size_t>(it->second);
}

}  // namespace fsr::netserve
