#include "netserve/connection.h"

#include <utility>
#include <variant>

#include "api/json.h"
#include "util/error.h"

namespace fsr::netserve {

namespace {

/// Matches the stdin front-end's blank test exactly: a line of spaces,
/// tabs, and carriage returns (or nothing) is skipped without a response.
bool is_blank(const std::string& line) noexcept {
  for (const char c : line) {
    if (c != ' ' && c != '\t' && c != '\r') return false;
  }
  return true;
}

}  // namespace

Connection::Connection(std::uint64_t id, const api::wire::RenderOptions& render,
                       const ConnectionLimits& limits, Submit submit)
    : id_(id),
      render_(render),
      limits_(limits),
      submit_(std::move(submit)),
      framer_(limits.max_line_bytes),
      backpressure_stalls_(
          obs::registry().counter("net.backpressure_stalls")) {}

void Connection::feed(std::string_view chunk) {
  for (Frame& frame : framer_.feed(chunk)) {
    accept_line(std::move(frame.line), frame.oversized);
  }
  pump();
  emit_ready();
  note_backpressure();
}

void Connection::input_closed() {
  input_closed_ = true;
  // std::getline also delivers a final line with no terminating newline.
  for (Frame& frame : framer_.finish()) {
    accept_line(std::move(frame.line), frame.oversized);
  }
  pump();
  emit_ready();
  note_backpressure();
}

void Connection::accept_line(std::string line, bool oversized) {
  ++line_number_;
  if (!oversized && is_blank(line)) return;

  Slot slot;
  slot.seq = next_seq_++;

  if (oversized) {
    // The content is long gone (the framer dropped it unbuffered); all
    // that can be answered is the bound itself, in-band like any other
    // per-line failure.
    slot.state = Slot::State::done;
    slot.response.error =
        "line " + std::to_string(line_number_) + ": request line exceeds " +
        std::to_string(framer_.max_line_bytes()) + "-byte limit";
    slots_.push_back(std::move(slot));
    return;
  }

  // Transport-level request id: an optional client-chosen unsigned
  // integer, echoed on the response and opting this line into
  // out-of-order completion. Extracted before the request parse so even
  // a schema-invalid request (answered in-band below) echoes its id.
  bool json_ok = false;
  std::string id_error;
  try {
    const api::json::Value body = api::json::parse(line);
    json_ok = true;
    if (const api::json::Value* id_value = body.find("id")) {
      slot.client_id = id_value->as_u64("id");
      slot.has_client_id = true;
    }
  } catch (const std::exception& error) {
    // Unparseable JSON falls through to parse_request, which answers with
    // the real parse error. A line that DID parse but carries a malformed
    // id (fractional, negative, non-numeric) fails here and is answered
    // below — parse_request would accept it (unknown keys are ignored),
    // and silently dropping the client's correlation id would be worse.
    if (json_ok) id_error = error.what();
  }

  try {
    if (!id_error.empty()) throw InvalidArgument(id_error);
    slot.request = api::wire::parse_request(line);
    slot.barrier = std::holds_alternative<api::StatsRequest>(slot.request) ||
                   std::holds_alternative<api::DebugRequest>(slot.request);
    slots_.push_back(std::move(slot));
    return;
  } catch (const std::exception& error) {
    // Mirror the stdin front-end byte for byte: one in-band error response
    // per failing line, "line N: " prefix, best-effort kind attribution,
    // the service never touched.
    try {
      const api::json::Value body = api::json::parse(line);
      if (const api::json::Value* kind_value = body.find("kind")) {
        if (const auto kind =
                api::parse_request_kind(kind_value->as_string("kind"))) {
          slot.response.kind = *kind;
        }
      }
    } catch (...) {
      // Not even JSON: the default kind stands; the error text explains.
    }
    const std::string& what = id_error.empty() ? error.what() : id_error;
    slot.response.error =
        "line " + std::to_string(line_number_) + ": " + what;
    slot.state = Slot::State::done;
    slots_.push_back(std::move(slot));
  }
}

void Connection::pump() {
  // Strict slot order: the service sees this connection's requests in
  // line order, exactly like the stdin front-end submits them.
  for (Slot& slot : slots_) {
    if (slot.state == Slot::State::emitted || slot.state == Slot::State::done ||
        slot.state == Slot::State::inflight) {
      continue;
    }
    // slot is the oldest queued one. Gates, in order of cheapness:
    if (output_.size() >= limits_.max_output_bytes) return;
    if (slot.barrier && inflight_ > 0) return;
    // stats/debug are per-connection stream barriers: every earlier line
    // on this connection must have completed before the snapshot is
    // taken, so it means "everything before me" (matching stdin mode,
    // where flush_ready(true) precedes the submission). inflight_ == 0
    // suffices because submission is in slot order.
    slot.state = Slot::State::inflight;
    ++inflight_;
    submit_(slot.seq, std::move(slot.request));
    slot.request = api::Request{};
  }
}

void Connection::on_response(std::uint64_t slot, api::Response response) {
  for (Slot& entry : slots_) {
    if (entry.seq != slot || entry.state != Slot::State::inflight) continue;
    entry.response = std::move(response);
    entry.state = Slot::State::done;
    --inflight_;
    break;
  }
  pump();  // a barrier (or an output-gated slot) may be eligible now
  emit_ready();
  note_backpressure();
}

void Connection::emit_ready() {
  // Id-carrying slots: emit the moment they are done, wherever they sit —
  // out-of-order completion is exactly what the client id opted into.
  for (Slot& slot : slots_) {
    if (slot.has_client_id && slot.state == Slot::State::done) emit(slot);
  }
  // Id-less slots: request order relative to each other — the stdin
  // contract. Emitted id-carrying slots are transparent; the first
  // unfinished id-less slot stops the scan.
  for (Slot& slot : slots_) {
    if (slot.state == Slot::State::emitted) continue;
    if (slot.has_client_id) continue;  // never blocks id-less ordering
    if (slot.state != Slot::State::done) break;
    emit(slot);
  }
  while (!slots_.empty() && slots_.front().state == Slot::State::emitted) {
    slots_.pop_front();
  }
}

void Connection::emit(Slot& slot) {
  // Id-less responses carry the per-connection dense ordinal (the slot
  // seq — byte-identical to stdin mode's output ids); id-carrying ones
  // echo the client's id verbatim.
  slot.response.id = slot.has_client_id ? slot.client_id : slot.seq;
  if (!slot.response.error.empty()) saw_error_ = true;
  output_ += api::wire::render_response(slot.response, render_);
  output_ += '\n';
  slot.response = api::Response{};
  slot.state = Slot::State::emitted;
  ++emitted_count_;
}

void Connection::consume_output(std::size_t bytes) {
  output_.erase(0, bytes);
  pump();  // freed output head-room may unblock submissions
  emit_ready();
  note_backpressure();
}

bool Connection::wants_read() const noexcept {
  return slots_.size() < limits_.max_inflight &&
         output_.size() < limits_.max_output_bytes;
}

bool Connection::finished() const noexcept {
  return input_closed_ && slots_.empty() && output_.empty();
}

void Connection::note_backpressure() {
  const bool now = wants_read();
  if (was_readable_ && !now && !input_closed_) backpressure_stalls_.add(1);
  was_readable_ = now;
}

}  // namespace fsr::netserve
