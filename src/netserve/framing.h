// Line framing for the netserve byte stream — the transport half of the
// JSON-lines wire protocol (api/wire.h).
//
// A socket delivers arbitrary chunks: half a line, three lines and a
// fragment, a 100 MB line from a hostile client. The framer turns that
// into the same sequence of lines std::getline gives fsr_serve's stdin
// mode — byte for byte, so the per-connection protocol object (Connection)
// can reuse the stdin front-end's exact request flow — while keeping
// memory bounded: a line that exceeds the cap is dropped in O(1) space
// (the framer discards bytes until the newline) and surfaced as one
// `oversized` frame so the connection can answer it with an in-band error
// instead of buffering it.
//
// Carriage returns are NOT stripped: std::getline leaves a trailing '\r'
// in place and the wire layer treats it as whitespace, so keeping it
// preserves stdin-mode byte behaviour for CRLF clients.
//
// Thread-safety: none needed; a framer belongs to one connection on the
// event-loop thread.
#ifndef FSR_NETSERVE_FRAMING_H
#define FSR_NETSERVE_FRAMING_H

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace fsr::netserve {

/// The shared backpressure constants — netserve's per-connection bounds
/// AND fsr_serve's stdin-mode in-flight cap use these same values, so the
/// two front-ends make the same memory promise.
///
/// Max requests a connection may have parsed-but-unanswered (queued +
/// in-flight + completed-but-unemitted). Reads pause beyond this.
inline constexpr std::size_t kMaxInflightPerConnection = 64;
/// Max bytes in one request line; longer lines answer an error.
inline constexpr std::size_t kMaxLineBytes = std::size_t{1} << 20;  // 1 MiB
/// Max bytes of rendered-but-unsent responses per connection. Reads (and
/// further submissions) pause until the client drains below this.
inline constexpr std::size_t kMaxOutputBufferBytes = std::size_t{4} << 20;

/// One complete input line. `oversized` frames carry an empty `line` —
/// the content was discarded unbuffered — and stand for exactly one
/// over-limit line (the connection answers it in-band).
struct Frame {
  std::string line;
  bool oversized = false;
};

class LineFramer {
 public:
  explicit LineFramer(std::size_t max_line_bytes = kMaxLineBytes);

  /// Consumes a received chunk; returns every line completed by it, in
  /// order. Partial trailing data is buffered for the next feed.
  std::vector<Frame> feed(std::string_view chunk);

  /// True when buffered partial-line data is pending (an EOF now would
  /// mean the peer sent an unterminated final line — which, matching
  /// std::getline, is still delivered: call finish()).
  bool midline() const noexcept { return !partial_.empty() || discarding_; }

  /// EOF handling: returns the unterminated final line as a frame when one
  /// is pending (std::getline also yields a final line with no '\n').
  std::vector<Frame> finish();

  std::size_t max_line_bytes() const noexcept { return max_line_bytes_; }

 private:
  void append_bounded(std::string_view text);

  std::size_t max_line_bytes_;
  std::string partial_;
  /// In discard mode: the current line already blew the cap; drop bytes
  /// until its newline, then emit one oversized frame.
  bool discarding_ = false;
};

}  // namespace fsr::netserve

#endif  // FSR_NETSERVE_FRAMING_H
