// Connection: the per-client protocol state machine of fsr::netserve —
// everything about serving one JSON-lines client EXCEPT the socket.
//
// The server (server.h) owns file descriptors and the poll loop; a
// Connection owns the protocol: framing bytes into lines (LineFramer),
// mirroring the stdin front-end's request flow line by line (blank-line
// skipping, in-band parse errors with "line N: " prefixes, stats/debug
// drain barriers), pipelining requests into the AnalysisService, and
// assembling the outgoing byte stream. Keeping it fd-free makes the whole
// wire contract unit-testable without sockets (tests/test_netserve.cpp
// drives feed()/on_response()/take_output() directly).
//
// Ordering contract (docs/WIRE.md "Transport"):
//   * a request line WITHOUT a client "id" is answered in request order
//     relative to other id-less lines, with the response id assigned
//     densely per connection — byte-identical to piping the same lines
//     through stdin mode;
//   * a request line WITH a client-chosen `"id": N` (unsigned integer)
//     opts into out-of-order completion: its response is emitted as soon
//     as it finishes, with the client's id echoed. Each such response
//     LINE is still deterministic bytes; the inter-line order reflects
//     completion and is the one thing pipelining gives away.
//
// Backpressure: at most `max_inflight` lines may be parsed-but-unanswered
// and at most `max_output_bytes` rendered-but-unsent; beyond either bound
// wants_read() turns false (the server stops polling POLLIN — TCP's
// receive window then pushes back on the client) and further submissions
// hold. A client that never reads therefore stalls, it never OOMs the
// server — each stall transition counts into "net.backpressure_stalls".
//
// Thread-safety: none. A Connection lives on the event-loop thread; the
// service completes requests on worker threads, so the server queues
// completions and replays them on the loop thread via on_response().
#ifndef FSR_NETSERVE_CONNECTION_H
#define FSR_NETSERVE_CONNECTION_H

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <string_view>

#include "api/request.h"
#include "api/service.h"
#include "api/wire.h"
#include "netserve/framing.h"
#include "obs/metrics.h"

namespace fsr::netserve {

struct ConnectionLimits {
  std::size_t max_inflight = kMaxInflightPerConnection;
  std::size_t max_line_bytes = kMaxLineBytes;
  std::size_t max_output_bytes = kMaxOutputBufferBytes;
};

class Connection {
 public:
  /// `submit` hands a parsed request to the owner for service submission;
  /// the owner must later call on_response(slot, response) exactly once
  /// per submitted slot (from the loop thread). Submissions happen in slot
  /// order and only from inside feed()/on_response()/input_closed().
  using Submit = std::function<void(std::uint64_t slot, api::Request request)>;

  Connection(std::uint64_t id, const api::wire::RenderOptions& render,
             const ConnectionLimits& limits, Submit submit);

  std::uint64_t id() const noexcept { return id_; }

  /// Bytes arrived from the socket: frame, parse, submit what can go.
  void feed(std::string_view chunk);

  /// The peer half-closed (EOF on read). Flushes the framer's final
  /// unterminated line, then lets in-flight work finish; the connection
  /// reports finished() once everything is answered and drained.
  void input_closed();

  /// A submitted slot completed. Must be called on the loop thread.
  void on_response(std::uint64_t slot, api::Response response);

  /// Rendered response bytes awaiting the socket. The server sends from
  /// the front and reports progress via consume_output().
  const std::string& output() const noexcept { return output_; }
  void consume_output(std::size_t bytes);

  /// False while backpressure holds (too many unanswered lines, or the
  /// client is not draining output) — the server stops reading then.
  bool wants_read() const noexcept;

  /// True once input is closed, every line is answered, and output is
  /// fully drained: the server can close the socket.
  bool finished() const noexcept;

  /// Unanswered parsed lines right now (slots submitted or queued).
  std::size_t open_slots() const noexcept { return slots_.size(); }
  /// Responses emitted over the connection lifetime (net_close provenance).
  std::uint64_t responses_emitted() const noexcept { return emitted_count_; }
  /// True if any emitted response carried an error (close provenance;
  /// a server has no per-client exit code).
  bool saw_error() const noexcept { return saw_error_; }

 private:
  struct Slot {
    std::uint64_t seq = 0;  // dense over non-blank lines, the output id
    enum class State : std::uint8_t { queued, inflight, done, emitted };
    State state = State::queued;
    bool barrier = false;        // stats/debug: drain earlier slots first
    bool has_client_id = false;  // out-of-order opt-in
    std::uint64_t client_id = 0;
    api::Request request;   // meaningful while queued
    api::Response response;  // meaningful once done
  };

  void accept_line(std::string line, bool oversized);
  void pump();               // submit eligible queued slots, in slot order
  void emit_ready();         // move done slots into the output buffer
  void emit(Slot& slot);
  void note_backpressure();  // count wants_read() true->false transitions

  const std::uint64_t id_;
  const api::wire::RenderOptions render_;
  const ConnectionLimits limits_;
  const Submit submit_;

  LineFramer framer_;
  std::deque<Slot> slots_;  // open (non-emitted) slots, ascending seq
  std::string output_;
  std::uint64_t line_number_ = 0;   // all input lines, blanks included
  std::uint64_t next_seq_ = 0;      // next non-blank line's slot seq
  std::size_t inflight_ = 0;        // slots submitted, not yet done
  bool input_closed_ = false;
  bool was_readable_ = true;  // previous wants_read(), for stall counting
  std::uint64_t emitted_count_ = 0;
  bool saw_error_ = false;

  obs::Counter& backpressure_stalls_;
};

}  // namespace fsr::netserve

#endif  // FSR_NETSERVE_CONNECTION_H
