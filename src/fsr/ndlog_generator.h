// NDlog implementation generation (paper Section V-B, Table II).
//
// Given a routing algebra, this component produces the pieces that turn
// the mechanism-only GPV template into a runnable distributed protocol:
//
//   algebra element      ->  generated artefact
//   -----------------------------------------------------
//   pref relation        ->  f_pref(S1,S2) -> true/false
//   (+)_P                ->  f_concatSig(L,S) -> S'
//   (+)_I (and phi)      ->  f_import(L,S) -> true/false
//   (+)_E                ->  f_export(L,S) -> true/false
//
// plus, per Step 4, the per-node `label` facts and origination `sig`
// facts derived from a topology. The functions are registered as native
// callbacks (the execution path) and also rendered as `#def_func` pseudo
// code (the paper's presentation; used in reports and tests).
//
// Orientation notes:
//   * f_import(L,S) is true iff the import filter admits S over L *and*
//     the generation (+)_P(L,S) is defined (phi is folded into the import
//     decision, so f_concatSig is total on admitted inputs);
//   * f_export(L,S) is called by the sender with its own label L for the
//     link; it evaluates the algebra's receiver-side-keyed export table at
//     complement(L) (see the orientation note in algebra/algebra.h).
#ifndef FSR_FSR_NDLOG_GENERATOR_H
#define FSR_FSR_NDLOG_GENERATOR_H

#include <string>

#include "algebra/algebra.h"
#include "ndlog/functions.h"

namespace fsr {

/// Registers the four policy functions (and the a_pref aggregate) for
/// `algebra` into `registry`. The algebra must outlive the registry.
void register_policy_functions(const algebra::RoutingAlgebra& algebra,
                               ndlog::FunctionRegistry& registry);

/// Renders the generated functions as the paper's #def_func pseudo-code
/// (finite algebras enumerate their table entries; closed-form algebras
/// print arithmetic bodies; SPP-derived algebras print table lookups).
std::string render_policy_functions(const algebra::RoutingAlgebra& algebra);

}  // namespace fsr

#endif  // FSR_FSR_NDLOG_GENERATOR_H
