#include "fsr/constraint_encoder.h"

#include <cctype>

#include "util/error.h"

namespace fsr::encoding {

SymbolTable::SymbolTable(const std::vector<std::string>& names) {
  for (const std::string& name : names) {
    std::string symbol;
    for (const char c : name) {
      symbol.push_back(
          std::isalnum(static_cast<unsigned char>(c)) != 0 ? c : '_');
    }
    if (symbol.empty() ||
        std::isdigit(static_cast<unsigned char>(symbol.front())) != 0) {
      symbol.insert(symbol.begin(), 's');
      symbol.insert(symbol.begin() + 1, '_');
    }
    while (symbol_to_name_.contains(symbol)) symbol.push_back('_');
    symbol_to_name_.emplace(symbol, name);
    name_to_symbol_.emplace(name, symbol);
    symbols_.push_back(symbol);
  }
}

const std::string& SymbolTable::symbol(const std::string& name) const {
  const auto it = name_to_symbol_.find(name);
  if (it == name_to_symbol_.end()) {
    throw InvalidArgument("symbolic spec references unknown signature '" +
                          name + "'");
  }
  return it->second;
}

const std::string& SymbolTable::original(const std::string& symbol) const {
  return symbol_to_name_.at(symbol);
}

const char* relation_spelling(algebra::PrefRel rel) {
  switch (rel) {
    case algebra::PrefRel::strictly_better:
      return "<";
    case algebra::PrefRel::equal:
      return "=";
    case algebra::PrefRel::better_or_equal:
      return "<=";
  }
  return "<";
}

Encoding encode(const algebra::SymbolicSpec& spec, MonotonicityMode mode,
                const SymbolTable& symbols) {
  Encoding enc;
  const char* mono_rel = mode == MonotonicityMode::strict ? "<" : "<=";

  // Step 2: one constraint per declared preference.
  for (const auto& pref : spec.preferences) {
    const std::string line = "(" + std::string(relation_spelling(pref.rel)) +
                             " " + symbols.symbol(pref.lhs) + " " +
                             symbols.symbol(pref.rhs) + ")";
    enc.assert_lines.push_back(line);
    enc.provenance.push_back(
        ConstraintProvenance{ConstraintProvenance::Kind::preference,
                             pref.provenance, line});
    enc.shapes.push_back(
        RelationShape{relation_spelling(pref.rel), pref.lhs, pref.rhs});
  }
  // Step 3: one (strict-)monotonicity constraint per combined (+) entry.
  for (const auto& ext : spec.extensions) {
    const std::string line = "(" + std::string(mono_rel) + " " +
                             symbols.symbol(ext.from_sig) + " " +
                             symbols.symbol(ext.to_sig) + ")";
    enc.assert_lines.push_back(line);
    enc.provenance.push_back(
        ConstraintProvenance{ConstraintProvenance::Kind::monotonicity,
                             ext.provenance, line});
    enc.shapes.push_back(RelationShape{mono_rel, ext.from_sig, ext.to_sig});
  }
  // Closed-form algebras: universally quantified templates.
  for (const auto& tmpl : spec.additive_templates) {
    const std::string line = "(forall (s::Sig) (" + std::string(mono_rel) +
                             " s (+ s " + std::to_string(tmpl.delta) + ")))";
    enc.assert_lines.push_back(line);
    enc.provenance.push_back(
        ConstraintProvenance{ConstraintProvenance::Kind::monotonicity,
                             tmpl.provenance, line});
    enc.shapes.push_back(RelationShape{"forall", line, ""});
  }
  return enc;
}

std::string render_script(const algebra::SymbolicSpec& spec,
                          MonotonicityMode mode, const SymbolTable& symbols,
                          const Encoding& enc) {
  std::string script;
  script += ";; FSR safety encoding for algebra '" + spec.algebra_name + "'\n";
  script += ";; mode: ";
  script += (mode == MonotonicityMode::strict ? "strict monotonicity"
                                              : "monotonicity");
  script += "\n(define-type Sig (subtype (n::nat) (> n 0)))\n";
  for (const std::string& symbol : symbols.symbols()) {
    script += "(define " + symbol + "::Sig)\n";
  }
  bool wrote_pref_banner = false;
  bool wrote_mono_banner = false;
  for (std::size_t i = 0; i < enc.assert_lines.size(); ++i) {
    if (enc.provenance[i].kind == ConstraintProvenance::Kind::preference &&
        !wrote_pref_banner) {
      script += ";; route preference constraints\n";
      wrote_pref_banner = true;
    }
    if (enc.provenance[i].kind == ConstraintProvenance::Kind::monotonicity &&
        !wrote_mono_banner) {
      script += (mode == MonotonicityMode::strict
                     ? ";; strict monotonicity constraints\n"
                     : ";; monotonicity constraints\n");
      wrote_mono_banner = true;
    }
    script += "(assert " + enc.assert_lines[i] + ")\n";
  }
  script += "(check)\n";
  return script;
}

}  // namespace fsr::encoding
