#include "fsr/emulation.h"

#include "fsr/ndlog_generator.h"
#include "fsr/value_bridge.h"
#include "proto/gpv.h"
#include "proto/hlp.h"
#include "spp/translate.h"
#include "topology/hlp_domains.h"
#include "util/error.h"

namespace fsr {
namespace {

/// Schedules the churn events of `options` against the first origination
/// sig fact: the egress cost flaps by `magnitude` (up on even events,
/// back down on odd ones). Requires an integer-cost signature.
void schedule_churn(
    ndlog::Runtime& runtime, const EmulationOptions& options,
    const std::vector<std::pair<std::string, ndlog::Tuple>>& originations) {
  if (options.churn.events <= 0) return;
  if (originations.empty()) {
    throw InvalidArgument("churn requested but nothing originates routes");
  }
  const auto& [node, base_tuple] = originations.front();
  if (!base_tuple.at(1).is_integer()) {
    throw InvalidArgument(
        "churn injection needs an integer-cost policy (PV or HLP)");
  }
  ndlog::Tuple bumped = base_tuple;
  bumped[1] = ndlog::Value::integer(base_tuple.at(1).as_integer() +
                                    options.churn.magnitude);
  for (std::int32_t event = 0; event < options.churn.events; ++event) {
    const net::Time when =
        options.churn.start + event * options.churn.interval;
    const bool up = event % 2 == 0;
    const ndlog::Tuple& retract = up ? base_tuple : bumped;
    const ndlog::Tuple& assert_tuple = up ? bumped : base_tuple;
    runtime.simulator().schedule(
        when, [&runtime, node = node, retract, assert_tuple]() {
          runtime.apply_delta(node, ndlog::Delta{"sig", retract, -1});
          runtime.apply_delta(node, ndlog::Delta{"sig", assert_tuple, +1});
        });
  }
}

}  // namespace

EmulationResult emulate_gpv(const algebra::RoutingAlgebra& algebra,
                            const topology::Topology& topology,
                            const EmulationOptions& options) {
  // Mechanism + policy: the GPV template with the algebra's functions.
  const ndlog::Program program = proto::gpv_program();
  ndlog::FunctionRegistry registry = ndlog::FunctionRegistry::with_builtins();
  register_policy_functions(algebra, registry);

  net::Simulator simulator(options.seed, options.host_profile,
                           options.stats_bucket);
  ndlog::RuntimeOptions runtime_options;
  runtime_options.batch_interval = options.batch_interval;
  runtime_options.batch_drift = options.batch_drift;
  runtime_options.tracked_relation = "localOpt";
  ndlog::Runtime runtime(simulator, program, &registry, runtime_options);

  for (const std::string& node : topology.nodes) {
    runtime.add_node(node);
  }
  for (const topology::TopoLink& link : topology.links) {
    runtime.add_link(link.u, link.v, link.net_config);
  }

  // Step 4: label facts for every directed link...
  for (const topology::TopoLink& link : topology.links) {
    runtime.insert_fact(link.u, "label",
                        {ndlog::Value::atom(link.u), ndlog::Value::atom(link.v),
                         to_ndlog(link.label_uv)});
    runtime.insert_fact(link.v, "label",
                        {ndlog::Value::atom(link.v), ndlog::Value::atom(link.u),
                         to_ndlog(link.label_vu)});
  }
  // ...and origination sig facts for one-hop paths to the destination.
  std::vector<std::pair<std::string, ndlog::Tuple>> originations;
  for (const topology::TopoLink& link : topology.links) {
    const auto originate = [&](const std::string& node,
                               const algebra::Value& label) {
      if (node == topology.destination) return;
      const auto sig = algebra.originate(label);
      if (!sig.has_value()) return;
      ndlog::Tuple tuple = {
          ndlog::Value::atom(node), to_ndlog(*sig),
          ndlog::Value::list({ndlog::Value::atom(node),
                              ndlog::Value::atom(topology.destination)})};
      originations.emplace_back(node, tuple);
      runtime.insert_fact(node, "sig", std::move(tuple));
    };
    if (link.v == topology.destination) originate(link.u, link.label_uv);
    if (link.u == topology.destination) originate(link.v, link.label_vu);
  }
  schedule_churn(runtime, options, originations);

  const ndlog::RunResult run = runtime.run(options.max_time);

  EmulationResult result;
  result.quiesced = run.quiesced;
  result.convergence_time = run.convergence_time;
  result.end_time = run.end_time;
  result.messages = run.messages;
  result.bytes = run.bytes;
  result.route_changes = run.tracked_changes;
  result.node_count = topology.nodes.size();
  result.stats_bucket = options.stats_bucket;

  const net::TrafficStats& stats = runtime.stats();
  result.bandwidth_series_mbps.reserve(stats.bucket_bytes().size());
  for (std::size_t bucket = 0; bucket < stats.bucket_bytes().size();
       ++bucket) {
    result.bandwidth_series_mbps.push_back(
        stats.average_node_bandwidth_mbps(bucket, topology.nodes.size()));
  }

  for (const std::string& node : topology.nodes) {
    for (const ndlog::Tuple& tuple :
         runtime.engine(node).relation_contents("localOpt")) {
      // localOpt(@U, D, S, P)
      std::vector<std::string> path;
      for (const ndlog::Value& hop : tuple.at(3).as_list()) {
        path.push_back(hop.as_atom());
      }
      result.best_routes[node] = {tuple.at(2).to_string(), std::move(path)};
    }
  }
  return result;
}

topology::Topology spp_topology(const spp::SppInstance& instance,
                                net::LinkConfig link_config) {
  topology::Topology topology;
  topology.name = "spp:" + instance.name();
  topology.destination = instance.destination();
  topology.nodes = instance.nodes();
  topology.nodes.push_back(instance.destination());
  for (const auto& [u, v] : instance.edges()) {
    topology.links.push_back(topology::TopoLink{
        u, v, algebra::Value::atom(spp::spp_label(u, v)),
        algebra::Value::atom(spp::spp_label(v, u)), link_config});
  }
  return topology;
}

EmulationResult emulate_spp(const spp::SppInstance& instance,
                            const EmulationOptions& options,
                            net::LinkConfig link_config) {
  const algebra::AlgebraPtr algebra = spp::algebra_from_spp(instance);
  return emulate_gpv(*algebra, spp_topology(instance, link_config), options);
}

EmulationResult emulate_hlp(const topology::Topology& topology,
                            std::int64_t hide_threshold,
                            const EmulationOptions& options) {
  if (hide_threshold < 0) {
    throw InvalidArgument("hide_threshold must be non-negative");
  }
  const ndlog::Program program = proto::hlp_program();
  ndlog::FunctionRegistry registry = ndlog::FunctionRegistry::with_builtins();

  // f_hlpHide(P, Dom): the fragmented path — own-domain marker, then the
  // markers already collected, then the destination (last element).
  registry.register_function(
      "f_hlpHide", 2, [](const std::vector<ndlog::Value>& args) {
        const auto& path = args[0].as_list();
        const std::string& marker = args[1].as_atom();
        std::vector<ndlog::Value> hidden;
        hidden.push_back(ndlog::Value::atom(marker));
        for (std::size_t i = 0; i < path.size(); ++i) {
          const ndlog::Value& hop = path[i];
          const bool is_marker =
              hop.is_atom() && hop.as_atom().starts_with("dom");
          const bool is_destination = i + 1 == path.size();
          if ((is_marker || is_destination) && hop != hidden.back()) {
            hidden.push_back(hop);
          }
        }
        return ndlog::Value::list(std::move(hidden));
      });
  // f_hideCost(C): quantise down to the hiding threshold.
  registry.register_function(
      "f_hideCost", 1,
      [hide_threshold](const std::vector<ndlog::Value>& args) {
        const std::int64_t cost = args[0].as_integer();
        if (hide_threshold <= 1) return ndlog::Value::integer(cost);
        return ndlog::Value::integer(cost - cost % hide_threshold);
      });

  net::Simulator simulator(options.seed, options.host_profile,
                           options.stats_bucket);
  ndlog::RuntimeOptions runtime_options;
  runtime_options.batch_interval = options.batch_interval;
  runtime_options.batch_drift = options.batch_drift;
  runtime_options.tracked_relation = "localOpt";
  ndlog::Runtime runtime(simulator, program, &registry, runtime_options);

  for (const std::string& node : topology.nodes) runtime.add_node(node);
  for (const topology::TopoLink& link : topology.links) {
    runtime.add_link(link.u, link.v, link.net_config);
  }

  for (const topology::TopoLink& link : topology.links) {
    const char* type =
        topology::is_cross_domain(topology, link) ? "inter" : "intra";
    runtime.insert_fact(link.u, "link",
                        {ndlog::Value::atom(link.u), ndlog::Value::atom(link.v),
                         to_ndlog(link.label_uv), ndlog::Value::atom(type)});
    runtime.insert_fact(link.v, "link",
                        {ndlog::Value::atom(link.v), ndlog::Value::atom(link.u),
                         to_ndlog(link.label_vu), ndlog::Value::atom(type)});
  }
  for (const auto& [node, marker] : topology.domain_of) {
    if (node == topology.destination) continue;
    runtime.insert_fact(
        node, "domain", {ndlog::Value::atom(node), ndlog::Value::atom(marker)});
  }
  // Origination: nodes adjacent to the destination start with a one-hop
  // route at the link's cost.
  std::vector<std::pair<std::string, ndlog::Tuple>> originations;
  for (const topology::TopoLink& link : topology.links) {
    const auto originate = [&](const std::string& node,
                               const algebra::Value& label) {
      if (node == topology.destination) return;
      ndlog::Tuple tuple = {
          ndlog::Value::atom(node), ndlog::Value::integer(label.as_integer()),
          ndlog::Value::list({ndlog::Value::atom(node),
                              ndlog::Value::atom(topology.destination)})};
      originations.emplace_back(node, tuple);
      runtime.insert_fact(node, "sig", std::move(tuple));
    };
    if (link.v == topology.destination) originate(link.u, link.label_uv);
    if (link.u == topology.destination) originate(link.v, link.label_vu);
  }
  schedule_churn(runtime, options, originations);

  const ndlog::RunResult run = runtime.run(options.max_time);

  EmulationResult result;
  result.quiesced = run.quiesced;
  result.convergence_time = run.convergence_time;
  result.end_time = run.end_time;
  result.messages = run.messages;
  result.bytes = run.bytes;
  result.route_changes = run.tracked_changes;
  result.node_count = topology.nodes.size();
  result.stats_bucket = options.stats_bucket;
  const net::TrafficStats& stats = runtime.stats();
  for (std::size_t bucket = 0; bucket < stats.bucket_bytes().size();
       ++bucket) {
    result.bandwidth_series_mbps.push_back(
        stats.average_node_bandwidth_mbps(bucket, topology.nodes.size()));
  }
  for (const std::string& node : topology.nodes) {
    for (const ndlog::Tuple& tuple :
         runtime.engine(node).relation_contents("localOpt")) {
      std::vector<std::string> path;
      for (const ndlog::Value& hop : tuple.at(3).as_list()) {
        path.push_back(hop.as_atom());
      }
      result.best_routes[node] = {tuple.at(2).to_string(), std::move(path)};
    }
  }
  return result;
}

}  // namespace fsr
