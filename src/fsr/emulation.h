// Emulation driver: runs a generated NDlog implementation of a policy
// configuration over a simulated network (the right-hand output of the
// paper's Figure 1, evaluated as in Section VI).
//
// Given an algebra and an annotated topology, the driver
//   1. registers the generated policy functions (Section V-B steps 1-3),
//   2. emits per-node label facts and origination sig facts (step 4),
//   3. executes GPV under the distributed runtime with advertisement
//      batching, and
//   4. reports convergence time, traffic, and the bandwidth-over-time
//      series the paper plots.
//
// SPP instances can be run directly via emulate_spp (their algebra and
// topology are derived automatically).
#ifndef FSR_FSR_EMULATION_H
#define FSR_FSR_EMULATION_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "algebra/algebra.h"
#include "ndlog/runtime.h"
#include "spp/spp.h"
#include "topology/topology.h"

namespace fsr {

/// Post-convergence churn injection: the origination cost at the egress
/// flaps by `magnitude` every `interval`, `events` times, starting at
/// `start`. Meaningful only for integer-cost policies (PV, HLP); it is
/// how the cost-hiding comparison of Figure 6 exercises HLP-CH (small
/// internal cost changes that hiding suppresses across domains).
struct ChurnSpec {
  std::int32_t events = 0;  // 0 disables churn
  net::Time start = 30 * net::k_second;
  net::Time interval = 2 * net::k_second;
  std::int64_t magnitude = 2;
};

struct EmulationOptions {
  net::Time batch_interval = net::k_second;  // paper: 1 s advertisement batch
  /// Advertisement-timer drift as a fraction of the batch interval (see
  /// ndlog::RuntimeOptions::batch_drift).
  double batch_drift = 0.05;
  net::Time max_time = 120 * net::k_second;  // cut-off for divergent runs
  net::HostProfile host_profile = net::HostProfile::simulation();
  std::uint64_t seed = 1;
  net::Time stats_bucket = 10 * net::k_millisecond;
  ChurnSpec churn;
};

struct EmulationResult {
  bool quiesced = false;
  net::Time convergence_time = 0;
  net::Time end_time = 0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t route_changes = 0;  // localOpt deltas across all nodes
  std::size_t node_count = 0;
  /// Average per-node bandwidth (MBps) per stats bucket — the Figure 5/6
  /// series.
  std::vector<double> bandwidth_series_mbps;
  net::Time stats_bucket = 0;
  /// Final best route per node: node -> (signature text, path).
  std::map<std::string, std::pair<std::string, std::vector<std::string>>>
      best_routes;
};

/// Runs GPV with `algebra` over `topology`.
EmulationResult emulate_gpv(const algebra::RoutingAlgebra& algebra,
                            const topology::Topology& topology,
                            const EmulationOptions& options = {});

/// Runs GPV for an SPP instance (algebra from Section III-B; links default
/// to the paper's 100 Mbps / 10 ms).
EmulationResult emulate_spp(const spp::SppInstance& instance,
                            const EmulationOptions& options = {},
                            net::LinkConfig link_config = {});

/// Derives the policy-annotated topology of an SPP instance (unique labels
/// per link direction, Section III-B).
topology::Topology spp_topology(const spp::SppInstance& instance,
                                net::LinkConfig link_config = {});

/// Runs the HLP mechanism (Section VI-D) over a domain topology produced
/// by topology::generate_hlp_domains. `hide_threshold` 0 disables cost
/// hiding (plain HLP); the paper's HLP-CH uses 5. Link labels must be
/// integer costs.
EmulationResult emulate_hlp(const topology::Topology& topology,
                            std::int64_t hide_threshold,
                            const EmulationOptions& options = {});

}  // namespace fsr

#endif  // FSR_FSR_EMULATION_H
