// Automated safety analysis (paper Section IV).
//
// Given a routing algebra, the analyzer encodes its symbolic constraints
// as integer comparisons (the three-step recipe of Section IV-B), renders
// them as a Yices-style script, runs the solver, and maps the outcome back
// to the policy level:
//
//   * sat   -> the algebra is strictly monotone; by Sobrinho's theorem the
//              path-vector protocol implementing it converges -> SAFE,
//              with the solver's model as a witness ranking;
//   * unsat -> not provably safe; the minimal unsatisfiable core is
//              translated back into the offending policy constraints.
//
// Lexical products follow the composition rule of Section IV-B: the
// product is safe if some factor is strictly monotone and every factor
// before it is (at least) monotone.
//
// Strict monotonicity is sufficient, not necessary: a "not provably safe"
// verdict may be a false positive (the paper's own caveat), which is why
// the verdict enum has no "divergent" member.
#ifndef FSR_FSR_SAFETY_ANALYZER_H
#define FSR_FSR_SAFETY_ANALYZER_H

#include <cstdint>
#include <string>
#include <vector>

#include "algebra/algebra.h"
#include "smt/context.h"

namespace fsr {

class IncrementalSafetySession;

enum class SafetyVerdict { safe, not_provably_safe };

enum class MonotonicityMode { strict, plain };

/// Where a generated constraint came from, so unsat cores read as policy
/// diagnostics rather than solver internals.
struct ConstraintProvenance {
  enum class Kind { preference, monotonicity };
  Kind kind = Kind::preference;
  std::string description;  // e.g. "rank at a: a-b-e-0 < a-d-0"
  std::string constraint;   // e.g. "(< s3 s4)"
};

/// Result of one monotonicity check of one (leaf) algebra.
struct MonotonicityReport {
  std::string algebra_name;
  MonotonicityMode mode = MonotonicityMode::strict;
  bool holds = false;
  smt::Model model;  // witness ranking when holds
  std::vector<ConstraintProvenance> unsat_core;  // when !holds
  std::size_t preference_constraint_count = 0;
  std::size_t monotonicity_constraint_count = 0;
  double solve_time_ms = 0.0;
  std::string yices_script;  // the emitted textual artifact
};

/// Result of a full safety analysis (possibly across product factors).
struct SafetyReport {
  SafetyVerdict verdict = SafetyVerdict::not_provably_safe;
  std::string narrative;  // one-paragraph human explanation
  /// Per-factor checks in evaluation order. For a leaf algebra this holds
  /// the strict check, preceded by the plain check when the strict one
  /// fails (mirroring the paper's guideline-A walkthrough).
  std::vector<MonotonicityReport> checks;

  /// Total solver time across all checks.
  double total_solve_time_ms() const;
  /// The unsat core of the final failing check, if any.
  const std::vector<ConstraintProvenance>* failing_core() const;
};

/// Thread-compatibility: a SafetyAnalyzer holds no mutable state — analyze
/// and check_monotonicity construct their solver session (smt::Context or
/// smt::YicesFrontend, both single-thread objects) per call, and
/// RoutingAlgebra implementations are immutable — so one analyzer instance
/// MAY be shared by concurrent callers, and distinct instances are fully
/// independent. The campaign runner still allocates one analyzer per
/// worker to keep the contract explicit should Options ever grow state
/// (audited 2026-07; see campaign/runner.cpp).
class SafetyAnalyzer {
 public:
  struct Options {
    /// Route the constraints through the textual Yices pipeline (emit ->
    /// parse -> solve), exactly as the original toolkit drives Yices. When
    /// false the solver API is called directly; both paths must agree (a
    /// property the test suite checks).
    bool via_textual_pipeline = true;
  };

  SafetyAnalyzer() = default;
  explicit SafetyAnalyzer(Options options) : options_(options) {}

  /// Full analysis with lexical-product decomposition.
  SafetyReport analyze(const algebra::RoutingAlgebra& algebra) const;

  /// Single monotonicity check of one (leaf) algebra.
  MonotonicityReport check_monotonicity(const algebra::RoutingAlgebra& algebra,
                                        MonotonicityMode mode) const;

  /// Renders the Section IV-B encoding of `spec` as a Yices-style script.
  static std::string emit_yices_script(const algebra::SymbolicSpec& spec,
                                       MonotonicityMode mode);

  /// Incremental entry point: encodes `algebra`'s symbolic spec once into a
  /// session whose solver state is shared across many near-identical
  /// re-checks — the repair engine's workhorse (see
  /// fsr/incremental_session.h, which callers must include for the complete
  /// type). `incremental = false` selects the from-scratch ablation path.
  static IncrementalSafetySession open_incremental(
      const algebra::RoutingAlgebra& algebra, MonotonicityMode mode,
      bool incremental = true);

 private:
  Options options_;
};

}  // namespace fsr

#endif  // FSR_FSR_SAFETY_ANALYZER_H
