// Incremental safety sessions: one solver session, many re-checks.
//
// A session encodes a symbolic spec ONCE (Section IV-B, same encoding the
// SafetyAnalyzer emits) and then answers a stream of "what if" queries over
// that encoding: check the fixed constraints plus a chosen subset of the
// retractable ("variable") ones plus a handful of per-query extras. The
// underlying smt::Context keeps its incremental difference-engine state
// alive between queries, so each re-check costs only the delta instead of
// a full rebuild — the property the counterexample-guided repair loop
// (src/repair/) depends on to stay fast.
//
// Thread-compatibility: an IncrementalSafetySession owns a mutable
// smt::Context and must be confined to one thread at a time, exactly like
// the Context it wraps (see smt/context.h). Distinct sessions are fully
// independent — no shared static state — so the campaign runner's
// one-solver-session-per-worker invariant extends to repair unchanged.
#ifndef FSR_FSR_INCREMENTAL_SESSION_H
#define FSR_FSR_INCREMENTAL_SESSION_H

#include <cstdint>
#include <string>
#include <vector>

#include "algebra/algebra.h"
#include "fsr/constraint_encoder.h"
#include "fsr/safety_analyzer.h"
#include "smt/context.h"

namespace fsr {

class IncrementalSafetySession {
 public:
  struct Options {
    /// When false, every check() solves from scratch via
    /// Context::check_subset — the ablation path bench_repair measures the
    /// incremental engine against.
    bool incremental = true;
    /// When false, sat results carry no witness model — the repair loop
    /// branches on the status alone, and skipping the model saves an
    /// O(signatures) map build per re-check (incremental path only).
    bool extract_models = true;
  };

  /// An extra constraint asserted for the duration of one check, phrased
  /// over ORIGINAL signature names (the session translates to solver
  /// symbols). Repair candidates use these for merged ranking pairs and
  /// relaxed preferences.
  struct Extra {
    algebra::PrefRel rel = algebra::PrefRel::strictly_better;
    std::string lhs;
    std::string rhs;
    std::string label;
  };

  struct Result {
    /// sat == the checked constraint set is strictly monotone (safe for
    /// the session's mode).
    bool holds = false;
    /// Indices (into the base encoding) of the minimal unsat core.
    std::vector<std::size_t> core;
    /// Indices (into this check's `extras` argument) that are also in the
    /// core — a counterexample can run through constraints the candidate
    /// itself introduced, and callers must be able to branch on those too.
    std::vector<std::size_t> extra_core;
    smt::Model model;  // witness when holds
  };

  IncrementalSafetySession(const algebra::SymbolicSpec& spec,
                           MonotonicityMode mode)
      : IncrementalSafetySession(spec, mode, Options()) {}
  IncrementalSafetySession(const algebra::SymbolicSpec& spec,
                           MonotonicityMode mode, Options options);

  IncrementalSafetySession(IncrementalSafetySession&&) = default;
  IncrementalSafetySession& operator=(IncrementalSafetySession&&) = default;

  std::size_t constraint_count() const noexcept {
    return encoding_.provenance.size();
  }
  const ConstraintProvenance& provenance(std::size_t index) const;
  /// Structural shape of constraint `index` (original signature names);
  /// repair interns these to diff candidate configurations.
  const encoding::RelationShape& shape(std::size_t index) const;

  /// Moves base constraints into the variable (retractable) set: they stop
  /// being implicitly active and participate in a check only when listed in
  /// `keep`. Growing the variable set invalidates the shared engine base
  /// once, so callers batch their calls per search phase.
  void make_variable(const std::vector<std::size_t>& indices);
  bool is_variable(std::size_t index) const;

  /// Checks fixed constraints + (variable constraints listed in `keep`) +
  /// `extras`. Indices in `keep` must have been passed to make_variable.
  Result check(const std::vector<std::size_t>& keep,
               const std::vector<Extra>& extras = {});

  std::uint64_t check_count() const noexcept { return checks_; }
  std::uint64_t engine_rebuilds() const noexcept {
    return context_.incremental_rebuild_count();
  }
  const smt::Context& context() const noexcept { return context_; }

 private:
  Options options_;
  encoding::SymbolTable symbols_;
  encoding::Encoding encoding_;
  smt::Context context_;
  std::vector<smt::AssertionId> ids_;  // ids_[i] asserts encoding i
  std::vector<char> variable_;
  std::uint64_t checks_ = 0;
};

}  // namespace fsr

#endif  // FSR_FSR_INCREMENTAL_SESSION_H
