#include "fsr/incremental_session.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "smt/sexpr.h"
#include "smt/yices_frontend.h"
#include "util/error.h"

namespace fsr {
namespace {

smt::Term extra_term(const encoding::SymbolTable& symbols,
                     const IncrementalSafetySession::Extra& extra) {
  const smt::Term lhs = smt::Term::variable(symbols.symbol(extra.lhs));
  const smt::Term rhs = smt::Term::variable(symbols.symbol(extra.rhs));
  switch (extra.rel) {
    case algebra::PrefRel::strictly_better:
      return smt::Term::lt(lhs, rhs);
    case algebra::PrefRel::equal:
      return smt::Term::eq(lhs, rhs);
    case algebra::PrefRel::better_or_equal:
      return smt::Term::le(lhs, rhs);
  }
  return smt::Term::lt(lhs, rhs);
}

}  // namespace

IncrementalSafetySession::IncrementalSafetySession(
    const algebra::SymbolicSpec& spec, MonotonicityMode mode, Options options)
    : options_(options),
      symbols_(spec.signatures),
      encoding_(encoding::encode(spec, mode, symbols_)) {
  for (const std::string& symbol : symbols_.symbols()) {
    context_.declare_variable(symbol);
  }
  // Assert in encoding order on a fresh context, so ids_[i] == i and core
  // ids map straight back to encoding indices (same invariant the
  // SafetyAnalyzer's direct pipeline relies on).
  ids_.reserve(encoding_.assert_lines.size());
  for (const std::string& line : encoding_.assert_lines) {
    ids_.push_back(context_.assert_term(
        smt::parse_yices_term(smt::parse_sexpr(line)), line));
  }
  variable_.assign(ids_.size(), 0);
}

const ConstraintProvenance& IncrementalSafetySession::provenance(
    std::size_t index) const {
  if (index >= encoding_.provenance.size()) {
    throw InvalidArgument("session: constraint index out of range");
  }
  return encoding_.provenance[index];
}

const encoding::RelationShape& IncrementalSafetySession::shape(
    std::size_t index) const {
  if (index >= encoding_.shapes.size()) {
    throw InvalidArgument("session: constraint index out of range");
  }
  return encoding_.shapes[index];
}

void IncrementalSafetySession::make_variable(
    const std::vector<std::size_t>& indices) {
  for (const std::size_t index : indices) {
    if (index >= ids_.size()) {
      throw InvalidArgument("session: constraint index out of range");
    }
    if (variable_[index] != 0) continue;
    context_.retract(ids_[index]);
    variable_[index] = 1;
  }
}

bool IncrementalSafetySession::is_variable(std::size_t index) const {
  if (index >= variable_.size()) {
    throw InvalidArgument("session: constraint index out of range");
  }
  return variable_[index] != 0;
}

IncrementalSafetySession::Result IncrementalSafetySession::check(
    const std::vector<std::size_t>& keep, const std::vector<Extra>& extras) {
  ++checks_;
  static obs::Counter& check_counter = obs::registry().counter("smt.checks");
  check_counter.add(1);
  obs::Span span("smt.check");
  span.arg("keep", keep.size());
  span.arg("extras", extras.size());
  std::vector<smt::AssertionId> kept_ids;
  kept_ids.reserve(keep.size());
  for (const std::size_t index : keep) {
    if (index >= ids_.size()) {
      throw InvalidArgument("session: constraint index out of range");
    }
    if (variable_[index] == 0) {
      throw InvalidArgument(
          "session: keep lists a fixed constraint; call make_variable first");
    }
    kept_ids.push_back(ids_[index]);
  }

  context_.push();
  smt::CheckResult raw;
  std::vector<smt::AssertionId> extra_ids;
  extra_ids.reserve(extras.size());
  try {
    for (const Extra& extra : extras) {
      extra_ids.push_back(context_.assert_term(
          extra_term(symbols_, extra),
          extra.label.empty() ? std::string{} : extra.label));
    }
    if (options_.incremental) {
      raw = context_.check(kept_ids, options_.extract_models);
    } else {
      // Ablation path: one flat from-scratch solve over the same set.
      std::vector<smt::AssertionId> subset;
      subset.reserve(ids_.size() + extra_ids.size());
      for (std::size_t i = 0; i < ids_.size(); ++i) {
        if (variable_[i] == 0) subset.push_back(ids_[i]);
      }
      subset.insert(subset.end(), kept_ids.begin(), kept_ids.end());
      subset.insert(subset.end(), extra_ids.begin(), extra_ids.end());
      raw = context_.check_subset(subset);
    }
  } catch (...) {
    context_.pop();
    throw;
  }
  context_.pop();

  Result result;
  result.holds = raw.status == smt::Status::sat;
  if (result.holds) {
    if (options_.extract_models) {
      for (const auto& [symbol, value] : raw.model.values) {
        result.model.values[symbols_.original(symbol)] = value;
      }
    }
  } else {
    for (const smt::AssertionId id : raw.unsat_core) {
      // Base ids are exactly 0..constraint_count-1 (fresh context, asserted
      // first); anything else is one of this check's extras.
      if (id >= 0 && static_cast<std::size_t>(id) < ids_.size()) {
        result.core.push_back(static_cast<std::size_t>(id));
        continue;
      }
      const auto it = std::find(extra_ids.begin(), extra_ids.end(), id);
      if (it != extra_ids.end()) {
        result.extra_core.push_back(
            static_cast<std::size_t>(it - extra_ids.begin()));
      }
    }
  }
  return result;
}

}  // namespace fsr
