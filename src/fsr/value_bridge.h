// Conversions between algebra values and NDlog runtime values.
//
// Algebra pairs (lexical products) are encoded as two-element NDlog lists,
// so composed signatures travel through the generated implementation
// without special cases.
#ifndef FSR_FSR_VALUE_BRIDGE_H
#define FSR_FSR_VALUE_BRIDGE_H

#include "algebra/value.h"
#include "ndlog/value.h"

namespace fsr {

ndlog::Value to_ndlog(const algebra::Value& value);
algebra::Value to_algebra(const ndlog::Value& value);

}  // namespace fsr

#endif  // FSR_FSR_VALUE_BRIDGE_H
