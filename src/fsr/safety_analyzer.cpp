#include "fsr/safety_analyzer.h"

#include <cctype>
#include <chrono>
#include <map>

#include "smt/yices_frontend.h"
#include "util/error.h"

namespace fsr {
namespace {

/// Signature names can contain characters that are not valid solver
/// symbols (SPP signatures look like "r(a-b-e-0)"), so the encoder works
/// over sanitized symbols and keeps a bidirectional mapping.
class SymbolTable {
 public:
  explicit SymbolTable(const std::vector<std::string>& names) {
    for (const std::string& name : names) {
      std::string symbol;
      for (const char c : name) {
        symbol.push_back(
            std::isalnum(static_cast<unsigned char>(c)) != 0 ? c : '_');
      }
      if (symbol.empty() ||
          std::isdigit(static_cast<unsigned char>(symbol.front())) != 0) {
        symbol.insert(symbol.begin(), 's');
        symbol.insert(symbol.begin() + 1, '_');
      }
      while (symbol_to_name_.contains(symbol)) symbol.push_back('_');
      symbol_to_name_.emplace(symbol, name);
      name_to_symbol_.emplace(name, symbol);
      symbols_.push_back(symbol);
    }
  }

  const std::string& symbol(const std::string& name) const {
    const auto it = name_to_symbol_.find(name);
    if (it == name_to_symbol_.end()) {
      throw InvalidArgument("symbolic spec references unknown signature '" +
                            name + "'");
    }
    return it->second;
  }

  const std::string& original(const std::string& symbol) const {
    return symbol_to_name_.at(symbol);
  }

  const std::vector<std::string>& symbols() const noexcept { return symbols_; }

 private:
  std::map<std::string, std::string> symbol_to_name_;
  std::map<std::string, std::string> name_to_symbol_;
  std::vector<std::string> symbols_;
};

/// The constraints of one encoding, in assertion order (the order defines
/// the AssertionId <-> provenance correspondence for both pipelines).
struct Encoding {
  std::vector<ConstraintProvenance> provenance;
  std::vector<std::string> assert_lines;  // "(< a b)" over sanitized symbols
  std::vector<std::pair<std::string, std::string>> declarations;  // sym
};

const char* relation_spelling(algebra::PrefRel rel) {
  switch (rel) {
    case algebra::PrefRel::strictly_better:
      return "<";
    case algebra::PrefRel::equal:
      return "=";
    case algebra::PrefRel::better_or_equal:
      return "<=";
  }
  return "<";
}

Encoding encode(const algebra::SymbolicSpec& spec, MonotonicityMode mode,
                const SymbolTable& symbols) {
  Encoding enc;
  const char* mono_rel = mode == MonotonicityMode::strict ? "<" : "<=";

  // Step 2: one constraint per declared preference.
  for (const auto& pref : spec.preferences) {
    const std::string line = "(" + std::string(relation_spelling(pref.rel)) +
                             " " + symbols.symbol(pref.lhs) + " " +
                             symbols.symbol(pref.rhs) + ")";
    enc.assert_lines.push_back(line);
    enc.provenance.push_back(
        ConstraintProvenance{ConstraintProvenance::Kind::preference,
                             pref.provenance, line});
  }
  // Step 3: one (strict-)monotonicity constraint per combined (+) entry.
  for (const auto& ext : spec.extensions) {
    const std::string line = "(" + std::string(mono_rel) + " " +
                             symbols.symbol(ext.from_sig) + " " +
                             symbols.symbol(ext.to_sig) + ")";
    enc.assert_lines.push_back(line);
    enc.provenance.push_back(
        ConstraintProvenance{ConstraintProvenance::Kind::monotonicity,
                             ext.provenance, line});
  }
  // Closed-form algebras: universally quantified templates.
  for (const auto& tmpl : spec.additive_templates) {
    const std::string line = "(forall (s::Sig) (" + std::string(mono_rel) +
                             " s (+ s " + std::to_string(tmpl.delta) + ")))";
    enc.assert_lines.push_back(line);
    enc.provenance.push_back(
        ConstraintProvenance{ConstraintProvenance::Kind::monotonicity,
                             tmpl.provenance, line});
  }
  return enc;
}

std::string render_script(const algebra::SymbolicSpec& spec,
                          MonotonicityMode mode, const SymbolTable& symbols,
                          const Encoding& enc) {
  std::string script;
  script += ";; FSR safety encoding for algebra '" + spec.algebra_name + "'\n";
  script += ";; mode: ";
  script += (mode == MonotonicityMode::strict ? "strict monotonicity"
                                              : "monotonicity");
  script += "\n(define-type Sig (subtype (n::nat) (> n 0)))\n";
  for (const std::string& symbol : symbols.symbols()) {
    script += "(define " + symbol + "::Sig)\n";
  }
  bool wrote_pref_banner = false;
  bool wrote_mono_banner = false;
  for (std::size_t i = 0; i < enc.assert_lines.size(); ++i) {
    if (enc.provenance[i].kind == ConstraintProvenance::Kind::preference &&
        !wrote_pref_banner) {
      script += ";; route preference constraints\n";
      wrote_pref_banner = true;
    }
    if (enc.provenance[i].kind == ConstraintProvenance::Kind::monotonicity &&
        !wrote_mono_banner) {
      script += (mode == MonotonicityMode::strict
                     ? ";; strict monotonicity constraints\n"
                     : ";; monotonicity constraints\n");
      wrote_mono_banner = true;
    }
    script += "(assert " + enc.assert_lines[i] + ")\n";
  }
  script += "(check)\n";
  return script;
}

}  // namespace

double SafetyReport::total_solve_time_ms() const {
  double total = 0.0;
  for (const MonotonicityReport& check : checks) total += check.solve_time_ms;
  return total;
}

const std::vector<ConstraintProvenance>* SafetyReport::failing_core() const {
  if (checks.empty() || checks.back().holds) return nullptr;
  return &checks.back().unsat_core;
}

std::string SafetyAnalyzer::emit_yices_script(
    const algebra::SymbolicSpec& spec, MonotonicityMode mode) {
  const SymbolTable symbols(spec.signatures);
  const Encoding enc = encode(spec, mode, symbols);
  return render_script(spec, mode, symbols, enc);
}

MonotonicityReport SafetyAnalyzer::check_monotonicity(
    const algebra::RoutingAlgebra& algebra, MonotonicityMode mode) const {
  const algebra::SymbolicSpec spec = algebra.symbolic();
  const SymbolTable symbols(spec.signatures);
  const Encoding enc = encode(spec, mode, symbols);

  MonotonicityReport report;
  report.algebra_name = spec.algebra_name;
  report.mode = mode;
  report.yices_script = render_script(spec, mode, symbols, enc);
  for (const auto& prov : enc.provenance) {
    if (prov.kind == ConstraintProvenance::Kind::preference) {
      ++report.preference_constraint_count;
    } else {
      ++report.monotonicity_constraint_count;
    }
  }

  const auto start = std::chrono::steady_clock::now();
  smt::Status status = smt::Status::sat;
  smt::Model raw_model;
  std::vector<smt::AssertionId> core_ids;

  if (options_.via_textual_pipeline) {
    smt::YicesFrontend frontend;
    const smt::ScriptResult run = frontend.run_script(report.yices_script);
    const smt::CheckOutcome& outcome = run.single_check();
    status = outcome.status;
    raw_model = outcome.model;
    core_ids = outcome.core_ids;
  } else {
    smt::Context ctx;
    for (const std::string& symbol : symbols.symbols()) {
      ctx.declare_variable(symbol);
    }
    // Assert in encoding order so AssertionIds stay aligned with the
    // provenance vector, exactly as in the textual pipeline.
    for (const std::string& line : enc.assert_lines) {
      ctx.assert_term(smt::parse_yices_term(smt::parse_sexpr(line)), line);
    }
    const smt::CheckResult check = ctx.check();
    status = check.status;
    raw_model = check.model;
    core_ids = check.unsat_core;
  }
  const auto stop = std::chrono::steady_clock::now();
  report.solve_time_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();

  if (status == smt::Status::sat) {
    report.holds = true;
    for (const auto& [symbol, value] : raw_model.values) {
      report.model.values[symbols.original(symbol)] = value;
    }
  } else {
    report.holds = false;
    for (const smt::AssertionId id : core_ids) {
      const auto index = static_cast<std::size_t>(id);
      if (index < enc.provenance.size()) {
        report.unsat_core.push_back(enc.provenance[index]);
      }
    }
  }
  return report;
}

SafetyReport SafetyAnalyzer::analyze(
    const algebra::RoutingAlgebra& algebra) const {
  SafetyReport report;
  const std::vector<const algebra::RoutingAlgebra*> factors =
      algebra.lexical_factors();

  if (factors.empty()) {
    // Leaf algebra: strict check, then (on failure) the plain check that
    // tells the user whether a tie-breaking composition would rescue it.
    MonotonicityReport strict =
        check_monotonicity(algebra, MonotonicityMode::strict);
    const bool strict_holds = strict.holds;
    report.checks.push_back(std::move(strict));
    if (strict_holds) {
      report.verdict = SafetyVerdict::safe;
      report.narrative = "Algebra '" + algebra.name() +
                         "' is strictly monotonic; by Theorem 4.1 "
                         "(Sobrinho) the path-vector protocol converges.";
      return report;
    }
    MonotonicityReport plain =
        check_monotonicity(algebra, MonotonicityMode::plain);
    const bool plain_holds = plain.holds;
    report.checks.push_back(std::move(plain));
    report.verdict = SafetyVerdict::not_provably_safe;
    report.narrative =
        plain_holds
            ? "Algebra '" + algebra.name() +
                  "' is monotonic but not strictly monotonic: not provably "
                  "safe on its own. Composing it (lexical product) with a "
                  "strictly monotonic tie-breaker such as shortest hop-count "
                  "yields a provably safe policy (Section IV-B)."
            : "Algebra '" + algebra.name() +
                  "' is not even monotonic; the unsat core identifies the "
                  "conflicting policy constraints.";
    return report;
  }

  // Lexical product: factors in significance order. Safe as soon as one
  // factor is strictly monotone with all earlier factors monotone.
  for (std::size_t i = 0; i < factors.size(); ++i) {
    const algebra::RoutingAlgebra& factor = *factors[i];
    MonotonicityReport strict =
        check_monotonicity(factor, MonotonicityMode::strict);
    const bool strict_holds = strict.holds;
    report.checks.push_back(std::move(strict));
    if (strict_holds) {
      report.verdict = SafetyVerdict::safe;
      report.narrative =
          "Lexical product '" + algebra.name() + "': factor '" +
          factor.name() +
          "' is strictly monotonic and every earlier factor is monotonic; "
          "the composition is strictly monotonic (Section IV-B), hence safe.";
      return report;
    }
    MonotonicityReport plain =
        check_monotonicity(factor, MonotonicityMode::plain);
    const bool plain_holds = plain.holds;
    report.checks.push_back(std::move(plain));
    if (!plain_holds) {
      report.verdict = SafetyVerdict::not_provably_safe;
      report.narrative = "Lexical product '" + algebra.name() + "': factor '" +
                         factor.name() +
                         "' is not monotonic; the composition is not "
                         "provably safe.";
      return report;
    }
  }
  report.verdict = SafetyVerdict::not_provably_safe;
  report.narrative =
      "Lexical product '" + algebra.name() +
      "': every factor is monotonic but none is strictly monotonic; ties "
      "can persist, so the composition is not provably safe.";
  return report;
}

}  // namespace fsr
