#include "fsr/safety_analyzer.h"

#include <chrono>

#include "fsr/constraint_encoder.h"
#include "fsr/incremental_session.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "smt/yices_frontend.h"
#include "util/error.h"

namespace fsr {

using encoding::Encoding;
using encoding::SymbolTable;
using encoding::encode;
using encoding::render_script;

double SafetyReport::total_solve_time_ms() const {
  double total = 0.0;
  for (const MonotonicityReport& check : checks) total += check.solve_time_ms;
  return total;
}

const std::vector<ConstraintProvenance>* SafetyReport::failing_core() const {
  if (checks.empty() || checks.back().holds) return nullptr;
  return &checks.back().unsat_core;
}

std::string SafetyAnalyzer::emit_yices_script(
    const algebra::SymbolicSpec& spec, MonotonicityMode mode) {
  const SymbolTable symbols(spec.signatures);
  const Encoding enc = encode(spec, mode, symbols);
  return render_script(spec, mode, symbols, enc);
}

IncrementalSafetySession SafetyAnalyzer::open_incremental(
    const algebra::RoutingAlgebra& algebra, MonotonicityMode mode,
    bool incremental) {
  IncrementalSafetySession::Options options;
  options.incremental = incremental;
  return IncrementalSafetySession(algebra.symbolic(), mode, options);
}

MonotonicityReport SafetyAnalyzer::check_monotonicity(
    const algebra::RoutingAlgebra& algebra, MonotonicityMode mode) const {
  const algebra::SymbolicSpec spec = algebra.symbolic();
  const SymbolTable symbols(spec.signatures);
  const Encoding enc = encode(spec, mode, symbols);

  MonotonicityReport report;
  report.algebra_name = spec.algebra_name;
  report.mode = mode;
  report.yices_script = render_script(spec, mode, symbols, enc);
  for (const auto& prov : enc.provenance) {
    if (prov.kind == ConstraintProvenance::Kind::preference) {
      ++report.preference_constraint_count;
    } else {
      ++report.monotonicity_constraint_count;
    }
  }

  const auto start = std::chrono::steady_clock::now();
  smt::Status status = smt::Status::sat;
  smt::Model raw_model;
  std::vector<smt::AssertionId> core_ids;

  if (options_.via_textual_pipeline) {
    smt::YicesFrontend frontend;
    const smt::ScriptResult run = frontend.run_script(report.yices_script);
    const smt::CheckOutcome& outcome = run.single_check();
    status = outcome.status;
    raw_model = outcome.model;
    core_ids = outcome.core_ids;
  } else {
    smt::Context ctx;
    for (const std::string& symbol : symbols.symbols()) {
      ctx.declare_variable(symbol);
    }
    // Assert in encoding order so AssertionIds stay aligned with the
    // provenance vector, exactly as in the textual pipeline.
    for (const std::string& line : enc.assert_lines) {
      ctx.assert_term(smt::parse_yices_term(smt::parse_sexpr(line)), line);
    }
    const smt::CheckResult check = ctx.check();
    status = check.status;
    raw_model = check.model;
    core_ids = check.unsat_core;
  }
  const auto stop = std::chrono::steady_clock::now();
  report.solve_time_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();

  if (status == smt::Status::sat) {
    report.holds = true;
    for (const auto& [symbol, value] : raw_model.values) {
      report.model.values[symbols.original(symbol)] = value;
    }
  } else {
    report.holds = false;
    for (const smt::AssertionId id : core_ids) {
      const auto index = static_cast<std::size_t>(id);
      if (index < enc.provenance.size()) {
        report.unsat_core.push_back(enc.provenance[index]);
      }
    }
  }
  return report;
}

SafetyReport SafetyAnalyzer::analyze(
    const algebra::RoutingAlgebra& algebra) const {
  static obs::Counter& analyze_counter =
      obs::registry().counter("safety.analyses");
  analyze_counter.add(1);
  obs::Span span("safety.analyze");
  span.arg("algebra", algebra.name());
  SafetyReport report;
  const std::vector<const algebra::RoutingAlgebra*> factors =
      algebra.lexical_factors();

  if (factors.empty()) {
    // Leaf algebra: strict check, then (on failure) the plain check that
    // tells the user whether a tie-breaking composition would rescue it.
    MonotonicityReport strict =
        check_monotonicity(algebra, MonotonicityMode::strict);
    const bool strict_holds = strict.holds;
    report.checks.push_back(std::move(strict));
    if (strict_holds) {
      report.verdict = SafetyVerdict::safe;
      report.narrative = "Algebra '" + algebra.name() +
                         "' is strictly monotonic; by Theorem 4.1 "
                         "(Sobrinho) the path-vector protocol converges.";
      return report;
    }
    MonotonicityReport plain =
        check_monotonicity(algebra, MonotonicityMode::plain);
    const bool plain_holds = plain.holds;
    report.checks.push_back(std::move(plain));
    report.verdict = SafetyVerdict::not_provably_safe;
    report.narrative =
        plain_holds
            ? "Algebra '" + algebra.name() +
                  "' is monotonic but not strictly monotonic: not provably "
                  "safe on its own. Composing it (lexical product) with a "
                  "strictly monotonic tie-breaker such as shortest hop-count "
                  "yields a provably safe policy (Section IV-B)."
            : "Algebra '" + algebra.name() +
                  "' is not even monotonic; the unsat core identifies the "
                  "conflicting policy constraints.";
    return report;
  }

  // Lexical product: factors in significance order. Safe as soon as one
  // factor is strictly monotone with all earlier factors monotone.
  for (std::size_t i = 0; i < factors.size(); ++i) {
    const algebra::RoutingAlgebra& factor = *factors[i];
    MonotonicityReport strict =
        check_monotonicity(factor, MonotonicityMode::strict);
    const bool strict_holds = strict.holds;
    report.checks.push_back(std::move(strict));
    if (strict_holds) {
      report.verdict = SafetyVerdict::safe;
      report.narrative =
          "Lexical product '" + algebra.name() + "': factor '" +
          factor.name() +
          "' is strictly monotonic and every earlier factor is monotonic; "
          "the composition is strictly monotonic (Section IV-B), hence safe.";
      return report;
    }
    MonotonicityReport plain =
        check_monotonicity(factor, MonotonicityMode::plain);
    const bool plain_holds = plain.holds;
    report.checks.push_back(std::move(plain));
    if (!plain_holds) {
      report.verdict = SafetyVerdict::not_provably_safe;
      report.narrative = "Lexical product '" + algebra.name() + "': factor '" +
                         factor.name() +
                         "' is not monotonic; the composition is not "
                         "provably safe.";
      return report;
    }
  }
  report.verdict = SafetyVerdict::not_provably_safe;
  report.narrative =
      "Lexical product '" + algebra.name() +
      "': every factor is monotonic but none is strictly monotonic; ties "
      "can persist, so the composition is not provably safe.";
  return report;
}

}  // namespace fsr
