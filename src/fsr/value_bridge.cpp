#include "fsr/value_bridge.h"

#include "util/error.h"

namespace fsr {

ndlog::Value to_ndlog(const algebra::Value& value) {
  switch (value.kind()) {
    case algebra::ValueKind::integer:
      return ndlog::Value::integer(value.as_integer());
    case algebra::ValueKind::atom:
      return ndlog::Value::atom(value.as_atom());
    case algebra::ValueKind::pair:
      return ndlog::Value::list(
          {to_ndlog(value.first()), to_ndlog(value.second())});
  }
  throw InvalidArgument("unknown algebra value kind");
}

algebra::Value to_algebra(const ndlog::Value& value) {
  switch (value.kind()) {
    case ndlog::ValueKind::integer:
      return algebra::Value::integer(value.as_integer());
    case ndlog::ValueKind::atom:
      return algebra::Value::atom(value.as_atom());
    case ndlog::ValueKind::list: {
      const auto& items = value.as_list();
      if (items.size() != 2) {
        throw InvalidArgument(
            "only two-element lists convert to algebra pairs, got " +
            value.to_string());
      }
      return algebra::Value::pair(to_algebra(items[0]), to_algebra(items[1]));
    }
  }
  throw InvalidArgument("unknown NDlog value kind");
}

}  // namespace fsr
