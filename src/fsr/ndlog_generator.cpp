#include "fsr/ndlog_generator.h"

#include "algebra/additive_algebra.h"
#include "algebra/finite_algebra.h"
#include "fsr/value_bridge.h"
#include "util/error.h"

namespace fsr {

void register_policy_functions(const algebra::RoutingAlgebra& algebra,
                               ndlog::FunctionRegistry& registry) {
  const algebra::RoutingAlgebra* policy = &algebra;

  // Step 1 (pref relation -> f_pref): true iff S1 is strictly preferred.
  registry.register_function(
      "f_pref", 2, [policy](const std::vector<ndlog::Value>& args) {
        return ndlog::Value::boolean(
            policy->compare(to_algebra(args[0]), to_algebra(args[1])) ==
            algebra::Ordering::better);
      });

  // Step 2 ((+)_P -> f_concatSig). Total on inputs admitted by f_import;
  // a phi here indicates a mechanism bug, hence the hard error.
  registry.register_function(
      "f_concatSig", 2, [policy](const std::vector<ndlog::Value>& args) {
        const auto extended =
            policy->extend(to_algebra(args[0]), to_algebra(args[1]));
        if (!extended.has_value()) {
          throw InvalidArgument(
              "f_concatSig reached a prohibited combination; f_import must "
              "filter it first");
        }
        return to_ndlog(*extended);
      });

  // Step 3a ((+)_I -> f_import), with phi generation folded in: a route is
  // importable iff the filter admits it AND the extension is defined.
  registry.register_function(
      "f_import", 2, [policy](const std::vector<ndlog::Value>& args) {
        const algebra::Value label = to_algebra(args[0]);
        const algebra::Value sig = to_algebra(args[1]);
        return ndlog::Value::boolean(policy->import_allows(label, sig) &&
                                     policy->extend(label, sig).has_value());
      });

  // Step 3b ((+)_E -> f_export): sender-side call, receiver-side table.
  registry.register_function(
      "f_export", 2, [policy](const std::vector<ndlog::Value>& args) {
        const algebra::Value sender_label = to_algebra(args[0]);
        return ndlog::Value::boolean(policy->export_allows(
            policy->complement(sender_label), to_algebra(args[1])));
      });

  // The GPV selection aggregate ranks signatures by f_pref.
  registry.register_aggregate(
      "a_pref", [policy](const ndlog::Value& a, const ndlog::Value& b) {
        return policy->compare(to_algebra(a), to_algebra(b)) ==
               algebra::Ordering::better;
      });
}

namespace {

/// Pseudo-code rendering for finite algebras: enumerate table entries as
/// the paper's if-chains.
std::string render_finite(const algebra::FiniteAlgebra& finite) {
  std::string out;

  out += "#def_func f_concatSig(L,S) {\n";
  for (const std::string& label : finite.labels()) {
    for (const std::string& sig : finite.signatures()) {
      const auto extended = finite.extend(algebra::Value::atom(label),
                                          algebra::Value::atom(sig));
      if (extended.has_value()) {
        out += "  if (L=='" + label + "') && (S=='" + sig + "') return '" +
               extended->as_atom() + "'\n";
      }
    }
  }
  out += "}\n";

  out += "#def_func f_pref(S1,S2) {\n  return ";
  bool first = true;
  for (const std::string& s1 : finite.signatures()) {
    for (const std::string& s2 : finite.signatures()) {
      if (s1 == s2) continue;
      if (finite.has_consistent_preferences() &&
          finite.compare(algebra::Value::atom(s1), algebra::Value::atom(s2)) ==
              algebra::Ordering::better) {
        if (!first) out += " ||\n         ";
        out += "(S1=='" + s1 + "' && S2=='" + s2 + "')";
        first = false;
      }
    }
  }
  if (first) out += "false";
  out += "\n}\n";

  out += "#def_func f_import(L,S) {\n";
  for (const std::string& label : finite.labels()) {
    for (const std::string& sig : finite.signatures()) {
      const algebra::Value l = algebra::Value::atom(label);
      const algebra::Value s = algebra::Value::atom(sig);
      if (!finite.import_allows(l, s) || !finite.extend(l, s).has_value()) {
        out += "  if (L=='" + label + "' && S=='" + sig + "') return false\n";
      }
    }
  }
  out += "  return true\n}\n";

  out += "#def_func f_export(L,S) {\n";
  for (const std::string& label : finite.labels()) {
    for (const std::string& sig : finite.signatures()) {
      const algebra::Value l = algebra::Value::atom(label);
      if (!finite.export_allows(finite.complement(l),
                                algebra::Value::atom(sig))) {
        out += "  if (L=='" + label + "' && S=='" + sig + "') return false\n";
      }
    }
  }
  out += "  return true\n}\n";
  return out;
}

std::string render_additive(const algebra::AdditiveAlgebra&) {
  // The paper's hop-count rendering (Section V-C).
  return
      "#def_func f_concatSig(L,S) { return L+S }\n"
      "#def_func f_pref(S1,S2) { return S1 < S2 }\n"
      "#def_func f_import(L,S) { return true }\n"
      "#def_func f_export(L,S) { return true }\n";
}

}  // namespace

std::string render_policy_functions(const algebra::RoutingAlgebra& algebra) {
  std::string out =
      "// Generated from algebra '" + algebra.name() + "' (Section V-B)\n";
  const auto factors = algebra.lexical_factors();
  if (!factors.empty()) {
    out += "// lexical product: pairwise functions; f_pref compares the\n"
           "// first component and tie-breaks on the second.\n";
    int index = 1;
    for (const auto* factor : factors) {
      out += "// ---- factor " + std::to_string(index++) + ": " +
             factor->name() + " ----\n";
      out += render_policy_functions(*factor);
    }
    return out;
  }
  if (const auto* finite =
          dynamic_cast<const algebra::FiniteAlgebra*>(&algebra)) {
    out += render_finite(*finite);
    return out;
  }
  if (const auto* additive =
          dynamic_cast<const algebra::AdditiveAlgebra*>(&algebra)) {
    out += render_additive(*additive);
    return out;
  }
  out += "// (native algebra; functions are registered programmatically)\n";
  return out;
}

}  // namespace fsr
