// The Section IV-B constraint encoding, shared by the per-call
// SafetyAnalyzer pipelines and the IncrementalSafetySession the repair
// engine drives.
//
// Encoding order is part of the toolkit's contract: preferences first, then
// combined-extension (monotonicity) entries, then additive templates —
// assertion index i corresponds to provenance[i] in every consumer, which
// is how solver cores map back to policy constraints.
#ifndef FSR_FSR_CONSTRAINT_ENCODER_H
#define FSR_FSR_CONSTRAINT_ENCODER_H

#include <map>
#include <string>
#include <vector>

#include "algebra/algebra.h"
#include "fsr/safety_analyzer.h"

namespace fsr::encoding {

/// Signature names can contain characters that are not valid solver
/// symbols (SPP signatures look like "r(a-b-e-0)"), so the encoder works
/// over sanitized symbols and keeps a bidirectional mapping.
class SymbolTable {
 public:
  explicit SymbolTable(const std::vector<std::string>& names);

  /// Sanitized symbol of an original signature name; throws
  /// fsr::InvalidArgument for unknown names.
  const std::string& symbol(const std::string& name) const;

  const std::string& original(const std::string& symbol) const;

  const std::vector<std::string>& symbols() const noexcept { return symbols_; }

 private:
  std::map<std::string, std::string> symbol_to_name_;
  std::map<std::string, std::string> name_to_symbol_;
  std::vector<std::string> symbols_;
};

/// Structural identity of one encoded constraint over ORIGINAL signature
/// names; templates carry their rendered line in `lhs`. The repair engine
/// interns these shapes to diff candidate configurations against the base.
struct RelationShape {
  std::string rel;  // "<", "<=", "=", or "forall" for additive templates
  std::string lhs;
  std::string rhs;
};

/// The constraints of one encoding, in assertion order (the order defines
/// the AssertionId <-> provenance correspondence for both pipelines).
struct Encoding {
  std::vector<ConstraintProvenance> provenance;
  std::vector<std::string> assert_lines;  // "(< a b)" over sanitized symbols
  std::vector<RelationShape> shapes;      // parallel, over original names
};

const char* relation_spelling(algebra::PrefRel rel);

Encoding encode(const algebra::SymbolicSpec& spec, MonotonicityMode mode,
                const SymbolTable& symbols);

std::string render_script(const algebra::SymbolicSpec& spec,
                          MonotonicityMode mode, const SymbolTable& symbols,
                          const Encoding& enc);

}  // namespace fsr::encoding

#endif  // FSR_FSR_CONSTRAINT_ENCODER_H
