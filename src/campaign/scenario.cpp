#include "campaign/scenario.h"

#include "util/error.h"
#include "util/strings.h"

namespace fsr::campaign {
namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

const char* to_string(ScenarioKind kind) noexcept {
  switch (kind) {
    case ScenarioKind::safety:
      return "safety";
    case ScenarioKind::emulation:
      return "emulation";
    case ScenarioKind::simulation:
      return "simulation";
  }
  return "safety";
}

void validate_scenario(const Scenario& scenario) {
  const bool has_spp = scenario.spp != nullptr;
  const bool has_algebra = scenario.algebra != nullptr;
  const bool has_topology = scenario.topology != nullptr;
  bool ok = false;
  if (scenario.kind == ScenarioKind::safety) {
    // Exactly one analysis target: an SPP instance is itself translated to
    // an algebra, so carrying both would make the cache key (spp content)
    // and the executed work (the algebra) disagree.
    ok = (has_spp != has_algebra) && !has_topology;
  } else if (scenario.kind == ScenarioKind::simulation) {
    // The event-driven simulator runs concrete SPP instances only.
    ok = has_spp && !has_algebra && !has_topology;
  } else {
    ok = (has_spp && !has_algebra && !has_topology) ||
         (!has_spp && has_algebra && has_topology);
  }
  if (!ok) {
    throw InvalidArgument(
        "scenario '" + scenario.id + "' has an invalid payload shape for " +
        to_string(scenario.kind) +
        " (want: safety with spp XOR algebra, emulation with spp or "
        "algebra+topology, or simulation with spp)");
  }
}

std::uint64_t fnv1a64(const std::string& text) { return util::fnv1a64(text); }

std::uint64_t derive_scenario_seed(std::uint64_t campaign_seed,
                                   const std::string& id,
                                   std::uint64_t ordinal) {
  return splitmix64(campaign_seed ^ splitmix64(fnv1a64(id) + ordinal));
}

}  // namespace fsr::campaign
