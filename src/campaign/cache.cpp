#include "campaign/cache.h"

#include "util/error.h"

namespace fsr::campaign {
namespace {

void append_path(std::string& out, const spp::Path& path) {
  out += spp::path_name(path);
}

const char* pref_rel_spelling(algebra::PrefRel rel) {
  switch (rel) {
    case algebra::PrefRel::strictly_better:
      return "<";
    case algebra::PrefRel::equal:
      return "=";
    case algebra::PrefRel::better_or_equal:
      return "<=";
  }
  return "<";
}

}  // namespace

std::string canonical_spp(const spp::SppInstance& instance) {
  std::string out = "dest=" + instance.destination() + ";edges=";
  for (const auto& [u, v] : instance.edges()) {
    out += u + "~" + v + ",";
  }
  out += ";paths=";
  for (const std::string& node : instance.nodes()) {
    out += node + ":";
    for (const spp::Path& path : instance.permitted(node)) {
      append_path(out, path);
      out += ",";
    }
    out += ";";
  }
  return out;
}

std::string canonical_spec(const algebra::SymbolicSpec& spec) {
  std::string out = "sigs=";
  for (const std::string& sig : spec.signatures) out += sig + ",";
  out += ";prefs=";
  for (const auto& pref : spec.preferences) {
    out += pref.lhs + pref_rel_spelling(pref.rel) + pref.rhs + ",";
  }
  out += ";exts=";
  for (const auto& ext : spec.extensions) {
    out += ext.label + "(+)" + ext.from_sig + "=" + ext.to_sig + ",";
  }
  out += ";templates=";
  for (const auto& tmpl : spec.additive_templates) {
    out += std::to_string(tmpl.delta) + ",";
  }
  return out;
}

std::string canonical_topology(const topology::Topology& topology) {
  std::string out = "dest=" + topology.destination + ";nodes=";
  for (const std::string& node : topology.nodes) out += node + ",";
  out += ";links=";
  for (const auto& link : topology.links) {
    out += link.u + "~" + link.v + "[" + link.label_uv.to_string() + "/" +
           link.label_vu.to_string() + "]" +
           std::to_string(link.net_config.bandwidth_mbps) + "mbps," +
           std::to_string(link.net_config.latency) + "us," +
           std::to_string(link.net_config.max_jitter) + "j;";
  }
  out += ";domains=";
  for (const auto& [node, domain] : topology.domain_of) {
    out += node + "=" + domain + ",";
  }
  return out;
}

std::string scenario_cache_key(const Scenario& scenario) {
  std::string out = to_string(scenario.kind);
  if (scenario.kind == ScenarioKind::emulation) {
    // Emulation outcomes depend on the scenario seed (jitter, batching
    // drift); safety verdicts do not.
    out += "|seed=" + std::to_string(scenario.seed);
  }
  if (scenario.spp) {
    out += "|spp|" + canonical_spp(*scenario.spp);
  } else if (scenario.algebra) {
    out += "|alg|" + scenario.algebra->name() + "|" +
           canonical_spec(scenario.algebra->symbolic());
    if (scenario.topology) out += "|topo|" + canonical_topology(*scenario.topology);
  } else {
    throw InvalidArgument("scenario '" + scenario.id +
                          "' carries neither an SPP instance nor an algebra");
  }
  return out;
}

std::string scenario_cache_key(const Scenario& scenario, bool attempt_repair) {
  std::string out = scenario_cache_key(scenario);
  if (attempt_repair && scenario.kind == ScenarioKind::safety &&
      scenario.spp != nullptr) {
    // Repair outcomes are content-determined (ground-truth trials are
    // seeded from the content digest), so the marker carries no seed and
    // duplicate-content scenarios still collapse to one solve.
    out += "|repair";
  }
  return out;
}

std::string content_digest(const std::string& canonical) {
  std::uint64_t hash = fnv1a64(canonical);
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[hash & 0xf];
    hash >>= 4;
  }
  return out;
}

std::shared_ptr<const ScenarioOutcome> ResultCache::find(
    const std::string& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return it->second;
}

void ResultCache::insert(const std::string& key,
                         std::shared_ptr<const ScenarioOutcome> outcome) {
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_.emplace(key, std::move(outcome));
}

std::size_t ResultCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::uint64_t ResultCache::hits() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t ResultCache::misses() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

}  // namespace fsr::campaign
